// Quickstart: build the paper's deployment, localize one BLE tag and
// inspect the scored candidates the multipath-rejection stage considered.
package main

import (
	"fmt"
	"log"

	"bloc"
)

func main() {
	// The default system is the paper's §7 testbed: a multipath-rich
	// 5 m × 6 m room with four 4-antenna anchors at the wall midpoints;
	// anchor 0 is the master the tag connects to.
	sys, err := bloc.NewSystem(bloc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("anchors:", sys.AnchorPositions())

	// Place the tag, acquire CSI over all 37 hop channels and localize.
	tag := bloc.Pt(1.1, -0.7)
	fix, err := sys.Localize(tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag truth    : %v\n", fix.Truth)
	fmt.Printf("BLoc estimate: %v  (error %.2f m)\n\n", fix.Estimate, fix.Error)

	// The likelihood peaks BLoc scored with Eq. 18 — the direct path wins
	// on peak value, spatial entropy (peakiness) and total distance.
	fmt.Println("candidate peaks (Eq. 18):")
	for i, c := range fix.Candidates {
		fmt.Printf("  #%d at %v  likelihood %.2f  H %.2f  Σd %.1f m  score %.4f\n",
			i, c.Loc, c.PeakValue, c.Entropy, c.SumDist, c.Score)
	}

	// Compare with the paper's AoA baseline on the same kind of
	// acquisition.
	aoa, err := sys.LocalizeWith(bloc.MethodAoA, tag)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAoA baseline : %v  (error %.2f m)\n", aoa.Estimate, aoa.Error)
}
