// Distributed deployment: the full §3 architecture as real processes —
// four anchor daemons stream per-band CSI reports over TCP to the central
// localization server, which assembles snapshots, localizes and
// broadcasts fixes back. Everything runs in this process over localhost,
// but the daemons and the server only talk through the wire protocol; the
// same binaries (cmd/bloc-anchor, cmd/bloc-server) deploy across machines.
package main

import (
	"fmt"
	"io"
	"log"
	"log/slog"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
)

func main() {
	const seed = 5
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Central server with the localization engine.
	dep, err := testbed.Paper(seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := locserver.New("127.0.0.1:0", locserver.Config{
		Anchors:  len(dep.Anchors),
		Antennas: dep.Anchors[0].N,
		Bands:    dep.Bands,
		OnSnapshot: func(info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
		Logger: quiet,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("server listening on", srv.Addr())

	// One daemon per anchor, each with its own view of the shared world.
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			log.Fatal(err)
		}
		d, err := anchor.New(i, depI, quiet)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Connect(srv.Addr()); err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		daemons[i] = d
	}
	fmt.Printf("%d anchor daemons connected\n\n", len(daemons))

	// Two tags wander the room concurrently; every position is one
	// acquisition round, reported independently by every anchor and
	// aggregated per (tag, round) by the server.
	trajectories := map[uint16][]geom.Point{
		1: {geom.Pt(0.8, -0.6), geom.Pt(0.2, 0.4), geom.Pt(-0.9, 1.1)},
		2: {geom.Pt(-1.4, -0.3), geom.Pt(0.4, -1.8), geom.Pt(1.3, 0.9)},
	}
	truth := map[[2]uint32]geom.Point{}
	expected := 0
	for tagID, traj := range trajectories {
		for r, pos := range traj {
			round := uint32(r + 1)
			truth[[2]uint32{uint32(tagID), round}] = pos
			expected++
			for _, d := range daemons {
				if err := d.MeasureAndReport(tagID, round, pos); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Println("tag  round  truth            server fix        err(m)")
	for i := 0; i < expected; i++ {
		select {
		case fix := <-srv.Fixes():
			est := geom.Pt(fix.X, fix.Y)
			want := truth[[2]uint32{uint32(fix.TagID), fix.Round}]
			fmt.Printf("%3d  %5d  %-15v  %-15v  %6.2f\n",
				fix.TagID, fix.Round, want, est, est.Dist(want))
		//lint:ignore clockcheck example watchdog; real elapsed time is the point
		case <-time.After(10 * time.Second):
			log.Fatal("timed out waiting for fix")
		}
	}
}
