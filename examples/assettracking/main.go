// Asset tracking: a BLE tag rides a cart around a factory-floor loop (the
// paper's "automate operation in factory floors" motivation). BLoc
// localizes the tag at every waypoint; the example reports per-step and
// trajectory-level error and compares against the RSSI approach today's
// deployments use.
package main

import (
	"fmt"
	"log"
	"sort"

	"bloc"
)

func main() {
	// A 10 m × 7 m factory bay with metal machinery (strong scatterers)
	// and shelving that obstructs many tag links.
	sys, err := bloc.NewSystem(bloc.Options{
		RoomMin:   bloc.Pt(0, 0),
		RoomMax:   bloc.Pt(10, 7),
		Anchors:   6, // four wall midpoints + two corners: a 10x7 m bay needs denser coverage
		Antennas:  4,
		Seed:      42,
		PaperRoom: false,
		Scatterers: []bloc.Scatterer{
			{Center: bloc.Pt(1.2, 6.2), Radius: 0.4, Gain: 5, Facets: 6}, // CNC cell, north-west corner
			{Center: bloc.Pt(9.0, 5.8), Radius: 0.4, Gain: 5, Facets: 6}, // press brake, north-east corner
			{Center: bloc.Pt(5.0, 6.4), Radius: 0.3, Gain: 4, Facets: 5}, // pallet racking on the north wall
		},
		Obstacles: []bloc.Obstacle{
			{A: bloc.Pt(3.5, 3.0), B: bloc.Pt(6.5, 3.0), Attenuation: 0.35}, // shelving row
			{A: bloc.Pt(2.0, 4.5), B: bloc.Pt(3.0, 4.5), Attenuation: 0.4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The cart drives a rectangular loop through the aisles.
	waypoints := loop(bloc.Pt(1.5, 1.2), bloc.Pt(8.5, 5.8), 28)

	fmt.Println("step  truth            BLoc fix          BLoc(m)  RSSI(m)")
	var blocErrs, rssiErrs []float64
	for i, wp := range waypoints {
		fix, err := sys.Localize(wp)
		if err != nil {
			log.Fatal(err)
		}
		rssi, err := sys.LocalizeWith(bloc.MethodRSSI, wp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-15v  %-15v  %6.2f  %7.2f\n",
			i, wp, fix.Estimate, fix.Error, rssi.Error)
		blocErrs = append(blocErrs, fix.Error)
		rssiErrs = append(rssiErrs, rssi.Error)
	}
	fmt.Printf("\ntrajectory: BLoc median %.2f m, p90 %.2f m | RSSI median %.2f m, p90 %.2f m\n",
		median(blocErrs), percentile(blocErrs, 0.9), median(rssiErrs), percentile(rssiErrs, 0.9))
	fmt.Println("(the p90 outliers cluster along the shelving-obstructed north corridor —")
	fmt.Println(" exactly where the paper's multipath-rejection battle is hardest)")
}

// median and percentile are tiny local helpers (the library's statistics
// live in the experiment harness, not the public API).
func median(xs []float64) float64 { return percentile(xs, 0.5) }

func percentile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// loop returns n waypoints around the axis-aligned rectangle (lo, hi).
func loop(lo, hi bloc.Point, n int) []bloc.Point {
	perim := 2 * ((hi.X - lo.X) + (hi.Y - lo.Y))
	step := perim / float64(n)
	pts := make([]bloc.Point, 0, n)
	for i := 0; i < n; i++ {
		d := float64(i) * step
		switch {
		case d < hi.X-lo.X:
			pts = append(pts, bloc.Pt(lo.X+d, lo.Y))
		case d < (hi.X-lo.X)+(hi.Y-lo.Y):
			pts = append(pts, bloc.Pt(hi.X, lo.Y+(d-(hi.X-lo.X))))
		case d < 2*(hi.X-lo.X)+(hi.Y-lo.Y):
			pts = append(pts, bloc.Pt(hi.X-(d-(hi.X-lo.X)-(hi.Y-lo.Y)), hi.Y))
		default:
			pts = append(pts, bloc.Pt(lo.X, hi.Y-(d-2*(hi.X-lo.X)-(hi.Y-lo.Y))))
		}
	}
	return pts
}
