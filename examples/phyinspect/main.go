// PHY inspection: the microbenchmarks of Fig. 4 rendered in the terminal —
// why vanilla BLE traffic cannot be channel-sounded and why BLoc's
// run-length packets can, plus the frequency-hop coverage that gives BLoc
// its 80 MHz virtual aperture.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"bloc/phy"
)

func main() {
	const sps = 8

	fmt.Println("Fig 4a — Gaussian-filtered random bits (frequency never settles):")
	random := []byte{0, 1, 1, 0, 1, 0, 0, 1, 0, 1}
	plot(random, phy.ShapeBits(random, sps), sps)

	fmt.Println("\nFig 4b — BLoc sounding bits (long runs settle at f0, then f1):")
	sounding := []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	plot(sounding, phy.ShapeBits(sounding, sps), sps)

	// Full sounding packet through the modulator: how much of the packet
	// sits at a stable tone, usable for h = y/x channel measurement.
	_, track, err := phy.SoundingWaveform(17, sps)
	if err != nil {
		log.Fatal(err)
	}
	stable := 0
	for _, v := range track {
		if math.Abs(math.Abs(v)-1) < 0.02 {
			stable++
		}
	}
	fmt.Printf("\nfull sounding packet on channel 17: %d/%d samples (%.0f%%) at a settled tone\n",
		stable, len(track), 100*float64(stable)/float64(len(track)))

	// The hop sequence that stitches 80 MHz: every data channel visited
	// once per 37 events because 37 is prime (§2.1).
	seq, err := phy.HopSequence(10, 7, 37)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhop sequence (start 10, hop 7): %v\n", seq[:12])
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ch := range seq {
		f, err := phy.ChannelFreq(ch)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi = math.Min(lo, f), math.Max(hi, f)
	}
	fmt.Printf("spectrum swept in one connection cycle: %.0f–%.0f MHz (%.0f MHz span)\n",
		lo/1e6, hi/1e6, (hi-lo)/1e6+2)
}

// plot renders a waveform as ASCII rows from +1 (top) to −1 (bottom).
func plot(bits []byte, w []float64, sps int) {
	const rows = 9
	cols := len(w) / 2 // halve horizontally to fit a terminal
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		v := w[c*2]
		r := int(math.Round((1 - v) / 2 * float64(rows-1)))
		grid[r][c] = '*'
	}
	for r, row := range grid {
		label := "    "
		switch r {
		case 0:
			label = "f1 +1"
		case rows / 2:
			label = "    0"
		case rows - 1:
			label = "f0 -1"
		}
		fmt.Printf("%5s |%s|\n", label, row)
	}
	var legend strings.Builder
	for _, b := range bits {
		legend.WriteString(fmt.Sprintf("%-*d", sps/2, b))
	}
	fmt.Printf("       %s  (bits)\n", legend.String())
}
