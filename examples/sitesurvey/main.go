// Site survey: load a deployment floorplan from JSON, sweep tag positions
// over the space and report localization quality per region — the
// pre-deployment check an integrator runs before mounting anchors. Uses
// only the public API (floorplan loader + system + localization).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"bloc"
)

func main() {
	path := "examples/floorplans/apartment.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	fp, err := bloc.LoadFloorplan(path)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := bloc.NewSystem(fp.Options(11))
	if err != nil {
		log.Fatal(err)
	}
	min, max := sys.Room()
	fmt.Printf("site survey: %s (%.0fx%.0f m, %d anchors)\n\n",
		fp.Name, max.X-min.X, max.Y-min.Y, len(sys.AnchorPositions()))

	// Divide the space into a coarse survey grid and localize a few
	// probes per cell.
	const cells = 4
	const probes = 3
	type cellResult struct {
		label string
		errs  []float64
	}
	var results []cellResult
	w := (max.X - min.X) / cells
	h := (max.Y - min.Y) / cells
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			label := fmt.Sprintf("cell (%d,%d)", cx, cy)
			var errs []float64
			for p := 0; p < probes; p++ {
				// Deterministic probe spots inside the cell, away from
				// its edges.
				fx := 0.25 + 0.25*float64(p)
				probe := bloc.Pt(
					min.X+(float64(cx)+fx)*w,
					min.Y+(float64(cy)+0.5)*h,
				)
				fix, err := sys.Localize(probe)
				if err != nil {
					log.Fatal(err)
				}
				errs = append(errs, fix.Error)
			}
			results = append(results, cellResult{label: label, errs: errs})
		}
	}

	fmt.Println("worst survey cells (median probe error):")
	sort.Slice(results, func(i, j int) bool {
		return median(results[i].errs) > median(results[j].errs)
	})
	for i, r := range results {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s median %.2f m\n", r.label, median(r.errs))
	}
	var all []float64
	for _, r := range results {
		all = append(all, r.errs...)
	}
	fmt.Printf("\nsite-wide: median %.2f m over %d probes\n", median(all), len(all))
	fmt.Println("(cells near strong reflectors or behind partitions survey worst —")
	fmt.Println(" move an anchor or add one before the hardware goes on the wall)")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
