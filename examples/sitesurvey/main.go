// Site survey: load a deployment floorplan from JSON, sweep tag positions
// over the space and report localization quality per region — the
// pre-deployment check an integrator runs before mounting anchors. Uses
// only the public API (floorplan loader + system + localization).
//
// The survey also prices the degraded tiers per region: every probe is
// additionally localized by fingerprint KNN (against a survey built with
// SurveyFingerprints) and by the RSSI centroid, the two rungs a live
// deployment falls to when the CSI quorum is unmet. Regions where even
// the fingerprint rung is poor need an anchor moved before the hardware
// goes on the wall — degraded service there would be room-scale.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"bloc"
)

func main() {
	path := "examples/floorplans/apartment.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	fp, err := bloc.LoadFloorplan(path)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := bloc.NewSystem(fp.Options(11))
	if err != nil {
		log.Fatal(err)
	}
	min, max := sys.Room()
	fmt.Printf("site survey: %s (%.0fx%.0f m, %d anchors)\n\n",
		fp.Name, max.X-min.X, max.Y-min.Y, len(sys.AnchorPositions()))

	// The fingerprint survey the degraded tiers are priced against —
	// the same offline campaign `bloc-dataset survey` records for a
	// live server's -fingerprint flag.
	fpdb, err := sys.SurveyFingerprints(0.5, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fingerprint survey: %d reference points at %.2g m pitch\n\n",
		len(fpdb.Points), fpdb.StepM)

	// Divide the space into a coarse survey grid and localize a few
	// probes per cell — once CSI-grade, once per degraded tier on the
	// same acquisition.
	const cells = 4
	const probes = 3
	type cellResult struct {
		label string
		errs  []float64 // CSI-grade
		fp    []float64 // fingerprint KNN tier
		cent  []float64 // RSSI centroid tier
	}
	var results []cellResult
	w := (max.X - min.X) / cells
	h := (max.Y - min.Y) / cells
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			label := fmt.Sprintf("cell (%d,%d)", cx, cy)
			var r cellResult
			r.label = label
			for p := 0; p < probes; p++ {
				// Deterministic probe spots inside the cell, away from
				// its edges.
				fx := 0.25 + 0.25*float64(p)
				probe := bloc.Pt(
					min.X+(float64(cx)+fx)*w,
					min.Y+(float64(cy)+0.5)*h,
				)
				snap := sys.Acquire(probe)
				fix, err := sys.LocalizeSnapshot(bloc.MethodBLoc, snap)
				if err != nil {
					log.Fatal(err)
				}
				r.errs = append(r.errs, fix.Estimate.Dist(probe))
				fpFix, err := sys.LocalizeFingerprint(fpdb, snap)
				if err != nil {
					log.Fatal(err)
				}
				r.fp = append(r.fp, fpFix.Estimate.Dist(probe))
				cFix, err := sys.LocalizeSnapshot(bloc.MethodRSSI, snap)
				if err != nil {
					log.Fatal(err)
				}
				r.cent = append(r.cent, cFix.Estimate.Dist(probe))
			}
			results = append(results, r)
		}
	}

	fmt.Println("worst survey cells (median probe error; degraded tiers alongside):")
	sort.Slice(results, func(i, j int) bool {
		return median(results[i].errs) > median(results[j].errs)
	})
	for i, r := range results {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s csi %.2f m   fingerprint %.2f m   centroid %.2f m\n",
			r.label, median(r.errs), median(r.fp), median(r.cent))
	}
	var all, allFp, allCent []float64
	for _, r := range results {
		all = append(all, r.errs...)
		allFp = append(allFp, r.fp...)
		allCent = append(allCent, r.cent...)
	}
	fmt.Printf("\nsite-wide medians over %d probes:\n", len(all))
	fmt.Printf("  csi-grade          %.2f m\n", median(all))
	fmt.Printf("  fingerprint tier   %.2f m\n", median(allFp))
	fmt.Printf("  centroid tier      %.2f m\n", median(allCent))
	fmt.Println("\n(cells near strong reflectors or behind partitions survey worst —")
	fmt.Println(" move an anchor or add one before the hardware goes on the wall.")
	fmt.Println(" the fingerprint row is what degraded service costs with a survey")
	fmt.Println(" loaded; the centroid row is the floor without one)")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
