// Warm restart: the durable state plane end to end (DESIGN.md §11). A
// checkpoint-enabled server boots cold, pays the array calibration once,
// localizes a few rounds and shuts down gracefully — draining in-flight
// rounds and writing a final snapshot. A second server "process" then
// opens the same state directory, warm-restores the calibration, health
// plane and round counter from the snapshot, and produces an accurate
// fix on its very first round without recalibrating. The same wiring in
// production: bloc-server -state-dir <dir> -calibrate.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"sync"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
)

const seed = 91

// calHolder owns the array calibration the way cmd/bloc-server does and
// hands it across restarts through the checkpoint Export/Restore hooks.
type calHolder struct {
	mu  sync.Mutex
	cal *core.Calibration // guarded by mu
}

func (h *calHolder) get() *core.Calibration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cal
}

func (h *calHolder) set(cal *core.Calibration) {
	h.mu.Lock()
	h.cal = cal
	h.mu.Unlock()
}

func (h *calHolder) export() durable.External {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cal == nil {
		return durable.External{}
	}
	return durable.External{Calib: h.cal.ExportRotors()}
}

func (h *calHolder) restore(ext durable.External) error {
	if ext.Calib == nil {
		return nil
	}
	cal, err := core.RestoreCalibration(ext.Calib)
	if err != nil {
		return err
	}
	h.set(cal)
	return nil
}

// boot starts one server "process" on the shared state directory: fresh
// deployment, fresh engine, fresh anchor daemons — only the snapshot
// store persists across boots, exactly like a real restart.
func boot(store *durable.Store, h *calHolder) (*locserver.Server, []*anchor.Daemon) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dep, err := testbed.Paper(seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := locserver.New("127.0.0.1:0", locserver.Config{
		Anchors:  len(dep.Anchors),
		Antennas: dep.Anchors[0].N,
		Bands:    dep.Bands,
		Checkpoint: &locserver.CheckpointConfig{
			Store:    store,
			Interval: 500 * time.Millisecond,
			StateTTL: time.Hour,
			Export:   h.export,
			Restore:  h.restore,
		},
		OnSnapshot: func(info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			if info.Coarse {
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return res.Estimate, nil
			}
			if cal := h.get(); cal != nil {
				if corrected, err := cal.Apply(snap); err == nil {
					snap = corrected
				}
			}
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
		Logger: quiet,
	})
	if err != nil {
		log.Fatal(err)
	}
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			log.Fatal(err)
		}
		d, err := anchor.New(i, depI, quiet)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Connect(srv.Addr()); err != nil {
			log.Fatal(err)
		}
		daemons[i] = d
	}
	return srv, daemons
}

// calibrate estimates the array calibration like bloc-server -calibrate,
// re-sounding with a fresh salt when a noisy draw is unstable.
func calibrate(dep *testbed.Deployment) *core.Calibration {
	var lastErr error
	for salt := uint64(0); salt < 16; salt++ {
		d := dep.Fork(0xCA11 + salt)
		meas, txPos := d.CalibrationSounding()
		freqs := make([]float64, len(d.Bands))
		for k, ch := range d.Bands {
			freqs[k] = ch.CenterFreq()
		}
		cal, err := core.EstimateCalibration(dep.Anchors, txPos, freqs, meas)
		if err == nil {
			return cal
		}
		lastErr = err
	}
	log.Fatal(lastErr)
	return nil
}

func runRound(srv *locserver.Server, daemons []*anchor.Daemon, round uint32, tag geom.Point) {
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, round, tag); err != nil {
			log.Fatal(err)
		}
	}
	select {
	case fix := <-srv.Fixes():
		est := geom.Pt(fix.X, fix.Y)
		fmt.Printf("  round %d: tag %v -> fix %v (err %.2f m)\n",
			fix.Round, tag, est, est.Dist(tag))
	//lint:ignore clockcheck example watchdog; real elapsed time is the point
	case <-time.After(10 * time.Second):
		log.Fatal("no fix")
	}
}

func main() {
	stateDir, err := os.MkdirTemp("", "bloc-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	store, err := durable.Open(stateDir)
	if err != nil {
		log.Fatal(err)
	}

	// --- Boot 1: cold start, pay the calibration, localize, drain. ---
	fmt.Println("boot 1 (cold): calibrating...")
	h := &calHolder{}
	srv, daemons := boot(store, h)
	dep, err := testbed.Paper(seed)
	if err != nil {
		log.Fatal(err)
	}
	h.set(calibrate(dep))
	fmt.Printf("  calibrated (max correction %.1f°)\n", h.get().MaxErrorDeg())
	runRound(srv, daemons, 1, geom.Pt(0.8, -0.6))
	runRound(srv, daemons, 2, geom.Pt(0.2, 0.4))

	// Graceful shutdown: finish in-flight rounds, write a final
	// checkpoint (what bloc-server does on SIGTERM).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	cancel()
	for _, d := range daemons {
		d.Close()
	}
	st := store.Stats()
	fmt.Printf("  drained: %d checkpoint(s), %d bytes, generation %d\n\n",
		st.Writes, st.BytesWritten, st.Generation)

	// --- Boot 2: a new process on the same state directory. ---
	fmt.Println("boot 2 (warm): restoring from snapshot...")
	store2, err := durable.Open(stateDir)
	if err != nil {
		log.Fatal(err)
	}
	h2 := &calHolder{}
	srv2, daemons2 := boot(store2, h2)
	defer srv2.Close()
	defer func() {
		for _, d := range daemons2 {
			d.Close()
		}
	}()
	ss := srv2.Stats()
	if h2.get() == nil || ss.WarmRestores != 1 {
		log.Fatalf("expected a warm restore (got %d, calibration %v)",
			ss.WarmRestores, h2.get() != nil)
	}
	fmt.Printf("  calibration restored without resounding (max correction %.1f°)\n",
		h2.get().MaxErrorDeg())
	// Accurate from the very first post-restart round.
	runRound(srv2, daemons2, 3, geom.Pt(-1.4, -0.3))
}
