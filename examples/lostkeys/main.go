// Lost keys: the paper's motivating consumer scenario — "predict whether
// you left the keys in the cupboard or on the table, rather than just
// telling you that the keys are at home". A BLE tag on a keyring is
// localized in an apartment and the fix is mapped to a named furniture
// zone; the example contrasts BLoc's zone-level answer with the AoA
// baseline's.
package main

import (
	"fmt"
	"log"

	"bloc"
)

// zone is a named region of the apartment.
type zone struct {
	name     string
	min, max bloc.Point
}

func (z zone) contains(p bloc.Point) bool {
	return p.X >= z.min.X && p.X <= z.max.X && p.Y >= z.min.Y && p.Y <= z.max.Y
}

func main() {
	// A 7 m × 5 m one-bedroom apartment: kitchen along the north wall, a
	// sofa and coffee table in the living area, and a bedroom behind a
	// drywall partition (which both reflects BLE and attenuates links
	// crossing it), with the wardrobe inside.
	sys, err := bloc.NewSystem(bloc.Options{
		RoomMin:   bloc.Pt(0, 0),
		RoomMax:   bloc.Pt(7, 5),
		Anchors:   4,
		Antennas:  4,
		Seed:      7,
		PaperRoom: false,
		Scatterers: []bloc.Scatterer{
			{Center: bloc.Pt(1.0, 4.4), Radius: 0.3, Gain: 4, Facets: 5}, // fridge
			{Center: bloc.Pt(6.3, 0.8), Radius: 0.3, Gain: 4, Facets: 5}, // wardrobe
		},
		Obstacles: []bloc.Obstacle{
			{A: bloc.Pt(2.5, 2.2), B: bloc.Pt(4.5, 2.2), Attenuation: 0.4}, // sofa back
		},
		Walls: []bloc.Wall{
			// Bedroom partition with a door gap at y ∈ [1.9, 2.6].
			{A: bloc.Pt(5.2, 0), B: bloc.Pt(5.2, 1.9), Reflectivity: 0.4, Transmission: 0.5},
			{A: bloc.Pt(5.2, 2.6), B: bloc.Pt(5.2, 5), Reflectivity: 0.4, Transmission: 0.5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	zones := []zone{
		{"kitchen counter", bloc.Pt(0, 3.8), bloc.Pt(3, 5)},
		{"coffee table", bloc.Pt(2.8, 1.2), bloc.Pt(4.4, 2.2)},
		{"wardrobe", bloc.Pt(5.6, 0), bloc.Pt(7, 1.6)},
		{"desk", bloc.Pt(5.4, 3.6), bloc.Pt(7, 5)},
	}
	name := func(p bloc.Point) string {
		for _, z := range zones {
			if z.contains(p) {
				return z.name
			}
		}
		return "somewhere on the floor"
	}

	// The keys were actually left in three different places over the week.
	spots := []struct {
		desc string
		at   bloc.Point
	}{
		{"on the coffee table", bloc.Pt(3.6, 1.7)},
		{"on the kitchen counter", bloc.Pt(1.4, 4.3)},
		{"in the wardrobe", bloc.Pt(6.2, 0.7)},
	}

	correct, aoaCorrect := 0, 0
	for _, s := range spots {
		fix, err := sys.Localize(s.at)
		if err != nil {
			log.Fatal(err)
		}
		aoa, err := sys.LocalizeWith(bloc.MethodAoA, s.at)
		if err != nil {
			log.Fatal(err)
		}
		blocZone := name(fix.Estimate)
		aoaZone := name(aoa.Estimate)
		truthZone := name(s.at)
		fmt.Printf("keys truly %s (%v, zone %q)\n", s.desc, s.at, truthZone)
		fmt.Printf("  BLoc: %q at %v (err %.2f m)\n", blocZone, fix.Estimate, fix.Error)
		fmt.Printf("  AoA : %q at %v (err %.2f m)\n\n", aoaZone, aoa.Estimate, aoa.Error)
		if blocZone == truthZone {
			correct++
		}
		if aoaZone == truthZone {
			aoaCorrect++
		}
	}
	fmt.Printf("zone-level answers: BLoc %d/%d correct, AoA baseline %d/%d\n",
		correct, len(spots), aoaCorrect, len(spots))
}
