package bloc

import (
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	min, max := sys.Room()
	if max.X-min.X != 5 || max.Y-min.Y != 6 {
		t.Errorf("room = %v..%v, want 5x6", min, max)
	}
	if n := len(sys.AnchorPositions()); n != 4 {
		t.Errorf("anchors = %d", n)
	}
}

func TestNewSystemValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.Anchors = 1
	if _, err := NewSystem(bad); err == nil {
		t.Error("1 anchor should be rejected")
	}
	tiny := DefaultOptions()
	tiny.RoomMin, tiny.RoomMax = Pt(0, 0), Pt(0.5, 0.5)
	if _, err := NewSystem(tiny); err == nil {
		t.Error("tiny room should be rejected")
	}
	badObst := DefaultOptions()
	badObst.PaperRoom = false
	badObst.Obstacles = []Obstacle{{A: Pt(0, 0), B: Pt(1, 1), Attenuation: 2}}
	if _, err := NewSystem(badObst); err == nil {
		t.Error("invalid obstacle attenuation should be rejected")
	}
}

func TestLocalizeEndToEnd(t *testing.T) {
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fix, err := sys.Localize(Pt(0.8, -0.6))
	if err != nil {
		t.Fatal(err)
	}
	if fix.Error > 2.0 {
		t.Errorf("error %.2f m unreasonably large", fix.Error)
	}
	if fix.Truth != Pt(0.8, -0.6) {
		t.Errorf("truth = %v", fix.Truth)
	}
	if len(fix.Candidates) == 0 {
		t.Error("BLoc fix should carry candidates")
	}
}

func TestLocalizeMethodsAllRun(t *testing.T) {
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tag := Pt(-1.0, 1.0)
	for _, m := range []Method{MethodBLoc, MethodAoA, MethodAoASoft, MethodShortestDistance, MethodRSSI, MethodMUSIC} {
		fix, err := sys.LocalizeWith(m, tag)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if fix.Error > 6 {
			t.Errorf("%v error %.2f beyond room scale", m, fix.Error)
		}
	}
	if _, err := sys.LocalizeWith(Method(99), tag); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestCustomRoomFreeSpaceAccuracy(t *testing.T) {
	sys, err := NewSystem(Options{
		RoomMin:          Pt(0, 0),
		RoomMax:          Pt(8, 4),
		Anchors:          4,
		Antennas:         4,
		NoiseOff:         true,
		PaperRoom:        false,
		WallReflectivity: 0.0001, // effectively free space
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	fix, err := sys.Localize(Pt(5.5, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if fix.Error > 0.2 {
		t.Errorf("free-space custom room error %.3f m", fix.Error)
	}
}

func TestAcquireDeterministicPerSequence(t *testing.T) {
	mk := func() complex128 {
		sys, err := NewSystem(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		s1 := sys.Acquire(Pt(0, 0))
		s2 := sys.Acquire(Pt(0, 0))
		return s1.Tag[2][1][1] * s2.Tag[2][1][1]
	}
	if mk() != mk() {
		t.Error("acquisition sequence not deterministic")
	}
	// Consecutive acquisitions differ (fresh LO offsets and noise).
	sys, _ := NewSystem(DefaultOptions())
	a, b := sys.Acquire(Pt(0, 0)), sys.Acquire(Pt(0, 0))
	if a.Tag[2][1][1] == b.Tag[2][1][1] {
		t.Error("consecutive acquisitions identical — offsets not redrawn")
	}
}

func TestMethodString(t *testing.T) {
	if MethodBLoc.String() != "bloc" || MethodRSSI.String() != "rssi" ||
		Method(42).String() != "Method(42)" {
		t.Error("Method strings wrong")
	}
}

func TestCustomScatterersChangeChannels(t *testing.T) {
	base := Options{Anchors: 4, Antennas: 4, NoiseOff: true, PaperRoom: false, Seed: 3}
	withScat := base
	withScat.Scatterers = []Scatterer{{Center: Pt(1, 1), Radius: 0.3, Gain: 3, Facets: 5}}
	s1, err := NewSystem(base)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(withScat)
	if err != nil {
		t.Fatal(err)
	}
	a := s1.Acquire(Pt(0, 0))
	b := s2.Acquire(Pt(0, 0))
	if a.Tag[0][0][0] == b.Tag[0][0][0] {
		t.Error("scatterer had no effect on channels")
	}
}

func TestSystemCalibration(t *testing.T) {
	opts := DefaultOptions()
	opts.PaperRoom = false
	opts.NoiseOff = true
	opts.AntennaPhaseErrDeg = 30
	opts.Seed = 77
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := sys.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if cal.MaxErrorDeg() < 5 {
		t.Errorf("calibration found only %.1f° of error with σ=30° injected", cal.MaxErrorDeg())
	}
	tag := Pt(0.9, -0.8)
	raw, err := sys.Localize(tag)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := sys.LocalizeCalibrated(cal, MethodBLoc, tag)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uncalibrated %.3f m, calibrated %.3f m", raw.Error, fixed.Error)
	if fixed.Error > raw.Error+0.05 {
		t.Errorf("calibration worsened the fix: %.3f -> %.3f", raw.Error, fixed.Error)
	}
}

func TestTrackerSmoothsFixStream(t *testing.T) {
	sys, err := NewSystem(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trk, err := NewTracker(TrackerConfig{MeasurementStd: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// A tag sits still while we acquire repeatedly: the tracked position
	// should beat the typical single fix.
	tag := Pt(0.4, -0.9)
	var lastTracked Point
	var singleErrSum float64
	const n = 12
	for i := 0; i < n; i++ {
		fix, err := sys.Localize(tag)
		if err != nil {
			t.Fatal(err)
		}
		singleErrSum += fix.Error
		lastTracked, _, err = trk.Update(fix.Estimate, 0.2)
		if err != nil {
			t.Fatal(err)
		}
	}
	trackedErr := lastTracked.Dist(tag)
	t.Logf("mean single-fix error %.3f m, tracked %.3f m (uncertainty %.2f, speed %.2f)",
		singleErrSum/n, trackedErr, trk.Uncertainty(), trk.Speed())
	if trackedErr > singleErrSum/n+0.15 {
		t.Errorf("tracking (%.3f) worse than raw fixes (%.3f)", trackedErr, singleErrSum/n)
	}
}

func TestOptionsWithInteriorWalls(t *testing.T) {
	sys, err := NewSystem(Options{
		RoomMin: Pt(0, 0), RoomMax: Pt(6, 4),
		Anchors: 4, Antennas: 4, Seed: 9, PaperRoom: false,
		Walls: []Wall{{A: Pt(3, 0), B: Pt(3, 3), Reflectivity: 0.4, Transmission: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A tag behind the partition still localizes to room scale.
	fix, err := sys.Localize(Pt(4.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if fix.Error > 3 {
		t.Errorf("through-wall error %.2f m beyond room scale", fix.Error)
	}
	// Invalid wall rejected.
	if _, err := NewSystem(Options{
		RoomMin: Pt(0, 0), RoomMax: Pt(6, 4), PaperRoom: false, Seed: 9,
		Walls: []Wall{{A: Pt(1, 1), B: Pt(2, 2), Transmission: 0}},
	}); err == nil {
		t.Error("zero-transmission wall accepted")
	}
}
