package bloc

import (
	"fmt"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/fingerprint"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
	"bloc/internal/testbed"
)

// Point is a 2-D location in meters.
type Point = geom.Point

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Snapshot is one CSI acquisition: the measured channels of every anchor,
// antenna and BLE band for both directions of the master↔tag exchange.
type Snapshot = csi.Snapshot

// Method selects the localization estimator.
type Method int

// Estimators: BLoc itself and the paper's comparison baselines.
const (
	// MethodBLoc is the full pipeline of §5: offset correction, joint
	// angle/relative-distance likelihood, entropy-scored peak selection.
	MethodBLoc Method = iota
	// MethodAoA is the AoA-combining baseline (§8.2): one bearing per
	// anchor, least-squares triangulation.
	MethodAoA
	// MethodAoASoft is an extension baseline: full angular spectra voted
	// over the grid.
	MethodAoASoft
	// MethodShortestDistance is the §8.7 ablation: BLoc's likelihood with
	// naive shortest-total-distance peak selection.
	MethodShortestDistance
	// MethodRSSI is signal-strength trilateration (§9.2 context).
	MethodRSSI
	// MethodMUSIC is a super-resolution AoA baseline (extension): MUSIC
	// pseudo-spectrum bearings triangulated like MethodAoA.
	MethodMUSIC
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodBLoc:
		return "bloc"
	case MethodAoA:
		return "aoa"
	case MethodAoASoft:
		return "aoa-soft"
	case MethodShortestDistance:
		return "shortest-distance"
	case MethodRSSI:
		return "rssi"
	case MethodMUSIC:
		return "music"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Scatterer describes an imperfect metallic reflector in the room: a
// diffuse cluster of reflecting facets around Center.
type Scatterer struct {
	Center Point
	Radius float64 // facet spread, meters
	Gain   float64 // √RCS-like amplitude coefficient
	Facets int
}

// Obstacle is desk-height clutter that attenuates tag-height links
// crossing the segment from A to B.
type Obstacle struct {
	A, B        Point
	Attenuation float64 // amplitude factor in (0, 1]
}

// Wall is an interior partition (full height): it reflects on both faces
// and attenuates links crossing it — the building block of multi-room
// floorplans.
type Wall struct {
	A, B         Point
	Reflectivity float64 // specular amplitude coefficient (e.g. 0.4)
	Transmission float64 // amplitude factor of crossings, (0, 1] (e.g. 0.5 drywall)
}

// Options configures a System.
type Options struct {
	// RoomMin/RoomMax bound the space (meters). Zero values select the
	// paper's 5 m × 6 m VICON room.
	RoomMin, RoomMax Point
	// Anchors is the number of anchor arrays (2–8, default 4); the first
	// is the master the tag connects to.
	Anchors int
	// Antennas per anchor (default 4).
	Antennas int
	// SNRdB is the channel-estimate SNR referenced at 3 m (default 25; 0
	// keeps the default, use NoiseOff to disable).
	SNRdB float64
	// NoiseOff disables measurement noise entirely.
	NoiseOff bool
	// AntennaPhaseErrDeg is the 1-σ static per-antenna calibration error.
	AntennaPhaseErrDeg float64
	// Seed drives every random draw; equal seeds reproduce bit-for-bit.
	Seed uint64
	// PaperRoom fills the room with the multipath-rich furniture of the
	// paper's VICON space (§7). When false, Scatterers/Obstacles below
	// are used (both empty → free space with specular walls).
	PaperRoom bool
	// WallReflectivity is the specular wall coefficient (default 0.45).
	WallReflectivity float64
	Scatterers       []Scatterer
	Obstacles        []Obstacle
	Walls            []Wall
	// GridCellM overrides the XY likelihood resolution (default 0.05 m).
	GridCellM float64
}

// DefaultOptions returns the paper's deployment: the multipath-rich
// 5 m × 6 m room with four 4-antenna anchors at the wall midpoints.
func DefaultOptions() Options {
	return Options{Anchors: 4, Antennas: 4, SNRdB: 25, PaperRoom: true, Seed: 1}
}

// Fix is a localization result.
type Fix struct {
	Estimate Point
	// Truth and Error are populated by Localize (which knows the
	// simulated ground truth); LocalizeSnapshot leaves them zero.
	Truth Point
	Error float64
	// Candidates are BLoc's scored likelihood peaks (nil for baselines
	// that do not produce peak candidates).
	Candidates []core.Candidate
}

// System is a configured BLoc deployment: simulated radio environment,
// anchor geometry and the localization engine.
type System struct {
	opts Options
	dep  *testbed.Deployment
	eng  *core.Engine
	seq  uint64 // acquisition counter for deterministic forking
}

// NewSystem validates the options and builds the deployment and engine.
func NewSystem(opts Options) (*System, error) {
	if opts.Anchors == 0 {
		opts.Anchors = 4
	}
	if opts.Antennas == 0 {
		opts.Antennas = 4
	}
	//lint:ignore floateq unset option sentinel is exactly zero
	if opts.SNRdB == 0 && !opts.NoiseOff {
		opts.SNRdB = 25
	}
	room := testbed.PaperRoom()
	if opts.RoomMin != opts.RoomMax {
		room = geom.NewRect(opts.RoomMin, opts.RoomMax)
		if room.Width() < 1 || room.Height() < 1 {
			return nil, fmt.Errorf("bloc: room %v too small", room)
		}
	}
	var env *rfsim.Environment
	if opts.PaperRoom {
		env = testbed.PaperEnvironment(opts.Seed)
		env.Room = room
	} else {
		env = rfsim.NewEnvironment(room, opts.Seed)
		if opts.WallReflectivity > 0 {
			env.WallReflectivity = opts.WallReflectivity
		}
		env.SecondOrderWalls = true
		for _, s := range opts.Scatterers {
			env.AddScatterer(rfsim.Scatterer{
				Center: s.Center, Radius: s.Radius, Gain: s.Gain, Facets: s.Facets,
			})
		}
		for _, o := range opts.Obstacles {
			if err := env.AddObstacle(rfsim.Obstacle{
				Wall:          geom.Seg(o.A, o.B),
				Attenuation:   o.Attenuation,
				TagHeightOnly: true,
			}); err != nil {
				return nil, fmt.Errorf("bloc: %w", err)
			}
		}
		for _, w := range opts.Walls {
			if err := env.AddInteriorWall(rfsim.InteriorWall{
				Wall:         geom.Seg(w.A, w.B),
				Reflectivity: w.Reflectivity,
				Transmission: w.Transmission,
			}); err != nil {
				return nil, fmt.Errorf("bloc: %w", err)
			}
		}
	}
	snr := opts.SNRdB
	if opts.NoiseOff {
		snr = 0
	}
	dep, err := testbed.New(env, testbed.Config{
		Anchors:            opts.Anchors,
		Antennas:           opts.Antennas,
		SNRdB:              snr,
		Seed:               opts.Seed,
		AntennaPhaseErrDeg: opts.AntennaPhaseErrDeg,
	})
	if err != nil {
		return nil, fmt.Errorf("bloc: %w", err)
	}
	cfg := core.DefaultConfig(room)
	if opts.GridCellM > 0 {
		cfg.CellM = opts.GridCellM
	}
	eng, err := core.NewEngine(dep.Anchors, cfg)
	if err != nil {
		return nil, fmt.Errorf("bloc: %w", err)
	}
	return &System{opts: opts, dep: dep, eng: eng}, nil
}

// Room returns the system's room bounds.
func (s *System) Room() (min, max Point) { return s.dep.Env.Room.Min, s.dep.Env.Room.Max }

// AnchorPositions returns the center of each anchor array, master first.
func (s *System) AnchorPositions() []Point {
	out := make([]Point, len(s.dep.Anchors))
	for i, a := range s.dep.Anchors {
		out[i] = a.Center()
	}
	return out
}

// Acquire simulates one CSI acquisition for a tag at the given true
// position: the tag exchanges sounding packets with the master on every
// BLE data channel while all anchors measure, per §3–§5 of the paper.
func (s *System) Acquire(tag Point) *Snapshot {
	s.seq++
	return s.dep.Fork(s.seq).Sounding(tag)
}

// Localize simulates an acquisition at the given true tag position and
// runs the BLoc estimator, reporting the error against ground truth.
func (s *System) Localize(tag Point) (*Fix, error) {
	return s.LocalizeWith(MethodBLoc, tag)
}

// LocalizeWith is Localize with an explicit estimator.
func (s *System) LocalizeWith(m Method, tag Point) (*Fix, error) {
	fix, err := s.LocalizeSnapshot(m, s.Acquire(tag))
	if err != nil {
		return nil, err
	}
	fix.Truth = tag
	fix.Error = fix.Estimate.Dist(tag)
	return fix, nil
}

// LocalizeSnapshot runs an estimator on an externally supplied snapshot
// (e.g. one assembled by the TCP collection plane).
func (s *System) LocalizeSnapshot(m Method, snap *Snapshot) (*Fix, error) {
	var (
		res *core.Result
		err error
	)
	switch m {
	case MethodBLoc:
		res, err = s.eng.Locate(snap)
	case MethodAoA:
		res, err = s.eng.LocateAoA(snap)
	case MethodAoASoft:
		res, err = s.eng.LocateAoASoft(snap)
	case MethodShortestDistance:
		res, err = s.eng.LocateShortestDistance(snap)
	case MethodRSSI:
		res, err = s.eng.LocateRSSI(snap)
	case MethodMUSIC:
		res, err = s.eng.LocateMUSIC(snap)
	default:
		return nil, fmt.Errorf("bloc: unknown method %v", m)
	}
	if err != nil {
		return nil, err
	}
	return &Fix{Estimate: res.Estimate, Candidates: res.Candidates}, nil
}

// FingerprintDB is a site-survey fingerprint database — the KNN rung of
// the serving plane's degradation ladder (DESIGN.md §16). Build one with
// System.SurveyFingerprints (or bloc-dataset survey), persist it with
// its WriteFile/ReadFile codec, and serve lookups with
// LocalizeFingerprint when too few anchors report for the CSI pipeline.
type FingerprintDB = fingerprint.DB

// SurveyFingerprints walks a reference grid over the room — stepM pitch,
// samples independent soundings medianed per point (both ≤ 0 select the
// defaults: 0.5 m, 3) — and records each point's per-anchor RSSI
// signature: the offline site-survey campaign behind the fingerprint
// rung. Survey forks are salted independently of Acquire's sequence
// counter, so surveying does not perturb later acquisitions.
func (s *System) SurveyFingerprints(stepM float64, samples int) (*FingerprintDB, error) {
	return fingerprint.Survey(s.dep.Env.Room, len(s.dep.Anchors),
		func(point, rep int, p Point) *Snapshot {
			// Same fork-salt convention as bloc-dataset survey.
			return s.dep.Fork(0x5E0<<16 | uint64(point)<<4 | uint64(rep)).Sounding(p)
		}, fingerprint.SurveyOptions{StepM: stepM, Samples: samples})
}

// LocalizeFingerprint localizes a snapshot by weighted-KNN lookup
// against a survey. The snapshot may be partial — anchors with no
// usable rows become NaN in the signature and the lookup matches over
// the overlap — which is exactly the degraded regime (unmet quorum,
// silent reference, dead cell) the fingerprint rung exists to serve.
func (s *System) LocalizeFingerprint(db *FingerprintDB, snap *Snapshot) (*Fix, error) {
	p, err := db.Locate(fingerprint.Signature(snap))
	if err != nil {
		return nil, err
	}
	return &Fix{Estimate: p}, nil
}

// Deployment exposes the underlying testbed for in-module tooling (cmd/,
// benches). It is not part of the stable API surface.
func (s *System) Deployment() *testbed.Deployment { return s.dep }

// Engine exposes the localization engine for in-module tooling.
func (s *System) Engine() *core.Engine { return s.eng }

// Calibrate runs array self-calibration: each anchor measures reference
// transmissions from a neighboring anchor (whose position is known from
// deployment) and estimates its static per-antenna phase errors. The
// returned calibration can be applied to snapshots before localization;
// CalibrateAndApply does both in one step for the common case.
func (s *System) Calibrate() (*core.Calibration, error) {
	s.seq++
	d := s.dep.Fork(0xCA11 + s.seq)
	meas, txPos := d.CalibrationSounding()
	freqs := make([]float64, len(d.Bands))
	for k, ch := range d.Bands {
		freqs[k] = ch.CenterFreq()
	}
	return core.EstimateCalibration(d.Anchors, txPos, freqs, meas)
}

// LocalizeCalibrated simulates an acquisition, applies the calibration
// and runs the estimator.
func (s *System) LocalizeCalibrated(cal *core.Calibration, m Method, tag Point) (*Fix, error) {
	snap, err := cal.Apply(s.Acquire(tag))
	if err != nil {
		return nil, err
	}
	fix, err := s.LocalizeSnapshot(m, snap)
	if err != nil {
		return nil, err
	}
	fix.Truth = tag
	fix.Error = fix.Estimate.Dist(tag)
	return fix, nil
}
