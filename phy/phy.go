// Package phy exposes the BLE physical layer of the BLoc reproduction for
// inspection and experimentation: the GFSK pulse shaping of Fig. 4, the
// channel-sounding packets of §4 and the 40-band channel map of §2.1. It
// is a thin, stable facade over the internal PHY implementation, intended
// for the "tool for the research community" role the paper's conclusion
// envisions.
package phy

import (
	"fmt"

	"bloc/internal/ble"
	"bloc/internal/dsp"
)

// PHY constants re-exported from the BLE substrate.
const (
	NumChannels     = ble.NumChannels
	NumDataChannels = ble.NumDataChannels
	SymbolRateHz    = ble.SymbolRateHz
	GaussianBT      = ble.GaussianBT
)

// ChannelFreq returns the center frequency (Hz) of BLE channel ch
// (0–39), or an error for invalid indices.
func ChannelFreq(ch int) (float64, error) {
	c := ble.ChannelIndex(ch)
	if !c.Valid() {
		return 0, fmt.Errorf("phy: invalid channel %d", ch)
	}
	return c.CenterFreq(), nil
}

// HopSequence returns the channels visited by a connection starting at
// channel first with the given hop increment (5–16), for n connection
// events.
func HopSequence(first, hopIncrement, n int) ([]int, error) {
	h, err := ble.NewHopSequence(ble.ChannelIndex(first), hopIncrement)
	if err != nil {
		return nil, err
	}
	cycle := h.Cycle(n)
	out := make([]int, len(cycle))
	for i, c := range cycle {
		out[i] = int(c)
	}
	return out, nil
}

// ShapeBits returns the Gaussian-filtered NRZ waveform of the given bits
// at sps samples per symbol — the "filtered bits" of Fig. 4. Bit 1 maps
// to +1 (the f1 tone) and bit 0 to −1 (f0).
func ShapeBits(bits []byte, sps int) []float64 {
	return dsp.ShapeBits(bits, ble.GaussianBT, sps, 3)
}

// SoundingWaveform modulates a complete BLoc channel-sounding packet for
// the given BLE data channel and returns its baseband IQ samples together
// with the instantaneous frequency track (in units of the deviation:
// −1 = f0 tone, +1 = f1 tone).
func SoundingWaveform(channel, sps int) (iq []complex128, track []float64, err error) {
	pkt, _, err := ble.SoundingPacket(0x50F0B10C, ble.ChannelIndex(channel), ble.DefaultRunBits)
	if err != nil {
		return nil, nil, err
	}
	bits, err := pkt.AirBits()
	if err != nil {
		return nil, nil, err
	}
	mod := ble.NewModulator(sps)
	iq = mod.Modulate(bits)
	return iq, mod.FrequencyTrack(iq), nil
}
