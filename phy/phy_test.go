package phy

import (
	"math"
	"testing"
)

func TestChannelFreq(t *testing.T) {
	f, err := ChannelFreq(0)
	if err != nil || f != 2404e6 {
		t.Errorf("ChannelFreq(0) = %v, %v", f, err)
	}
	if _, err := ChannelFreq(40); err == nil {
		t.Error("invalid channel should fail")
	}
}

func TestHopSequence(t *testing.T) {
	seq, err := HopSequence(10, 5, 37)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range seq {
		seen[c] = true
	}
	if len(seen) != 37 {
		t.Errorf("hop sequence visited %d channels, want 37", len(seen))
	}
	if _, err := HopSequence(0, 99, 5); err == nil {
		t.Error("invalid hop increment should fail")
	}
}

func TestShapeBitsSettles(t *testing.T) {
	w := ShapeBits([]byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, 8)
	if math.Abs(w[2*8+4]+1) > 0.01 || math.Abs(w[7*8+4]-1) > 0.01 {
		t.Error("runs did not settle at ±1")
	}
}

func TestSoundingWaveform(t *testing.T) {
	iq, track, err := SoundingWaveform(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(iq) == 0 || len(track) != len(iq) {
		t.Fatalf("lengths %d/%d", len(iq), len(track))
	}
	// Some samples sit at each tone.
	lo, hi := 0, 0
	for _, v := range track {
		if math.Abs(v+1) < 0.02 {
			lo++
		}
		if math.Abs(v-1) < 0.02 {
			hi++
		}
	}
	if lo < 50 || hi < 50 {
		t.Errorf("tones underrepresented: %d at f0, %d at f1", lo, hi)
	}
	if _, _, err := SoundingWaveform(99, 4); err == nil {
		t.Error("invalid channel should fail")
	}
}
