package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/fingerprint"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
)

// fleetOpts carries the parsed flags into the -cells > 1 path.
type fleetOpts struct {
	cells    int
	listen   string
	dep      *testbed.Deployment // per-cell deployment template (geometry shared)
	logger   *slog.Logger
	anchors  int // per cell
	antennas int
	seed     uint64

	deadline    time.Duration
	minAnchors  int
	minBands    int
	heartbeat   time.Duration
	statsIvl    time.Duration
	calibrate   bool
	stateDir    string
	ckptIvl     time.Duration
	stateTTL    time.Duration
	drainWait   time.Duration
	fixWorkers  int
	fixQueue    int
	fixBudget   time.Duration
	adaptiveDdl bool
	breaker     locserver.BreakerConfig
	fpdb        *fingerprint.DB // fingerprint rung survey; nil disables the rung
}

// cellAddrs derives each cell's listen address from the base -listen:
// consecutive ports from the base port, or all-ephemeral when it is 0.
func cellAddrs(listen string, cells int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return nil, fmt.Errorf("-listen %q: %w", listen, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-listen port %q: %w", portStr, err)
	}
	addrs := make([]string, cells)
	for i := range addrs {
		p := "0"
		if port != 0 {
			p = strconv.Itoa(port + i)
		}
		addrs[i] = net.JoinHostPort(host, p)
	}
	return addrs, nil
}

// runFleet serves as a supervised multi-cell fleet: every cell owns its
// anchors, engine, tag state and snapshot store, and a panic inside one
// cell never reaches the others.
//
// Note on the fallback plane: each cell's TCP listener is owned by the
// fleet and survives the cell's restarts, so a down cell's anchors keep
// a dialable address throughout the outage. While the cell is down the
// fleet itself accepts on that listener and routes the rows into the
// fallback collector — complete rounds become flagged coarse fixes
// computed by a neighbor cell, the same degraded service the in-process
// ingest path (Fleet.IngestRow) has always had. See DESIGN.md §15/§16.
func runFleet(o fleetOpts) {
	addrs, err := cellAddrs(o.listen, o.cells)
	if err != nil {
		log.Fatal(err)
	}

	// Per-cell planes. All cells share the deployment's geometry (each
	// serves a congruent set of anchors), so one calibration estimate
	// seeds every cell's tag state.
	engines := make([]*core.Engine, o.cells)
	states := make([]*tagState, o.cells)
	for i := range engines {
		eng, err := core.NewEngine(o.dep.Anchors, core.DefaultConfig(o.dep.Env.Room))
		if err != nil {
			log.Fatal(err)
		}
		engines[i] = eng
		states[i] = newTagState(o.fpdb)
	}

	var ckpt func(cell int) *locserver.CheckpointConfig
	if o.stateDir != "" {
		stores := make([]*durable.Store, o.cells)
		for i := range stores {
			st, err := durable.Open(fmt.Sprintf("%s/cell-%d", o.stateDir, i))
			if err != nil {
				log.Fatal(err)
			}
			stores[i] = st
		}
		ckpt = func(cell int) *locserver.CheckpointConfig {
			ts := states[cell]
			return &locserver.CheckpointConfig{
				Store:    stores[cell],
				Interval: o.ckptIvl,
				StateTTL: o.stateTTL,
				Export:   ts.export,
				Restore: func(ext durable.External) error {
					return ts.restore(ext, o.logger.With("cell", cell))
				},
			}
		}
	}

	f, err := locserver.NewFleet(locserver.FleetConfig{
		Cells:     o.cells,
		CellAddrs: addrs,
		Cell: locserver.Config{
			Anchors:           o.anchors,
			Antennas:          o.antennas,
			Bands:             o.dep.Bands,
			RoundDeadline:     o.deadline,
			MinAnchors:        o.minAnchors,
			MinBands:          o.minBands,
			HeartbeatInterval: o.heartbeat,
			FixWorkers:        o.fixWorkers,
			FixQueueDepth:     o.fixQueue,
			FixBudget:         o.fixBudget,
			AdaptiveDeadline:  o.adaptiveDdl,
			Breaker:           o.breaker,
			Fingerprint:       o.fpdb != nil,
		},
		OnSnapshot: func(cell int, info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			// `cell` is the serving cell — the tag's own on healthy rounds,
			// a neighbor on fallback rounds. A fallback round observes its
			// snapshot into the neighbor's filter first, so the KNN lookup
			// below always has at least this round's signature to match.
			ts, eng := states[cell], engines[cell]
			ts.observeRSSI(info.Tag, snap)
			if info.Coarse {
				if info.Tier == locserver.TierFingerprint {
					if p, err := ts.fingerprintFix(info.Tag); err == nil {
						return ts.smooth(info.Tag, p), nil
					}
				}
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return ts.smooth(info.Tag, res.Estimate), nil
			}
			if cal := ts.calibration(); cal != nil {
				corrected, err := cal.Apply(snap)
				if err == nil {
					snap = corrected
				} else {
					o.logger.Warn("calibration apply failed, using raw snapshot", "cell", cell, "err", err)
				}
			}
			var prior *core.Prior
			if info.Tracked {
				prior = ts.prior(info.Tag)
			}
			res, err := eng.LocateOpts(snap, core.LocateOptions{Ref: info.Ref, Prior: prior})
			if err != nil {
				return geom.Point{}, err
			}
			if prior != nil {
				ts.observe(info.Tag, res)
			}
			return ts.smooth(info.Tag, res.Estimate), nil
		},
		Checkpoint: ckpt,
		Supervisor: locserver.SupervisorConfig{Seed: o.seed},
		Logger:     o.logger,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One shared calibration estimate (skipped per cell when a fresh
	// snapshot already restored one).
	if o.calibrate {
		d := o.dep.Fork(0xCA11)
		meas, txPos := d.CalibrationSounding()
		freqs := make([]float64, len(d.Bands))
		for k, ch := range d.Bands {
			freqs[k] = ch.CenterFreq()
		}
		cal, err := core.EstimateCalibration(d.Anchors, txPos, freqs, meas)
		if err != nil {
			o.logger.Error("calibration failed, continuing uncalibrated", "err", err)
		} else {
			for _, ts := range states {
				if ts.calibration() == nil {
					ts.setCalibration(cal)
				}
			}
			o.logger.Info("array calibrated", "max_err_deg", cal.MaxErrorDeg())
		}
	}
	for i := 0; i < o.cells; i++ {
		o.logger.Info("cell listening", "cell", i, "addr", f.CellAddr(i))
	}
	o.logger.Info("bloc-server fleet up", "cells", o.cells,
		"anchors_per_cell", o.anchors, "durable", o.stateDir != "")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.statsIvl > 0 {
		go func() {
			//lint:ignore clockcheck operator stats cadence is wall-clock by design
			tick := time.NewTicker(o.statsIvl)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					fs := f.Stats()
					agg := fs.Agg
					o.logger.Info("fleet stats",
						"rounds_full", agg.Full,
						"rounds_partial", agg.Partial,
						"rounds_coarse", agg.Coarse,
						"rounds_evicted", agg.Evicted,
						"rows_rejected", agg.RowsRejected,
						"checkpoints", agg.Checkpoints,
						"warm_restores", agg.WarmRestores,
						"queue_peak", agg.QueuePeak,
						"overload_degraded", agg.OverloadDegraded,
						"overload_shed", agg.OverloadShed,
						"tier_gated", agg.TierGatedRounds,
						"tier_full", agg.TierFullRounds,
						"tier_fingerprint", agg.TierFingerprintRounds,
						"tier_centroid", agg.TierCentroidRounds,
						"tier_demotions", agg.TierDemotions,
						"tier_promotions", agg.TierPromotions,
						"tier_holdbacks", agg.TierHoldbacks,
						"panics_recovered", agg.PanicsRecovered,
						"breaker_opens", agg.BreakerOpens,
						"breaker_probes", agg.BreakerProbes,
						"breaker_skips", agg.BreakerSkips,
						"cell_restarts", agg.CellRestarts,
						"cells_quarantined", agg.CellsQuarantined,
						"fallback_fixes", fs.FallbackFixes,
						"fallback_panics", fs.FallbackPanics,
						"fallback_dropped", fs.FallbackDropped,
						"routed_tags", fs.RoutedTags,
					)
					for _, cs := range fs.Cells {
						if !cs.Running || cs.State != "healthy" {
							o.logger.Warn("cell unhealthy", "cell", cs.Cell,
								"running", cs.Running, "state", cs.State, "restarts", cs.Restarts)
						}
					}
				}
			}
		}()
	}

	<-ctx.Done()
	stop()
	o.logger.Info("signal received, draining fleet", "timeout", o.drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	if err := f.Drain(dctx); err != nil {
		o.logger.Error("drain", "err", err)
		os.Exit(1)
	}
	o.logger.Info("drained cleanly")
}
