// Command bloc-server runs BLoc's central localization server: it accepts
// anchor connections, assembles per-round CSI snapshots and prints a fix
// per completed round (§3's central server as a real network service).
//
// Usage:
//
//	bloc-server [-listen 127.0.0.1:7100] [-anchors 4] [-antennas 4] [-seed 1]
//	            [-round-deadline 2s] [-min-anchors 2] [-min-bands 1]
//	            [-heartbeat 2s] [-stats 1m]
//
// The seed must match the anchors' seed: it defines the shared simulated
// deployment geometry the localization engine needs. Rounds that miss the
// deadline complete from a partial snapshot when at least -min-anchors
// anchors contributed -min-bands usable bands; set -round-deadline 0 to
// wait forever for every row.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7100", "listen address")
		anchors   = flag.Int("anchors", 4, "number of anchors")
		antennas  = flag.Int("antennas", 4, "antennas per anchor")
		seed      = flag.Uint64("seed", 1, "shared deployment seed")
		deadline  = flag.Duration("round-deadline", 2*time.Second, "partial-round deadline (0 waits forever)")
		minAnch   = flag.Int("min-anchors", 2, "quorum: anchors required at the deadline")
		minBands  = flag.Int("min-bands", 1, "quorum: usable bands per counted anchor")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "anchor liveness probe interval (0 disables)")
		statsIvl  = flag.Duration("stats", time.Minute, "engine/server stats log interval (0 disables)")
	)
	flag.Parse()

	env := testbed.PaperEnvironment(*seed)
	cfg := testbed.PaperConfig(*seed)
	cfg.Anchors = *anchors
	cfg.Antennas = *antennas
	dep, err := testbed.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := locserver.New(*listen, locserver.Config{
		Anchors:           *anchors,
		Antennas:          *antennas,
		Bands:             dep.Bands,
		RoundDeadline:     *deadline,
		MinAnchors:        *minAnch,
		MinBands:          *minBands,
		HeartbeatInterval: *heartbeat,
		OnSnapshot: func(info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			// Degraded rounds carry too few correction-grade rows for the
			// CSI pipeline; fall back to RSSI-only trilateration.
			if info.Coarse {
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return res.Estimate, nil
			}
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
		Logger: logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("bloc-server listening", "addr", srv.Addr(), "anchors", *anchors)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic operator stats: engine perf counters (fix count, steering-
	// plane builds, precomputed-table footprint, scratch-pool efficiency)
	// alongside the server's round outcomes.
	if *statsIvl > 0 {
		go func() {
			tick := time.NewTicker(*statsIvl)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					es := eng.Stats()
					ss := srv.Stats()
					logger.Info("stats",
						"fixes", es.Fixes,
						"plane_builds", es.PlaneBuilds,
						"proj_builds", es.ProjBuilds,
						"table_kib", es.TableBytes/1024,
						"pool_hits", es.PoolHits,
						"pool_misses", es.PoolMisses,
						"rows_masked", es.RowsMasked,
						"rounds_full", ss.Full,
						"rounds_partial", ss.Partial,
						"rounds_coarse", ss.Coarse,
						"rounds_evicted", ss.Evicted,
						"conns_pruned", ss.Pruned,
						"rows_rejected", ss.RowsRejected,
						"quarantines", ss.Quarantines,
						"readmissions", ss.Readmissions,
						"reelections", ss.Reelections,
						"reference", ss.Reference,
					)
				}
			}
		}()
	}

	if err := srv.Serve(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
}
