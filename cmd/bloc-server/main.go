// Command bloc-server runs BLoc's central localization server: it accepts
// anchor connections, assembles per-round CSI snapshots and prints a fix
// per completed round (§3's central server as a real network service).
//
// Usage:
//
//	bloc-server [-listen 127.0.0.1:7100] [-anchors 4] [-antennas 4] [-seed 1]
//	            [-round-deadline 2s] [-min-anchors 2] [-min-bands 1]
//	            [-heartbeat 2s] [-stats 1m] [-calibrate]
//	            [-state-dir dir] [-checkpoint 2s] [-state-ttl 1h]
//	            [-drain-timeout 10s] [-fix-workers 2] [-fix-queue 64]
//	            [-fix-budget 0] [-adaptive-deadline] [-cells 1]
//	            [-breaker-threshold 3] [-breaker-cooldown 2s]
//	            [-fingerprint site.fpdb]
//
// The seed must match the anchors' seed: it defines the shared simulated
// deployment geometry the localization engine needs. Rounds that miss the
// deadline complete from a partial snapshot when at least -min-anchors
// anchors contributed -min-bands usable bands; set -round-deadline 0 to
// wait forever for every row.
//
// With -state-dir the server becomes crash-safe (DESIGN.md §11): every
// -checkpoint interval it persists anchor health, the elected reference,
// the calibration rotors and the per-tag Kalman tracks to a dual-slot
// snapshot store, and on startup it warm-restores from the newest valid
// snapshot no older than -state-ttl. On SIGINT/SIGTERM the server drains:
// it stops admitting new rounds, finishes the in-flight ones (bounded by
// -drain-timeout), writes a final checkpoint and exits; a second signal
// forces immediate termination.
//
// The overload plane (DESIGN.md §12) is always on: fix computation runs
// on -fix-workers goroutines behind a bounded queue of -fix-queue jobs
// whose depth drives hysteretic admission control (degrade to the coarse
// fix, then shed untracked tags first). -fix-budget caps first-row-to-
// broadcast latency per round — a fix that would arrive later than the
// budget is dropped, not delivered stale. -adaptive-deadline tightens the
// round deadline to the live p95 arrival latency of punctual anchors and
// excludes hysteretically-marked laggy anchors from quorum waits.
//
// With -cells N (N > 1) the server runs as a supervised fleet (DESIGN.md
// §15): N fault-isolated cells, each owning -anchors anchors, its own
// engine and tag state, listening on consecutive ports from -listen and
// checkpointing to -state-dir/cell-<i>. A cell that panics is restarted
// by its supervisor with exponential backoff and warm-restores from its
// own snapshots; while it is down, its tags degrade to flagged coarse
// fallback fixes computed by a neighbor cell. Writes to every anchor
// link sit behind a per-link circuit breaker: -breaker-threshold
// consecutive failures open it (skipping further writes), and after
// -breaker-cooldown a single half-open probe decides whether it closes.
//
// With -fingerprint the server loads a site-survey fingerprint database
// (bloc-dataset survey) and enables the fingerprint rung of the
// degradation ladder (DESIGN.md §16): degraded rounds — unmet quorums,
// overload demotions, a down cell's fallback fixes — are served by a
// weighted-KNN lookup over the tag's median+EWMA-filtered live RSSI
// instead of falling straight to the RSSI-trilateration centroid. Every
// fix carries an explicit quality tier (gated-csi, full-csi,
// fingerprint, centroid), visible in the fix logs and the tier_*
// -stats keys. The survey's seed must match -seed.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/fingerprint"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
	"bloc/internal/track"
)

// tagState is the durable per-process state bloc-server owns on top of
// the locserver: the array calibration and one Kalman tracker per tag.
type tagState struct {
	fpdb *fingerprint.DB // fingerprint rung survey; nil disables the rung

	mu    sync.Mutex
	cal   *core.Calibration              // guarded by mu; nil until calibrated or restored
	trks  map[uint16]*track.Filter       // guarded by mu
	last  map[uint16]int64               // unix nanos of each tag's last fused fix; guarded by mu
	gates map[uint16]*core.GatePolicy    // per-tag gating hysteresis; guarded by mu
	fps   map[uint16]*fingerprint.Filter // per-tag live-RSSI filters; guarded by mu
	now   func() time.Time
}

func newTagState(fpdb *fingerprint.DB) *tagState {
	return &tagState{
		fpdb:  fpdb,
		trks:  make(map[uint16]*track.Filter),
		last:  make(map[uint16]int64),
		gates: make(map[uint16]*core.GatePolicy),
		fps:   make(map[uint16]*fingerprint.Filter),
		now:   time.Now,
	}
}

// observeRSSI feeds a round's raw RSSI signature into the tag's live
// median+EWMA filter — on every round, not just degraded ones, so the
// fingerprint rung has a warm signature the moment the ladder demotes
// the tag.
func (ts *tagState) observeRSSI(tag uint16, snap *csi.Snapshot) {
	if ts.fpdb == nil {
		return
	}
	sig := fingerprint.Signature(snap)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	filt := ts.fps[tag]
	if filt == nil {
		filt = fingerprint.NewFilter(ts.fpdb.Anchors, fingerprint.FilterOptions{})
		ts.fps[tag] = filt
	}
	filt.Observe(sig)
}

// fingerprintFix runs the KNN rung for a tag. ErrNoMatch (or a cold
// filter) tells the caller to fall to the centroid floor.
func (ts *tagState) fingerprintFix(tag uint16) (geom.Point, error) {
	var sig []float64
	ts.mu.Lock()
	if filt := ts.fps[tag]; filt != nil {
		sig = filt.Signature()
	}
	ts.mu.Unlock()
	if ts.fpdb == nil || sig == nil {
		return geom.Point{}, fingerprint.ErrNoMatch
	}
	return ts.fpdb.Locate(sig)
}

// prior derives the gated-search prior for a tag from its tracker's 1σ
// confidence ellipse, scaled by the tag's GatePolicy hysteresis. It
// returns nil — run the full grid — when the tag has no initialized
// track or the covariance is unusable.
func (ts *tagState) prior(tag uint16) *core.Prior {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	f := ts.trks[tag]
	if f == nil {
		return nil
	}
	ell, ok := f.ConfidenceEllipse(1)
	if !ok {
		return nil
	}
	g := ts.gates[tag]
	if g == nil {
		g = core.NewGatePolicy()
		ts.gates[tag] = g
	}
	p := g.Prior(ell.Center, ell.SemiMajor, ell.SemiMinor, ell.Theta)
	return &p
}

// observe feeds a fix outcome back into the tag's gating hysteresis.
func (ts *tagState) observe(tag uint16, res *core.Result) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if g := ts.gates[tag]; g != nil {
		g.Observe(res)
	}
}

// calibration returns the current calibration (nil when cold).
func (ts *tagState) calibration() *core.Calibration {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.cal
}

func (ts *tagState) setCalibration(cal *core.Calibration) {
	ts.mu.Lock()
	ts.cal = cal
	ts.mu.Unlock()
}

// smooth runs one raw fix through the tag's Kalman tracker and returns
// the smoothed position. A rejected (gated or non-finite) fix leaves the
// coasted prediction as the estimate.
func (ts *tagState) smooth(tag uint16, raw geom.Point) geom.Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	f := ts.trks[tag]
	if f == nil {
		nf, err := track.New(track.DefaultConfig())
		if err != nil {
			return raw // unreachable with DefaultConfig; fail open
		}
		f = nf
		ts.trks[tag] = f
	}
	now := ts.now().UnixNano()
	dt := 0.1
	if last := ts.last[tag]; last != 0 && now > last {
		dt = float64(now-last) / float64(time.Second)
	}
	pos, ok, err := f.Update(raw, dt)
	if err != nil || !ok {
		if f.Initialized() {
			return pos // coasted prediction
		}
		return raw
	}
	ts.last[tag] = now
	return pos
}

// export snapshots the calibration and every tracker for a checkpoint.
func (ts *tagState) export() durable.External {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var ext durable.External
	if ts.cal != nil {
		ext.Calib = ts.cal.ExportRotors()
	}
	for tag, f := range ts.trks {
		st := f.Export()
		ext.Tracks = append(ext.Tracks, durable.TagTrack{
			Tag:             tag,
			Initialized:     st.Initialized,
			Misses:          st.Misses,
			LastFixUnixNano: ts.last[tag],
			X:               st.X,
			P:               st.P,
		})
	}
	return ext
}

// restore rebuilds the calibration and trackers from a restored
// snapshot. Invalid pieces are skipped individually: a poisoned track
// must not take the calibration down with it.
func (ts *tagState) restore(ext durable.External, logger *slog.Logger) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ext.Calib != nil {
		cal, err := core.RestoreCalibration(ext.Calib)
		if err != nil {
			logger.Warn("restored calibration rejected, will recalibrate", "err", err)
		} else {
			ts.cal = cal
			logger.Info("calibration restored", "anchors", len(ext.Calib),
				"max_err_deg", cal.MaxErrorDeg())
		}
	}
	for _, tr := range ext.Tracks {
		f, err := track.New(track.DefaultConfig())
		if err != nil {
			return err
		}
		st := track.FilterState{Initialized: tr.Initialized, Misses: tr.Misses, X: tr.X, P: tr.P}
		if err := f.Restore(st); err != nil {
			logger.Warn("restored track rejected", "tag", tr.Tag, "err", err)
			continue
		}
		ts.trks[tr.Tag] = f
		ts.last[tr.Tag] = tr.LastFixUnixNano
	}
	return nil
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7100", "listen address")
		anchors   = flag.Int("anchors", 4, "number of anchors")
		antennas  = flag.Int("antennas", 4, "antennas per anchor")
		seed      = flag.Uint64("seed", 1, "shared deployment seed")
		deadline  = flag.Duration("round-deadline", 2*time.Second, "partial-round deadline (0 waits forever)")
		minAnch   = flag.Int("min-anchors", 2, "quorum: anchors required at the deadline")
		minBands  = flag.Int("min-bands", 1, "quorum: usable bands per counted anchor")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "anchor liveness probe interval (0 disables)")
		statsIvl  = flag.Duration("stats", time.Minute, "engine/server stats log interval (0 disables)")
		calibrate = flag.Bool("calibrate", false, "estimate array calibration at startup (skipped when restored)")

		stateDir  = flag.String("state-dir", "", "durable snapshot directory (empty disables checkpointing)")
		ckptIvl   = flag.Duration("checkpoint", 2*time.Second, "checkpoint interval")
		stateTTL  = flag.Duration("state-ttl", time.Hour, "discard snapshots older than this on restore")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "max time to finish in-flight rounds on shutdown")

		fixWorkers  = flag.Int("fix-workers", 2, "fix-computation workers draining the bounded queue")
		fixQueue    = flag.Int("fix-queue", 64, "bounded fix-queue depth (admission-control watermarks derive from it)")
		fixBudget   = flag.Duration("fix-budget", 0, "per-round latency budget first row→broadcast; exhausted fixes are dropped (0 disables)")
		adaptiveDdl = flag.Bool("adaptive-deadline", false, "adapt the round deadline to the live p95 of punctual anchors (requires -round-deadline > 0)")

		cells        = flag.Int("cells", 1, "supervised fault-isolated cells; >1 shards -anchors-per-cell across consecutive ports (DESIGN.md §15)")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive send failures opening an anchor link's circuit breaker (<0 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open probe")
		fpPath       = flag.String("fingerprint", "", "site-survey fingerprint DB (bloc-dataset survey); enables the ladder's fingerprint rung")
	)
	flag.Parse()

	env := testbed.PaperEnvironment(*seed)
	cfg := testbed.PaperConfig(*seed)
	cfg.Anchors = *anchors
	cfg.Antennas = *antennas
	dep, err := testbed.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var fpdb *fingerprint.DB
	if *fpPath != "" {
		fpdb, err = fingerprint.ReadFile(*fpPath)
		if err != nil {
			log.Fatal(err)
		}
		if fpdb.Anchors != *anchors {
			log.Fatalf("-fingerprint %s surveyed %d anchors, deployment has %d per cell",
				*fpPath, fpdb.Anchors, *anchors)
		}
		logger.Info("fingerprint survey loaded", "path", *fpPath,
			"points", len(fpdb.Points), "anchors", fpdb.Anchors, "step_m", fpdb.StepM)
	}

	if *cells > 1 {
		runFleet(fleetOpts{
			cells: *cells, listen: *listen, dep: dep, logger: logger,
			anchors: *anchors, antennas: *antennas, seed: *seed,
			deadline: *deadline, minAnchors: *minAnch, minBands: *minBands,
			heartbeat: *heartbeat, statsIvl: *statsIvl, calibrate: *calibrate,
			stateDir: *stateDir, ckptIvl: *ckptIvl, stateTTL: *stateTTL,
			drainWait: *drainWait, fixWorkers: *fixWorkers, fixQueue: *fixQueue,
			fixBudget: *fixBudget, adaptiveDdl: *adaptiveDdl,
			breaker: locserver.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
			fpdb:    fpdb,
		})
		return
	}

	ts := newTagState(fpdb)

	var ckpt *locserver.CheckpointConfig
	if *stateDir != "" {
		store, err := durable.Open(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		ckpt = &locserver.CheckpointConfig{
			Store:    store,
			Interval: *ckptIvl,
			StateTTL: *stateTTL,
			Export:   ts.export,
			Restore: func(ext durable.External) error {
				return ts.restore(ext, logger)
			},
		}
	}

	srv, err := locserver.New(*listen, locserver.Config{
		Anchors:           *anchors,
		Antennas:          *antennas,
		Bands:             dep.Bands,
		RoundDeadline:     *deadline,
		MinAnchors:        *minAnch,
		MinBands:          *minBands,
		HeartbeatInterval: *heartbeat,
		Checkpoint:        ckpt,
		FixWorkers:        *fixWorkers,
		FixQueueDepth:     *fixQueue,
		FixBudget:         *fixBudget,
		AdaptiveDeadline:  *adaptiveDdl,
		Breaker:           locserver.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		Fingerprint:       fpdb != nil,
		OnSnapshot: func(info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			ts.observeRSSI(info.Tag, snap)
			// Degraded rounds carry too few correction-grade rows for the
			// CSI pipeline; serve them at the ladder rung the server
			// admitted them at — fingerprint KNN when a survey is loaded,
			// the RSSI-trilateration centroid otherwise (or when the live
			// signature overlaps too few surveyed anchors).
			if info.Coarse {
				if info.Tier == locserver.TierFingerprint {
					if p, err := ts.fingerprintFix(info.Tag); err == nil {
						return ts.smooth(info.Tag, p), nil
					}
				}
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return ts.smooth(info.Tag, res.Estimate), nil
			}
			if cal := ts.calibration(); cal != nil {
				corrected, err := cal.Apply(snap)
				if err == nil {
					snap = corrected
				} else {
					logger.Warn("calibration apply failed, using raw snapshot", "err", err)
				}
			}
			// Tracked tags localize through the prior-gated coarse-to-fine
			// search (DESIGN.md §14); everything else takes the full grid.
			var prior *core.Prior
			if info.Tracked {
				prior = ts.prior(info.Tag)
			}
			res, err := eng.LocateOpts(snap, core.LocateOptions{Ref: info.Ref, Prior: prior})
			if err != nil {
				return geom.Point{}, err
			}
			if prior != nil {
				ts.observe(info.Tag, res)
			}
			return ts.smooth(info.Tag, res.Estimate), nil
		},
		Logger: logger,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate only when nothing (fresh enough) was restored: the whole
	// point of the warm restart is skipping this step.
	if *calibrate && ts.calibration() == nil {
		d := dep.Fork(0xCA11)
		meas, txPos := d.CalibrationSounding()
		freqs := make([]float64, len(d.Bands))
		for k, ch := range d.Bands {
			freqs[k] = ch.CenterFreq()
		}
		cal, err := core.EstimateCalibration(d.Anchors, txPos, freqs, meas)
		if err != nil {
			logger.Error("calibration failed, continuing uncalibrated", "err", err)
		} else {
			ts.setCalibration(cal)
			logger.Info("array calibrated", "max_err_deg", cal.MaxErrorDeg())
		}
	}
	logger.Info("bloc-server listening", "addr", srv.Addr(), "anchors", *anchors,
		"durable", *stateDir != "")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic operator stats: engine perf counters (fix count, steering-
	// plane builds, precomputed-table footprint, scratch-pool efficiency)
	// alongside the server's round outcomes and durability counters.
	if *statsIvl > 0 {
		go func() {
			//lint:ignore clockcheck operator stats cadence is wall-clock by design
			tick := time.NewTicker(*statsIvl)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					es := eng.Stats()
					ss := srv.Stats()
					logger.Info("stats",
						"fixes", es.Fixes,
						"plane_builds", es.PlaneBuilds,
						"proj_builds", es.ProjBuilds,
						"table_kib", es.TableBytes/1024,
						"pool_hits", es.PoolHits,
						"pool_misses", es.PoolMisses,
						"rows_masked", es.RowsMasked,
						"gated_fixes", es.GatedFixes,
						"full_fixes", es.FullFixes,
						"gated_fallbacks", es.FallbackDisagree+es.FallbackLowConf+es.FallbackNoPeaks,
						"tiles_refined", es.TilesRefined,
						"tiles_total", es.TilesTotal,
						"rounds_full", ss.Full,
						"rounds_partial", ss.Partial,
						"rounds_coarse", ss.Coarse,
						"rounds_evicted", ss.Evicted,
						"conns_pruned", ss.Pruned,
						"rows_rejected", ss.RowsRejected,
						"quarantines", ss.Quarantines,
						"readmissions", ss.Readmissions,
						"reelections", ss.Reelections,
						"reference", ss.Reference,
						"checkpoints", ss.Checkpoints,
						"checkpoint_errors", ss.CheckpointErrors,
						"checkpoint_kib", ss.CheckpointBytes/1024,
						"warm_restores", ss.WarmRestores,
						"stale_discards", ss.StaleDiscards,
						"snapshot_fallbacks", ss.SnapshotFallbacks,
						"tier_gated", ss.TierGatedRounds,
						"tier_full", ss.TierFullRounds,
						"tier_fingerprint", ss.TierFingerprintRounds,
						"tier_centroid", ss.TierCentroidRounds,
						"tier_demotions", ss.TierDemotions,
						"tier_promotions", ss.TierPromotions,
						"tier_holdbacks", ss.TierHoldbacks,
						"serve_mode", ss.Mode,
						"mode_changes", ss.ModeChanges,
						"queue_depth", ss.QueueDepth,
						"queue_peak", ss.QueuePeak,
						"overload_degraded", ss.OverloadDegraded,
						"overload_shed", ss.OverloadShed,
						"budget_exceeded", ss.BudgetExceeded,
						"laggy_anchors", ss.LaggyAnchors,
						"laggy_marks", ss.LaggyMarks,
						"laggy_readmits", ss.LaggyReadmits,
						"early_completions", ss.EarlyCompletions,
						"panics_recovered", ss.PanicsRecovered,
						"breaker_opens", ss.BreakerOpens,
						"breaker_probes", ss.BreakerProbes,
						"breaker_skips", ss.BreakerSkips,
						"cell_restarts", ss.CellRestarts,
						"cells_quarantined", ss.CellsQuarantined,
					)
				}
			}
		}()
	}

	<-ctx.Done()
	// Restore default signal disposition: a second SIGINT/SIGTERM during
	// the drain kills the process immediately.
	stop()
	logger.Info("signal received, draining", "timeout", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Error("drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
