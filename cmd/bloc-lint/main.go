// Command bloc-lint runs BLoc's domain-aware static analyzers over the
// packages matching its arguments (default ./...) and exits non-zero on
// findings. See internal/lint for the analyzers and the //lint:ignore
// suppression convention, and DESIGN.md §8 for the invariants each one
// guards.
//
// Usage:
//
//	bloc-lint [-analyzers unitcheck,floateq] [-list] [packages...]
//
// Exit status: 0 clean, 1 findings, 2 load or type-check failure.
package main

import (
	"os"

	"bloc/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Stdout, os.Stderr, "", os.Args[1:]))
}
