// Command bloc-anchor runs one BLoc anchor daemon: it measures the CSI of
// simulated tag↔master exchanges and streams per-band reports to the
// central server, printing every fix the server broadcasts back.
//
// Usage:
//
//	bloc-anchor -id 0 [-server 127.0.0.1:7100] [-seed 1] [-rounds 10]
//	            [-tag "0.8,-0.6"] [-backoff-initial 100ms] [-backoff-max 5s]
//	            [-no-reconnect]
//
// All anchors of a deployment must share -seed (the simulated world) and
// report the same tag trajectory; see examples/distributed for a scripted
// multi-anchor run.
//
// SIGINT/SIGTERM stops the daemon gracefully: the measurement loop ends
// after the current round and the server connection is closed cleanly, so
// the server sees an orderly EOF rather than a vanished peer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

func main() {
	var (
		id     = flag.Int("id", 0, "anchor id (0 = master)")
		server = flag.String("server", "127.0.0.1:7100", "server address")
		seed   = flag.Uint64("seed", 1, "shared deployment seed")
		rounds = flag.Int("rounds", 10, "acquisition rounds to report")
		tagID  = flag.Int("tagid", 0, "tag identifier (multi-tag deployments)")
		tagPos = flag.String("tag", "0.8,-0.6", "tag position as x,y")
		period = flag.Duration("period", 200*time.Millisecond, "delay between rounds")

		backoffInit = flag.Duration("backoff-initial", 100*time.Millisecond, "first reconnect delay")
		backoffMax  = flag.Duration("backoff-max", 5*time.Second, "reconnect delay ceiling")
		noReconnect = flag.Bool("no-reconnect", false, "fail fast on a lost server connection")
	)
	flag.Parse()

	tag, err := parsePoint(*tagPos)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	d, err := anchor.New(*id, dep, logger)
	if err != nil {
		log.Fatal(err)
	}
	d.Backoff = anchor.Backoff{Initial: *backoffInit, Max: *backoffMax}
	d.DisableReconnect = *noReconnect
	d.OnFix = func(f wire.Fix) {
		logger.Info("fix received", "round", f.Round, "x", f.X, "y", f.Y)
	}
	if err := d.Connect(*server); err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	logger.Info("anchor connected", "id", *id, "server", *server)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

loop:
	for r := 1; r <= *rounds; r++ {
		if err := d.MeasureAndReport(uint16(*tagID), uint32(r), tag); err != nil {
			log.Fatal(err)
		}
		select {
		case <-ctx.Done():
			logger.Info("signal received, stopping after round", "round", r)
			break loop
		case <-time.After(*period):
		}
	}
	stop() // a second signal now terminates immediately

	// Give the last fix broadcast a moment to arrive before closing the
	// connection cleanly (deferred d.Close sends the server an EOF).
	select {
	case <-ctx.Done():
	case <-time.After(500 * time.Millisecond):
	}
	logger.Info("anchor shut down cleanly", "id", *id)
}

func parsePoint(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("bad point %q, want x,y", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}
