// Command bloc-sim runs one-shot localization experiments on the simulated
// paper testbed: it samples tag positions, localizes each with the chosen
// estimator and prints per-position errors plus summary statistics.
//
// Usage:
//
//	bloc-sim [-positions 50] [-method bloc|aoa|aoa-soft|shortest-distance|rssi]
//	         [-anchors 4] [-antennas 4] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bloc"
	"bloc/internal/dsp"
	"bloc/internal/eval"
	"bloc/internal/geom"
)

func main() {
	var (
		positions = flag.Int("positions", 50, "number of tag positions to localize")
		method    = flag.String("method", "bloc", "estimator: bloc, aoa, aoa-soft, shortest-distance, rssi, music")
		anchors   = flag.Int("anchors", 4, "number of anchors")
		antennas  = flag.Int("antennas", 4, "antennas per anchor")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		plan      = flag.String("floorplan", "", "JSON floorplan file (overrides the paper room)")
		verbose   = flag.Bool("v", false, "print per-position errors")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	if err != nil {
		log.Fatal(err)
	}
	opts := bloc.Options{
		Anchors:   *anchors,
		Antennas:  *antennas,
		PaperRoom: true,
		Seed:      *seed,
	}
	if *plan != "" {
		fp, err := bloc.LoadFloorplan(*plan)
		if err != nil {
			log.Fatal(err)
		}
		opts = fp.Options(*seed)
		if *anchors != 4 {
			opts.Anchors = *anchors
		}
		if *antennas != 4 {
			opts.Antennas = *antennas
		}
		fmt.Printf("floorplan: %s\n", fp.Name)
	}
	sys, err := bloc.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}

	min, max := sys.Room()
	fmt.Printf("BLoc simulation: %d positions, %d anchors, room %.1fx%.1f m, method %s\n",
		*positions, len(sys.AnchorPositions()), max.X-min.X, max.Y-min.Y, m)

	pts := eval.SamplePositions(geom.NewRect(min, max), *positions, 0.04, 0.25, *seed)
	errs := make([]float64, 0, len(pts))
	for i, p := range pts {
		fix, err := sys.LocalizeWith(m, p)
		if err != nil {
			log.Fatalf("position %d: %v", i, err)
		}
		errs = append(errs, fix.Error)
		if *verbose {
			fmt.Printf("  #%03d truth %v -> estimate %v  error %.2f m\n",
				i, p, fix.Estimate, fix.Error)
		}
	}
	st := eval.NewErrorStats(errs)
	fmt.Printf("\nmedian %.0f cm   p90 %.0f cm   mean %.0f cm   max %.0f cm\n",
		st.Median*100, st.P90*100, st.Mean*100, st.Max*100)
	fmt.Println("\nerror CDF:")
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("  %3.0f%% of fixes within %.2f m\n", frac*100, dsp.Percentile(errs, frac*100))
	}
	os.Exit(0)
}

func parseMethod(s string) (bloc.Method, error) {
	switch s {
	case "bloc":
		return bloc.MethodBLoc, nil
	case "aoa":
		return bloc.MethodAoA, nil
	case "aoa-soft":
		return bloc.MethodAoASoft, nil
	case "shortest-distance":
		return bloc.MethodShortestDistance, nil
	case "rssi":
		return bloc.MethodRSSI, nil
	case "music":
		return bloc.MethodMUSIC, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
