package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"bloc/internal/core"
	"bloc/internal/eval"
)

// perfNumbers is one latency/allocation operating point of the fix path.
type perfNumbers struct {
	NsPerFix     float64 `json:"ns_per_fix"`
	BytesPerFix  float64 `json:"bytes_per_fix"`
	AllocsPerFix float64 `json:"allocs_per_fix"`
}

// perfReport is the JSON document written to -bench-out (BENCH_3.json):
// the frozen pre-optimization baseline, the measured post-optimization
// numbers, the worker-count throughput sweeps of both the full-grid and
// the tracked (prior-gated) paths, and the engine's counters.
type perfReport struct {
	Baseline   perfNumbers          `json:"baseline"`
	After      perfNumbers          `json:"after"`
	SpeedupX   float64              `json:"speedup_x"`
	Throughput []eval.PerfResult    `json:"throughput"`
	Tracked    []eval.TrackedResult `json:"tracked,omitempty"`
	Stats      core.Stats           `json:"engine_stats"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Positions  int                  `json:"positions"`
	Seed       uint64               `json:"seed"`
}

// runPerf measures the steady-state fix path of one shared engine:
// single-worker latency and allocation rate, then throughput sweeps of
// the full-grid and tracked (prior-gated) paths at 1, 4 and GOMAXPROCS
// workers. With -bench-out the report is written as JSON; with -check
// the measurement is compared against a committed report and the
// process exits non-zero on a >2x latency regression on either path
// (the CI smoke gate).
func runPerf(seed uint64, fixes int, baseline perfNumbers, cpuprofile, memprofile, benchOut, check string) {
	suite, err := eval.NewSuite(eval.SuiteOptions{Seed: seed, Positions: 16})
	if err != nil {
		log.Fatal(err)
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	single, err := suite.MeasureFixes(fixes, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Sweep 1, 4 and all-CPUs workers — but never time more workers than
	// the machine has CPUs: that measures goroutine multiplexing, not
	// parallel throughput (the BENCH_3 anomaly was a 4-worker point taken
	// at GOMAXPROCS=1). Each kept point runs with GOMAXPROCS matched to
	// its worker count and records it in the result.
	workerCounts := sweepWorkers()
	var sweep []eval.PerfResult
	for _, w := range workerCounts {
		prev := runtime.GOMAXPROCS(w)
		r, err := suite.MeasureFixes(fixes, w)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			log.Fatal(err)
		}
		sweep = append(sweep, r)
	}
	// The same sweep over the tracked path: settled Kalman priors gating
	// the search, the serving plane's steady-state regime.
	var tracked []eval.TrackedResult
	for _, w := range workerCounts {
		prev := runtime.GOMAXPROCS(w)
		r, err := suite.MeasureTracked(fixes, w)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			log.Fatal(err)
		}
		tracked = append(tracked, r)
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	report := perfReport{
		Baseline:   baseline,
		After:      perfNumbers{NsPerFix: single.NsPerFix, BytesPerFix: single.BytesPerFix, AllocsPerFix: single.AllocsPerFix},
		SpeedupX:   baseline.NsPerFix / single.NsPerFix,
		Throughput: sweep,
		Tracked:    tracked,
		Stats:      suite.Eng.Stats(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Positions:  16,
		Seed:       seed,
	}

	fmt.Printf("fix path, steady state (%d fixes per point):\n", fixes)
	fmt.Printf("  baseline  %11.0f ns/fix  %9.0f B/fix  %6.0f allocs/fix\n",
		baseline.NsPerFix, baseline.BytesPerFix, baseline.AllocsPerFix)
	fmt.Printf("  after     %11.0f ns/fix  %9.0f B/fix  %6.1f allocs/fix   (%.1fx faster)\n",
		report.After.NsPerFix, report.After.BytesPerFix, report.After.AllocsPerFix, report.SpeedupX)
	fmt.Println("throughput sweep (full grid):")
	for _, r := range sweep {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("throughput sweep (tracked, prior-gated):")
	for _, r := range tracked {
		fmt.Printf("  %s\n", r)
	}
	if len(tracked) > 0 && tracked[0].NsPerFix > 0 {
		fmt.Printf("  tracked speedup vs full grid: %.1fx\n", single.NsPerFix/tracked[0].NsPerFix)
	}
	st := report.Stats
	fmt.Printf("engine: %d fixes, %d plane builds, %.1f KiB tables, %d pool hits / %d misses\n",
		st.Fixes, st.PlaneBuilds, float64(st.TableBytes)/1024, st.PoolHits, st.PoolMisses)

	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(benchOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}

	if check != "" {
		buf, err := os.ReadFile(check)
		if err != nil {
			log.Fatal(err)
		}
		var committed perfReport
		if err := json.Unmarshal(buf, &committed); err != nil {
			log.Fatal(err)
		}
		limit := 2 * committed.After.NsPerFix
		if single.NsPerFix > limit {
			fmt.Printf("PERF REGRESSION: %.0f ns/fix exceeds 2x the committed %.0f ns/fix\n",
				single.NsPerFix, committed.After.NsPerFix)
			os.Exit(1)
		}
		fmt.Printf("perf check OK: %.0f ns/fix within 2x of committed %.0f ns/fix\n",
			single.NsPerFix, committed.After.NsPerFix)
		// Gate the tracked path too — a report predating it passes
		// vacuously rather than failing the smoke check.
		if len(committed.Tracked) > 0 && len(tracked) > 0 {
			tLimit := 2 * committed.Tracked[0].NsPerFix
			if tracked[0].NsPerFix > tLimit {
				fmt.Printf("PERF REGRESSION (tracked): %.0f ns/fix exceeds 2x the committed %.0f ns/fix\n",
					tracked[0].NsPerFix, committed.Tracked[0].NsPerFix)
				os.Exit(1)
			}
			fmt.Printf("tracked check OK: %.0f ns/fix within 2x of committed %.0f ns/fix\n",
				tracked[0].NsPerFix, committed.Tracked[0].NsPerFix)
		} else if len(committed.Tracked) == 0 {
			fmt.Println("tracked check skipped: committed report has no tracked section")
		}
	}
}

// sweepWorkers returns the deduplicated worker counts of the throughput
// sweeps, dropping any point beyond the CPU count (parallelism would be
// simulated by the scheduler, not measured).
func sweepWorkers() []int {
	var out []int
	seen := map[int]bool{}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		if seen[w] {
			continue
		}
		seen[w] = true
		if w > runtime.NumCPU() {
			fmt.Printf("  skipping %d-worker point: only %d CPU(s), parallelism would be simulated\n",
				w, runtime.NumCPU())
			continue
		}
		out = append(out, w)
	}
	return out
}
