// Command bloc-bench regenerates every table and figure of the paper's
// evaluation (§8) on the simulated testbed and prints the comparison
// tables. With -out it also writes the raw series (CDF points, heatmap
// cells, phase profiles) as CSV files for plotting.
//
// Usage:
//
//	bloc-bench [-positions 300] [-seed 7] [-exp all|fig4|fig6|fig8a|fig8b|
//	            fig9a|fig9b|fig9c|fig10|fig11|fig12|fig13|ablations|quorum|
//	            failover|restart|overload|cellkill|gated|degrade|perf] [-out dir]
//
// The paper used 1700 positions; -positions 1700 reproduces that scale
// (several minutes of CPU), while the default 300 keeps the shape of every
// result at a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bloc/internal/dsp"
	"bloc/internal/eval"
	"bloc/internal/geom"
)

func main() {
	var (
		positions = flag.Int("positions", 300, "dataset size (paper: 1700)")
		seed      = flag.Uint64("seed", 7, "simulation seed")
		exp       = flag.String("exp", "all", "experiment to run (fig4..fig13, ablations, quorum, failover, restart, overload, cellkill, gated, degrade, perf, or all)")
		out       = flag.String("out", "", "directory for CSV series (optional)")

		// -exp perf flags.
		perfFixes  = flag.Int("perf-fixes", 50, "fixes per perf measurement point")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the perf run")
		memprofile = flag.String("memprofile", "", "write a heap profile after the perf run")
		benchOut   = flag.String("bench-out", "", "write the perf report as JSON (e.g. BENCH_3.json)")
		perfCheck  = flag.String("check", "", "compare against a committed perf report; exit 1 on a >2x latency regression")
		baseNs     = flag.Float64("baseline-ns", 19267582, "baseline ns/fix (frozen pre-optimization measurement)")
		baseBytes  = flag.Float64("baseline-bytes", 3169160, "baseline B/fix (frozen pre-optimization measurement)")
		baseAllocs = flag.Float64("baseline-allocs", 401, "baseline allocs/fix (frozen pre-optimization measurement)")
	)
	flag.Parse()

	if *exp == "perf" {
		runPerf(*seed, *perfFixes,
			perfNumbers{NsPerFix: *baseNs, BytesPerFix: *baseBytes, AllocsPerFix: *baseAllocs},
			*cpuprofile, *memprofile, *benchOut, *perfCheck)
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Fig. 4 and Fig. 8b need no dataset.
	if want("fig4") {
		runFig4(*out)
	}
	if want("fig8b") {
		runFig8b(*seed, *out)
	}
	// The restart ablation builds its own miscalibrated deployment, so it
	// needs no shared dataset either; "all" covers it inside runAblations.
	if want("restart") && *exp != "all" {
		rs, err := eval.AblationRestart(*seed, *positions, restartPhaseErrDeg)
		check(err)
		fmt.Println(eval.RestartTable(rs))
	}
	// The overload drill runs a live server + anchor fleet; no dataset.
	if want("overload") && *exp != "all" { // "all" covers it inside runAblations
		ov, err := eval.AblationOverload(*seed)
		check(err)
		fmt.Println(eval.OverloadTable(ov))
	}
	// The cell-kill drill runs two live in-process fleets; no dataset.
	if want("cellkill") && *exp != "all" { // "all" covers it inside runAblations
		ck, err := eval.AblationCellKill(*seed)
		check(err)
		fmt.Println(eval.CellKillTable(ck))
	}
	// The gated ablation walks its own tag trajectories; no dataset.
	if want("gated") && *exp != "all" { // "all" covers it inside runAblations
		gs, err := eval.AblationGated(*seed, gatedSteps)
		check(err)
		fmt.Println(eval.GatedTable(gs))
	}
	// The degrade ablation builds its own survey + spots; no dataset.
	if want("degrade") && *exp != "all" { // "all" covers it inside runAblations
		dg, err := eval.AblationDegrade(*seed)
		check(err)
		fmt.Println(eval.DegradeTable(dg))
		checkDegradeOrdering(dg)
	}
	needsDataset := want("fig6") || want("fig8a") || want("fig9a") || want("fig9b") ||
		want("fig9c") || want("fig10") || want("fig11") || want("fig12") ||
		want("fig13") || want("ablations") || want("quorum") || want("failover")
	if !needsDataset {
		return
	}

	fmt.Printf("acquiring dataset: %d positions (seed %d)...\n", *positions, *seed)
	start := time.Now()
	suite, err := eval.NewSuite(eval.SuiteOptions{
		Seed:      *seed,
		Positions: *positions,
		Progress: func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Printf("  %d/%d\r", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	if want("fig6") {
		runFig6(suite, *out)
	}
	if want("fig8a") {
		runFig8a(suite)
	}
	if want("fig9a") {
		r, err := suite.Fig9a()
		check(err)
		fmt.Println(r.Table())
		writeCDF(*out, "fig9a_bloc_cdf.csv", r.BLocCDF)
		writeCDF(*out, "fig9a_aoa_cdf.csv", r.AoACDF)
	}
	if want("fig9b") {
		r, err := suite.Fig9b()
		check(err)
		fmt.Println(r.Table())
	}
	if want("fig9c") {
		r, err := suite.Fig9c()
		check(err)
		fmt.Println(r.Table())
	}
	if want("fig10") {
		r, err := suite.Fig10()
		check(err)
		fmt.Println(r.Table())
	}
	if want("fig11") {
		r, err := suite.Fig11()
		check(err)
		fmt.Println(r.Table())
	}
	if want("fig12") {
		r, err := suite.Fig12()
		check(err)
		fmt.Println(r.Table())
		writeCDF(*out, "fig12_bloc_cdf.csv", r.BLocCDF)
		writeCDF(*out, "fig12_shortest_cdf.csv", r.ShortestCDF)
	}
	if want("fig13") {
		runFig13(suite, *out)
	}
	if want("quorum") && *exp != "all" { // "all" covers it inside runAblations
		qs, err := suite.AblationQuorum()
		check(err)
		fmt.Println(eval.QuorumTable(qs))
	}
	if want("failover") && *exp != "all" { // "all" covers it inside runAblations
		fs, err := suite.AblationFailover()
		check(err)
		fmt.Println(eval.FailoverTable(fs))
	}
	if want("ablations") {
		runAblations(suite, *seed, *positions)
	}
}

// restartPhaseErrDeg is the per-antenna static phase miscalibration the
// restart ablation assumes: large enough that localizing uncalibrated
// visibly hurts, small enough that calibration estimation stays stable.
const restartPhaseErrDeg = 35

// gatedSteps is the walk length per mobility scenario of the gated
// ablation: long enough for the hysteresis to settle and recover a few
// times, short enough that four scenarios stay in the seconds range.
const gatedSteps = 60

// runAblations prints the extension experiments of DESIGN.md §6. The
// SNR/NLOS sweeps re-acquire smaller datasets (a quarter of the main one)
// since each point needs its own noise realization or environment.
func runAblations(suite *eval.Suite, seed uint64, positions int) {
	small := positions / 4
	if small < 20 {
		small = 20
	}
	vs, err := suite.AblationScore()
	check(err)
	fmt.Println(eval.ScoreTable(vs))

	panel, err := suite.AblationBaselines()
	check(err)
	fmt.Println(eval.BaselinesTable(panel))

	ws, err := suite.AblationWeights([]float64{0.05, 0.1, 0.2}, []float64{0, 0.05, 0.5})
	check(err)
	fmt.Println(eval.WeightsTable(ws))

	qs, err := suite.AblationQuorum()
	check(err)
	fmt.Println(eval.QuorumTable(qs))

	fo, err := suite.AblationFailover()
	check(err)
	fmt.Println(eval.FailoverTable(fo))

	rs, err := eval.AblationRestart(seed, small, restartPhaseErrDeg)
	check(err)
	fmt.Println(eval.RestartTable(rs))

	ov, err := eval.AblationOverload(seed)
	check(err)
	fmt.Println(eval.OverloadTable(ov))

	ck, err := eval.AblationCellKill(seed)
	check(err)
	fmt.Println(eval.CellKillTable(ck))

	gs, err := eval.AblationGated(seed, gatedSteps)
	check(err)
	fmt.Println(eval.GatedTable(gs))

	dg, err := eval.AblationDegrade(seed)
	check(err)
	fmt.Println(eval.DegradeTable(dg))
	checkDegradeOrdering(dg)

	snrs, err := eval.AblationSNR(seed, small, []float64{5, 10, 15, 25})
	check(err)
	fmt.Println(eval.SNRTable(snrs))

	permuted, repeated, err := eval.AblationHopInvariance(seed, geom.Pt(0.6, -0.4), []int{5, 7, 11, 16})
	check(err)
	fmt.Println("Ablation — hop-increment invariance (§2.1 primality argument)")
	fmt.Printf("  estimate spread across f_hop ∈ {5,7,11,16}: %.2f m\n", eval.Spread(permuted))
	fmt.Printf("  spread of repeated measurements (baseline): %.2f m\n\n", eval.Spread(repeated))

	nlos, err := eval.AblationNLOS(seed, small, []float64{1.0, 0.5, 0.25, 0.1})
	check(err)
	fmt.Println(eval.NLOSTable(nlos))

	interf, err := eval.AblationInterference(seed, small, 6, 0.15)
	check(err)
	fmt.Println(eval.InterferenceTable(interf))

	motion, err := eval.AblationMotion(seed, small, []float64{0, 0.5, 1, 2, 3})
	check(err)
	fmt.Println(eval.MotionTable(motion))

	cte, err := eval.AblationCTE(seed, small)
	check(err)
	fmt.Println(eval.CTETable(cte))

	wf, err := eval.AblationWiFi(seed, small)
	check(err)
	fmt.Println(eval.WiFiTable(wf))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// checkDegradeOrdering enforces the ladder's accuracy contract: the
// fingerprint rung must strictly beat the centroid floor it sits above,
// or the rung has no reason to exist.
func checkDegradeOrdering(dg *eval.DegradeResult) {
	fp := dg.Rung(eval.RungFingerprint).Median
	ct := dg.Rung(eval.RungCentroid).Median
	if !(fp < ct) {
		log.Fatalf("degrade: fingerprint median %.0f cm does not beat centroid %.0f cm", fp*100, ct*100)
	}
}

func runFig4(out string) {
	r := eval.Fig4(8)
	fmt.Println("Fig 4 — GFSK pulse shaping (paper: random bits never settle; runs settle at ±1)")
	settled := func(w []float64) float64 {
		n := 0
		for _, v := range w {
			if math.Abs(v) > 0.99 {
				n++
			}
		}
		return float64(n) / float64(len(w))
	}
	fmt.Printf("  random bits:   settled %.0f%% of samples\n", settled(r.RandomShaped)*100)
	fmt.Printf("  sounding bits: settled %.0f%% of samples\n\n", settled(r.SoundingShaped)*100)
	if out != "" {
		var b strings.Builder
		b.WriteString("sample,random,sounding\n")
		for i := range r.RandomShaped {
			fmt.Fprintf(&b, "%d,%.6f,%.6f\n", i, r.RandomShaped[i], r.SoundingShaped[i])
		}
		writeFile(out, "fig4_waveforms.csv", b.String())
	}
}

func runFig8b(seed uint64, out string) {
	r, err := eval.Fig8b(seed, geom.Pt(0.8, 0.4))
	check(err)
	fmt.Println("Fig 8b — Phase across subbands (paper: random without correction, linear with BLoc)")
	fmt.Printf("  raw phase linearity       R² = %.3f\n", r.RawR2)
	fmt.Printf("  corrected phase linearity R² = %.3f\n\n", r.CorrR2)
	if out != "" {
		var b strings.Builder
		b.WriteString("freq_hz,raw_deg,corrected_deg\n")
		for k := range r.Freqs {
			fmt.Fprintf(&b, "%.0f,%.2f,%.2f\n", r.Freqs[k], r.RawDeg[k], r.CorrectedDeg[k])
		}
		writeFile(out, "fig8b_phase.csv", b.String())
	}
}

func runFig8a(s *eval.Suite) {
	r, err := s.Fig8a(geom.Pt(0.5, 0.5), 10)
	check(err)
	fmt.Println("Fig 8a — CSI stability over 10 consecutive measurements (paper: constant phase)")
	fmt.Printf("  bands %v, worst per-band phase spread %.1f°\n\n", r.BandIndices, r.MaxSpreadDeg)
}

func runFig6(s *eval.Suite, out string) {
	tag := geom.Pt(0.6, -0.9)
	r, err := s.Fig6(tag)
	check(err)
	fmt.Println("Fig 6 / Fig 8c — Likelihood maps (angle fan, distance hyperbola, combined)")
	fmt.Printf("  tag %v -> estimate %v (error %.2f m)\n\n", r.Tag, r.Estimate, r.Estimate.Dist(r.Tag))
	if out != "" {
		writeGrid(out, "fig6_angle.csv", r.Angle.Data, r.Angle.W)
		writeGrid(out, "fig6_distance.csv", r.Distance.Data, r.Distance.W)
		writeGrid(out, "fig6_combined.csv", r.Combined.Data, r.Combined.W)
		writePNG(out, "fig6_angle.png", r.Angle, 4)
		writePNG(out, "fig6_distance.png", r.Distance, 4)
		writePNG(out, "fig6_combined.png", r.Combined, 4)
	}
}

func runFig13(s *eval.Suite, out string) {
	r, err := s.Fig13(0.5)
	check(err)
	corner, center := r.CornerVsCenter()
	fmt.Println("Fig 13 — RMSE vs location (paper: corners worst, no other pattern)")
	fmt.Printf("  corner cells RMSE %.2f m, central cells RMSE %.2f m\n\n", corner, center)
	if out != "" {
		writeGrid(out, "fig13_rmse.csv", r.Grid.Data, r.Grid.W)
		writePNG(out, "fig13_rmse.png", r.Grid, 24)
	}
}

func writeCDF(dir, name string, cdf []dsp.CDFPoint) {
	if dir == "" {
		return
	}
	var b strings.Builder
	b.WriteString("error_m,fraction\n")
	for _, p := range cdf {
		fmt.Fprintf(&b, "%.4f,%.6f\n", p.Value, p.Fraction)
	}
	writeFile(dir, name, b.String())
}

func writeGrid(dir, name string, data []float64, w int) {
	var b strings.Builder
	for i, v := range data {
		if i > 0 && i%w == 0 {
			b.WriteByte('\n')
		} else if i%w != 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.5g", v)
	}
	b.WriteByte('\n')
	writeFile(dir, name, b.String())
}

func writePNG(dir, name string, g *dsp.Grid, scale int) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eval.RenderGridPNG(f, g, scale); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

func writeFile(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}
