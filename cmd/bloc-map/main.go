// Command bloc-map renders BLoc's likelihood surface for one acquisition
// as an ASCII heatmap in the terminal — the Fig. 6c / Fig. 8c view, plus
// the scored candidate peaks. A debugging lens into the pipeline: the
// multipath blobs, the chosen peak and the ground truth are all visible
// at a glance.
//
// Usage:
//
//	bloc-map [-tag "0.6,-0.9"] [-seed 7] [-view combined|angle|distance]
//	         [-anchor 1] [-width 72]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"bloc/internal/core"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// ramp maps normalized likelihood to glyphs, light to dark.
const ramp = " .:-=+*#%@"

func main() {
	var (
		tagPos = flag.String("tag", "0.6,-0.9", "true tag position x,y")
		seed   = flag.Uint64("seed", 7, "simulation seed")
		view   = flag.String("view", "combined", "combined, angle or distance")
		anchor = flag.Int("anchor", 1, "anchor for angle/distance views")
		width  = flag.Int("width", 72, "map width in characters")
	)
	flag.Parse()

	tag, err := parsePoint(*tagPos)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}
	snap := dep.Sounding(tag)
	a, err := core.Correct(snap)
	if err != nil {
		log.Fatal(err)
	}

	var grid *dsp.Grid
	estimate := geom.Point{}
	switch *view {
	case "combined":
		res, err := eng.LocateAlpha(a)
		if err != nil {
			log.Fatal(err)
		}
		grid = res.Likelihood
		estimate = res.Estimate
		defer func() {
			fmt.Println("\ncandidates (Eq. 18):")
			for i, c := range res.Candidates {
				marker := " "
				if c.Loc == res.Estimate {
					marker = "*"
				}
				fmt.Printf(" %s #%d %v  p=%.2f H=%.2f Σd=%.1f score=%.4f\n",
					marker, i, c.Loc, c.PeakValue, c.Entropy, c.SumDist, c.Score)
			}
		}()
	case "angle":
		grid = eng.AngleLikelihoodXY(a, *anchor)
	case "distance":
		grid = eng.DistanceLikelihoodXY(a, *anchor)
	default:
		log.Fatalf("unknown view %q", *view)
	}

	render(eng, dep, grid, tag, estimate, *width)
	if estimate != (geom.Point{}) {
		fmt.Printf("\ntruth %v   estimate %v   error %.2f m\n", tag, estimate, estimate.Dist(tag))
	}
}

// render downsamples the likelihood grid to the terminal and overlays the
// anchors (A), the truth (T) and the estimate (E).
func render(eng *core.Engine, dep *testbed.Deployment, grid *dsp.Grid, truth, estimate geom.Point, width int) {
	if width < 20 {
		width = 20
	}
	nx, ny := eng.GridSize()
	// Terminal cells are ~2x taller than wide; compensate.
	height := ny * width / nx / 2
	if height < 10 {
		height = 10
	}
	gmax, _, _ := grid.Max()
	if gmax <= 0 {
		gmax = 1
	}
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = make([]byte, width)
		for c := range rows[r] {
			// Sample the underlying grid (y axis flipped: north up).
			gx := float64(c) / float64(width-1) * float64(nx-1)
			gy := float64(height-1-r) / float64(height-1) * float64(ny-1)
			v := grid.Bilinear(gx, gy) / gmax
			idx := int(v * float64(len(ramp)-1))
			rows[r][c] = ramp[idx]
		}
	}
	overlay := func(p geom.Point, glyph byte) {
		fx, fy := cellOf(eng, p)
		c := int(fx / float64(nx-1) * float64(width-1))
		r := height - 1 - int(fy/float64(ny-1)*float64(height-1))
		if r >= 0 && r < height && c >= 0 && c < width {
			rows[r][c] = glyph
		}
	}
	for _, a := range dep.Anchors {
		overlay(a.Center(), 'A')
	}
	overlay(truth, 'T')
	if estimate != (geom.Point{}) {
		overlay(estimate, 'E')
	}
	border := "+" + strings.Repeat("-", width) + "+"
	fmt.Println(border)
	for _, row := range rows {
		fmt.Printf("|%s|\n", row)
	}
	fmt.Println(border)
	fmt.Println("A = anchor   T = truth   E = estimate   dark = high likelihood")
}

// cellOf mirrors the engine's coordinate mapping for overlay markers.
func cellOf(eng *core.Engine, p geom.Point) (float64, float64) {
	cfg := eng.Config()
	return (p.X - cfg.Room.Min.X) / cfg.CellM, (p.Y - cfg.Room.Min.Y) / cfg.CellM
}

func parsePoint(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geom.Point{}, fmt.Errorf("bad point %q, want x,y", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}
