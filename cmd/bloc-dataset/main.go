// Command bloc-dataset records measurement campaigns to disk and replays
// them through any estimator — the collect-once / evaluate-many workflow
// of the paper's evaluation (one 1700-position dataset feeds every figure
// of §8).
//
// Usage:
//
//	bloc-dataset record -out campaign.bloc [-positions 300] [-seed 7]
//	bloc-dataset replay -in campaign.bloc [-method bloc] [-seed 7]
//	bloc-dataset info   -in campaign.bloc
//	bloc-dataset survey -out site.fpdb [-step 0.5] [-samples 3] [-seed 7]
//
// The seed at replay must match the recording's: it reconstructs the
// anchor geometry the snapshots were measured against.
//
// survey walks a reference grid over the simulated room and records each
// point's median per-anchor RSSI signature — the offline site-survey
// campaign behind the serving plane's fingerprint rung (DESIGN.md §16).
// The resulting file feeds bloc-server -fingerprint; the survey seed
// must match the server's deployment seed for the signatures to match
// the live field.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/eval"
	"bloc/internal/fingerprint"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "survey":
		survey(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bloc-dataset record|replay|info|survey [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "campaign.bloc", "output file")
	positions := fs.Int("positions", 300, "number of tag positions")
	seed := fs.Uint64("seed", 7, "simulation seed")
	fs.Parse(args)

	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recording %d positions (seed %d)...\n", *positions, *seed)
	ds, err := eval.Acquire(dep, eval.AcquireOptions{Positions: *positions, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eval.SaveDataset(f, ds); err != nil {
		log.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d positions, %.1f MiB\n", *out, ds.Len(), float64(st.Size())/(1<<20))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "campaign.bloc", "input file")
	method := fs.String("method", "bloc", "estimator: bloc, aoa, shortest-distance, rssi, music")
	seed := fs.Uint64("seed", 7, "deployment seed the campaign was recorded with")
	fs.Parse(args)

	ds := load(*in)
	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}
	est := map[string]func(*csi.Snapshot) (*core.Result, error){
		"bloc":              eng.Locate,
		"aoa":               eng.LocateAoA,
		"shortest-distance": eng.LocateShortestDistance,
		"rssi":              eng.LocateRSSI,
		"music":             eng.LocateMUSIC,
	}[*method]
	if est == nil {
		log.Fatalf("unknown method %q", *method)
	}
	errs := make([]float64, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		res, err := est(ds.Snapshots[i])
		if err != nil {
			log.Fatalf("position %d: %v", i, err)
		}
		errs = append(errs, res.Estimate.Dist(ds.Truth[i]))
	}
	st := eval.NewErrorStats(errs)
	fmt.Printf("replayed %d positions with %s: %s\n", ds.Len(), *method, st)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "campaign.bloc", "input file")
	fs.Parse(args)
	ds := load(*in)
	s := ds.Snapshots[0]
	fmt.Printf("%s: %d positions, %d bands × %d anchors × %d antennas per snapshot\n",
		*in, ds.Len(), s.NumBands(), s.NumAnchors(), s.NumAntennas())
}

func survey(args []string) {
	fs := flag.NewFlagSet("survey", flag.ExitOnError)
	out := fs.String("out", "site.fpdb", "output survey file")
	step := fs.Float64("step", 0.5, "reference grid pitch in meters")
	samples := fs.Int("samples", 3, "independent soundings medianed per reference point")
	seed := fs.Uint64("seed", 7, "simulation seed (must match the serving deployment)")
	fs.Parse(args)

	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	anchors := len(dep.Anchors)
	fmt.Printf("surveying %v at %.2g m pitch, %d samples/point (seed %d)...\n",
		dep.Env.Room, *step, *samples, *seed)
	// Fork-salt convention shared with eval.AblationDegrade: one
	// deterministic channel realization per (point, repetition).
	db, err := fingerprint.Survey(dep.Env.Room, anchors,
		func(point, rep int, p geom.Point) *csi.Snapshot {
			return dep.Fork(0x5E0<<16 | uint64(point)<<4 | uint64(rep)).Sounding(p)
		}, fingerprint.SurveyOptions{StepM: *step, Samples: *samples})
	if err != nil {
		log.Fatal(err)
	}
	if err := fingerprint.WriteFile(*out, db); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d reference points × %d anchors, %.1f KiB\n",
		*out, len(db.Points), db.Anchors, float64(st.Size())/(1<<10))
}

func load(path string) *eval.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := eval.LoadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
