// Command bloc-dataset records measurement campaigns to disk and replays
// them through any estimator — the collect-once / evaluate-many workflow
// of the paper's evaluation (one 1700-position dataset feeds every figure
// of §8).
//
// Usage:
//
//	bloc-dataset record -out campaign.bloc [-positions 300] [-seed 7]
//	bloc-dataset replay -in campaign.bloc [-method bloc] [-seed 7]
//	bloc-dataset info   -in campaign.bloc
//
// The seed at replay must match the recording's: it reconstructs the
// anchor geometry the snapshots were measured against.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/eval"
	"bloc/internal/testbed"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bloc-dataset record|replay|info [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "campaign.bloc", "output file")
	positions := fs.Int("positions", 300, "number of tag positions")
	seed := fs.Uint64("seed", 7, "simulation seed")
	fs.Parse(args)

	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recording %d positions (seed %d)...\n", *positions, *seed)
	ds, err := eval.Acquire(dep, eval.AcquireOptions{Positions: *positions, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eval.SaveDataset(f, ds); err != nil {
		log.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d positions, %.1f MiB\n", *out, ds.Len(), float64(st.Size())/(1<<20))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "campaign.bloc", "input file")
	method := fs.String("method", "bloc", "estimator: bloc, aoa, shortest-distance, rssi, music")
	seed := fs.Uint64("seed", 7, "deployment seed the campaign was recorded with")
	fs.Parse(args)

	ds := load(*in)
	dep, err := testbed.Paper(*seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		log.Fatal(err)
	}
	est := map[string]func(*csi.Snapshot) (*core.Result, error){
		"bloc":              eng.Locate,
		"aoa":               eng.LocateAoA,
		"shortest-distance": eng.LocateShortestDistance,
		"rssi":              eng.LocateRSSI,
		"music":             eng.LocateMUSIC,
	}[*method]
	if est == nil {
		log.Fatalf("unknown method %q", *method)
	}
	errs := make([]float64, 0, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		res, err := est(ds.Snapshots[i])
		if err != nil {
			log.Fatalf("position %d: %v", i, err)
		}
		errs = append(errs, res.Estimate.Dist(ds.Truth[i]))
	}
	st := eval.NewErrorStats(errs)
	fmt.Printf("replayed %d positions with %s: %s\n", ds.Len(), *method, st)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "campaign.bloc", "input file")
	fs.Parse(args)
	ds := load(*in)
	s := ds.Snapshots[0]
	fmt.Printf("%s: %d positions, %d bands × %d anchors × %d antennas per snapshot\n",
		*in, ds.Len(), s.NumBands(), s.NumAnchors(), s.NumAntennas())
}

func load(path string) *eval.Dataset {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	ds, err := eval.LoadDataset(f)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
