package bloc

import (
	"strings"
	"testing"
)

const sampleFloorplan = `{
  "name": "assembly hall",
  "room": {"min": [0, 0], "max": [10, 7]},
  "anchors": 6,
  "antennas": 4,
  "scatterers": [
    {"center": [1.2, 6.2], "radius": 0.4, "gain": 5, "facets": 6}
  ],
  "obstacles": [
    {"a": [3.5, 3.0], "b": [6.5, 3.0], "attenuation": 0.35}
  ],
  "walls": [
    {"a": [5.2, 0], "b": [5.2, 3.0], "reflectivity": 0.4, "transmission": 0.5}
  ]
}`

func TestReadFloorplanAndBuildSystem(t *testing.T) {
	fp, err := ReadFloorplan(strings.NewReader(sampleFloorplan))
	if err != nil {
		t.Fatal(err)
	}
	if fp.Name != "assembly hall" || fp.Anchors != 6 {
		t.Errorf("parsed %+v", fp)
	}
	sys, err := NewSystem(fp.Options(3))
	if err != nil {
		t.Fatal(err)
	}
	min, max := sys.Room()
	if max.X-min.X != 10 || max.Y-min.Y != 7 {
		t.Errorf("room %v–%v", min, max)
	}
	if len(sys.AnchorPositions()) != 6 {
		t.Errorf("anchors = %d", len(sys.AnchorPositions()))
	}
	fix, err := sys.Localize(Pt(2.0, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if fix.Error > 5 {
		t.Errorf("floorplan system error %.2f m beyond room scale", fix.Error)
	}
}

func TestReadFloorplanRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"room": {"min":[0,0],"max":[5,5]}, "wibble": 1}`,
		"tiny room":     `{"room": {"min":[0,0],"max":[0.5,5]}}`,
		"scatterer out": `{"room": {"min":[0,0],"max":[5,5]}, "scatterers":[{"center":[9,9],"radius":0.1,"gain":1,"facets":1}]}`,
		"bad obstacle":  `{"room": {"min":[0,0],"max":[5,5]}, "obstacles":[{"a":[1,1],"b":[2,2],"attenuation":0}]}`,
		"bad wall":      `{"room": {"min":[0,0],"max":[5,5]}, "walls":[{"a":[1,1],"b":[2,2],"transmission":1.5}]}`,
		"wall outside":  `{"room": {"min":[0,0],"max":[5,5]}, "walls":[{"a":[1,1],"b":[9,2],"transmission":0.5}]}`,
		"not json":      `{{{`,
	}
	for name, body := range cases {
		if _, err := ReadFloorplan(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadFloorplanMissingFile(t *testing.T) {
	if _, err := LoadFloorplan("/nonexistent/plan.json"); err == nil {
		t.Error("missing file accepted")
	}
}
