package bloc

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Floorplan is the JSON-serializable description of a deployment site:
// room bounds, metallic reflectors, desk-height clutter and interior
// partitions. It maps one-to-one onto Options' environment fields, so a
// site survey can be stored next to the deployment and loaded by every
// tool.
//
// Example:
//
//	{
//	  "name": "assembly hall",
//	  "room": {"min": [0, 0], "max": [10, 7]},
//	  "anchors": 6,
//	  "antennas": 4,
//	  "scatterers": [
//	    {"center": [1.2, 6.2], "radius": 0.4, "gain": 5, "facets": 6}
//	  ],
//	  "obstacles": [
//	    {"a": [3.5, 3.0], "b": [6.5, 3.0], "attenuation": 0.35}
//	  ],
//	  "walls": [
//	    {"a": [5.2, 0], "b": [5.2, 3.0], "reflectivity": 0.4, "transmission": 0.5}
//	  ]
//	}
type Floorplan struct {
	Name     string        `json:"name,omitempty"`
	Room     FloorplanRect `json:"room"`
	Anchors  int           `json:"anchors,omitempty"`
	Antennas int           `json:"antennas,omitempty"`

	Scatterers []FloorplanScatterer `json:"scatterers,omitempty"`
	Obstacles  []FloorplanObstacle  `json:"obstacles,omitempty"`
	Walls      []FloorplanWall      `json:"walls,omitempty"`
}

// FloorplanRect is an axis-aligned rectangle as [x, y] corner pairs.
type FloorplanRect struct {
	Min [2]float64 `json:"min"`
	Max [2]float64 `json:"max"`
}

// FloorplanScatterer mirrors Scatterer in JSON form.
type FloorplanScatterer struct {
	Center [2]float64 `json:"center"`
	Radius float64    `json:"radius"`
	Gain   float64    `json:"gain"`
	Facets int        `json:"facets"`
}

// FloorplanObstacle mirrors Obstacle in JSON form.
type FloorplanObstacle struct {
	A           [2]float64 `json:"a"`
	B           [2]float64 `json:"b"`
	Attenuation float64    `json:"attenuation"`
}

// FloorplanWall mirrors Wall in JSON form.
type FloorplanWall struct {
	A            [2]float64 `json:"a"`
	B            [2]float64 `json:"b"`
	Reflectivity float64    `json:"reflectivity"`
	Transmission float64    `json:"transmission"`
}

// ReadFloorplan parses a floorplan from JSON, rejecting unknown fields so
// typos in site files surface immediately.
func ReadFloorplan(r io.Reader) (*Floorplan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fp Floorplan
	if err := dec.Decode(&fp); err != nil {
		return nil, fmt.Errorf("bloc: parse floorplan: %w", err)
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return &fp, nil
}

// LoadFloorplan reads a floorplan file.
func LoadFloorplan(path string) (*Floorplan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bloc: %w", err)
	}
	defer f.Close()
	return ReadFloorplan(f)
}

// Validate checks geometric sanity.
func (fp *Floorplan) Validate() error {
	if fp.Room.Max[0]-fp.Room.Min[0] < 1 || fp.Room.Max[1]-fp.Room.Min[1] < 1 {
		return fmt.Errorf("bloc: floorplan room %v–%v smaller than 1 m", fp.Room.Min, fp.Room.Max)
	}
	inRoom := func(p [2]float64) bool {
		return p[0] >= fp.Room.Min[0] && p[0] <= fp.Room.Max[0] &&
			p[1] >= fp.Room.Min[1] && p[1] <= fp.Room.Max[1]
	}
	for i, s := range fp.Scatterers {
		if !inRoom(s.Center) {
			return fmt.Errorf("bloc: scatterer %d center %v outside room", i, s.Center)
		}
		if s.Radius < 0 || s.Gain < 0 || s.Facets < 0 {
			return fmt.Errorf("bloc: scatterer %d has negative parameters", i)
		}
	}
	for i, o := range fp.Obstacles {
		if o.Attenuation <= 0 || o.Attenuation > 1 {
			return fmt.Errorf("bloc: obstacle %d attenuation %v outside (0,1]", i, o.Attenuation)
		}
		if !inRoom(o.A) || !inRoom(o.B) {
			return fmt.Errorf("bloc: obstacle %d endpoints outside room", i)
		}
	}
	for i, w := range fp.Walls {
		if w.Transmission <= 0 || w.Transmission > 1 {
			return fmt.Errorf("bloc: wall %d transmission %v outside (0,1]", i, w.Transmission)
		}
		if w.Reflectivity < 0 {
			return fmt.Errorf("bloc: wall %d reflectivity negative", i)
		}
		if !inRoom(w.A) || !inRoom(w.B) {
			return fmt.Errorf("bloc: wall %d endpoints outside room", i)
		}
	}
	return nil
}

// Options converts the floorplan into system options with the given seed.
// Anchor/antenna counts default to 4 when unset in the file.
func (fp *Floorplan) Options(seed uint64) Options {
	opts := Options{
		RoomMin:  Pt(fp.Room.Min[0], fp.Room.Min[1]),
		RoomMax:  Pt(fp.Room.Max[0], fp.Room.Max[1]),
		Anchors:  fp.Anchors,
		Antennas: fp.Antennas,
		Seed:     seed,
	}
	for _, s := range fp.Scatterers {
		opts.Scatterers = append(opts.Scatterers, Scatterer{
			Center: Pt(s.Center[0], s.Center[1]),
			Radius: s.Radius, Gain: s.Gain, Facets: s.Facets,
		})
	}
	for _, o := range fp.Obstacles {
		opts.Obstacles = append(opts.Obstacles, Obstacle{
			A: Pt(o.A[0], o.A[1]), B: Pt(o.B[0], o.B[1]), Attenuation: o.Attenuation,
		})
	}
	for _, w := range fp.Walls {
		opts.Walls = append(opts.Walls, Wall{
			A: Pt(w.A[0], w.A[1]), B: Pt(w.B[0], w.B[1]),
			Reflectivity: w.Reflectivity, Transmission: w.Transmission,
		})
	}
	return opts
}
