package track

import (
	"math"
	"testing"

	"bloc/internal/geom"
)

// restoreCov builds an initialized filter with the given position
// covariance block (velocity block identity).
func restoreCov(t *testing.T, x, y, pxx, pxy, pyy float64) *Filter {
	t.Helper()
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := FilterState{Initialized: true, X: [4]float64{x, y, 0, 0}}
	st.P[0], st.P[1], st.P[4], st.P[5] = pxx, pxy, pxy, pyy
	st.P[10], st.P[15] = 1, 1
	if err := f.Restore(st); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfidenceEllipseUninitialized(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.ConfidenceEllipse(3); ok {
		t.Fatal("uninitialized filter must not report an ellipse")
	}
}

func TestConfidenceEllipseBadK(t *testing.T) {
	f := restoreCov(t, 0, 0, 1, 0, 1)
	for _, k := range []float64{0, -1, math.NaN()} {
		if _, ok := f.ConfidenceEllipse(k); ok {
			t.Fatalf("k=%v must not yield an ellipse", k)
		}
	}
}

func TestConfidenceEllipseIsotropic(t *testing.T) {
	f := restoreCov(t, 1.5, -2, 0.25, 0, 0.25)
	e, ok := f.ConfidenceEllipse(3)
	if !ok {
		t.Fatal("expected ellipse")
	}
	if e.Center != geom.Pt(1.5, -2) {
		t.Fatalf("center %v", e.Center)
	}
	// Isotropic σ = 0.5 m → both semi-axes k·σ = 1.5 m.
	if math.Abs(e.SemiMajor-1.5) > 1e-12 || math.Abs(e.SemiMinor-1.5) > 1e-12 {
		t.Fatalf("axes %v / %v, want 1.5 / 1.5", e.SemiMajor, e.SemiMinor)
	}
}

func TestConfidenceEllipseAxisAligned(t *testing.T) {
	// Var(x) = 4, Var(y) = 1: major axis along x with semi-axis 2k.
	f := restoreCov(t, 0, 0, 4, 0, 1)
	e, ok := f.ConfidenceEllipse(2)
	if !ok {
		t.Fatal("expected ellipse")
	}
	if math.Abs(e.SemiMajor-4) > 1e-12 || math.Abs(e.SemiMinor-2) > 1e-12 {
		t.Fatalf("axes %v / %v, want 4 / 2", e.SemiMajor, e.SemiMinor)
	}
	if math.Abs(e.Theta) > 1e-12 {
		t.Fatalf("theta %v, want 0", e.Theta)
	}

	// Swapped: major axis along y.
	f = restoreCov(t, 0, 0, 1, 0, 4)
	e, ok = f.ConfidenceEllipse(2)
	if !ok {
		t.Fatal("expected ellipse")
	}
	if math.Abs(e.SemiMajor-4) > 1e-12 || math.Abs(e.SemiMinor-2) > 1e-12 {
		t.Fatalf("axes %v / %v, want 4 / 2", e.SemiMajor, e.SemiMinor)
	}
	if math.Abs(math.Abs(e.Theta)-math.Pi/2) > 1e-12 {
		t.Fatalf("theta %v, want ±π/2", e.Theta)
	}
}

func TestConfidenceEllipseRotated(t *testing.T) {
	// R(φ)·diag(4, 1)·R(φ)ᵀ for φ = 30°: the recovered orientation and
	// axes must match the construction.
	phi := math.Pi / 6
	s, c := math.Sincos(phi)
	pxx := 4*c*c + 1*s*s
	pyy := 4*s*s + 1*c*c
	pxy := (4 - 1) * s * c
	f := restoreCov(t, 0, 0, pxx, pxy, pyy)
	e, ok := f.ConfidenceEllipse(1)
	if !ok {
		t.Fatal("expected ellipse")
	}
	if math.Abs(e.SemiMajor-2) > 1e-12 || math.Abs(e.SemiMinor-1) > 1e-12 {
		t.Fatalf("axes %v / %v, want 2 / 1", e.SemiMajor, e.SemiMinor)
	}
	if math.Abs(e.Theta-phi) > 1e-12 {
		t.Fatalf("theta %v, want %v", e.Theta, phi)
	}
}

func TestConfidenceEllipseContains(t *testing.T) {
	e := Ellipse{Center: geom.Pt(1, 1), SemiMajor: 2, SemiMinor: 1, Theta: 0}
	cases := []struct {
		p      geom.Point
		margin float64
		want   bool
	}{
		{geom.Pt(1, 1), 0, true},      // center
		{geom.Pt(2.9, 1), 0, true},    // inside along major axis
		{geom.Pt(3.5, 1), 0, false},   // outside along major axis
		{geom.Pt(3.5, 1), 1, true},    // ... but inside with margin
		{geom.Pt(1, 2.5), 0, false},   // outside along minor axis
		{geom.Pt(1, 1.95), 0, true},   // inside along minor axis
		{geom.Pt(2.8, 1.8), 0, false}, // outside the diagonal
	}
	for _, tc := range cases {
		if got := e.Contains(tc.p, tc.margin); got != tc.want {
			t.Errorf("Contains(%v, %v) = %v, want %v", tc.p, tc.margin, got, tc.want)
		}
	}
}

func TestConfidenceEllipseShrinksWithFixes(t *testing.T) {
	// Feeding a static tag repeated fixes must shrink the ellipse: the
	// steady-state prior is what the gated search exploits.
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Update(geom.Pt(2, 3), 0.025); err != nil {
		t.Fatal(err)
	}
	first, ok := f.ConfidenceEllipse(3)
	if !ok {
		t.Fatal("expected ellipse after first fix")
	}
	for i := 0; i < 100; i++ {
		if _, _, err := f.Update(geom.Pt(2, 3), 0.025); err != nil {
			t.Fatal(err)
		}
	}
	settled, ok := f.ConfidenceEllipse(3)
	if !ok {
		t.Fatal("expected ellipse after settling")
	}
	if settled.SemiMajor >= first.SemiMajor {
		t.Fatalf("ellipse did not shrink: first %v, settled %v", first.SemiMajor, settled.SemiMajor)
	}
	if settled.SemiMajor <= 0 || settled.SemiMinor <= 0 {
		t.Fatalf("degenerate settled ellipse %+v", settled)
	}
}
