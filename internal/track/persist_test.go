package track

import (
	"math"
	"strings"
	"testing"

	"bloc/internal/geom"
)

func primedFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		x := 1.0 + 0.1*float64(i)
		if _, _, err := f.Update(geom.Pt(x, -0.5), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestExportRestoreBitIdentical: a restored filter must be externally
// indistinguishable from the original — position, velocity, uncertainty
// and every subsequent update bit-for-bit.
func TestExportRestoreBitIdentical(t *testing.T) {
	f := primedFilter(t)
	st := f.Export()

	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Restore(st); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(f.Position().X) != math.Float64bits(g.Position().X) ||
		math.Float64bits(f.Position().Y) != math.Float64bits(g.Position().Y) {
		t.Fatalf("restored position %v != original %v", g.Position(), f.Position())
	}
	if math.Float64bits(f.Uncertainty()) != math.Float64bits(g.Uncertainty()) {
		t.Fatal("restored uncertainty differs")
	}
	// Identical future: the same fix stream produces bit-identical output.
	for i := 0; i < 10; i++ {
		fix := geom.Pt(1.5+0.05*float64(i), -0.5+0.02*float64(i))
		p1, ok1, err1 := f.Update(fix, 0.1)
		p2, ok2, err2 := g.Update(fix, 0.1)
		if ok1 != ok2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d diverged: (%v,%v) vs (%v,%v)", i, ok1, err1, ok2, err2)
		}
		if math.Float64bits(p1.X) != math.Float64bits(p2.X) || math.Float64bits(p1.Y) != math.Float64bits(p2.Y) {
			t.Fatalf("step %d: %v != %v", i, p1, p2)
		}
	}
}

func TestRestoreRejectsPoison(t *testing.T) {
	f := primedFilter(t)
	good := f.Export()
	bad := []func(*FilterState){
		func(st *FilterState) { st.X[0] = math.NaN() },
		func(st *FilterState) { st.X[3] = math.Inf(1) },
		func(st *FilterState) { st.P[0] = math.NaN() },
		func(st *FilterState) { st.P[0] = -1 },  // negative x variance
		func(st *FilterState) { st.P[15] = -4 }, // negative vy variance
		func(st *FilterState) { st.Misses = -1 },
		func(st *FilterState) { st.Misses = 1000 },
	}
	for i, mut := range bad {
		st := good
		mut(&st)
		g, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Restore(st); err == nil {
			t.Errorf("case %d: poisoned state restored without error", i)
		}
		// The failed restore must leave the filter untouched.
		if g.Initialized() {
			t.Errorf("case %d: failed restore still mutated the filter", i)
		}
	}
}

// TestUpdateRejectsNonFinite: NaN/Inf fixes and dt must never reach the
// covariance. They count as gated misses, and persistent garbage unlocks
// the track without re-initializing from the garbage.
func TestUpdateRejectsNonFinite(t *testing.T) {
	f := primedFilter(t)
	before := f.Export()
	inputs := []struct {
		fix geom.Point
		dt  float64
	}{
		{geom.Pt(math.NaN(), 0), 0.1},
		{geom.Pt(0, math.Inf(1)), 0.1},
		{geom.Pt(1, 1), math.NaN()},
		{geom.Pt(1, 1), math.Inf(-1)},
	}
	for i, in := range inputs {
		pos, ok, err := f.Update(in.fix, in.dt)
		if err == nil || ok {
			t.Fatalf("case %d: non-finite input accepted", i)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("case %d: error %v, want non-finite rejection", i, err)
		}
		if math.IsNaN(pos.X) || math.IsNaN(pos.Y) {
			t.Fatalf("case %d: returned position went NaN", i)
		}
	}
	after := f.Export()
	if after.X != before.X || after.P != before.P {
		t.Fatal("non-finite updates mutated state or covariance")
	}

	// MaxMisses consecutive non-finite fixes unlock the track...
	for i := 0; i < DefaultConfig().MaxMisses*2; i++ {
		f.Update(geom.Pt(math.NaN(), math.NaN()), 0.1)
	}
	if f.Initialized() {
		t.Fatal("track still locked after persistent non-finite input")
	}
	// ...and the next clean fix re-locks with finite state.
	if _, ok, err := f.Update(geom.Pt(2, 2), 0.1); err != nil || !ok {
		t.Fatalf("clean fix after unlock rejected: ok=%v err=%v", ok, err)
	}
	st := f.Export()
	for _, v := range st.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state poisoned after re-lock: %v", st.X)
		}
	}
}

// TestNonFiniteDoesNotPoisonUninitialized: garbage as the very first fix
// must not initialize the track.
func TestNonFiniteDoesNotPoisonUninitialized(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := f.Update(geom.Pt(math.Inf(1), 0), 0.1); err == nil || ok {
		t.Fatal("non-finite first fix accepted")
	}
	if f.Initialized() {
		t.Fatal("track initialized from non-finite fix")
	}
}
