package track

import (
	"math"

	"bloc/internal/geom"
)

// Ellipse is a confidence region of the filter's position estimate: the
// level set of the position-covariance Gaussian at k standard deviations,
// centered on the state mean.
type Ellipse struct {
	// Center is the track's position estimate.
	Center geom.Point
	// SemiMajor and SemiMinor are the ellipse semi-axes in meters
	// (SemiMajor ≥ SemiMinor ≥ 0).
	SemiMajor, SemiMinor float64
	// Theta is the orientation of the major axis, radians CCW from +x.
	Theta float64
}

// Contains reports whether q lies inside the ellipse grown by margin
// meters on both axes.
func (e Ellipse) Contains(q geom.Point, margin float64) bool {
	a := e.SemiMajor + margin
	b := e.SemiMinor + margin
	if a <= 0 || b <= 0 {
		return false
	}
	d := q.Sub(e.Center)
	s, c := math.Sincos(e.Theta)
	u := d.X*c + d.Y*s
	v := -d.X*s + d.Y*c
	return (u/a)*(u/a)+(v/b)*(v/b) <= 1
}

// ConfidenceEllipse returns the k-sigma confidence ellipse of the track's
// position: the 2×2 position block of the state covariance is
// eigendecomposed analytically, the semi-axes are k·sqrt(eigenvalue) and
// the orientation follows the dominant eigenvector. It reports ok=false
// when the track holds no state, k is not positive, or the covariance
// block is non-finite or indefinite — callers gate the prior-driven
// search on ok, falling back to a full evaluation.
func (f *Filter) ConfidenceEllipse(k float64) (Ellipse, bool) {
	if !f.initialized || !(k > 0) {
		return Ellipse{}, false
	}
	pxx, pxy, pyy := f.p[0][0], f.p[0][1], f.p[1][1]
	if !finite(pxx) || !finite(pxy) || !finite(pyy) || pxx < 0 || pyy < 0 {
		return Ellipse{}, false
	}
	// Eigenvalues of [[pxx, pxy], [pxy, pyy]]: mean ± sqrt(((pxx−pyy)/2)² + pxy²).
	mean := (pxx + pyy) / 2
	disc := math.Hypot((pxx-pyy)/2, pxy)
	l1, l2 := mean+disc, mean-disc
	if l1 < 0 {
		return Ellipse{}, false
	}
	if l2 < 0 {
		l2 = 0 // numerical round-off on a near-singular block
	}
	return Ellipse{
		Center:    f.Position(),
		SemiMajor: k * math.Sqrt(l1),
		SemiMinor: k * math.Sqrt(l2),
		Theta:     0.5 * math.Atan2(2*pxy, pxx-pyy),
	}, true
}
