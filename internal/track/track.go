// Package track turns BLoc's per-acquisition fixes into smooth
// trajectories. The paper notes BLE hops through all channels 40 times a
// second (§6), so a tag produces a dense fix stream; a constant-velocity
// Kalman filter with Mahalanobis gating absorbs the per-fix noise and
// rejects the occasional multipath-ghost fix that survives Eq. 18.
package track

import (
	"fmt"
	"math"

	"bloc/internal/geom"
)

// Filter is a 2-D constant-velocity Kalman filter over the state
// [x, y, vx, vy] with position-only measurements.
type Filter struct {
	cfg Config

	// State mean and covariance (4 and 4×4).
	x [4]float64
	p [4][4]float64

	initialized bool
	misses      int
}

// Config tunes the filter.
type Config struct {
	// ProcessNoise is the white-acceleration spectral density (m²/s³):
	// how aggressively the target is allowed to maneuver. Typical walking
	// targets: 0.5–2.
	ProcessNoise float64
	// MeasurementStd is the 1-σ position error of a fix (meters); BLoc's
	// median error is a good starting point.
	MeasurementStd float64
	// GateChi2 is the Mahalanobis gate on the innovation (χ², 2 DoF);
	// 9.21 accepts 99% of true fixes.
	GateChi2 float64
	// MaxMisses re-initializes the track after this many consecutive
	// gated-out fixes, so a wrong lock cannot persist.
	MaxMisses int
}

// DefaultConfig returns gains suited to a walking tag localized by BLoc.
func DefaultConfig() Config {
	return Config{
		ProcessNoise:   1.0,
		MeasurementStd: 0.5,
		GateChi2:       9.21,
		MaxMisses:      3,
	}
}

// New creates a filter. Invalid parameters are reported immediately.
func New(cfg Config) (*Filter, error) {
	if cfg.ProcessNoise <= 0 || cfg.MeasurementStd <= 0 || cfg.GateChi2 <= 0 || cfg.MaxMisses < 1 {
		return nil, fmt.Errorf("track: invalid config %+v", cfg)
	}
	return &Filter{cfg: cfg}, nil
}

// Position returns the current track position estimate.
func (f *Filter) Position() geom.Point { return geom.Pt(f.x[0], f.x[1]) }

// Velocity returns the current velocity estimate (m/s).
func (f *Filter) Velocity() geom.Vector { return geom.Vec(f.x[2], f.x[3]) }

// Initialized reports whether the track holds state.
func (f *Filter) Initialized() bool { return f.initialized }

// Update advances the track by dt seconds and fuses one fix. It returns
// the post-update position and whether the fix was accepted by the gate
// (a rejected fix leaves the coasted prediction as the estimate).
//
// Non-finite input — a NaN/Inf fix coordinate or a NaN/Inf dt — is
// rejected like a gated-out measurement: the miss counter advances, the
// state and covariance stay untouched, and persistent garbage unlocks
// the track without ever re-initializing it from the garbage itself.
func (f *Filter) Update(fix geom.Point, dt float64) (geom.Point, bool, error) {
	if !finite(fix.X) || !finite(fix.Y) || !finite(dt) {
		if f.initialized {
			f.misses++
			if f.misses >= f.cfg.MaxMisses {
				// Unlike a finite gated fix, a non-finite one cannot seed a
				// re-initialization; drop the lock and wait for clean data.
				f.initialized = false
				f.misses = 0
			}
		}
		return f.Position(), false, fmt.Errorf("track: non-finite measurement (fix %v, dt %v)", fix, dt)
	}
	if dt <= 0 {
		return geom.Point{}, false, fmt.Errorf("track: non-positive dt %v", dt)
	}
	if !f.initialized {
		f.x = [4]float64{fix.X, fix.Y, 0, 0}
		s := f.cfg.MeasurementStd
		f.p = [4][4]float64{}
		f.p[0][0], f.p[1][1] = s*s, s*s
		// Unknown velocity: generous prior.
		f.p[2][2], f.p[3][3] = 4, 4
		f.initialized = true
		return f.Position(), true, nil
	}
	f.predict(dt)

	// Innovation and its covariance S = P_pos + R.
	iy := [2]float64{fix.X - f.x[0], fix.Y - f.x[1]}
	r := f.cfg.MeasurementStd * f.cfg.MeasurementStd
	s00 := f.p[0][0] + r
	s01 := f.p[0][1]
	s11 := f.p[1][1] + r
	det := s00*s11 - s01*s01
	if det <= 0 {
		return geom.Point{}, false, fmt.Errorf("track: singular innovation covariance")
	}
	// Mahalanobis distance² of the innovation.
	m2 := (iy[0]*iy[0]*s11 - 2*iy[0]*iy[1]*s01 + iy[1]*iy[1]*s00) / det
	if m2 > f.cfg.GateChi2 {
		f.misses++
		if f.misses >= f.cfg.MaxMisses {
			// Persistent disagreement: the track is wrong, not the fixes.
			f.initialized = false
			f.misses = 0
			return f.Update(fix, dt)
		}
		return f.Position(), false, nil
	}
	f.misses = 0

	// Kalman gain K = P Hᵀ S⁻¹ (H selects the position block).
	inv00, inv01, inv11 := s11/det, -s01/det, s00/det
	var k [4][2]float64
	for i := 0; i < 4; i++ {
		k[i][0] = f.p[i][0]*inv00 + f.p[i][1]*inv01
		k[i][1] = f.p[i][0]*inv01 + f.p[i][1]*inv11
	}
	for i := 0; i < 4; i++ {
		f.x[i] += k[i][0]*iy[0] + k[i][1]*iy[1]
	}
	// P ← (I − K H) P.
	var newP [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			newP[i][j] = f.p[i][j] - k[i][0]*f.p[0][j] - k[i][1]*f.p[1][j]
		}
	}
	f.p = newP
	return f.Position(), true, nil
}

// predict applies the constant-velocity transition and process noise.
func (f *Filter) predict(dt float64) {
	// x ← F x.
	f.x[0] += f.x[2] * dt
	f.x[1] += f.x[3] * dt
	// P ← F P Fᵀ + Q with F = [[1,0,dt,0],[0,1,0,dt],[0,0,1,0],[0,0,0,1]].
	p := f.p
	var fp [4][4]float64
	for j := 0; j < 4; j++ {
		fp[0][j] = p[0][j] + dt*p[2][j]
		fp[1][j] = p[1][j] + dt*p[3][j]
		fp[2][j] = p[2][j]
		fp[3][j] = p[3][j]
	}
	var fpf [4][4]float64
	for i := 0; i < 4; i++ {
		fpf[i][0] = fp[i][0] + dt*fp[i][2]
		fpf[i][1] = fp[i][1] + dt*fp[i][3]
		fpf[i][2] = fp[i][2]
		fpf[i][3] = fp[i][3]
	}
	// Discrete white-acceleration process noise.
	q := f.cfg.ProcessNoise
	dt2, dt3, dt4 := dt*dt, dt*dt*dt, dt*dt*dt*dt
	fpf[0][0] += q * dt4 / 4
	fpf[1][1] += q * dt4 / 4
	fpf[0][2] += q * dt3 / 2
	fpf[2][0] += q * dt3 / 2
	fpf[1][3] += q * dt3 / 2
	fpf[3][1] += q * dt3 / 2
	fpf[2][2] += q * dt2
	fpf[3][3] += q * dt2
	f.p = fpf
}

// Uncertainty returns the 1-σ position uncertainty (meters), the square
// root of the mean positional variance.
func (f *Filter) Uncertainty() float64 {
	return math.Sqrt((f.p[0][0] + f.p[1][1]) / 2)
}

// FilterState is the serializable state of a Filter, shaped for the
// durable state plane: a restarted server restores its tracks from the
// last checkpoint instead of re-locking from scratch.
type FilterState struct {
	// X is the [x, y, vx, vy] state mean.
	X [4]float64
	// P is the row-major 4×4 state covariance.
	P [16]float64
	// Initialized and Misses mirror the filter's lock state.
	Initialized bool
	Misses      int
}

// Export snapshots the filter's state. The returned value shares nothing
// with the filter, so it can be serialized while the filter keeps
// updating.
func (f *Filter) Export() FilterState {
	st := FilterState{Initialized: f.initialized, Misses: f.misses, X: f.x}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			st.P[4*i+j] = f.p[i][j]
		}
	}
	return st
}

// Restore replaces the filter's state with a previously exported one.
// The state is validated before anything is overwritten: every entry
// finite, the covariance diagonal non-negative and the miss counter in
// range, so a corrupted snapshot cannot poison a live track.
func (f *Filter) Restore(st FilterState) error {
	for _, v := range st.X {
		if !finite(v) {
			return fmt.Errorf("track: restore: non-finite state mean %v", st.X)
		}
	}
	for _, v := range st.P {
		if !finite(v) {
			return fmt.Errorf("track: restore: non-finite covariance entry %v", v)
		}
	}
	for i := 0; i < 4; i++ {
		if st.P[4*i+i] < 0 {
			return fmt.Errorf("track: restore: negative variance P[%d][%d] = %v", i, i, st.P[4*i+i])
		}
	}
	if st.Misses < 0 || st.Misses >= f.cfg.MaxMisses {
		return fmt.Errorf("track: restore: miss count %d outside [0,%d)", st.Misses, f.cfg.MaxMisses)
	}
	f.x = st.X
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			f.p[i][j] = st.P[4*i+j]
		}
	}
	f.initialized = st.Initialized
	f.misses = st.Misses
	return nil
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
