package track

import (
	"math"
	"math/rand/v2"
	"testing"

	"bloc/internal/geom"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{ProcessNoise: 0, MeasurementStd: 1, GateChi2: 9, MaxMisses: 3},
		{ProcessNoise: 1, MeasurementStd: 0, GateChi2: 9, MaxMisses: 3},
		{ProcessNoise: 1, MeasurementStd: 1, GateChi2: 0, MaxMisses: 3},
		{ProcessNoise: 1, MeasurementStd: 1, GateChi2: 9, MaxMisses: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestStaticTargetConverges(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Pt(2, -1)
	rng := rand.New(rand.NewPCG(1, 1))
	var last geom.Point
	for i := 0; i < 100; i++ {
		fix := geom.Pt(truth.X+rng.NormFloat64()*0.5, truth.Y+rng.NormFloat64()*0.5)
		last, _, err = f.Update(fix, 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	// After 100 fixes of σ=0.5, the track should be far tighter than one
	// fix.
	if d := last.Dist(truth); d > 0.2 {
		t.Errorf("converged error %.3f m, want < 0.2", d)
	}
	if f.Uncertainty() > 0.5 {
		t.Errorf("uncertainty %.3f did not shrink", f.Uncertainty())
	}
	if v := f.Velocity().Norm(); v > 0.3 {
		t.Errorf("static target has velocity %.3f", v)
	}
}

func TestMovingTargetTracked(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	vel := geom.Vec(1.0, -0.5) // m/s
	pos := geom.Pt(0, 0)
	const dt = 0.1
	var sumErr float64
	n := 0
	for i := 0; i < 200; i++ {
		pos = pos.Add(vel.Scale(dt))
		fix := geom.Pt(pos.X+rng.NormFloat64()*0.4, pos.Y+rng.NormFloat64()*0.4)
		est, _, err := f.Update(fix, dt)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 50 { // after convergence
			sumErr += est.Dist(pos)
			n++
		}
	}
	mean := sumErr / float64(n)
	if mean > 0.3 {
		t.Errorf("tracking error %.3f m on a constant-velocity target", mean)
	}
	// Velocity estimate close to truth.
	if f.Velocity().Sub(vel).Norm() > 0.4 {
		t.Errorf("velocity estimate %v, want ≈ %v", f.Velocity(), vel)
	}
}

func TestOutlierGating(t *testing.T) {
	f, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Pt(1, 1)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 50; i++ {
		fix := geom.Pt(truth.X+rng.NormFloat64()*0.3, truth.Y+rng.NormFloat64()*0.3)
		if _, _, err := f.Update(fix, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	// A multipath ghost 4 m away must be gated out.
	est, accepted, err := f.Update(geom.Pt(5, 1), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Error("4 m outlier accepted")
	}
	if est.Dist(truth) > 0.3 {
		t.Errorf("outlier moved the track to %v", est)
	}
}

func TestPersistentDisagreementRelocks(t *testing.T) {
	cfg := DefaultConfig()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, _, err := f.Update(geom.Pt(0, 0), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	// The tag genuinely teleports (e.g. picked up and carried): after
	// MaxMisses gated fixes the filter must re-lock at the new position.
	var est geom.Point
	var accepted bool
	for i := 0; i < cfg.MaxMisses; i++ {
		est, accepted, err = f.Update(geom.Pt(4, 4), 0.1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !accepted {
		t.Fatal("relock never accepted the new position")
	}
	if est.Dist(geom.Pt(4, 4)) > 0.5 {
		t.Errorf("relocked at %v, want near (4,4)", est)
	}
}

func TestUpdateRejectsBadDt(t *testing.T) {
	f, _ := New(DefaultConfig())
	if _, _, err := f.Update(geom.Pt(0, 0), 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, _, err := f.Update(geom.Pt(0, 0), -1); err == nil {
		t.Error("dt<0 accepted")
	}
}

func TestUncertaintyGrowsWhileCoasting(t *testing.T) {
	f, _ := New(DefaultConfig())
	for i := 0; i < 30; i++ {
		f.Update(geom.Pt(0, 0), 0.1)
	}
	before := f.Uncertainty()
	// Two gated-out fixes (coasting) must grow the uncertainty.
	f.Update(geom.Pt(6, 6), 0.1)
	f.Update(geom.Pt(6, 6), 0.1)
	if !(f.Uncertainty() > before) {
		t.Errorf("uncertainty %0.3f did not grow while coasting (was %.3f)",
			f.Uncertainty(), before)
	}
}

func TestCovarianceStaysSymmetricPositive(t *testing.T) {
	f, _ := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 500; i++ {
		fix := geom.Pt(rng.NormFloat64(), rng.NormFloat64())
		if _, _, err := f.Update(fix, 0.05+rng.Float64()*0.2); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 4; a++ {
			if f.p[a][a] <= 0 || math.IsNaN(f.p[a][a]) {
				t.Fatalf("step %d: variance [%d][%d] = %v", i, a, a, f.p[a][a])
			}
			for b := 0; b < 4; b++ {
				if math.Abs(f.p[a][b]-f.p[b][a]) > 1e-6*(1+math.Abs(f.p[a][b])) {
					t.Fatalf("step %d: covariance asymmetric at (%d,%d)", i, a, b)
				}
			}
		}
	}
}

func BenchmarkTrackerUpdate(b *testing.B) {
	f, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	fixes := make([]geom.Point, 1024)
	for i := range fixes {
		fixes[i] = geom.Pt(rng.NormFloat64()*0.3, rng.NormFloat64()*0.3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Update(fixes[i%len(fixes)], 0.1)
	}
}
