package csi

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

// randomRow fabricates a plausible CSI row: random phases (fresh LO draw
// per retune), magnitudes around mag with mild fading.
func randomRow(rng *rand.Rand, n int, mag float64) []complex128 {
	row := make([]complex128, n)
	for j := range row {
		m := mag * (0.6 + 0.8*rng.Float64())
		row[j] = cmplx.Rect(m, (rng.Float64()*2-1)*math.Pi)
	}
	return row
}

func feedClean(t *testing.T, v *RowValidator, rng *rand.Rand, anchor, rows, antennas int, mag float64) {
	t.Helper()
	for r := 0; r < rows; r++ {
		row := randomRow(rng, antennas, mag)
		if verdict := v.Check(anchor, row, cmplx.Rect(mag, rng.Float64())); !verdict.OK() {
			t.Fatalf("clean row %d rejected: %v", r, verdict)
		}
	}
}

func TestQualityAcceptsCleanStream(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	v := NewRowValidator(4, QualityConfig{})
	for a := 0; a < 4; a++ {
		feedClean(t, v, rng, a, 200, 4, 0.2)
	}
}

func TestQualityRejectsNonFinite(t *testing.T) {
	v := NewRowValidator(2, QualityConfig{})
	row := []complex128{1, 2, complex(math.NaN(), 0), 4}
	if got := v.Check(0, row, 1); got != RowNonFinite {
		t.Fatalf("NaN tone: got %v", got)
	}
	row = []complex128{1, 2, 3, 4}
	if got := v.Check(0, row, complex(0, math.Inf(-1))); got != RowNonFinite {
		t.Fatalf("Inf master: got %v", got)
	}
}

func TestQualityRejectsDeadRow(t *testing.T) {
	v := NewRowValidator(1, QualityConfig{})
	row := []complex128{1e-30, complex(0, 1e-25), 0, 0}
	if got := v.Check(0, row, 1); got != RowDead {
		t.Fatalf("dead row: got %v", got)
	}
}

func TestQualityDetectsStuckTones(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	cfg := QualityConfig{StuckRows: 4}
	v := NewRowValidator(1, cfg)
	feedClean(t, v, rng, 0, 10, 4, 0.2)
	stuck := randomRow(rng, 4, 0.2)
	// A short run of repeats (transport resend) passes…
	for r := 0; r < 4; r++ {
		verdict := v.Check(0, append([]complex128(nil), stuck...), 1)
		if r < 3 && !verdict.OK() {
			t.Fatalf("repeat %d rejected early: %v", r, verdict)
		}
		// …but the run threshold trips on sustained repetition.
		if r == 3 && verdict != RowStuckTones {
			t.Fatalf("repeat %d: got %v, want stuck-tones", r, verdict)
		}
	}
	// Still stuck: stays rejected until the values change.
	if got := v.Check(0, append([]complex128(nil), stuck...), 1); got != RowStuckTones {
		t.Fatalf("sustained repeat: got %v", got)
	}
	feedClean(t, v, rng, 0, 5, 4, 0.2)
}

func TestQualityDetectsFrozenPhase(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	v := NewRowValidator(1, QualityConfig{FrozenRows: 6})
	feedClean(t, v, rng, 0, 10, 4, 0.2)
	// A CFO-locked radio: magnitudes keep fading, but the phase advances
	// by a constant small increment per row instead of re-randomizing.
	phase := 0.3
	const drift = 0.05
	tripped := false
	for r := 0; r < 20; r++ {
		phase += drift
		row := make([]complex128, 4)
		for j := range row {
			m := 0.2 * (0.6 + 0.8*rng.Float64())
			row[j] = cmplx.Rect(m, phase+float64(j)*0.4)
		}
		if v.Check(0, row, 1) == RowFrozenPhase {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("constant phase drift never detected")
	}
}

func TestQualityDetectsMagnitudeOutlier(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	v := NewRowValidator(1, QualityConfig{})
	feedClean(t, v, rng, 0, 64, 4, 0.2)
	// Silent garbage at a wildly different power level.
	loud := randomRow(rng, 4, 2e4)
	if got := v.Check(0, loud, 1); got != RowMagOutlier {
		t.Fatalf("1e5x magnitude: got %v", got)
	}
	quiet := randomRow(rng, 4, 2e-9)
	if got := v.Check(0, quiet, 1); got != RowMagOutlier {
		t.Fatalf("1e-8x magnitude: got %v", got)
	}
	// The rejected rows must not have dragged the window: clean rows
	// still pass.
	feedClean(t, v, rng, 0, 10, 4, 0.2)
}

func TestQualityColdStartTolerant(t *testing.T) {
	// Before the MAD window warms up, unusual magnitudes pass (no
	// history to judge against) — they must not be rejected.
	rng := rand.New(rand.NewPCG(5, 5))
	v := NewRowValidator(1, QualityConfig{})
	for r := 0; r < 8; r++ {
		mag := 0.01 * math.Pow(3, float64(r%4))
		if got := v.Check(0, randomRow(rng, 4, mag), 1); !got.OK() {
			t.Fatalf("cold-start row %d rejected: %v", r, got)
		}
	}
}

func TestQualityResetClearsHistory(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	v := NewRowValidator(1, QualityConfig{})
	feedClean(t, v, rng, 0, 64, 4, 0.2)
	if got := v.Check(0, randomRow(rng, 4, 5e3), 1); got != RowMagOutlier {
		t.Fatalf("outlier before reset: got %v", got)
	}
	v.Reset(0)
	// After reset the window is cold again: the same power level passes
	// and becomes the new baseline.
	for r := 0; r < 20; r++ {
		if got := v.Check(0, randomRow(rng, 4, 5e3), 1); !got.OK() {
			t.Fatalf("post-reset row %d rejected: %v", r, got)
		}
	}
}

func TestQualityIndependentPerAnchor(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	v := NewRowValidator(2, QualityConfig{})
	feedClean(t, v, rng, 0, 64, 4, 0.2)
	// Anchor 1 legitimately sits much farther away: its own window must
	// judge it, not anchor 0's.
	feedClean(t, v, rng, 1, 64, 4, 1e-3)
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[RowVerdict]string{
		RowOK: "ok", RowNonFinite: "non-finite", RowDead: "dead",
		RowStuckTones: "stuck-tones", RowFrozenPhase: "frozen-phase",
		RowMagOutlier: "mag-outlier",
	} {
		if v.String() != want {
			t.Fatalf("verdict %d: %q != %q", uint8(v), v.String(), want)
		}
	}
	if !RowOK.OK() || RowDead.OK() {
		t.Fatal("OK() predicate wrong")
	}
}
