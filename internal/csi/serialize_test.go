package csi

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"

	"bloc/internal/ble"
)

func randomSnapshot(seed uint64, k, i, j int) *Snapshot {
	rng := rand.New(rand.NewPCG(seed, 0))
	s := NewSnapshot(ble.DataChannels()[:k], i, j)
	for b := range s.Bands {
		for a := range s.Tag[b] {
			for ant := range s.Tag[b][a] {
				s.Tag[b][a][ant] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			if a > 0 {
				s.Master[b][a] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
	}
	return s
}

func TestSnapshotSerializeRoundTrip(t *testing.T) {
	want := randomSnapshot(1, 37, 4, 4)
	var buf bytes.Buffer
	n, err := want.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBands() != 37 || got.NumAnchors() != 4 || got.NumAntennas() != 4 {
		t.Fatalf("dims = (%d,%d,%d)", got.NumBands(), got.NumAnchors(), got.NumAntennas())
	}
	for b := range want.Bands {
		if got.Bands[b] != want.Bands[b] || got.Freqs[b] != want.Freqs[b] {
			t.Fatalf("band %d metadata mismatch", b)
		}
		for i := range want.Tag[b] {
			for j := range want.Tag[b][i] {
				if got.Tag[b][i][j] != want.Tag[b][i][j] {
					t.Fatalf("tag (%d,%d,%d) mismatch", b, i, j)
				}
			}
			if got.Master[b][i] != want.Master[b][i] {
				t.Fatalf("master (%d,%d) mismatch", b, i)
			}
		}
	}
}

func TestSnapshotStreamConcatenation(t *testing.T) {
	// Multiple snapshots concatenated on one stream (a dataset file).
	var buf bytes.Buffer
	snaps := []*Snapshot{
		randomSnapshot(1, 5, 2, 3),
		randomSnapshot(2, 5, 2, 3),
		randomSnapshot(3, 5, 2, 3),
	}
	for _, s := range snaps {
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := range snaps {
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if got.Tag[2][1][1] != snaps[i].Tag[2][1][1] {
			t.Fatalf("snapshot %d out of order", i)
		}
	}
	if _, err := ReadSnapshot(&buf); err != io.EOF {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte("NOTMAGIC"),
		append([]byte("BLOCCSI1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF), // huge dims
		append([]byte("BLOCCSI1"), 0, 0, 1, 0, 1, 0),                   // zero bands
	}
	for i, c := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated stream.
	var buf bytes.Buffer
	randomSnapshot(1, 3, 2, 2).WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Invalid channel index.
	var buf2 bytes.Buffer
	randomSnapshot(1, 1, 2, 2).WriteTo(&buf2)
	raw := buf2.Bytes()
	raw[14] = 99 // the single band byte (8 magic + 6 dims)
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Error("invalid channel accepted")
	}
}

func TestWriteToRejectsInvalidSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if _, err := (&Snapshot{}).WriteTo(&buf); err == nil {
		t.Error("invalid snapshot serialized")
	}
}

func TestSnapshotFuzzReadNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 500; trial++ {
		n := rng.IntN(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		// Prepend valid magic half the time to reach deeper code paths.
		if trial%2 == 0 {
			buf = append([]byte("BLOCCSI1"), buf...)
		}
		ReadSnapshot(bytes.NewReader(buf)) // must not panic
	}
}
