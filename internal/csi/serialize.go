package csi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bloc/internal/ble"
)

// Binary serialization for snapshots and datasets, so measurement
// campaigns can be recorded once and replayed through different pipeline
// configurations — the workflow of the paper's evaluation, which collects
// 1700 positions and reuses them for every figure.
//
// Format (little-endian):
//
//	magic   "BLOCCSI1"                      (8 bytes)
//	K, I, J uint16 each                     (6 bytes)
//	bands   K × uint8 channel index
//	tag     K·I·J × complex128 (16 bytes each)
//	master  K·I   × complex128
//
// Frequencies are recomputed from the channel map on load, so files stay
// compact and cannot desynchronize band index from frequency.

var snapshotMagic = [8]byte{'B', 'L', 'O', 'C', 'C', 'S', 'I', '1'}

// maxDim bounds each snapshot dimension on read (hostile input guard).
const maxDim = 1024

// WriteTo serializes the snapshot.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(snapshotMagic); err != nil {
		return n, err
	}
	K, I, J := s.NumBands(), s.NumAnchors(), s.NumAntennas()
	if err := write([3]uint16{uint16(K), uint16(I), uint16(J)}); err != nil {
		return n, err
	}
	for _, ch := range s.Bands {
		if err := write(uint8(ch)); err != nil {
			return n, err
		}
	}
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for j := 0; j < J; j++ {
				if err := writeComplex(bw, s.Tag[k][i][j]); err != nil {
					return n, err
				}
				n += 16
			}
		}
	}
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			if err := writeComplex(bw, s.Master[k][i]); err != nil {
				return n, err
			}
			n += 16
		}
	}
	return n, bw.Flush()
}

// ReadSnapshot deserializes one snapshot. It reads exactly one
// snapshot's bytes from r, so snapshots can be concatenated on a single
// stream; wrap r in a bufio.Reader for performance when reading many.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err // io.EOF at a clean boundary
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("csi: bad magic %q", magic)
	}
	var dims [3]uint16
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("csi: read dims: %w", err)
	}
	K, I, J := int(dims[0]), int(dims[1]), int(dims[2])
	if K == 0 || I == 0 || J == 0 || K > maxDim || I > maxDim || J > maxDim {
		return nil, fmt.Errorf("csi: implausible dimensions %d×%d×%d", K, I, J)
	}
	bandBytes := make([]byte, K)
	if _, err := io.ReadFull(r, bandBytes); err != nil {
		return nil, fmt.Errorf("csi: read bands: %w", err)
	}
	bands := make([]ble.ChannelIndex, K)
	for k, b := range bandBytes {
		ch := ble.ChannelIndex(b)
		if !ch.Valid() {
			return nil, fmt.Errorf("csi: invalid channel %d in file", b)
		}
		bands[k] = ch
	}
	s := NewSnapshot(bands, I, J)
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			for j := 0; j < J; j++ {
				z, err := readComplexFrom(r)
				if err != nil {
					return nil, fmt.Errorf("csi: read tag: %w", err)
				}
				s.Tag[k][i][j] = z
			}
		}
	}
	for k := 0; k < K; k++ {
		for i := 0; i < I; i++ {
			z, err := readComplexFrom(r)
			if err != nil {
				return nil, fmt.Errorf("csi: read master: %w", err)
			}
			s.Master[k][i] = z
		}
	}
	return s, nil
}

func writeComplex(w io.Writer, z complex128) error {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(real(z)))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(z)))
	_, err := w.Write(buf[:])
	return err
}

func readComplexFrom(r io.Reader) (complex128, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return complex(
		math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])),
		math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
	), nil
}
