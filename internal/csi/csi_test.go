package csi

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"bloc/internal/ble"
)

func fullBands() []ble.ChannelIndex { return ble.DataChannels() }

func TestNewSnapshotShape(t *testing.T) {
	s := NewSnapshot(fullBands(), 4, 4)
	if s.NumBands() != 37 || s.NumAnchors() != 4 || s.NumAntennas() != 4 {
		t.Fatalf("shape = (%d, %d, %d)", s.NumBands(), s.NumAnchors(), s.NumAntennas())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Frequencies follow the channel map.
	for b, ch := range s.Bands {
		if s.Freqs[b] != ch.CenterFreq() {
			t.Errorf("band %d freq %v != %v", b, s.Freqs[b], ch.CenterFreq())
		}
	}
	// Master self-entry initialized to 1.
	for b := range s.Bands {
		if s.Master[b][0] != 1 {
			t.Errorf("Master[%d][0] = %v, want 1", b, s.Master[b][0])
		}
	}
}

func TestSnapshotValidateCatchesCorruption(t *testing.T) {
	s := NewSnapshot(fullBands()[:3], 2, 2)
	s.Tag[1] = s.Tag[1][:1] // drop an anchor on one band
	if err := s.Validate(); err == nil {
		t.Error("Validate missed anchor dimension mismatch")
	}
	s2 := NewSnapshot(fullBands()[:3], 2, 2)
	s2.Tag[2][1] = s2.Tag[2][1][:1]
	if err := s2.Validate(); err == nil {
		t.Error("Validate missed antenna dimension mismatch")
	}
	s3 := &Snapshot{}
	if err := s3.Validate(); err == nil {
		t.Error("Validate accepted empty snapshot")
	}
}

func TestSelectBands(t *testing.T) {
	s := NewSnapshot(fullBands(), 2, 2)
	for b := range s.Bands {
		s.Tag[b][1][1] = complex(float64(b), 0)
	}
	sub, err := s.SelectBands([]int{0, 10, 36})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumBands() != 3 {
		t.Fatalf("bands = %d", sub.NumBands())
	}
	if sub.Tag[1][1][1] != complex(10, 0) {
		t.Errorf("band selection reordered data: %v", sub.Tag[1][1][1])
	}
	if sub.Bands[2] != s.Bands[36] || sub.Freqs[2] != s.Freqs[36] {
		t.Error("band metadata not carried over")
	}
	if _, err := s.SelectBands([]int{40}); err == nil {
		t.Error("out-of-range band index should fail")
	}
}

func TestSelectAnchors(t *testing.T) {
	s := NewSnapshot(fullBands()[:2], 4, 2)
	for i := 0; i < 4; i++ {
		s.Tag[0][i][0] = complex(float64(i), 0)
		s.Master[0][i] = complex(0, float64(i))
	}
	sub, err := s.SelectAnchors([]int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAnchors() != 3 {
		t.Fatalf("anchors = %d", sub.NumAnchors())
	}
	if sub.Tag[0][1][0] != complex(2, 0) || sub.Master[0][2] != complex(0, 3) {
		t.Error("anchor selection mis-indexed")
	}
	if _, err := s.SelectAnchors([]int{1, 0}); err == nil {
		t.Error("selection not starting with master should fail")
	}
	if _, err := s.SelectAnchors(nil); err == nil {
		t.Error("empty selection should fail")
	}
	if _, err := s.SelectAnchors([]int{0, 9}); err == nil {
		t.Error("out-of-range anchor should fail")
	}
}

func TestSelectAntennas(t *testing.T) {
	s := NewSnapshot(fullBands()[:2], 2, 4)
	s.Tag[0][0][3] = 9
	sub, err := s.SelectAntennas(3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAntennas() != 3 {
		t.Fatalf("antennas = %d", sub.NumAntennas())
	}
	if _, err := s.SelectAntennas(0); err == nil {
		t.Error("zero antennas should fail")
	}
	if _, err := s.SelectAntennas(5); err == nil {
		t.Error("too many antennas should fail")
	}
}

func TestCombineTones(t *testing.T) {
	// Equal phases, different amplitudes: average amplitude, same phase.
	h := CombineTones(cmplx.Rect(1, 0.3), cmplx.Rect(3, 0.3))
	if math.Abs(cmplx.Abs(h)-2) > 1e-12 {
		t.Errorf("amplitude = %v, want 2", cmplx.Abs(h))
	}
	if math.Abs(cmplx.Phase(h)-0.3) > 1e-12 {
		t.Errorf("phase = %v, want 0.3", cmplx.Phase(h))
	}
	// Phase averaging is circular across the wrap.
	h2 := CombineTones(cmplx.Rect(1, math.Pi-0.05), cmplx.Rect(1, -math.Pi+0.05))
	if math.Abs(math.Abs(cmplx.Phase(h2))-math.Pi) > 1e-9 {
		t.Errorf("wrapped combine phase = %v", cmplx.Phase(h2))
	}
}

func TestSelectBandsPreservesCorrespondenceProperty(t *testing.T) {
	// For any valid index subset, band metadata and channel rows stay
	// aligned (testing/quick over random subsets).
	s := NewSnapshot(fullBands(), 3, 4)
	for b := range s.Bands {
		for i := range s.Tag[b] {
			for j := range s.Tag[b][i] {
				s.Tag[b][i][j] = complex(float64(b), float64(i*10+j))
			}
		}
	}
	f := func(raw []uint8) bool {
		idx := make([]int, 0, len(raw))
		for _, r := range raw {
			idx = append(idx, int(r)%s.NumBands())
		}
		if len(idx) == 0 {
			return true
		}
		sub, err := s.SelectBands(idx)
		if err != nil {
			return false
		}
		for n, b := range idx {
			if sub.Bands[n] != s.Bands[b] || sub.Freqs[n] != s.Freqs[b] {
				return false
			}
			if real(sub.Tag[n][1][2]) != float64(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPresenceMask(t *testing.T) {
	s := NewSnapshot(fullBands(), 4, 4)
	if !s.Complete() || s.Have != nil {
		t.Fatal("fresh snapshot should be complete with nil mask")
	}
	if !s.Present(5, 2) || s.PresentBands(2) != 37 {
		t.Fatal("nil mask must read as all-present")
	}
	s.Tag[5][2][0] = 3 + 4i
	s.MarkMissing(5, 2)
	if s.Present(5, 2) || s.Complete() {
		t.Error("row should be missing after MarkMissing")
	}
	if s.Tag[5][2][0] != 0 {
		t.Error("MarkMissing must zero the stale channel values")
	}
	if s.PresentBands(2) != 36 || s.PresentBands(1) != 37 {
		t.Errorf("PresentBands = %d, %d", s.PresentBands(2), s.PresentBands(1))
	}
	anchors := s.PresentAnchors(37)
	if len(anchors) != 3 {
		t.Errorf("anchors with all 37 bands = %v, want 3 of them", anchors)
	}
	if got := s.PresentAnchors(36); len(got) != 4 {
		t.Errorf("anchors with >=36 bands = %v, want all 4", got)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("masked snapshot should validate: %v", err)
	}
	// Corrupt the mask shape: Validate must catch it.
	s.Have[0] = s.Have[0][:2]
	if err := s.Validate(); err == nil {
		t.Error("short mask row should fail validation")
	}
}

func TestMaskedCopySharesDataOwnsMask(t *testing.T) {
	s := NewSnapshot(fullBands(), 4, 2)
	s.Tag[3][1][0] = 7i
	c := s.MaskedCopy()
	c.MaskMissing(3, 1)
	if s.Have != nil {
		t.Error("masking the copy must not touch the original's mask")
	}
	if s.Tag[3][1][0] != 7i || c.Tag[3][1][0] != 7i {
		t.Error("MaskMissing must not zero shared channel data")
	}
	if c.Present(3, 1) || !c.Present(3, 0) {
		t.Error("copy mask wrong")
	}
}

func TestSelectCarriesMask(t *testing.T) {
	s := NewSnapshot(fullBands(), 4, 4)
	s.MarkMissing(10, 3)
	sub, err := s.SelectBands([]int{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Present(0, 3) || !sub.Present(1, 3) {
		t.Error("SelectBands lost the mask")
	}
	sa, err := s.SelectAnchors([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Present(10, 1) || !sa.Present(10, 0) || !sa.Present(11, 1) {
		t.Error("SelectAnchors lost the mask")
	}
	st, err := s.SelectAntennas(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Present(10, 3) || !st.Present(9, 3) {
		t.Error("SelectAntennas lost the mask")
	}
}
