package csi_test

import (
	"testing"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// TestQualityCleanTestbedStream feeds 100 rounds of genuine simulated CSI
// — with the tag jumping between distant positions, the worst case for
// the magnitude gate — through the validator and requires zero false
// positives. The sanity pipeline sits in front of every production round;
// rejecting clean data would silently degrade the estimator.
func TestQualityCleanTestbedStream(t *testing.T) {
	dep, err := testbed.Paper(7)
	if err != nil {
		t.Fatal(err)
	}
	v := csi.NewRowValidator(len(dep.Anchors), csi.QualityConfig{})
	pts := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(-1.2, 1.8), geom.Pt(2.0, -2.0), geom.Pt(0.1, -0.3)}
	rejected := 0
	for round := 0; round < 100; round++ {
		snap := dep.Fork(uint64(round)).Sounding(pts[round%len(pts)])
		for i := 0; i < snap.NumAnchors(); i++ {
			for k := 0; k < snap.NumBands(); k++ {
				if verd := v.Check(i, snap.Tag[k][i], snap.Master[k][i]); !verd.OK() {
					rejected++
					t.Logf("round %d anchor %d band %d: %v", round, i, k, verd)
				}
			}
		}
	}
	if rejected > 0 {
		t.Fatalf("%d clean rows rejected", rejected)
	}
}
