package csi

import (
	"fmt"
	"math/cmplx"

	"bloc/internal/ble"
)

// ToneMeasurement is the result of sounding one band: the complex channel
// at the f0 tone, at the f1 tone, and their per-band combination.
type ToneMeasurement struct {
	H0, H1   complex128
	Combined complex128
}

// Sounder measures CSI from received IQ samples of a known sounding
// packet. The reference transmit waveform is regenerated locally from the
// packet contents, so the channel estimate is simply the average of
// y[n]/x[n] over each settled tone window — the paper's h = y/x (§4).
type Sounder struct {
	mod    *ble.Modulator
	layout ble.SoundingLayout
	ref    []complex128
	// MarginBits trims the edges of each run before measuring, giving the
	// Gaussian filter room to settle. Must leave at least one bit.
	MarginBits int
}

// NewSounder prepares a sounder for the given channel and run length. The
// access address only affects the reference waveform, not the layout.
func NewSounder(access ble.AccessAddress, channel ble.ChannelIndex, runBits, sps int) (*Sounder, error) {
	pkt, layout, err := ble.SoundingPacket(access, channel, runBits)
	if err != nil {
		return nil, err
	}
	bits, err := pkt.AirBits()
	if err != nil {
		return nil, err
	}
	mod := ble.NewModulator(sps)
	return &Sounder{
		mod:        mod,
		layout:     layout,
		ref:        mod.Modulate(bits),
		MarginBits: 6,
	}, nil
}

// Reference returns the clean transmit waveform of the sounding packet
// (the signal a transmitter should send, and the x in h = y/x).
func (s *Sounder) Reference() []complex128 { return s.ref }

// Layout returns the air-bit layout of the tone runs.
func (s *Sounder) Layout() ble.SoundingLayout { return s.layout }

// Measure estimates the channel from received samples rx, which must be
// time-aligned with Reference() (same length or longer). Both tones are
// measured over the settled interior of their runs and combined per §5.
func (s *Sounder) Measure(rx []complex128) (ToneMeasurement, error) {
	if len(rx) < len(s.ref) {
		return ToneMeasurement{}, fmt.Errorf("csi: rx has %d samples, reference needs %d", len(rx), len(s.ref))
	}
	h0, err := s.toneAverage(rx, s.layout.ZeroRunStart, s.layout.ZeroRunLen)
	if err != nil {
		return ToneMeasurement{}, err
	}
	h1, err := s.toneAverage(rx, s.layout.OneRunStart, s.layout.OneRunLen)
	if err != nil {
		return ToneMeasurement{}, err
	}
	return ToneMeasurement{H0: h0, H1: h1, Combined: CombineTones(h0, h1)}, nil
}

// toneAverage returns mean(rx[n]/ref[n]) over the settled window of a run.
func (s *Sounder) toneAverage(rx []complex128, runStart, runLen int) (complex128, error) {
	startBit, endBit := ble.StableRegion(runStart, runLen, s.MarginBits)
	sps := s.mod.SPS
	lo, hi := startBit*sps, endBit*sps
	if hi > len(s.ref) {
		return 0, fmt.Errorf("csi: stable window [%d,%d) exceeds reference length %d", lo, hi, len(s.ref))
	}
	var acc complex128
	n := 0
	for i := lo; i < hi; i++ {
		x := s.ref[i]
		if cmplx.Abs(x) < 1e-12 {
			continue
		}
		acc += rx[i] / x
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("csi: empty measurement window")
	}
	return acc / complex(float64(n), 0), nil
}
