// Package csi defines the channel-state-information data model of the BLoc
// reproduction and implements CSI measurement from GFSK waveforms (§4 of
// the paper): locating the settled f0/f1 tone runs inside a sounding
// packet, estimating the complex channel at each tone as y/x, and merging
// the two tones into one per-band value by averaging amplitude and phase
// separately (§5).
package csi

import (
	"fmt"

	"bloc/internal/ble"
	"bloc/internal/dsp"
)

// Snapshot holds one complete CSI acquisition for a single tag position:
// the measured (phase-offset-garbled) channels of every anchor, antenna
// and frequency band for both directions of the master↔tag exchange.
//
// Indices follow the paper's notation (§5): anchor i ∈ [0, I) with anchor 0
// the master, antenna j ∈ [0, J), band k ∈ [0, K).
type Snapshot struct {
	Bands []ble.ChannelIndex // the K bands, in measurement order
	Freqs []float64          // center frequency per band, Hz

	// Tag[k][i][j] is ĥ^f_ij: the channel from the tag to antenna j of
	// anchor i, measured on band k. Tag[k][0][0] is ĥ^f_00, the
	// tag→master channel the correction term needs.
	Tag [][][]complex128

	// Master[k][i] is Ĥ^f_i0: the channel from the master anchor's
	// antenna 0 to antenna 0 of anchor i, overheard on band k.
	// Master[k][0] is unused and set to 1 (an anchor does not overhear
	// itself; the master's own correction term cancels pairwise, §5.2).
	Master [][]complex128
}

// NumBands returns K.
func (s *Snapshot) NumBands() int { return len(s.Bands) }

// NumAnchors returns I.
func (s *Snapshot) NumAnchors() int {
	if len(s.Tag) == 0 {
		return 0
	}
	return len(s.Tag[0])
}

// NumAntennas returns J.
func (s *Snapshot) NumAntennas() int {
	if len(s.Tag) == 0 || len(s.Tag[0]) == 0 {
		return 0
	}
	return len(s.Tag[0][0])
}

// NewSnapshot allocates a zeroed snapshot for K bands, I anchors and J
// antennas. Master entries for anchor 0 are initialized to 1.
func NewSnapshot(bands []ble.ChannelIndex, anchors, antennas int) *Snapshot {
	k := len(bands)
	s := &Snapshot{
		Bands:  append([]ble.ChannelIndex(nil), bands...),
		Freqs:  make([]float64, k),
		Tag:    make([][][]complex128, k),
		Master: make([][]complex128, k),
	}
	for b, ch := range bands {
		s.Freqs[b] = ch.CenterFreq()
		s.Tag[b] = make([][]complex128, anchors)
		for i := 0; i < anchors; i++ {
			s.Tag[b][i] = make([]complex128, antennas)
		}
		s.Master[b] = make([]complex128, anchors)
		s.Master[b][0] = 1
	}
	return s
}

// Validate checks structural consistency.
func (s *Snapshot) Validate() error {
	k := len(s.Bands)
	if len(s.Freqs) != k || len(s.Tag) != k || len(s.Master) != k {
		return fmt.Errorf("csi: inconsistent band dimensions (bands=%d freqs=%d tag=%d master=%d)",
			k, len(s.Freqs), len(s.Tag), len(s.Master))
	}
	if k == 0 {
		return fmt.Errorf("csi: snapshot has no bands")
	}
	anchors := len(s.Tag[0])
	if anchors == 0 {
		return fmt.Errorf("csi: snapshot has no anchors")
	}
	antennas := len(s.Tag[0][0])
	if antennas == 0 {
		return fmt.Errorf("csi: snapshot has no antennas")
	}
	for b := range s.Tag {
		if len(s.Tag[b]) != anchors || len(s.Master[b]) != anchors {
			return fmt.Errorf("csi: band %d anchor dimension mismatch", b)
		}
		for i := range s.Tag[b] {
			if len(s.Tag[b][i]) != antennas {
				return fmt.Errorf("csi: band %d anchor %d antenna dimension mismatch", b, i)
			}
		}
	}
	return nil
}

// SelectBands returns a new snapshot restricted to the bands at the given
// indices (used for the bandwidth and subsampling experiments, §8.5/§8.6).
// The underlying channel slices are shared, not copied.
func (s *Snapshot) SelectBands(idx []int) (*Snapshot, error) {
	out := &Snapshot{
		Bands:  make([]ble.ChannelIndex, 0, len(idx)),
		Freqs:  make([]float64, 0, len(idx)),
		Tag:    make([][][]complex128, 0, len(idx)),
		Master: make([][]complex128, 0, len(idx)),
	}
	for _, b := range idx {
		if b < 0 || b >= len(s.Bands) {
			return nil, fmt.Errorf("csi: band index %d out of range [0,%d)", b, len(s.Bands))
		}
		out.Bands = append(out.Bands, s.Bands[b])
		out.Freqs = append(out.Freqs, s.Freqs[b])
		out.Tag = append(out.Tag, s.Tag[b])
		out.Master = append(out.Master, s.Master[b])
	}
	return out, nil
}

// SelectAnchors returns a new snapshot containing only the listed anchors,
// reindexed in the given order. The first listed anchor becomes the master
// reference, so anchors[0] must be 0 (the correction math is defined
// relative to the true master's transmissions). Channel slices are shared.
func (s *Snapshot) SelectAnchors(anchors []int) (*Snapshot, error) {
	if len(anchors) == 0 {
		return nil, fmt.Errorf("csi: empty anchor selection")
	}
	if anchors[0] != 0 {
		return nil, fmt.Errorf("csi: anchor selection must keep the master (anchor 0) first, got %v", anchors)
	}
	n := s.NumAnchors()
	out := &Snapshot{
		Bands:  s.Bands,
		Freqs:  s.Freqs,
		Tag:    make([][][]complex128, len(s.Bands)),
		Master: make([][]complex128, len(s.Bands)),
	}
	for b := range s.Bands {
		out.Tag[b] = make([][]complex128, len(anchors))
		out.Master[b] = make([]complex128, len(anchors))
		for ni, i := range anchors {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("csi: anchor index %d out of range [0,%d)", i, n)
			}
			out.Tag[b][ni] = s.Tag[b][i]
			out.Master[b][ni] = s.Master[b][i]
		}
	}
	return out, nil
}

// SelectAntennas returns a new snapshot truncated to the first n antennas
// per anchor (§8.4). Channel slices are shared.
func (s *Snapshot) SelectAntennas(n int) (*Snapshot, error) {
	if n < 1 || n > s.NumAntennas() {
		return nil, fmt.Errorf("csi: antenna count %d out of range [1,%d]", n, s.NumAntennas())
	}
	out := &Snapshot{
		Bands:  s.Bands,
		Freqs:  s.Freqs,
		Tag:    make([][][]complex128, len(s.Bands)),
		Master: s.Master,
	}
	for b := range s.Bands {
		out.Tag[b] = make([][]complex128, len(s.Tag[b]))
		for i := range s.Tag[b] {
			out.Tag[b][i] = s.Tag[b][i][:n]
		}
	}
	return out, nil
}

// CombineTones merges the channels measured at the two GFSK tones of one
// band into a single per-band value by averaging amplitude and phase
// separately (§5: the combined value is "assumed to be the wireless
// channel at the center frequency of the band").
func CombineTones(h0, h1 complex128) complex128 {
	return dsp.MeanAmplitudePhase([]complex128{h0, h1})
}
