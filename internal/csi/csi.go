// Package csi defines the channel-state-information data model of the BLoc
// reproduction and implements CSI measurement from GFSK waveforms (§4 of
// the paper): locating the settled f0/f1 tone runs inside a sounding
// packet, estimating the complex channel at each tone as y/x, and merging
// the two tones into one per-band value by averaging amplitude and phase
// separately (§5).
package csi

import (
	"fmt"

	"bloc/internal/ble"
	"bloc/internal/dsp"
)

// Snapshot holds one complete CSI acquisition for a single tag position:
// the measured (phase-offset-garbled) channels of every anchor, antenna
// and frequency band for both directions of the master↔tag exchange.
//
// Indices follow the paper's notation (§5): anchor i ∈ [0, I) with anchor 0
// the master, antenna j ∈ [0, J), band k ∈ [0, K).
type Snapshot struct {
	Bands []ble.ChannelIndex // the K bands, in measurement order
	Freqs []float64          // center frequency per band, Hz

	// Tag[k][i][j] is ĥ^f_ij: the channel from the tag to antenna j of
	// anchor i, measured on band k. Tag[k][0][0] is ĥ^f_00, the
	// tag→master channel the correction term needs.
	Tag [][][]complex128

	// Master[k][i] is Ĥ^f_i0: the channel from the master anchor's
	// antenna 0 to antenna 0 of anchor i, overheard on band k.
	// Master[k][0] is unused and set to 1 (an anchor does not overhear
	// itself; the master's own correction term cancels pairwise, §5.2).
	Master [][]complex128

	// Have is the presence mask of a partial acquisition: Have[k][i]
	// reports whether anchor i's measurement row for band k was actually
	// received. A nil Have means the snapshot is complete (every row
	// present) — the common case, and the representation all pre-existing
	// producers emit. Rows with Have[k][i] == false hold zero values and
	// must be skipped by estimators (see core.Correct).
	Have [][]bool
}

// NumBands returns K.
func (s *Snapshot) NumBands() int { return len(s.Bands) }

// NumAnchors returns I.
func (s *Snapshot) NumAnchors() int {
	if len(s.Tag) == 0 {
		return 0
	}
	return len(s.Tag[0])
}

// NumAntennas returns J.
func (s *Snapshot) NumAntennas() int {
	if len(s.Tag) == 0 || len(s.Tag[0]) == 0 {
		return 0
	}
	return len(s.Tag[0][0])
}

// NewSnapshot allocates a zeroed snapshot for K bands, I anchors and J
// antennas. Master entries for anchor 0 are initialized to 1.
func NewSnapshot(bands []ble.ChannelIndex, anchors, antennas int) *Snapshot {
	k := len(bands)
	s := &Snapshot{
		Bands:  append([]ble.ChannelIndex(nil), bands...),
		Freqs:  make([]float64, k),
		Tag:    make([][][]complex128, k),
		Master: make([][]complex128, k),
	}
	for b, ch := range bands {
		s.Freqs[b] = ch.CenterFreq()
		s.Tag[b] = make([][]complex128, anchors)
		for i := 0; i < anchors; i++ {
			s.Tag[b][i] = make([]complex128, antennas)
		}
		s.Master[b] = make([]complex128, anchors)
		s.Master[b][0] = 1
	}
	return s
}

// Present reports whether anchor i's row for band k was received. A nil
// mask means the snapshot is complete.
func (s *Snapshot) Present(k, i int) bool {
	return s.Have == nil || s.Have[k][i]
}

// Complete reports whether every (band, anchor) row is present.
func (s *Snapshot) Complete() bool {
	if s.Have == nil {
		return true
	}
	for k := range s.Have {
		for i := range s.Have[k] {
			if !s.Have[k][i] {
				return false
			}
		}
	}
	return true
}

// PresentBands returns the number of bands on which anchor i's row is
// present.
func (s *Snapshot) PresentBands(i int) int {
	if s.Have == nil {
		return len(s.Bands)
	}
	n := 0
	for k := range s.Have {
		if s.Have[k][i] {
			n++
		}
	}
	return n
}

// PresentAnchors returns the indices of anchors with at least minBands
// present rows (minBands < 1 is treated as 1).
func (s *Snapshot) PresentAnchors(minBands int) []int {
	if minBands < 1 {
		minBands = 1
	}
	var out []int
	for i := 0; i < s.NumAnchors(); i++ {
		if s.PresentBands(i) >= minBands {
			out = append(out, i)
		}
	}
	return out
}

// ensureMask materializes the presence mask (all-true) if it is nil.
func (s *Snapshot) ensureMask() {
	if s.Have != nil {
		return
	}
	s.Have = make([][]bool, len(s.Tag))
	for k := range s.Tag {
		row := make([]bool, len(s.Tag[k]))
		for i := range row {
			row[i] = true
		}
		s.Have[k] = row
	}
}

// MarkMissing records that anchor i's row for band k was not received and
// zeroes the corresponding channel values so no stale data can leak into
// a masked sum.
func (s *Snapshot) MarkMissing(k, i int) {
	s.ensureMask()
	s.Have[k][i] = false
	for j := range s.Tag[k][i] {
		s.Tag[k][i][j] = 0
	}
	if i > 0 {
		s.Master[k][i] = 0
	}
}

// MaskedCopy returns a snapshot sharing s's channel data but owning an
// independent presence mask, so callers can mark rows missing (ablations,
// degraded-mode tests) without mutating the original.
func (s *Snapshot) MaskedCopy() *Snapshot {
	out := &Snapshot{
		Bands:  s.Bands,
		Freqs:  s.Freqs,
		Tag:    s.Tag,
		Master: s.Master,
	}
	out.Have = make([][]bool, len(s.Tag))
	for k := range s.Tag {
		row := make([]bool, len(s.Tag[k]))
		for i := range row {
			row[i] = s.Present(k, i)
		}
		out.Have[k] = row
	}
	return out
}

// MaskMissing marks (band, anchor) rows missing on a MaskedCopy without
// touching the shared channel data — unlike MarkMissing it must not zero
// values, since Tag/Master are shared with the original snapshot.
func (s *Snapshot) MaskMissing(k, i int) {
	s.ensureMask()
	s.Have[k][i] = false
}

// Validate checks structural consistency.
func (s *Snapshot) Validate() error {
	k := len(s.Bands)
	if len(s.Freqs) != k || len(s.Tag) != k || len(s.Master) != k {
		return fmt.Errorf("csi: inconsistent band dimensions (bands=%d freqs=%d tag=%d master=%d)",
			k, len(s.Freqs), len(s.Tag), len(s.Master))
	}
	if k == 0 {
		return fmt.Errorf("csi: snapshot has no bands")
	}
	anchors := len(s.Tag[0])
	if anchors == 0 {
		return fmt.Errorf("csi: snapshot has no anchors")
	}
	antennas := len(s.Tag[0][0])
	if antennas == 0 {
		return fmt.Errorf("csi: snapshot has no antennas")
	}
	for b := range s.Tag {
		if len(s.Tag[b]) != anchors || len(s.Master[b]) != anchors {
			return fmt.Errorf("csi: band %d anchor dimension mismatch", b)
		}
		for i := range s.Tag[b] {
			if len(s.Tag[b][i]) != antennas {
				return fmt.Errorf("csi: band %d anchor %d antenna dimension mismatch", b, i)
			}
		}
	}
	if s.Have != nil {
		if len(s.Have) != k {
			return fmt.Errorf("csi: presence mask has %d bands, snapshot %d", len(s.Have), k)
		}
		for b := range s.Have {
			if len(s.Have[b]) != anchors {
				return fmt.Errorf("csi: presence mask band %d has %d anchors, snapshot %d",
					b, len(s.Have[b]), anchors)
			}
		}
	}
	return nil
}

// SelectBands returns a new snapshot restricted to the bands at the given
// indices (used for the bandwidth and subsampling experiments, §8.5/§8.6).
// The underlying channel slices are shared, not copied.
func (s *Snapshot) SelectBands(idx []int) (*Snapshot, error) {
	out := &Snapshot{
		Bands:  make([]ble.ChannelIndex, 0, len(idx)),
		Freqs:  make([]float64, 0, len(idx)),
		Tag:    make([][][]complex128, 0, len(idx)),
		Master: make([][]complex128, 0, len(idx)),
	}
	for _, b := range idx {
		if b < 0 || b >= len(s.Bands) {
			return nil, fmt.Errorf("csi: band index %d out of range [0,%d)", b, len(s.Bands))
		}
		out.Bands = append(out.Bands, s.Bands[b])
		out.Freqs = append(out.Freqs, s.Freqs[b])
		out.Tag = append(out.Tag, s.Tag[b])
		out.Master = append(out.Master, s.Master[b])
		if s.Have != nil {
			out.Have = append(out.Have, s.Have[b])
		}
	}
	return out, nil
}

// SelectAnchors returns a new snapshot containing only the listed anchors,
// reindexed in the given order. The first listed anchor becomes the master
// reference, so anchors[0] must be 0 (the correction math is defined
// relative to the true master's transmissions). Channel slices are shared.
func (s *Snapshot) SelectAnchors(anchors []int) (*Snapshot, error) {
	if len(anchors) == 0 {
		return nil, fmt.Errorf("csi: empty anchor selection")
	}
	if anchors[0] != 0 {
		return nil, fmt.Errorf("csi: anchor selection must keep the master (anchor 0) first, got %v", anchors)
	}
	n := s.NumAnchors()
	out := &Snapshot{
		Bands:  s.Bands,
		Freqs:  s.Freqs,
		Tag:    make([][][]complex128, len(s.Bands)),
		Master: make([][]complex128, len(s.Bands)),
	}
	if s.Have != nil {
		out.Have = make([][]bool, len(s.Bands))
	}
	for b := range s.Bands {
		out.Tag[b] = make([][]complex128, len(anchors))
		out.Master[b] = make([]complex128, len(anchors))
		if s.Have != nil {
			out.Have[b] = make([]bool, len(anchors))
		}
		for ni, i := range anchors {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("csi: anchor index %d out of range [0,%d)", i, n)
			}
			out.Tag[b][ni] = s.Tag[b][i]
			out.Master[b][ni] = s.Master[b][i]
			if s.Have != nil {
				out.Have[b][ni] = s.Have[b][i]
			}
		}
	}
	return out, nil
}

// SelectAntennas returns a new snapshot truncated to the first n antennas
// per anchor (§8.4). Channel slices are shared.
func (s *Snapshot) SelectAntennas(n int) (*Snapshot, error) {
	if n < 1 || n > s.NumAntennas() {
		return nil, fmt.Errorf("csi: antenna count %d out of range [1,%d]", n, s.NumAntennas())
	}
	out := &Snapshot{
		Bands:  s.Bands,
		Freqs:  s.Freqs,
		Tag:    make([][][]complex128, len(s.Bands)),
		Master: s.Master,
		Have:   s.Have,
	}
	for b := range s.Bands {
		out.Tag[b] = make([][]complex128, len(s.Tag[b]))
		for i := range s.Tag[b] {
			out.Tag[b][i] = s.Tag[b][i][:n]
		}
	}
	return out, nil
}

// CombineTones merges the channels measured at the two GFSK tones of one
// band into a single per-band value by averaging amplitude and phase
// separately (§5: the combined value is "assumed to be the wireless
// channel at the center frequency of the band").
func CombineTones(h0, h1 complex128) complex128 {
	return dsp.MeanAmplitudePhase([]complex128{h0, h1})
}
