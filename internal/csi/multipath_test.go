package csi

import (
	"math/cmplx"
	"testing"

	"bloc/internal/ble"
	"bloc/internal/geom"
	"bloc/internal/radio"
	"bloc/internal/rfsim"
)

// TestSounderUnderMultipath verifies the narrowband assumption the whole
// pipeline rests on: within one 2 MHz BLE band, a multipath channel is
// flat enough that the waveform-level h = y/x measurement matches the
// analytic channel evaluated at the band center frequency.
func TestSounderUnderMultipath(t *testing.T) {
	env := rfsim.NewEnvironment(geom.NewRect(geom.Pt(-2.5, -3), geom.Pt(2.5, 3)), 5)
	env.AddScatterer(rfsim.Scatterer{Center: geom.Pt(1.5, 1.5), Radius: 0.3, Gain: 3, Facets: 5})
	tx, rx := geom.Pt(-1, -1), geom.Pt(1.5, -0.5)
	paths := env.Paths(tx, rx)

	for _, ch := range []ble.ChannelIndex{0, 18, 36} {
		f := ch.CenterFreq()
		h := rfsim.ChannelFromPaths(paths, f)
		s, err := NewSounder(0x51B2C3D4, ch, ble.DefaultRunBits, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Flat-fading application of the multipath channel (the 2 MHz
		// signal cannot resolve the paths; their combined complex gain is
		// what the receiver sees).
		rxIQ := radio.ApplyChannel(s.Reference(), h, 1)
		m, err := s.Measure(rxIQ)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(m.Combined-h)/cmplx.Abs(h) > 1e-6 {
			t.Errorf("ch %v: measured %v, analytic %v", ch, m.Combined, h)
		}
	}
}

// TestSounderToneFrequencyOffsetWithinBand models the f0/f1 tones seeing
// slightly different channel values (they are 500 kHz apart): the
// per-band combination must land between the two and remain a stable
// estimate of the band-center channel.
func TestSounderToneFrequencyOffsetWithinBand(t *testing.T) {
	env := rfsim.NewEnvironment(geom.NewRect(geom.Pt(-2.5, -3), geom.Pt(2.5, 3)), 6)
	env.AddScatterer(rfsim.Scatterer{Center: geom.Pt(-1, 2), Radius: 0.2, Gain: 2, Facets: 3})
	tx, rx := geom.Pt(0, -2), geom.Pt(2, 2.5)
	paths := env.Paths(tx, rx)

	ch := ble.ChannelIndex(18)
	fc := ch.CenterFreq()
	h0 := rfsim.ChannelFromPaths(paths, fc-ble.FreqDeviationHz)
	h1 := rfsim.ChannelFromPaths(paths, fc+ble.FreqDeviationHz)
	hc := rfsim.ChannelFromPaths(paths, fc)

	s, err := NewSounder(0x51B2C3D4, ch, ble.DefaultRunBits, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the per-tone channels to the respective run windows.
	ref := s.Reference()
	rxIQ := make([]complex128, len(ref))
	split := s.Layout().OneRunStart * 8
	for i := range ref {
		if i < split {
			rxIQ[i] = ref[i] * h0
		} else {
			rxIQ[i] = ref[i] * h1
		}
	}
	m, err := s.Measure(rxIQ)
	if err != nil {
		t.Fatal(err)
	}
	// The combination approximates the band-center channel: within a few
	// percent for indoor path spreads (500 kHz × tens of ns delay spread
	// is a tiny phase).
	if cmplx.Abs(m.Combined-hc)/cmplx.Abs(hc) > 0.05 {
		t.Errorf("combined %v deviates from band-center channel %v", m.Combined, hc)
	}
}
