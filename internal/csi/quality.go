package csi

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// CSI sanity pipeline (data-quality plane): every snapshot row is
// validated on ingest, before it can reach the α correction or the
// likelihood kernels. Production radios drift, saturate and lie — the
// checks below catch the four failure shapes the fault injectors in
// internal/faultnet reproduce:
//
//   - non-finite payloads (bit flips in the float encoding, DMA garbage);
//   - dead rows (zero/denormal magnitudes from a muted or saturated ADC);
//   - stuck tones (a frozen synthesizer or replayed DMA buffer emits the
//     same complex values row after row — physically impossible, since
//     every BLE retune draws a fresh LO phase, §5.1);
//   - missing phase discontinuity (the inter-row phase delta must be
//     re-randomized by each retune; a near-constant delta across rows
//     marks a CFO-locked replay or drifting oscillator);
//   - magnitude outliers (a row whose mean magnitude sits implausibly far
//     from the anchor's rolling median, in MAD units — silent garbage
//     with the wrong power level).
//
// The per-row verdicts feed the rolling per-anchor health scores in
// internal/locserver, which quarantine misbehaving anchors and drive
// reference re-election.

// RowVerdict classifies one ingested CSI row.
type RowVerdict uint8

const (
	// RowOK: the row passed every check.
	RowOK RowVerdict = iota
	// RowNonFinite: a tone carries NaN or ±Inf.
	RowNonFinite
	// RowDead: every tone magnitude is below the dead floor.
	RowDead
	// RowStuckTones: the row repeats the previous rows' exact values.
	RowStuckTones
	// RowFrozenPhase: the expected per-retune phase discontinuity is
	// missing — the inter-row phase delta has been constant too long.
	RowFrozenPhase
	// RowMagOutlier: the row's mean magnitude is a MAD outlier against
	// the anchor's rolling window.
	RowMagOutlier
)

// OK reports whether the row is usable.
func (v RowVerdict) OK() bool { return v == RowOK }

// String names the verdict for logs and stats.
func (v RowVerdict) String() string {
	switch v {
	case RowOK:
		return "ok"
	case RowNonFinite:
		return "non-finite"
	case RowDead:
		return "dead"
	case RowStuckTones:
		return "stuck-tones"
	case RowFrozenPhase:
		return "frozen-phase"
	case RowMagOutlier:
		return "mag-outlier"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// QualityConfig tunes the ingest sanity checks. The zero value selects
// the defaults below.
type QualityConfig struct {
	// DeadFloor is the magnitude below which a tone counts as dead
	// (default 1e-18: far under any simulated or real channel gain, far
	// over denormal noise).
	DeadFloor float64
	// StuckRows is how many consecutive identical rows mark a stuck
	// radio (default 4). The first repeat is already suspicious — a
	// retuning radio never reproduces exact complex values — but small
	// runs tolerate duplicated frames from the transport's resend path.
	StuckRows int
	// FrozenRows is how many consecutive near-constant inter-row phase
	// deltas mark a missing retune discontinuity (default 6).
	FrozenRows int
	// FrozenEps is the tolerance (radians) under which two consecutive
	// phase deltas count as "the same" (default 1e-3).
	FrozenEps float64
	// MADWindow is the rolling per-anchor window of row log-magnitudes
	// the outlier gate compares against (default 64 rows).
	MADWindow int
	// MADGate rejects a row whose log10 mean magnitude deviates from
	// the window median by more than this many MADs (default 10). With
	// the madFloor this puts the minimum gate at 1.5 dex (~30x), well
	// past legitimate tag movement (≤ ~1 dex median shift on the paper
	// testbed) but far under injected wrong-power garbage.
	MADGate float64
	// MADMinSamples disables the outlier gate until the window holds at
	// least this many accepted rows (default 16), so cold starts cannot
	// reject legitimate data against an empty history.
	MADMinSamples int
}

func (c *QualityConfig) withDefaults() QualityConfig {
	out := *c
	if out.DeadFloor <= 0 {
		out.DeadFloor = 1e-18
	}
	if out.StuckRows <= 0 {
		out.StuckRows = 4
	}
	if out.FrozenRows <= 0 {
		out.FrozenRows = 6
	}
	if out.FrozenEps <= 0 {
		out.FrozenEps = 1e-3
	}
	if out.MADWindow <= 0 {
		out.MADWindow = 64
	}
	if out.MADGate <= 0 {
		out.MADGate = 10
	}
	if out.MADMinSamples <= 0 {
		out.MADMinSamples = 16
	}
	return out
}

// madFloor keeps the outlier gate sane when an anchor's magnitudes are
// unusually stable: measured band-to-band fading on the paper testbed has
// a per-anchor MAD of 0.1–0.55 dex, so 0.15 dex is a realistic lower
// bound that stops a freakishly calm window from rejecting normal fades.
const madFloor = 0.15

// anchorQState is one anchor's rolling validation history.
type anchorQState struct {
	last      []complex128 // previous accepted row (copied)
	haveLast  bool
	stuckRun  int
	lastPhase float64 // phase of tone 0 of the previous row
	lastDelta float64 // previous inter-row phase delta
	havePrev  bool    // lastPhase valid
	haveDelta bool    // lastDelta valid
	frozenRun int
	window    []float64 // ring of accepted log10 row magnitudes
	wpos      int
	wlen      int
}

// RowValidator validates snapshot rows in arrival order and keeps the
// rolling per-anchor state the stuck/frozen/MAD checks need. It is NOT
// safe for concurrent use; callers serialize (the locserver holds its
// mutex across ingest).
type RowValidator struct {
	cfg     QualityConfig
	state   []anchorQState
	scratch []float64 // median sort buffer
}

// NewRowValidator returns a validator for the given anchor count.
func NewRowValidator(anchors int, cfg QualityConfig) *RowValidator {
	c := cfg.withDefaults()
	v := &RowValidator{
		cfg:     c,
		state:   make([]anchorQState, anchors),
		scratch: make([]float64, 0, c.MADWindow),
	}
	for i := range v.state {
		v.state[i].window = make([]float64, c.MADWindow)
	}
	return v
}

// Check validates one row from the given anchor: the per-antenna tag
// tones plus the overheard master tone. Rows must be fed in arrival
// order per anchor — the stuck-tone, frozen-phase and MAD checks compare
// against that anchor's history. Rejected rows do not enter the history
// (a corrupt row must not drag the rolling statistics toward itself).
func (v *RowValidator) Check(anchor int, tones []complex128, master complex128) RowVerdict {
	if anchor < 0 || anchor >= len(v.state) {
		return RowNonFinite
	}
	st := &v.state[anchor]

	if !finiteTones(tones) || !finiteTone(master) {
		st.resetRuns()
		return RowNonFinite
	}

	var maxMag, sumMag float64
	for _, z := range tones {
		m := cmplx.Abs(z)
		sumMag += m
		if m > maxMag {
			maxMag = m
		}
	}
	if maxMag < v.cfg.DeadFloor {
		st.resetRuns()
		return RowDead
	}

	// Stuck tones: exact repetition of the previous row. Real retunes
	// re-randomize the LO phase, so bit-identical rows only come from a
	// frozen buffer (or the transport's resend path, hence the run
	// threshold rather than a single-repeat trip).
	if st.haveLast && sameTones(st.last, tones) {
		st.stuckRun++
		// stuckRun counts repeats; the run length includes the first
		// occurrence, so StuckRows identical rows trip the check.
		if st.stuckRun+1 >= v.cfg.StuckRows {
			return RowStuckTones
		}
	} else {
		st.stuckRun = 0
	}

	// Frozen phase: the inter-row delta of tone 0's phase must jump
	// randomly between retunes. A run of near-identical deltas marks a
	// CFO-locked replay (delta constant but non-zero) or a stuck
	// synthesizer (delta zero) even when magnitudes keep changing.
	phase := cmplx.Phase(tones[0])
	frozen := false
	if st.havePrev {
		delta := wrapPhase(phase - st.lastPhase)
		if st.haveDelta && math.Abs(wrapPhase(delta-st.lastDelta)) < v.cfg.FrozenEps {
			st.frozenRun++
			if st.frozenRun >= v.cfg.FrozenRows {
				frozen = true
			}
		} else {
			st.frozenRun = 0
		}
		st.lastDelta = delta
		st.haveDelta = true
	}
	st.lastPhase = phase
	st.havePrev = true
	if frozen {
		return RowFrozenPhase
	}

	// Magnitude MAD outlier against the anchor's rolling window.
	logMag := math.Log10(sumMag / float64(len(tones)))
	outlier := false
	if st.wlen >= v.cfg.MADMinSamples {
		med, mad := v.medianMAD(st)
		if mad < madFloor {
			mad = madFloor
		}
		outlier = math.Abs(logMag-med) > v.cfg.MADGate*mad
	}
	// The magnitude is folded into the window whether or not it tripped
	// the gate: a lone wrong-power row barely moves a 64-row median, while
	// a persistent legitimate level shift (the tag walked away, a second
	// tag joined) becomes the new baseline within half a window instead of
	// being rejected forever against stale history.
	st.window[st.wpos] = logMag
	st.wpos = (st.wpos + 1) % len(st.window)
	if st.wlen < len(st.window) {
		st.wlen++
	}
	if outlier {
		return RowMagOutlier
	}

	// Accepted: fold the row into the stuck-tone history.
	st.last = append(st.last[:0], tones...)
	st.haveLast = true
	return RowOK
}

// Reset clears one anchor's rolling history (used when an anchor rejoins
// after quarantine, so stale statistics do not judge fresh data).
func (v *RowValidator) Reset(anchor int) {
	if anchor < 0 || anchor >= len(v.state) {
		return
	}
	w := v.state[anchor].window
	v.state[anchor] = anchorQState{window: w}
}

func (st *anchorQState) resetRuns() {
	st.haveLast = false
	st.stuckRun = 0
	st.havePrev = false
	st.haveDelta = false
	st.frozenRun = 0
}

// medianMAD returns the median and the median absolute deviation of the
// anchor's magnitude window.
func (v *RowValidator) medianMAD(st *anchorQState) (med, mad float64) {
	s := append(v.scratch[:0], st.window[:st.wlen]...)
	sort.Float64s(s)
	med = s[len(s)/2]
	for i, x := range s {
		s[i] = math.Abs(x - med)
	}
	sort.Float64s(s)
	mad = s[len(s)/2]
	v.scratch = s
	return med, mad
}

func finiteTone(z complex128) bool {
	re, im := real(z), imag(z)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

func finiteTones(tones []complex128) bool {
	for _, z := range tones {
		if !finiteTone(z) {
			return false
		}
	}
	return true
}

// sameTones compares rows by exact bit pattern (avoiding float ==
// semantics for NaN; NaN rows never reach this check).
func sameTones(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

// wrapPhase maps an angle to (−π, π].
func wrapPhase(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
