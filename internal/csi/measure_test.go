package csi

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/ble"
	"bloc/internal/radio"
)

const (
	testAccess = ble.AccessAddress(0x50F0B10C)
	testSPS    = 8
)

func TestSounderRecoversFlatChannel(t *testing.T) {
	// Pass the sounding waveform through a known flat channel: the
	// measured tones and their combination must match the channel.
	s, err := NewSounder(testAccess, 12, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []complex128{
		cmplx.Rect(0.25, 1.1),
		cmplx.Rect(0.01, -2.9),
		complex(0.5, 0),
	} {
		rx := radio.ApplyChannel(s.Reference(), h, 1)
		m, err := s.Measure(rx)
		if err != nil {
			t.Fatal(err)
		}
		for name, got := range map[string]complex128{"H0": m.H0, "H1": m.H1, "Combined": m.Combined} {
			if cmplx.Abs(got-h) > 1e-9 {
				t.Errorf("%s = %v, want %v", name, got, h)
			}
		}
	}
}

func TestSounderWithLOOffset(t *testing.T) {
	// An LO rotor multiplies the measured channel — this is exactly the
	// ĥ = h·e^{ι(φT−φR)} distortion of §5.1 that the correction removes
	// downstream. The sounder must report h·rotor faithfully.
	s, err := NewSounder(testAccess, 3, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	h := cmplx.Rect(0.3, 0.7)
	rotor := cmplx.Rect(1, -2.1)
	rx := radio.ApplyChannel(s.Reference(), h, rotor)
	m, err := s.Measure(rx)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(m.Combined-h*rotor) > 1e-9 {
		t.Errorf("Combined = %v, want %v", m.Combined, h*rotor)
	}
}

func TestSounderNoiseRobustness(t *testing.T) {
	// At 25 dB SNR the tone average over ~28 settled bits × 8 sps keeps
	// the channel estimate within a few percent.
	s, err := NewSounder(testAccess, 30, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	h := cmplx.Rect(0.2, 0.4)
	rng := rand.New(rand.NewPCG(13, 13))
	var worst float64
	for trial := 0; trial < 10; trial++ {
		rx := radio.ApplyChannel(s.Reference(), h, 1)
		sigma := cmplx.Abs(h) * math.Pow(10, -25.0/20) / math.Sqrt2
		radio.AWGN(rx, sigma, rng)
		m, err := s.Measure(rx)
		if err != nil {
			t.Fatal(err)
		}
		relErr := cmplx.Abs(m.Combined-h) / cmplx.Abs(h)
		worst = math.Max(worst, relErr)
	}
	if worst > 0.05 {
		t.Errorf("worst relative error %v at 25 dB SNR, want < 5%%", worst)
	}
}

func TestSounderConsistencyAcrossMeasurements(t *testing.T) {
	// Fig. 8a: repeated measurements of the same channel give the same
	// phase (stability of BLoc's CSI extraction).
	s, err := NewSounder(testAccess, 6, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	h := cmplx.Rect(0.15, -1.3)
	rng := rand.New(rand.NewPCG(17, 17))
	var phases []float64
	for trial := 0; trial < 10; trial++ {
		rx := radio.ApplyChannel(s.Reference(), h, 1)
		radio.AWGN(rx, 0.002, rng)
		m, err := s.Measure(rx)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, cmplx.Phase(m.Combined))
	}
	for _, p := range phases {
		if math.Abs(p-phases[0]) > 0.05 {
			t.Errorf("phase %v deviates from first %v", p, phases[0])
		}
	}
}

func TestSounderErrors(t *testing.T) {
	s, err := NewSounder(testAccess, 0, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Measure(make([]complex128, 10)); err == nil {
		t.Error("short rx should fail")
	}
	if _, err := NewSounder(testAccess, 99, ble.DefaultRunBits, testSPS); err == nil {
		t.Error("invalid channel should fail")
	}
}

func TestSounderToneSeparation(t *testing.T) {
	// Feed a waveform where the two tone windows see different channels
	// (frequency-selective within the band — exaggerated): H0 and H1 must
	// differ, and Combined must average amplitude and phase.
	s, err := NewSounder(testAccess, 20, ble.DefaultRunBits, testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ref := s.Reference()
	rx := make([]complex128, len(ref))
	h0 := cmplx.Rect(0.2, 0.5)
	h1 := cmplx.Rect(0.4, 0.9)
	layout := s.Layout()
	split := layout.OneRunStart * testSPS
	for i := range ref {
		if i < split {
			rx[i] = ref[i] * h0
		} else {
			rx[i] = ref[i] * h1
		}
	}
	m, err := s.Measure(rx)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(m.H0-h0) > 1e-9 || cmplx.Abs(m.H1-h1) > 1e-9 {
		t.Fatalf("tones not separated: H0=%v H1=%v", m.H0, m.H1)
	}
	if math.Abs(cmplx.Abs(m.Combined)-0.3) > 1e-9 {
		t.Errorf("combined amplitude = %v, want 0.3", cmplx.Abs(m.Combined))
	}
	if math.Abs(cmplx.Phase(m.Combined)-0.7) > 1e-9 {
		t.Errorf("combined phase = %v, want 0.7", cmplx.Phase(m.Combined))
	}
}
