package anchor

import (
	"errors"
	"io"
	"log/slog"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fakeServer accepts daemon connections, consumes the hello, and hands
// each authenticated conn to the test.
type fakeServer struct {
	ln    net.Listener
	conns chan net.Conn
}

func newFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, conns: make(chan net.Conn, 8)}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			msg, err := wire.Receive(conn)
			if err != nil {
				conn.Close()
				continue
			}
			if _, ok := msg.(*wire.Hello); !ok {
				conn.Close()
				continue
			}
			fs.conns <- conn
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func (fs *fakeServer) accept(t *testing.T) net.Conn {
	t.Helper()
	select {
	case c := <-fs.conns:
		t.Cleanup(func() { c.Close() })
		return c
	case <-time.After(5 * time.Second):
		t.Fatal("no daemon connection arrived")
		return nil
	}
}

// countRows reads n CSI rows from the conn, failing on anything else.
func countRows(t *testing.T, conn net.Conn, n int) []*wire.CSIRow {
	t.Helper()
	rows := make([]*wire.CSIRow, 0, n)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(rows) < n {
		msg, err := wire.Receive(conn)
		if err != nil {
			t.Fatalf("after %d rows: %v", len(rows), err)
		}
		if row, ok := msg.(*wire.CSIRow); ok {
			rows = append(rows, row)
		}
	}
	return rows
}

func newDaemon(t *testing.T) *Daemon {
	t.Helper()
	dep, err := testbed.Paper(3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(0, dep, quiet())
	if err != nil {
		t.Fatal(err)
	}
	d.Backoff = Backoff{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	t.Cleanup(func() { d.Close() })
	return d
}

func waitDown(t *testing.T, d *Daemon) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never noticed the lost connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAutoReconnect(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	bands := len(d.dep.Bands)
	if err := d.MeasureAndReport(0, 1, geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	countRows(t, c1, bands)

	// Server-side kill: the daemon must come back on its own.
	c1.Close()
	c2 := fs.accept(t)
	if err := d.MeasureAndReport(0, 2, geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	rows := countRows(t, c2, bands)
	if rows[0].Round != 2 {
		t.Errorf("post-reconnect round = %d, want 2", rows[0].Round)
	}
	if rec, _, _ := d.Stats(); rec != 1 {
		t.Errorf("reconnects = %d, want 1", rec)
	}
}

func TestOutageBufferFlushesOnReconnect(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	// Gate dialing so the outage lasts exactly as long as the test wants.
	var allow atomic.Bool
	allow.Store(true)
	d.Dial = func(addr string) (net.Conn, error) {
		if !allow.Load() {
			return nil, errors.New("gated")
		}
		return net.Dial("tcp", addr)
	}
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	allow.Store(false)
	c1.Close()
	waitDown(t, d)

	// Rounds measured during the outage buffer instead of erroring.
	bands := len(d.dep.Bands)
	for r := uint32(1); r <= 2; r++ {
		if err := d.MeasureAndReport(0, r, geom.Pt(0.1, 0.1)); err != nil {
			t.Fatalf("report while down: %v", err)
		}
	}
	if _, buffered, dropped := d.Stats(); buffered != 2*bands || dropped != 0 {
		t.Fatalf("buffered=%d dropped=%d, want %d/0", buffered, dropped, 2*bands)
	}

	allow.Store(true)
	c2 := fs.accept(t)
	rows := countRows(t, c2, 2*bands)
	seen := map[uint32]int{}
	for _, r := range rows {
		seen[r.Round]++
	}
	if seen[1] != bands || seen[2] != bands {
		t.Errorf("flushed rounds = %v, want %d rows each of rounds 1 and 2", seen, bands)
	}
	if _, buffered, _ := d.Stats(); buffered != 0 {
		t.Errorf("%d rows still buffered after flush", buffered)
	}
}

func TestOutageBufferBounded(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	d.ResendLimit = 10
	var allow atomic.Bool
	allow.Store(true)
	d.Dial = func(addr string) (net.Conn, error) {
		if !allow.Load() {
			return nil, errors.New("gated")
		}
		return net.Dial("tcp", addr)
	}
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	allow.Store(false)
	c1.Close()
	waitDown(t, d)

	bands := len(d.dep.Bands)
	if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	_, buffered, dropped := d.Stats()
	if buffered != 10 {
		t.Errorf("buffered = %d, want ResendLimit 10", buffered)
	}
	if dropped != bands-10 {
		t.Errorf("dropped = %d, want %d", dropped, bands-10)
	}
}

func TestDisableReconnectFailsFast(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	d.DisableReconnect = true
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	c1.Close()
	waitDown(t, d)
	if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err == nil {
		t.Error("report on a dead fail-fast daemon should error")
	}
	select {
	case c := <-fs.conns:
		c.Close()
		t.Error("daemon reconnected despite DisableReconnect")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestHeartbeatEcho(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	if err := wire.Send(c1, &wire.Heartbeat{Nonce: 42}); err != nil {
		t.Fatal(err)
	}
	c1.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		msg, err := wire.Receive(c1)
		if err != nil {
			t.Fatal(err)
		}
		if hb, ok := msg.(*wire.Heartbeat); ok {
			if hb.Nonce != 42 {
				t.Errorf("echoed nonce = %d, want 42", hb.Nonce)
			}
			return
		}
	}
}

func TestCloseStopsReconnectLoop(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	var dials atomic.Int32
	d.Dial = func(addr string) (net.Conn, error) {
		if dials.Add(1) == 1 {
			return net.Dial("tcp", addr)
		}
		return nil, errors.New("gated")
	}
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	c1 := fs.accept(t)
	c1.Close()
	waitDown(t, d)
	// Close must join the reconnect loop promptly even mid-backoff.
	done := make(chan error, 1)
	go func() { done <- d.Close() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on reconnect loop")
	}
	n := dials.Load()
	time.Sleep(150 * time.Millisecond)
	if dials.Load() != n {
		t.Error("dials continued after Close")
	}
}

func TestLifecycleValidation(t *testing.T) {
	fs := newFakeServer(t)
	d := newDaemon(t)
	if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err == nil {
		t.Error("report before connect should fail")
	}
	if err := d.Connect(fs.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	fs.accept(t)
	if err := d.Connect(fs.ln.Addr().String()); err == nil {
		t.Error("double connect should fail")
	}
	if err := d.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err == nil {
		t.Error("report after close should fail")
	}
	if err := d.Connect(fs.ln.Addr().String()); err == nil {
		t.Error("connect after close should fail")
	}
}
