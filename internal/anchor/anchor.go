// Package anchor implements the BLoc anchor daemon: the per-anchor
// process that measures CSI during tag↔master exchanges and streams the
// measurements to the central server over the wire protocol.
//
// In the paper, every anchor is a USRP-backed radio observing the shared
// physical room. In this reproduction the shared room is the
// deterministic testbed simulation: every daemon holds the same
// deployment seed, so independently simulating round r at the same tag
// position yields bit-identical channels everywhere — the seed plays the
// role of the shared physical world. Each daemon reports only its own
// anchor's rows, exactly as real anchors report only what their antennas
// received.
package anchor

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// Daemon is one anchor's measurement-and-report loop.
type Daemon struct {
	ID  int
	dep *testbed.Deployment
	log *slog.Logger

	conn    net.Conn
	writeMu sync.Mutex
	wg      sync.WaitGroup

	// OnFix, if set, is called for every fix broadcast by the server.
	OnFix func(wire.Fix)
}

// New creates a daemon for anchor id over the given deployment.
func New(id int, dep *testbed.Deployment, logger *slog.Logger) (*Daemon, error) {
	if id < 0 || id >= len(dep.Anchors) {
		return nil, fmt.Errorf("anchor: id %d out of range [0,%d)", id, len(dep.Anchors))
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Daemon{ID: id, dep: dep, log: logger.With("anchor", id)}, nil
}

// Connect dials the server and performs the hello handshake, then starts
// the fix-listener goroutine.
func (d *Daemon) Connect(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("anchor %d: dial: %w", d.ID, err)
	}
	hello := &wire.Hello{
		Version:  wire.ProtocolVersion,
		AnchorID: uint8(d.ID),
		Antennas: uint8(d.dep.Anchors[0].N),
		Bands:    uint16(len(d.dep.Bands)),
	}
	if err := wire.Send(conn, hello); err != nil {
		conn.Close()
		return fmt.Errorf("anchor %d: hello: %w", d.ID, err)
	}
	d.conn = conn
	d.wg.Add(1)
	go d.listen()
	return nil
}

// listen consumes server→anchor messages (fix broadcasts).
func (d *Daemon) listen() {
	defer d.wg.Done()
	for {
		msg, err := wire.Receive(d.conn)
		if err != nil {
			if err != io.EOF {
				d.log.Debug("listen ended", "err", err)
			}
			return
		}
		if fix, ok := msg.(*wire.Fix); ok && d.OnFix != nil {
			d.OnFix(*fix)
		}
	}
}

// MeasureAndReport simulates this anchor's view of acquisition round
// `round` for tag tagID at the given position and streams one CSIRow per
// band to the server.
func (d *Daemon) MeasureAndReport(tagID uint16, round uint32, tag geom.Point) error {
	if d.conn == nil {
		return fmt.Errorf("anchor %d: not connected", d.ID)
	}
	// All daemons fork the shared deployment identically: same tag and
	// round → same oscillators, noise and channels everywhere.
	snap := d.dep.Fork(uint64(tagID)<<32 | uint64(round)).Sounding(tag)
	for b := range snap.Bands {
		row := &wire.CSIRow{
			Round:    round,
			TagID:    tagID,
			AnchorID: uint8(d.ID),
			BandIdx:  uint16(b),
			Tag:      snap.Tag[b][d.ID],
			Master:   snap.Master[b][d.ID],
		}
		d.writeMu.Lock()
		err := wire.Send(d.conn, row)
		d.writeMu.Unlock()
		if err != nil {
			return fmt.Errorf("anchor %d: send row: %w", d.ID, err)
		}
	}
	return nil
}

// Close shuts the connection down and waits for the listener.
func (d *Daemon) Close() error {
	if d.conn == nil {
		return nil
	}
	err := d.conn.Close()
	d.wg.Wait()
	return err
}
