// Package anchor implements the BLoc anchor daemon: the per-anchor
// process that measures CSI during tag↔master exchanges and streams the
// measurements to the central server over the wire protocol.
//
// In the paper, every anchor is a USRP-backed radio observing the shared
// physical room. In this reproduction the shared room is the
// deterministic testbed simulation: every daemon holds the same
// deployment seed, so independently simulating round r at the same tag
// position yields bit-identical channels everywhere — the seed plays the
// role of the shared physical world. Each daemon reports only its own
// anchor's rows, exactly as real anchors report only what their antennas
// received.
//
// Daemons are fault tolerant: a lost server connection moves the daemon
// into a down state where reports are buffered (bounded, drop-oldest)
// while a background loop redials with exponential backoff and jitter.
// On reconnect the buffer is flushed, so rows measured during an outage
// still reach the server — the aggregator tolerates duplicates and late
// rows, so redelivery is always safe.
package anchor

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// Backoff paces reconnect attempts: the first retry waits Initial, each
// failure multiplies the wait by Factor up to Max, and every wait is
// spread by ±Jitter (a fraction) so a fleet of anchors that lost the same
// server does not redial in lockstep. The zero value selects defaults.
//
// Jitter is drawn from a per-daemon seeded PCG stream (the same
// discipline as locserver's health plane), never from the global RNG:
// two runs with the same Seed and traffic reproduce identical reconnect
// timing, which is what lets the fault drills assert on it. The stream
// is salted with the anchor ID so a fleet sharing one seed still spreads
// instead of redialing in lockstep.
type Backoff struct {
	Initial time.Duration // first retry delay (default 100ms)
	Max     time.Duration // delay ceiling (default 5s)
	Factor  float64       // delay multiplier per failure (default 2)
	Jitter  float64       // random spread fraction in [0,1] (default 0.2)
	Seed    uint64        // jitter stream seed (default 1); salted with the anchor ID
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// jittered spreads base by ±Jitter using the daemon's seeded stream.
func (b Backoff) jittered(base time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(base) * (1 + b.Jitter*(2*rng.Float64()-1)))
}

// connState is the daemon lifecycle: idle (never connected), connected,
// down (lost the server, possibly reconnecting) and closed (permanent).
type connState int

const (
	stateIdle connState = iota
	stateConnected
	stateDown
	stateClosed
)

// defaultResendLimit bounds the rows buffered across an outage. A full
// round is one row per band (37 for the paper deployment), so the default
// rides out ~100 rounds before dropping the oldest.
const defaultResendLimit = 4096

// Daemon is one anchor's measurement-and-report loop.
type Daemon struct {
	ID  int
	dep *testbed.Deployment
	log *slog.Logger

	// OnFix, if set, is called for every fix broadcast by the server.
	// Set it before Connect.
	OnFix func(wire.Fix)

	// Backoff paces reconnect attempts; the zero value picks defaults.
	Backoff Backoff
	// DisableReconnect reverts to fail-fast behavior: a lost connection
	// makes every later report error instead of buffering.
	DisableReconnect bool
	// ResendLimit bounds the outage buffer (rows, drop-oldest);
	// 0 means defaultResendLimit.
	ResendLimit int
	// Dial overrides how the server is reached; tests use it to inject
	// fault-wrapped or gated connections. Nil means net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Mutate, when set, edits every measured row before it is sent; the
	// fault drills use it (with faultnet.Corrupter) to model a radio that
	// reports garbage while its transport stays perfectly healthy.
	Mutate func(*wire.CSIRow)

	mu         sync.Mutex
	state      connState      // guarded by mu
	conn       net.Conn       // guarded by mu
	addr       string         // guarded by mu
	gen        int            // connection generation; stale failures are ignored; guarded by mu
	buf        []*wire.CSIRow // outage resend buffer; guarded by mu
	dropped    int            // guarded by mu
	reconnects int            // guarded by mu
	rng        *rand.Rand     // seeded backoff-jitter stream; created at Connect; guarded by mu
	closed     chan struct{}
	wg         sync.WaitGroup
}

// New creates a daemon for anchor id over the given deployment.
func New(id int, dep *testbed.Deployment, logger *slog.Logger) (*Daemon, error) {
	if id < 0 || id >= len(dep.Anchors) {
		return nil, fmt.Errorf("anchor: id %d out of range [0,%d)", id, len(dep.Anchors))
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Daemon{
		ID:     id,
		dep:    dep,
		log:    logger.With("anchor", id),
		closed: make(chan struct{}),
	}, nil
}

// Connect dials the server and performs the hello handshake, then starts
// the fix-listener goroutine. After a successful Connect the daemon keeps
// itself connected (unless DisableReconnect) until Close.
func (d *Daemon) Connect(addr string) error {
	d.mu.Lock()
	switch d.state {
	case stateClosed:
		d.mu.Unlock()
		return fmt.Errorf("anchor %d: closed", d.ID)
	case stateConnected:
		d.mu.Unlock()
		return fmt.Errorf("anchor %d: already connected", d.ID)
	}
	d.addr = addr
	if d.rng == nil {
		// Derive the jitter stream once, from the configured seed salted
		// with the anchor ID — deterministic per daemon, spread across a
		// fleet sharing one seed.
		d.rng = rand.New(rand.NewPCG(d.Backoff.withDefaults().Seed, uint64(d.ID)^0xBAC0FF))
	}
	d.mu.Unlock()

	conn, err := d.dialAndHello(addr)
	if err != nil {
		return err
	}
	d.mu.Lock()
	if d.state == stateClosed {
		d.mu.Unlock()
		conn.Close()
		return fmt.Errorf("anchor %d: closed", d.ID)
	}
	d.conn = conn
	d.state = stateConnected
	d.gen++
	gen := d.gen
	d.wg.Add(1)
	d.mu.Unlock()
	go d.listen(conn, gen)
	return nil
}

// dialAndHello establishes one authenticated connection.
func (d *Daemon) dialAndHello(addr string) (net.Conn, error) {
	dial := d.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("anchor %d: dial: %w", d.ID, err)
	}
	hello := &wire.Hello{
		Version:  wire.ProtocolVersion,
		AnchorID: uint8(d.ID),
		Antennas: uint8(d.dep.Anchors[0].N),
		Bands:    uint16(len(d.dep.Bands)),
	}
	if err := wire.Send(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("anchor %d: hello: %w", d.ID, err)
	}
	return conn, nil
}

// listen consumes server→anchor messages (fix broadcasts and heartbeat
// probes) for one connection generation.
func (d *Daemon) listen(conn net.Conn, gen int) {
	defer d.wg.Done()
	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			if err != io.EOF {
				d.log.Debug("listen ended", "err", err)
			}
			d.connLost(gen)
			return
		}
		switch m := msg.(type) {
		case *wire.Fix:
			if d.OnFix != nil {
				d.OnFix(*m)
			}
		case *wire.Heartbeat:
			// Echo the nonce back: the server prunes anchors that stop
			// answering. Write under mu to serialize with report sends.
			d.mu.Lock()
			if d.conn == conn {
				wire.Send(conn, m)
			}
			d.mu.Unlock()
		}
	}
}

// connLost transitions generation gen from connected to down and, unless
// reconnects are disabled, starts the redial loop. Stale or duplicate
// notifications (an old generation, an already-down daemon, a close in
// progress) are no-ops, so the read and write paths can both report the
// same failure safely.
func (d *Daemon) connLost(gen int) {
	d.mu.Lock()
	if d.state != stateConnected || d.gen != gen {
		d.mu.Unlock()
		return
	}
	d.conn.Close()
	d.conn = nil
	d.state = stateDown
	reconnect := !d.DisableReconnect
	if reconnect {
		d.wg.Add(1)
	}
	d.mu.Unlock()
	if !reconnect {
		d.log.Warn("connection lost, reconnect disabled")
		return
	}
	d.log.Warn("connection lost, reconnecting")
	go d.reconnectLoop()
}

// reconnectLoop redials with exponential backoff until it succeeds or the
// daemon closes, then flushes the outage buffer.
func (d *Daemon) reconnectLoop() {
	defer d.wg.Done()
	b := d.Backoff.withDefaults()
	delay := b.Initial
	for {
		d.mu.Lock()
		wait := b.jittered(delay, d.rng)
		d.mu.Unlock()
		t := time.NewTimer(wait)
		select {
		case <-d.closed:
			t.Stop()
			return
		case <-t.C:
		}
		d.mu.Lock()
		if d.state != stateDown {
			d.mu.Unlock()
			return
		}
		addr := d.addr
		d.mu.Unlock()

		conn, err := d.dialAndHello(addr)
		if err != nil {
			d.log.Debug("reconnect attempt failed", "err", err, "backoff", delay)
			delay = min(time.Duration(float64(delay)*b.Factor), b.Max)
			continue
		}
		d.mu.Lock()
		if d.state != stateDown {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.conn = conn
		d.state = stateConnected
		d.gen++
		gen := d.gen
		d.reconnects++
		pending := d.buf
		d.buf = nil
		d.wg.Add(1)
		d.mu.Unlock()
		go d.listen(conn, gen)
		d.log.Info("reconnected", "flushing", len(pending))
		// Redeliver rows measured during the outage. sendRow re-buffers
		// anything that fails (the new connection may die mid-flush), so
		// no row is lost short of the buffer bound.
		for _, row := range pending {
			d.sendRow(row)
		}
		return
	}
}

// MeasureAndReport simulates this anchor's view of acquisition round
// `round` for tag tagID at the given position and streams one CSIRow per
// band to the server. While the daemon is down (reconnecting) the rows are
// buffered and redelivered on reconnect; with DisableReconnect they error.
func (d *Daemon) MeasureAndReport(tagID uint16, round uint32, tag geom.Point) error {
	d.mu.Lock()
	st := d.state
	d.mu.Unlock()
	switch st {
	case stateIdle:
		return fmt.Errorf("anchor %d: not connected", d.ID)
	case stateClosed:
		return fmt.Errorf("anchor %d: closed", d.ID)
	}
	// All daemons fork the shared deployment identically: same tag and
	// round → same oscillators, noise and channels everywhere.
	snap := d.dep.Fork(uint64(tagID)<<32 | uint64(round)).Sounding(tag)
	for b := range snap.Bands {
		row := &wire.CSIRow{
			Round:    round,
			TagID:    tagID,
			AnchorID: uint8(d.ID),
			BandIdx:  uint16(b),
			Tag:      snap.Tag[b][d.ID],
			Master:   snap.Master[b][d.ID],
		}
		if d.Mutate != nil {
			// Copy before corrupting: snap's rows alias the fork's buffers.
			row.Tag = append([]complex128(nil), row.Tag...)
			d.Mutate(row)
		}
		if err := d.sendRow(row); err != nil {
			return err
		}
	}
	return nil
}

// sendRow delivers one row, buffering on outage unless reconnects are
// disabled.
func (d *Daemon) sendRow(row *wire.CSIRow) error {
	d.mu.Lock()
	switch d.state {
	case stateIdle:
		d.mu.Unlock()
		return fmt.Errorf("anchor %d: not connected", d.ID)
	case stateClosed:
		d.mu.Unlock()
		return fmt.Errorf("anchor %d: closed", d.ID)
	case stateDown:
		if d.DisableReconnect {
			d.mu.Unlock()
			return fmt.Errorf("anchor %d: connection down", d.ID)
		}
		d.bufferLocked(row)
		d.mu.Unlock()
		return nil
	}
	conn := d.conn
	gen := d.gen
	err := wire.Send(conn, row)
	d.mu.Unlock()
	if err == nil {
		return nil
	}
	if d.DisableReconnect {
		return fmt.Errorf("anchor %d: send row: %w", d.ID, err)
	}
	d.connLost(gen)
	d.mu.Lock()
	if d.state == stateDown {
		d.bufferLocked(row)
	}
	d.mu.Unlock()
	return nil
}

// bufferLocked appends to the outage buffer, dropping the oldest rows
// past the bound. Caller holds d.mu.
func (d *Daemon) bufferLocked(row *wire.CSIRow) {
	limit := d.ResendLimit
	if limit <= 0 {
		limit = defaultResendLimit
	}
	if len(d.buf) >= limit {
		drop := len(d.buf) - limit + 1
		d.buf = append(d.buf[:0], d.buf[drop:]...)
		d.dropped += drop
	}
	d.buf = append(d.buf, row)
}

// Connected reports whether the daemon currently holds a live server
// connection.
func (d *Daemon) Connected() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == stateConnected
}

// Stats returns resilience counters: completed reconnects, rows currently
// buffered for redelivery, and rows dropped to the buffer bound.
func (d *Daemon) Stats() (reconnects, buffered, dropped int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reconnects, len(d.buf), d.dropped
}

// Close shuts the daemon down permanently: the connection is closed, any
// reconnect loop stops, and all goroutines are joined. Closing a daemon
// that never connected is a no-op.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.state == stateClosed {
		d.mu.Unlock()
		return nil
	}
	d.state = stateClosed
	close(d.closed)
	var err error
	if d.conn != nil {
		err = d.conn.Close()
		d.conn = nil
	}
	d.mu.Unlock()
	d.wg.Wait()
	return err
}
