package anchor

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestBackoffJitterSeededDeterminism pins the reconnect-jitter fix: waits
// are drawn from a seeded per-daemon stream, so two runs with the same
// seed and anchor ID reproduce identical backoff timing (what lets fault
// drills assert on reconnect behavior), while different anchor-ID salts
// still spread a fleet sharing one seed.
func TestBackoffJitterSeededDeterminism(t *testing.T) {
	b := Backoff{Seed: 42}.withDefaults()
	stream := func(salt uint64) []time.Duration {
		rng := rand.New(rand.NewPCG(b.Seed, salt^0xBAC0FF))
		out := make([]time.Duration, 32)
		base := b.Initial
		for i := range out {
			out[i] = b.jittered(base, rng)
		}
		return out
	}
	s1, s2, s3 := stream(1), stream(1), stream(2)
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("draw %d: same seed+salt diverged (%v vs %v)", i, s1[i], s2[i])
		}
		same = same && s1[i] == s3[i]
	}
	if same {
		t.Error("different anchor-ID salts produced identical jitter streams")
	}
}

// TestBackoffJitterBounds verifies every jittered wait stays within
// ±Jitter of the base delay — spread, not distortion.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Jitter: 0.2, Seed: 1}.withDefaults()
	rng := rand.New(rand.NewPCG(b.Seed, 0xBAC0FF))
	base := 100 * time.Millisecond
	lo := time.Duration(float64(base) * (1 - b.Jitter))
	hi := time.Duration(float64(base) * (1 + b.Jitter))
	varied := false
	first := b.jittered(base, rng)
	for i := 0; i < 256; i++ {
		w := b.jittered(base, rng)
		if w < lo || w > hi {
			t.Fatalf("draw %d: wait %v outside [%v, %v]", i, w, lo, hi)
		}
		varied = varied || w != first
	}
	if !varied {
		t.Error("jitter stream produced a constant wait")
	}
}
