package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrNoSnapshot reports that neither slot holds a usable snapshot: the
// caller must cold-start.
var ErrNoSnapshot = errors.New("durable: no usable snapshot")

// slotNames are the two alternating generation slots. Writes go to the
// slot NOT holding the newest valid generation, so a crash mid-write can
// only ever cost the snapshot being written, never the previous good one.
var slotNames = [2]string{"state-a.blsn", "state-b.blsn"}

// StoreStats counts the store's durability events.
type StoreStats struct {
	// Writes counts successful Save calls; BytesWritten their total size.
	Writes       uint64
	BytesWritten uint64
	// Restores counts successful Load calls.
	Restores uint64
	// Fallbacks counts Loads that served the older slot because the newer
	// one was unusable.
	Fallbacks uint64
	// Corruptions counts slots rejected by validation (bad magic, short
	// read, version skew, checksum mismatch, semantic invariants).
	Corruptions uint64
	// Generation is the newest generation written or restored.
	Generation uint64
}

// SlotNames returns the two slot file names inside a store directory, in
// rotation order. Exposed for fault-injection tooling (faultnet's
// snapshot corrupters) that damages slots on disk to drill the fallback
// path.
func SlotNames() [2]string { return slotNames }

// Store persists snapshots in a directory using dual-slot generation
// rotation. It is safe for concurrent use.
type Store struct {
	dir string

	// writeMu serializes whole Save calls so two writers cannot claim the
	// same generation (and therefore the same slot).
	writeMu sync.Mutex

	mu      sync.Mutex
	lastGen uint64     // newest valid generation seen; guarded by mu
	stats   StoreStats // guarded by mu
}

// Open prepares a snapshot store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	s := &Store{dir: dir}
	// Seed the generation counter from whatever valid slots exist, so a
	// reopened store keeps counting upward instead of re-issuing old
	// generations (which would defeat newest-wins slot selection). The
	// store is not shared yet, but the lock keeps the field contract
	// uniform.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range slotNames {
		if b, err := s.readSlot(name); err == nil {
			if gen, err := Generation(b); err == nil && gen > s.lastGen {
				s.lastGen = gen
			}
		}
	}
	s.stats.Generation = s.lastGen
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a copy of the durability counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Save atomically persists one snapshot as the next generation: encode,
// write to a temporary file, fsync, rename over the older slot, fsync the
// directory. The state's SavedUnixNano is stamped if the caller left it
// zero.
func (s *Store) Save(st *State) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	gen := s.lastGen + 1
	s.mu.Unlock()

	if st.SavedUnixNano == 0 {
		st.SavedUnixNano = time.Now().UnixNano()
	}
	b := EncodeSnapshot(st, gen)

	// The slot to replace is the one NOT holding the newest generation.
	target := slotNames[gen%2]
	tmp, err := os.CreateTemp(s.dir, ".state-*.tmp")
	if err != nil {
		return fmt.Errorf("durable: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, target)); err != nil {
		return fmt.Errorf("durable: publish snapshot: %w", err)
	}
	s.syncDir()

	s.mu.Lock()
	s.lastGen = gen
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(b))
	s.stats.Generation = gen
	s.mu.Unlock()
	return nil
}

// Load returns the newest valid snapshot, falling back to the older slot
// when the newer one fails validation. It returns ErrNoSnapshot when
// neither slot is usable.
func (s *Store) Load() (*State, error) {
	type candidate struct {
		st  *State
		gen uint64
	}
	var cands []candidate
	bad := 0
	for _, name := range slotNames {
		b, err := s.readSlot(name)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				bad++
			}
			continue
		}
		st, gen, err := decode(b)
		if err != nil {
			bad++
			continue
		}
		cands = append(cands, candidate{st: st, gen: gen})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Corruptions += uint64(bad)
	if len(cands) == 0 {
		return nil, ErrNoSnapshot
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.gen > best.gen {
			best = c
		}
	}
	// Serving anything but the globally newest generation — because the
	// newer slot was corrupt, truncated or torn — is a fallback.
	if bad > 0 {
		s.stats.Fallbacks++
	}
	s.stats.Restores++
	if best.gen > s.lastGen {
		s.lastGen = best.gen
		s.stats.Generation = best.gen
	}
	return best.st, nil
}

// readSlot reads one slot file, bounded by MaxSnapshotSize.
func (s *Store) readSlot(name string) ([]byte, error) {
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := io.ReadAll(io.LimitReader(f, MaxSnapshotSize+1))
	if err != nil {
		return nil, err
	}
	if len(b) > MaxSnapshotSize {
		return nil, fmt.Errorf("durable: slot %s exceeds %d bytes", name, MaxSnapshotSize)
	}
	return b, nil
}

// syncDir makes the rename durable. Errors are swallowed: some
// filesystems refuse to fsync directories, and the rename itself already
// happened — the worst case is the pre-rename slot surviving a crash,
// which the generation rotation tolerates by design.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}
