package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire layout (little-endian):
//
//	offset  size  field
//	0       4     magic "BLSN"
//	4       2     format version
//	6       8     generation counter
//	14      4     payload length
//	18      n     payload (see encodePayload)
//	18+n    4     CRC-32C over bytes [0, 18+n)
//
// The CRC covers the header too, so a bit flip anywhere — magic, version,
// generation, length or payload — fails validation. Generation sits in
// the checksummed header because the dual-slot reader trusts it to order
// the slots: a stale or corrupted generation must be detectable.

const (
	headerSize  = 18
	trailerSize = 4
	magicLen    = 4
)

var magic = [magicLen]byte{'B', 'L', 'S', 'N'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. Store.Load distinguishes them only for logging; every
// one of them means "this slot is unusable, fall back".
var (
	ErrBadMagic    = errors.New("durable: bad magic")
	ErrShortRead   = errors.New("durable: snapshot truncated")
	ErrVersionSkew = errors.New("durable: unsupported snapshot version")
	ErrChecksum    = errors.New("durable: checksum mismatch")
)

// EncodeSnapshot serializes st at the current format version under the
// given generation counter.
func EncodeSnapshot(st *State, gen uint64) []byte {
	return encodeVersion(st, gen, CurrentVersion)
}

// encodeVersion serializes at an explicit format version; version 1 drops
// the track section. Tests and the fuzz seed corpus use it to produce
// valid snapshots of every decodable version.
func encodeVersion(st *State, gen uint64, version uint16) []byte {
	return EncodeRecord(magic, version, gen, encodePayload(st, version))
}

func encodePayload(st *State, version uint16) []byte {
	b := make([]byte, 0, 128+17*len(st.Anchors)+175*len(st.Tracks))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.SavedUnixNano))
	b = binary.LittleEndian.AppendUint32(b, st.Round)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(st.Ref)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(st.Holdoff)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(st.Quarantines)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(st.Readmissions)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(st.Reelections)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(st.Anchors)))
	for _, a := range st.Anchors {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.Score))
		b = append(b, a.State)
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(a.Cooldown)))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(a.CleanRounds)))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(st.Calib)))
	for _, rotors := range st.Calib {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rotors)))
		for _, r := range rotors {
			b = appendComplex(b, r)
		}
	}
	if version >= 2 {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(st.Tracks)))
		for _, tr := range st.Tracks {
			b = binary.LittleEndian.AppendUint16(b, tr.Tag)
			if tr.Initialized {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(int32(tr.Misses)))
			b = binary.LittleEndian.AppendUint64(b, uint64(tr.LastFixUnixNano))
			for _, v := range tr.X {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
			}
			for _, v := range tr.P {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
			}
		}
	}
	return b
}

// DecodeSnapshot validates and decodes one snapshot record. Arbitrary
// input returns an error — never a panic, and never an allocation larger
// than the input justifies (every count is checked against the remaining
// bytes before its slice is made).
func DecodeSnapshot(b []byte) (*State, error) {
	st, _, err := decode(b)
	return st, err
}

// Generation extracts the validated generation counter of a snapshot.
func Generation(b []byte) (uint64, error) {
	_, gen, err := decode(b)
	return gen, err
}

// RewriteGeneration returns a copy of a valid snapshot with its
// generation counter replaced and the checksum fixed up. Fault injectors
// use it to plant stale-generation slots; the record stays structurally
// valid, which is exactly what makes staleness a distinct fault from
// corruption.
func RewriteGeneration(b []byte, gen uint64) ([]byte, error) {
	if _, _, err := decode(b); err != nil {
		return nil, err
	}
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(out[6:14], gen)
	sum := crc32.Checksum(out[:len(out)-trailerSize], castagnoli)
	binary.LittleEndian.PutUint32(out[len(out)-trailerSize:], sum)
	return out, nil
}

func decode(b []byte) (*State, uint64, error) {
	payload, version, gen, err := DecodeRecord(magic, CurrentVersion, b)
	if err != nil {
		return nil, 0, err
	}
	st, err := decodePayload(payload, version)
	if err != nil {
		return nil, 0, err
	}
	return st, gen, nil
}

// reader is a bounds-checked little-endian cursor; every take fails
// cleanly on truncated input instead of slicing out of range.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrShortRead
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) i32() int {
	if b := r.take(4); b != nil {
		return int(int32(binary.LittleEndian.Uint32(b)))
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) i64() int64 {
	if b := r.take(8); b != nil {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (r *reader) f64() float64 {
	if b := r.take(8); b != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (r *reader) c128() complex128 {
	re := r.f64()
	im := r.f64()
	return complex(re, im)
}

// count reads a length prefix and rejects it unless max allows it and the
// remaining input holds at least itemSize bytes per promised item — the
// guard that keeps a forged count from driving a huge allocation.
func (r *reader) count(max, itemSize int) int {
	n := int(r.u16())
	if r.err != nil {
		return 0
	}
	if n > max {
		r.err = fmt.Errorf("durable: count %d exceeds limit %d", n, max)
		return 0
	}
	if len(r.b) < n*itemSize {
		r.err = ErrShortRead
		return 0
	}
	return n
}

func decodePayload(b []byte, version uint16) (*State, error) {
	r := &reader{b: b}
	st := &State{
		SavedUnixNano: r.i64(),
		Round:         r.u32(),
		Ref:           r.i32(),
		Holdoff:       r.i32(),
		Quarantines:   r.i32(),
		Readmissions:  r.i32(),
		Reelections:   r.i32(),
	}
	if n := r.count(MaxAnchors, 17); n > 0 {
		st.Anchors = make([]AnchorHealth, n)
		for i := range st.Anchors {
			st.Anchors[i] = AnchorHealth{
				Score:       r.f64(),
				State:       r.u8(),
				Cooldown:    r.i32(),
				CleanRounds: r.i32(),
			}
		}
	}
	if n := r.count(MaxAnchors, 2); n > 0 {
		st.Calib = make([][]complex128, n)
		for i := range st.Calib {
			m := r.count(MaxAntennas, 16)
			rotors := make([]complex128, m)
			for j := range rotors {
				rotors[j] = r.c128()
			}
			st.Calib[i] = rotors
		}
	}
	if version >= 2 {
		if n := r.count(MaxTracks, 175); n > 0 {
			st.Tracks = make([]TagTrack, n)
			for i := range st.Tracks {
				tr := TagTrack{
					Tag:         r.u16(),
					Initialized: r.u8() != 0,
					Misses:      r.i32(),
				}
				tr.LastFixUnixNano = r.i64()
				for k := range tr.X {
					tr.X[k] = r.f64()
				}
				for k := range tr.P {
					tr.P[k] = r.f64()
				}
				st.Tracks[i] = tr
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after payload", len(r.b))
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

func appendComplex(b []byte, z complex128) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(real(z)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(imag(z)))
	return b
}
