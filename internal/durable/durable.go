// Package durable is BLoc's durable state plane: it persists the server
// state that is expensive to rebuild — per-anchor calibration rotors, the
// elected α-correction reference, anchor health/quarantine scores, the
// round high-water mark and per-tag Kalman tracks — so a restarted
// locserver resumes localizing within a couple of rounds instead of
// paying a cold recalibration and track re-lock (DESIGN.md §11).
//
// The on-disk format is a single self-validating record:
//
//	magic "BLSN" | version u16 | generation u64 | payload length u32 |
//	payload … | CRC-32C over everything before it
//
// Persistence is crash-safe by construction: every Save encodes the next
// generation, writes it to a temporary file, fsyncs, renames over one of
// two alternating slot files and fsyncs the directory. The two slots form
// a generation rotation — the writer always overwrites the slot holding
// the older generation, so the newest good snapshot is never the one
// being replaced. A torn write, bit flip, truncation or version skew is
// caught by the magic/length/checksum validation and the reader falls
// back to the other slot; only when both slots are unusable does Load
// report ErrNoSnapshot (a cold start, never a panic).
package durable

import (
	"fmt"
	"math"
)

// CurrentVersion is the snapshot format version Encode writes. Version 1
// (no per-tag track section) remains decodable so a deployment can roll
// the binary forward without discarding its state.
const CurrentVersion = 2

// Decoder caps: a length-prefixed count may promise at most this much
// before the remaining-byte check rejects it, so a hostile snapshot can
// never make the decoder allocate unboundedly.
const (
	// MaxAnchors bounds the per-anchor health and calibration sections.
	MaxAnchors = 1024
	// MaxAntennas bounds one anchor's calibration rotor count.
	MaxAntennas = 1024
	// MaxTracks bounds the per-tag tracker section.
	MaxTracks = 16384
	// MaxSnapshotSize bounds how much of a slot file Load will read.
	MaxSnapshotSize = 16 << 20
)

// AnchorHealth is one anchor's persisted health-plane state, mirroring
// the locserver health tracker: the EWMA score, the quarantine state
// machine position (0 healthy, 1 quarantined, 2 probation), the rounds of
// cooldown left and the consecutive clean probation rounds.
type AnchorHealth struct {
	Score       float64
	State       uint8
	Cooldown    int
	CleanRounds int
}

// TagTrack is one tag's persisted Kalman filter: the [x, y, vx, vy] state
// mean, the row-major 4×4 covariance, the gate-miss count and the wall
// clock of the last fused fix (so a restart can compute the first dt).
type TagTrack struct {
	Tag             uint16
	Initialized     bool
	Misses          int
	LastFixUnixNano int64
	X               [4]float64
	P               [16]float64
}

// External is the snapshot section owned by the process embedding the
// server rather than by the server itself: the array calibration rotors
// (core.Calibration.Rotors) and the per-tag tracker filters. The server
// collects it through CheckpointConfig.Export and hands it back through
// CheckpointConfig.Restore.
type External struct {
	// Calib holds the per-anchor, per-antenna calibration rotors; nil
	// means no calibration was established.
	Calib [][]complex128
	// Tracks holds one entry per tag the embedding process is smoothing.
	Tracks []TagTrack
}

// State is everything one snapshot persists.
type State struct {
	// SavedUnixNano is the wall clock at checkpoint time; restore applies
	// the staleness TTL against it.
	SavedUnixNano int64
	// Round is the highest completed acquisition round.
	Round uint32
	// Ref is the elected α-correction reference anchor.
	Ref int
	// Holdoff is the rounds left before the next soft re-election.
	Holdoff int
	// Quarantines, Readmissions and Reelections continue the health
	// plane's cumulative counters across restarts.
	Quarantines  int
	Readmissions int
	Reelections  int
	// Anchors is the per-anchor health state, index-aligned with the
	// deployment.
	Anchors []AnchorHealth

	External
}

// Clone returns a deep copy of the state, so a caller can serialize it
// outside the lock that guarded the original.
func (st *State) Clone() *State {
	out := *st
	out.Anchors = append([]AnchorHealth(nil), st.Anchors...)
	out.Tracks = append([]TagTrack(nil), st.Tracks...)
	if st.Calib != nil {
		out.Calib = make([][]complex128, len(st.Calib))
		for i, r := range st.Calib {
			out.Calib[i] = append([]complex128(nil), r...)
		}
	}
	return &out
}

// Validate checks the semantic invariants a decoded snapshot must satisfy
// before any of it is allowed near live server state: finite scores,
// in-range state machine positions, a reference that indexes an anchor,
// finite calibration rotors and finite track state.
func (st *State) Validate() error {
	if len(st.Anchors) == 0 {
		return fmt.Errorf("durable: snapshot has no anchors")
	}
	if st.Ref < 0 || st.Ref >= len(st.Anchors) {
		return fmt.Errorf("durable: reference %d outside [0,%d)", st.Ref, len(st.Anchors))
	}
	if st.Holdoff < 0 || st.Quarantines < 0 || st.Readmissions < 0 || st.Reelections < 0 {
		return fmt.Errorf("durable: negative health counter")
	}
	for i, a := range st.Anchors {
		if math.IsNaN(a.Score) || math.IsInf(a.Score, 0) || a.Score < 0 || a.Score > 1 {
			return fmt.Errorf("durable: anchor %d score %v outside [0,1]", i, a.Score)
		}
		if a.State > 2 {
			return fmt.Errorf("durable: anchor %d state %d unknown", i, a.State)
		}
		if a.Cooldown < 0 || a.CleanRounds < 0 {
			return fmt.Errorf("durable: anchor %d negative cooldown or clean-round count", i)
		}
	}
	if st.Calib != nil && len(st.Calib) != len(st.Anchors) {
		return fmt.Errorf("durable: calibration covers %d anchors, health %d", len(st.Calib), len(st.Anchors))
	}
	for i, rotors := range st.Calib {
		if len(rotors) == 0 {
			return fmt.Errorf("durable: anchor %d has no calibration rotors", i)
		}
		for j, r := range rotors {
			if !finiteC(r) {
				return fmt.Errorf("durable: non-finite calibration rotor anchor %d antenna %d", i, j)
			}
		}
	}
	for ti, tr := range st.Tracks {
		if tr.Misses < 0 {
			return fmt.Errorf("durable: track %d negative miss count", ti)
		}
		for _, v := range tr.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("durable: track %d non-finite state", ti)
			}
		}
		for _, v := range tr.P {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("durable: track %d non-finite covariance", ti)
			}
		}
	}
	return nil
}

func finiteC(z complex128) bool {
	re, im := real(z), imag(z)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}
