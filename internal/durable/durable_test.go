package durable

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// sampleState builds a fully populated state with awkward values: scores
// mid-range, a quarantined anchor, calibration rotors off the unit circle
// by rounding, tracker covariance with off-diagonal terms.
func sampleState() *State {
	st := &State{
		SavedUnixNano: 1_722_000_000_123_456_789,
		Round:         4212,
		Ref:           2,
		Holdoff:       3,
		Quarantines:   7,
		Readmissions:  5,
		Reelections:   2,
		Anchors: []AnchorHealth{
			{Score: 1, State: 0},
			{Score: 0.124999999999998, State: 1, Cooldown: 4},
			{Score: 0.875, State: 2, CleanRounds: 2},
			{Score: 0.5000000001, State: 0},
		},
	}
	st.Calib = [][]complex128{
		{1, complex(0.9999999, 0.0012), complex(-0.707106781186, 0.70710678), complex(0, 1)},
		{1, complex(0.5, -0.86602540378), complex(1, 2e-16), complex(-1, 0)},
		{1, 1, 1, 1},
		{1, complex(0.996, -0.087), complex(0.98, 0.17), complex(0.92, -0.38)},
	}
	st.Tracks = []TagTrack{
		{
			Tag: 0, Initialized: true, Misses: 1, LastFixUnixNano: 1_722_000_000_000_000_000,
			X: [4]float64{1.25, -0.75, 0.1, -0.05},
			P: [16]float64{
				0.25, 0.01, 0.002, 0,
				0.01, 0.25, 0, 0.002,
				0.002, 0, 4, 0,
				0, 0.002, 0, 4,
			},
		},
		{Tag: 7, Initialized: false},
	}
	return st
}

// TestRoundTripBitIdentical is the golden guarantee: every field —
// calibration rotors and tracker state included — survives
// encode → decode bit-for-bit.
func TestRoundTripBitIdentical(t *testing.T) {
	st := sampleState()
	b := EncodeSnapshot(st, 17)
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip not bit-identical:\n in %+v\nout %+v", st, got)
	}
	// reflect.DeepEqual on float64 uses ==, which NaN would defeat and
	// -0.0 would alias; check the bit patterns of the calibration rotors
	// and tracker state explicitly.
	for i := range st.Calib {
		for j := range st.Calib[i] {
			a, b := st.Calib[i][j], got.Calib[i][j]
			if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
				math.Float64bits(imag(a)) != math.Float64bits(imag(b)) {
				t.Fatalf("rotor [%d][%d] bits changed: %v -> %v", i, j, a, b)
			}
		}
	}
	for ti := range st.Tracks {
		for k := range st.Tracks[ti].X {
			if math.Float64bits(st.Tracks[ti].X[k]) != math.Float64bits(got.Tracks[ti].X[k]) {
				t.Fatalf("track %d state %d bits changed", ti, k)
			}
		}
		for k := range st.Tracks[ti].P {
			if math.Float64bits(st.Tracks[ti].P[k]) != math.Float64bits(got.Tracks[ti].P[k]) {
				t.Fatalf("track %d covariance %d bits changed", ti, k)
			}
		}
	}
	if gen, err := Generation(b); err != nil || gen != 17 {
		t.Fatalf("generation = %d, %v; want 17", gen, err)
	}
}

// TestDecodeV1 keeps the no-track format readable: a version-1 record
// decodes to the same state minus the track section.
func TestDecodeV1(t *testing.T) {
	st := sampleState()
	b := encodeVersion(st, 3, 1)
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	want := st.Clone()
	want.Tracks = nil
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("v1 round trip:\nwant %+v\n got %+v", want, got)
	}
}

func TestDecodeRejections(t *testing.T) {
	valid := EncodeSnapshot(sampleState(), 9)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrShortRead},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"version zero", func(b []byte) []byte { b[4], b[5] = 0, 0; return b }, ErrVersionSkew},
		{"version future", func(b []byte) []byte { b[4], b[5] = 0xFF, 0x7F; return b }, ErrVersionSkew},
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrShortRead},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-20] }, ErrShortRead},
		{"payload bit flip", func(b []byte) []byte { b[headerSize+12] ^= 0x40; return b }, ErrChecksum},
		{"checksum bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrChecksum},
		{"generation bit flip", func(b []byte) []byte { b[8] ^= 0x10; return b }, ErrChecksum},
		{"extended", func(b []byte) []byte { return append(b, 0xAA) }, ErrShortRead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), valid...))
			if _, err := DecodeSnapshot(b); !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeSemanticRejections covers records that pass the checksum but
// violate state invariants: the decoder must reject them too, because a
// correctly-checksummed snapshot from a buggy writer is just as dangerous
// as a corrupted one.
func TestDecodeSemanticRejections(t *testing.T) {
	bad := []func(*State){
		func(st *State) { st.Ref = 99 },
		func(st *State) { st.Ref = -1 },
		func(st *State) { st.Anchors[1].Score = math.NaN() },
		func(st *State) { st.Anchors[1].Score = 1.5 },
		func(st *State) { st.Anchors[0].State = 9 },
		func(st *State) { st.Anchors[0].Cooldown = -2 },
		func(st *State) { st.Calib[2][1] = complex(math.Inf(1), 0) },
		func(st *State) { st.Calib = st.Calib[:2] },
		func(st *State) { st.Tracks[0].X[3] = math.NaN() },
		func(st *State) { st.Tracks[0].P[5] = math.Inf(-1) },
		func(st *State) { st.Holdoff = -1 },
	}
	for i, mut := range bad {
		st := sampleState()
		mut(st)
		if _, err := DecodeSnapshot(EncodeSnapshot(st, 1)); err == nil {
			t.Errorf("case %d: invalid state decoded without error", i)
		}
	}
}

func TestRewriteGeneration(t *testing.T) {
	b := EncodeSnapshot(sampleState(), 41)
	out, err := RewriteGeneration(b, 12)
	if err != nil {
		t.Fatal(err)
	}
	if gen, err := Generation(out); err != nil || gen != 12 {
		t.Fatalf("rewritten generation = %d, %v; want 12", gen, err)
	}
	if _, err := DecodeSnapshot(out); err != nil {
		t.Fatalf("rewritten record no longer decodes: %v", err)
	}
	if _, err := RewriteGeneration(b[:20], 1); err == nil {
		t.Fatal("RewriteGeneration accepted a truncated record")
	}
}

func TestCloneIsDeep(t *testing.T) {
	st := sampleState()
	cl := st.Clone()
	cl.Anchors[0].Score = 0.1
	cl.Calib[0][1] = 42
	cl.Tracks[0].X[0] = 99
	if st.Anchors[0].Score == 0.1 || st.Calib[0][1] == 42 || st.Tracks[0].X[0] == 99 {
		t.Fatal("Clone shares memory with the original")
	}
}
