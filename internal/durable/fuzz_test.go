package durable

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot drives the decoder with arbitrary bytes: it must
// return an error or a semantically valid state — never panic — and a
// successful decode must re-encode to the identical record (the codec is
// canonical). The seed corpus holds a valid snapshot of every decodable
// format version plus the interesting rejection shapes.
func FuzzDecodeSnapshot(f *testing.F) {
	st := sampleState()
	v2 := EncodeSnapshot(st, 5)
	v1 := encodeVersion(st, 4, 1)
	f.Add(v2)
	f.Add(v1)
	f.Add(EncodeSnapshot(&State{Anchors: []AnchorHealth{{Score: 1}}}, 1))
	f.Add([]byte{})
	f.Add([]byte("BLSN"))
	f.Add(v2[:len(v2)/2])    // torn write
	f.Add(append(v1, v2...)) // concatenated records
	flip := append([]byte(nil), v2...)
	flip[len(flip)/2] ^= 0x80 // payload bit flip
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		st, gen, err := decode(b)
		if err != nil {
			if st != nil {
				t.Fatal("decode returned a state alongside an error")
			}
			return
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("decode accepted an invalid state: %v", err)
		}
		// Canonical: decode(encode(decode(b))) round-trips to the same
		// bytes. The input itself must already be canonical because the
		// encoder emits exactly one representation per state and version.
		version := uint16(b[4]) | uint16(b[5])<<8
		re := encodeVersion(st, gen, version)
		if !bytes.Equal(re, b) {
			t.Fatalf("decoded record is not canonical:\n in %x\nout %x", b, re)
		}
	})
}
