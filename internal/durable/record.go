package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Generic self-validating record framing, shared by every durable
// artifact in the repo (the dual-slot state snapshots here and the
// fingerprint database in internal/fingerprint). The layout is the one
// documented at the top of codec.go, parameterized by magic:
//
//	offset  size  field
//	0       4     magic (per artifact type)
//	4       2     format version
//	6       8     generation counter
//	14      4     payload length
//	18      n     payload
//	18+n    4     CRC-32C over bytes [0, 18+n)
//
// The CRC covers the header, so a bit flip anywhere — magic, version,
// generation, length or payload — fails validation.

// EncodeRecord frames a payload under the given magic, format version
// and generation counter, appending the CRC-32C trailer.
func EncodeRecord(magic [4]byte, version uint16, gen uint64, payload []byte) []byte {
	b := make([]byte, 0, headerSize+len(payload)+trailerSize)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, version)
	b = binary.LittleEndian.AppendUint64(b, gen)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

// DecodeRecord validates one framed record against its expected magic
// and the decoder's maximum supported version, returning the payload
// bytes, the record's version and its generation. Arbitrary input
// returns an error — never a panic: length and checksum are verified
// before the payload is handed back.
func DecodeRecord(magic [4]byte, maxVersion uint16, b []byte) (payload []byte, version uint16, gen uint64, err error) {
	if len(b) < headerSize+trailerSize {
		return nil, 0, 0, ErrShortRead
	}
	if [magicLen]byte(b[:magicLen]) != magic {
		return nil, 0, 0, ErrBadMagic
	}
	version = binary.LittleEndian.Uint16(b[4:6])
	if version == 0 || version > maxVersion {
		return nil, 0, 0, fmt.Errorf("%w: version %d, decoder supports 1..%d", ErrVersionSkew, version, maxVersion)
	}
	gen = binary.LittleEndian.Uint64(b[6:14])
	plen := binary.LittleEndian.Uint32(b[14:headerSize])
	if uint64(plen) != uint64(len(b)-headerSize-trailerSize) {
		return nil, 0, 0, fmt.Errorf("%w: payload length %d in a %d-byte record", ErrShortRead, plen, len(b))
	}
	want := binary.LittleEndian.Uint32(b[len(b)-trailerSize:])
	if crc32.Checksum(b[:len(b)-trailerSize], castagnoli) != want {
		return nil, 0, 0, ErrChecksum
	}
	return b[headerSize : len(b)-trailerSize], version, gen, nil
}

// Reader is the exported face of the bounds-checked payload cursor, for
// sibling packages decoding their own record payloads (the fingerprint
// DB). Every take fails cleanly on truncated input; check Err once at
// the end of a decode.
type Reader struct {
	r reader
}

// NewReader wraps a payload slice.
func NewReader(b []byte) *Reader { return &Reader{r: reader{b: b}} }

// Err returns the first error any read hit (nil while healthy).
func (r *Reader) Err() error { return r.r.err }

// Remaining returns how many unread bytes are left.
func (r *Reader) Remaining() int { return len(r.r.b) }

// U8 reads one byte.
func (r *Reader) U8() uint8 { return r.r.u8() }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 { return r.r.u16() }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 { return r.r.u32() }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return r.r.i64() }

// F64 reads a little-endian IEEE-754 float64.
func (r *Reader) F64() float64 { return r.r.f64() }

// Count reads a uint16 length prefix, rejecting it unless max allows it
// and the remaining input holds at least itemSize bytes per promised
// item — the guard that keeps a forged count from driving a huge
// allocation.
func (r *Reader) Count(max, itemSize int) int { return r.r.count(max, itemSize) }

// AppendF64 appends a little-endian IEEE-754 float64 (the encode-side
// twin of Reader.F64).
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
