package durable

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// validStateForRound builds a snapshot that passes Validate, carrying the
// round so readers can check what they restored came from some writer.
func validStateForRound(round uint32) *State {
	return &State{
		Round:   round,
		Ref:     1,
		Anchors: []AnchorHealth{{Score: 0.9}, {Score: 0.7, State: 1, Cooldown: 2}},
		External: External{
			Calib:  [][]complex128{{complex(1, 0)}, {complex(0, 1)}},
			Tracks: []TagTrack{{Tag: 7, Initialized: true, X: [4]float64{1, 2, 0, 0}}},
		},
	}
}

// TestStoreConcurrentCheckpointDrainRestore drives the store the way a
// supervised cell does under churn: checkpoint writers racing restore
// readers racing cold re-opens of the same directory, then a final
// drain-style checkpoint and a warm restart. Run under -race; every
// restore must be a complete, valid snapshot and generations must only
// move forward.
func TestStoreConcurrentCheckpointDrainRestore(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const writers, savesPerWriter, readers = 3, 25, 3
	const totalWrites = writers * savesPerWriter
	var nextRound atomic.Uint32
	var writersDone atomic.Bool
	var wg, writerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < savesPerWriter; i++ {
				if err := store.Save(validStateForRound(nextRound.Add(1))); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}()
	}

	// Restore readers on the shared handle: each Load must be either
	// ErrNoSnapshot (only before the first write lands) or a snapshot that
	// passes full validation, and the generation counter they observe must
	// never run backward.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			loaded := false
			for !writersDone.Load() {
				st, err := store.Load()
				if err != nil {
					if errors.Is(err, ErrNoSnapshot) && !loaded {
						continue
					}
					t.Errorf("load: %v", err)
					return
				}
				loaded = true
				if verr := st.Validate(); verr != nil {
					t.Errorf("restored snapshot invalid: %v", verr)
					return
				}
				if st.Round == 0 || st.Round > totalWrites {
					t.Errorf("restored round %d outside written range [1,%d]", st.Round, totalWrites)
					return
				}
				if st.SavedUnixNano == 0 {
					t.Error("restored snapshot missing save timestamp")
					return
				}
				if gen := store.Stats().Generation; gen < lastGen {
					t.Errorf("generation ran backward: %d after %d", gen, lastGen)
					return
				} else {
					lastGen = gen
				}
			}
		}()
	}

	// A crash-restart path in parallel: cold-open the same directory and
	// restore from it while checkpoints are still landing. Rename-based
	// slot publication means a fresh handle must never see a torn file.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			reopened, err := Open(dir)
			if err != nil {
				t.Errorf("reopen: %v", err)
				return
			}
			st, err := reopened.Load()
			if errors.Is(err, ErrNoSnapshot) {
				continue
			}
			if err != nil {
				t.Errorf("reopen load: %v", err)
				return
			}
			if verr := st.Validate(); verr != nil {
				t.Errorf("reopen restored invalid snapshot: %v", verr)
				return
			}
			if cs := reopened.Stats(); cs.Corruptions != 0 {
				t.Errorf("reopen saw %d corrupt slots", cs.Corruptions)
				return
			}
		}
	}()

	writerWG.Wait()
	writersDone.Store(true)
	wg.Wait()

	ss := store.Stats()
	if ss.Writes != totalWrites {
		t.Errorf("writes = %d, want %d", ss.Writes, totalWrites)
	}
	if ss.Generation != totalWrites {
		t.Errorf("generation = %d, want %d", ss.Generation, totalWrites)
	}
	if ss.Corruptions != 0 || ss.Fallbacks != 0 {
		t.Errorf("healthy concurrent churn corrupted slots: %+v", ss)
	}
	if ss.Restores == 0 {
		t.Error("no restore was ever served")
	}

	// Drain: one final checkpoint with a sentinel round, then a warm
	// restart from a brand-new handle must restore exactly that state and
	// keep issuing generations above everything already on disk.
	const sentinel = totalWrites + 1000
	if err := store.Save(validStateForRound(sentinel)); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := warm.Load()
	if err != nil {
		t.Fatalf("warm restore: %v", err)
	}
	if st.Round != sentinel {
		t.Errorf("warm restore round = %d, want final checkpoint %d", st.Round, sentinel)
	}
	if got, want := warm.Stats().Generation, uint64(totalWrites+1); got != want {
		t.Errorf("reopened generation seed = %d, want %d", got, want)
	}
	if err := warm.Save(validStateForRound(sentinel + 1)); err != nil {
		t.Fatalf("post-restart checkpoint: %v", err)
	}
	if got, want := warm.Stats().Generation, uint64(totalWrites+2); got != want {
		t.Errorf("post-restart generation = %d, want %d (must not re-issue old generations)", got, want)
	}
}
