package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := sampleState()
	if err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("store round trip:\nwant %+v\n got %+v", st, got)
	}
	stats := s.Stats()
	if stats.Writes != 1 || stats.Restores != 1 || stats.Fallbacks != 0 || stats.Corruptions != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.BytesWritten == 0 || stats.Generation != 1 {
		t.Fatalf("stats = %+v, want bytes > 0 and generation 1", stats)
	}
}

func TestStoreEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Load on empty dir = %v, want ErrNoSnapshot", err)
	}
}

// TestStoreGenerationRotation checks that consecutive saves alternate
// slots and Load always serves the newest generation.
func TestStoreGenerationRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for round := uint32(1); round <= 5; round++ {
		st := sampleState()
		st.Round = round
		if err := s.Save(st); err != nil {
			t.Fatal(err)
		}
		got, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != round {
			t.Fatalf("after save %d: loaded round %d", round, got.Round)
		}
	}
	// Both slot files must exist: the writer alternates.
	for _, name := range slotNames {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("slot %s missing: %v", name, err)
		}
	}
}

// TestStoreReopenContinuesGenerations: a reopened store must keep
// counting generations upward so newest-wins stays correct.
func TestStoreReopenContinuesGenerations(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := sampleState()
	first.Round = 1
	if err := s1.Save(first); err != nil {
		t.Fatal(err)
	}
	second := sampleState()
	second.Round = 2
	if err := s1.Save(second); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	third := sampleState()
	third.Round = 3
	if err := s2.Save(third); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 {
		t.Fatalf("loaded round %d after reopen, want 3", got.Round)
	}
}

// TestStoreFallbackOnCorruption corrupts the newest slot in several ways;
// Load must serve the previous generation and count the fallback.
func TestStoreFallbackOnCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"torn write", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x04; return b }},
		{"truncation to header", func(b []byte) []byte { return b[:12] }},
		{"zero length", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			older := sampleState()
			older.Round = 10
			newer := sampleState()
			newer.Round = 11
			if err := s.Save(older); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(newer); err != nil {
				t.Fatal(err)
			}
			// Generation 2 lives in slot gen%2 = 0.
			path := filepath.Join(dir, slotNames[0])
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := s.Load()
			if err != nil {
				t.Fatalf("Load after corruption: %v", err)
			}
			if got.Round != 10 {
				t.Fatalf("loaded round %d, want fallback to 10", got.Round)
			}
			stats := s.Stats()
			if stats.Fallbacks != 1 || stats.Corruptions == 0 {
				t.Fatalf("stats = %+v, want one fallback and counted corruption", stats)
			}
		})
	}
}

// TestStoreStaleGeneration: a structurally valid slot carrying an older
// generation (a fault injector's stale-generation plant) must lose to the
// newer slot without counting as corruption.
func TestStoreStaleGeneration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	older := sampleState()
	older.Round = 20
	newer := sampleState()
	newer.Round = 21
	if err := s.Save(older); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(newer); err != nil {
		t.Fatal(err)
	}
	// Rewrite the newest slot's generation below the other slot's.
	path := filepath.Join(dir, slotNames[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := RewriteGeneration(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 20 {
		t.Fatalf("loaded round %d, want the non-stale slot's 20", got.Round)
	}
	if stats := s.Stats(); stats.Corruptions != 0 {
		t.Fatalf("stale generation miscounted as corruption: %+v", stats)
	}
}

// TestStoreBothSlotsCorrupt: with every slot bad, Load reports
// ErrNoSnapshot (cold start) and never panics.
func TestStoreBothSlotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	for _, name := range slotNames {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Load = %v, want ErrNoSnapshot", err)
	}
	if stats := s.Stats(); stats.Corruptions != 2 {
		t.Fatalf("stats = %+v, want both corruptions counted", stats)
	}
}
