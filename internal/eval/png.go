package eval

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"bloc/internal/dsp"
)

// PNG rendering for likelihood maps and error heatmaps — the visual form
// of Fig. 6, Fig. 8c and Fig. 13. Uses a perceptually ordered
// dark-to-bright colormap; NaN cells (no data) render as neutral gray.

// RenderGridPNG writes the grid as a PNG, scaled so each grid cell covers
// scale×scale pixels, with values normalized to the grid maximum. The
// vertical axis is flipped so +Y (the room's north) points up.
func RenderGridPNG(w io.Writer, g *dsp.Grid, scale int) error {
	if scale < 1 {
		scale = 1
	}
	gmax := 0.0
	for _, v := range g.Data {
		if !math.IsNaN(v) && v > gmax {
			gmax = v
		}
	}
	if gmax <= 0 {
		gmax = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, g.W*scale, g.H*scale))
	for iy := 0; iy < g.H; iy++ {
		for ix := 0; ix < g.W; ix++ {
			v := g.At(ix, iy)
			var c color.RGBA
			if math.IsNaN(v) {
				c = color.RGBA{R: 120, G: 120, B: 120, A: 255}
			} else {
				c = heat(v / gmax)
			}
			// Flip vertically: row 0 of the image is the top (max Y).
			py := (g.H - 1 - iy) * scale
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.SetRGBA(ix*scale+dx, py+dy, c)
				}
			}
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("eval: encode png: %w", err)
	}
	return nil
}

// heat maps t ∈ [0,1] onto a dark-blue → magenta → yellow ramp (an
// inferno-like ordering: luminance rises monotonically with t).
func heat(t float64) color.RGBA {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Piecewise-linear through five anchor colors.
	stops := [][3]float64{
		{0, 0, 20},      // near black
		{70, 10, 110},   // deep violet
		{180, 40, 100},  // magenta
		{250, 140, 30},  // orange
		{255, 250, 160}, // pale yellow
	}
	pos := t * float64(len(stops)-1)
	i := int(pos)
	if i >= len(stops)-1 {
		i = len(stops) - 2
	}
	f := pos - float64(i)
	lerp := func(a, b float64) uint8 { return uint8(a + (b-a)*f) }
	return color.RGBA{
		R: lerp(stops[i][0], stops[i+1][0]),
		G: lerp(stops[i][1], stops[i+1][1]),
		B: lerp(stops[i][2], stops[i+1][2]),
		A: 255,
	}
}
