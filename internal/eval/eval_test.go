package eval

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"strings"
	"testing"

	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

func TestSamplePositions(t *testing.T) {
	room := testbed.PaperRoom()
	pts := SamplePositions(room, 200, 0.04, 0.25, 1)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	inner := room.Inset(0.25)
	for _, p := range pts {
		if !inner.Contains(p) {
			t.Errorf("point %v outside margin region", p)
		}
	}
	// Spacing should mostly hold (accepting rare fallbacks).
	crowded := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 0.04 {
				crowded++
			}
		}
	}
	if crowded > 5 {
		t.Errorf("%d crowded pairs", crowded)
	}
	// Deterministic.
	again := SamplePositions(room, 200, 0.04, 0.25, 1)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	// Different seeds differ.
	other := SamplePositions(room, 200, 0.04, 0.25, 2)
	if pts[0] == other[0] && pts[1] == other[1] {
		t.Error("different seeds gave identical positions")
	}
}

func TestErrorStats(t *testing.T) {
	st := NewErrorStats([]float64{0.1, 0.2, 0.3, 0.4, 10})
	if st.N != 5 || st.Median != 0.3 || st.Max != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.P90 < 0.4 || st.P90 > 10 {
		t.Errorf("p90 = %v", st.P90)
	}
	if !strings.Contains(st.String(), "median=30cm") {
		t.Errorf("String = %q", st.String())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "333") {
		t.Errorf("table = %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5", len(lines))
	}
}

func newTestSuite(t *testing.T, positions int) *Suite {
	t.Helper()
	s, err := NewSuite(SuiteOptions{Seed: 7, Positions: positions})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAcquireDeterministicAndComplete(t *testing.T) {
	dep, err := testbed.Paper(3)
	if err != nil {
		t.Fatal(err)
	}
	ds1, err := Acquire(dep, AcquireOptions{Positions: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := Acquire(dep, AcquireOptions{Positions: 10, Seed: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds1.Len() != 10 || ds2.Len() != 10 {
		t.Fatal("wrong dataset size")
	}
	for i := range ds1.Snapshots {
		if ds1.Truth[i] != ds2.Truth[i] {
			t.Fatal("ground truth not deterministic")
		}
		if ds1.Snapshots[i].Tag[3][2][1] != ds2.Snapshots[i].Tag[3][2][1] {
			t.Fatal("snapshots depend on worker count")
		}
	}
}

func TestFig9aShape(t *testing.T) {
	s := newTestSuite(t, 24)
	r, err := s.Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	if r.BLoc.N != 24 || r.AoA.N != 24 {
		t.Fatalf("ns = %d/%d", r.BLoc.N, r.AoA.N)
	}
	// The paper's headline shape: BLoc clearly better than AoA.
	t.Logf("BLoc %v | AoA %v", r.BLoc, r.AoA)
	if r.BLoc.Median >= r.AoA.Median {
		t.Errorf("BLoc median %.2f not better than AoA %.2f", r.BLoc.Median, r.AoA.Median)
	}
	if r.BLoc.Median > 1.2 {
		t.Errorf("BLoc median %.2f m too large", r.BLoc.Median)
	}
	if len(r.BLocCDF) != 24 || r.BLocCDF[23].Fraction != 1 {
		t.Error("CDF malformed")
	}
	if !strings.Contains(r.Table().String(), "BLoc") {
		t.Error("table missing scheme")
	}
}

func TestFig12MultipathRejectionHelps(t *testing.T) {
	s := newTestSuite(t, 24)
	r, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BLoc %v | shortest %v", r.BLoc, r.Shortest)
	if r.BLoc.Median > r.Shortest.Median {
		t.Errorf("Eq. 18 selector (%.2f) worse than shortest-distance (%.2f)",
			r.BLoc.Median, r.Shortest.Median)
	}
}

func TestFig10BandwidthTrend(t *testing.T) {
	s := newTestSuite(t, 24)
	r, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	m2 := r.Stats[2].Median
	m80 := r.Stats[80].Median
	t.Logf("2MHz %.2f | 20MHz %.2f | 40MHz %.2f | 80MHz %.2f",
		m2, r.Stats[20].Median, r.Stats[40].Median, m80)
	// The paper's shape: 2 MHz ≈ 2× worse than 80 MHz.
	if m2 <= m80 {
		t.Errorf("2 MHz (%.2f) should be worse than 80 MHz (%.2f)", m2, m80)
	}
	if m2 < 1.3*m80 {
		t.Errorf("bandwidth gain too small: %.2f vs %.2f", m2, m80)
	}
}

func TestFig11SubsamplingRobust(t *testing.T) {
	s := newTestSuite(t, 24)
	r, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	full := r.Stats[r.SubbandCounts[0]].Median
	least := r.Stats[r.SubbandCounts[len(r.SubbandCounts)-1]].Median
	t.Logf("subbands %v → medians %.2f … %.2f", r.SubbandCounts, full, least)
	// §8.6: subsampling over the full span has almost no effect. Allow a
	// generous 60% degradation bound — far below the ~2× hit of actually
	// shrinking bandwidth.
	if least > full*1.6+0.1 {
		t.Errorf("subsampling degraded median %.2f → %.2f; should be nearly flat", full, least)
	}
}

func TestFig9bAnchorSweep(t *testing.T) {
	s := newTestSuite(t, 12)
	r, err := s.Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Counts {
		if r.BLoc[c].N == 0 || r.AoA[c].N == 0 {
			t.Fatalf("missing stats for %d anchors", c)
		}
	}
	t.Logf("BLoc: 2→%.2f 3→%.2f 4→%.2f | AoA: 2→%.2f 3→%.2f 4→%.2f",
		r.BLoc[2].Median, r.BLoc[3].Median, r.BLoc[4].Median,
		r.AoA[2].Median, r.AoA[3].Median, r.AoA[4].Median)
	// 4 anchors should not be dramatically worse than 3 (paper: slight
	// improvement 3→4).
	if r.BLoc[4].Median > r.BLoc[3].Median*1.5+0.1 {
		t.Errorf("4 anchors (%.2f) much worse than 3 (%.2f)", r.BLoc[4].Median, r.BLoc[3].Median)
	}
	// Subset counting: 3 subsets of size 3, each 12 positions → 36 errors.
	if r.BLoc[3].N != 36 {
		t.Errorf("3-anchor pooled N = %d, want 36", r.BLoc[3].N)
	}
}

func TestFig9cAntennaSweep(t *testing.T) {
	s := newTestSuite(t, 12)
	r, err := s.Fig9c()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BLoc: 3→%.2f 4→%.2f", r.BLoc[3].Median, r.BLoc[4].Median)
	// Paper: minimal degradation from 4 to 3 antennas for BLoc.
	if r.BLoc[3].Median > r.BLoc[4].Median*2+0.1 {
		t.Errorf("3 antennas (%.2f) collapsed vs 4 (%.2f)", r.BLoc[3].Median, r.BLoc[4].Median)
	}
}

func TestFig13Heatmap(t *testing.T) {
	s := newTestSuite(t, 30)
	r, err := s.Fig13(1.0)
	if err != nil {
		t.Fatal(err)
	}
	filled := 0
	for _, v := range r.Grid.Data {
		if !math.IsNaN(v) {
			filled++
			if v < 0 {
				t.Fatal("negative RMSE")
			}
		}
	}
	if filled < 10 {
		t.Errorf("only %d cells have samples", filled)
	}
	corner, center := r.CornerVsCenter()
	t.Logf("corner RMSE %.2f, center RMSE %.2f", corner, center)
}

func TestFig8aStability(t *testing.T) {
	s := newTestSuite(t, 4)
	r, err := s.Fig8a(geom.Pt(0.5, 0.5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Phases) != 8 || len(r.Phases[0]) != 4 {
		t.Fatalf("phases shape %dx%d", len(r.Phases), len(r.Phases[0]))
	}
	t.Logf("max spread %.2f°", r.MaxSpreadDeg)
	// Corrected CSI must be stable across repeated measurements even
	// though every acquisition draws fresh LO offsets.
	if r.MaxSpreadDeg > 25 {
		t.Errorf("corrected CSI phase spread %.1f° too large", r.MaxSpreadDeg)
	}
}

func TestFig8bCorrectionLinearity(t *testing.T) {
	r, err := Fig8b(5, geom.Pt(0.8, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("raw R² %.3f, corrected R² %.3f", r.RawR2, r.CorrR2)
	if r.CorrR2 < 0.98 {
		t.Errorf("corrected phase not linear: R² = %.3f", r.CorrR2)
	}
	if r.RawR2 > 0.9 {
		t.Errorf("raw phase unexpectedly linear: R² = %.3f", r.RawR2)
	}
	if len(r.RawDeg) != len(r.Freqs) || len(r.CorrectedDeg) != len(r.Freqs) {
		t.Error("profile lengths mismatch")
	}
}

func TestFig6Maps(t *testing.T) {
	s := newTestSuite(t, 4)
	tag := geom.Pt(0.6, -0.9)
	r, err := s.Fig6(tag)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]interface{ Max() (float64, int, int) }{
		"angle": r.Angle, "distance": r.Distance, "combined": r.Combined,
	} {
		if v, _, _ := g.Max(); v <= 0 {
			t.Errorf("%s map is empty", name)
		}
	}
	if r.Estimate.Dist(tag) > 1.5 {
		t.Errorf("Fig6 estimate %.2f m from tag", r.Estimate.Dist(tag))
	}
}

func TestFig4Waveforms(t *testing.T) {
	r := Fig4(8)
	if len(r.RandomShaped) != len(r.RandomBits)*8 {
		t.Fatal("random waveform length wrong")
	}
	// The discriminator of Fig. 4: the run-length pattern keeps the
	// frequency settled at full deviation for long stretches, while
	// random data keeps moving between the tones (Fig. 4a: "the frequency
	// of the transmission is never static"). Compare settled-time
	// fractions.
	settledFrac := func(w []float64) float64 {
		n := 0
		for _, v := range w {
			if math.Abs(v) > 0.99 {
				n++
			}
		}
		return float64(n) / float64(len(w))
	}
	fRand := settledFrac(r.RandomShaped)
	fSound := settledFrac(r.SoundingShaped)
	if fSound < fRand+0.25 {
		t.Errorf("sounding settled fraction %.2f not clearly above random %.2f", fSound, fRand)
	}
	if fSound < 0.5 {
		t.Errorf("sounding waveform settled only %.2f of the time", fSound)
	}
}

func TestAnchorSubsets(t *testing.T) {
	subs := anchorSubsets(4, 3)
	if len(subs) != 3 {
		t.Fatalf("got %d subsets: %v", len(subs), subs)
	}
	for _, s := range subs {
		if s[0] != 0 || len(s) != 3 {
			t.Errorf("bad subset %v", s)
		}
	}
	if n := len(anchorSubsets(4, 2)); n != 3 {
		t.Errorf("size-2 subsets = %d, want 3", n)
	}
	if n := len(anchorSubsets(4, 4)); n != 1 {
		t.Errorf("size-4 subsets = %d, want 1", n)
	}
}

func TestBandIndicesForBandwidth(t *testing.T) {
	idx := bandIndicesForBandwidth(37, 2)
	if len(idx) != 1 || idx[0] != 18 {
		t.Errorf("2 MHz = %v, want centered single band", idx)
	}
	idx = bandIndicesForBandwidth(37, 80)
	if len(idx) != 37 || idx[0] != 0 || idx[36] != 36 {
		t.Errorf("80 MHz = %v", idx)
	}
	if n := len(bandIndicesForBandwidth(37, 20)); n != 10 {
		t.Errorf("20 MHz = %d bands, want 10", n)
	}
}

func TestRenderGridPNG(t *testing.T) {
	g := dsp.NewGrid(20, 30)
	for i := range g.Data {
		g.Data[i] = float64(i % 17)
	}
	g.Set(3, 3, math.NaN()) // no-data cell
	var buf bytes.Buffer
	if err := RenderGridPNG(&buf, g, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a valid PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 60 || b.Dy() != 90 {
		t.Errorf("image %dx%d, want 60x90", b.Dx(), b.Dy())
	}
	// All-zero grid must not divide by zero.
	var buf2 bytes.Buffer
	if err := RenderGridPNG(&buf2, dsp.NewGrid(4, 4), 0); err != nil {
		t.Fatal(err)
	}
}

func TestHeatRampMonotoneLuminance(t *testing.T) {
	lum := func(c color.RGBA) float64 {
		return 0.2126*float64(c.R) + 0.7152*float64(c.G) + 0.0722*float64(c.B)
	}
	prev := -1.0
	for i := 0; i <= 100; i++ {
		l := lum(heat(float64(i) / 100))
		if l < prev-1 { // allow tiny non-monotonicity from quantization
			t.Fatalf("luminance not monotone at t=%.2f: %v < %v", float64(i)/100, l, prev)
		}
		prev = l
	}
	// Out-of-range inputs clamp.
	if heat(-1) != heat(0) || heat(2) != heat(1) {
		t.Error("heat does not clamp")
	}
}

func TestFigureTablesRender(t *testing.T) {
	// The per-figure Table methods are the printable deliverable of
	// bloc-bench; verify each renders its paper-reference header and one
	// data row.
	r9b := &Fig9bResult{Counts: []int{2}, BLoc: map[int]ErrorStats{2: {Median: 1.19, P90: 3.8}},
		AoA: map[int]ErrorStats{2: {Median: 1.46, P90: 3.9}}}
	if s := r9b.Table().String(); !strings.Contains(s, "anchors") || !strings.Contains(s, "119") {
		t.Errorf("fig9b table: %q", s)
	}
	r9c := &Fig9cResult{Counts: []int{3}, BLoc: map[int]ErrorStats{3: {Median: 0.79}},
		AoA: map[int]ErrorStats{3: {Median: 1.58}}}
	if s := r9c.Table().String(); !strings.Contains(s, "antennas") || !strings.Contains(s, "79") {
		t.Errorf("fig9c table: %q", s)
	}
	r10 := &Fig10Result{BandwidthsMHz: []float64{2}, Stats: map[float64]ErrorStats{2: {Median: 0.94, Stddev: 0.88}}}
	if s := r10.Table().String(); !strings.Contains(s, "bandwidth") || !strings.Contains(s, "94") {
		t.Errorf("fig10 table: %q", s)
	}
	r11 := &Fig11Result{SubbandCounts: []int{37}, Stats: map[int]ErrorStats{37: {Median: 0.72}}}
	if s := r11.Table().String(); !strings.Contains(s, "subbands") || !strings.Contains(s, "72") {
		t.Errorf("fig11 table: %q", s)
	}
	r12 := &Fig12Result{BLoc: ErrorStats{Median: 0.72, P90: 1.95}, Shortest: ErrorStats{Median: 1.46, P90: 2.72}}
	if s := r12.Table().String(); !strings.Contains(s, "shortest") || !strings.Contains(s, "146") {
		t.Errorf("fig12 table: %q", s)
	}
}
