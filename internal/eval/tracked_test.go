package eval

import "testing"

func TestMeasureTracked(t *testing.T) {
	s := perfSuite(t)
	r, err := s.MeasureTracked(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerFix <= 0 || r.FixesPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", r)
	}
	// Settled stationary tags must be served by the gated path: that is
	// the steady-state regime the measurement prices.
	if r.GatedFrac < 0.5 {
		t.Fatalf("gated fraction %.2f, want >= 0.5 for settled stationary tags", r.GatedFrac)
	}
	if r.TileFrac <= 0 || r.TileFrac > 0.75 {
		t.Fatalf("tile fraction %.2f outside (0, 0.75]", r.TileFrac)
	}
}

func TestAblationGatedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario walk is slow")
	}
	ps, err := AblationGated(5, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(ps))
	}
	for _, p := range ps {
		// The gate only decides where to look: its error distribution
		// must stay pinned to the full grid's (2 cm ≈ half a cell of
		// slack for float32 rounding on fallback-free steps).
		if diff := p.Gated.Median - p.Full.Median; diff > 0.02 {
			t.Errorf("%s: gated median %.3f m vs full %.3f m", p.Name, p.Gated.Median, p.Full.Median)
		}
		if p.FallbackRate < 0 || p.FallbackRate > 1 {
			t.Errorf("%s: fallback rate %.2f outside [0,1]", p.Name, p.FallbackRate)
		}
	}
	// The adversarial scenarios must actually exercise the fallback
	// triggers — otherwise the ablation is not testing the gate.
	if ps[3].FallbackRate == 0 {
		t.Errorf("teleport scenario never fell back; the gate is not being exercised")
	}
}
