package eval

import (
	"fmt"
	"math/rand/v2"

	"bloc/internal/ble"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
	"bloc/internal/testbed"
	"bloc/internal/wifi"
)

// Ablations beyond the paper's own figures (DESIGN.md §6): they decompose
// the design choices the paper calls out — the Eq. 18 score terms, its
// weights, the SNR operating range, the hop-increment invariance argument
// of §2.1 and robustness to increasingly obstructed direct paths.

// ---------------------------------------------------------------------------
// Score decomposition: which term of s_x = p_x·e^{bH − aΣd} does the work?

// ScoreVariant names one configuration of the Eq. 18 selector.
type ScoreVariant struct {
	Name   string
	A, B   float64
	UseSD  bool // use the shortest-distance selector instead of the score
	Median float64
	P90    float64
}

// AblationScore evaluates the full score, each term alone, and the naive
// shortest-distance selector on the shared dataset.
func (s *Suite) AblationScore() ([]ScoreVariant, error) {
	base := core.DefaultConfig(s.Dep.Env.Room)
	variants := []ScoreVariant{
		{Name: "full score (a=0.1, b=0.05)", A: base.ScoreA, B: base.ScoreB},
		{Name: "no entropy (b=0)", A: base.ScoreA, B: 0},
		{Name: "no distance (a=0)", A: 0, B: base.ScoreB},
		{Name: "peak value only (a=b=0)", A: 0, B: 0},
		{Name: "shortest distance selector", UseSD: true},
	}
	for vi := range variants {
		v := &variants[vi]
		cfg := base
		if !v.UseSD {
			cfg.ScoreA, cfg.ScoreB = v.A, v.B
		}
		eng, err := core.NewEngine(s.Dep.Anchors, cfg)
		if err != nil {
			return nil, err
		}
		est := EstimatorBLoc
		if v.UseSD {
			est = EstimatorShortestDistance
		}
		errs, err := s.Errors(eng, est, nil)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.Name, err)
		}
		st := NewErrorStats(errs)
		v.Median, v.P90 = st.Median, st.P90
	}
	return variants, nil
}

// ScoreTable renders the decomposition.
func ScoreTable(vs []ScoreVariant) *Table {
	t := &Table{
		Title:   "Ablation — Eq. 18 score decomposition",
		Columns: []string{"selector", "median (cm)", "p90 (cm)"},
	}
	for _, v := range vs {
		t.AddRow(v.Name, Cm(v.Median), Cm(v.P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Baseline panel: every estimator in the repository on the same dataset.

// BaselineResult names one estimator's stats.
type BaselineResult struct {
	Name  string
	Stats ErrorStats
}

// AblationBaselines runs BLoc and all five comparison estimators —
// including the MUSIC super-resolution and soft-voting AoA variants that
// go beyond the paper's single baseline — over the shared dataset.
func (s *Suite) AblationBaselines() ([]BaselineResult, error) {
	panel := []struct {
		name string
		est  Estimator
	}{
		{"BLoc (full pipeline)", EstimatorBLoc},
		{"AoA-combining (paper baseline)", EstimatorAoA},
		{"AoA soft grid voting", EstimatorAoASoft},
		{"MUSIC bearings", EstimatorMUSIC},
		{"shortest-distance selector", EstimatorShortestDistance},
		{"RSSI trilateration", EstimatorRSSI},
	}
	out := make([]BaselineResult, 0, len(panel))
	for _, p := range panel {
		errs, err := s.Errors(s.Eng, p.est, nil)
		if err != nil {
			return nil, fmt.Errorf("baseline %q: %w", p.name, err)
		}
		out = append(out, BaselineResult{Name: p.name, Stats: NewErrorStats(errs)})
	}
	return out, nil
}

// BaselinesTable renders the panel.
func BaselinesTable(rs []BaselineResult) *Table {
	t := &Table{
		Title:   "Ablation — estimator panel (shared dataset)",
		Columns: []string{"estimator", "median (cm)", "p90 (cm)"},
	}
	for _, r := range rs {
		t.AddRow(r.Name, Cm(r.Stats.Median), Cm(r.Stats.P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Quorum degradation: the fault-tolerant acquisition plane completes
// rounds from partial snapshots (anchors silenced, bands lost), so this
// ablation measures what each level of degradation costs in accuracy —
// the table that justifies the server's MinAnchors/MinBands defaults.

// QuorumPoint is one degradation scenario.
type QuorumPoint struct {
	Name    string
	Anchors int // anchors still contributing rows
	Stats   ErrorStats
}

// AblationQuorum evaluates BLoc on the shared dataset under the partial
// snapshots the locserver produces in degraded mode: the last n anchors
// silenced for n in 0..N−2 (the estimator's floor is two anchors), and a
// deterministic fraction of (band, anchor) rows masked — master rows
// included, which invalidates the whole band for everyone, exactly like a
// dropped master report.
func (s *Suite) AblationQuorum() ([]QuorumPoint, error) {
	N := len(s.Dep.Anchors)
	type scenario struct {
		name    string
		anchors int
		prep    func(*csi.Snapshot) (*csi.Snapshot, error)
	}
	scenarios := []scenario{{name: "all anchors, all bands", anchors: N}}
	for n := 1; n <= N-2; n++ {
		n := n
		scenarios = append(scenarios, scenario{
			name:    fmt.Sprintf("%d anchor(s) silenced", n),
			anchors: N - n,
			prep: func(snap *csi.Snapshot) (*csi.Snapshot, error) {
				m := snap.MaskedCopy()
				for k := range m.Bands {
					for i := N - n; i < N; i++ {
						m.MaskMissing(k, i)
					}
				}
				return m, nil
			},
		})
	}
	for _, pct := range []int{5, 15, 30} {
		pct := pct
		scenarios = append(scenarios, scenario{
			name:    fmt.Sprintf("%d%% of rows lost", pct),
			anchors: N,
			prep: func(snap *csi.Snapshot) (*csi.Snapshot, error) {
				m := snap.MaskedCopy()
				for k := range m.Bands {
					for i := 0; i < N; i++ {
						if (k*31+i*17+pct*7)%100 < pct {
							m.MaskMissing(k, i)
						}
					}
				}
				return m, nil
			},
		})
	}
	out := make([]QuorumPoint, 0, len(scenarios))
	for _, sc := range scenarios {
		errs, err := s.Errors(s.Eng, EstimatorBLoc, sc.prep)
		if err != nil {
			return nil, fmt.Errorf("quorum %q: %w", sc.name, err)
		}
		out = append(out, QuorumPoint{Name: sc.name, Anchors: sc.anchors, Stats: NewErrorStats(errs)})
	}
	return out, nil
}

// QuorumTable renders the degradation ladder.
func QuorumTable(ps []QuorumPoint) *Table {
	t := &Table{
		Title:   "Ablation — partial-snapshot degradation (quorum localization)",
		Columns: []string{"scenario", "anchors", "median (cm)", "p90 (cm)"},
	}
	for _, p := range ps {
		t.AddRow(p.Name, fmt.Sprint(p.Anchors), Cm(p.Stats.Median), Cm(p.Stats.P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Weight sensitivity around the paper's a = 0.1, b = 0.05.

// WeightPoint is one (a, b) evaluation.
type WeightPoint struct {
	A, B   float64
	Median float64
}

// AblationWeights sweeps the score weights on the shared dataset.
func (s *Suite) AblationWeights(as, bs []float64) ([]WeightPoint, error) {
	base := core.DefaultConfig(s.Dep.Env.Room)
	var out []WeightPoint
	for _, a := range as {
		for _, b := range bs {
			cfg := base
			cfg.ScoreA, cfg.ScoreB = a, b
			eng, err := core.NewEngine(s.Dep.Anchors, cfg)
			if err != nil {
				return nil, err
			}
			errs, err := s.Errors(eng, EstimatorBLoc, nil)
			if err != nil {
				return nil, fmt.Errorf("weights a=%v b=%v: %w", a, b, err)
			}
			out = append(out, WeightPoint{A: a, B: b, Median: NewErrorStats(errs).Median})
		}
	}
	return out, nil
}

// WeightsTable renders the sweep.
func WeightsTable(ps []WeightPoint) *Table {
	t := &Table{
		Title:   "Ablation — score weight sensitivity (paper uses a=0.1, b=0.05)",
		Columns: []string{"a", "b", "median (cm)"},
	}
	for _, p := range ps {
		t.AddRow(fmt.Sprintf("%.2f", p.A), fmt.Sprintf("%.2f", p.B), Cm(p.Median))
	}
	return t
}

// ---------------------------------------------------------------------------
// SNR sweep: the corrected channel multiplies three noisy estimates.

// SNRPoint is one SNR evaluation.
type SNRPoint struct {
	SNRdB float64
	BLoc  ErrorStats
	AoA   ErrorStats
}

// AblationSNR re-acquires a dataset per SNR level and evaluates both
// schemes (this cannot reuse the shared dataset: noise is baked in at
// acquisition).
func AblationSNR(seed uint64, positions int, snrs []float64) ([]SNRPoint, error) {
	out := make([]SNRPoint, 0, len(snrs))
	for _, snr := range snrs {
		cfg := testbed.PaperConfig(seed)
		cfg.SNRdB = snr
		dep, err := testbed.New(testbed.PaperEnvironment(seed), cfg)
		if err != nil {
			return nil, err
		}
		s, err := NewSuite(SuiteOptions{Seed: seed, Positions: positions, Deployment: dep})
		if err != nil {
			return nil, err
		}
		r, err := s.Fig9a()
		if err != nil {
			return nil, fmt.Errorf("snr %v: %w", snr, err)
		}
		out = append(out, SNRPoint{SNRdB: snr, BLoc: r.BLoc, AoA: r.AoA})
	}
	return out, nil
}

// SNRTable renders the sweep.
func SNRTable(ps []SNRPoint) *Table {
	t := &Table{
		Title:   "Ablation — CSI SNR sweep (referenced at 3 m)",
		Columns: []string{"SNR (dB)", "BLoc median (cm)", "AoA median (cm)"},
	}
	for _, p := range ps {
		t.AddRow(fmt.Sprintf("%.0f", p.SNRdB), Cm(p.BLoc.Median), Cm(p.AoA.Median))
	}
	return t
}

// ---------------------------------------------------------------------------
// Hop-increment invariance (§2.1): since 37 is prime, every f_hop visits
// all bands, so localization must not depend on the hop increment — only
// the order of measurement changes.

// AblationHopInvariance measures one tag with the band list permuted by
// several hop increments and returns the spread of the resulting
// estimates (meters). The snapshots differ (fresh LO draws per
// acquisition), so a small spread — comparable to repeated measurements
// with the same order — is the pass criterion; the caller compares
// against the baseline spread it returns.
func AblationHopInvariance(seed uint64, tag geom.Point, hops []int) (permuted, repeated []geom.Point, err error) {
	mkDep := func(order []ble.ChannelIndex) (*testbed.Deployment, error) {
		dep, err := testbed.Paper(seed)
		if err != nil {
			return nil, err
		}
		if order != nil {
			dep.Bands = order
		}
		return dep, nil
	}
	locate := func(dep *testbed.Deployment, salt uint64) (geom.Point, error) {
		eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
		if err != nil {
			return geom.Point{}, err
		}
		res, err := eng.Locate(dep.Fork(salt).Sounding(tag))
		if err != nil {
			return geom.Point{}, err
		}
		return res.Estimate, nil
	}
	for _, hop := range hops {
		seq, err := ble.NewHopSequence(0, hop)
		if err != nil {
			return nil, nil, err
		}
		dep, err := mkDep(seq.Cycle(ble.NumDataChannels))
		if err != nil {
			return nil, nil, err
		}
		p, err := locate(dep, uint64(hop))
		if err != nil {
			return nil, nil, err
		}
		permuted = append(permuted, p)
	}
	// Baseline: same band order, repeated acquisitions.
	dep, err := mkDep(nil)
	if err != nil {
		return nil, nil, err
	}
	for i := range hops {
		p, err := locate(dep, uint64(100+i))
		if err != nil {
			return nil, nil, err
		}
		repeated = append(repeated, p)
	}
	return permuted, repeated, nil
}

// Spread returns the maximum pairwise distance within a point set.
func Spread(pts []geom.Point) float64 {
	var worst float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// NLOS sweep: progressively obstruct the direct paths.

// NLOSPoint is one obstruction evaluation.
type NLOSPoint struct {
	Attenuation float64 // amplitude factor of the added clutter
	BLoc        ErrorStats
	AoA         ErrorStats
}

// AblationNLOS adds a large cross of desk-height clutter through the room
// center with varying attenuation and evaluates both schemes.
func AblationNLOS(seed uint64, positions int, attens []float64) ([]NLOSPoint, error) {
	out := make([]NLOSPoint, 0, len(attens))
	for _, att := range attens {
		env := testbed.PaperEnvironment(seed)
		if att < 1 {
			for _, seg := range []geom.Segment{
				geom.Seg(geom.Pt(-1.8, -1.5), geom.Pt(1.8, 1.5)),
				geom.Seg(geom.Pt(-1.8, 1.5), geom.Pt(1.8, -1.5)),
			} {
				if err := env.AddObstacle(rfsim.Obstacle{
					Wall: seg, Attenuation: att, TagHeightOnly: true,
				}); err != nil {
					return nil, err
				}
			}
		}
		dep, err := testbed.New(env, testbed.PaperConfig(seed))
		if err != nil {
			return nil, err
		}
		s, err := NewSuite(SuiteOptions{Seed: seed, Positions: positions, Deployment: dep})
		if err != nil {
			return nil, err
		}
		r, err := s.Fig9a()
		if err != nil {
			return nil, fmt.Errorf("nlos %v: %w", att, err)
		}
		out = append(out, NLOSPoint{Attenuation: att, BLoc: r.BLoc, AoA: r.AoA})
	}
	return out, nil
}

// NLOSTable renders the sweep.
func NLOSTable(ps []NLOSPoint) *Table {
	t := &Table{
		Title:   "Ablation — added NLOS clutter (amplitude attenuation of extra central obstacles)",
		Columns: []string{"attenuation", "BLoc median (cm)", "AoA median (cm)"},
	}
	for _, p := range ps {
		label := fmt.Sprintf("%.2f", p.Attenuation)
		if p.Attenuation >= 1 {
			label = "none"
		}
		t.AddRow(label, Cm(p.BLoc.Median), Cm(p.AoA.Median))
	}
	return t
}

// ---------------------------------------------------------------------------
// Wi-Fi interference and adaptive frequency hopping — the mechanism
// behind §8.6's blacklisting story.

// InterferencePoint is one coexistence scenario.
type InterferencePoint struct {
	Name     string
	Channels int // BLE channels used for localization
	BLoc     ErrorStats
}

// AblationInterference evaluates three coexistence scenarios: a quiet
// band, a 20 MHz Wi-Fi interferer with BLE ignoring it, and the same
// interferer with the channel map adapted by energy detection (AFH).
func AblationInterference(seed uint64, positions int, wifiChannel int, sigma float64) ([]InterferencePoint, error) {
	wifi, err := testbed.WiFiChannel(wifiChannel, sigma)
	if err != nil {
		return nil, err
	}
	type scenario struct {
		name string
		prep func(*testbed.Deployment)
	}
	scenarios := []scenario{
		{"quiet band", func(d *testbed.Deployment) {}},
		{"Wi-Fi, no AFH", func(d *testbed.Deployment) {
			d.Interferers = []testbed.Interferer{wifi}
		}},
		{"Wi-Fi + AFH blacklist", func(d *testbed.Deployment) {
			d.Interferers = []testbed.Interferer{wifi}
			d.Bands = d.DetectInterference(8, 3)
		}},
	}
	out := make([]InterferencePoint, 0, len(scenarios))
	for _, sc := range scenarios {
		dep, err := testbed.Paper(seed)
		if err != nil {
			return nil, err
		}
		sc.prep(dep)
		s, err := NewSuite(SuiteOptions{Seed: seed, Positions: positions, Deployment: dep})
		if err != nil {
			return nil, err
		}
		errs, err := s.Errors(s.Eng, EstimatorBLoc, nil)
		if err != nil {
			return nil, fmt.Errorf("interference %q: %w", sc.name, err)
		}
		out = append(out, InterferencePoint{
			Name:     sc.name,
			Channels: len(dep.Bands),
			BLoc:     NewErrorStats(errs),
		})
	}
	return out, nil
}

// InterferenceTable renders the coexistence comparison.
func InterferenceTable(ps []InterferencePoint) *Table {
	t := &Table{
		Title:   "Ablation — Wi-Fi coexistence: adaptive frequency hopping (§8.6 mechanism)",
		Columns: []string{"scenario", "channels", "BLoc median (cm)", "p90 (cm)"},
	}
	for _, p := range ps {
		t.AddRow(p.Name, fmt.Sprint(p.Channels), Cm(p.BLoc.Median), Cm(p.BLoc.P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Tag motion during acquisition: the paper's evaluation is static; a full
// hop cycle takes ≈280 ms, so motion smears the cross-band geometry.

// MotionPoint is one speed evaluation.
type MotionPoint struct {
	SpeedMS float64
	BLoc    ErrorStats
}

// cycleSeconds is the duration of one 37-band acquisition at the fastest
// connection interval (7.5 ms per event).
const cycleSeconds = 37 * 0.0075

// AblationMotion localizes tags walking in straight lines at several
// speeds, measuring error against the tag's mid-acquisition position (the
// fairest single ground truth for a smeared measurement).
func AblationMotion(seed uint64, positions int, speeds []float64) ([]MotionPoint, error) {
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	room := dep.Env.Room.Inset(0.6)
	starts := SamplePositions(room, positions, 0.04, 0, seed^0x40710)
	out := make([]MotionPoint, 0, len(speeds))
	K := len(dep.Bands)
	for _, speed := range speeds {
		errs := make([]float64, 0, len(starts))
		for pi, start := range starts {
			// Heading varies deterministically per position.
			dir := geom.Vec(1, 0).Rotate(float64(pi) * 2.39996)
			step := speed * cycleSeconds / float64(K)
			d := dep.Fork(uint64(pi) + uint64(speed*1000)<<20)
			snap := d.SoundingMoving(func(band int) geom.Point {
				return dep.Env.Room.Clamp(start.Add(dir.Scale(float64(band) * step)))
			})
			res, err := eng.Locate(snap)
			if err != nil {
				return nil, fmt.Errorf("motion %v position %d: %w", speed, pi, err)
			}
			mid := dep.Env.Room.Clamp(start.Add(dir.Scale(float64(K) / 2 * step)))
			errs = append(errs, res.Estimate.Dist(mid))
		}
		out = append(out, MotionPoint{SpeedMS: speed, BLoc: NewErrorStats(errs)})
	}
	return out, nil
}

// MotionTable renders the sweep.
func MotionTable(ps []MotionPoint) *Table {
	t := &Table{
		Title:   "Ablation — tag motion during the 280 ms hop cycle",
		Columns: []string{"speed (m/s)", "BLoc median (cm)", "p90 (cm)"},
	}
	for _, p := range ps {
		t.AddRow(fmt.Sprintf("%.1f", p.SpeedMS), Cm(p.BLoc.Median), Cm(p.BLoc.P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Bluetooth 5.1 CTE direction finding vs BLoc — a comparison the paper
// could not run (CTE was standardized after publication): does a clean,
// standardized angle measurement close the gap?

// CTEResult compares the two systems on the same positions.
type CTEResult struct {
	CTE  ErrorStats
	BLoc ErrorStats
}

// AblationCTE localizes the dataset positions with both systems. CTE uses
// a 160 µs tone on channel 18 with light sample noise; BLoc uses its full
// 37-band acquisition.
func AblationCTE(seed uint64, positions int) (*CTEResult, error) {
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	pts := SamplePositions(dep.Env.Room, positions, 0.04, 0.25, seed^0xC7E)
	cteErrs := make([]float64, 0, len(pts))
	blocErrs := make([]float64, 0, len(pts))
	for pi, p := range pts {
		d := dep.Fork(uint64(pi))
		per, err := d.CTESounding(p, 18, 1e-4)
		if err != nil {
			return nil, err
		}
		rc, err := eng.LocateCTE(2.44e9, per)
		if err != nil {
			return nil, err
		}
		rb, err := eng.Locate(d.Sounding(p))
		if err != nil {
			return nil, err
		}
		cteErrs = append(cteErrs, rc.Estimate.Dist(p))
		blocErrs = append(blocErrs, rb.Estimate.Dist(p))
	}
	return &CTEResult{CTE: NewErrorStats(cteErrs), BLoc: NewErrorStats(blocErrs)}, nil
}

// CTETable renders the comparison.
func CTETable(r *CTEResult) *Table {
	t := &Table{
		Title:   "Ablation — Bluetooth 5.1 CTE direction finding vs BLoc",
		Columns: []string{"system", "median (cm)", "p90 (cm)"},
	}
	t.AddRow("CTE AoA (BLE 5.1)", Cm(r.CTE.Median), Cm(r.CTE.P90))
	t.AddRow("BLoc", Cm(r.BLoc.Median), Cm(r.BLoc.P90))
	return t
}

// ---------------------------------------------------------------------------
// Wi-Fi CSI (SpotFi-class) vs BLE BLoc — the benchmark the paper aims at:
// "Wi-Fi localization has moved towards CSI… around 1 m median error"
// (§1). Both systems run in the same room against the same propagation.

// WiFiResult compares Wi-Fi least-ToF AoA, BLE BLoc and BLE AoA.
type WiFiResult struct {
	WiFi   ErrorStats
	BLoc   ErrorStats
	BLEAoA ErrorStats
}

// AblationWiFi localizes the same positions with a 4-AP Wi-Fi SpotFi
// deployment (20 MHz CSI, least-ToF direct-path selection) and the BLE
// deployment (BLoc and the AoA baseline), all sharing the room geometry.
func AblationWiFi(seed uint64, positions int) (*WiFiResult, error) {
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	wfi, err := wifi.NewLocalizer(dep.Anchors, dep.Env.Room, 2.44e9)
	if err != nil {
		return nil, err
	}
	pts := SamplePositions(dep.Env.Room, positions, 0.04, 0.25, seed^0x3F1)
	rng := rand.New(rand.NewPCG(seed, 0x3F1))
	var wifiErrs, blocErrs, aoaErrs []float64
	for pi, p := range pts {
		ms, err := wifi.Measure(dep.Env, dep.Anchors, p, 2.44e9, 1e-3, rng)
		if err != nil {
			return nil, err
		}
		wp, err := wfi.Locate(ms)
		if err != nil {
			return nil, err
		}
		d := dep.Fork(uint64(pi))
		snap := d.Sounding(p)
		rb, err := eng.Locate(snap)
		if err != nil {
			return nil, err
		}
		ra, err := eng.LocateAoA(snap)
		if err != nil {
			return nil, err
		}
		wifiErrs = append(wifiErrs, wp.Dist(p))
		blocErrs = append(blocErrs, rb.Estimate.Dist(p))
		aoaErrs = append(aoaErrs, ra.Estimate.Dist(p))
	}
	return &WiFiResult{
		WiFi:   NewErrorStats(wifiErrs),
		BLoc:   NewErrorStats(blocErrs),
		BLEAoA: NewErrorStats(aoaErrs),
	}, nil
}

// ---------------------------------------------------------------------------
// Reference failover: the locserver re-elects the α-correction reference
// away from a degraded master (DESIGN.md §10), so this ablation prices the
// mechanism. The relaxed Eq. 10 cancels every LO term for any reference
// index, so clean-data accuracy must be reference-independent; the
// interesting rows are the fault scenarios — the original master dead
// (localize re-referenced from the survivors), a corrupt anchor
// quarantined (its rows masked, the clean-round case of the fault drill,
// which must stay within ~10% of the no-fault baseline), and the RSSI
// coarse fallback used when the CSI quorum is unmet.

// FailoverPoint is one reference/fault scenario.
type FailoverPoint struct {
	Name  string
	Stats ErrorStats
}

// AblationFailover evaluates the failover plane's operating points on the
// shared dataset.
func (s *Suite) AblationFailover() ([]FailoverPoint, error) {
	N := len(s.Dep.Anchors)
	refEst := func(ref int) Estimator {
		return func(eng *core.Engine, snap *csi.Snapshot) (*core.Result, error) {
			return eng.LocateRef(snap, ref)
		}
	}
	maskAnchor := func(i int) func(*csi.Snapshot) (*csi.Snapshot, error) {
		return func(snap *csi.Snapshot) (*csi.Snapshot, error) {
			m := snap.MaskedCopy()
			for k := range m.Bands {
				m.MaskMissing(k, i)
			}
			return m, nil
		}
	}
	type scenario struct {
		name string
		est  Estimator
		prep func(*csi.Snapshot) (*csi.Snapshot, error)
	}
	scenarios := []scenario{{name: "reference 0 (paper master), no faults", est: EstimatorBLoc}}
	for r := 1; r < N; r++ {
		scenarios = append(scenarios, scenario{
			name: fmt.Sprintf("reference %d, no faults", r),
			est:  refEst(r),
		})
	}
	scenarios = append(scenarios,
		scenario{
			name: fmt.Sprintf("anchor %d quarantined (clean rounds of the fault drill)", N-1),
			est:  EstimatorBLoc, prep: maskAnchor(N - 1),
		},
		scenario{
			name: "master dead, re-referenced to anchor 1",
			est:  refEst(1), prep: maskAnchor(0),
		},
		scenario{
			name: "master dead, RSSI coarse fallback",
			est:  EstimatorRSSI, prep: maskAnchor(0),
		},
	)
	out := make([]FailoverPoint, 0, len(scenarios))
	for _, sc := range scenarios {
		errs, err := s.Errors(s.Eng, sc.est, sc.prep)
		if err != nil {
			return nil, fmt.Errorf("failover %q: %w", sc.name, err)
		}
		out = append(out, FailoverPoint{Name: sc.name, Stats: NewErrorStats(errs)})
	}
	return out, nil
}

// FailoverTable renders the failover operating points.
func FailoverTable(ps []FailoverPoint) *Table {
	t := &Table{
		Title:   "Ablation — reference failover and quarantine (data-quality plane)",
		Columns: []string{"scenario", "median (cm)", "p90 (cm)"},
	}
	for _, p := range ps {
		t.AddRow(p.Name, Cm(p.Stats.Median), Cm(p.Stats.P90))
	}
	return t
}

// WiFiTable renders the comparison.
func WiFiTable(r *WiFiResult) *Table {
	t := &Table{
		Title:   "Ablation — Wi-Fi CSI (SpotFi-class) vs BLE in the same room",
		Columns: []string{"system", "median (cm)", "p90 (cm)"},
	}
	t.AddRow("Wi-Fi 20 MHz least-ToF AoA", Cm(r.WiFi.Median), Cm(r.WiFi.P90))
	t.AddRow("BLE BLoc", Cm(r.BLoc.Median), Cm(r.BLoc.P90))
	t.AddRow("BLE AoA baseline", Cm(r.BLEAoA.Median), Cm(r.BLEAoA.P90))
	return t
}
