package eval

import "testing"

func perfSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(SuiteOptions{Seed: 11, Positions: 6})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMeasureFixes(t *testing.T) {
	s := perfSuite(t)
	r, err := s.MeasureFixes(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerFix <= 0 || r.FixesPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", r)
	}
	if r.AllocsPerFix > 64 {
		t.Fatalf("fix path allocates too much: %.1f allocs/fix", r.AllocsPerFix)
	}
}

// TestSuiteKernelParity is the eval-level golden check: the optimized
// likelihood must agree with the reference kernel within 1e-9 on the
// suite's own dataset, so every figure the suite produces is unchanged.
func TestSuiteKernelParity(t *testing.T) {
	s := perfSuite(t)
	worst, err := s.MaxKernelDivergence(4)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Fatalf("optimized kernel diverges from reference by %g (limit 1e-9)", worst)
	}
}
