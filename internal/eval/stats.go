// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§8) on the simulated testbed —
// position sampling, dataset acquisition, parameter sweeps, error
// statistics and printable result tables.
package eval

import (
	"fmt"
	"strings"

	"bloc/internal/dsp"
)

// ErrorStats summarizes a set of localization errors (meters).
type ErrorStats struct {
	N      int
	Median float64
	P90    float64
	Mean   float64
	Stddev float64
	Max    float64
}

// NewErrorStats computes summary statistics. It panics on an empty slice.
func NewErrorStats(errors []float64) ErrorStats {
	max := 0.0
	for _, e := range errors {
		if e > max {
			max = e
		}
	}
	return ErrorStats{
		N:      len(errors),
		Median: dsp.Median(errors),
		P90:    dsp.Percentile(errors, 90),
		Mean:   dsp.Mean(errors),
		Stddev: dsp.Stddev(errors),
		Max:    max,
	}
}

// String renders the stats in the paper's preferred units (cm for medians).
func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d median=%.0fcm p90=%.0fcm mean=%.0fcm",
		s.N, s.Median*100, s.P90*100, s.Mean*100)
}

// CDF returns the empirical CDF of the error set for plotting (Fig. 9/12).
func CDF(errors []float64) []dsp.CDFPoint { return dsp.EmpiricalCDF(errors) }

// Table is a simple printable result table (one per figure).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cm formats meters as a centimeter cell.
func Cm(m float64) string { return fmt.Sprintf("%.0f", m*100) }
