package eval

import (
	"strings"
	"testing"
)

func TestAblationRestart(t *testing.T) {
	r, err := AblationRestart(7, 20, 35)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cal rounds %d, accurate ≤ %.2f m", r.CalRounds, r.ThresholdM)
	t.Logf("warm: first %.2f m, settled %.2f m, %.1f rounds, %.0f%% at round 1",
		r.Warm.FirstFix.Median, r.Warm.Settled.Median, r.Warm.MeanRounds, r.Warm.FirstRoundPct)
	t.Logf("cold: first %.2f m, settled %.2f m, %.1f rounds, %.0f%% at round 1",
		r.Cold.FirstFix.Median, r.Cold.Settled.Median, r.Cold.MeanRounds, r.Cold.FirstRoundPct)
	if r.CalRounds < 1 {
		t.Errorf("CalRounds = %d, want >= 1", r.CalRounds)
	}
	if r.ThresholdM <= 0 {
		t.Errorf("degenerate accuracy threshold %.3f", r.ThresholdM)
	}
	// The tentpole's acceptance bar: a warm restart localizes accurately
	// within two rounds.
	if r.Warm.MeanRounds > 2 {
		t.Errorf("warm restart took %.1f mean rounds, want <= 2", r.Warm.MeanRounds)
	}
	// The cold restart's first fixes are uncalibrated and must be visibly
	// worse than the warm restart's, while both settle to the same
	// calibrated accuracy.
	if r.Warm.FirstFix.Median >= r.Cold.FirstFix.Median {
		t.Errorf("warm first fix %.2f m not better than cold %.2f m",
			r.Warm.FirstFix.Median, r.Cold.FirstFix.Median)
	}
	if r.Cold.Settled.Median > r.Warm.Settled.Median*1.5+0.02 {
		t.Errorf("cold never converged to warm accuracy: %.2f vs %.2f m",
			r.Cold.Settled.Median, r.Warm.Settled.Median)
	}
	if r.Warm.FirstRoundPct <= r.Cold.FirstRoundPct {
		t.Errorf("warm round-1 accuracy %.0f%% not above cold %.0f%%",
			r.Warm.FirstRoundPct, r.Cold.FirstRoundPct)
	}
	tbl := RestartTable(r).String()
	if !strings.Contains(tbl, "warm (snapshot restore)") || !strings.Contains(tbl, "cold (recalibrate)") {
		t.Error("table missing modes")
	}
}
