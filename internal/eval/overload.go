package eval

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
)

// ---------------------------------------------------------------------------
// Overload drill: the serving plane (DESIGN.md §12) exists so a burst of
// offered load with slow anchors in the fleet degrades *by policy* —
// admission control sheds untracked tags, tracked tags demote to the
// coarse fix, stragglers drop out of quorum waits — instead of by luck.
// This ablation runs the whole pipeline end to end (real server, real
// anchor daemons, a seeded delay injector on two of them, a 10× tag
// burst) and prices the episode: what was shed, what was degraded, how
// bounded the queue stayed, and how fast tracked-tag accuracy returns to
// the pre-burst baseline once the storm passes.

// OverloadPhase is one phase's tracked-tag accuracy.
type OverloadPhase struct {
	Rounds int        // acquisition rounds measured
	Fixes  int        // tracked-tag fixes delivered
	Err    ErrorStats // tracked-tag localization error
}

// OverloadResult is the measured overload episode.
type OverloadResult struct {
	QueueCap  int // fix-queue bound the server ran with
	BurstTags int // tags offered per round inside the burst window

	Baseline OverloadPhase // pre-burst, punctual fleet
	Recovery OverloadPhase // post-burst, after the planes cleared

	// RecoveryRounds is how many rounds after the burst window the fleet
	// needed before every plane was clear again (no laggy anchors, all
	// quarantined anchors readmitted, serve mode back to normal).
	RecoveryRounds int

	// Reference is the anchor elected as α-correction reference after the
	// episode; a burst can legitimately move it (e.g. the master turned
	// slow), and single-position error is reference-dependent.
	Reference int
	// CleanErr is the oracle: the identical clean pipeline localizing the
	// same recovery rounds under the recovered reference. Recovery parity
	// is Recovery.Err vs CleanErr, which stays meaningful across a
	// re-election; when the reference never moved it restates Baseline.
	CleanErr ErrorStats

	Mid   locserver.Stats // counters right after the burst window
	Final locserver.Stats // counters at the end of the drill
}

// AblationOverload reproduces the acceptance drill as a reportable
// experiment: four anchors on the paper geometry, the last two dialing
// through a seeded delay injector, two tracked tags at steady state and
// a 10× tag burst landing while the stragglers are slow.
func AblationOverload(seed uint64) (*OverloadResult, error) {
	const (
		deadline = 300 * time.Millisecond
		queueCap = 8
	)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	srv, err := locserver.New("127.0.0.1:0", locserver.Config{
		Anchors:          len(dep.Anchors),
		Antennas:         dep.Anchors[0].N,
		Bands:            dep.Bands,
		RoundDeadline:    deadline,
		MinAnchors:       2,
		AdaptiveDeadline: true,
		FixWorkers:       1,
		FixQueueDepth:    queueCap,
		FixBudget:        10 * time.Second,
		Overload:         locserver.OverloadConfig{TrackedTTL: 5 * time.Minute},
		Health:           locserver.HealthConfig{LatAlpha: 0.5, Seed: seed},
		Logger:           quiet,
		OnSnapshot: func(info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			if info.Coarse {
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return res.Estimate, nil
			}
			// Stand-in for the full grid search's CPU cost so overload
			// pressure does not depend on the host machine's speed.
			//lint:ignore clockcheck the drill simulates solver latency in real time on purpose
			time.Sleep(8 * time.Millisecond)
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Daemons; the last two dial through a toggleable delay injector.
	var delayMu sync.Mutex
	delays := map[int]*faultnet.DelayConn{}
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			return nil, err
		}
		d, err := anchor.New(i, depI, quiet)
		if err != nil {
			return nil, err
		}
		if i >= len(daemons)-2 {
			id := i
			d.Dial = func(addr string) (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				dc := faultnet.WrapDelayConn(c, faultnet.DelayConfig{
					Seed: seed, Base: 500 * time.Microsecond,
				}, uint64(id))
				dc.SetSlow(false)
				delayMu.Lock()
				delays[id] = dc
				delayMu.Unlock()
				return dc, nil
			}
		}
		if err := d.Connect(srv.Addr()); err != nil {
			return nil, err
		}
		defer d.Close()
		daemons[i] = d
	}
	setSlow := func(on bool) {
		delayMu.Lock()
		defer delayMu.Unlock()
		for _, dc := range delays {
			dc.SetSlow(on)
		}
	}

	// Offered load: 2 tags per round, 20 during the burst window.
	burst := faultnet.Burst{BaseTags: 2, Factor: 10, Start: 7, Rounds: 4}
	tagPos := func(tag uint16) geom.Point {
		return geom.Pt(-1.2+0.3*float64(tag%9), -1.0+0.35*float64(tag/9))
	}

	// Fix collector.
	var fixMu sync.Mutex
	got := map[[2]uint32]geom.Point{}
	collectorDone := make(chan struct{})
	defer close(collectorDone)
	go func() {
		for {
			select {
			case f := <-srv.Fixes():
				fixMu.Lock()
				got[[2]uint32{uint32(f.TagID), f.Round}] = geom.Pt(f.X, f.Y)
				fixMu.Unlock()
			case <-collectorDone:
				return
			}
		}
	}()
	waitFix := func(tag uint16, round uint32, timeout time.Duration) (geom.Point, bool) {
		//lint:ignore clockcheck drill harness polls real wall time; it is the test driver, not the server
		until := time.Now().Add(timeout)
		//lint:ignore clockcheck see above
		for time.Now().Before(until) {
			fixMu.Lock()
			p, ok := got[[2]uint32{uint32(tag), round}]
			fixMu.Unlock()
			if ok {
				return p, true
			}
			//lint:ignore clockcheck see above
			time.Sleep(2 * time.Millisecond)
		}
		return geom.Point{}, false
	}
	var sendMu sync.Mutex
	var sendErr error
	noteErr := func(err error) {
		sendMu.Lock()
		if sendErr == nil {
			sendErr = err
		}
		sendMu.Unlock()
	}
	sendRound := func(round uint32, tags []uint16) {
		var wg sync.WaitGroup
		for _, d := range daemons {
			wg.Add(1)
			go func(d *anchor.Daemon) {
				defer wg.Done()
				for _, tg := range tags {
					if err := d.MeasureAndReport(tg, round, tagPos(tg)); err != nil {
						noteErr(fmt.Errorf("round %d tag %d: %w", round, tg, err))
					}
				}
			}(d)
		}
		wg.Wait()
	}

	// Phase 1 — baseline: tags 1 and 2 earn tracked status and set the
	// accuracy bar.
	var baseErrs []float64
	for r := uint32(1); r < burst.Start; r++ {
		sendRound(r, burst.Tags(r))
		if p, ok := waitFix(1, r, 5*time.Second); ok {
			baseErrs = append(baseErrs, p.Dist(tagPos(1)))
		}
		waitFix(2, r, 2*time.Second)
	}
	if len(baseErrs) < 4 {
		return nil, fmt.Errorf("overload: baseline produced %d tag-1 fixes of %d rounds (stats %+v)",
			len(baseErrs), burst.Start-1, srv.Stats())
	}

	// Phase 2 — the storm: two anchors turn slow, load goes 10×. Fast
	// daemons blast all four rounds; the slow ones trickle behind.
	setSlow(true)
	var bw sync.WaitGroup
	for _, d := range daemons {
		bw.Add(1)
		go func(d *anchor.Daemon) {
			defer bw.Done()
			for r := burst.Start; burst.Active(r); r++ {
				for _, tg := range burst.Tags(r) {
					if err := d.MeasureAndReport(tg, r, tagPos(tg)); err != nil {
						noteErr(fmt.Errorf("burst round %d tag %d: %w", r, tg, err))
					}
				}
			}
		}(d)
	}
	bw.Wait()
	setSlow(false)
	mid := srv.Stats()

	// Phase 3 — recovery: normal load, punctual anchors. Wait for the
	// planes to clear, then measure five clean rounds.
	r := burst.Start + burst.Rounds - 1
	recoveryRounds := 0
	recovered := false
	for extra := 0; extra < 80; extra++ {
		r++
		recoveryRounds++
		sendRound(r, burst.Tags(r))
		waitFix(1, r, time.Second)
		st := srv.Stats()
		if st.LaggyAnchors == 0 && st.Readmissions >= st.Quarantines && st.Mode == 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		return nil, fmt.Errorf("overload: fleet never recovered after the burst (stats %+v)", srv.Stats())
	}
	var recErrs, cleanErrs []float64
	const recRounds = 5
	ref := srv.Stats().Reference
	for i := 0; i < recRounds; i++ {
		r++
		sendRound(r, burst.Tags(r))
		if p, ok := waitFix(1, r, 5*time.Second); ok {
			recErrs = append(recErrs, p.Dist(tagPos(1)))
			// The daemons' forks are deterministic, so the oracle
			// recomputes exactly the snapshot the server assembled.
			snap := dep.Fork(uint64(1)<<32 | uint64(r)).Sounding(tagPos(1))
			res, err := eng.LocateRef(snap, ref)
			if err != nil {
				return nil, fmt.Errorf("overload: oracle round %d ref %d: %w", r, ref, err)
			}
			cleanErrs = append(cleanErrs, res.Estimate.Dist(tagPos(1)))
		}
	}
	if len(recErrs) == 0 {
		return nil, fmt.Errorf("overload: recovery produced no tag-1 fixes (stats %+v)", srv.Stats())
	}
	if sendErr != nil {
		return nil, sendErr
	}

	sort.Float64s(baseErrs)
	sort.Float64s(recErrs)
	return &OverloadResult{
		QueueCap:  queueCap,
		BurstTags: len(burst.Tags(burst.Start)),
		Baseline: OverloadPhase{
			Rounds: int(burst.Start) - 1,
			Fixes:  len(baseErrs),
			Err:    NewErrorStats(baseErrs),
		},
		Recovery: OverloadPhase{
			Rounds: recRounds,
			Fixes:  len(recErrs),
			Err:    NewErrorStats(recErrs),
		},
		RecoveryRounds: recoveryRounds,
		Reference:      ref,
		CleanErr:       NewErrorStats(cleanErrs),
		Mid:            mid,
		Final:          srv.Stats(),
	}, nil
}

// OverloadTable renders the overload episode.
func OverloadTable(r *OverloadResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation — overload drill (serving plane; %d× tag burst, "+
			"2 slow anchors, fix queue capped at %d)", r.BurstTags/2, r.QueueCap),
		Columns: []string{"measure", "value"},
	}
	t.AddRow("tracked-tag median, baseline (cm)", Cm(r.Baseline.Err.Median))
	t.AddRow("tracked-tag median, recovered (cm)", Cm(r.Recovery.Err.Median))
	t.AddRow(fmt.Sprintf("clean-pipeline median at recovered reference %d (cm)", r.Reference),
		Cm(r.CleanErr.Median))
	t.AddRow("rounds to full recovery after burst", fmt.Sprintf("%d", r.RecoveryRounds))
	t.AddRow("fix-queue peak / cap", fmt.Sprintf("%d / %d", r.Final.QueuePeak, r.QueueCap))
	t.AddRow("rounds shed (admission control)", fmt.Sprintf("%d", r.Final.OverloadShed))
	t.AddRow("rounds demoted to coarse fix", fmt.Sprintf("%d", r.Final.OverloadDegraded))
	t.AddRow("serve-mode transitions", fmt.Sprintf("%d", r.Final.ModeChanges))
	t.AddRow("laggy marks / readmits", fmt.Sprintf("%d / %d",
		r.Final.LaggyMarks, r.Final.LaggyReadmits))
	t.AddRow("early round completions", fmt.Sprintf("%d", r.Final.EarlyCompletions))
	t.AddRow("budget-exceeded fixes dropped", fmt.Sprintf("%d", r.Final.BudgetExceeded))
	return t
}
