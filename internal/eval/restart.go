package eval

import (
	"fmt"
	"math"

	"bloc/internal/core"
	"bloc/internal/durable"
	"bloc/internal/testbed"
)

// ---------------------------------------------------------------------------
// Warm vs cold restart: the durable state plane (DESIGN.md §11) exists so
// a restarted server resumes accurate localization immediately instead of
// re-paying the array calibration. This ablation prices exactly that
// difference: starting from a deployment with real per-antenna phase
// miscalibration, it compares time-to-first-accurate-fix for a server
// that warm-restored its calibration rotors from a snapshot (round-
// tripped through the actual durable codec, not handed over in memory)
// against one that cold-starts and must localize uncalibrated while the
// recalibration sounding runs.

// RestartMode is one restart strategy's measured behaviour.
type RestartMode struct {
	// FirstFix is the error of the very first post-restart fix.
	FirstFix ErrorStats
	// Settled is the error once the mode has its calibration in hand
	// (immediately for warm, after recalibration for cold).
	Settled ErrorStats
	// MeanRounds is the mean rounds-to-first-accurate-fix over the
	// positions that reach accuracy within the horizon (the p90 bar by
	// construction leaves a tail of positions that never do, in either
	// mode — their static geometry error sits above it).
	MeanRounds float64
	// FirstRoundPct is the share of positions already accurate on the
	// very first post-restart fix.
	FirstRoundPct float64
}

// RestartResult is the warm/cold comparison.
type RestartResult struct {
	// CalRounds is how many calibration sounding rounds the cold restart
	// spends before a stable calibration estimate succeeds.
	CalRounds int
	// ThresholdM is the "accurate fix" bar in meters: the p90 error of
	// the calibrated steady state.
	ThresholdM float64
	// Rounds is the per-position simulation horizon.
	Rounds int
	Warm   RestartMode
	Cold   RestartMode
}

// AblationRestart simulates both restart paths over a shared position
// set. The deployment carries phaseErrDeg of static per-antenna phase
// error so calibration genuinely changes accuracy, and runs in the clean
// room (like the core calibration tests) so the measured gap is the
// calibration itself, not multipath confounding it. The warm path's
// calibration is proven by encoding it into a durable snapshot, decoding
// it back and rebuilding a core.Calibration from the decoded rotors —
// the same code path a real warm restart takes.
func AblationRestart(seed uint64, positions int, phaseErrDeg float64) (*RestartResult, error) {
	cfg := testbed.PaperConfig(seed)
	cfg.AntennaPhaseErrDeg = phaseErrDeg
	dep, err := testbed.New(testbed.CleanEnvironment(seed), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}

	// The calibration a crash wiped out — and the price of re-estimating
	// it: each salt is one sounding round, retried until the estimate is
	// stable (echoing System.Calibrate's retry loop).
	cal, calRounds, err := estimateStableCalibration(dep)
	if err != nil {
		return nil, err
	}

	// Round-trip the rotors through the durable codec to obtain the warm
	// restart's calibration exactly as a restarted server would see it.
	warmCal, err := roundTripCalibration(dep, cal)
	if err != nil {
		return nil, err
	}

	const settleRounds = 3 // accurate rounds to observe after recalibration
	rounds := calRounds + settleRounds
	pts := SamplePositions(dep.Env.Room, positions, 0.04, 0.25, seed^0x6E57A67)

	// Per position and round, both modes localize the same sounding: the
	// fork salt depends only on (position, round), so warm vs cold differ
	// purely in the calibration applied, never in the noise draw.
	warmErrs := make([][]float64, len(pts))
	coldErrs := make([][]float64, len(pts))
	for pi, p := range pts {
		warmErrs[pi] = make([]float64, rounds)
		coldErrs[pi] = make([]float64, rounds)
		for r := 0; r < rounds; r++ {
			snap := dep.Fork(uint64(pi)<<8 | uint64(r)).Sounding(p)

			ws, err := warmCal.Apply(snap)
			if err != nil {
				return nil, fmt.Errorf("restart warm apply: %w", err)
			}
			wres, err := eng.Locate(ws)
			if err != nil {
				return nil, fmt.Errorf("restart warm position %d round %d: %w", pi, r, err)
			}
			warmErrs[pi][r] = wres.Estimate.Dist(p)

			// Cold: uncalibrated while the calRounds sounding rounds run,
			// freshly calibrated afterwards.
			cs := snap
			if r >= calRounds {
				cs, err = cal.Apply(snap)
				if err != nil {
					return nil, fmt.Errorf("restart cold apply: %w", err)
				}
			}
			cres, err := eng.Locate(cs)
			if err != nil {
				return nil, fmt.Errorf("restart cold position %d round %d: %w", pi, r, err)
			}
			coldErrs[pi][r] = cres.Estimate.Dist(p)
		}
	}

	// "Accurate" = within the calibrated steady state's p90 envelope,
	// measured on the warm fixes themselves (the warm server IS the
	// calibrated steady state from round one).
	var steady []float64
	for _, errs := range warmErrs {
		steady = append(steady, errs...)
	}
	thresh := NewErrorStats(steady).P90

	res := &RestartResult{CalRounds: calRounds, ThresholdM: thresh, Rounds: rounds}
	res.Warm = summarizeRestart(warmErrs, rounds, thresh)
	res.Cold = summarizeRestart(coldErrs, calRounds, thresh)
	return res, nil
}

// estimateStableCalibration retries the calibration sounding with fresh
// salts until EstimateCalibration accepts it, returning the calibration
// and how many sounding rounds were spent.
func estimateStableCalibration(dep *testbed.Deployment) (*core.Calibration, int, error) {
	const maxAttempts = 16
	var lastErr error
	for salt := uint64(0); salt < maxAttempts; salt++ {
		d := dep.Fork(0xCA11 + salt)
		meas, txPos := d.CalibrationSounding()
		freqs := make([]float64, len(d.Bands))
		for k, ch := range d.Bands {
			freqs[k] = ch.CenterFreq()
		}
		cal, err := core.EstimateCalibration(dep.Anchors, txPos, freqs, meas)
		if err == nil {
			return cal, int(salt) + 1, nil
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("eval: restart ablation: calibration never stabilized: %w", lastErr)
}

// roundTripCalibration encodes the calibration into a durable snapshot,
// decodes it and restores a core.Calibration from the decoded rotors,
// verifying the round trip preserved every rotor bit-for-bit.
func roundTripCalibration(dep *testbed.Deployment, cal *core.Calibration) (*core.Calibration, error) {
	st := &durable.State{
		SavedUnixNano: 1,
		Anchors:       make([]durable.AnchorHealth, len(dep.Anchors)),
	}
	for i := range st.Anchors {
		st.Anchors[i].Score = 1
	}
	st.Calib = cal.ExportRotors()
	decoded, err := durable.DecodeSnapshot(durable.EncodeSnapshot(st, 1))
	if err != nil {
		return nil, fmt.Errorf("eval: restart ablation: snapshot round trip: %w", err)
	}
	restored, err := core.RestoreCalibration(decoded.Calib)
	if err != nil {
		return nil, fmt.Errorf("eval: restart ablation: restore: %w", err)
	}
	for i, rotors := range cal.Rotors {
		for j, want := range rotors {
			if !sameBits(restored.Rotors[i][j], want) {
				return nil, fmt.Errorf("eval: restart ablation: rotor %d/%d changed across the round trip", i, j)
			}
		}
	}
	return restored, nil
}

// sameBits reports bit-identical complex values (the round-trip guarantee
// is exact representation, not numeric closeness).
func sameBits(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// summarizeRestart reduces per-position round error series to one mode's
// stats. settledFrom is the first round index with calibration in hand.
func summarizeRestart(errs [][]float64, settledFrom int, thresh float64) RestartMode {
	rounds := len(errs[0])
	if settledFrom >= rounds {
		settledFrom = rounds - 1
	}
	var first, settled []float64
	total, reached, atFirst := 0, 0, 0
	for _, series := range errs {
		first = append(first, series[0])
		settled = append(settled, series[settledFrom:]...)
		for r, e := range series {
			if e <= thresh {
				total += r + 1
				reached++
				if r == 0 {
					atFirst++
				}
				break
			}
		}
	}
	mean := float64(rounds)
	if reached > 0 {
		mean = float64(total) / float64(reached)
	}
	return RestartMode{
		FirstFix:      NewErrorStats(first),
		Settled:       NewErrorStats(settled),
		MeanRounds:    mean,
		FirstRoundPct: 100 * float64(atFirst) / float64(len(errs)),
	}
}

// RestartTable renders the warm/cold comparison.
func RestartTable(r *RestartResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation — warm vs cold restart (durable state plane; "+
			"accurate = ≤%s cm, cold recalibration = %d round(s))",
			Cm(r.ThresholdM), r.CalRounds),
		Columns: []string{"restart", "first fix median (cm)", "settled median (cm)",
			"mean rounds to accurate", "accurate at round 1"},
	}
	row := func(name string, m RestartMode) {
		t.AddRow(name, Cm(m.FirstFix.Median), Cm(m.Settled.Median),
			fmt.Sprintf("%.1f", m.MeanRounds), fmt.Sprintf("%.0f%%", m.FirstRoundPct))
	}
	row("warm (snapshot restore)", r.Warm)
	row("cold (recalibrate)", r.Cold)
	return t
}
