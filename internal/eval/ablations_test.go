package eval

import (
	"strings"
	"testing"

	"bloc/internal/geom"
)

func TestAblationScoreDecomposition(t *testing.T) {
	s := newTestSuite(t, 16)
	vs, err := s.AblationScore()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 5 {
		t.Fatalf("got %d variants", len(vs))
	}
	byName := map[string]ScoreVariant{}
	for _, v := range vs {
		if v.Median <= 0 {
			t.Errorf("variant %q has zero median", v.Name)
		}
		byName[v.Name] = v
		t.Logf("%-30s median %.2f m", v.Name, v.Median)
	}
	full := byName["full score (a=0.1, b=0.05)"]
	sd := byName["shortest distance selector"]
	if full.Median > sd.Median {
		t.Errorf("full score (%.2f) worse than shortest-distance (%.2f)", full.Median, sd.Median)
	}
	if !strings.Contains(ScoreTable(vs).String(), "full score") {
		t.Error("table missing variants")
	}
}

func TestAblationQuorum(t *testing.T) {
	s := newTestSuite(t, 12)
	ps, err := s.AblationQuorum()
	if err != nil {
		t.Fatal(err)
	}
	// 4 anchors: full, 1 silenced, 2 silenced, plus three loss fractions.
	if len(ps) != 6 {
		t.Fatalf("got %d scenarios", len(ps))
	}
	if ps[0].Anchors != 4 || ps[1].Anchors != 3 || ps[2].Anchors != 2 {
		t.Errorf("anchor ladder wrong: %+v", ps[:3])
	}
	for _, p := range ps {
		if p.Stats.Median <= 0 || p.Stats.Median > 6 {
			t.Errorf("scenario %q: degenerate median %.2f", p.Name, p.Stats.Median)
		}
		t.Logf("%-24s anchors=%d median %.2f m", p.Name, p.Anchors, p.Stats.Median)
	}
	if !strings.Contains(QuorumTable(ps).String(), "silenced") {
		t.Error("table missing scenarios")
	}
}

func TestAblationWeights(t *testing.T) {
	s := newTestSuite(t, 10)
	ps, err := s.AblationWeights([]float64{0.05, 0.1}, []float64{0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d points", len(ps))
	}
	for _, p := range ps {
		if p.Median <= 0 || p.Median > 6 {
			t.Errorf("weights (%.2f, %.2f): degenerate median %.2f", p.A, p.B, p.Median)
		}
	}
	if !strings.Contains(WeightsTable(ps).String(), "0.05") {
		t.Error("table malformed")
	}
}

func TestAblationSNR(t *testing.T) {
	ps, err := AblationSNR(7, 10, []float64{10, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d points", len(ps))
	}
	for _, p := range ps {
		t.Logf("SNR %2.0f dB: BLoc %.2f m, AoA %.2f m", p.SNRdB, p.BLoc.Median, p.AoA.Median)
		if p.BLoc.Median <= 0 {
			t.Error("degenerate stats")
		}
	}
	if !strings.Contains(SNRTable(ps).String(), "SNR") {
		t.Error("table malformed")
	}
}

func TestAblationHopInvariance(t *testing.T) {
	// §2.1's primality argument: the hop increment permutes the band
	// measurement order but must not change where BLoc thinks the tag is
	// beyond ordinary measurement-to-measurement variation.
	permuted, repeated, err := AblationHopInvariance(7, geom.Pt(0.6, -0.4), []int{5, 9, 16})
	if err != nil {
		t.Fatal(err)
	}
	ps, rs := Spread(permuted), Spread(repeated)
	t.Logf("hop-permuted spread %.2f m, repeated-measurement spread %.2f m", ps, rs)
	if ps > rs+0.5 {
		t.Errorf("hop increment changed results beyond measurement noise: %.2f vs %.2f", ps, rs)
	}
}

func TestAblationNLOS(t *testing.T) {
	ps, err := AblationNLOS(7, 10, []float64{1.0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d points", len(ps))
	}
	for _, p := range ps {
		t.Logf("atten %.2f: BLoc %.2f m, AoA %.2f m", p.Attenuation, p.BLoc.Median, p.AoA.Median)
	}
	// Heavier obstruction should not make things better.
	if ps[1].BLoc.Median < ps[0].BLoc.Median*0.5 {
		t.Errorf("NLOS clutter improved accuracy: %.2f -> %.2f", ps[0].BLoc.Median, ps[1].BLoc.Median)
	}
	if !strings.Contains(NLOSTable(ps).String(), "none") {
		t.Error("table malformed")
	}
}

func TestSpread(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(1, 1)}
	if s := Spread(pts); s != 5 {
		t.Errorf("Spread = %v, want 5", s)
	}
	if Spread(nil) != 0 || Spread(pts[:1]) != 0 {
		t.Error("degenerate spreads should be 0")
	}
}

func TestAblationBaselinesPanel(t *testing.T) {
	s := newTestSuite(t, 12)
	rs, err := s.AblationBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 {
		t.Fatalf("got %d baselines", len(rs))
	}
	medians := map[string]float64{}
	for _, r := range rs {
		if r.Stats.Median <= 0 {
			t.Errorf("%s: degenerate median", r.Name)
		}
		medians[r.Name] = r.Stats.Median
		t.Logf("%-32s median %.2f m", r.Name, r.Stats.Median)
	}
	// BLoc must lead the panel.
	for name, m := range medians {
		if name != "BLoc (full pipeline)" && m < medians["BLoc (full pipeline)"]*0.8 {
			t.Errorf("%s (%.2f) beats BLoc (%.2f) decisively", name, m, medians["BLoc (full pipeline)"])
		}
	}
	if !strings.Contains(BaselinesTable(rs).String(), "MUSIC") {
		t.Error("panel table missing MUSIC")
	}
}

func TestAblationInterference(t *testing.T) {
	ps, err := AblationInterference(7, 14, 6, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d scenarios", len(ps))
	}
	quiet, noAFH, afh := ps[0], ps[1], ps[2]
	t.Logf("quiet %.2f (%d ch) | no-AFH %.2f (%d ch) | AFH %.2f (%d ch)",
		quiet.BLoc.Median, quiet.Channels, noAFH.BLoc.Median, noAFH.Channels,
		afh.BLoc.Median, afh.Channels)
	if afh.Channels >= quiet.Channels {
		t.Errorf("AFH kept %d channels, expected a blacklist below %d", afh.Channels, quiet.Channels)
	}
	// AFH must not be meaningfully worse than the quiet band (the paper's
	// §8.6 point: losing blacklisted channels barely matters), and it
	// should not lose to ignoring the interference.
	if afh.BLoc.Median > quiet.BLoc.Median*1.5+0.1 {
		t.Errorf("AFH median %.2f much worse than quiet %.2f", afh.BLoc.Median, quiet.BLoc.Median)
	}
	if afh.BLoc.Median > noAFH.BLoc.Median*1.25+0.1 {
		t.Errorf("AFH median %.2f worse than ignoring interference %.2f", afh.BLoc.Median, noAFH.BLoc.Median)
	}
	if !strings.Contains(InterferenceTable(ps).String(), "AFH") {
		t.Error("table malformed")
	}
}

func TestAblationMotion(t *testing.T) {
	ps, err := AblationMotion(7, 10, []float64{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d points", len(ps))
	}
	for _, p := range ps {
		t.Logf("%.1f m/s: median %.2f m", p.SpeedMS, p.BLoc.Median)
	}
	// Static must be at least as good as fast motion (allowing small-
	// sample noise), and fast motion must not collapse entirely.
	if ps[0].BLoc.Median > ps[2].BLoc.Median*1.3+0.1 {
		t.Errorf("static (%.2f) worse than 3 m/s (%.2f)?", ps[0].BLoc.Median, ps[2].BLoc.Median)
	}
	if ps[2].BLoc.Median > 4 {
		t.Errorf("3 m/s median %.2f beyond room scale", ps[2].BLoc.Median)
	}
	if !strings.Contains(MotionTable(ps).String(), "m/s") {
		t.Error("table malformed")
	}
}

func TestAblationCTE(t *testing.T) {
	r, err := AblationCTE(7, 14)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CTE %.2f m, BLoc %.2f m", r.CTE.Median, r.BLoc.Median)
	if r.BLoc.Median >= r.CTE.Median {
		t.Errorf("BLoc (%.2f) did not beat CTE (%.2f) in the multipath room",
			r.BLoc.Median, r.CTE.Median)
	}
	if !strings.Contains(CTETable(r).String(), "5.1") {
		t.Error("table malformed")
	}
}

func TestAblationWiFi(t *testing.T) {
	r, err := AblationWiFi(7, 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WiFi %.2f m | BLoc %.2f m | BLE-AoA %.2f m",
		r.WiFi.Median, r.BLoc.Median, r.BLEAoA.Median)
	// The paper's framing: Wi-Fi CSI achieves ≈1 m-class accuracy; BLoc
	// brings BLE into the same class; plain BLE AoA does not.
	if r.WiFi.Median > 2.0 {
		t.Errorf("Wi-Fi SpotFi median %.2f m — should be meter-class", r.WiFi.Median)
	}
	if r.BLoc.Median > r.WiFi.Median*2.5+0.2 {
		t.Errorf("BLoc (%.2f) not in Wi-Fi's class (%.2f)", r.BLoc.Median, r.WiFi.Median)
	}
	if r.BLEAoA.Median < r.BLoc.Median {
		t.Errorf("BLE AoA (%.2f) beats BLoc (%.2f)?", r.BLEAoA.Median, r.BLoc.Median)
	}
	if !strings.Contains(WiFiTable(r).String(), "Wi-Fi") {
		t.Error("table malformed")
	}
}
