package eval

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bloc/internal/core"
)

// PerfResult is one throughput measurement of the localization fix path.
// GOMAXPROCS is captured at measurement time so a sweep point can never
// silently claim parallelism the scheduler did not have (the BENCH_3
// anomaly: 4 workers timed at GOMAXPROCS=1).
type PerfResult struct {
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Fixes        int     `json:"fixes"`
	NsPerFix     float64 `json:"ns_per_fix"`
	BytesPerFix  float64 `json:"bytes_per_fix"`
	AllocsPerFix float64 `json:"allocs_per_fix"`
	FixesPerSec  float64 `json:"fixes_per_sec"`
}

func (r PerfResult) String() string {
	return fmt.Sprintf("workers=%d gomaxprocs=%d fixes=%d  %.0f ns/fix  %.0f B/fix  %.1f allocs/fix  %.1f fixes/sec",
		r.Workers, r.GOMAXPROCS, r.Fixes, r.NsPerFix, r.BytesPerFix, r.AllocsPerFix, r.FixesPerSec)
}

// MeasureFixes runs the given number of localizations over the suite's
// dataset snapshots on `workers` goroutines sharing one engine, and
// reports latency, throughput and steady-state allocation rates from
// runtime.MemStats deltas. A warm-up pass populates the engine's plane
// cache and scratch pools first, so the figures reflect steady state.
func (s *Suite) MeasureFixes(fixes, workers int) (PerfResult, error) {
	if len(s.DS.Snapshots) == 0 {
		return PerfResult{}, fmt.Errorf("eval: empty dataset")
	}
	if fixes < 1 {
		fixes = 1
	}
	if workers < 1 {
		workers = 1
	}
	warm := 2 * workers
	if warm > fixes {
		warm = fixes
	}
	if err := s.runFixes(warm, workers); err != nil {
		return PerfResult{}, err
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	//lint:ignore clockcheck throughput is measured against the real monotonic clock
	start := time.Now()
	if err := s.runFixes(fixes, workers); err != nil {
		return PerfResult{}, err
	}
	//lint:ignore clockcheck see above
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := float64(fixes)
	return PerfResult{
		Workers:      workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Fixes:        fixes,
		NsPerFix:     float64(elapsed.Nanoseconds()) / n,
		BytesPerFix:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		AllocsPerFix: float64(after.Mallocs-before.Mallocs) / n,
		FixesPerSec:  n / elapsed.Seconds(),
	}, nil
}

// runFixes localizes `fixes` dataset snapshots (round-robin) on `workers`
// goroutines sharing the suite's engine.
func (s *Suite) runFixes(fixes, workers int) error {
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= fixes {
				return
			}
			snap := s.DS.Snapshots[i%len(s.DS.Snapshots)]
			if _, err := s.Eng.Locate(snap); err != nil {
				mu.Lock()
				if fail == nil {
					fail = err
				}
				mu.Unlock()
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	return fail
}

// MaxKernelDivergence localizes the first n dataset snapshots with both
// the optimized and the reference likelihood kernels and returns the
// largest absolute per-cell divergence seen on the combined surfaces —
// the eval-level guarantee that every figure the suite produces is
// unchanged by the performance work.
func (s *Suite) MaxKernelDivergence(n int) (float64, error) {
	if n > len(s.DS.Snapshots) {
		n = len(s.DS.Snapshots)
	}
	var worst float64
	for i := 0; i < n; i++ {
		a, err := core.Correct(s.DS.Snapshots[i])
		if err != nil {
			return 0, err
		}
		opt, _ := s.Eng.Likelihood(a)
		ref, _ := s.Eng.LikelihoodReference(a)
		for c := range ref.Data {
			if d := math.Abs(opt.Data[c] - ref.Data[c]); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
