package eval

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bloc/internal/core"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/track"
)

// Steady-state tracked serving: once a tag's Kalman track has settled,
// the engine localizes it through the prior-gated coarse-to-fine search
// (DESIGN.md §14). These measurements price that path — the tracked
// latency headline — and stress the gate's fallback triggers under
// increasing tag mobility.

// TrackedResult is one throughput measurement of the tracked
// (prior-gated) fix path, extending PerfResult with the gate's
// effectiveness counters taken from engine-stat deltas over the timed
// window.
type TrackedResult struct {
	PerfResult
	// GatedFrac is the fraction of fixes served by the gated path
	// (the rest fell back to the full grid).
	GatedFrac float64 `json:"gated_frac"`
	// FallbackRate is the fraction of gated attempts refused by a
	// fallback trigger.
	FallbackRate float64 `json:"fallback_rate"`
	// TileFrac is the mean fraction of refinement tiles evaluated per
	// gated fix.
	TileFrac float64 `json:"tile_frac"`
}

func (r TrackedResult) String() string {
	return fmt.Sprintf("%s  gated=%.0f%% fallback=%.1f%% tiles=%.0f%%",
		r.PerfResult, 100*r.GatedFrac, 100*r.FallbackRate, 100*r.TileFrac)
}

// trackedTag is one simulated tracked tag: its snapshot, Kalman track
// and gating hysteresis, owned by a single measurement worker.
type trackedTag struct {
	suite *Suite
	snap  int
	f     *track.Filter
	g     *core.GatePolicy
}

// fix runs one tracked localization: prior from the settled track,
// gated search, hysteresis and track update — the serving plane's
// steady-state per-round work.
func (tt *trackedTag) fix() error {
	s := tt.suite
	var prior *core.Prior
	if ell, ok := tt.f.ConfidenceEllipse(1); ok {
		p := tt.g.Prior(ell.Center, ell.SemiMajor, ell.SemiMinor, ell.Theta)
		prior = &p
	}
	res, err := s.Eng.LocateOpts(s.DS.Snapshots[tt.snap], core.LocateOptions{Prior: prior})
	if err != nil {
		return err
	}
	if prior != nil {
		tt.g.Observe(res)
	}
	// A tag reporting at 40 Hz: the tracked regime the gate targets.
	_, _, err = tt.f.Update(res.Estimate, 0.025)
	return err
}

// MeasureTracked runs `fixes` localizations of settled tracked tags on
// `workers` goroutines sharing the suite's engine — the steady-state
// regime of a tag reporting at a constant cadence from a stable
// position. Each worker owns one tag (its own snapshot, Kalman track
// and GatePolicy); a warm-up pass settles every track and the engine's
// caches before the timed window, and the gate counters are reported as
// deltas over that window only.
func (s *Suite) MeasureTracked(fixes, workers int) (TrackedResult, error) {
	if len(s.DS.Snapshots) == 0 {
		return TrackedResult{}, fmt.Errorf("eval: empty dataset")
	}
	if fixes < 1 {
		fixes = 1
	}
	if workers < 1 {
		workers = 1
	}
	tags := make([]*trackedTag, workers)
	for w := range tags {
		f, err := track.New(track.DefaultConfig())
		if err != nil {
			return TrackedResult{}, err
		}
		tags[w] = &trackedTag{
			suite: s,
			snap:  w % len(s.DS.Snapshots),
			f:     f,
			g:     core.NewGatePolicy(),
		}
	}
	// Warm-up: settle each track's covariance (and the engine's plane
	// cache and scratch pools) so the timed window starts gated.
	const settle = 8
	for _, tt := range tags {
		for i := 0; i < settle; i++ {
			if err := tt.fix(); err != nil {
				return TrackedResult{}, err
			}
		}
	}

	runtime.GC()
	before := s.Eng.Stats()
	var beforeMem, afterMem runtime.MemStats
	runtime.ReadMemStats(&beforeMem)
	//lint:ignore clockcheck throughput is measured against the real monotonic clock
	start := time.Now()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		tt := tags[w]
		go func() {
			defer wg.Done()
			for int(next.Add(1)) <= fixes {
				if err := tt.fix(); err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	//lint:ignore clockcheck see above
	elapsed := time.Since(start)
	runtime.ReadMemStats(&afterMem)
	if fail != nil {
		return TrackedResult{}, fail
	}
	after := s.Eng.Stats()

	n := float64(fixes)
	res := TrackedResult{PerfResult: PerfResult{
		Workers:      workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Fixes:        fixes,
		NsPerFix:     float64(elapsed.Nanoseconds()) / n,
		BytesPerFix:  float64(afterMem.TotalAlloc-beforeMem.TotalAlloc) / n,
		AllocsPerFix: float64(afterMem.Mallocs-beforeMem.Mallocs) / n,
		FixesPerSec:  n / elapsed.Seconds(),
	}}
	gated := after.GatedFixes - before.GatedFixes
	total := after.Fixes - before.Fixes
	fallbacks := (after.FallbackDisagree - before.FallbackDisagree) +
		(after.FallbackLowConf - before.FallbackLowConf) +
		(after.FallbackNoPeaks - before.FallbackNoPeaks)
	if total > 0 {
		res.GatedFrac = float64(gated) / float64(total)
	}
	if attempts := gated + fallbacks; attempts > 0 {
		res.FallbackRate = float64(fallbacks) / float64(attempts)
	}
	if dt := after.TilesTotal - before.TilesTotal; dt > 0 {
		res.TileFrac = float64(after.TilesRefined-before.TilesRefined) / float64(dt)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Gated-vs-full ablation: does the gate hold CDF parity as the tag
// moves, and what does each mobility regime cost in fallbacks?

// GatedPoint is one mobility scenario of the gated ablation.
type GatedPoint struct {
	Name         string
	Gated        ErrorStats
	Full         ErrorStats
	FallbackRate float64 // gated attempts refused by a trigger
	GatedNs      float64 // mean ns per gated-path localization
	FullNs       float64 // mean ns per full-grid localization
}

// AblationGated walks one tag through increasingly adversarial motion —
// random walks of growing step size, then outright teleports — and
// localizes every step through both the full grid and the tracker-
// prior-gated search. The gated estimates must match the full-grid CDF
// (the gate only decides where to look); the fallback rate shows the
// hysteresis pricing each regime.
func AblationGated(seed uint64, steps int) ([]GatedPoint, error) {
	type scenario struct {
		name     string
		sigma    float64 // per-step displacement std (m)
		teleport int     // every n-th step jumps to a fresh uniform point (0 disables)
	}
	scenarios := []scenario{
		{name: "random walk σ=0.10 m", sigma: 0.10},
		{name: "random walk σ=0.30 m", sigma: 0.30},
		{name: "random walk σ=1.00 m", sigma: 1.00},
		{name: "teleport every 10 steps", sigma: 0.10, teleport: 10},
	}
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	room := dep.Env.Room.Inset(0.6)
	out := make([]GatedPoint, 0, len(scenarios))
	for si, sc := range scenarios {
		rng := rand.New(rand.NewPCG(seed, uint64(si)^0x6A7ED))
		f, err := track.New(track.DefaultConfig())
		if err != nil {
			return nil, err
		}
		g := core.NewGatePolicy()
		pos := room.Clamp(geom.Pt(
			room.Min.X+rng.Float64()*room.Width(),
			room.Min.Y+rng.Float64()*room.Height(),
		))
		var (
			gatedErrs, fullErrs []float64
			attempts, fallbacks int
			gatedNs, fullNs     int64
		)
		for i := 0; i < steps; i++ {
			if sc.teleport > 0 && i > 0 && i%sc.teleport == 0 {
				pos = geom.Pt(
					room.Min.X+rng.Float64()*room.Width(),
					room.Min.Y+rng.Float64()*room.Height(),
				)
			} else {
				pos = room.Clamp(pos.Add(geom.Vec(
					rng.NormFloat64()*sc.sigma,
					rng.NormFloat64()*sc.sigma,
				)))
			}
			snap := dep.Fork(uint64(si)<<32 | uint64(i)).Sounding(pos)

			//lint:ignore clockcheck latency comparison needs the real monotonic clock
			t0 := time.Now()
			full, err := eng.Locate(snap)
			if err != nil {
				return nil, fmt.Errorf("gated ablation %q step %d (full): %w", sc.name, i, err)
			}
			//lint:ignore clockcheck see above
			fullNs += time.Since(t0).Nanoseconds()

			var prior *core.Prior
			if ell, ok := f.ConfidenceEllipse(1); ok {
				p := g.Prior(ell.Center, ell.SemiMajor, ell.SemiMinor, ell.Theta)
				prior = &p
			}
			//lint:ignore clockcheck see above
			t0 = time.Now()
			res, err := eng.LocateOpts(snap, core.LocateOptions{Prior: prior})
			if err != nil {
				return nil, fmt.Errorf("gated ablation %q step %d (gated): %w", sc.name, i, err)
			}
			//lint:ignore clockcheck see above
			gatedNs += time.Since(t0).Nanoseconds()
			if prior != nil {
				g.Observe(res)
				attempts++
				if !res.Gated {
					fallbacks++
				}
			}
			gatedErrs = append(gatedErrs, res.Estimate.Dist(pos))
			fullErrs = append(fullErrs, full.Estimate.Dist(pos))
			if _, _, err := f.Update(res.Estimate, 0.1); err != nil {
				return nil, fmt.Errorf("gated ablation %q step %d (track): %w", sc.name, i, err)
			}
		}
		p := GatedPoint{
			Name:    sc.name,
			Gated:   NewErrorStats(gatedErrs),
			Full:    NewErrorStats(fullErrs),
			GatedNs: float64(gatedNs) / float64(steps),
			FullNs:  float64(fullNs) / float64(steps),
		}
		if attempts > 0 {
			p.FallbackRate = float64(fallbacks) / float64(attempts)
		}
		out = append(out, p)
	}
	return out, nil
}

// GatedTable renders the mobility ladder.
func GatedTable(ps []GatedPoint) *Table {
	t := &Table{
		Title:   "Ablation — prior-gated search vs full grid under tag mobility",
		Columns: []string{"scenario", "gated median (cm)", "full median (cm)", "gated p90 (cm)", "full p90 (cm)", "fallback", "gated µs/fix", "full µs/fix"},
	}
	for _, p := range ps {
		t.AddRow(p.Name, Cm(p.Gated.Median), Cm(p.Full.Median),
			Cm(p.Gated.P90), Cm(p.Full.P90),
			fmt.Sprintf("%.0f%%", 100*p.FallbackRate),
			fmt.Sprintf("%.0f", p.GatedNs/1e3), fmt.Sprintf("%.0f", p.FullNs/1e3))
	}
	return t
}
