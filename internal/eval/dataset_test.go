package eval

import (
	"bytes"
	"strings"
	"testing"

	"bloc/internal/testbed"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	dep, err := testbed.Paper(61)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Acquire(dep, AcquireOptions{Positions: 6, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		if got.Truth[i] != ds.Truth[i] {
			t.Fatalf("truth %d mismatch", i)
		}
		if got.Snapshots[i].Tag[3][2][1] != ds.Snapshots[i].Tag[3][2][1] {
			t.Fatalf("snapshot %d mismatch", i)
		}
		if got.Snapshots[i].Master[5][1] != ds.Snapshots[i].Master[5][1] {
			t.Fatalf("snapshot %d master mismatch", i)
		}
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Implausible count.
	huge := make([]byte, 8)
	for i := range huge {
		huge[i] = 0xFF
	}
	if _, err := LoadDataset(bytes.NewReader(huge)); err == nil {
		t.Error("huge count accepted")
	}
	// Truncated after header.
	var buf bytes.Buffer
	dep, _ := testbed.Paper(62)
	ds, _ := Acquire(dep, AcquireOptions{Positions: 2, Seed: 62})
	SaveDataset(&buf, ds)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadDataset(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated dataset accepted")
	} else if !strings.Contains(err.Error(), "read") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestReplayMatchesLiveSuite(t *testing.T) {
	// A suite running on a reloaded dataset must produce identical errors
	// to the live one — the record/replay invariant.
	live := newTestSuite(t, 8)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, live.DS); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := &Suite{Dep: live.Dep, Eng: live.Eng, DS: ds, Seed: live.Seed, Workers: 1}
	e1, err := live.Errors(live.Eng, EstimatorBLoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := replay.Errors(replay.Eng, EstimatorBLoc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("position %d: live %v != replay %v", i, e1[i], e2[i])
		}
	}
}
