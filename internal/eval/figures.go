package eval

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/ble"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// ---------------------------------------------------------------------------
// Fig. 9a — Localization accuracy: BLoc vs AoA-combining CDFs.

// Fig9aResult holds the headline comparison of §8.2.
type Fig9aResult struct {
	BLoc, AoA       ErrorStats
	BLocCDF, AoACDF []dsp.CDFPoint
}

// Fig9a localizes every dataset position with both schemes.
func (s *Suite) Fig9a() (*Fig9aResult, error) {
	be, err := s.Errors(s.Eng, EstimatorBLoc, nil)
	if err != nil {
		return nil, err
	}
	ae, err := s.Errors(s.Eng, EstimatorAoA, nil)
	if err != nil {
		return nil, err
	}
	return &Fig9aResult{
		BLoc: NewErrorStats(be), AoA: NewErrorStats(ae),
		BLocCDF: CDF(be), AoACDF: CDF(ae),
	}, nil
}

// Table renders the Fig. 9a summary.
func (r *Fig9aResult) Table() *Table {
	t := &Table{
		Title:   "Fig 9a — Localization accuracy (paper: BLoc 86/170 cm, AoA 242/340 cm)",
		Columns: []string{"scheme", "median (cm)", "p90 (cm)"},
	}
	t.AddRow("BLoc", Cm(r.BLoc.Median), Cm(r.BLoc.P90))
	t.AddRow("AoA-baseline", Cm(r.AoA.Median), Cm(r.AoA.P90))
	return t
}

// ---------------------------------------------------------------------------
// Fig. 9b — Effect of the number of anchors.

// Fig9bResult maps anchor count → stats per scheme. Anchor subsets always
// retain the master (anchor 0): the correction term is defined relative to
// the master's transmissions, so subsets without it would be a different
// deployment, not a subset of this one. Errors are pooled over all subsets
// of each size, matching the paper's "average of those errors".
type Fig9bResult struct {
	Counts []int
	BLoc   map[int]ErrorStats
	AoA    map[int]ErrorStats
	// CDFs per count for plotting the full Fig. 9b curves.
	BLocCDF map[int][]dsp.CDFPoint
	AoACDF  map[int][]dsp.CDFPoint
}

// anchorSubsets returns all subsets of {0..total-1} of the given size that
// contain 0, preserving ascending order.
func anchorSubsets(total, size int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == size {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < total; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(1, []int{0})
	return out
}

// Fig9b sweeps the anchor count over {2, 3, 4}.
func (s *Suite) Fig9b() (*Fig9bResult, error) {
	res := &Fig9bResult{
		Counts:  []int{2, 3, 4},
		BLoc:    map[int]ErrorStats{},
		AoA:     map[int]ErrorStats{},
		BLocCDF: map[int][]dsp.CDFPoint{},
		AoACDF:  map[int][]dsp.CDFPoint{},
	}
	total := len(s.Dep.Anchors)
	for _, count := range res.Counts {
		var blocAll, aoaAll []float64
		for _, subset := range anchorSubsets(total, count) {
			anchors := make([]geom.Array, len(subset))
			for ni, i := range subset {
				anchors[ni] = s.Dep.Anchors[i]
			}
			eng, err := core.NewEngine(anchors, core.DefaultConfig(s.Dep.Env.Room))
			if err != nil {
				return nil, err
			}
			sub := subset
			prep := func(snap *csi.Snapshot) (*csi.Snapshot, error) {
				return snap.SelectAnchors(sub)
			}
			be, err := s.Errors(eng, EstimatorBLoc, prep)
			if err != nil {
				return nil, fmt.Errorf("fig9b bloc subset %v: %w", subset, err)
			}
			ae, err := s.Errors(eng, EstimatorAoA, prep)
			if err != nil {
				return nil, fmt.Errorf("fig9b aoa subset %v: %w", subset, err)
			}
			blocAll = append(blocAll, be...)
			aoaAll = append(aoaAll, ae...)
		}
		res.BLoc[count] = NewErrorStats(blocAll)
		res.AoA[count] = NewErrorStats(aoaAll)
		res.BLocCDF[count] = CDF(blocAll)
		res.AoACDF[count] = CDF(aoaAll)
	}
	return res, nil
}

// Table renders the Fig. 9b summary.
func (r *Fig9bResult) Table() *Table {
	t := &Table{
		Title:   "Fig 9b — Effect of number of anchors (paper: BLoc 86→91.5 cm, AoA 242→247 cm for 4→3)",
		Columns: []string{"anchors", "BLoc median (cm)", "BLoc p90 (cm)", "AoA median (cm)", "AoA p90 (cm)"},
	}
	for _, c := range r.Counts {
		t.AddRow(fmt.Sprint(c), Cm(r.BLoc[c].Median), Cm(r.BLoc[c].P90),
			Cm(r.AoA[c].Median), Cm(r.AoA[c].P90))
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 9c — Effect of the number of antennas.

// Fig9cResult maps antenna count → stats per scheme.
type Fig9cResult struct {
	Counts []int
	BLoc   map[int]ErrorStats
	AoA    map[int]ErrorStats
}

// Fig9c sweeps the per-anchor antenna count over {3, 4} with all anchors.
func (s *Suite) Fig9c() (*Fig9cResult, error) {
	res := &Fig9cResult{Counts: []int{3, 4}, BLoc: map[int]ErrorStats{}, AoA: map[int]ErrorStats{}}
	for _, count := range res.Counts {
		anchors := make([]geom.Array, len(s.Dep.Anchors))
		for i, a := range s.Dep.Anchors {
			anchors[i] = a.WithN(count)
		}
		eng, err := core.NewEngine(anchors, core.DefaultConfig(s.Dep.Env.Room))
		if err != nil {
			return nil, err
		}
		n := count
		prep := func(snap *csi.Snapshot) (*csi.Snapshot, error) {
			return snap.SelectAntennas(n)
		}
		be, err := s.Errors(eng, EstimatorBLoc, prep)
		if err != nil {
			return nil, err
		}
		ae, err := s.Errors(eng, EstimatorAoA, prep)
		if err != nil {
			return nil, err
		}
		res.BLoc[count] = NewErrorStats(be)
		res.AoA[count] = NewErrorStats(ae)
	}
	return res, nil
}

// Table renders the Fig. 9c summary.
func (r *Fig9cResult) Table() *Table {
	t := &Table{
		Title:   "Fig 9c — Effect of number of antennas (paper: BLoc 90 cm @3, AoA 241 cm @3)",
		Columns: []string{"antennas", "BLoc median (cm)", "AoA median (cm)"},
	}
	for _, c := range r.Counts {
		t.AddRow(fmt.Sprint(c), Cm(r.BLoc[c].Median), Cm(r.AoA[c].Median))
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 10 — Bandwidth variation.

// Fig10Result maps stitched bandwidth (MHz) → BLoc stats.
type Fig10Result struct {
	BandwidthsMHz []float64
	Stats         map[float64]ErrorStats
}

// bandIndicesForBandwidth returns a centered contiguous run of band
// indices spanning approximately the requested bandwidth. 2 MHz → one
// band, 80 MHz → all bands.
func bandIndicesForBandwidth(totalBands int, mhz float64) []int {
	n := int(math.Round(mhz / 2))
	if n < 1 {
		n = 1
	}
	if n > totalBands {
		n = totalBands
	}
	start := (totalBands - n) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = start + i
	}
	return idx
}

// Fig10 sweeps the stitched bandwidth over {2, 20, 40, 80} MHz.
func (s *Suite) Fig10() (*Fig10Result, error) {
	res := &Fig10Result{
		BandwidthsMHz: []float64{2, 20, 40, 80},
		Stats:         map[float64]ErrorStats{},
	}
	totalBands := len(s.DS.Snapshots[0].Bands)
	for _, bw := range res.BandwidthsMHz {
		idx := bandIndicesForBandwidth(totalBands, bw)
		prep := func(snap *csi.Snapshot) (*csi.Snapshot, error) {
			return snap.SelectBands(idx)
		}
		be, err := s.Errors(s.Eng, EstimatorBLoc, prep)
		if err != nil {
			return nil, fmt.Errorf("fig10 bw=%v: %w", bw, err)
		}
		res.Stats[bw] = NewErrorStats(be)
	}
	return res, nil
}

// Table renders the Fig. 10 summary.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:   "Fig 10 — Effect of bandwidth (paper medians: 160, 134, 110, 86 cm)",
		Columns: []string{"bandwidth (MHz)", "median (cm)", "stddev (cm)"},
	}
	for _, bw := range r.BandwidthsMHz {
		st := r.Stats[bw]
		t.AddRow(fmt.Sprintf("%.0f", bw), Cm(st.Median), Cm(st.Stddev))
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 11 — Interference avoidance (subband subsampling).

// Fig11Result maps the number of used subbands → BLoc stats. The full
// 80 MHz span is kept; only intermediate channels are dropped (stride
// subsampling), so resolution is preserved and only aliasing/SNR change —
// the paper's point in §8.6.
type Fig11Result struct {
	SubbandCounts []int
	Stats         map[int]ErrorStats
}

// Fig11 subsamples the channel list by strides {1, 2, 4}.
func (s *Suite) Fig11() (*Fig11Result, error) {
	res := &Fig11Result{Stats: map[int]ErrorStats{}}
	totalBands := len(s.DS.Snapshots[0].Bands)
	for _, stride := range []int{1, 2, 4} {
		var idx []int
		for i := 0; i < totalBands; i += stride {
			idx = append(idx, i)
		}
		prep := func(snap *csi.Snapshot) (*csi.Snapshot, error) {
			return snap.SelectBands(idx)
		}
		be, err := s.Errors(s.Eng, EstimatorBLoc, prep)
		if err != nil {
			return nil, fmt.Errorf("fig11 stride=%d: %w", stride, err)
		}
		res.SubbandCounts = append(res.SubbandCounts, len(idx))
		res.Stats[len(idx)] = NewErrorStats(be)
	}
	return res, nil
}

// Table renders the Fig. 11 summary.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:   "Fig 11 — Interference avoidance: subband subsampling over the full span (paper: ≈flat)",
		Columns: []string{"subbands", "median (cm)"},
	}
	for _, n := range r.SubbandCounts {
		t.AddRow(fmt.Sprint(n), Cm(r.Stats[n].Median))
	}
	return t
}

// ---------------------------------------------------------------------------
// Fig. 12 — Multipath rejection ablation.

// Fig12Result compares BLoc's Eq. 18 selector against the naive
// shortest-distance selector on the same likelihoods.
type Fig12Result struct {
	BLoc, Shortest       ErrorStats
	BLocCDF, ShortestCDF []dsp.CDFPoint
}

// Fig12 runs the §8.7 ablation.
func (s *Suite) Fig12() (*Fig12Result, error) {
	be, err := s.Errors(s.Eng, EstimatorBLoc, nil)
	if err != nil {
		return nil, err
	}
	se, err := s.Errors(s.Eng, EstimatorShortestDistance, nil)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{
		BLoc: NewErrorStats(be), Shortest: NewErrorStats(se),
		BLocCDF: CDF(be), ShortestCDF: CDF(se),
	}, nil
}

// Table renders the Fig. 12 summary.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title:   "Fig 12 — Multipath rejection (paper: BLoc 86/178 cm, shortest-distance 195/331 cm)",
		Columns: []string{"selector", "median (cm)", "p90 (cm)"},
	}
	t.AddRow("BLoc (Eq. 18)", Cm(r.BLoc.Median), Cm(r.BLoc.P90))
	t.AddRow("shortest-distance", Cm(r.Shortest.Median), Cm(r.Shortest.P90))
	return t
}

// ---------------------------------------------------------------------------
// Fig. 13 — Accuracy vs location heatmap.

// Fig13Result is the per-cell RMSE map of §8.8.
type Fig13Result struct {
	CellM float64
	Grid  *dsp.Grid // RMSE per cell; cells with no samples hold NaN
	Room  geom.Rect
}

// Fig13 bins per-position BLoc errors into coarse cells and reports the
// RMSE per cell.
func (s *Suite) Fig13(cellM float64) (*Fig13Result, error) {
	if cellM <= 0 {
		cellM = 0.5
	}
	be, err := s.Errors(s.Eng, EstimatorBLoc, nil)
	if err != nil {
		return nil, err
	}
	room := s.Dep.Env.Room
	nx := int(math.Ceil(room.Width()/cellM)) + 1
	ny := int(math.Ceil(room.Height()/cellM)) + 1
	sum := dsp.NewGrid(nx, ny)
	count := dsp.NewGrid(nx, ny)
	for i, p := range s.DS.Truth {
		ix := int((p.X - room.Min.X) / cellM)
		iy := int((p.Y - room.Min.Y) / cellM)
		if ix < 0 || ix >= nx || iy < 0 || iy >= ny {
			continue
		}
		sum.Add(ix, iy, be[i]*be[i])
		count.Add(ix, iy, 1)
	}
	rmse := dsp.NewGrid(nx, ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := count.At(ix, iy)
			//lint:ignore floateq the count grid holds exact integers
			if c == 0 {
				rmse.Set(ix, iy, math.NaN())
				continue
			}
			rmse.Set(ix, iy, math.Sqrt(sum.At(ix, iy)/c))
		}
	}
	return &Fig13Result{CellM: cellM, Grid: rmse, Room: room}, nil
}

// CornerVsCenter reports the mean cell RMSE in the room's corner quarter-
// cells versus the central region, the qualitative observation of §8.8
// ("errors particularly high in the corner locations").
func (r *Fig13Result) CornerVsCenter() (corner, center float64) {
	var cs, cn, ms, mn float64
	for iy := 0; iy < r.Grid.H; iy++ {
		for ix := 0; ix < r.Grid.W; ix++ {
			v := r.Grid.At(ix, iy)
			if math.IsNaN(v) {
				continue
			}
			edgeX := ix <= r.Grid.W/4 || ix >= r.Grid.W*3/4
			edgeY := iy <= r.Grid.H/4 || iy >= r.Grid.H*3/4
			if edgeX && edgeY {
				cs += v
				cn++
			} else if !edgeX && !edgeY {
				ms += v
				mn++
			}
		}
	}
	if cn > 0 {
		corner = cs / cn
	}
	if mn > 0 {
		center = ms / mn
	}
	return corner, center
}

// ---------------------------------------------------------------------------
// Fig. 8a — CSI measurement stability across consecutive acquisitions.

// Fig8aResult records corrected-CSI phases for repeated measurements on a
// few subbands.
type Fig8aResult struct {
	BandIndices []int
	// Phases[m][b] is the corrected phase of measurement m on
	// BandIndices[b] (anchor 1, antenna 0), degrees.
	Phases [][]float64
	// MaxSpreadDeg is the worst per-band spread across measurements.
	MaxSpreadDeg float64
}

// Fig8a repeats the acquisition n times at one position and records the
// corrected phases on the paper's illustrative subbands {6, 16, 26, 36}
// (clamped to the available band count).
func (s *Suite) Fig8a(tag geom.Point, n int) (*Fig8aResult, error) {
	if n <= 0 {
		n = 10
	}
	bandIdx := []int{6, 16, 26, 36}
	total := len(s.Dep.Bands)
	for i, b := range bandIdx {
		if b >= total {
			bandIdx[i] = total - 1
		}
	}
	res := &Fig8aResult{BandIndices: bandIdx}
	for m := 0; m < n; m++ {
		snap := s.Dep.Fork(uint64(1000 + m)).Sounding(tag)
		a, err := core.Correct(snap)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(bandIdx))
		for bi, b := range bandIdx {
			row[bi] = geom.Deg(cmplx.Phase(a.Values[b][1][0]))
		}
		res.Phases = append(res.Phases, row)
	}
	for bi := range bandIdx {
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		for m := range res.Phases {
			v := res.Phases[m][bi]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		res.MaxSpreadDeg = math.Max(res.MaxSpreadDeg, hi-lo)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 8b — Phase across subbands, with and without offset correction.

// Fig8bResult compares the unwrapped phase-vs-frequency profiles.
type Fig8bResult struct {
	Freqs         []float64
	RawDeg        []float64 // without phase correction (garbled)
	CorrectedDeg  []float64 // BLoc's corrected channels
	RawR2, CorrR2 float64   // linearity of each profile
}

// Fig8b builds the clean-room two-anchor LOS microbenchmark.
func Fig8b(seed uint64, tag geom.Point) (*Fig8bResult, error) {
	env := testbed.CleanEnvironment(seed)
	dep, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: seed})
	if err != nil {
		return nil, err
	}
	snap := dep.Sounding(tag)
	a, err := core.Correct(snap)
	if err != nil {
		return nil, err
	}
	K := a.NumBands()
	res := &Fig8bResult{Freqs: snap.Freqs}
	raw := make([]float64, K)
	cor := make([]float64, K)
	for k := 0; k < K; k++ {
		raw[k] = cmplx.Phase(snap.Tag[k][1][0])
		cor[k] = cmplx.Phase(a.Values[k][1][0])
	}
	rawU := dsp.Unwrap(raw)
	corU := dsp.Unwrap(cor)
	res.RawDeg = make([]float64, K)
	res.CorrectedDeg = make([]float64, K)
	for k := 0; k < K; k++ {
		res.RawDeg[k] = geom.Deg(rawU[k])
		res.CorrectedDeg[k] = geom.Deg(corU[k])
	}
	_, _, res.RawR2 = dsp.LinearFit(res.Freqs, rawU)
	_, _, res.CorrR2 = dsp.LinearFit(res.Freqs, corU)
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 / Fig. 8c — Likelihood maps over space.

// Fig6Result carries the three likelihood views of Fig. 6 plus the tag's
// true position and BLoc's prediction (Fig. 8c).
type Fig6Result struct {
	Tag      geom.Point
	Estimate geom.Point
	Angle    *dsp.Grid // Eq. 15 painted over XY (one anchor)
	Distance *dsp.Grid // Eq. 16 painted over XY (one anchor, hyperbolic)
	Combined *dsp.Grid // Eq. 17 summed over anchors
}

// Fig6 computes the likelihood views for one tag position in the paper
// room. Anchor 1 (a slave) illustrates the angle and distance components.
func (s *Suite) Fig6(tag geom.Point) (*Fig6Result, error) {
	snap := s.Dep.Fork(0xF16).Sounding(tag)
	a, err := core.Correct(snap)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Tag: tag}
	res.Angle = s.Eng.AngleLikelihoodXY(a, 1)
	res.Distance = s.Eng.DistanceLikelihoodXY(a, 1)
	loc, err := s.Eng.LocateAlpha(a)
	if err != nil {
		return nil, err
	}
	res.Combined = loc.Likelihood
	res.Estimate = loc.Estimate
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 4 — GFSK filtered bits.

// Fig4Result holds the two shaped waveforms of Fig. 4.
type Fig4Result struct {
	SPS            int
	RandomBits     []byte
	RandomShaped   []float64
	SoundingBits   []byte
	SoundingShaped []float64
}

// Fig4 shapes a random bit pattern (Fig. 4a: never settles) and a
// run-length sounding pattern (Fig. 4b: settles at ±1).
func Fig4(sps int) *Fig4Result {
	if sps <= 0 {
		sps = 8
	}
	random := []byte{0, 1, 1, 0, 1, 0, 0, 1, 0, 1}
	sounding := []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	return &Fig4Result{
		SPS:            sps,
		RandomBits:     random,
		RandomShaped:   dsp.ShapeBits(random, ble.GaussianBT, sps, 3),
		SoundingBits:   sounding,
		SoundingShaped: dsp.ShapeBits(sounding, ble.GaussianBT, sps, 3),
	}
}
