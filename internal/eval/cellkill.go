package eval

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"sync"
	"time"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/locserver"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// ---------------------------------------------------------------------------
// Cell-kill drill: the supervised fleet (DESIGN.md §15) exists so a cell
// crashing mid-service costs exactly its own blast radius — its tags
// degrade to flagged coarse fallback fixes from a neighbor until the
// supervisor warm-restarts the cell from its durable checkpoint — while
// every other cell's output stays bit-identical to a run with no fault
// at all. This ablation runs the full pipeline twice on the same
// deterministic soundings (real per-cell engines on the paper testbed,
// one tracked tag per cell) and prices the episode: surviving-cell
// divergence, victim accuracy before/after, fallback accuracy while
// down, rounds lost, and the observed restart latency.

// CellKillPhase is one slice of the episode's accuracy.
type CellKillPhase struct {
	Fixes int        // fixes delivered
	Err   ErrorStats // localization error vs ground truth
}

// CellKillResult is the measured cell-kill episode.
type CellKillResult struct {
	Cells          int // fleet size
	AnchorsPerCell int
	Rounds         int    // acquisition rounds offered per tag
	Victim         int    // cell killed
	KillRound      uint32 // round the panic landed in

	// SurvivorMaxDeltaM is the largest distance between a surviving
	// cell's fix in the fault run and the same (tag, round) fix in the
	// no-fault run — the measured cross-cell blast radius, which the
	// isolation design requires to be exactly zero.
	SurvivorMaxDeltaM float64
	Survivor          CellKillPhase // surviving cells, fault run
	SurvivorBaseline  CellKillPhase // same cells and rounds, no-fault run

	VictimNormal CellKillPhase // victim rounds served CSI-grade (pre-kill + post-restart)
	Fallback     CellKillPhase // flagged coarse neighbor fixes while the victim was down
	MissedRounds int           // victim rounds that produced no fix at all

	// DowntimeObserved is kill-detected → running-again as seen by the
	// drill's poller (includes the supervisor's deliberate backoff).
	DowntimeObserved time.Duration

	Final locserver.FleetStats // fleet counters at the end of the fault run
}

const (
	ckCells     = 3
	ckRounds    = 12
	ckKillRound = 6
	ckVictim    = 1
)

// ckTag is the tracked tag of one cell; the hundreds digit encodes the
// home cell so the fallback path's engine choice stays self-describing.
func ckTag(cell int) uint16 { return uint16(cell*100 + 1) }

func ckTagPos(cell int) geom.Point {
	return geom.Pt(-1.2+1.1*float64(cell), -0.8+0.6*float64(cell))
}

// ckFixKey identifies one delivered fix; ckFix is what arrived.
type ckFixKey struct {
	cell  int
	tag   uint16
	round uint32
}

type ckFix struct {
	p        geom.Point
	fallback bool
	n        int // delivery count; exactly-once means 1
}

type ckCollector struct {
	mu  sync.Mutex
	got map[ckFixKey]ckFix // guarded by mu
}

func (c *ckCollector) record(cell int, info locserver.RoundInfo, fix wire.Fix) {
	c.mu.Lock()
	k := ckFixKey{cell: cell, tag: info.Tag, round: info.Round}
	f := c.got[k]
	f.p = geom.Pt(fix.X, fix.Y)
	f.fallback = info.Fallback
	f.n++
	c.got[k] = f
	c.mu.Unlock()
}

func (c *ckCollector) lookup(k ckFixKey) (ckFix, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.got[k]
	return f, ok
}

// ckWait polls cond until it holds or the budget expires.
func ckWait(budget time.Duration, cond func() bool) bool {
	//lint:ignore clockcheck drill harness polls real wall time; it is the test driver, not the server
	deadline := time.Now().Add(budget)
	for !cond() {
		//lint:ignore clockcheck see above
		if time.Now().After(deadline) {
			return false
		}
		//lint:ignore clockcheck see above
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// ckFeedRound offers one acquisition round to every cell: each cell's
// tag sounded by the cell's own deployment fork, reported row by row
// under global anchor IDs, exactly as that cell's anchor daemons would.
func ckFeedRound(f *locserver.Fleet, deps []*testbed.Deployment, round uint32) {
	for cell := 0; cell < ckCells; cell++ {
		tag := ckTag(cell)
		// Same fork-salt convention as anchor.Daemon.MeasureAndReport, so
		// both runs of the drill sound identical channels.
		snap := deps[cell].Fork(uint64(tag)<<32 | uint64(round)).Sounding(ckTagPos(cell))
		anchors := len(deps[cell].Anchors)
		for a := 0; a < anchors; a++ {
			for b := range snap.Bands {
				f.IngestRow(&wire.CSIRow{
					Round:    round,
					TagID:    tag,
					AnchorID: uint8(cell*anchors + a),
					BandIdx:  uint16(b),
					Tag:      snap.Tag[b][a],
					Master:   snap.Master[b][a],
				})
			}
		}
	}
}

// ckRun drives one full episode. With a killer the victim cell panics
// mid-round ckKillRound, two rounds are offered while it is down, and
// the drill waits out the supervised restart before finishing the
// schedule; without one the same rounds run fault-free.
func ckRun(seed uint64, deps []*testbed.Deployment, engines []*core.Engine,
	killer *faultnet.CellKiller) (*ckCollector, locserver.FleetStats, time.Duration, error) {

	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	dir, err := os.MkdirTemp("", "bloc-cellkill-*")
	if err != nil {
		return nil, locserver.FleetStats{}, 0, err
	}
	defer os.RemoveAll(dir)
	stores := make([]*durable.Store, ckCells)
	for i := range stores {
		st, err := durable.Open(fmt.Sprintf("%s/cell-%d", dir, i))
		if err != nil {
			return nil, locserver.FleetStats{}, 0, err
		}
		stores[i] = st
	}

	rec := &ckCollector{got: make(map[ckFixKey]ckFix)}
	cfg := locserver.FleetConfig{
		Cells: ckCells,
		Cell: locserver.Config{
			Anchors:       len(deps[0].Anchors),
			Antennas:      deps[0].Anchors[0].N,
			Bands:         deps[0].Bands,
			RoundDeadline: 200 * time.Millisecond,
			FixQueueDepth: 64,
			Health:        locserver.HealthConfig{Seed: seed},
		},
		OnSnapshot: func(cell int, info locserver.RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			// The home cell's engine carries the geometry and calibration
			// for the tag's anchors; for a fallback round the compute runs
			// on a neighbor, but the victim's engine config still applies.
			home := int(info.Tag) / 100
			if home < 0 || home >= len(engines) {
				return geom.Point{}, fmt.Errorf("cellkill: tag %d maps outside the fleet", info.Tag)
			}
			if info.Coarse {
				res, err := engines[home].LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return res.Estimate, nil
			}
			res, err := engines[home].LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
		OnFix: rec.record,
		Checkpoint: func(cell int) *locserver.CheckpointConfig {
			return &locserver.CheckpointConfig{Store: stores[cell], Interval: 25 * time.Millisecond}
		},
		Supervisor: locserver.SupervisorConfig{
			// A deliberate backoff floor: the drill feeds the down window
			// in microseconds, so 100ms guarantees the fallback rounds land
			// while the victim is genuinely gone.
			BackoffInitial: 100 * time.Millisecond,
			BackoffMax:     200 * time.Millisecond,
			RestartWindow:  5 * time.Second,
			Seed:           seed,
		},
		Logger: quiet,
	}
	if killer != nil {
		cfg.Hooks = killer.Hook
	}
	f, err := locserver.NewFleet(cfg)
	if err != nil {
		return nil, locserver.FleetStats{}, 0, err
	}
	defer f.Close()

	awaitRound := func(round uint32, cells []int) error {
		for _, cell := range cells {
			k := ckFixKey{cell: cell, tag: ckTag(cell), round: round}
			if !ckWait(10*time.Second, func() bool { _, ok := rec.lookup(k); return ok }) {
				return fmt.Errorf("cellkill: cell %d round %d never delivered (stats %+v)",
					cell, round, f.Stats().Agg)
			}
		}
		return nil
	}
	allCells := []int{0, 1, 2}
	survivors := []int{0, 2}

	// Pre-kill steady state; every cell must also have checkpointed at
	// least once so the victim has something to warm-restart from.
	for r := uint32(1); r < ckKillRound; r++ {
		ckFeedRound(f, deps, r)
		if err := awaitRound(r, allCells); err != nil {
			return nil, locserver.FleetStats{}, 0, err
		}
	}
	if killer != nil {
		if !ckWait(2*time.Second, func() bool {
			return f.Stats().Cells[ckVictim].Stats.Checkpoints >= 1
		}) {
			return nil, locserver.FleetStats{}, 0, fmt.Errorf("cellkill: victim never checkpointed")
		}
	}

	// The kill round: with a killer armed the panic lands mid-round and
	// the victim's round may or may not complete before the supervisor
	// tears the incarnation down — that sliver of nondeterminism is part
	// of what the drill prices (MissedRounds).
	ckFeedRound(f, deps, ckKillRound)
	if err := awaitRound(ckKillRound, survivors); err != nil {
		return nil, locserver.FleetStats{}, 0, err
	}
	var downtime time.Duration
	if killer != nil {
		if !ckWait(2*time.Second, func() bool { return !f.Stats().Cells[ckVictim].Running }) {
			return nil, locserver.FleetStats{}, 0, fmt.Errorf("cellkill: victim never went down")
		}
		//lint:ignore clockcheck the drill measures real restart latency on purpose
		downStart := time.Now()

		// Two rounds offered while the victim is down: survivors serve
		// normally, the victim's tag degrades to neighbor fallback fixes.
		for r := uint32(ckKillRound + 1); r <= ckKillRound+2; r++ {
			ckFeedRound(f, deps, r)
			if err := awaitRound(r, allCells); err != nil {
				return nil, locserver.FleetStats{}, 0, err
			}
		}
		if !ckWait(3*time.Second, func() bool {
			cs := f.Stats().Cells[ckVictim]
			return cs.Running && cs.Restarts == 1
		}) {
			return nil, locserver.FleetStats{}, 0, fmt.Errorf("cellkill: victim never restarted")
		}
		//lint:ignore clockcheck see above
		downtime = time.Since(downStart)
	} else {
		for r := uint32(ckKillRound + 1); r <= ckKillRound+2; r++ {
			ckFeedRound(f, deps, r)
			if err := awaitRound(r, allCells); err != nil {
				return nil, locserver.FleetStats{}, 0, err
			}
		}
	}

	// Post-restart rounds: the revived victim serves CSI-grade again.
	for r := uint32(ckKillRound + 3); r <= ckRounds; r++ {
		ckFeedRound(f, deps, r)
		if err := awaitRound(r, allCells); err != nil {
			return nil, locserver.FleetStats{}, 0, err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		return nil, locserver.FleetStats{}, 0, err
	}
	return rec, f.Stats(), downtime, nil
}

// AblationCellKill runs the cell-kill episode against its own no-fault
// twin on identical soundings and reports the measured blast radius.
func AblationCellKill(seed uint64) (*CellKillResult, error) {
	base, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	deps := make([]*testbed.Deployment, ckCells)
	engines := make([]*core.Engine, ckCells)
	for c := 0; c < ckCells; c++ {
		// Each cell is its own room instance: same geometry, independent
		// channel realization.
		deps[c] = base.Fork(0xCE11 + uint64(c))
		eng, err := core.NewEngine(deps[c].Anchors, core.DefaultConfig(deps[c].Env.Room))
		if err != nil {
			return nil, err
		}
		engines[c] = eng
	}
	rowsPerRound := len(deps[0].Anchors) * len(deps[0].Bands)
	killer, err := faultnet.NewCellKiller(faultnet.KillSpec{
		Cell:  ckVictim,
		Event: locserver.HookIngest,
		// Mid-round: half the victim's rows of the kill round have landed.
		Seq: uint64(rowsPerRound)*(ckKillRound-1) + uint64(rowsPerRound)/2,
	})
	if err != nil {
		return nil, err
	}

	baseline, _, _, err := ckRun(seed, deps, engines, nil)
	if err != nil {
		return nil, fmt.Errorf("no-fault run: %w", err)
	}
	fault, fs, downtime, err := ckRun(seed, deps, engines, killer)
	if err != nil {
		return nil, fmt.Errorf("fault run: %w", err)
	}
	if got := len(killer.Fired()); got != 1 {
		return nil, fmt.Errorf("cellkill: scheduled panic fired %d times, want 1", got)
	}

	r := &CellKillResult{
		Cells:            ckCells,
		AnchorsPerCell:   len(deps[0].Anchors),
		Rounds:           ckRounds,
		Victim:           ckVictim,
		KillRound:        ckKillRound,
		DowntimeObserved: downtime,
		Final:            fs,
	}
	var survErrs, survBaseErrs, victimErrs, fallbackErrs []float64
	for cell := 0; cell < ckCells; cell++ {
		truth := ckTagPos(cell)
		for round := uint32(1); round <= ckRounds; round++ {
			k := ckFixKey{cell: cell, tag: ckTag(cell), round: round}
			ff, fok := fault.lookup(k)
			bf, bok := baseline.lookup(k)
			if (fok && ff.n != 1) || (bok && bf.n != 1) {
				return nil, fmt.Errorf("cellkill: %+v delivered more than once", k)
			}
			if cell != ckVictim {
				if !fok || !bok {
					return nil, fmt.Errorf("cellkill: surviving cell %d round %d missing a fix", cell, round)
				}
				if d := ff.p.Dist(bf.p); d > r.SurvivorMaxDeltaM {
					r.SurvivorMaxDeltaM = d
				}
				survErrs = append(survErrs, ff.p.Dist(truth))
				survBaseErrs = append(survBaseErrs, bf.p.Dist(truth))
				continue
			}
			switch {
			case !fok:
				r.MissedRounds++
			case ff.fallback:
				fallbackErrs = append(fallbackErrs, ff.p.Dist(truth))
			default:
				victimErrs = append(victimErrs, ff.p.Dist(truth))
			}
		}
	}
	sort.Float64s(survErrs)
	sort.Float64s(survBaseErrs)
	sort.Float64s(victimErrs)
	sort.Float64s(fallbackErrs)
	r.Survivor = CellKillPhase{Fixes: len(survErrs), Err: NewErrorStats(survErrs)}
	r.SurvivorBaseline = CellKillPhase{Fixes: len(survBaseErrs), Err: NewErrorStats(survBaseErrs)}
	r.VictimNormal = CellKillPhase{Fixes: len(victimErrs), Err: NewErrorStats(victimErrs)}
	r.Fallback = CellKillPhase{Fixes: len(fallbackErrs), Err: NewErrorStats(fallbackErrs)}
	return r, nil
}

// CellKillTable renders the cell-kill episode.
func CellKillTable(r *CellKillResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation — cell-kill drill (fault isolation; %d cells × %d anchors, "+
			"cell %d killed mid-round %d of %d)", r.Cells, r.AnchorsPerCell, r.Victim, r.KillRound, r.Rounds),
		Columns: []string{"measure", "value"},
	}
	t.AddRow("surviving-cell max divergence vs no-fault run (cm)", Cm(r.SurvivorMaxDeltaM))
	t.AddRow("surviving-cell median, fault run (cm)", Cm(r.Survivor.Err.Median))
	t.AddRow("surviving-cell median, no-fault run (cm)", Cm(r.SurvivorBaseline.Err.Median))
	t.AddRow("victim CSI-grade median (cm)", Cm(r.VictimNormal.Err.Median))
	t.AddRow("victim fallback fixes while down / median (cm)",
		fmt.Sprintf("%d / %s", r.Fallback.Fixes, Cm(r.Fallback.Err.Median)))
	t.AddRow("victim rounds lost outright", fmt.Sprintf("%d", r.MissedRounds))
	t.AddRow("observed downtime incl. backoff (ms)",
		fmt.Sprintf("%d", r.DowntimeObserved.Milliseconds()))
	t.AddRow("cell restarts / panics recovered", fmt.Sprintf("%d / %d",
		r.Final.Agg.CellRestarts, r.Final.Agg.PanicsRecovered))
	t.AddRow("warm restores after the kill", fmt.Sprintf("%d",
		r.Final.Cells[r.Victim].Stats.WarmRestores))
	t.AddRow("cells quarantined / breaker opens", fmt.Sprintf("%d / %d",
		r.Final.Agg.CellsQuarantined, r.Final.Agg.BreakerOpens))
	return t
}
