package eval

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/vicon"
)

// SamplePositions draws n tag positions uniformly inside the room (inset
// by margin from the walls) with a minimum pairwise spacing, mirroring the
// paper's 1700 manually-placed locations with ≈10 cm nearest-neighbor
// spacing (§7). Rejection sampling is used; if the spacing constraint
// cannot be met the most recent candidate is accepted anyway after a
// bounded number of attempts, so the function always returns n points.
func SamplePositions(room geom.Rect, n int, minSep, margin float64, seed uint64) []geom.Point {
	inner := room.Inset(margin)
	rng := rand.New(rand.NewPCG(seed, 0x705))
	pts := make([]geom.Point, 0, n)
	const maxAttempts = 60
	for len(pts) < n {
		var cand geom.Point
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			cand = geom.Pt(
				inner.Min.X+rng.Float64()*inner.Width(),
				inner.Min.Y+rng.Float64()*inner.Height(),
			)
			ok = true
			for _, p := range pts {
				if p.DistSq(cand) < minSep*minSep {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		pts = append(pts, cand) // accept the last candidate even if crowded
	}
	return pts
}

// Dataset is an acquired measurement campaign: ground-truth positions and
// the CSI snapshot measured at each.
type Dataset struct {
	Truth     []geom.Point    // VICON-observed ground truth
	Snapshots []*csi.Snapshot // one acquisition per position
}

// AcquireOptions configures Acquire.
type AcquireOptions struct {
	Positions int     // number of tag positions (default 300)
	MinSep    float64 // minimum spacing between positions (default 0.04 m)
	Margin    float64 // wall margin (default 0.25 m)
	Seed      uint64
	Workers   int                   // parallel acquisition workers (default NumCPU)
	Progress  func(done, total int) // optional progress callback
}

// Acquire samples positions and measures a snapshot at each, observing
// ground truth through the VICON oracle. Acquisition parallelizes over
// positions; each position gets an independent deployment clone seeded
// deterministically so results do not depend on worker scheduling.
func Acquire(d *testbed.Deployment, opts AcquireOptions) (*Dataset, error) {
	if opts.Positions <= 0 {
		opts.Positions = 300
	}
	//lint:ignore floateq unset option sentinel is exactly zero
	if opts.MinSep == 0 {
		opts.MinSep = 0.04
	}
	//lint:ignore floateq unset option sentinel is exactly zero
	if opts.Margin == 0 {
		opts.Margin = 0.25
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	positions := SamplePositions(d.Env.Room, opts.Positions, opts.MinSep, opts.Margin, opts.Seed)
	oracle := vicon.New(vicon.DefaultJitterM, opts.Seed^0xF00D)

	ds := &Dataset{
		Truth:     make([]geom.Point, len(positions)),
		Snapshots: make([]*csi.Snapshot, len(positions)),
	}
	for i, p := range positions {
		ds.Truth[i] = oracle.Observe(p)
	}

	var (
		wg   sync.WaitGroup
		next = make(chan int)
		done = make(chan struct{}, len(positions))
	)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ds.Snapshots[i] = d.Fork(uint64(i)).Sounding(positions[i])
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := range positions {
			next <- i
		}
		close(next)
	}()
	completed := 0
	for range positions {
		<-done
		completed++
		if opts.Progress != nil {
			opts.Progress(completed, len(positions))
		}
	}
	wg.Wait()
	for i, s := range ds.Snapshots {
		if s == nil {
			return nil, fmt.Errorf("eval: snapshot %d missing after acquisition", i)
		}
	}
	return ds, nil
}

// Len returns the number of positions in the dataset.
func (ds *Dataset) Len() int { return len(ds.Truth) }

// SaveDataset writes the dataset to w: for each position, the VICON truth
// (two float64, little-endian) followed by the serialized snapshot. The
// record format lets a campaign be collected once and replayed through
// any pipeline configuration.
func SaveDataset(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(ds.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("eval: write header: %w", err)
	}
	for i := 0; i < ds.Len(); i++ {
		var pos [16]byte
		binary.LittleEndian.PutUint64(pos[:8], math.Float64bits(ds.Truth[i].X))
		binary.LittleEndian.PutUint64(pos[8:], math.Float64bits(ds.Truth[i].Y))
		if _, err := bw.Write(pos[:]); err != nil {
			return fmt.Errorf("eval: write truth %d: %w", i, err)
		}
		if _, err := ds.Snapshots[i].WriteTo(bw); err != nil {
			return fmt.Errorf("eval: write snapshot %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("eval: read header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxPositions = 1 << 20
	if n == 0 || n > maxPositions {
		return nil, fmt.Errorf("eval: implausible dataset size %d", n)
	}
	ds := &Dataset{
		Truth:     make([]geom.Point, 0, n),
		Snapshots: make([]*csi.Snapshot, 0, n),
	}
	for i := uint64(0); i < n; i++ {
		var pos [16]byte
		if _, err := io.ReadFull(br, pos[:]); err != nil {
			return nil, fmt.Errorf("eval: read truth %d: %w", i, err)
		}
		ds.Truth = append(ds.Truth, geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(pos[:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(pos[8:])),
		))
		snap, err := csi.ReadSnapshot(br)
		if err != nil {
			return nil, fmt.Errorf("eval: read snapshot %d: %w", i, err)
		}
		ds.Snapshots = append(ds.Snapshots, snap)
	}
	return ds, nil
}
