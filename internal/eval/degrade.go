package eval

import (
	"fmt"
	"math"
	"sort"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/fingerprint"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// ---------------------------------------------------------------------------
// Degradation-ladder ablation: the serving plane's ladder (DESIGN.md §16)
// inserts a fingerprint rung between the CSI grades and the RSSI-centroid
// floor, and that rung only earns its slot if it strictly beats the
// centroid on measured error — the invariant bloc-bench enforces. (On the
// simulated testbed the survey memorizes the deterministic multipath
// field, so the fingerprint rung can even rival CSI at the near-wall
// spots sampled here; on hardware, survey drift and device diversity push
// it well below CSI, which is why it ranks below both CSI rungs.) This ablation evaluates every rung on
// identical soundings at off-grid positions across the paper room: the
// CSI rungs run the real estimator (with and without a settled tracker
// prior), the fingerprint rungs run a KNN lookup against an offline
// rfsim site survey through the live median+EWMA filter (once with the
// full signature, once truncated to the 2-anchor partial-match floor),
// and the centroid rung is the seed's only degraded mode. The fleet's
// failover machinery is deliberately absent: per-rung estimator accuracy
// is a property of the estimators, and the chaos drill
// (`make chaos-degrade`) separately proves the ladder engages the rungs
// in order.

// DegradeRung is one measured rung of the ladder.
type DegradeRung struct {
	Name string
	Err  ErrorStats
}

// DegradeResult is the per-rung accuracy comparison.
type DegradeResult struct {
	Spots      int // evaluation positions
	Rounds     int // warmup rounds feeding the live-RSSI filter per spot
	GridPoints int // fingerprint survey size
	StepM      float64

	Rungs []DegradeRung // ladder order: gated, full, fingerprint, partial, centroid
}

// Rung returns the named rung's stats (zero value if absent).
func (r *DegradeResult) Rung(name string) ErrorStats {
	for _, g := range r.Rungs {
		if g.Name == name {
			return g.Err
		}
	}
	return ErrorStats{}
}

// Rung names, also used by the results assertions in bloc-bench.
const (
	RungGated       = "gated CSI (settled tracker prior)"
	RungFull        = "full CSI (quorum met)"
	RungFingerprint = "fingerprint KNN (full signature)"
	RungPartial     = "fingerprint KNN (2-anchor partial)"
	RungCentroid    = "RSSI centroid (pre-ladder floor)"
)

const (
	dgSpots  = 12
	dgRounds = 5 // live filter warmup per spot (median window default)
)

// dgSpot places evaluation positions deterministically off the survey
// grid: low-discrepancy fractional strides keep them spread over the
// room without a random source, and the 0.4 m inset keeps them inside
// the surveyed area.
func dgSpot(room geom.Rect, i int) geom.Point {
	inner := room.Inset(0.4)
	fx := math.Mod(0.37*float64(i)+0.13, 1)
	fy := math.Mod(0.71*float64(i)+0.29, 1)
	return geom.Pt(inner.Min.X+fx*inner.Width(), inner.Min.Y+fy*inner.Height())
}

// AblationDegrade measures localization error per ladder rung on the
// paper testbed.
func AblationDegrade(seed uint64) (*DegradeResult, error) {
	dep, err := testbed.Paper(seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	anchors := len(dep.Anchors)
	// The offline survey: same fork-salt convention as bloc-dataset
	// -survey, so the ablation measures the artifact the tooling ships.
	db, err := fingerprint.Survey(dep.Env.Room, anchors,
		func(point, rep int, p geom.Point) *csi.Snapshot {
			return dep.Fork(0x5E0<<16 | uint64(point)<<4 | uint64(rep)).Sounding(p)
		}, fingerprint.SurveyOptions{})
	if err != nil {
		return nil, fmt.Errorf("degrade: survey: %w", err)
	}

	errsByRung := map[string][]float64{}
	record := func(rung string, p geom.Point, truth geom.Point) {
		errsByRung[rung] = append(errsByRung[rung], p.Dist(truth))
	}
	for i := 0; i < dgSpots; i++ {
		truth := dgSpot(dep.Env.Room, i)
		filt := fingerprint.NewFilter(anchors, fingerprint.FilterOptions{})
		var snap *csi.Snapshot
		// A short dwell at the spot warms the median+EWMA filter exactly
		// like a live tag's rounds would; the CSI rungs use the final
		// round's snapshot.
		for r := 0; r < dgRounds; r++ {
			snap = dep.Fork(uint64(i+1)<<32 | uint64(r+1)).Sounding(truth)
			filt.Observe(fingerprint.Signature(snap))
		}

		full, err := eng.Locate(snap)
		if err != nil {
			return nil, fmt.Errorf("degrade: spot %d full CSI: %w", i, err)
		}
		record(RungFull, full.Estimate, truth)

		// A settled tracker: the prior ellipse a converged Kalman filter
		// would hand the gated search (gated ablation convention).
		prior := core.Prior{Center: full.Estimate, SemiMajor: 0.5, SemiMinor: 0.5}
		gated, err := eng.LocateOpts(snap, core.LocateOptions{Prior: &prior})
		if err != nil {
			return nil, fmt.Errorf("degrade: spot %d gated CSI: %w", i, err)
		}
		record(RungGated, gated.Estimate, truth)

		sig := filt.Signature()
		fp, err := db.Locate(sig)
		if err != nil {
			return nil, fmt.Errorf("degrade: spot %d fingerprint: %w", i, err)
		}
		record(RungFingerprint, fp, truth)

		// The partial-match floor: only two anchors heard the tag — below
		// the trilateration quorum, exactly the regime the fingerprint rung
		// exists to serve.
		part := append([]float64(nil), sig...)
		for a := 2; a < len(part); a++ {
			part[a] = math.NaN()
		}
		pp, err := db.Locate(part)
		if err != nil {
			return nil, fmt.Errorf("degrade: spot %d partial fingerprint: %w", i, err)
		}
		record(RungPartial, pp, truth)

		cent, err := eng.LocateRSSI(snap)
		if err != nil {
			return nil, fmt.Errorf("degrade: spot %d centroid: %w", i, err)
		}
		record(RungCentroid, cent.Estimate, truth)
	}

	res := &DegradeResult{
		Spots: dgSpots, Rounds: dgRounds,
		GridPoints: len(db.Points), StepM: db.StepM,
	}
	for _, name := range []string{RungGated, RungFull, RungFingerprint, RungPartial, RungCentroid} {
		errs := errsByRung[name]
		sort.Float64s(errs)
		res.Rungs = append(res.Rungs, DegradeRung{Name: name, Err: NewErrorStats(errs)})
	}
	return res, nil
}

// DegradeTable renders the per-rung comparison.
func DegradeTable(r *DegradeResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Ablation — degradation ladder (per-rung accuracy; %d spots × %d rounds, "+
			"%d-point survey @ %.2g m pitch)", r.Spots, r.Rounds, r.GridPoints, r.StepM),
		Columns: []string{"rung", "median (cm)", "p90 (cm)", "mean (cm)"},
	}
	for _, g := range r.Rungs {
		t.AddRow(g.Name, Cm(g.Err.Median), Cm(g.Err.P90), Cm(g.Err.Mean))
	}
	fpMed := r.Rung(RungFingerprint).Median
	ctMed := r.Rung(RungCentroid).Median
	if fpMed > 0 && ctMed > 0 {
		t.AddRow("fingerprint / centroid median ratio",
			fmt.Sprintf("%.2f", fpMed/ctMed), "", "")
	}
	return t
}
