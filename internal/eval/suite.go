package eval

import (
	"fmt"
	"runtime"
	"sync"

	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/testbed"
)

// Estimator is a localization scheme under test.
type Estimator func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error)

// Named estimators for the compared schemes.
var (
	EstimatorBLoc Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.Locate(s)
	}
	EstimatorAoA Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.LocateAoA(s)
	}
	EstimatorShortestDistance Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.LocateShortestDistance(s)
	}
	EstimatorRSSI Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.LocateRSSI(s)
	}
	EstimatorAoASoft Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.LocateAoASoft(s)
	}
	EstimatorMUSIC Estimator = func(eng *core.Engine, s *csi.Snapshot) (*core.Result, error) {
		return eng.LocateMUSIC(s)
	}
)

// Suite runs the paper's experiments on one shared dataset, exactly as the
// evaluation reuses its 1700 measured positions across §8.2–§8.8.
type Suite struct {
	Dep     *testbed.Deployment
	Eng     *core.Engine
	DS      *Dataset
	Seed    uint64
	Workers int
}

// SuiteOptions configures NewSuite.
type SuiteOptions struct {
	Seed      uint64
	Positions int // dataset size (paper: 1700; default 300 for quick runs)
	Workers   int
	Progress  func(done, total int)
	// Deployment overrides the default paper testbed (nil → testbed.Paper).
	Deployment *testbed.Deployment
}

// NewSuite builds the paper testbed, acquires the shared dataset and
// prepares the localization engine.
func NewSuite(opts SuiteOptions) (*Suite, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	dep := opts.Deployment
	if dep == nil {
		var err error
		dep, err = testbed.Paper(opts.Seed)
		if err != nil {
			return nil, err
		}
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		return nil, err
	}
	ds, err := Acquire(dep, AcquireOptions{
		Positions: opts.Positions,
		Seed:      opts.Seed,
		Workers:   opts.Workers,
		Progress:  opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return &Suite{Dep: dep, Eng: eng, DS: ds, Seed: opts.Seed, Workers: opts.Workers}, nil
}

// Errors localizes every dataset position with the estimator on the given
// engine (which may differ from s.Eng for sweep variants) and returns the
// per-position errors in dataset order. Snapshots may be transformed first
// (band/anchor/antenna selection) via prep; pass nil for identity.
func (s *Suite) Errors(eng *core.Engine, est Estimator, prep func(*csi.Snapshot) (*csi.Snapshot, error)) ([]float64, error) {
	n := s.DS.Len()
	errs := make([]float64, n)
	firstErr := make([]error, 1)
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				snap := s.DS.Snapshots[i]
				if prep != nil {
					var err error
					snap, err = prep(snap)
					if err != nil {
						mu.Lock()
						if firstErr[0] == nil {
							firstErr[0] = fmt.Errorf("position %d: %w", i, err)
						}
						mu.Unlock()
						continue
					}
				}
				res, err := est(eng, snap)
				if err != nil {
					mu.Lock()
					if firstErr[0] == nil {
						firstErr[0] = fmt.Errorf("position %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				errs[i] = res.Estimate.Dist(s.DS.Truth[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr[0] != nil {
		return nil, firstErr[0]
	}
	return errs, nil
}
