package locserver

import (
	"errors"
	"time"
)

// Per-anchor-link circuit breakers (DESIGN.md §15). Every server→anchor
// link (the connection a fix broadcast or heartbeat probe writes to)
// carries a breaker beneath the anchors' reconnect logic:
//
//	closed ──Threshold consecutive send failures──▶ open
//	open ──Cooldown elapsed──▶ half-open (exactly one probe write)
//	half-open ──probe succeeds──▶ closed
//	half-open ──probe fails──▶ open (fresh cooldown)
//
// While the breaker is open, sends to the link are skipped outright
// (errBreakerOpen) instead of attempted: a wedged TCP buffer can stall a
// write for the kernel's full retransmission timeout, and one stuck
// anchor must never hold the broadcast path hostage for the rest of the
// fleet. A skipped heartbeat still counts toward the miss-prune
// threshold, so a link whose breaker never re-closes is eventually
// pruned by the existing liveness plane; a link that heals is re-closed
// by the first successful probe. Anchor daemons reconnect with a fresh
// connection — and therefore a fresh, closed breaker — so the breaker
// only ever judges one connection's lifetime.

// errBreakerOpen reports a send skipped because the link's breaker is
// open and still cooling down.
var errBreakerOpen = errors.New("locserver: circuit breaker open, send skipped")

// BreakerConfig tunes the per-anchor-link circuit breakers. The zero
// value selects the documented defaults; a negative Threshold disables
// breakers entirely (every send is attempted).
type BreakerConfig struct {
	// Threshold opens the breaker after this many consecutive send
	// failures on one link (default 3). Negative disables breakers.
	Threshold int
	// Cooldown is how long an open breaker holds before allowing a
	// single half-open probe write (default 2s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// breakerState is the breaker position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one anchor link's circuit breaker. It is owned by a client
// and every field is guarded by that client's writeMu: breaker decisions
// serialize with the writes they gate, so the half-open state can admit
// exactly one probe.
type breaker struct {
	cfg      BreakerConfig
	state    breakerState // guarded by writeMu
	fails    int          // consecutive send failures; guarded by writeMu
	openedAt time.Time    // when the breaker last opened; guarded by writeMu
}

// allowLocked decides whether a send may be attempted now. probe reports
// that this send is the half-open probe (counted in stats by the
// caller). Caller holds the owning client's writeMu.
func (b *breaker) allowLocked(now time.Time) (ok, probe bool) {
	if b.cfg.Threshold < 0 {
		return true, false
	}
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		return true, true
	default: // breakerHalfOpen: a probe is already in flight
		return false, false
	}
}

// resultLocked folds one attempted send's outcome into the breaker and
// reports whether the breaker transitioned into open (for stats). Caller
// holds the owning client's writeMu.
func (b *breaker) resultLocked(sent bool, now time.Time) (opened bool) {
	if b.cfg.Threshold < 0 {
		return false
	}
	if sent {
		b.state = breakerClosed
		b.fails = 0
		return false
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.cfg.Threshold {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	return false
}
