package locserver

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// Fleet shards the deployment into supervised cells (DESIGN.md §15).
// Each cell is a complete, independent Server — its own anchor subset,
// fix queue, health plane, and durable checkpoint store — so a fault in
// one cell (a panicking estimator, a poisoned round, a wedged anchor
// link) is contained to 1/N of the floor instead of taking down every
// tag at once. A router maps global anchor IDs onto cells
// arithmetically and remembers each tag's home cell; a per-cell
// supervisor goroutine restarts a crashed cell with jittered
// exponential backoff, warm-loading its last checkpoint; and while a
// cell is down its tags degrade gracefully to flagged coarse fixes
// computed by a neighbor cell instead of going silent.

// FleetConfig describes a sharded deployment.
type FleetConfig struct {
	// Cells is the number of cells (≥ 1). Cells × Cell.Anchors must fit
	// the wire protocol's 8-bit anchor ID space.
	Cells int
	// CellAddrs optionally pins each cell's listen address (len ==
	// Cells); empty means every cell listens on an ephemeral localhost
	// port (in-process fleets, tests).
	CellAddrs []string
	// Cell is the per-cell server template. Anchors is the PER-CELL
	// anchor count; rows arrive with global anchor IDs and are
	// renumbered into cell-local space by the router. The template's
	// OnSnapshot/OnFix/Hook/OnPanic/Checkpoint/Logger must be nil — the
	// fleet owns those seams (use the fleet-level fields below).
	Cell Config
	// OnSnapshot localizes one cell's completed round; see
	// Config.OnSnapshot. The cell index is prepended so an embedder can
	// keep per-cell calibration and trackers.
	OnSnapshot func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error)
	// OnFix, when set, observes every delivered fix with its cell. For
	// fallback fixes the cell index is the tag's HOME cell (the one
	// that was down), not the neighbor that computed it.
	OnFix func(cell int, info RoundInfo, fix wire.Fix)
	// Checkpoint, when set, returns cell i's durable checkpoint plane;
	// it is re-invoked on every restart, so returning the same Store
	// makes the revived cell warm-load the state its predecessor
	// checkpointed. Return nil to disable persistence for a cell.
	Checkpoint func(cell int) *CheckpointConfig
	// Hooks, when set, returns cell i's instrumentation hook (see
	// Config.Hook); fault drills schedule cell kills through it.
	Hooks func(cell int) func(event string)
	// Supervisor tunes restart backoff and the cell health state
	// machine; the zero value selects the documented defaults.
	Supervisor SupervisorConfig
	// Logger defaults to slog.Default(); each cell logs with a "cell"
	// attribute.
	Logger *slog.Logger
}

// cell is one supervised shard: the live Server incarnation plus the
// restart bookkeeping that outlives it.
type cell struct {
	idx     int
	panicCh chan string      // coalesced panic reports to the supervisor
	fln     *net.TCPListener // fleet-owned listener; outlives incarnations (see ingress.go)

	mu       sync.Mutex
	srv      *Server   // live incarnation; nil while restarting; guarded by mu
	running  bool      // guarded by mu
	gen      uint64    // incarnation counter; stale panic reports are dropped; guarded by mu
	restarts int       // completed supervisor restarts; guarded by mu
	base     Stats     // counters inherited from dead incarnations; guarded by mu
	sup      *supState // restart window / backoff / health state; fields guarded by mu
}

// reportPanic forwards one recovered panic to the supervisor unless it
// came from an incarnation the supervisor already gave up on. The send
// is nonblocking: panics during a restart coalesce into the one report
// already queued.
func (c *cell) reportPanic(gen uint64, where string) {
	c.mu.Lock()
	stale := gen != c.gen
	c.mu.Unlock()
	if stale {
		return
	}
	select {
	case c.panicCh <- where:
	default:
	}
}

// Fleet is a set of supervised cells behind one ingest facade.
type Fleet struct {
	cfg    FleetConfig
	log    *slog.Logger
	rt     *router
	fb     *fallbackCollector
	cells  []*cell
	closed chan struct{}
	wg     sync.WaitGroup
	now    func() time.Time // clock hook (tests); immutable after NewFleet

	mu       sync.Mutex
	closing  bool // guarded by mu
	fbFixes  int  // fallback fixes delivered for down cells; guarded by mu
	fbPanics int  // panics recovered on the fallback path; guarded by mu
}

// NewFleet starts every cell and its supervisor.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Cells < 1 {
		return nil, fmt.Errorf("locserver: fleet needs at least 1 cell, got %d", cfg.Cells)
	}
	if cfg.OnSnapshot == nil {
		return nil, errors.New("locserver: FleetConfig.OnSnapshot required")
	}
	if len(cfg.CellAddrs) != 0 && len(cfg.CellAddrs) != cfg.Cells {
		return nil, fmt.Errorf("locserver: %d cell addrs for %d cells", len(cfg.CellAddrs), cfg.Cells)
	}
	if cfg.Cells*cfg.Cell.Anchors > 0xFF {
		return nil, fmt.Errorf("locserver: %d cells × %d anchors exceeds the 8-bit anchor ID space",
			cfg.Cells, cfg.Cell.Anchors)
	}
	if cfg.Cell.OnSnapshot != nil || cfg.Cell.OnFix != nil || cfg.Cell.Hook != nil ||
		cfg.Cell.OnPanic != nil || cfg.Cell.Checkpoint != nil {
		return nil, errors.New("locserver: fleet cell template must leave callbacks and checkpointing to FleetConfig")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	f := &Fleet{
		cfg:    cfg,
		log:    cfg.Logger,
		rt:     newRouter(cfg.Cells, cfg.Cell.Anchors),
		fb:     newFallbackCollector(cfg.Cell.Anchors, cfg.Cell.Antennas, cfg.Cell.Bands),
		closed: make(chan struct{}),
		now:    time.Now,
	}
	for i := 0; i < cfg.Cells; i++ {
		c := &cell{
			idx:     i,
			panicCh: make(chan string, 1),
			sup:     newSupState(cfg.Supervisor, uint64(i)),
			gen:     1,
		}
		// The listener belongs to the fleet, not the incarnation: the
		// cell's address stays dialable across restarts, and the downtime
		// ingress accepts on it while the supervisor rebuilds the server.
		ln, err := net.Listen("tcp", f.listenAddr(i))
		if err == nil {
			c.fln = ln.(*net.TCPListener)
			var srv *Server
			srv, err = f.newCellServer(c, 1)
			if err != nil {
				c.fln.Close()
			} else {
				c.mu.Lock()
				c.srv = srv
				c.running = true
				c.mu.Unlock()
			}
		}
		if err != nil {
			for _, prev := range f.cells {
				prev.mu.Lock()
				psrv := prev.srv
				prev.mu.Unlock()
				psrv.Close()
				prev.fln.Close()
			}
			return nil, fmt.Errorf("locserver: cell %d: %w", i, err)
		}
		f.cells = append(f.cells, c)
	}
	for _, c := range f.cells {
		f.wg.Add(1)
		go f.supervise(c)
	}
	return f, nil
}

// listenAddr returns cell i's configured listen address.
func (f *Fleet) listenAddr(i int) string {
	if len(f.cfg.CellAddrs) > 0 {
		return f.cfg.CellAddrs[i]
	}
	return "127.0.0.1:0"
}

// newCellServer builds one cell incarnation, binding the fleet seams
// (localization, fix accounting, hooks, panic reports, checkpointing)
// into the template config. A fresh incarnation with a Checkpoint store
// warm-restores inside NewWithListener before serving a single row.
func (f *Fleet) newCellServer(c *cell, gen uint64) (*Server, error) {
	idx := c.idx
	cc := f.cfg.Cell
	cc.Logger = f.log.With("cell", idx)
	cc.OnSnapshot = func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		return f.cfg.OnSnapshot(idx, info, snap)
	}
	if f.cfg.OnFix != nil {
		cc.OnFix = func(info RoundInfo, fix wire.Fix) { f.cfg.OnFix(idx, info, fix) }
	}
	if f.cfg.Hooks != nil {
		cc.Hook = f.cfg.Hooks(idx)
	}
	cc.OnPanic = func(where string, _ any) { c.reportPanic(gen, where) }
	if f.cfg.Checkpoint != nil {
		cc.Checkpoint = f.cfg.Checkpoint(idx)
	}
	return NewWithListener(newListenerLease(c.fln), cc)
}

// supervise is cell c's supervisor goroutine: it waits for panic
// reports and runs the restart cycle until the fleet closes.
func (f *Fleet) supervise(c *cell) {
	defer f.wg.Done()
	for {
		select {
		case <-f.closed:
			return
		case where := <-c.panicCh:
			if !f.restartCell(c, where) {
				return
			}
		}
	}
}

// restartCell runs one crash-only restart cycle: retire the dead
// incarnation (folding its counters into the cell's base so no history
// is lost), advance the restart window and health state, sit out the
// quarantine cooldown if one was earned, back off with jitter, then
// rebuild the cell — which warm-loads its durable checkpoint. Returns
// false when the fleet closed mid-cycle.
func (f *Fleet) restartCell(c *cell, where string) bool {
	now := f.now()
	c.mu.Lock()
	c.running = false
	c.gen++
	gen := c.gen
	srv := c.srv
	c.srv = nil
	st := c.sup.recordRestartLocked(now)
	backoff := c.sup.backoffLocked()
	cooldown := time.Duration(0)
	if st == cellQuarantined {
		cooldown = c.sup.cfg.QuarantineCooldown
	}
	c.mu.Unlock()
	f.log.Warn("cell crashed, supervisor restarting it",
		"cell", c.idx, "where", where, "state", st.String(),
		"backoff", backoff, "cooldown", cooldown)
	if srv != nil {
		srv.Close()
		final := srv.Stats()
		c.mu.Lock()
		c.base = addCounters(c.base, retireStats(final))
		c.mu.Unlock()
	}
	// The dead incarnation's acceptLoop has exited (Close waits for it),
	// so the fleet can accept on the cell's persistent listener for the
	// whole down window: TCP anchors keep their connection target, and
	// their rows become fallback fixes instead of being refused.
	ing := f.startIngress(c)
	if !f.sleep(cooldown) || !f.sleep(backoff) {
		ing.stop()
		return false
	}
	for {
		ing.stop() // quiesce the listener before leasing it to the new incarnation
		srv2, err := f.newCellServer(c, gen)
		if err != nil {
			f.log.Error("cell rebuild failed, retrying", "cell", c.idx, "err", err)
			ing = f.startIngress(c)
			if !f.sleep(c.sup.cfg.BackoffMax) {
				ing.stop()
				return false
			}
			continue
		}
		// Drop any panic report that raced in from the dying incarnation
		// (its gen is stale, but it may have been queued before gen
		// advanced), then drop the cell's fallback buckets: new rounds
		// belong to the revived cell, and a half-filled bucket completing
		// later would double-fix a round the cell also completes.
		select {
		case <-c.panicCh:
		default:
		}
		f.fb.drop(c.idx)
		c.mu.Lock()
		f.mu.Lock()
		closing := f.closing
		f.mu.Unlock()
		if closing {
			// Close already swept the cells; it will not see srv2, so we
			// must retire it ourselves.
			c.mu.Unlock()
			srv2.Close()
			return false
		}
		c.srv = srv2
		c.running = true
		c.restarts++
		c.mu.Unlock()
		f.log.Info("cell restarted", "cell", c.idx, "gen", gen, "state", st.String())
		return true
	}
}

// sleep waits d of real time (restart backoff and quarantine cooldown
// must hold off the actual wall clock) unless the fleet closes first.
func (f *Fleet) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	//lint:ignore clockcheck restart backoff sleeps on the real scheduler by design
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.closed:
		return false
	case <-t.C:
		return true
	}
}

// IngestRow routes one global-anchor-ID row to its cell, renumbering
// the anchor into cell-local space. Rows for a down cell feed the
// fallback collector instead, so the cell's tags keep receiving flagged
// coarse fixes from a neighbor while the supervisor restarts it. Safe
// to call from any goroutine; a row is delivered to exactly one of the
// cell server or the fallback collector.
func (f *Fleet) IngestRow(row *wire.CSIRow) {
	ci := f.rt.cellOfAnchor(int(row.AnchorID))
	if ci < 0 {
		f.log.Warn("row from anchor outside the fleet", "anchor", row.AnchorID)
		return
	}
	f.rt.noteTag(row.TagID, ci)
	local := *row
	local.AnchorID = uint8(f.rt.localAnchor(int(row.AnchorID)))
	c := f.cells[ci]
	c.mu.Lock()
	srv, running := c.srv, c.running
	c.mu.Unlock()
	if running && srv != nil {
		srv.IngestRow(&local)
		return
	}
	if snap, done := f.fb.add(ci, &local); done {
		f.deliverFallback(ci, row.TagID, row.Round, snap)
	}
}

// deliverFallback localizes a down cell's completed round on the next
// running neighbor and delivers the flagged coarse fix under the tag's
// home cell. The estimator callbacks run with panic recovery, like the
// cell fix path (recoverPanic): the fallback plane serves tags exactly
// when a cell is already down, so a panicking neighbor-cell estimator
// must drop the one fix, not propagate into whichever goroutine called
// Fleet.IngestRow and take the whole process with it.
func (f *Fleet) deliverFallback(home int, tag uint16, round uint32, snap *csi.Snapshot) {
	defer func() {
		if r := recover(); r != nil {
			f.mu.Lock()
			f.fbPanics++
			f.mu.Unlock()
			f.log.Error("panic recovered on the fallback fix path; fix dropped",
				"home", home, "tag", tag, "round", round, "panic", fmt.Sprint(r))
		}
	}()
	nb := f.nextRunning(home)
	if nb < 0 {
		return // whole fleet down; nothing can serve this round
	}
	// The fallback plane serves at the fleet's best degraded rung: with a
	// fingerprint-capable estimator the neighbor answers a KNN lookup,
	// otherwise it computes the centroid floor (DESIGN.md §16). No
	// hysteresis applies — the home cell's ladder state died with it.
	tier := TierCentroid
	if f.cfg.Cell.Fingerprint {
		tier = TierFingerprint
	}
	info := RoundInfo{Tag: tag, Round: round, Coarse: true, Fallback: true, Tier: tier}
	loc, err := f.cfg.OnSnapshot(nb, info, snap)
	if err != nil {
		f.log.Warn("fallback fix failed", "home", home, "neighbor", nb,
			"tag", tag, "round", round, "err", err)
		return
	}
	f.mu.Lock()
	f.fbFixes++
	f.mu.Unlock()
	fix := wire.Fix{Round: round, TagID: tag, X: loc.X, Y: loc.Y}
	if f.cfg.OnFix != nil {
		f.cfg.OnFix(home, info, fix)
	}
	f.log.Info("fallback fix served by neighbor", "home", home, "neighbor", nb,
		"tag", tag, "round", round)
}

// nextRunning returns the first running cell after `from` in ring
// order (possibly `from` itself if it already came back), or -1 when
// every cell is down.
func (f *Fleet) nextRunning(from int) int {
	for i := 1; i <= len(f.cells); i++ {
		idx := (from + i) % len(f.cells)
		c := f.cells[idx]
		c.mu.Lock()
		run := c.running
		c.mu.Unlock()
		if run {
			return idx
		}
	}
	return -1
}

// Cells returns the cell count.
func (f *Fleet) Cells() int { return len(f.cells) }

// CellAddr returns cell i's listening address. The listener is owned by
// the fleet and survives restarts, so the address is stable for the
// fleet's whole lifetime — dialable even while the cell is down (the
// downtime ingress answers then; see ingress.go).
func (f *Fleet) CellAddr(i int) string {
	return f.cells[i].fln.Addr().String()
}

// CellStatus describes one cell in a FleetStats snapshot.
type CellStatus struct {
	Cell     int
	Running  bool   // false while the supervisor is restarting it
	State    string // healthy | degraded | quarantined
	Restarts int    // completed supervisor restarts
	// Stats spans every incarnation: the dead ones' counters plus the
	// live server's.
	Stats Stats
}

// FleetStats is a point-in-time snapshot of the whole fleet.
type FleetStats struct {
	// Agg folds every cell's counters (see addCounters) and fills the
	// fleet-level Stats fields: CellRestarts, CellsQuarantined.
	Agg Stats
	// Cells holds one entry per cell, in cell order.
	Cells []CellStatus
	// FallbackFixes counts flagged coarse fixes served by neighbors for
	// tags whose home cell was down.
	FallbackFixes int
	// FallbackPanics counts panics recovered (and fixes dropped) on the
	// fallback path — a neighbor-cell estimator dying on a down cell's
	// round. Kept separate from the cells' PanicsRecovered, which count
	// only in-cell recoveries.
	FallbackPanics int
	// FallbackDropped counts incomplete fallback buckets discarded — on
	// a cell's revival (its own acquisition plane owns new rounds again)
	// or by the collector's wholesale cap eviction. Rounds these buckets
	// held produced no fix at all.
	FallbackDropped int
	// RoutedTags is how many tags currently have a recorded home cell.
	RoutedTags int
}

// Stats snapshots every cell and aggregates the fleet view.
func (f *Fleet) Stats() FleetStats {
	now := f.now()
	fs := FleetStats{Cells: make([]CellStatus, len(f.cells))}
	for i, c := range f.cells {
		c.mu.Lock()
		sum := c.base
		if c.srv != nil {
			sum = addCounters(c.base, c.srv.Stats())
		}
		state := c.sup.stateLocked(now)
		cs := CellStatus{
			Cell:     i,
			Running:  c.running,
			State:    state.String(),
			Restarts: c.restarts,
			Stats:    sum,
		}
		c.mu.Unlock()
		fs.Cells[i] = cs
		fs.Agg = addCounters(fs.Agg, sum)
		fs.Agg.CellRestarts += cs.Restarts
		if state == cellQuarantined {
			fs.Agg.CellsQuarantined++
		}
	}
	f.mu.Lock()
	fs.FallbackFixes = f.fbFixes
	fs.FallbackPanics = f.fbPanics
	f.mu.Unlock()
	fs.FallbackDropped = f.fb.droppedCount()
	fs.RoutedTags = f.rt.tagCount()
	return fs
}

// Drain gracefully drains every running cell concurrently (in-flight
// rounds finish, fix queues flush, final checkpoints are written), then
// closes the fleet. Cells mid-restart have nothing to flush and are
// closed by Close.
func (f *Fleet) Drain(ctx context.Context) error {
	var (
		mu    sync.Mutex
		first error
		wg    sync.WaitGroup
	)
	for _, c := range f.cells {
		c.mu.Lock()
		srv, running := c.srv, c.running
		c.mu.Unlock()
		if !running || srv == nil {
			continue
		}
		wg.Add(1)
		go func(cellIdx int, srv *Server) {
			defer wg.Done()
			if err := srv.Drain(ctx); err != nil {
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("locserver: drain cell %d: %w", cellIdx, err)
				}
				mu.Unlock()
			}
		}(c.idx, srv)
	}
	wg.Wait()
	if err := f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Close stops every cell and supervisor. Idempotent and safe to call
// concurrently; later callers wait for the first teardown to finish.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closing {
		f.mu.Unlock()
		f.wg.Wait()
		return nil
	}
	f.closing = true
	f.mu.Unlock()
	close(f.closed)
	var err error
	for _, c := range f.cells {
		c.mu.Lock()
		srv := c.srv
		c.srv = nil
		c.running = false
		c.mu.Unlock()
		if srv != nil {
			if cerr := srv.Close(); cerr != nil && err == nil {
				err = cerr
			}
			// Fold the final incarnation's counters into the cell's base so
			// a post-shutdown Stats still reports the whole history.
			final := srv.Stats()
			c.mu.Lock()
			c.base = addCounters(c.base, retireStats(final))
			c.mu.Unlock()
		}
	}
	f.wg.Wait()
	// Supervisors are gone (and with them any downtime ingress), so the
	// persistent listeners can finally be closed for real — leases only
	// ever revoked them.
	for _, c := range f.cells {
		if cerr := c.fln.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// retireStats prepares a dead incarnation's final Stats for folding
// into cell.base: the point-in-time gauges (QueueDepth, Mode) are
// zeroed so post-restart aggregates reflect only live servers — a
// retired incarnation's last queue depth or overload mode must not be
// reported forever. QueuePeak survives untouched: it is explicitly a
// high-water mark over the cell's whole history.
func retireStats(s Stats) Stats {
	s.QueueDepth = 0
	s.Mode = 0
	return s
}

// addCounters folds two Stats snapshots: counters sum; Mode and
// QueuePeak take the max (worst observed); Reference takes b's (the
// newer operand — an aggregate reference is meaningless anyway).
func addCounters(a, b Stats) Stats {
	out := Stats{
		Full:    a.Full + b.Full,
		Partial: a.Partial + b.Partial,
		Coarse:  a.Coarse + b.Coarse,
		Evicted: a.Evicted + b.Evicted,
		Pruned:  a.Pruned + b.Pruned,

		RowsRejected: a.RowsRejected + b.RowsRejected,
		Quarantines:  a.Quarantines + b.Quarantines,
		Readmissions: a.Readmissions + b.Readmissions,
		Reelections:  a.Reelections + b.Reelections,
		Reference:    b.Reference,

		Checkpoints:       a.Checkpoints + b.Checkpoints,
		CheckpointErrors:  a.CheckpointErrors + b.CheckpointErrors,
		CheckpointBytes:   a.CheckpointBytes + b.CheckpointBytes,
		WarmRestores:      a.WarmRestores + b.WarmRestores,
		StaleDiscards:     a.StaleDiscards + b.StaleDiscards,
		SnapshotFallbacks: a.SnapshotFallbacks + b.SnapshotFallbacks,
		SlotCorruptions:   a.SlotCorruptions + b.SlotCorruptions,

		Mode:             max(a.Mode, b.Mode),
		ModeChanges:      a.ModeChanges + b.ModeChanges,
		QueueDepth:       a.QueueDepth + b.QueueDepth,
		QueuePeak:        max(a.QueuePeak, b.QueuePeak),
		OverloadDegraded: a.OverloadDegraded + b.OverloadDegraded,
		OverloadShed:     a.OverloadShed + b.OverloadShed,
		BudgetExceeded:   a.BudgetExceeded + b.BudgetExceeded,
		LaggyAnchors:     a.LaggyAnchors + b.LaggyAnchors,
		LaggyMarks:       a.LaggyMarks + b.LaggyMarks,
		LaggyReadmits:    a.LaggyReadmits + b.LaggyReadmits,
		EarlyCompletions: a.EarlyCompletions + b.EarlyCompletions,

		TierGatedRounds:       a.TierGatedRounds + b.TierGatedRounds,
		TierFullRounds:        a.TierFullRounds + b.TierFullRounds,
		TierFingerprintRounds: a.TierFingerprintRounds + b.TierFingerprintRounds,
		TierCentroidRounds:    a.TierCentroidRounds + b.TierCentroidRounds,
		TierDemotions:         a.TierDemotions + b.TierDemotions,
		TierPromotions:        a.TierPromotions + b.TierPromotions,
		TierHoldbacks:         a.TierHoldbacks + b.TierHoldbacks,

		PanicsRecovered: a.PanicsRecovered + b.PanicsRecovered,
		BreakerOpens:    a.BreakerOpens + b.BreakerOpens,
		BreakerProbes:   a.BreakerProbes + b.BreakerProbes,
		BreakerSkips:    a.BreakerSkips + b.BreakerSkips,

		CellRestarts:     a.CellRestarts + b.CellRestarts,
		CellsQuarantined: a.CellsQuarantined + b.CellsQuarantined,
	}
	return out
}
