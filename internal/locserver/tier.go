package locserver

// Degradation ladder (DESIGN.md §16). Every delivered fix carries an
// explicit quality tier, so the consumers of a fix — trackers, fleet
// dashboards, the estimator itself — know exactly which plane produced
// it instead of decoding the truth from a pile of booleans:
//
//	TierGatedCSI    tracker-prior-gated CSI search   (best)
//	TierFullCSI     full-room CSI search
//	TierFingerprint weighted-KNN against the site-survey fingerprint DB
//	TierCentroid    RSSI trilateration / weighted centroid (worst)
//
// The ladder is descended immediately — a round whose CSI quorum is
// unmet serves at the best degraded tier available right now — but
// climbed hysteretically: after serving degraded, a tag must produce
// TierPromoteRounds consecutive CSI-grade rounds before the server
// promotes it back, and the holdback rounds are served at the previous
// degraded tier. Without the hysteresis a flaky anchor link makes
// consecutive fixes flap between a ~0.5 m CSI estimate and a ~2-4 m
// fingerprint estimate, which a motion tracker reads as teleportation.
//
// Which degraded tier a coarse round serves at depends on
// Config.Fingerprint: with a fingerprint DB wired in, the estimator can
// answer TierFingerprint lookups and coarse rounds are stamped
// accordingly (and the quorum floor drops to FingerprintMinAnchors —
// KNN with partial-signature matching works below the 3-anchor
// trilateration floor). Without it, coarse means TierCentroid, exactly
// the seed behavior.

// FixTier is the quality rung a fix was served at. Lower is better.
type FixTier uint8

const (
	// TierGatedCSI is a CSI fix for a tracked tag: the estimator can arm
	// its tracker-prior-gated search (DESIGN.md §14).
	TierGatedCSI FixTier = iota
	// TierFullCSI is a CSI fix without usable tracking history: a
	// full-room search at CSI accuracy.
	TierFullCSI
	// TierFingerprint is a weighted-KNN lookup against the site-survey
	// fingerprint DB — CSI quorum unmet, but meters-grade beats the
	// centroid's room-scale error.
	TierFingerprint
	// TierCentroid is the RSSI trilateration / weighted-centroid floor,
	// the only degraded mode the server had before the ladder existed.
	TierCentroid
)

func (t FixTier) String() string {
	switch t {
	case TierGatedCSI:
		return "gated-csi"
	case TierFullCSI:
		return "full-csi"
	case TierFingerprint:
		return "fingerprint"
	case TierCentroid:
		return "centroid"
	default:
		return "unknown"
	}
}

// degraded reports whether the tier sits below the CSI plane.
func (t FixTier) degraded() bool { return t >= TierFingerprint }

// tierState is one tag's position on the ladder: which degraded rung it
// last served at and how many consecutive CSI-grade rounds it has
// produced since (the promotion streak).
type tierState struct {
	tier   FixTier // last degraded rung served
	streak int     // consecutive CSI-grade rounds since demotion
}

// maxTierStates bounds the per-tag ladder map; cleared wholesale at the
// cap like the tag-history and done-round maps (tags then re-promote
// immediately, which only skips some holdbacks).
const maxTierStates = 8192

// naturalTier maps a finalized round's flags to the rung its data can
// support right now, before hysteresis. Caller holds s.mu.
func (s *Server) naturalTierLocked(info RoundInfo) FixTier {
	switch {
	case info.Coarse && s.cfg.Fingerprint:
		return TierFingerprint
	case info.Coarse:
		return TierCentroid
	case info.Tracked:
		return TierGatedCSI
	default:
		return TierFullCSI
	}
}

// applyLadderLocked stamps one admitted fix job with its serving tier,
// walking the tag's hysteresis state: demotions take effect on the spot,
// promotions only after TierPromoteRounds consecutive CSI-grade rounds,
// with the holdback rounds forced coarse and served at the previous
// degraded rung. Runs only for jobs actually admitted to the fix queue
// (shed rounds never move the ladder). Caller holds s.mu.
func (s *Server) applyLadderLocked(job *fixJob) {
	natural := s.naturalTierLocked(job.info)
	tag := job.info.Tag
	serve := natural
	st, held := s.tiers[tag]
	switch {
	case natural.degraded():
		if !held {
			s.stats.TierDemotions++
		}
		if len(s.tiers) >= maxTierStates {
			s.tiers = make(map[uint16]tierState)
		}
		s.tiers[tag] = tierState{tier: natural}
	case held:
		st.streak++
		if st.streak >= s.promoteAfter {
			delete(s.tiers, tag)
			s.stats.TierPromotions++
		} else {
			// Holdback: the snapshot is CSI-grade, but one good round
			// after a degraded stretch is not yet trust. Serve it at the
			// previous rung — forcing Coarse routes the estimator down
			// the same degraded path the last fix took.
			s.tiers[tag] = st
			s.stats.TierHoldbacks++
			job.info.Coarse = true
			serve = st.tier
		}
	}
	job.info.Tier = serve
	switch serve {
	case TierGatedCSI:
		s.stats.TierGatedRounds++
	case TierFullCSI:
		s.stats.TierFullRounds++
	case TierFingerprint:
		s.stats.TierFingerprintRounds++
	case TierCentroid:
		s.stats.TierCentroidRounds++
	}
}
