package locserver

import (
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// startTestbedWith is startTestbed with a config hook, for tests that
// enable deadlines, quorum or heartbeats.
func startTestbedWith(t *testing.T, seed uint64, mutate func(*Config),
	onSnap func(RoundInfo, *csi.Snapshot) (geom.Point, error)) (*Server, []*anchor.Daemon) {
	t.Helper()
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Anchors:    len(dep.Anchors),
		Antennas:   dep.Anchors[0].N,
		Bands:      dep.Bands,
		OnSnapshot: onSnap,
		Logger:     quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			t.Fatal(err)
		}
		d, err := anchor.New(i, depI, quietLogger())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
	}
	return srv, daemons
}

// TestQuorumCompletesPartialRound is the headline acceptance scenario:
// four anchors with quorum three, one anchor silenced mid-round (it
// delivers only a prefix of its bands), and the round must still produce
// an accurate fix within the deadline.
func TestQuorumCompletesPartialRound(t *testing.T) {
	const seed = 71
	const deadline = 400 * time.Millisecond
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var gotSnap *csi.Snapshot
	srv, daemons := startTestbedWith(t, seed, func(c *Config) {
		c.RoundDeadline = deadline
		c.MinAnchors = 3
	}, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		gotSnap = snap
		mu.Unlock()
		res, err := eng.LocateRef(snap, info.Ref)
		if err != nil {
			return geom.Point{}, err
		}
		return res.Estimate, nil
	})

	// Anchors 0..2 report fully; anchor 3 is "silenced mid-round": a raw
	// client sends its hello and the first 8 bands, then goes quiet.
	tag := geom.Pt(0.6, -0.4)
	daemons[3].Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Send(conn, &wire.Hello{
		Version: wire.ProtocolVersion, AnchorID: 3,
		Antennas: uint8(dep.Anchors[0].N), Bands: uint16(len(dep.Bands)),
	}); err != nil {
		t.Fatal(err)
	}
	snap3 := dep.Fork(1).Sounding(tag)
	for b := 0; b < 8; b++ {
		if err := wire.Send(conn, &wire.CSIRow{
			Round: 1, AnchorID: 3, BandIdx: uint16(b),
			Tag: snap3.Tag[b][3], Master: snap3.Master[b][3],
		}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for _, d := range daemons[:3] {
		if err := d.MeasureAndReport(0, 1, tag); err != nil {
			t.Fatal(err)
		}
	}

	select {
	case fix := <-srv.Fixes():
		if elapsed := time.Since(start); elapsed > deadline+2*time.Second {
			t.Errorf("fix took %v, deadline %v", elapsed, deadline)
		}
		if est := geom.Pt(fix.X, fix.Y); est.Dist(tag) > 2.0 {
			t.Errorf("partial-round fix %v too far from tag %v", est, tag)
		}
	case <-time.After(deadline + 5*time.Second):
		t.Fatal("partial round never completed")
	}
	st := srv.Stats()
	if st.Partial != 1 || st.Full != 0 || st.Evicted != 0 {
		t.Errorf("stats = %+v, want exactly one partial completion", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotSnap.Complete() {
		t.Error("partial round delivered a complete snapshot")
	}
	if got := gotSnap.PresentBands(3); got != 8 {
		t.Errorf("silenced anchor contributed %d usable bands, want 8", got)
	}
	if got := len(gotSnap.PresentAnchors(1)); got != 4 {
		t.Errorf("present anchors = %d, want 4 (anchor 3 partially)", got)
	}
}

// TestQuorumEvictsStarvedRound verifies a round below quorum is evicted at
// the deadline — no fix, no resurrection by stragglers — while later
// rounds proceed normally.
func TestQuorumEvictsStarvedRound(t *testing.T) {
	const deadline = 250 * time.Millisecond
	srv, daemons := startTestbedWith(t, 72, func(c *Config) {
		c.RoundDeadline = deadline
		c.MinAnchors = 3
	}, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		return geom.Pt(0, 0), nil
	})
	tag := geom.Pt(0.3, 0.3)
	// Only two of four anchors report round 1: below the quorum of three.
	for _, d := range daemons[:2] {
		if err := d.MeasureAndReport(0, 1, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case f := <-srv.Fixes():
		t.Fatalf("starved round completed: %+v", f)
	case <-time.After(deadline + 500*time.Millisecond):
	}
	if st := srv.Stats(); st.Evicted != 1 {
		t.Errorf("stats = %+v, want one eviction", st)
	}
	// Stragglers for the evicted round are tombstoned, not resurrected.
	for _, d := range daemons[2:] {
		if err := d.MeasureAndReport(0, 1, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case f := <-srv.Fixes():
		t.Fatalf("evicted round resurrected by stragglers: %+v", f)
	case <-time.After(300 * time.Millisecond):
	}
	// A fresh round with full participation completes immediately.
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, 2, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case fix := <-srv.Fixes():
		if fix.Round != 2 {
			t.Errorf("completed round %d, want 2", fix.Round)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round after eviction never completed")
	}
	if st := srv.Stats(); st.Full != 1 || st.Evicted != 1 {
		t.Errorf("stats = %+v, want Full=1 Evicted=1", st)
	}
}

// TestGarbageFramesDropClientNotServer pushes framing garbage through a
// live authenticated connection: the malformed client must be dropped
// (never a panic or a wedged server) and legitimate rounds must keep
// completing.
func TestGarbageFramesDropClientNotServer(t *testing.T) {
	const seed = 73
	srv, daemons := startTestbedWith(t, seed, nil,
		func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(0, 0), nil
		})
	dep, _ := testbed.Paper(seed)
	hello := &wire.Hello{
		Version: wire.ProtocolVersion, AnchorID: 1,
		Antennas: uint8(dep.Anchors[0].N), Bands: uint16(len(dep.Bands)),
	}

	// Garbage corpus: raw noise, an oversized length prefix, a declared
	// length with a truncated body, an unknown frame type, and a valid
	// header with a corrupt CSI payload.
	oversize := make([]byte, 4)
	binary.LittleEndian.PutUint32(oversize, wire.MaxFrameSize+1)
	truncated := make([]byte, 4, 6)
	binary.LittleEndian.PutUint32(truncated, 64)
	truncated = append(truncated, byte(wire.TypeCSIRow), 0xAB)
	unknownType := []byte{3, 0, 0, 0, 0xEE, 1, 2, 3}
	badPayload := []byte{2, 0, 0, 0, byte(wire.TypeCSIRow), 0xFF}
	corpus := [][]byte{
		[]byte("\xde\xad\xbe\xefGET / HTTP/1.1\r\n\r\n"),
		oversize,
		truncated,
		unknownType,
		badPayload,
	}
	for i, garbage := range corpus {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.Send(conn, hello); err != nil {
			t.Fatal(err)
		}
		conn.Write(garbage)
		// Decodable garbage gets the client hung up promptly; a truncated
		// frame legitimately blocks the server's read until we give up and
		// close, so the drain deadline is short.
		conn.SetReadDeadline(time.Now().Add(1 * time.Second))
		buf := make([]byte, 64)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()

		// And a legitimate round still flows end to end.
		round := uint32(i + 1)
		for _, d := range daemons {
			if err := d.MeasureAndReport(0, round, geom.Pt(0.1, 0.1)); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case fix := <-srv.Fixes():
			if fix.Round != round {
				t.Errorf("case %d: completed round %d, want %d", i, fix.Round, round)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("case %d: round wedged after garbage", i)
		}
	}
}

// TestHeartbeatPrunesDeadConnection verifies an anchor that stops echoing
// probes is pruned, while live anchors survive arbitrarily many probes.
func TestHeartbeatPrunesDeadConnection(t *testing.T) {
	const seed = 74
	srv, daemons := startTestbedWith(t, seed, func(c *Config) {
		c.HeartbeatInterval = 50 * time.Millisecond
		c.HeartbeatMisses = 2
	}, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		return geom.Pt(0, 0), nil
	})
	// A raw client that completes its hello but never echoes heartbeats.
	dep, _ := testbed.Paper(seed)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Send(conn, &wire.Hello{
		Version: wire.ProtocolVersion, AnchorID: 2,
		Antennas: uint8(dep.Anchors[0].N), Bands: uint16(len(dep.Bands)),
	}); err != nil {
		t.Fatal(err)
	}
	// The mute client gets pruned: its reads start failing.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	deadlinePruned := time.Now().Add(5 * time.Second)
	for srv.Stats().Pruned == 0 {
		if time.Now().After(deadlinePruned) {
			t.Fatal("mute connection never pruned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Real daemons echoed their probes and still complete rounds.
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-srv.Fixes():
	case <-time.After(5 * time.Second):
		t.Fatal("live anchors were pruned with the dead one")
	}
}

// TestSoakUnderFaults is the acceptance soak: a full testbed running under
// seeded 5% frame loss plus one forced mid-soak reconnect. Every round
// must produce a fix within the deadline, and shutdown must leave no hung
// goroutines.
func TestSoakUnderFaults(t *testing.T) {
	const (
		seed     = 75
		rounds   = 15
		deadline = 400 * time.Millisecond
	)
	baseline := runtime.NumGoroutine()

	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{
		Anchors:           len(dep.Anchors),
		Antennas:          dep.Anchors[0].N,
		Bands:             dep.Bands,
		RoundDeadline:     deadline,
		MinAnchors:        3,
		MinBands:          6,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
		Logger:            quietLogger(),
		OnSnapshot: func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every daemon dials through a fault-injecting wrapper: 5% of frames
	// (CSI rows, hellos, heartbeat echoes alike) vanish silently.
	var faultMu sync.Mutex
	var salt uint64
	wrapped := map[int]*faultnet.Conn{}
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			t.Fatal(err)
		}
		d, err := anchor.New(i, depI, quietLogger())
		if err != nil {
			t.Fatal(err)
		}
		d.Backoff = anchor.Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond}
		id := i
		d.Dial = func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			faultMu.Lock()
			salt++
			fc := faultnet.WrapConn(c, faultnet.Config{Seed: seed, DropProb: 0.05}, salt)
			wrapped[id] = fc
			faultMu.Unlock()
			return fc, nil
		}
		if err := d.Connect(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
	}

	tag := geom.Pt(0.7, -0.9)
	errs := make([]float64, 0, rounds)
	for round := uint32(1); round <= rounds; round++ {
		if round == rounds/2 {
			// Forced churn: hard-reset a non-master anchor's connection
			// mid-soak. The daemon must reconnect and keep reporting.
			faultMu.Lock()
			fc := wrapped[2]
			faultMu.Unlock()
			fc.ForceReset()
		}
		for _, d := range daemons {
			if err := d.MeasureAndReport(0, round, tag); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		select {
		case fix := <-srv.Fixes():
			if fix.Round != round {
				t.Fatalf("got fix for round %d, want %d", fix.Round, round)
			}
			errs = append(errs, geom.Pt(fix.X, fix.Y).Dist(tag))
		case <-time.After(deadline + 10*time.Second):
			t.Fatalf("round %d produced no fix (stats %+v)", round, srv.Stats())
		}
	}
	// Median accuracy must hold; individual rounds may flip to the room's
	// rival likelihood peak when band gaps perturb a near-tie (the same
	// flip happens on complete data at ambiguous tag positions).
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	if med := sorted[len(sorted)/2]; med > 2.0 {
		t.Errorf("median fix error %.2fm over %d faulty rounds, want < 2m (errors %v)", med, rounds, errs)
	}
	st := srv.Stats()
	if st.Full+st.Partial != rounds {
		t.Errorf("completions %d full + %d partial != %d rounds", st.Full, st.Partial, rounds)
	}
	if st.Evicted != 0 {
		t.Errorf("%d rounds evicted under quorum-covered loss", st.Evicted)
	}
	if rec, _, _ := daemons[2].Stats(); rec < 1 {
		t.Error("churned daemon never reconnected")
	}

	// Clean shutdown leaves no hung goroutines.
	for _, d := range daemons {
		if err := d.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("daemon close: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Logf("server close: %v", err)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+4 {
		if time.Now().After(leakDeadline) {
			t.Errorf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}
