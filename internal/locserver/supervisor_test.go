package locserver

import (
	"testing"
	"time"
)

// The supState tests drive the pure restart bookkeeping with a
// synthetic clock; the *Locked methods are single-goroutine here, so no
// lock is involved.

func supConfigForTest() SupervisorConfig {
	return SupervisorConfig{
		BackoffInitial:     10 * time.Millisecond,
		BackoffMax:         time.Second,
		BackoffFactor:      2,
		Jitter:             0.2,
		Seed:               7,
		RestartWindow:      time.Minute,
		DegradedRestarts:   3,
		QuarantineRestarts: 6,
		QuarantineCooldown: 30 * time.Second,
	}
}

func TestSupervisorStateEscalatesAndDecays(t *testing.T) {
	st := newSupState(supConfigForTest(), 0)
	base := time.Unix(1000, 0)

	// Restarts 1 and 2 inside the window stay healthy.
	for i := 0; i < 2; i++ {
		if got := st.recordRestartLocked(base.Add(time.Duration(i) * time.Second)); got != cellHealthy {
			t.Fatalf("restart %d: state %v, want healthy", i+1, got)
		}
	}
	// The 3rd degrades, the 6th quarantines.
	for i := 2; i < 5; i++ {
		if got := st.recordRestartLocked(base.Add(time.Duration(i) * time.Second)); got != cellDegraded {
			t.Fatalf("restart %d: state %v, want degraded", i+1, got)
		}
	}
	if got := st.recordRestartLocked(base.Add(5 * time.Second)); got != cellQuarantined {
		t.Fatalf("restart 6: state %v, want quarantined", got)
	}
	// Quarantine holds through the cooldown even as the window thins.
	if got := st.stateLocked(base.Add(5*time.Second + 10*time.Second)); got != cellQuarantined {
		t.Fatalf("mid-cooldown state %v, want quarantined", got)
	}
	// Cooldown over but the window still holds all six restarts: still
	// quarantined on recomputation.
	if got := st.stateLocked(base.Add(36 * time.Second)); got != cellQuarantined {
		t.Fatalf("post-cooldown full-window state %v, want quarantined", got)
	}
	// At +62s the restarts at +0 and +1 have aged out (window 60s),
	// leaving four — degraded.
	if got := st.stateLocked(base.Add(62 * time.Second)); got != cellDegraded {
		t.Fatalf("post-cooldown state %v, want degraded", got)
	}
	if got := st.stateLocked(base.Add(10 * time.Minute)); got != cellHealthy {
		t.Fatalf("aged-out state %v, want healthy", got)
	}
}

func TestSupervisorBackoffGrowsAndCaps(t *testing.T) {
	cfg := supConfigForTest()
	st := newSupState(cfg, 1)
	base := time.Unix(2000, 0)
	prevNominal := time.Duration(0)
	for i := 0; i < 12; i++ {
		st.recordRestartLocked(base.Add(time.Duration(i) * time.Millisecond))
		d := st.backoffLocked()
		// Jitter is ±20%, so bound against the nominal exponential value.
		nominal := cfg.BackoffInitial
		for j := 1; j < st.streak && nominal < cfg.BackoffMax; j++ {
			nominal *= 2
		}
		if nominal > cfg.BackoffMax {
			nominal = cfg.BackoffMax
		}
		lo := time.Duration(float64(nominal) * 0.79)
		hi := time.Duration(float64(nominal) * 1.21)
		if d < lo || d > hi {
			t.Fatalf("restart %d: backoff %v outside [%v, %v]", i+1, d, lo, hi)
		}
		if nominal < prevNominal {
			t.Fatalf("nominal backoff shrank: %v after %v", nominal, prevNominal)
		}
		prevNominal = nominal
	}
	if prevNominal != cfg.BackoffMax {
		t.Fatalf("backoff never reached the cap: %v", prevNominal)
	}
	// A long stable run resets the streak, so the next backoff is small
	// again.
	later := base.Add(10 * time.Minute)
	st.recordRestartLocked(later)
	if d := st.backoffLocked(); d > 2*cfg.BackoffInitial {
		t.Fatalf("backoff after stable run %v, want near %v", d, cfg.BackoffInitial)
	}
}

func TestSupervisorConfigDefaults(t *testing.T) {
	c := SupervisorConfig{}.withDefaults()
	if c.BackoffInitial <= 0 || c.BackoffMax < c.BackoffInitial || c.BackoffFactor < 1 {
		t.Fatalf("backoff defaults invalid: %+v", c)
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		t.Fatalf("jitter default %v outside [0,1]", c.Jitter)
	}
	if c.DegradedRestarts <= 0 || c.QuarantineRestarts <= c.DegradedRestarts {
		t.Fatalf("threshold defaults not ordered: %+v", c)
	}
	// Inverted explicit values are repaired, not accepted.
	c = SupervisorConfig{DegradedRestarts: 5, QuarantineRestarts: 2, Jitter: 7}.withDefaults()
	if c.QuarantineRestarts <= c.DegradedRestarts {
		t.Fatalf("quarantine threshold %d not above degraded %d", c.QuarantineRestarts, c.DegradedRestarts)
	}
	if c.Jitter != 1 {
		t.Fatalf("jitter %v not clamped to 1", c.Jitter)
	}
}
