package locserver

import (
	"time"

	"bloc/internal/csi"
	"bloc/internal/wire"
)

// Overload-resilient serving plane (DESIGN.md §12). Fix computation is
// moved off the ingest path into a bounded work queue drained by a small
// worker pool, so a burst of completed rounds can never block row ingest
// or grow memory without bound. The queue is fair per tag: jobs are
// stored in per-tag FIFOs and drained round-robin, with at most one fix
// in flight per tag so a hot tag can neither starve the fleet nor have
// its fixes reordered.
//
// Queue depth drives a hysteretic three-state serve mode:
//
//	normal ──depth ≥ DegradeHigh──▶ degraded ──depth ≥ ShedHigh──▶ shedding
//	normal ◀──depth ≤ DegradeLow── degraded ◀──depth ≤ ShedLow─── shedding
//
// In degraded mode completed rounds are routed to the coarse RSSI fix
// (meters of error instead of a grid search's milliseconds of CPU — the
// §10 degraded mode reused as a load valve). In shedding mode rounds for
// untracked tags — tags without a recent fix history — are dropped
// outright, and when the queue is full a queued untracked job is evicted
// before a tracked tag's round is ever refused. Every decision is
// counted in Stats.
//
// Each job carries the round's first-row timestamp; a configured
// FixBudget bounds first row → fix → broadcast, and a job that exhausts
// it is dropped before localization (and re-checked before broadcast) —
// a stale fix poisons the tracker, so late is treated as lost.

// serveMode is the admission-control state.
type serveMode int

const (
	modeNormal serveMode = iota
	modeDegraded
	modeShedding
)

func (m serveMode) String() string {
	switch m {
	case modeNormal:
		return "normal"
	case modeDegraded:
		return "degraded"
	case modeShedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// trackedMinFixes is how many delivered fixes a tag needs before it
// counts as tracked (shed last): a tag seen once during a burst has no
// history worth protecting.
const trackedMinFixes = 3

// maxTagHistory bounds the per-tag fix-history map; like the done-round
// tombstones it is cleared wholesale at the cap (tags then re-earn
// tracked status, which is harmless).
const maxTagHistory = 8192

// OverloadConfig tunes admission control. The zero value derives every
// watermark from the queue capacity as documented per field.
type OverloadConfig struct {
	// DegradeHigh enters degraded mode when the queue depth reaches it
	// (default cap/2); DegradeLow returns to normal at or below it
	// (default cap/4). The gap is the hysteresis band.
	DegradeHigh int
	DegradeLow  int
	// ShedHigh enters shedding mode (default 3·cap/4); ShedLow drops
	// back to degraded (default 3·cap/8).
	ShedHigh int
	ShedLow  int
	// TrackedTTL is how recently a tag must have received a fix for its
	// history to keep it tracked (default 30s).
	TrackedTTL time.Duration
}

func (c OverloadConfig) withDefaults(queueCap int) OverloadConfig {
	if c.DegradeHigh <= 0 {
		c.DegradeHigh = queueCap / 2
	}
	if c.DegradeLow <= 0 {
		c.DegradeLow = queueCap / 4
	}
	if c.ShedHigh <= 0 {
		c.ShedHigh = queueCap * 3 / 4
	}
	if c.ShedLow <= 0 {
		c.ShedLow = queueCap * 3 / 8
	}
	if c.TrackedTTL <= 0 {
		c.TrackedTTL = 30 * time.Second
	}
	return c
}

func (c OverloadConfig) valid(queueCap int) bool {
	return 0 < c.DegradeLow && c.DegradeLow < c.DegradeHigh &&
		c.DegradeHigh <= c.ShedHigh && c.ShedHigh <= queueCap &&
		c.ShedLow < c.ShedHigh && c.ShedLow >= c.DegradeLow
}

// fixJob is one completed round waiting for localization.
type fixJob struct {
	rk    roundKey
	snap  *csi.Snapshot
	info  RoundInfo
	start time.Time // the round's first-row arrival; FixBudget reference
}

// fixQueue is the bounded per-tag-fair work queue. Not safe for
// concurrent use: the server serializes every method under Server.mu.
type fixQueue struct {
	perTag map[uint16][]*fixJob // FIFO per tag; guarded by Server.mu
	ring   []uint16             // round-robin order of tags with queued jobs; guarded by Server.mu
	next   int                  // ring cursor; guarded by Server.mu
	size   int                  // total queued jobs; guarded by Server.mu
	cap    int
}

func newFixQueue(capacity int) *fixQueue {
	return &fixQueue{perTag: make(map[uint16][]*fixJob), cap: capacity}
}

// pushLocked appends a job to its tag's FIFO. The caller has already
// checked capacity. Caller holds Server.mu.
func (q *fixQueue) pushLocked(j *fixJob) {
	tag := j.info.Tag
	if _, ok := q.perTag[tag]; !ok {
		q.ring = append(q.ring, tag)
	}
	q.perTag[tag] = append(q.perTag[tag], j)
	q.size++
}

// popLocked returns the next job in round-robin tag order, skipping tags
// with a fix already in flight; nil when nothing is poppable. Caller
// holds Server.mu.
func (q *fixQueue) popLocked(busy map[uint16]bool) *fixJob {
	for scanned := 0; scanned < len(q.ring); scanned++ {
		idx := (q.next + scanned) % len(q.ring)
		tag := q.ring[idx]
		if busy[tag] {
			continue
		}
		jobs := q.perTag[tag]
		j := jobs[0]
		if len(jobs) == 1 {
			delete(q.perTag, tag)
			q.removeRingLocked(idx)
		} else {
			q.perTag[tag] = jobs[1:]
			q.next = (idx + 1) % len(q.ring)
		}
		q.size--
		return j
	}
	return nil
}

// evictUntrackedLocked drops the newest queued job of some untracked tag
// to make room for a tracked one, returning it (nil when every queued
// tag is tracked). Caller holds Server.mu.
func (q *fixQueue) evictUntrackedLocked(tracked func(uint16) bool) *fixJob {
	for idx := len(q.ring) - 1; idx >= 0; idx-- {
		tag := q.ring[idx]
		if tracked(tag) {
			continue
		}
		jobs := q.perTag[tag]
		j := jobs[len(jobs)-1]
		if len(jobs) == 1 {
			delete(q.perTag, tag)
			q.removeRingLocked(idx)
		} else {
			q.perTag[tag] = jobs[:len(jobs)-1]
		}
		q.size--
		return j
	}
	return nil
}

// removeRingLocked deletes ring[idx] preserving round-robin order and
// keeping the cursor on the element after the removed one. Caller holds
// Server.mu.
func (q *fixQueue) removeRingLocked(idx int) {
	q.ring = append(q.ring[:idx], q.ring[idx+1:]...)
	if len(q.ring) == 0 {
		q.next = 0
		return
	}
	if idx < q.next {
		q.next--
	}
	q.next %= len(q.ring)
}

// tagHistory is one tag's fix history, for shed-priority decisions.
type tagHistory struct {
	fixes int       // delivered fixes; guarded by Server.mu
	last  time.Time // most recent delivery; guarded by Server.mu
}

// trackedLocked reports whether a tag has enough recent fix history to
// be shed last. Caller holds Server.mu.
func (s *Server) trackedLocked(tag uint16) bool {
	h, ok := s.tagHist[tag]
	return ok && h.fixes >= trackedMinFixes && s.now().Sub(h.last) <= s.ovl.TrackedTTL
}

// noteFixLocked records one delivered fix in the tag's history. Caller
// holds Server.mu.
func (s *Server) noteFixLocked(tag uint16) {
	if len(s.tagHist) >= maxTagHistory {
		s.tagHist = make(map[uint16]tagHistory)
	}
	h := s.tagHist[tag]
	h.fixes++
	h.last = s.now()
	s.tagHist[tag] = h
}

// updateModeLocked walks the hysteretic mode machine against the current
// queue depth. Caller holds Server.mu.
func (s *Server) updateModeLocked() {
	depth := s.fq.size
	from := s.mode
	switch s.mode {
	case modeNormal:
		if depth >= s.ovl.ShedHigh {
			s.mode = modeShedding
		} else if depth >= s.ovl.DegradeHigh {
			s.mode = modeDegraded
		}
	case modeDegraded:
		if depth >= s.ovl.ShedHigh {
			s.mode = modeShedding
		} else if depth <= s.ovl.DegradeLow {
			s.mode = modeNormal
		}
	case modeShedding:
		if depth <= s.ovl.DegradeLow {
			s.mode = modeNormal
		} else if depth <= s.ovl.ShedLow {
			s.mode = modeDegraded
		}
	}
	if s.mode != from {
		s.stats.ModeChanges++
		s.log.Warn("serve mode changed", "from", from.String(), "to", s.mode.String(),
			"queue", depth)
	}
}

// enqueueFixLocked admits one finalized round into the fix pipeline,
// applying the mode's shedding and degradation policies. Caller holds
// Server.mu.
func (s *Server) enqueueFixLocked(job *fixJob) {
	tracked := s.trackedLocked(job.info.Tag)
	job.info.Tracked = tracked
	if s.mode == modeShedding && !tracked {
		s.stats.OverloadShed++
		s.log.Debug("round shed (untracked tag in shedding mode)",
			"tag", job.info.Tag, "round", job.info.Round, "queue", s.fq.size)
		return
	}
	if s.fq.size >= s.fq.cap {
		// Full queue: evict a queued untracked job before refusing a
		// tracked tag's round; an untracked round at a full queue is
		// simply dropped.
		if evicted := s.fq.evictUntrackedLocked(s.trackedLocked); evicted != nil && tracked {
			s.stats.OverloadShed++
			s.log.Debug("queued round evicted for a tracked tag",
				"evicted_tag", evicted.info.Tag, "for_tag", job.info.Tag)
		} else {
			if evicted != nil {
				// Re-queue the victim: the incoming job is no better.
				s.fq.pushLocked(evicted)
			}
			s.stats.OverloadShed++
			s.log.Debug("round shed (queue full)", "tag", job.info.Tag, "round", job.info.Round)
			return
		}
	}
	if s.mode != modeNormal && !job.info.Coarse {
		// Degraded (and shedding) mode routes admitted rounds to the
		// coarse RSSI fix: orders of magnitude cheaper per fix, which is
		// what lets the queue drain faster than it fills.
		job.info.Coarse = true
		job.info.Degraded = true
		s.stats.OverloadDegraded++
	}
	// Every demotion route — quorum-unmet coarse completion, overload
	// demotion just above, and the hysteretic holdback itself — funnels
	// through the ladder here, after the shed decisions: only admitted
	// rounds move a tag's tier state.
	s.applyLadderLocked(job)
	s.fq.pushLocked(job)
	if s.fq.size > s.stats.QueuePeak {
		s.stats.QueuePeak = s.fq.size
	}
	s.updateModeLocked()
	s.fixCond.Signal()
}

// fixWorker drains the fix queue until the server closes.
func (s *Server) fixWorker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.closing {
			s.mu.Unlock()
			return
		}
		job := s.fq.popLocked(s.busyTags)
		if job == nil {
			s.fixCond.Wait()
			continue
		}
		s.busyTags[job.info.Tag] = true
		s.fixInflight++
		s.updateModeLocked()
		s.mu.Unlock()

		s.runFixRecover(job)

		s.mu.Lock()
		delete(s.busyTags, job.info.Tag)
		s.fixInflight--
		// The tag just freed may have queued jobs a waiting worker
		// skipped; wake one to re-scan.
		s.fixCond.Signal()
	}
}

// runFixRecover guards one fix computation with the cell hook and panic
// recovery: a panic from the hook (a scheduled cell kill) or from the
// localization callback is recovered and reported to the supervisor,
// and the worker loop — which holds no lock here — survives to clean up
// its busy-tag entry and keep draining. The round whose fix panicked is
// lost (at-most-once), which is the crash-only contract: the supervisor
// restarts the cell from its last checkpoint rather than trusting state
// a panic tore through.
func (s *Server) runFixRecover(job *fixJob) {
	defer s.recoverPanic("fix")
	if h := s.cfg.Hook; h != nil {
		h(HookFix)
	}
	s.runFix(job)
}

// budgetExceeded checks a job's elapsed time against the fix budget. The
// clock hook is set once at construction, so no lock is needed.
func (s *Server) budgetExceeded(job *fixJob) bool {
	return s.cfg.FixBudget > 0 && s.now().Sub(job.start) > s.cfg.FixBudget
}

// runFix localizes one dequeued round and broadcasts the fix, enforcing
// the latency budget on both sides of the (potentially slow)
// localization callback. Runs on a fix worker, never on the ingest path.
func (s *Server) runFix(job *fixJob) {
	if s.budgetExceeded(job) {
		s.mu.Lock()
		s.stats.BudgetExceeded++
		s.mu.Unlock()
		s.log.Warn("fix dropped before localization (budget exhausted)",
			"tag", job.rk.tag, "round", job.rk.round,
			"elapsed", s.now().Sub(job.start), "budget", s.cfg.FixBudget)
		return
	}
	loc, err := s.cfg.OnSnapshot(job.info, job.snap)
	if err != nil {
		s.log.Error("localization failed", "tag", job.rk.tag, "round", job.rk.round, "err", err)
		return
	}
	if s.budgetExceeded(job) {
		// Computed but too late to be true anymore: a stale fix fed to a
		// tracker is worse than a missed round.
		s.mu.Lock()
		s.stats.BudgetExceeded++
		s.mu.Unlock()
		s.log.Warn("fix dropped before broadcast (budget exhausted)",
			"tag", job.rk.tag, "round", job.rk.round,
			"elapsed", s.now().Sub(job.start), "budget", s.cfg.FixBudget)
		return
	}
	s.mu.Lock()
	s.noteFixLocked(job.rk.tag)
	s.mu.Unlock()
	fix := wire.Fix{Round: job.rk.round, TagID: job.rk.tag, X: loc.X, Y: loc.Y}
	select {
	case s.fixes <- fix:
	default: // observer not draining; drop rather than block the worker
	}
	s.broadcast(&fix)
	if s.cfg.OnFix != nil {
		s.cfg.OnFix(job.info, fix)
	}
	s.log.Info("fix", "tag", job.rk.tag, "round", job.rk.round, "x", loc.X, "y", loc.Y,
		"tier", job.info.Tier.String(), "coarse", job.info.Coarse, "degraded", job.info.Degraded)
}
