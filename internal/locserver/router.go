package locserver

import "sync"

// router maps the fleet's global identifier spaces onto cells
// (DESIGN.md §15). Anchors are partitioned arithmetically: global
// anchor g lives in cell g / anchorsPerCell as local anchor
// g % anchorsPerCell — a cell is an anchor set, and an anchor belongs
// to exactly one. Tags are routed by observation: a tag's home cell is
// the cell whose anchors reported it most recently (sticky, so a fix
// pipeline never sees one tag split across two cells mid-round), which
// is the physical truth of a zoned deployment — the tag is wherever
// the radios that hear it are.
type router struct {
	cells          int
	anchorsPerCell int

	mu   sync.Mutex
	home map[uint16]int // tag → home cell; guarded by mu
}

// maxRoutedTags bounds the tag-home map; like the server's done-round
// tombstones it is cleared wholesale at the cap (tags re-learn their
// home on the next row, which is harmless).
const maxRoutedTags = 16384

func newRouter(cells, anchorsPerCell int) *router {
	return &router{
		cells:          cells,
		anchorsPerCell: anchorsPerCell,
		home:           make(map[uint16]int),
	}
}

// cellOfAnchor maps a global anchor ID to its cell, or -1 when the ID
// is outside the fleet.
func (r *router) cellOfAnchor(global int) int {
	if global < 0 || global >= r.cells*r.anchorsPerCell {
		return -1
	}
	return global / r.anchorsPerCell
}

// localAnchor maps a global anchor ID to its index inside its cell.
func (r *router) localAnchor(global int) int { return global % r.anchorsPerCell }

// noteTag records that a tag was observed by a cell's anchors, making
// that cell the tag's home.
func (r *router) noteTag(tag uint16, cell int) {
	r.mu.Lock()
	if len(r.home) >= maxRoutedTags {
		r.home = make(map[uint16]int)
	}
	r.home[tag] = cell
	r.mu.Unlock()
}

// homeOf returns a tag's home cell, if one has been observed.
func (r *router) homeOf(tag uint16) (int, bool) {
	r.mu.Lock()
	c, ok := r.home[tag]
	r.mu.Unlock()
	return c, ok
}

// tagCount returns how many tags currently have a recorded home.
func (r *router) tagCount() int {
	r.mu.Lock()
	n := len(r.home)
	r.mu.Unlock()
	return n
}
