// Package locserver implements BLoc's central server (§3): it accepts TCP
// connections from anchor daemons, collects their per-band CSI reports,
// assembles complete snapshots per acquisition round and hands them to a
// localization callback, broadcasting the resulting fix back to the
// anchors.
package locserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// Config describes the expected deployment.
type Config struct {
	Anchors  int
	Antennas int
	Bands    []ble.ChannelIndex
	// OnSnapshot is called with each completed round's snapshot (tag
	// identifies which tag the round belongs to); the returned point is
	// broadcast to the anchors as the fix. Returning an error drops the
	// round (logged, not fatal).
	OnSnapshot func(tag uint16, round uint32, snap *csi.Snapshot) (geom.Point, error)
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

// Server collects CSI and serves fixes.
type Server struct {
	cfg Config
	ln  net.Listener
	log *slog.Logger

	mu      sync.Mutex
	rounds  map[roundKey]*pendingRound
	done    map[roundKey]bool // completed rounds (bounded; see ingest)
	conns   map[*client]struct{}
	fixes   chan wire.Fix // completed fixes, for observers/tests
	wg      sync.WaitGroup
	closing bool
}

// maxDoneRounds bounds the completed-round memory; older entries are
// evicted wholesale once the cap is hit (late duplicates for ancient
// rounds would then re-localize, which is harmless).
const maxDoneRounds = 4096

// roundKey identifies one tag's acquisition round.
type roundKey struct {
	tag   uint16
	round uint32
}

// client is one connected anchor; writeMu serializes frames written by
// concurrent round completions so they never interleave.
type client struct {
	conn    net.Conn
	id      uint8
	writeMu sync.Mutex
}

func (c *client) send(msg any) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.Send(c.conn, msg)
}

type pendingRound struct {
	snap *csi.Snapshot
	got  map[[2]uint16]bool // (anchorID, bandIdx) already received
}

// New starts a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Anchors < 2 || cfg.Antennas < 1 || len(cfg.Bands) == 0 {
		return nil, fmt.Errorf("locserver: invalid config %+v", cfg)
	}
	if cfg.OnSnapshot == nil {
		return nil, errors.New("locserver: OnSnapshot callback required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("locserver: listen: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		log:    cfg.Logger,
		rounds: make(map[roundKey]*pendingRound),
		done:   make(map[roundKey]bool),
		conns:  make(map[*client]struct{}),
		fixes:  make(chan wire.Fix, 64),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Fixes returns a channel of completed fixes (buffered; drops when full).
func (s *Server) Fixes() <-chan wire.Fix { return s.fixes }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	conns := make([]*client, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if !closing {
				s.log.Error("accept failed", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Register the connection before any blocking read, under the same
	// lock that Close uses to set closing: a connection accepted from the
	// TCP backlog after Close snapshotted the conn map would otherwise
	// keep its handler blocked forever and deadlock Close's wg.Wait.
	cl := &client{conn: conn, id: 0xFF}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.conns[cl] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cl)
		s.mu.Unlock()
	}()

	msg, err := wire.Receive(conn)
	if err != nil {
		s.log.Warn("connection dropped before hello", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		s.log.Warn("first message was not hello", "remote", conn.RemoteAddr())
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.log.Warn("protocol version mismatch", "got", hello.Version, "want", wire.ProtocolVersion)
		return
	}
	if int(hello.AnchorID) >= s.cfg.Anchors || int(hello.Antennas) != s.cfg.Antennas ||
		int(hello.Bands) != len(s.cfg.Bands) {
		s.log.Warn("hello does not match deployment", "hello", fmt.Sprintf("%+v", hello))
		return
	}
	s.mu.Lock()
	cl.id = hello.AnchorID
	s.mu.Unlock()
	s.log.Info("anchor connected", "anchor", hello.AnchorID, "remote", conn.RemoteAddr())

	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Warn("read failed", "anchor", hello.AnchorID, "err", err)
			}
			return
		}
		row, ok := msg.(*wire.CSIRow)
		if !ok {
			s.log.Warn("unexpected message type", "anchor", hello.AnchorID)
			continue
		}
		if row.AnchorID != hello.AnchorID {
			s.log.Warn("anchor id spoofed in row", "hello", hello.AnchorID, "row", row.AnchorID)
			continue
		}
		s.ingest(row)
	}
}

// ingest merges one CSI row and completes the round when full.
func (s *Server) ingest(row *wire.CSIRow) {
	if int(row.BandIdx) >= len(s.cfg.Bands) || len(row.Tag) != s.cfg.Antennas {
		s.log.Warn("malformed csi row", "band", row.BandIdx, "antennas", len(row.Tag))
		return
	}
	var complete *csi.Snapshot
	rk := roundKey{tag: row.TagID, round: row.Round}
	s.mu.Lock()
	if s.done[rk] {
		s.mu.Unlock()
		return
	}
	pr := s.rounds[rk]
	if pr == nil {
		pr = &pendingRound{
			snap: csi.NewSnapshot(s.cfg.Bands, s.cfg.Anchors, s.cfg.Antennas),
			got:  make(map[[2]uint16]bool),
		}
		s.rounds[rk] = pr
	}
	key := [2]uint16{uint16(row.AnchorID), row.BandIdx}
	if !pr.got[key] {
		pr.got[key] = true
		copy(pr.snap.Tag[row.BandIdx][row.AnchorID], row.Tag)
		if row.AnchorID != 0 {
			pr.snap.Master[row.BandIdx][row.AnchorID] = row.Master
		}
		if len(pr.got) == s.cfg.Anchors*len(s.cfg.Bands) {
			complete = pr.snap
			delete(s.rounds, rk)
			if len(s.done) >= maxDoneRounds {
				s.done = make(map[roundKey]bool)
			}
			s.done[rk] = true
		}
	}
	s.mu.Unlock()

	if complete == nil {
		return
	}
	loc, err := s.cfg.OnSnapshot(row.TagID, row.Round, complete)
	if err != nil {
		s.log.Error("localization failed", "tag", row.TagID, "round", row.Round, "err", err)
		return
	}
	fix := wire.Fix{Round: row.Round, TagID: row.TagID, X: loc.X, Y: loc.Y}
	select {
	case s.fixes <- fix:
	default: // observer not draining; drop rather than block ingestion
	}
	s.broadcast(&fix)
	s.log.Info("fix", "tag", row.TagID, "round", row.Round, "x", loc.X, "y", loc.Y)
}

// broadcast sends the fix to every connected anchor.
func (s *Server) broadcast(fix *wire.Fix) {
	type target struct {
		cl *client
		id uint8
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.conns))
	for c := range s.conns {
		if c.id == 0xFF {
			continue // connection has not completed its hello yet
		}
		targets = append(targets, target{cl: c, id: c.id})
	}
	s.mu.Unlock()
	for _, t := range targets {
		if err := t.cl.send(fix); err != nil {
			s.log.Warn("fix broadcast failed", "anchor", t.id, "err", err)
		}
	}
}

// Serve blocks until ctx is cancelled, then closes the server. Convenience
// for daemon mains.
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}
