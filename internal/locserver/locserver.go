// Package locserver implements BLoc's central server (§3): it accepts TCP
// connections from anchor daemons, collects their per-band CSI reports,
// assembles complete snapshots per acquisition round and hands them to a
// localization callback, broadcasting the resulting fix back to the
// anchors.
//
// The acquisition plane is fault tolerant. Every round follows the
// lifecycle pending → quorum-complete | deadline-complete | evicted: a
// round that receives every row completes immediately (full); when a
// RoundDeadline is configured, a round that reaches the deadline with at
// least MinAnchors anchors holding MinBands usable bands completes as a
// partial snapshot whose presence mask tells the estimator which rows to
// trust (partial); anything below quorum is evicted. Completed and evicted
// rounds are tombstoned so straggler rows cannot resurrect them. Optional
// server→anchor heartbeats prune connections whose daemons stopped
// answering.
//
// On top of the acquisition plane sits a data-quality and failover plane
// (DESIGN.md §10). Every CSI row is sanity-checked on ingest
// (csi.RowValidator: NaN/Inf, dead rows, stuck tones, frozen phase,
// magnitude outliers); rejected rows are masked out of the round and feed
// rolling per-anchor health scores. Anchors whose scores collapse are
// quarantined — their rows are dropped (but still scored, which is how
// they earn probation and eventual readmission) — and the α-correction
// reference index is re-elected away from a quarantined or silent
// reference, so the system no longer assumes the paper's fixed master
// (anchor 0) stays trustworthy.
//
// Degraded rounds descend an explicit ladder (DESIGN.md §16): every
// delivered fix is stamped with a FixTier — prior-gated CSI, full CSI,
// fingerprint KNN, RSSI centroid — and a round whose CSI quorum is
// unmet completes at the best degraded rung the deployment supports
// (RoundInfo.Coarse plus RoundInfo.Tier) instead of emitting nothing.
// Demotion is immediate; promotion back to the CSI plane is hysteretic
// (Config.TierPromoteRounds), so consecutive fixes never flap between
// accuracy regimes.
package locserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// Config describes the expected deployment.
type Config struct {
	Anchors  int
	Antennas int
	Bands    []ble.ChannelIndex
	// OnSnapshot is called with each completed round's snapshot; the
	// returned point is broadcast to the anchors as the fix. Returning an
	// error drops the round (logged, not fatal). Partial or sanitized
	// rounds deliver a snapshot with a presence mask (snap.Complete() ==
	// false). info.Ref is the elected α-correction reference the
	// estimator must use (core.LocateRef), and info.Coarse marks a
	// degraded round that only supports an RSSI-style coarse fix.
	OnSnapshot func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error)
	// Logger defaults to slog.Default().
	Logger *slog.Logger

	// RoundDeadline bounds how long a round may stay pending after its
	// first row. 0 disables deadlines: rounds wait forever for every row
	// (the pre-fault-tolerance behavior).
	RoundDeadline time.Duration
	// MinAnchors is the quorum: a deadline-expired round completes as a
	// partial snapshot only if at least this many anchors contributed
	// MinBands usable bands (a band is usable for anchor i only if the
	// master's row for that band also arrived — correction needs ĥ00).
	// Defaults to 2 (the estimator's floor) when RoundDeadline is set.
	MinAnchors int
	// MinBands is the per-anchor usefulness floor for quorum counting.
	// Defaults to 1 when RoundDeadline is set.
	MinBands int

	// HeartbeatInterval enables server→anchor liveness probes: every
	// interval each authenticated connection gets a heartbeat, and a
	// connection that misses HeartbeatMisses consecutive probes without
	// echoing any of them is pruned. 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the prune threshold (default 3).
	HeartbeatMisses int

	// Quality tunes the per-row CSI sanity pipeline; the zero value
	// selects csi.QualityConfig's documented defaults.
	Quality csi.QualityConfig
	// Health tunes anchor quarantine and reference election; the zero
	// value selects HealthConfig's documented defaults.
	Health HealthConfig

	// Checkpoint enables the durable state plane (DESIGN.md §11):
	// periodic crash-safe snapshots off the fix path, warm restore on
	// startup, and a final checkpoint during Drain. nil disables
	// persistence entirely.
	Checkpoint *CheckpointConfig

	// FixWorkers is the size of the fix-pipeline worker pool (default
	// 2). Localization runs on these workers, never on the ingest path:
	// a completed round is queued, and the row reader moves on.
	FixWorkers int
	// FixQueueDepth bounds the fix queue (default 64). Rounds that
	// cannot be admitted are shed by priority, never queued unboundedly.
	FixQueueDepth int
	// FixBudget bounds one round's first row → fix → broadcast latency;
	// a round that exhausts it is dropped (before localization when
	// already late, and again before broadcast) instead of delivered
	// stale. 0 disables budgets.
	FixBudget time.Duration
	// AdaptiveDeadline derives each round's deadline from the live
	// per-anchor arrival-latency p95 (clamped to [RoundDeadline/10,
	// RoundDeadline]) instead of the static RoundDeadline, and lets
	// rounds complete early once every non-laggy anchor has reported.
	// Requires RoundDeadline > 0.
	AdaptiveDeadline bool
	// Overload tunes the admission-control watermarks and tag-priority
	// TTL; the zero value derives defaults from FixQueueDepth.
	Overload OverloadConfig
	// Breaker tunes the per-anchor-link circuit breakers gating every
	// server→anchor send (DESIGN.md §15). The zero value selects the
	// defaults; Threshold < 0 disables breakers.
	Breaker BreakerConfig

	// Fingerprint declares that the estimator behind OnSnapshot can
	// answer TierFingerprint lookups (it holds a site-survey fingerprint
	// DB, internal/fingerprint). It changes two things (DESIGN.md §16):
	// coarse rounds are stamped TierFingerprint instead of TierCentroid,
	// and rounds whose usable-anchor count falls in
	// [FingerprintMinAnchors, 3) complete coarsely instead of being
	// evicted — partial-signature KNN works below the trilateration
	// floor. False keeps the seed behavior bit-for-bit.
	Fingerprint bool
	// FingerprintMinAnchors is the coarse-completion floor when
	// Fingerprint is set (default 2, the KNN overlap minimum).
	FingerprintMinAnchors int
	// TierPromoteRounds is the ladder's promotion hysteresis: after a
	// tag served a degraded fix, this many consecutive CSI-grade rounds
	// are required before it serves CSI again, the holdbacks going out
	// at the previous degraded tier. Defaults to 2 when Fingerprint is
	// set and 1 (promote immediately — the pre-ladder behavior)
	// otherwise.
	TierPromoteRounds int

	// OnFix, when set, is called exactly once per delivered fix, after
	// the broadcast, on the fix worker that computed it. The fleet layer
	// uses it for exactly-once delivery accounting; it must not block.
	OnFix func(info RoundInfo, fix wire.Fix)
	// Hook, when set, is called at the panic-safe instrumentation
	// points (HookIngest before each ingested row, HookFix before each
	// fix computation). Fault drills inject scheduled panics through it
	// (faultnet.CellKiller); a panic escaping the hook is recovered and
	// reported through OnPanic, never crashes the process.
	Hook func(event string)
	// OnPanic, when set, receives every panic recovered inside the
	// server (ingest handlers and fix workers). The cell supervisor
	// restarts the cell on it; it must not block and must not call back
	// into the server synchronously.
	OnPanic func(where string, v any)
}

// Hook events: the panic-safe instrumentation points Config.Hook is
// called at. Both sit outside every server lock, so a hook that panics
// (a scheduled cell kill) can be recovered without wedging a mutex.
const (
	HookIngest = "ingest"
	HookFix    = "fix"
)

// RoundInfo describes one completed round to the OnSnapshot callback.
type RoundInfo struct {
	Tag   uint16 // which tag the round belongs to
	Round uint32
	// Ref is the anchor index the snapshot must be α-corrected against
	// (core.LocateRef). It is the reference that was elected when the
	// round started: an in-flight round always completes on the
	// reference its rows were collected under, even if a re-election
	// happened meanwhile.
	Ref int
	// Coarse marks a degraded round: the CSI quorum was unmet (too few
	// anchors with correction-grade rows against Ref), but at least
	// three anchors contributed usable rows, which is enough for an
	// RSSI-only coarse fix. Correction-based estimators will fail on
	// such a snapshot; use a magnitude-based fallback.
	Coarse bool
	// Degraded marks a round demoted to the coarse path by overload
	// admission control (DESIGN.md §12) rather than by data quality:
	// the snapshot itself is CSI-grade, but the serve mode routed it to
	// the cheap fix to shed load. Degraded implies Coarse.
	Degraded bool
	// Tracked reports whether the tag had enough recent fix history at
	// admission time to count as tracked (the same signal admission
	// control prioritizes on). Estimators holding a motion tracker can
	// use it to arm the prior-gated search for this fix.
	Tracked bool
	// Fallback marks a round assembled by the fleet for a tag whose home
	// cell was down, localized coarsely by a neighbor cell (DESIGN.md
	// §15). Fallback implies Coarse; the fix is flagged, not silent.
	Fallback bool
	// Tier is the rung of the degradation ladder this fix is served at
	// (DESIGN.md §16). It subsumes the booleans above: Coarse rounds
	// serve at TierFingerprint or TierCentroid, CSI rounds at
	// TierGatedCSI or TierFullCSI — except during promotion holdback,
	// when a CSI-grade snapshot is deliberately served at the previous
	// degraded tier (and Coarse is forced true to match).
	Tier FixTier
}

// Stats counts round outcomes and data-quality events.
type Stats struct {
	Full    int // rounds completed with every row
	Partial int // rounds completed at deadline with a quorum
	Coarse  int // completions degraded to RSSI-only mode (CSI quorum unmet)
	Evicted int // rounds abandoned below every quorum
	Pruned  int // connections dropped by heartbeat misses

	RowsRejected int // CSI rows rejected by the sanity pipeline
	Quarantines  int // transitions into quarantine
	Readmissions int // probation → healthy graduations
	Reelections  int // reference re-elections since startup
	Reference    int // currently elected reference anchor

	Checkpoints       int    // durable snapshots persisted
	CheckpointErrors  int    // checkpoint attempts that failed
	CheckpointBytes   uint64 // total snapshot bytes written
	WarmRestores      int    // 1 if this process restored state at startup
	StaleDiscards     int    // snapshots discarded for exceeding the TTL
	SnapshotFallbacks int    // restores served by the older slot (newer corrupt)
	SlotCorruptions   int    // snapshot slots rejected by validation

	Mode             int // current serve mode (0 normal, 1 degraded, 2 shedding)
	ModeChanges      int // serve-mode transitions since startup
	QueueDepth       int // fix jobs currently queued
	QueuePeak        int // high-water mark of the fix queue
	OverloadDegraded int // rounds demoted to the coarse fix by overload
	OverloadShed     int // rounds dropped by admission control
	BudgetExceeded   int // fixes dropped for exhausting FixBudget
	LaggyAnchors     int // anchors currently excluded from quorum waits
	LaggyMarks       int // transitions into laggy
	LaggyReadmits    int // laggy anchors readmitted to quorum waits
	EarlyCompletions int // rounds completed early by excluding laggy anchors

	// Supervision plane (DESIGN.md §15). The breaker and panic counters
	// are live on every server; the cell counters are filled by the
	// fleet aggregate (a standalone server reports 0).
	// Degradation ladder (DESIGN.md §16): how many admitted rounds were
	// served at each rung, plus the hysteresis transitions.
	TierGatedRounds       int // fixes served at TierGatedCSI
	TierFullRounds        int // fixes served at TierFullCSI
	TierFingerprintRounds int // fixes served at TierFingerprint
	TierCentroidRounds    int // fixes served at TierCentroid
	TierDemotions         int // tags dropped from the CSI plane to a degraded rung
	TierPromotions        int // tags promoted back to the CSI plane
	TierHoldbacks         int // CSI-grade rounds served degraded during promotion hysteresis

	PanicsRecovered  int // panics recovered in ingest handlers and fix workers
	BreakerOpens     int // per-anchor-link breaker transitions into open
	BreakerProbes    int // half-open probe sends attempted
	BreakerSkips     int // sends skipped because a link's breaker was open
	CellRestarts     int // supervised cell restarts (fleet aggregate only)
	CellsQuarantined int // cells currently quarantined (fleet aggregate only)
}

// Server collects CSI and serves fixes.
type Server struct {
	cfg Config
	ln  net.Listener
	log *slog.Logger

	mu        sync.Mutex
	rounds    map[roundKey]*pendingRound // guarded by mu
	done      map[roundKey]doneRound     // completed rounds (bounded; see ingest); guarded by mu
	conns     map[*client]struct{}       // guarded by mu
	stats     Stats                      // guarded by mu
	validator *csi.RowValidator          // per-row sanity pipeline; guarded by mu
	health    *healthTracker             // quarantine + reference election + laggy tracking; guarded by mu
	fixes     chan wire.Fix              // completed fixes, for observers/tests
	closed    chan struct{}              // signals heartbeat loop shutdown
	closeDone chan struct{}              // closed once the first Close finishes teardown
	wg        sync.WaitGroup
	closing   bool          // guarded by mu
	draining  bool          // drain started: admit no new rounds; guarded by mu
	finalCkpt bool          // final drain checkpoint already claimed; guarded by mu
	maxRound  uint32        // highest round tombstoned (checkpoint high-water mark); guarded by mu
	brkCfg    BreakerConfig // resolved breaker parameters (immutable after New)

	// Overload plane (DESIGN.md §12).
	fq          *fixQueue             // bounded fix queue; guarded by mu
	fixCond     *sync.Cond            // wakes fix workers; shares mu
	busyTags    map[uint16]bool       // tags with a fix in flight; guarded by mu
	fixInflight int                   // jobs popped but not finished; guarded by mu
	mode        serveMode             // admission-control state; guarded by mu
	ovl         OverloadConfig        // resolved watermarks (immutable after New)
	tagHist     map[uint16]tagHistory // per-tag fix history for shed priority; guarded by mu
	now         func() time.Time      // clock hook (tests); immutable after New

	// Degradation ladder (DESIGN.md §16).
	tiers        map[uint16]tierState // per-tag ladder hysteresis; guarded by mu
	promoteAfter int                  // resolved TierPromoteRounds (immutable after New)

	ckpt *CheckpointConfig // durable checkpointing; nil when disabled
}

// doneRound tombstones a completed or evicted round. The first-row
// timestamp and per-anchor seen set survive completion so a straggler
// row arriving after an early (laggy-excluded) completion still feeds
// the latency plane — without that, a laggy anchor's EWMA would freeze
// at its worst value and it could never earn readmission.
type doneRound struct {
	start time.Time
	seen  []bool // anchors whose first row was already observed
}

// maxDoneRounds bounds the completed-round memory; older entries are
// evicted wholesale once the cap is hit (late duplicates for ancient
// rounds would then re-localize, which is harmless).
const maxDoneRounds = 4096

// roundKey identifies one tag's acquisition round.
type roundKey struct {
	tag   uint16
	round uint32
}

// client is one connected anchor; writeMu serializes frames written by
// concurrent round completions so they never interleave, and guards the
// link's circuit breaker so its decisions serialize with the writes.
type client struct {
	conn    net.Conn
	id      uint8 // guarded by Server.mu
	misses  int   // unanswered heartbeat count; guarded by Server.mu
	writeMu sync.Mutex
	brk     breaker // per-link circuit breaker; fields guarded by writeMu
}

// sendClient writes one frame to a client through its circuit breaker:
// open links are skipped (errBreakerOpen) instead of attempted, a
// cooled-down link gets a single half-open probe, and every outcome
// feeds the breaker state machine and the server's breaker counters.
func (s *Server) sendClient(c *client, msg any) error {
	c.writeMu.Lock()
	ok, probe := c.brk.allowLocked(s.now())
	if !ok {
		c.writeMu.Unlock()
		s.mu.Lock()
		s.stats.BreakerSkips++
		s.mu.Unlock()
		return errBreakerOpen
	}
	err := wire.Send(c.conn, msg)
	opened := c.brk.resultLocked(err == nil, s.now())
	c.writeMu.Unlock()
	if probe || opened {
		s.mu.Lock()
		if probe {
			s.stats.BreakerProbes++
		}
		if opened {
			s.stats.BreakerOpens++
		}
		s.mu.Unlock()
	}
	if opened {
		s.log.Warn("anchor link breaker opened", "anchor", c.id, "err", err)
	}
	return err
}

type pendingRound struct {
	snap  *csi.Snapshot
	got   map[[2]uint16]bool // (anchorID, bandIdx) already received
	bad   map[[2]uint16]bool // received but rejected by the sanity pipeline
	quar  []bool             // anchors quarantined when the round started
	ref   int                // reference elected when the round started
	timer *time.Timer        // deadline; nil when RoundDeadline is 0

	start     time.Time // first-row arrival; deadline-budget + latency reference
	seen      []bool    // anchors with ≥1 row this round (latency observed once each)
	laggy     []bool    // anchors laggy when the round started (excluded from quorum waits)
	nonLagGot int       // rows received from non-laggy anchors
	nonLagAll int       // rows expected from non-laggy anchors; 0 disables early completion
}

// New starts a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("locserver: listen: %w", err)
	}
	s, err := NewWithListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// NewWithListener starts a server on an existing listener; the server
// takes ownership and closes it on Close. Tests use this to interpose
// fault-injecting listeners.
func NewWithListener(ln net.Listener, cfg Config) (*Server, error) {
	if cfg.Anchors < 2 || cfg.Antennas < 1 || len(cfg.Bands) == 0 {
		return nil, fmt.Errorf("locserver: invalid config %+v", cfg)
	}
	if cfg.OnSnapshot == nil {
		return nil, errors.New("locserver: OnSnapshot callback required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.RoundDeadline > 0 {
		if cfg.MinAnchors == 0 {
			cfg.MinAnchors = 2
		}
		if cfg.MinBands == 0 {
			cfg.MinBands = 1
		}
		if cfg.MinAnchors < 2 || cfg.MinAnchors > cfg.Anchors {
			return nil, fmt.Errorf("locserver: MinAnchors %d outside [2,%d]", cfg.MinAnchors, cfg.Anchors)
		}
		if cfg.MinBands < 1 || cfg.MinBands > len(cfg.Bands) {
			return nil, fmt.Errorf("locserver: MinBands %d outside [1,%d]", cfg.MinBands, len(cfg.Bands))
		}
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	if cfg.Checkpoint != nil && cfg.Checkpoint.Store == nil {
		return nil, errors.New("locserver: CheckpointConfig.Store required")
	}
	if cfg.FixWorkers <= 0 {
		cfg.FixWorkers = 2
	}
	if cfg.FixQueueDepth <= 0 {
		cfg.FixQueueDepth = 64
	}
	if cfg.FixBudget < 0 {
		return nil, fmt.Errorf("locserver: negative FixBudget %v", cfg.FixBudget)
	}
	if cfg.AdaptiveDeadline && cfg.RoundDeadline <= 0 {
		return nil, errors.New("locserver: AdaptiveDeadline requires RoundDeadline > 0")
	}
	if cfg.FingerprintMinAnchors <= 0 {
		cfg.FingerprintMinAnchors = 2
	}
	if cfg.Fingerprint && (cfg.FingerprintMinAnchors < 2 || cfg.FingerprintMinAnchors > cfg.Anchors) {
		return nil, fmt.Errorf("locserver: FingerprintMinAnchors %d outside [2,%d]",
			cfg.FingerprintMinAnchors, cfg.Anchors)
	}
	if cfg.TierPromoteRounds <= 0 {
		if cfg.Fingerprint {
			cfg.TierPromoteRounds = 2
		} else {
			cfg.TierPromoteRounds = 1
		}
	}
	ovl := cfg.Overload.withDefaults(cfg.FixQueueDepth)
	if !ovl.valid(cfg.FixQueueDepth) {
		return nil, fmt.Errorf("locserver: invalid overload watermarks %+v for queue depth %d",
			ovl, cfg.FixQueueDepth)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		log:       cfg.Logger,
		rounds:    make(map[roundKey]*pendingRound),
		done:      make(map[roundKey]doneRound),
		conns:     make(map[*client]struct{}),
		validator: csi.NewRowValidator(cfg.Anchors, cfg.Quality),
		health:    newHealthTracker(cfg.Anchors, cfg.Health),
		fixes:     make(chan wire.Fix, 64),
		closed:    make(chan struct{}),
		closeDone: make(chan struct{}),
		brkCfg:    cfg.Breaker.withDefaults(),
		fq:        newFixQueue(cfg.FixQueueDepth),
		busyTags:  make(map[uint16]bool),
		ovl:       ovl,
		tagHist:   make(map[uint16]tagHistory),
		now:       time.Now,

		tiers:        make(map[uint16]tierState),
		promoteAfter: cfg.TierPromoteRounds,
	}
	s.fixCond = sync.NewCond(&s.mu)
	if cfg.Checkpoint != nil {
		s.ckpt = cfg.Checkpoint.withDefaults()
		// Warm restore before any goroutine can touch the state.
		s.restoreFromStore()
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	for i := 0; i < cfg.FixWorkers; i++ {
		s.wg.Add(1)
		go s.fixWorker()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.HeartbeatInterval > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Fixes returns a channel of completed fixes (buffered; drops when full).
func (s *Server) Fixes() <-chan wire.Fix { return s.fixes }

// Stats returns a snapshot of the round-outcome and data-quality
// counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Quarantines = s.health.quarantines
	st.Readmissions = s.health.readmissions
	st.Reelections = s.health.reelections
	st.Reference = s.health.referenceLocked()
	st.Mode = int(s.mode)
	st.QueueDepth = s.fq.size
	st.LaggyAnchors = s.health.laggyCountLocked()
	st.LaggyMarks = s.health.lagMarks
	st.LaggyReadmits = s.health.lagReadmits
	if s.ckpt != nil {
		ss := s.ckpt.Store.Stats()
		st.CheckpointBytes = ss.BytesWritten
		st.SnapshotFallbacks = int(ss.Fallbacks)
		st.SlotCorruptions = int(ss.Corruptions)
	}
	return st
}

// Close stops the listener, all connections, pending round timers, the
// fix workers and the heartbeat loop, and waits for every in-flight
// completion. Jobs still queued are abandoned: Close is the hard stop
// (Drain flushes them first).
//
// Close is idempotent and safe to call concurrently: the first caller
// performs the teardown and gets any listener-close error; every other
// caller (concurrent or later) waits for that teardown to finish and
// returns nil.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.closeDone
		return nil
	}
	s.closing = true
	close(s.closed)
	for rk, pr := range s.rounds {
		if pr.timer != nil {
			pr.timer.Stop()
		}
		delete(s.rounds, rk)
	}
	conns := make([]*client, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.fixCond.Broadcast() // release workers parked in Wait
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	close(s.closeDone)
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if !closing {
				s.log.Error("accept failed", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// heartbeatLoop probes every authenticated connection each interval and
// prunes the ones that stopped echoing.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	//lint:ignore clockcheck heartbeat cadence is wall-clock; liveness probes must fire in real time
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	var nonce uint32
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		nonce++
		type probe struct {
			cl    *client
			id    uint8
			prune bool
		}
		s.mu.Lock()
		probes := make([]probe, 0, len(s.conns))
		for c := range s.conns {
			if c.id == 0xFF {
				continue // hello not finished; the read path handles it
			}
			c.misses++
			dead := c.misses > s.cfg.HeartbeatMisses
			if dead {
				s.stats.Pruned++
			}
			probes = append(probes, probe{cl: c, id: c.id, prune: dead})
		}
		s.mu.Unlock()
		for _, p := range probes {
			if p.prune {
				s.log.Warn("anchor unresponsive, pruning", "anchor", p.id)
				p.cl.conn.Close() // its handler exits and deregisters
				continue
			}
			// A breaker-open skip is not a send failure: the probe never
			// went out. Misses still accrue, so a link whose breaker never
			// re-closes is pruned by the ordinary liveness path.
			if err := s.sendClient(p.cl, &wire.Heartbeat{Nonce: nonce}); err != nil &&
				!errors.Is(err, errBreakerOpen) {
				p.cl.conn.Close()
			}
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Register the connection before any blocking read, under the same
	// lock that Close uses to set closing: a connection accepted from the
	// TCP backlog after Close snapshotted the conn map would otherwise
	// keep its handler blocked forever and deadlock Close's wg.Wait.
	cl := &client{conn: conn, id: 0xFF, brk: breaker{cfg: s.brkCfg}}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.conns[cl] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cl)
		s.mu.Unlock()
	}()

	msg, err := wire.Receive(conn)
	if err != nil {
		s.log.Warn("connection dropped before hello", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		s.log.Warn("first message was not hello", "remote", conn.RemoteAddr())
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.log.Warn("protocol version mismatch", "got", hello.Version, "want", wire.ProtocolVersion)
		return
	}
	if int(hello.AnchorID) >= s.cfg.Anchors || int(hello.Antennas) != s.cfg.Antennas ||
		int(hello.Bands) != len(s.cfg.Bands) {
		s.log.Warn("hello does not match deployment", "hello", fmt.Sprintf("%+v", hello))
		return
	}
	s.mu.Lock()
	cl.id = hello.AnchorID
	s.mu.Unlock()
	s.log.Info("anchor connected", "anchor", hello.AnchorID, "remote", conn.RemoteAddr())

	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Framing garbage, oversized frames and truncated payloads
				// all land here: the malformed client is dropped, the
				// server carries on.
				s.log.Warn("read failed", "anchor", hello.AnchorID, "err", err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.CSIRow:
			if m.AnchorID != hello.AnchorID {
				s.log.Warn("anchor id spoofed in row", "hello", hello.AnchorID, "row", m.AnchorID)
				continue
			}
			s.IngestRow(m)
		case *wire.Heartbeat:
			s.mu.Lock()
			cl.misses = 0
			s.mu.Unlock()
		default:
			s.log.Warn("unexpected message type", "anchor", hello.AnchorID, "msg", fmt.Sprintf("%T", msg))
		}
	}
}

// recoverPanic recovers an in-flight panic from a hook point, the
// localization callback, or the ingest path, counts it, and reports it
// to the supervisor through OnPanic. It must only guard code that
// leaves no lock held when a panic unwinds through it: the hook points
// and OnSnapshot run lock-free, and ingest releases s.mu by defer.
// Recovering a panic that stranded a held mutex would wedge the whole
// cell — every later ingest, Stats and Close would block on it —
// which is exactly the blast radius this plane exists to contain. Use
// as `defer s.recoverPanic("where")`.
func (s *Server) recoverPanic(where string) {
	r := recover()
	if r == nil {
		return
	}
	s.mu.Lock()
	s.stats.PanicsRecovered++
	s.mu.Unlock()
	s.log.Error("panic recovered", "where", where, "panic", fmt.Sprint(r))
	if s.cfg.OnPanic != nil {
		s.cfg.OnPanic(where, r)
	}
}

// IngestRow feeds one CSI row into the acquisition plane in-process —
// the fleet router's path into a cell, and the path the TCP read loop
// takes for every row. The cell hook fires first (HookIngest), and any
// panic it or the ingest path raises is recovered — with s.mu already
// released by ingest's deferred unlock — and reported through OnPanic,
// so the caller's reader goroutine survives a dying cell.
func (s *Server) IngestRow(row *wire.CSIRow) {
	defer s.recoverPanic("ingest")
	if h := s.cfg.Hook; h != nil {
		h(HookIngest)
	}
	s.ingest(row)
}

// ingest validates and merges one CSI row, and finalizes the round when
// every row has arrived — or, with AdaptiveDeadline, as soon as every
// non-laggy anchor has reported. Localization itself never runs here: a
// finalized round is enqueued on the bounded fix queue and the reader
// returns to its socket. nonblocking: the row reader must never park,
// so sendblock holds this function to the no-blocking-ops contract.
// The TCP path validates anchor IDs at hello, but Server.IngestRow is
// exported, so the anchor bound is re-checked here — an out-of-range
// ID must reject the row, never index past the per-round state.
func (s *Server) ingest(row *wire.CSIRow) {
	if int(row.AnchorID) >= s.cfg.Anchors || int(row.BandIdx) >= len(s.cfg.Bands) ||
		len(row.Tag) != s.cfg.Antennas {
		s.log.Warn("malformed csi row", "anchor", row.AnchorID, "band", row.BandIdx,
			"antennas", len(row.Tag))
		return
	}
	rk := roundKey{tag: row.TagID, round: row.Round}
	s.mu.Lock()
	// Deferred so a panic unwinding out of the round bookkeeping (a
	// poisoned round) releases the lock before IngestRow's recover runs;
	// a recovered panic must crash only the round, never wedge the cell.
	defer s.mu.Unlock()
	if dr, ok := s.done[rk]; ok {
		// A straggler for a completed round is dropped, but its lateness
		// still feeds the latency plane: early (laggy-excluded)
		// completions would otherwise freeze a laggy anchor's EWMA at
		// its worst value and bar readmission forever.
		if a := int(row.AnchorID); !dr.seen[a] {
			dr.seen[a] = true
			s.health.observeLatencyLocked(a, s.now().Sub(dr.start))
		}
		return
	}
	pr := s.rounds[rk]
	if pr == nil {
		if s.draining {
			// Drain admits no new rounds; rows for already-pending rounds
			// above still land, so in-flight acquisitions can finish.
			return
		}
		pr = &pendingRound{
			snap:  csi.NewSnapshot(s.cfg.Bands, s.cfg.Anchors, s.cfg.Antennas),
			got:   make(map[[2]uint16]bool),
			bad:   make(map[[2]uint16]bool),
			quar:  s.health.quarantinedSetLocked(),
			ref:   s.health.referenceLocked(),
			start: s.now(),
			seen:  make([]bool, s.cfg.Anchors),
		}
		if s.cfg.RoundDeadline > 0 {
			deadline := s.cfg.RoundDeadline
			if s.cfg.AdaptiveDeadline {
				deadline = s.health.adaptiveDeadlineLocked(s.cfg.RoundDeadline)
				pr.laggy = s.health.laggySetLocked()
				nonLaggy := 0
				for _, l := range pr.laggy {
					if !l {
						nonLaggy++
					}
				}
				if nonLaggy < s.cfg.Anchors {
					pr.nonLagAll = nonLaggy * len(s.cfg.Bands)
				}
			}
			//lint:ignore clockcheck round deadlines fire on the real scheduler; the seam feeds only latency math
			pr.timer = time.AfterFunc(deadline, func() { s.roundDeadline(rk) })
		}
		s.rounds[rk] = pr
	}
	if a := int(row.AnchorID); !pr.seen[a] {
		pr.seen[a] = true
		s.health.observeLatencyLocked(a, s.now().Sub(pr.start))
	}
	key := [2]uint16{uint16(row.AnchorID), row.BandIdx}
	if pr.got[key] {
		return // duplicate (transport resend); never re-validated
	}
	pr.got[key] = true
	if pr.nonLagAll > 0 && !pr.laggy[row.AnchorID] {
		pr.nonLagGot++
	}
	// Sanity-check the row before it can touch the snapshot. The verdict
	// also feeds the anchor's health score — quarantined anchors keep
	// being scored (that is how they earn probation) but their rows never
	// enter the snapshot.
	verdict := s.validator.Check(int(row.AnchorID), row.Tag, row.Master)
	s.health.observeLocked(int(row.AnchorID), verdict)
	if !verdict.OK() {
		s.stats.RowsRejected++
		pr.bad[key] = true
		s.log.Debug("csi row rejected", "anchor", row.AnchorID, "band", row.BandIdx,
			"round", row.Round, "verdict", verdict.String())
	} else if !pr.quar[row.AnchorID] {
		copy(pr.snap.Tag[row.BandIdx][row.AnchorID], row.Tag)
		if row.AnchorID != 0 {
			pr.snap.Master[row.BandIdx][row.AnchorID] = row.Master
		}
	}
	full := len(pr.got) >= s.cfg.Anchors*len(s.cfg.Bands)
	// Straggler-aware early completion: once every non-laggy anchor has
	// delivered every band, waiting the rest of the deadline only buys
	// rows from anchors already excluded from the quorum.
	early := !full && pr.nonLagAll > 0 && pr.nonLagGot >= pr.nonLagAll
	if !full && !early {
		return
	}
	if pr.timer != nil {
		pr.timer.Stop()
	}
	delete(s.rounds, rk)
	s.markDoneLocked(rk, pr)
	if early {
		s.stats.EarlyCompletions++
	}
	snap, info, usable := s.finalizeLocked(rk, pr, full)
	if usable {
		s.enqueueFixLocked(&fixJob{rk: rk, snap: snap, info: info, start: pr.start})
	}
}

// roundDeadline fires when a pending round's deadline expires: the round
// either completes (fully sanitized, possibly degraded to coarse mode) or
// is evicted. Either way it is tombstoned so stragglers cannot resurrect
// it. Completion is an enqueue under the same lock that removed the
// round — localization happens on a fix worker — so teardown (Close and
// Drain both serialize on mu) can never race a half-finished completion.
func (s *Server) roundDeadline(rk roundKey) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	pr := s.rounds[rk]
	if pr == nil {
		s.mu.Unlock()
		return // completed in the meantime
	}
	delete(s.rounds, rk)
	s.markDoneLocked(rk, pr)
	snap, info, usable := s.finalizeLocked(rk, pr, false)
	if usable {
		s.enqueueFixLocked(&fixJob{rk: rk, snap: snap, info: info, start: pr.start})
	}
	s.mu.Unlock()
	if !usable {
		s.log.Warn("round evicted at deadline", "tag", rk.tag, "round", rk.round,
			"rows", len(pr.got), "of", s.cfg.Anchors*len(s.cfg.Bands))
		return
	}
	s.log.Info("round completed at deadline", "tag", rk.tag, "round", rk.round,
		"coarse", info.Coarse, "ref", info.Ref, "rows", len(pr.got))
}

// finalizeLocked assesses one assembled round against the quorums, masks
// every row that cannot be trusted (missing, rejected, or from an anchor
// that was quarantined when the round started) and advances the health
// plane's round boundary. It returns the snapshot to localize and its
// RoundInfo; usable is false when the round falls below even the coarse
// floor and must be evicted. full marks a round whose every row arrived.
// Caller holds s.mu.
func (s *Server) finalizeLocked(rk roundKey, pr *pendingRound, full bool) (*csi.Snapshot, RoundInfo, bool) {
	K := len(s.cfg.Bands)
	goodRow := func(i, k int) bool {
		key := [2]uint16{uint16(i), uint16(k)}
		return pr.got[key] && !pr.bad[key] && !pr.quar[i]
	}
	// A band supports α correction for anchor i only when both i's row
	// and the reference's row survived: without ĥ_r0 there is nothing to
	// correct against (Eq. 10, relaxed to reference r).
	minAnchors, minBands := s.cfg.MinAnchors, s.cfg.MinBands
	if minAnchors <= 0 {
		minAnchors = 2 // the estimator's floor (no-deadline configs)
	}
	if minBands <= 0 {
		minBands = 1
	}
	csiOK, coarseOK := 0, 0
	for i := 0; i < s.cfg.Anchors; i++ {
		nCSI, nAny := 0, 0
		for k := 0; k < K; k++ {
			if !goodRow(i, k) {
				continue
			}
			nAny++
			if goodRow(pr.ref, k) {
				nCSI++
			}
		}
		if nCSI >= minBands {
			csiOK++
		}
		if nAny > 0 {
			coarseOK++
		}
	}
	info := RoundInfo{Tag: rk.tag, Round: rk.round, Ref: pr.ref}
	usable := true
	switch {
	case csiOK >= minAnchors:
		if full {
			s.stats.Full++
		} else {
			s.stats.Partial++
		}
	case coarseOK >= 3: // RSSI trilateration floor
		info.Coarse = true
		s.stats.Coarse++
	case s.cfg.Fingerprint && coarseOK >= s.cfg.FingerprintMinAnchors:
		// Below the trilateration floor but above the KNN overlap
		// minimum: a fingerprint-capable estimator can still match a
		// partial signature (DESIGN.md §16), so the round completes
		// coarsely instead of being evicted.
		info.Coarse = true
		s.stats.Coarse++
	default:
		s.stats.Evicted++
		usable = false
	}
	if usable {
		for k := 0; k < K; k++ {
			for i := 0; i < s.cfg.Anchors; i++ {
				if !goodRow(i, k) {
					pr.snap.MaskMissing(k, i)
				}
			}
		}
	}
	s.roundBoundaryLocked(pr.seen)
	return pr.snap, info, usable
}

// roundBoundaryLocked advances the health plane by one completed round:
// scores are folded, quarantine transitions applied (resetting the
// validator history of anchors entering probation, so stale statistics do
// not judge fresh data) and the reference re-elected when needed. seen is
// the completing round's own presence set, so concurrent tag rounds
// sharing the global verdict accumulators cannot make each other's
// anchors look silent. Caller holds s.mu.
func (s *Server) roundBoundaryLocked(seen []bool) {
	transitions, reelected := s.health.endRoundLocked(seen)
	for _, tr := range transitions {
		if tr.To == anchorProbation {
			s.validator.Reset(tr.Anchor)
		}
		s.log.Warn("anchor health transition", "anchor", tr.Anchor,
			"from", tr.From.String(), "to", tr.To.String(),
			"score", fmt.Sprintf("%.2f", tr.Score))
	}
	if reelected {
		s.log.Warn("reference re-elected", "ref", s.health.referenceLocked())
	}
	for _, lt := range s.health.endLatencyRoundLocked() {
		if lt.Laggy {
			s.log.Warn("anchor marked laggy, excluded from quorum waits",
				"anchor", lt.Anchor, "p95", fmt.Sprintf("%.0fms", lt.P95*1e3))
		} else {
			s.log.Warn("laggy anchor readmitted to quorum waits",
				"anchor", lt.Anchor, "p95", fmt.Sprintf("%.0fms", lt.P95*1e3))
		}
	}
}

// markDoneLocked tombstones a round, keeping its first-row time and seen
// set so late rows still feed the latency plane. Caller holds s.mu.
func (s *Server) markDoneLocked(rk roundKey, pr *pendingRound) {
	if len(s.done) >= maxDoneRounds {
		s.done = make(map[roundKey]doneRound)
	}
	s.done[rk] = doneRound{start: pr.start, seen: pr.seen}
	if rk.round > s.maxRound {
		s.maxRound = rk.round
	}
}

// broadcast sends the fix to every connected anchor.
func (s *Server) broadcast(fix *wire.Fix) {
	type target struct {
		cl *client
		id uint8
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.conns))
	for c := range s.conns {
		if c.id == 0xFF {
			continue // connection has not completed its hello yet
		}
		targets = append(targets, target{cl: c, id: c.id})
	}
	s.mu.Unlock()
	for _, t := range targets {
		if err := s.sendClient(t.cl, fix); err != nil && !errors.Is(err, errBreakerOpen) {
			s.log.Warn("fix broadcast failed", "anchor", t.id, "err", err)
		}
	}
}

// Serve blocks until ctx is cancelled, then closes the server. Convenience
// for daemon mains.
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}
