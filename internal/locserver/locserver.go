// Package locserver implements BLoc's central server (§3): it accepts TCP
// connections from anchor daemons, collects their per-band CSI reports,
// assembles complete snapshots per acquisition round and hands them to a
// localization callback, broadcasting the resulting fix back to the
// anchors.
//
// The acquisition plane is fault tolerant. Every round follows the
// lifecycle pending → quorum-complete | deadline-complete | evicted: a
// round that receives every row completes immediately (full); when a
// RoundDeadline is configured, a round that reaches the deadline with at
// least MinAnchors anchors holding MinBands usable bands completes as a
// partial snapshot whose presence mask tells the estimator which rows to
// trust (partial); anything below quorum is evicted. Completed and evicted
// rounds are tombstoned so straggler rows cannot resurrect them. Optional
// server→anchor heartbeats prune connections whose daemons stopped
// answering.
package locserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// Config describes the expected deployment.
type Config struct {
	Anchors  int
	Antennas int
	Bands    []ble.ChannelIndex
	// OnSnapshot is called with each completed round's snapshot (tag
	// identifies which tag the round belongs to); the returned point is
	// broadcast to the anchors as the fix. Returning an error drops the
	// round (logged, not fatal). Partial rounds deliver a snapshot with a
	// presence mask (snap.Complete() == false).
	OnSnapshot func(tag uint16, round uint32, snap *csi.Snapshot) (geom.Point, error)
	// Logger defaults to slog.Default().
	Logger *slog.Logger

	// RoundDeadline bounds how long a round may stay pending after its
	// first row. 0 disables deadlines: rounds wait forever for every row
	// (the pre-fault-tolerance behavior).
	RoundDeadline time.Duration
	// MinAnchors is the quorum: a deadline-expired round completes as a
	// partial snapshot only if at least this many anchors contributed
	// MinBands usable bands (a band is usable for anchor i only if the
	// master's row for that band also arrived — correction needs ĥ00).
	// Defaults to 2 (the estimator's floor) when RoundDeadline is set.
	MinAnchors int
	// MinBands is the per-anchor usefulness floor for quorum counting.
	// Defaults to 1 when RoundDeadline is set.
	MinBands int

	// HeartbeatInterval enables server→anchor liveness probes: every
	// interval each authenticated connection gets a heartbeat, and a
	// connection that misses HeartbeatMisses consecutive probes without
	// echoing any of them is pruned. 0 disables heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the prune threshold (default 3).
	HeartbeatMisses int
}

// Stats counts round outcomes.
type Stats struct {
	Full    int // rounds completed with every row
	Partial int // rounds completed at deadline with a quorum
	Evicted int // rounds abandoned at deadline below quorum
	Pruned  int // connections dropped by heartbeat misses
}

// Server collects CSI and serves fixes.
type Server struct {
	cfg Config
	ln  net.Listener
	log *slog.Logger

	mu      sync.Mutex
	rounds  map[roundKey]*pendingRound // guarded by mu
	done    map[roundKey]bool          // completed rounds (bounded; see ingest); guarded by mu
	conns   map[*client]struct{}       // guarded by mu
	stats   Stats                      // guarded by mu
	fixes   chan wire.Fix              // completed fixes, for observers/tests
	closed  chan struct{}              // signals heartbeat loop shutdown
	wg      sync.WaitGroup
	timerWG sync.WaitGroup // deadline completions in flight
	closing bool           // guarded by mu
}

// maxDoneRounds bounds the completed-round memory; older entries are
// evicted wholesale once the cap is hit (late duplicates for ancient
// rounds would then re-localize, which is harmless).
const maxDoneRounds = 4096

// roundKey identifies one tag's acquisition round.
type roundKey struct {
	tag   uint16
	round uint32
}

// client is one connected anchor; writeMu serializes frames written by
// concurrent round completions so they never interleave.
type client struct {
	conn    net.Conn
	id      uint8 // guarded by Server.mu
	misses  int   // unanswered heartbeat count; guarded by Server.mu
	writeMu sync.Mutex
}

func (c *client) send(msg any) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.Send(c.conn, msg)
}

type pendingRound struct {
	snap  *csi.Snapshot
	got   map[[2]uint16]bool // (anchorID, bandIdx) already received
	timer *time.Timer        // deadline; nil when RoundDeadline is 0
}

// New starts a server listening on addr (e.g. "127.0.0.1:0").
func New(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("locserver: listen: %w", err)
	}
	s, err := NewWithListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return s, nil
}

// NewWithListener starts a server on an existing listener; the server
// takes ownership and closes it on Close. Tests use this to interpose
// fault-injecting listeners.
func NewWithListener(ln net.Listener, cfg Config) (*Server, error) {
	if cfg.Anchors < 2 || cfg.Antennas < 1 || len(cfg.Bands) == 0 {
		return nil, fmt.Errorf("locserver: invalid config %+v", cfg)
	}
	if cfg.OnSnapshot == nil {
		return nil, errors.New("locserver: OnSnapshot callback required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.RoundDeadline > 0 {
		if cfg.MinAnchors == 0 {
			cfg.MinAnchors = 2
		}
		if cfg.MinBands == 0 {
			cfg.MinBands = 1
		}
		if cfg.MinAnchors < 2 || cfg.MinAnchors > cfg.Anchors {
			return nil, fmt.Errorf("locserver: MinAnchors %d outside [2,%d]", cfg.MinAnchors, cfg.Anchors)
		}
		if cfg.MinBands < 1 || cfg.MinBands > len(cfg.Bands) {
			return nil, fmt.Errorf("locserver: MinBands %d outside [1,%d]", cfg.MinBands, len(cfg.Bands))
		}
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		log:    cfg.Logger,
		rounds: make(map[roundKey]*pendingRound),
		done:   make(map[roundKey]bool),
		conns:  make(map[*client]struct{}),
		fixes:  make(chan wire.Fix, 64),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.HeartbeatInterval > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Fixes returns a channel of completed fixes (buffered; drops when full).
func (s *Server) Fixes() <-chan wire.Fix { return s.fixes }

// Stats returns a snapshot of the round-outcome counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops the listener, all connections, pending round timers and the
// heartbeat loop, and waits for every in-flight completion.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosing := s.closing
	s.closing = true
	if !wasClosing {
		close(s.closed)
	}
	for rk, pr := range s.rounds {
		if pr.timer != nil {
			pr.timer.Stop()
		}
		delete(s.rounds, rk)
	}
	conns := make([]*client, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	s.timerWG.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if !closing {
				s.log.Error("accept failed", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// heartbeatLoop probes every authenticated connection each interval and
// prunes the ones that stopped echoing.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	var nonce uint32
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		nonce++
		type probe struct {
			cl    *client
			id    uint8
			prune bool
		}
		s.mu.Lock()
		probes := make([]probe, 0, len(s.conns))
		for c := range s.conns {
			if c.id == 0xFF {
				continue // hello not finished; the read path handles it
			}
			c.misses++
			dead := c.misses > s.cfg.HeartbeatMisses
			if dead {
				s.stats.Pruned++
			}
			probes = append(probes, probe{cl: c, id: c.id, prune: dead})
		}
		s.mu.Unlock()
		for _, p := range probes {
			if p.prune {
				s.log.Warn("anchor unresponsive, pruning", "anchor", p.id)
				p.cl.conn.Close() // its handler exits and deregisters
				continue
			}
			if err := p.cl.send(&wire.Heartbeat{Nonce: nonce}); err != nil {
				p.cl.conn.Close()
			}
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Register the connection before any blocking read, under the same
	// lock that Close uses to set closing: a connection accepted from the
	// TCP backlog after Close snapshotted the conn map would otherwise
	// keep its handler blocked forever and deadlock Close's wg.Wait.
	cl := &client{conn: conn, id: 0xFF}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.conns[cl] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, cl)
		s.mu.Unlock()
	}()

	msg, err := wire.Receive(conn)
	if err != nil {
		s.log.Warn("connection dropped before hello", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		s.log.Warn("first message was not hello", "remote", conn.RemoteAddr())
		return
	}
	if hello.Version != wire.ProtocolVersion {
		s.log.Warn("protocol version mismatch", "got", hello.Version, "want", wire.ProtocolVersion)
		return
	}
	if int(hello.AnchorID) >= s.cfg.Anchors || int(hello.Antennas) != s.cfg.Antennas ||
		int(hello.Bands) != len(s.cfg.Bands) {
		s.log.Warn("hello does not match deployment", "hello", fmt.Sprintf("%+v", hello))
		return
	}
	s.mu.Lock()
	cl.id = hello.AnchorID
	s.mu.Unlock()
	s.log.Info("anchor connected", "anchor", hello.AnchorID, "remote", conn.RemoteAddr())

	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Framing garbage, oversized frames and truncated payloads
				// all land here: the malformed client is dropped, the
				// server carries on.
				s.log.Warn("read failed", "anchor", hello.AnchorID, "err", err)
			}
			return
		}
		switch m := msg.(type) {
		case *wire.CSIRow:
			if m.AnchorID != hello.AnchorID {
				s.log.Warn("anchor id spoofed in row", "hello", hello.AnchorID, "row", m.AnchorID)
				continue
			}
			s.ingest(m)
		case *wire.Heartbeat:
			s.mu.Lock()
			cl.misses = 0
			s.mu.Unlock()
		default:
			s.log.Warn("unexpected message type", "anchor", hello.AnchorID, "msg", fmt.Sprintf("%T", msg))
		}
	}
}

// ingest merges one CSI row and completes the round when full.
func (s *Server) ingest(row *wire.CSIRow) {
	if int(row.BandIdx) >= len(s.cfg.Bands) || len(row.Tag) != s.cfg.Antennas {
		s.log.Warn("malformed csi row", "band", row.BandIdx, "antennas", len(row.Tag))
		return
	}
	var complete *csi.Snapshot
	rk := roundKey{tag: row.TagID, round: row.Round}
	s.mu.Lock()
	if s.done[rk] {
		s.mu.Unlock()
		return
	}
	pr := s.rounds[rk]
	if pr == nil {
		pr = &pendingRound{
			snap: csi.NewSnapshot(s.cfg.Bands, s.cfg.Anchors, s.cfg.Antennas),
			got:  make(map[[2]uint16]bool),
		}
		if s.cfg.RoundDeadline > 0 {
			pr.timer = time.AfterFunc(s.cfg.RoundDeadline, func() { s.roundDeadline(rk) })
		}
		s.rounds[rk] = pr
	}
	key := [2]uint16{uint16(row.AnchorID), row.BandIdx}
	if !pr.got[key] {
		pr.got[key] = true
		copy(pr.snap.Tag[row.BandIdx][row.AnchorID], row.Tag)
		if row.AnchorID != 0 {
			pr.snap.Master[row.BandIdx][row.AnchorID] = row.Master
		}
		if len(pr.got) == s.cfg.Anchors*len(s.cfg.Bands) {
			complete = pr.snap
			if pr.timer != nil {
				pr.timer.Stop()
			}
			delete(s.rounds, rk)
			s.markDoneLocked(rk)
			s.stats.Full++
		}
	}
	s.mu.Unlock()

	if complete != nil {
		s.complete(rk, complete)
	}
}

// roundDeadline fires when a pending round's deadline expires: the round
// either completes partially (quorum met, missing rows masked) or is
// evicted. Either way it is tombstoned so stragglers cannot resurrect it.
func (s *Server) roundDeadline(rk roundKey) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	pr := s.rounds[rk]
	if pr == nil {
		s.mu.Unlock()
		return // completed in the meantime
	}
	delete(s.rounds, rk)
	s.markDoneLocked(rk)

	// A band is usable for anchor i only when both i's row and the
	// master's row arrived: without ĥ00 there is nothing to correct
	// against (Eq. 10).
	K := len(s.cfg.Bands)
	usable := func(i int) int {
		n := 0
		for k := 0; k < K; k++ {
			if pr.got[[2]uint16{uint16(i), uint16(k)}] && pr.got[[2]uint16{0, uint16(k)}] {
				n++
			}
		}
		return n
	}
	present := 0
	for i := 0; i < s.cfg.Anchors; i++ {
		if usable(i) >= s.cfg.MinBands {
			present++
		}
	}
	if present < s.cfg.MinAnchors {
		s.stats.Evicted++
		s.mu.Unlock()
		s.log.Warn("round evicted at deadline", "tag", rk.tag, "round", rk.round,
			"present", present, "quorum", s.cfg.MinAnchors)
		return
	}
	snap := pr.snap
	for k := 0; k < K; k++ {
		for i := 0; i < s.cfg.Anchors; i++ {
			if !pr.got[[2]uint16{uint16(i), uint16(k)}] {
				snap.MaskMissing(k, i)
			}
		}
	}
	s.stats.Partial++
	s.timerWG.Add(1)
	s.mu.Unlock()
	defer s.timerWG.Done()
	s.log.Info("round completed partially", "tag", rk.tag, "round", rk.round,
		"present", present, "rows", len(pr.got), "of", s.cfg.Anchors*K)
	s.complete(rk, snap)
}

// markDoneLocked tombstones a round. Caller holds s.mu.
func (s *Server) markDoneLocked(rk roundKey) {
	if len(s.done) >= maxDoneRounds {
		s.done = make(map[roundKey]bool)
	}
	s.done[rk] = true
}

// complete localizes one assembled snapshot and broadcasts the fix.
func (s *Server) complete(rk roundKey, snap *csi.Snapshot) {
	loc, err := s.cfg.OnSnapshot(rk.tag, rk.round, snap)
	if err != nil {
		s.log.Error("localization failed", "tag", rk.tag, "round", rk.round, "err", err)
		return
	}
	fix := wire.Fix{Round: rk.round, TagID: rk.tag, X: loc.X, Y: loc.Y}
	select {
	case s.fixes <- fix:
	default: // observer not draining; drop rather than block ingestion
	}
	s.broadcast(&fix)
	s.log.Info("fix", "tag", rk.tag, "round", rk.round, "x", loc.X, "y", loc.Y)
}

// broadcast sends the fix to every connected anchor.
func (s *Server) broadcast(fix *wire.Fix) {
	type target struct {
		cl *client
		id uint8
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.conns))
	for c := range s.conns {
		if c.id == 0xFF {
			continue // connection has not completed its hello yet
		}
		targets = append(targets, target{cl: c, id: c.id})
	}
	s.mu.Unlock()
	for _, t := range targets {
		if err := t.cl.send(fix); err != nil {
			s.log.Warn("fix broadcast failed", "anchor", t.id, "err", err)
		}
	}
}

// Serve blocks until ctx is cancelled, then closes the server. Convenience
// for daemon mains.
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}
