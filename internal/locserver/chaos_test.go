package locserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// The cell-kill chaos drill (`make chaos-cells`, DESIGN.md §15): a
// 4-cell fleet under 10× burst load has one cell killed mid-burst by a
// scheduled faultnet.CellKiller panic. The drill asserts the blast
// radius: surviving cells deliver every offered round exactly once with
// bit-identical fixes to a no-fault baseline run; the killed cell's
// tags degrade to flagged coarse fallback fixes from a neighbor while
// it is down; the cell warm-restarts from its last durable checkpoint
// within the restart budget; and the fleet's restart/panic/breaker
// counters match the injected schedule exactly.

const (
	chaosCells     = 4
	chaosAnchors   = 3 // per cell
	chaosBands     = 2
	chaosLastRound = 14
)

var chaosBurst = faultnet.Burst{BaseTags: 2, Factor: 10, Start: 8, Rounds: 4}

// chaosTag maps a cell-local burst tag ID onto a fleet-unique tag ID.
func chaosTag(cell int, tag uint16) uint16 { return uint16(cell*100) + tag }

// chaosFleet builds the drill fleet. The localization stub is a pure
// function of (tag, round), so fix positions are comparable across
// runs, cells, and the fallback path.
func chaosFleet(t *testing.T, rec *fleetRecorder, killer *faultnet.CellKiller) *Fleet {
	t.Helper()
	stores := make([]*durable.Store, chaosCells)
	dir := t.TempDir()
	for i := range stores {
		st, err := durable.Open(fmt.Sprintf("%s/cell-%d", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	cfg := FleetConfig{
		Cells: chaosCells,
		Cell: Config{
			Anchors: chaosAnchors, Antennas: 1, Bands: ble.DataChannels()[:chaosBands],
			RoundDeadline: 50 * time.Millisecond,
			FixQueueDepth: 256,
		},
		OnSnapshot: func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(float64(info.Tag%100), float64(info.Round)), nil
		},
		OnFix: rec.record,
		Checkpoint: func(cell int) *CheckpointConfig {
			return &CheckpointConfig{Store: stores[cell], Interval: 10 * time.Millisecond}
		},
		Supervisor: SupervisorConfig{
			// A deliberate backoff floor: the drill feeds the down window
			// in microseconds, so 100ms guarantees rounds 9–10 land on the
			// fallback path, while staying far inside the 2s restart budget.
			BackoffInitial: 100 * time.Millisecond,
			BackoffMax:     200 * time.Millisecond,
			RestartWindow:  5 * time.Second,
			Seed:           7,
		},
		Logger: quietLogger(),
	}
	if killer != nil {
		cfg.Hooks = killer.Hook
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// chaosFeedRound offers one round of load to every cell: the burst
// schedule's tags, each reported by the cell's three anchors on both
// bands (global anchor IDs; the fleet router localizes them).
func chaosFeedRound(f *Fleet, round uint32) {
	for cell := 0; cell < chaosCells; cell++ {
		for _, tg := range chaosBurst.Tags(round) {
			tag := chaosTag(cell, tg)
			for a := 0; a < chaosAnchors; a++ {
				global := uint8(cell*chaosAnchors + a)
				for b := uint16(0); b < chaosBands; b++ {
					f.IngestRow(&wire.CSIRow{
						Round: round, TagID: tag, AnchorID: global, BandIdx: b,
						Tag:    []complex128{complex(float64(round), float64(b+1))},
						Master: complex(1, float64(a+1)),
					})
				}
			}
		}
	}
}

// chaosAwait polls cond every millisecond until it holds or the budget
// expires.
func chaosAwait(t *testing.T, budget time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached within %v", what, budget)
		}
		time.Sleep(time.Millisecond)
	}
}

// expectedChaosFixes returns the analytic delivery set for a cell over
// [1, lastRound]: one fix per offered (tag, round).
func expectedChaosFixes(cell int, rounds []uint32) map[fixKeyT]bool {
	out := make(map[fixKeyT]bool)
	for _, r := range rounds {
		for _, tg := range chaosBurst.Tags(r) {
			out[fixKeyT{cell: cell, tag: chaosTag(cell, tg), round: r}] = true
		}
	}
	return out
}

func roundsBetween(lo, hi uint32) []uint32 {
	var out []uint32
	for r := lo; r <= hi; r++ {
		out = append(out, r)
	}
	return out
}

// runChaosBaseline runs the identical offered load with no faults and
// returns the delivered set, for the surviving-cell parity check.
func runChaosBaseline(t *testing.T) *fleetRecorder {
	t.Helper()
	rec := newFleetRecorder()
	f := chaosFleet(t, rec, nil)
	defer f.Close()
	for r := uint32(1); r <= chaosLastRound; r++ {
		chaosFeedRound(f, r)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("baseline drain: %v", err)
	}
	return rec
}

func TestChaosCellsKillMidBurst(t *testing.T) {
	const victim = 1
	// Rounds 1..7 at base load give the victim 7·2·6 = 84 ingest events;
	// 60 more events into burst round 8 the kill fires — mid-burst, mid-
	// round.
	killer, err := faultnet.NewCellKiller(faultnet.KillSpec{
		Cell: victim, Event: HookIngest, Seq: 84 + 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newFleetRecorder()
	f := chaosFleet(t, rec, killer)
	defer f.Close()

	// Pre-burst: base load, and wait until (a) every pre-burst fix is
	// delivered and (b) the victim has at least one durable checkpoint to
	// warm-restart from.
	for r := uint32(1); r <= 7; r++ {
		chaosFeedRound(f, r)
	}
	preBurst := 0
	for c := 0; c < chaosCells; c++ {
		preBurst += len(expectedChaosFixes(c, roundsBetween(1, 7)))
	}
	chaosAwait(t, 5*time.Second, "pre-burst fixes flushed", func() bool {
		return len(rec.snapshot()) == preBurst
	})
	chaosAwait(t, 5*time.Second, "victim checkpoint", func() bool {
		return f.Stats().Cells[victim].Stats.Checkpoints >= 1
	})

	// Burst round 8 carries the kill. The panic is recovered on the
	// ingest path (the feeding goroutine survives it) and the supervisor
	// takes the victim down asynchronously.
	downStart := time.Now()
	chaosFeedRound(f, 8)
	if fired := killer.Fired(); len(fired) != 1 {
		t.Fatalf("kill schedule fired %d times during round 8, want 1", len(fired))
	}
	chaosAwait(t, 2*time.Second, "victim observed down", func() bool {
		return !f.Stats().Cells[victim].Running
	})

	// Rounds 9 and 10 are offered while the victim is down: its tags
	// must degrade to flagged coarse fallback fixes served by a
	// neighbor, not go silent.
	chaosFeedRound(f, 9)
	chaosFeedRound(f, 10)

	// Bounded unavailability: the supervisor must bring the victim back,
	// warm-restored, within the 2s restart budget.
	chaosAwait(t, 2*time.Second, "victim restarted", func() bool {
		cs := f.Stats().Cells[victim]
		return cs.Running && cs.Restarts == 1
	})
	downtime := time.Since(downStart)
	if cs := f.Stats().Cells[victim]; cs.Stats.WarmRestores != 1 {
		t.Errorf("victim warm restores = %d, want exactly 1 (restart must load the checkpoint)",
			cs.Stats.WarmRestores)
	}

	// Tail rounds land on the revived cell like nothing happened.
	for r := uint32(11); r <= chaosLastRound; r++ {
		chaosFeedRound(f, r)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	fs := f.Stats()

	// Exactly-once everywhere: nothing in the whole run may be delivered
	// twice, fallback or not.
	delivered := rec.snapshot()
	for k, n := range delivered {
		if n != 1 {
			t.Errorf("cell %d tag %d round %d delivered %d times", k.cell, k.tag, k.round, n)
		}
	}

	// Surviving cells: complete delivery, every fix bit-identical to the
	// no-fault baseline (stronger than "within noise" — the stub is
	// deterministic, so the kill must not perturb them at all).
	baseline := runChaosBaseline(t)
	baseDelivered := baseline.snapshot()
	for _, cell := range []int{0, 2, 3} {
		want := expectedChaosFixes(cell, roundsBetween(1, chaosLastRound))
		for k := range want {
			if delivered[k] != 1 {
				t.Errorf("surviving cell %d: tag %d round %d delivered %d times, want 1",
					cell, k.tag, k.round, delivered[k])
			}
			if baseDelivered[k] != 1 {
				t.Errorf("baseline cell %d: tag %d round %d delivered %d times, want 1",
					cell, k.tag, k.round, baseDelivered[k])
			}
			rec.mu.Lock()
			got := rec.fix[k]
			rec.mu.Unlock()
			baseline.mu.Lock()
			ref := baseline.fix[k]
			baseline.mu.Unlock()
			if got != ref {
				t.Errorf("surviving cell %d tag %d round %d: fix %+v != baseline %+v",
					cell, k.tag, k.round, got, ref)
			}
		}
		for k := range delivered {
			if k.cell == cell && !want[k] {
				t.Errorf("surviving cell %d delivered a never-offered fix: %+v", cell, k)
			}
		}
	}

	// The victim's downtime rounds: every offered (tag, round) served as
	// a fallback fix, flagged, attributed to the victim cell.
	fallbackWant := expectedChaosFixes(victim, []uint32{9, 10})
	for k := range fallbackWant {
		if delivered[k] != 1 {
			t.Errorf("down-window tag %d round %d delivered %d times, want 1 fallback fix",
				k.tag, k.round, delivered[k])
		}
		rec.mu.Lock()
		fall := rec.fall[k]
		rec.mu.Unlock()
		if !fall {
			t.Errorf("down-window tag %d round %d fix not flagged as fallback", k.tag, k.round)
		}
	}
	// The kill round itself (round 8) was mid-ingest when the victim went
	// down: its straggling tags may legitimately complete through either
	// path, so the exact fallback count is bounded below by the clean
	// down-window rounds and any excess must come from round 8.
	if fs.FallbackFixes < len(fallbackWant) {
		t.Errorf("FallbackFixes = %d, want at least %d", fs.FallbackFixes, len(fallbackWant))
	}
	rec.mu.Lock()
	for k, fall := range rec.fall {
		if fall && !(k.cell == victim && k.round >= 8 && k.round <= 10) {
			t.Errorf("fallback fix outside the victim's down window: %+v", k)
		}
	}
	rec.mu.Unlock()

	// Pre-kill and post-restart victim rounds are served normally (the
	// partially-ingested kill round 8 is the only sacrificed window).
	for _, rounds := range [][]uint32{roundsBetween(1, 7), roundsBetween(11, chaosLastRound)} {
		for k := range expectedChaosFixes(victim, rounds) {
			if delivered[k] != 1 {
				t.Errorf("victim tag %d round %d delivered %d times, want 1", k.tag, k.round, delivered[k])
			}
			rec.mu.Lock()
			fall := rec.fall[k]
			rec.mu.Unlock()
			if fall {
				t.Errorf("victim tag %d round %d flagged fallback outside the down window", k.tag, k.round)
			}
		}
	}

	// Counters match the injected schedule exactly.
	if got := len(killer.Fired()); got != 1 {
		t.Errorf("kills fired = %d, want 1", got)
	}
	if fs.Agg.CellRestarts != 1 {
		t.Errorf("CellRestarts = %d, want 1 (= kill schedule)", fs.Agg.CellRestarts)
	}
	if fs.Agg.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", fs.Agg.PanicsRecovered)
	}
	if fs.Agg.CellsQuarantined != 0 {
		t.Errorf("CellsQuarantined = %d, want 0 (single kill must not quarantine)", fs.Agg.CellsQuarantined)
	}
	if fs.Agg.BreakerOpens != 0 || fs.Agg.BreakerProbes != 0 || fs.Agg.BreakerSkips != 0 {
		t.Errorf("breaker counters moved with no anchor links: %+v", fs.Agg)
	}
	if fs.Cells[victim].State != "healthy" {
		t.Errorf("victim state %q after one restart, want healthy", fs.Cells[victim].State)
	}
	t.Logf("downtime (kill → warm restart observed): %v; fallback fixes: %d; victim stats: %+v",
		downtime, fs.FallbackFixes, fs.Cells[victim].Stats)
}

// TestChaosCellsRepeatedKillsEscalate drives one cell through repeated
// kills and asserts the supervisor escalates it to degraded while other
// cells keep serving untouched.
func TestChaosCellsRepeatedKillsEscalate(t *testing.T) {
	const victim = 2
	// Three kills: ingest events 12, 24 and 36 of the victim — one per
	// fed round at base load (12 events per round), regardless of
	// restart timing, because occurrence counters span incarnations.
	killer, err := faultnet.NewCellKiller(
		faultnet.KillSpec{Cell: victim, Event: HookIngest, Seq: 12},
		faultnet.KillSpec{Cell: victim, Event: HookIngest, Seq: 24},
		faultnet.KillSpec{Cell: victim, Event: HookIngest, Seq: 36},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := newFleetRecorder()
	f := chaosFleet(t, rec, killer)
	defer f.Close()

	round := uint32(0)
	for kills := 1; kills <= 3; kills++ {
		prev := f.Stats().Cells[victim].Restarts
		for len(killer.Fired()) < kills {
			round++
			if round >= chaosBurst.Start { // stay at base load
				round = 1
			}
			chaosFeedRound(f, round)
		}
		chaosAwait(t, 5*time.Second, fmt.Sprintf("restart %d", kills), func() bool {
			cs := f.Stats().Cells[victim]
			return cs.Running && cs.Restarts == prev+1
		})
	}
	fs := f.Stats()
	if fs.Agg.CellRestarts != 3 || len(killer.Fired()) != 3 {
		t.Fatalf("restarts=%d fired=%d, want 3 and 3", fs.Agg.CellRestarts, len(killer.Fired()))
	}
	if st := fs.Cells[victim].State; st != "degraded" {
		t.Errorf("victim state %q after 3 restarts in the window, want degraded", st)
	}
	for _, cs := range fs.Cells {
		if cs.Cell != victim && (cs.Restarts != 0 || cs.State != "healthy") {
			t.Errorf("bystander cell %d: restarts=%d state=%s", cs.Cell, cs.Restarts, cs.State)
		}
	}
}
