package locserver

import (
	"net"
	"sync"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// The degradation-ladder chaos drill (`make chaos-degrade`, DESIGN.md
// §16): scripted fault schedules drive a server (and a fleet) down every
// rung of the ladder — gated CSI, full CSI, fingerprint, centroid — and
// the drill asserts each rung engages in order, with the tier counters
// matching the injected schedule exactly and the hysteresis holding
// promotions back for TierPromoteRounds.

// tierRecorder collects every delivered fix's RoundInfo in order.
type tierRecorder struct {
	mu    sync.Mutex
	infos []RoundInfo
}

func (r *tierRecorder) record(info RoundInfo, _ wire.Fix) {
	r.mu.Lock()
	r.infos = append(r.infos, info)
	r.mu.Unlock()
}

func (r *tierRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.infos)
}

func (r *tierRecorder) at(i int) RoundInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.infos[i]
}

// degradeServer builds the single-cell drill server: 4 anchors × 2
// bands, CSI quorum 3 anchors × 2 bands, fingerprint plane enabled with
// the default 2-anchor floor and 2-round promotion hysteresis.
func degradeServer(t *testing.T, rec *tierRecorder, fingerprint bool) *Server {
	t.Helper()
	s, err := New("127.0.0.1:0", Config{
		Anchors: 4, Antennas: 1, Bands: ble.DataChannels()[:2],
		RoundDeadline: 75 * time.Millisecond,
		MinAnchors:    3, MinBands: 2,
		Fingerprint: fingerprint,
		Logger:      quietLogger(),
		OnSnapshot: func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(float64(info.Tag), float64(info.Round)), nil
		},
		OnFix: rec.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// feedDegradeRound ingests one round for tag 5, with rows only from the
// listed anchors (both bands each).
func feedDegradeRound(s *Server, round uint32, anchors []int) {
	for _, a := range anchors {
		for b := uint16(0); b < 2; b++ {
			s.IngestRow(&wire.CSIRow{
				Round: round, TagID: 5, AnchorID: uint8(a), BandIdx: b,
				Tag:    []complex128{complex(float64(round), float64(b+1))},
				Master: complex(1, float64(a+1)),
			})
		}
	}
}

// TestChaosDegradeLadderWalksEveryRung scripts the fault schedule rung
// by rung on a fingerprint-enabled server:
//
//	r1–r3 full rows, tag untracked        → TierFullCSI ×3
//	r4    full rows, tag now tracked      → TierGatedCSI
//	r5    anchors {1,2,3}: silent ref     → TierFingerprint (demotion)
//	r6    anchors {1,2}: below 3-anchor
//	      floor, above the KNN floor      → TierFingerprint (coverage ext.)
//	r7    full rows again                 → TierFingerprint (holdback)
//	r8    full rows, streak == 2          → TierGatedCSI (promotion)
//
// and asserts the per-tier round counters and hysteresis transitions
// match that schedule exactly.
func TestChaosDegradeLadderWalksEveryRung(t *testing.T) {
	rec := &tierRecorder{}
	s := degradeServer(t, rec, true)
	defer s.Close()

	all := []int{0, 1, 2, 3}
	schedule := []struct {
		anchors  []int
		tier     FixTier
		coarse   bool
		fallback string // label for failures
	}{
		{all, TierFullCSI, false, "r1 warmup"},
		{all, TierFullCSI, false, "r2 warmup"},
		{all, TierFullCSI, false, "r3 warmup"},
		{all, TierGatedCSI, false, "r4 tracked"},
		{[]int{1, 2, 3}, TierFingerprint, true, "r5 silent reference"},
		{[]int{1, 2}, TierFingerprint, true, "r6 below trilateration floor"},
		{all, TierFingerprint, true, "r7 promotion holdback"},
		{all, TierGatedCSI, false, "r8 promoted"},
	}
	for i, step := range schedule {
		feedDegradeRound(s, uint32(i+1), step.anchors)
		chaosAwait(t, 5*time.Second, step.fallback, func() bool { return rec.len() == i+1 })
		info := rec.at(i)
		if info.Tier != step.tier {
			t.Fatalf("%s: served at %s, want %s", step.fallback, info.Tier, step.tier)
		}
		if info.Coarse != step.coarse {
			t.Fatalf("%s: coarse=%v, want %v", step.fallback, info.Coarse, step.coarse)
		}
		if info.Degraded {
			t.Fatalf("%s: flagged overload-degraded with no overload", step.fallback)
		}
	}

	st := s.Stats()
	if st.TierFullRounds != 3 || st.TierGatedRounds != 2 ||
		st.TierFingerprintRounds != 3 || st.TierCentroidRounds != 0 {
		t.Errorf("tier rounds full=%d gated=%d fingerprint=%d centroid=%d, want 3/2/3/0",
			st.TierFullRounds, st.TierGatedRounds, st.TierFingerprintRounds, st.TierCentroidRounds)
	}
	if st.TierDemotions != 1 || st.TierPromotions != 1 || st.TierHoldbacks != 1 {
		t.Errorf("transitions demote=%d promote=%d holdback=%d, want 1/1/1",
			st.TierDemotions, st.TierPromotions, st.TierHoldbacks)
	}
	if st.Full != 6 || st.Coarse != 2 || st.Evicted != 0 {
		t.Errorf("round outcomes full=%d coarse=%d evicted=%d, want 6/2/0",
			st.Full, st.Coarse, st.Evicted)
	}
}

// TestChaosDegradeDisabledFallsToCentroid is the ladder drill's control
// run: without a fingerprint plane the same fault schedule serves the
// silent-reference round at TierCentroid, evicts the 2-anchor round
// (no rung below the trilateration floor exists), and promotes back
// with no holdback — the seed behavior, now with explicit tiers.
func TestChaosDegradeDisabledFallsToCentroid(t *testing.T) {
	rec := &tierRecorder{}
	s := degradeServer(t, rec, false)
	defer s.Close()

	all := []int{0, 1, 2, 3}
	for r := uint32(1); r <= 4; r++ {
		feedDegradeRound(s, r, all)
		chaosAwait(t, 5*time.Second, "warmup fix", func() bool { return rec.len() == int(r) })
	}
	feedDegradeRound(s, 5, []int{1, 2, 3}) // silent reference
	chaosAwait(t, 5*time.Second, "centroid fix", func() bool { return rec.len() == 5 })
	if info := rec.at(4); info.Tier != TierCentroid || !info.Coarse {
		t.Fatalf("silent-ref round served at %s coarse=%v, want centroid/true", info.Tier, info.Coarse)
	}
	feedDegradeRound(s, 6, []int{1, 2}) // below the trilateration floor
	chaosAwait(t, 5*time.Second, "eviction", func() bool { return s.Stats().Evicted == 1 })
	feedDegradeRound(s, 7, all) // immediate promotion, no holdback
	chaosAwait(t, 5*time.Second, "promoted fix", func() bool { return rec.len() == 6 })
	if info := rec.at(5); info.Tier != TierGatedCSI || info.Coarse {
		t.Fatalf("post-outage round served at %s coarse=%v, want gated-csi/false", info.Tier, info.Coarse)
	}

	st := s.Stats()
	if st.TierCentroidRounds != 1 || st.TierFingerprintRounds != 0 {
		t.Errorf("centroid=%d fingerprint=%d, want 1/0", st.TierCentroidRounds, st.TierFingerprintRounds)
	}
	if st.TierHoldbacks != 0 || st.TierDemotions != 1 || st.TierPromotions != 1 {
		t.Errorf("transitions demote=%d promote=%d holdback=%d, want 1/1/0",
			st.TierDemotions, st.TierPromotions, st.TierHoldbacks)
	}
}

// TestChaosDegradeOverloadDemotesToFingerprint pins the overload
// demotion site's ladder integration: a CSI-grade round demoted by the
// serve mode lands on the fingerprint rung (not an unlabeled coarse
// fix), and the tag then climbs back through the same hysteresis as a
// quorum demotion.
func TestChaosDegradeOverloadDemotesToFingerprint(t *testing.T) {
	s := bareOverloadServer(8, OverloadConfig{})
	s.cfg.Fingerprint = true
	s.promoteAfter = 2
	s.mode = modeDegraded

	j1 := untrackedJob(9, 1)
	s.enqueueFixLocked(j1)
	if j1.info.Tier != TierFingerprint || !j1.info.Degraded || !j1.info.Coarse {
		t.Fatalf("overload-demoted job: %+v, want fingerprint/degraded/coarse", j1.info)
	}
	if s.stats.OverloadDegraded != 1 || s.stats.TierDemotions != 1 {
		t.Fatalf("overload=%d demotions=%d, want 1/1", s.stats.OverloadDegraded, s.stats.TierDemotions)
	}

	// The first enqueue's updateModeLocked already returned the shallow
	// queue to normal mode; the next CSI-grade round is held back.
	if s.mode != modeNormal {
		t.Fatalf("mode %v after drain-depth update, want normal", s.mode)
	}
	j2 := untrackedJob(9, 2)
	s.enqueueFixLocked(j2)
	if j2.info.Tier != TierFingerprint || !j2.info.Coarse || j2.info.Degraded {
		t.Fatalf("holdback job: %+v, want fingerprint/coarse, not overload-degraded", j2.info)
	}
	j3 := untrackedJob(9, 3)
	s.enqueueFixLocked(j3)
	if j3.info.Tier != TierFullCSI || j3.info.Coarse {
		t.Fatalf("promoted job: %+v, want full-csi", j3.info)
	}
	if s.stats.TierHoldbacks != 1 || s.stats.TierPromotions != 1 {
		t.Fatalf("holdbacks=%d promotions=%d, want 1/1", s.stats.TierHoldbacks, s.stats.TierPromotions)
	}
	if s.stats.TierFingerprintRounds != 2 || s.stats.TierFullRounds != 1 {
		t.Fatalf("fingerprint=%d full=%d rounds, want 2/1", s.stats.TierFingerprintRounds, s.stats.TierFullRounds)
	}
}

// fleetTierRecorder keeps per-delivery RoundInfo plus the home cell.
type fleetTierRecorder struct {
	mu    sync.Mutex
	infos []RoundInfo
	cells []int
}

func (r *fleetTierRecorder) record(cell int, info RoundInfo, _ wire.Fix) {
	r.mu.Lock()
	r.infos = append(r.infos, info)
	r.cells = append(r.cells, cell)
	r.mu.Unlock()
}

func (r *fleetTierRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.infos)
}

// TestChaosDegradeFleetFallbackTier pins the fourth demotion site: a
// down cell's neighbor-served fallback fixes carry the fleet's best
// degraded tier (fingerprint when the cell template enables it), and
// buckets discarded on revival are counted in FallbackDropped.
func TestChaosDegradeFleetFallbackTier(t *testing.T) {
	rec := &fleetTierRecorder{}
	f, err := NewFleet(FleetConfig{
		Cells: 2,
		Cell: Config{
			Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2],
			RoundDeadline: 50 * time.Millisecond,
			Fingerprint:   true,
		},
		OnSnapshot: func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(float64(cell), float64(info.Tag)), nil
		},
		OnFix:  rec.record,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Take cell 0 down the way the fleet sees it mid-restart.
	c := f.cells[0]
	c.mu.Lock()
	srv := c.srv
	c.srv = nil
	c.running = false
	c.mu.Unlock()
	srv.Close()

	// A complete round for cell 0's anchors completes a fallback bucket;
	// the fix must be flagged and stamped with the fingerprint tier.
	for a := uint8(0); a < 3; a++ {
		for b := uint16(0); b < 2; b++ {
			f.IngestRow(fleetRow(7, 1, a, b))
		}
	}
	chaosAwait(t, 5*time.Second, "fallback fix", func() bool { return rec.len() == 1 })
	rec.mu.Lock()
	info, home := rec.infos[0], rec.cells[0]
	rec.mu.Unlock()
	if !info.Fallback || !info.Coarse || info.Tier != TierFingerprint || home != 0 {
		t.Fatalf("fallback fix info=%+v home=%d, want fallback/coarse/fingerprint from home 0", info, home)
	}

	// A half-assembled bucket left behind when the cell revives is
	// discarded — and the discard is visible, not silent.
	f.IngestRow(fleetRow(7, 2, 0, 0))
	f.fb.drop(0) // what restartCell does on revival
	if got := f.Stats().FallbackDropped; got != 1 {
		t.Fatalf("FallbackDropped = %d after revival discard, want 1", got)
	}
}

// TestChaosDegradeFallbackOverflowCounted pins the collector's other
// discard path: wholesale eviction at the bucket cap counts every
// discarded bucket.
func TestChaosDegradeFallbackOverflowCounted(t *testing.T) {
	fc := newFallbackCollector(2, 1, ble.DataChannels()[:1])
	row := func(round uint32) *wire.CSIRow {
		return &wire.CSIRow{Round: round, TagID: 1, AnchorID: 0, BandIdx: 0,
			Tag: []complex128{complex(1, 1)}}
	}
	for r := uint32(0); r < maxFallbackBuckets; r++ {
		if _, done := fc.add(0, row(r)); done {
			t.Fatalf("round %d completed with one of two rows", r)
		}
	}
	fc.add(0, row(maxFallbackBuckets)) // cap hit: wholesale clear
	if got := fc.droppedCount(); got != maxFallbackBuckets {
		t.Fatalf("droppedCount = %d after cap eviction, want %d", got, maxFallbackBuckets)
	}
}

// dialDegradeAnchor connects one raw TCP anchor to addr and completes
// the hello handshake with a cell-local anchor ID.
func dialDegradeAnchor(t *testing.T, addr string, anchor uint8) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("anchor %d dial: %v", anchor, err)
	}
	if err := wire.Send(conn, &wire.Hello{
		Version: wire.ProtocolVersion, AnchorID: anchor, Antennas: 1, Bands: 2,
	}); err != nil {
		t.Fatalf("anchor %d hello: %v", anchor, err)
	}
	return conn
}

// sendDegradeRound sends one tag round over raw TCP anchor connections
// (cell-local anchor IDs, both bands each).
func sendDegradeRound(t *testing.T, conns []net.Conn, tag uint16, round uint32) {
	t.Helper()
	for a, conn := range conns {
		for b := uint16(0); b < 2; b++ {
			if err := wire.Send(conn, &wire.CSIRow{
				Round: round, TagID: tag, AnchorID: uint8(a), BandIdx: b,
				Tag:    []complex128{complex(float64(round), float64(b+1))},
				Master: complex(1, float64(a+1)),
			}); err != nil {
				t.Fatalf("anchor %d round %d: %v", a, round, err)
			}
		}
	}
}

// TestChaosDegradeIngressServesDownCell closes the PR 9 gap: TCP anchors
// of a killed cell keep a dialable address during the down window (the
// fleet owns the listener), their rows land in the fallback collector
// through the downtime ingress, and complete rounds become flagged
// coarse fixes — then the revived cell serves the same address normally.
func TestChaosDegradeIngressServesDownCell(t *testing.T) {
	killer, err := faultnet.NewCellKiller(faultnet.KillSpec{Cell: 0, Event: HookIngest, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &fleetTierRecorder{}
	f, err := NewFleet(FleetConfig{
		Cells: 2,
		Cell: Config{
			Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2],
			RoundDeadline: 50 * time.Millisecond,
		},
		OnSnapshot: func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(float64(cell), float64(info.Tag)), nil
		},
		OnFix: rec.record,
		Hooks: killer.Hook,
		Supervisor: SupervisorConfig{
			// A wide down window: the raw TCP anchors below must dial,
			// hello and deliver a full round before the cell revives.
			BackoffInitial: 1500 * time.Millisecond,
			BackoffMax:     2 * time.Second,
			RestartWindow:  10 * time.Second,
			Seed:           7,
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	addr := f.CellAddr(0)

	// First row into cell 0 fires the scheduled kill; the supervisor
	// takes the cell down.
	f.IngestRow(fleetRow(7, 1, 0, 0))
	if fired := killer.Fired(); len(fired) != 1 {
		t.Fatalf("kill fired %d times, want 1", len(fired))
	}
	chaosAwait(t, 2*time.Second, "cell observed down", func() bool {
		return !f.Stats().Cells[0].Running
	})
	if got := f.CellAddr(0); got != addr {
		t.Fatalf("cell address changed across the kill: %s → %s", addr, got)
	}

	// Down window: raw TCP anchors dial the same address and deliver a
	// complete round. Before PR 10 these rounds were simply lost — the
	// ingress routes them into the fallback plane.
	conns := make([]net.Conn, 3)
	for a := range conns {
		conns[a] = dialDegradeAnchor(t, addr, uint8(a))
		defer conns[a].Close()
	}
	sendDegradeRound(t, conns, 7, 2)
	chaosAwait(t, 5*time.Second, "TCP fallback fix", func() bool { return rec.len() >= 1 })
	rec.mu.Lock()
	info, home := rec.infos[0], rec.cells[0]
	rec.mu.Unlock()
	if !info.Fallback || !info.Coarse || info.Tier != TierCentroid || home != 0 || info.Tag != 7 {
		t.Fatalf("TCP down-window fix info=%+v home=%d, want fallback/coarse/centroid for tag 7 home 0", info, home)
	}

	// Revival: the same address is served by the restarted cell; a fresh
	// TCP round is a normal (non-fallback) fix.
	chaosAwait(t, 10*time.Second, "cell restarted", func() bool {
		cs := f.Stats().Cells[0]
		return cs.Running && cs.Restarts == 1
	})
	conns2 := make([]net.Conn, 3)
	for a := range conns2 {
		conns2[a] = dialDegradeAnchor(t, addr, uint8(a))
		defer conns2[a].Close()
	}
	sendDegradeRound(t, conns2, 7, 3)
	chaosAwait(t, 5*time.Second, "post-revival fix", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		for _, in := range rec.infos {
			if in.Round == 3 && !in.Fallback {
				return true
			}
		}
		return false
	})
	if fs := f.Stats(); fs.Agg.CellRestarts != 1 || fs.FallbackFixes != 1 {
		t.Errorf("restarts=%d fallbackFixes=%d, want 1/1", fs.Agg.CellRestarts, fs.FallbackFixes)
	}
}

// TestChaosDegradeBreakerHalfOpenConcurrent pins the half-open contract
// under contention: with the cooldown elapsed and many goroutines racing
// sendClient on one dead link, exactly one send is the probe — the rest
// are skips (the probe's failure re-opens the breaker), never extra
// probes or unattempted opens.
func TestChaosDegradeBreakerHalfOpenConcurrent(t *testing.T) {
	// A goroutine-free server: sendClient only needs the clock, the stats
	// mutex and the logger, and a bare server lets the test freeze the
	// clock without racing live heartbeat machinery.
	srv := bareOverloadServer(8, OverloadConfig{})
	brkCfg := BreakerConfig{Threshold: 1, Cooldown: time.Second}.withDefaults()
	base := time.Unix(500, 0)
	cur := base
	srv.now = func() time.Time { return cur }

	p1, p2 := net.Pipe()
	p2.Close() // every write on p1 fails immediately
	defer p1.Close()
	cl := &client{conn: p1, id: 1, brk: breaker{cfg: brkCfg}}

	// Trip the breaker (threshold 1), then advance past the cooldown.
	if err := srv.sendClient(cl, &wire.Heartbeat{Nonce: 1}); err == nil {
		t.Fatal("send on a closed pipe succeeded")
	}
	if srv.stats.BreakerOpens != 1 {
		t.Fatalf("opens=%d after threshold, want 1", srv.stats.BreakerOpens)
	}
	cur = base.Add(2 * time.Second) // before the racers start: no concurrent write

	const racers = 16
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.sendClient(cl, &wire.Heartbeat{Nonce: 2})
		}()
	}
	wg.Wait()

	srv.mu.Lock()
	st := srv.stats
	srv.mu.Unlock()
	if st.BreakerProbes != 1 {
		t.Errorf("probes=%d under %d concurrent sends, want exactly 1", st.BreakerProbes, racers)
	}
	if st.BreakerSkips != racers-1 {
		t.Errorf("skips=%d, want %d (every loser skips, none attempts)", st.BreakerSkips, racers-1)
	}
	if st.BreakerOpens != 2 {
		t.Errorf("opens=%d, want 2 (threshold trip + failed probe re-open)", st.BreakerOpens)
	}
}
