package locserver

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// Kill-and-restart drills for the durable state plane (DESIGN.md §11).
// "Kill" is an abrupt Close with no drain — from the snapshot store's
// point of view indistinguishable from SIGKILL, since only checkpoints
// that already hit the disk survive. "Restart" is a fresh Server (and a
// fresh engine, fresh calibration holder: a new process) opened on the
// same store directory.

// calHolder plays the embedding process's role: it owns the calibration
// the way cmd/bloc-server does and exposes it to the checkpoint plane.
type calHolder struct {
	mu  sync.Mutex
	cal *core.Calibration
}

func (h *calHolder) get() *core.Calibration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cal
}

func (h *calHolder) export() durable.External {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cal == nil {
		return durable.External{}
	}
	return durable.External{Calib: h.cal.ExportRotors()}
}

func (h *calHolder) restore(ext durable.External) error {
	if ext.Calib == nil {
		return nil
	}
	cal, err := core.RestoreCalibration(ext.Calib)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.cal = cal
	h.mu.Unlock()
	return nil
}

// calibrate estimates the deployment's array calibration the way
// cmd/bloc-server -calibrate does, re-sounding with a fresh salt when a
// noisy draw makes the estimate unstable (the same retry a real operator
// performs).
func calibrate(t *testing.T, dep *testbed.Deployment) *core.Calibration {
	t.Helper()
	var lastErr error
	for salt := uint64(0); salt < 16; salt++ {
		d := dep.Fork(0xCA11 + salt)
		meas, txPos := d.CalibrationSounding()
		freqs := make([]float64, len(d.Bands))
		for k, ch := range d.Bands {
			freqs[k] = ch.CenterFreq()
		}
		cal, err := core.EstimateCalibration(d.Anchors, txPos, freqs, meas)
		if err == nil {
			return cal
		}
		lastErr = err
	}
	t.Fatal(lastErr)
	return nil
}

// startDurableTestbed boots one server "process" on an existing snapshot
// store: fresh engine, fresh anchors, calibration applied from h when
// present. The checkpoint interval is an hour so tests drive checkpoints
// explicitly via checkpointNow, keeping drills deterministic.
func startDurableTestbed(t *testing.T, seed uint64, store *durable.Store, h *calHolder) (*Server, []*anchor.Daemon) {
	t.Helper()
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	return startTestbedWith(t, seed, func(c *Config) {
		c.Checkpoint = &CheckpointConfig{
			Store:    store,
			Interval: time.Hour,
			Export:   h.export,
			Restore:  h.restore,
		}
	}, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		if info.Coarse {
			res, err := eng.LocateRSSI(snap)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		}
		if cal := h.get(); cal != nil {
			if corrected, err := cal.Apply(snap); err == nil {
				snap = corrected
			}
		}
		res, err := eng.LocateRef(snap, info.Ref)
		if err != nil {
			return geom.Point{}, err
		}
		return res.Estimate, nil
	})
}

// waitPending blocks until the server holds a pending round under rk.
func waitPending(t *testing.T, srv *Server, rk roundKey) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		_, ok := srv.rounds[rk]
		srv.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("round %v never became pending", rk)
		}
		time.Sleep(time.Millisecond)
	}
}

// runRound drives one full acquisition round through every daemon and
// returns the resulting fix.
func runRound(t *testing.T, srv *Server, daemons []*anchor.Daemon, round uint32, tag geom.Point) wire.Fix {
	t.Helper()
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, round, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case fix := <-srv.Fixes():
		return fix
	case <-time.After(10 * time.Second):
		t.Fatalf("no fix for round %d", round)
		return wire.Fix{}
	}
}

// kill simulates SIGKILL: daemons silenced, server torn down with no
// drain and no final checkpoint.
func kill(srv *Server, daemons []*anchor.Daemon) {
	for _, d := range daemons {
		d.Close()
	}
	srv.Close()
}

// TestRestartDrillWarmGoldenFix is the headline durability scenario: a
// calibrated server is killed between rounds; the restarted process must
// warm-restore the calibration and health plane from the last checkpoint
// and, replaying the identical sounding, produce a fix within 1e-9 m of
// the pre-crash one — the restore is exact, not merely plausible.
func TestRestartDrillWarmGoldenFix(t *testing.T) {
	const seed = 91
	dir := t.TempDir()
	tag := geom.Pt(0.7, -0.5)

	store1, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	h1 := &calHolder{cal: calibrate(t, dep)}
	srv1, daemons1 := startDurableTestbed(t, seed, store1, h1)
	if got := srv1.Stats().WarmRestores; got != 0 {
		t.Fatalf("fresh store produced a warm restore (%d)", got)
	}
	var golden wire.Fix
	for r := uint32(1); r <= 3; r++ {
		golden = runRound(t, srv1, daemons1, r, tag)
	}
	if err := srv1.checkpointNow(); err != nil {
		t.Fatal(err)
	}
	kill(srv1, daemons1)

	// New process: empty calibration holder, fresh store handle.
	store2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2 := &calHolder{}
	srv2, daemons2 := startDurableTestbed(t, seed, store2, h2)
	st := srv2.Stats()
	if st.WarmRestores != 1 {
		t.Fatalf("WarmRestores = %d, want 1", st.WarmRestores)
	}
	cal2 := h2.get()
	if cal2 == nil {
		t.Fatal("calibration not restored")
	}
	// The restored rotors are bit-identical to the saved ones.
	want := h1.cal.ExportRotors()
	got := cal2.ExportRotors()
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(real(want[i][j])) != math.Float64bits(real(got[i][j])) ||
				math.Float64bits(imag(want[i][j])) != math.Float64bits(imag(got[i][j])) {
				t.Fatalf("rotor [%d][%d] drifted through the snapshot: %v != %v",
					i, j, want[i][j], got[i][j])
			}
		}
	}
	// Replaying the killed round's sounding (daemons fork the world by
	// (tag, round), so round 3 reproduces bit-identical CSI) must land
	// within 1e-9 of the pre-crash fix — and it is the FIRST post-restore
	// round, well inside the two-round warm-restart budget.
	replay := runRound(t, srv2, daemons2, 3, tag)
	if dx, dy := math.Abs(replay.X-golden.X), math.Abs(replay.Y-golden.Y); dx > 1e-9 || dy > 1e-9 {
		t.Fatalf("post-restore fix (%.12f,%.12f) differs from pre-crash (%.12f,%.12f) by (%g,%g)",
			replay.X, replay.Y, golden.X, golden.Y, dx, dy)
	}
	// The round high-water mark continued instead of restarting at zero.
	srv2.mu.Lock()
	maxRound := srv2.maxRound
	srv2.mu.Unlock()
	if maxRound < 3 {
		t.Fatalf("maxRound = %d after restore+replay, want >= 3", maxRound)
	}
}

// TestRestartStaleSnapshotColdStart: a snapshot older than the TTL must
// be discarded — stale calibration is worse than none.
func TestRestartStaleSnapshotColdStart(t *testing.T) {
	const seed = 91
	dir := t.TempDir()
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	cal := calibrate(t, dep)
	st := &durable.State{
		SavedUnixNano: time.Now().Add(-2 * time.Hour).UnixNano(),
		Round:         7,
		Anchors:       make([]durable.AnchorHealth, len(dep.Anchors)),
	}
	for i := range st.Anchors {
		st.Anchors[i] = durable.AnchorHealth{Score: 1}
	}
	st.Calib = cal.ExportRotors()
	if err := store.Save(st); err != nil {
		t.Fatal(err)
	}

	h := &calHolder{}
	srv, _ := startDurableTestbed(t, seed, store, h)
	stats := srv.Stats()
	if stats.WarmRestores != 0 {
		t.Fatalf("WarmRestores = %d for a stale snapshot, want 0", stats.WarmRestores)
	}
	if stats.StaleDiscards != 1 {
		t.Fatalf("StaleDiscards = %d, want 1", stats.StaleDiscards)
	}
	if h.get() != nil {
		t.Fatal("stale calibration was restored")
	}
}

// TestSnapCorruptionDrills damages the newest snapshot slot with every
// injector faultnet offers and restarts the server on the wreckage. Each
// corruption must be detected by the record validation, fall back to the
// older generation (or cold-start when nothing survives), bump the
// corresponding Stats counter — and never panic.
func TestSnapCorruptionDrills(t *testing.T) {
	const seed = 93
	tag := geom.Pt(0.4, 0.3)

	// Two checkpoints: generation 1 lands in slot 1 (state-b), generation
	// 2 in slot 0 (state-a). The newest generation lives in slot 0, which
	// is what every drill corrupts.
	const newestSlot, olderSlot = 0, 1

	cases := []struct {
		name    string
		corrupt func(t *testing.T, c *faultnet.SnapCorrupter)
		// bothDead marks drills that destroy every slot: cold start.
		bothDead bool
		// clean marks drills whose damage is structurally valid (stale
		// generation): no corruption counter, still a warm restore.
		clean bool
	}{
		{name: "torn write", corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.TornWrite(newestSlot); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "bit flip", corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.BitFlip(newestSlot); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "truncated to header", corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.Truncate(newestSlot, 18); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "emptied", corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.Truncate(newestSlot, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "stale generation", clean: true, corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.StaleGeneration(newestSlot, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "both slots dead", bothDead: true, corrupt: func(t *testing.T, c *faultnet.SnapCorrupter) {
			if err := c.BitFlip(newestSlot); err != nil {
				t.Fatal(err)
			}
			if err := c.TornWrite(olderSlot); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store1, err := durable.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			dep, err := testbed.Paper(seed)
			if err != nil {
				t.Fatal(err)
			}
			h1 := &calHolder{cal: calibrate(t, dep)}
			srv1, daemons1 := startDurableTestbed(t, seed, store1, h1)
			runRound(t, srv1, daemons1, 1, tag)
			if err := srv1.checkpointNow(); err != nil {
				t.Fatal(err)
			}
			runRound(t, srv1, daemons1, 2, tag)
			if err := srv1.checkpointNow(); err != nil {
				t.Fatal(err)
			}
			kill(srv1, daemons1)

			tc.corrupt(t, faultnet.NewSnapCorrupter(dir, uint64(1000+ci)))

			store2, err := durable.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			h2 := &calHolder{}
			srv2, daemons2 := startDurableTestbed(t, seed, store2, h2)
			st := srv2.Stats()
			srv2.mu.Lock()
			maxRound := srv2.maxRound
			srv2.mu.Unlock()
			switch {
			case tc.bothDead:
				if st.WarmRestores != 0 {
					t.Fatalf("WarmRestores = %d with every slot dead, want 0", st.WarmRestores)
				}
				if st.SlotCorruptions < 2 {
					t.Fatalf("SlotCorruptions = %d, want >= 2", st.SlotCorruptions)
				}
				if h2.get() != nil {
					t.Fatal("calibration conjured from corrupted slots")
				}
			case tc.clean:
				// Structurally valid but old: newest-wins selection serves
				// the other slot; nothing is "corrupt".
				if st.WarmRestores != 1 {
					t.Fatalf("WarmRestores = %d, want 1", st.WarmRestores)
				}
				if st.SlotCorruptions != 0 {
					t.Fatalf("SlotCorruptions = %d for a stale-generation drill, want 0", st.SlotCorruptions)
				}
				if maxRound != 1 {
					t.Fatalf("restored round %d, want 1 (the surviving generation)", maxRound)
				}
			default:
				if st.WarmRestores != 1 {
					t.Fatalf("WarmRestores = %d, want 1 (fallback to older generation)", st.WarmRestores)
				}
				if st.SlotCorruptions == 0 {
					t.Fatal("corruption went uncounted")
				}
				if st.SnapshotFallbacks == 0 {
					t.Fatal("fallback went uncounted")
				}
				if maxRound != 1 {
					t.Fatalf("restored round %d, want 1 (generation 1 snapshot)", maxRound)
				}
				if h2.get() == nil {
					t.Fatal("calibration lost despite a valid older generation")
				}
			}
			// Whatever happened to the snapshots, the server must still
			// localize.
			fix := runRound(t, srv2, daemons2, 5, tag)
			if math.IsNaN(fix.X) || math.IsNaN(fix.Y) {
				t.Fatal("post-corruption fix is NaN")
			}
		})
	}
}

// TestDrainGraceful: Drain stops admitting new rounds, lets the in-flight
// round finish, writes a final checkpoint and closes.
func TestDrainGraceful(t *testing.T) {
	const seed = 93
	tag := geom.Pt(0.2, 0.6)
	dir := t.TempDir()
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	h := &calHolder{cal: calibrate(t, dep)}
	srv, daemons := startDurableTestbed(t, seed, store, h)

	runRound(t, srv, daemons, 1, tag)

	// Round 2 goes in flight: three of four anchors report. Wait for the
	// server to register the pending round before draining — otherwise
	// rows still in TCP flight would arrive after the drain latches and
	// be refused as a "new" round.
	for _, d := range daemons[:3] {
		if err := d.MeasureAndReport(0, 2, tag); err != nil {
			t.Fatal(err)
		}
	}
	waitPending(t, srv, roundKey{tag: 0, round: 2})
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	// Wait until the drain has actually latched.
	for {
		srv.mu.Lock()
		draining := srv.draining
		srv.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// A brand-new round is refused admission during the drain...
	if err := daemons[3].MeasureAndReport(0, 9, tag); err != nil {
		t.Fatal(err)
	}
	// ...but the in-flight round's last rows still land and complete it.
	if err := daemons[3].MeasureAndReport(0, 2, tag); err != nil {
		t.Fatal(err)
	}
	select {
	case fix := <-srv.Fixes():
		if fix.Round != 2 {
			t.Fatalf("drained fix for round %d, want 2", fix.Round)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight round did not complete during drain")
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The refused round never produced a fix.
	select {
	case fix := <-srv.Fixes():
		t.Fatalf("unexpected fix for round %d after drain", fix.Round)
	default:
	}
	// The final checkpoint captured the drained state.
	if got := store.Stats().Writes; got < 1 {
		t.Fatalf("store writes = %d, want >= 1 (final checkpoint)", got)
	}
	final, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if final.Round != 2 {
		t.Fatalf("final checkpoint round = %d, want 2", final.Round)
	}
	if final.Calib == nil {
		t.Fatal("final checkpoint lost the calibration")
	}
}

// TestDrainTimeout: a round that can never complete must not wedge the
// drain — the context bounds it and the server still closes with a final
// checkpoint.
func TestDrainTimeout(t *testing.T) {
	const seed = 95
	dir := t.TempDir()
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := &calHolder{}
	srv, daemons := startDurableTestbed(t, seed, store, h)

	// One lonely anchor opens a round nobody else will ever finish.
	if err := daemons[0].MeasureAndReport(0, 1, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	waitPending(t, srv, roundKey{tag: 0, round: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v despite a 200ms deadline", elapsed)
	}
	if got := store.Stats().Writes; got < 1 {
		t.Fatalf("store writes = %d, want >= 1 (final checkpoint)", got)
	}
}
