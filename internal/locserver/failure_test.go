package locserver

import (
	"net"
	"sync"
	"testing"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// TestAnchorDisconnectAndReconnect kills one anchor mid-round and brings a
// replacement up: the round must still complete once the replacement
// delivers the missing rows (per-round state survives connection churn).
func TestAnchorDisconnectAndReconnect(t *testing.T) {
	const seed = 44
	var mu sync.Mutex
	completed := 0
	srv, daemons := startTestbed(t, seed, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		completed++
		mu.Unlock()
		return geom.Pt(0, 0), nil
	})
	tag := geom.Pt(0.4, 0.4)

	// Three of four anchors report round 9; anchor 3 dies before sending.
	for _, d := range daemons[:3] {
		if err := d.MeasureAndReport(0, 9, tag); err != nil {
			t.Fatal(err)
		}
	}
	daemons[3].Close()

	// No fix yet: the round is incomplete.
	select {
	case f := <-srv.Fixes():
		t.Fatalf("round completed without anchor 3: %+v", f)
	case <-time.After(300 * time.Millisecond):
	}

	// A replacement daemon for anchor 3 connects and reports.
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	replacement, err := anchor.New(3, dep, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := replacement.Connect(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer replacement.Close()
	if err := replacement.MeasureAndReport(0, 9, tag); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Fixes():
	case <-time.After(5 * time.Second):
		t.Fatal("round never completed after reconnect")
	}
	mu.Lock()
	defer mu.Unlock()
	if completed != 1 {
		t.Errorf("completed %d rounds, want 1", completed)
	}
}

// TestServerIgnoresMalformedRows verifies spoofed and malformed rows are
// dropped without disturbing legitimate rounds.
func TestServerIgnoresMalformedRows(t *testing.T) {
	const seed = 45
	srv, daemons := startTestbed(t, seed, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		return geom.Pt(0, 0), nil
	})

	// A raw connection posing as anchor 1 but sending garbage rows.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dep, _ := testbed.Paper(seed)
	if err := wire.Send(conn, &wire.Hello{
		Version: wire.ProtocolVersion, AnchorID: 1,
		Antennas: uint8(dep.Anchors[0].N), Bands: uint16(len(dep.Bands)),
	}); err != nil {
		t.Fatal(err)
	}
	// Spoofed anchor id (claims 2, hello said 1): must be dropped.
	wire.Send(conn, &wire.CSIRow{Round: 5, AnchorID: 2, BandIdx: 0,
		Tag: make([]complex128, dep.Anchors[0].N), Master: 1})
	// Wrong antenna count: must be dropped.
	wire.Send(conn, &wire.CSIRow{Round: 5, AnchorID: 1, BandIdx: 0,
		Tag: make([]complex128, 1), Master: 1})
	// Out-of-range band: must be dropped.
	wire.Send(conn, &wire.CSIRow{Round: 5, AnchorID: 1, BandIdx: 999,
		Tag: make([]complex128, dep.Anchors[0].N), Master: 1})

	// A legitimate round still completes normally.
	tag := geom.Pt(-0.3, 0.9)
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, 6, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case fix := <-srv.Fixes():
		if fix.Round != 6 {
			t.Errorf("completed round %d, want 6", fix.Round)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legitimate round blocked by malformed traffic")
	}
}

// TestServerCloseUnblocksClients verifies Close terminates promptly even
// with connected clients mid-stream.
func TestServerCloseUnblocksClients(t *testing.T) {
	srv, daemons := startTestbed(t, 46, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		return geom.Pt(0, 0), nil
	})
	// Partial round in flight.
	if err := daemons[0].MeasureAndReport(0, 1, geom.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Logf("close returned %v (listener already closed is fine)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung")
	}
}

// TestMultiTagRoundsAggregateIndependently runs two tags' rounds through
// the same anchors concurrently: each (tag, round) must complete exactly
// once with its own snapshot, and the fixes must carry the right tag ids.
func TestMultiTagRoundsAggregateIndependently(t *testing.T) {
	const seed = 47
	type key struct {
		tag   uint16
		round uint32
	}
	var mu sync.Mutex
	seen := map[key]int{}
	srv, daemons := startTestbed(t, seed, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		seen[key{info.Tag, info.Round}]++
		mu.Unlock()
		// Return a tag-dependent point so fixes are distinguishable.
		return geom.Pt(float64(info.Tag), float64(info.Round)), nil
	})
	posA, posB := geom.Pt(0.5, 0.5), geom.Pt(-1.0, -1.0)
	// Interleave the two tags' reports across anchors.
	for _, d := range daemons {
		if err := d.MeasureAndReport(1, 10, posA); err != nil {
			t.Fatal(err)
		}
		if err := d.MeasureAndReport(2, 10, posB); err != nil {
			t.Fatal(err)
		}
	}
	gotTags := map[uint16]bool{}
	for i := 0; i < 2; i++ {
		select {
		case fix := <-srv.Fixes():
			gotTags[fix.TagID] = true
			if fix.X != float64(fix.TagID) {
				t.Errorf("fix for tag %d carries wrong payload %v", fix.TagID, fix.X)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("multi-tag rounds never completed")
		}
	}
	if !gotTags[1] || !gotTags[2] {
		t.Errorf("fixes for tags = %v, want both 1 and 2", gotTags)
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[key{1, 10}] != 1 || seen[key{2, 10}] != 1 {
		t.Errorf("completions = %v, want one per (tag, round)", seen)
	}
}
