package locserver

import (
	"context"
	"io"
	"log/slog"
	"net"
	"sync"
	"testing"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/ble"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startTestbed spins up a server plus one daemon per anchor, all sharing
// the deployment seed, and returns them with a cleanup function.
func startTestbed(t *testing.T, seed uint64, onSnap func(RoundInfo, *csi.Snapshot) (geom.Point, error)) (*Server, []*anchor.Daemon) {
	t.Helper()
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{
		Anchors:    len(dep.Anchors),
		Antennas:   dep.Anchors[0].N,
		Bands:      dep.Bands,
		OnSnapshot: onSnap,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		// Every daemon gets its own deployment built from the same seed —
		// the distributed processes share the "physical world" only
		// through the seed, as real anchors share it through the air.
		depI, err := testbed.Paper(seed)
		if err != nil {
			t.Fatal(err)
		}
		d, err := anchor.New(i, depI, quietLogger())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
	}
	return srv, daemons
}

// TestIngestRowOutOfRangeAnchorRejected pins the exported ingest
// path's anchor bound: the TCP path validates anchor IDs at hello, but
// Server.IngestRow (the fleet router's seam) must reject an
// out-of-range ID as malformed — not panic under s.mu, which would
// strand the lock behind the ingest recover and wedge every later
// ingest, Stats and Close.
func TestIngestRowOutOfRangeAnchorRejected(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{
		Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2],
		FixQueueDepth: 8,
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(0, 0), nil
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	row := func(anchor uint8, band uint16) *wire.CSIRow {
		return &wire.CSIRow{
			Round: 1, TagID: 5, AnchorID: anchor, BandIdx: band,
			Tag: []complex128{complex(1, float64(band+1))}, Master: complex(1, 1),
		}
	}
	// Out-of-range anchor IDs, before and mid-round: dropped, no panic.
	srv.IngestRow(row(3, 0))
	srv.IngestRow(row(0, 0))
	srv.IngestRow(row(0xFF, 1))
	// The server still assembles and serves the valid round.
	for a := uint8(0); a < 3; a++ {
		for b := uint16(0); b < 2; b++ {
			srv.IngestRow(row(a, b))
		}
	}
	select {
	case fix := <-srv.Fixes():
		if fix.TagID != 5 || fix.Round != 1 {
			t.Fatalf("unexpected fix %+v", fix)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round never completed after out-of-range rows")
	}
	// Stats must not block (the lock was never stranded) and no panic
	// was recovered: the bad rows were rejected up front.
	if st := srv.Stats(); st.PanicsRecovered != 0 {
		t.Errorf("PanicsRecovered = %d, want 0 (rejection, not recovery)", st.PanicsRecovered)
	}
}

func TestDistributedSnapshotMatchesDirect(t *testing.T) {
	const seed = 21
	var (
		mu       sync.Mutex
		received *csi.Snapshot
	)
	srv, daemons := startTestbed(t, seed, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		received = snap
		mu.Unlock()
		return geom.Pt(0, 0), nil
	})
	tag := geom.Pt(0.9, -1.1)
	for _, d := range daemons {
		if err := d.MeasureAndReport(0, 7, tag); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-srv.Fixes():
	case <-time.After(5 * time.Second):
		t.Fatal("round never completed")
	}
	// The assembled snapshot must equal the direct simulation of the same
	// round.
	dep, _ := testbed.Paper(seed)
	want := dep.Fork(7).Sounding(tag)
	mu.Lock()
	defer mu.Unlock()
	if received == nil {
		t.Fatal("no snapshot received")
	}
	for b := range want.Bands {
		for i := range want.Tag[b] {
			for j := range want.Tag[b][i] {
				if received.Tag[b][i][j] != want.Tag[b][i][j] {
					t.Fatalf("band %d anchor %d ant %d: %v != %v",
						b, i, j, received.Tag[b][i][j], want.Tag[b][i][j])
				}
			}
			if received.Master[b][i] != want.Master[b][i] {
				t.Fatalf("band %d master %d mismatch", b, i)
			}
		}
	}
}

func TestDistributedLocalizationEndToEnd(t *testing.T) {
	const seed = 33
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	srv, daemons := startTestbed(t, seed, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		res, err := eng.LocateRef(snap, info.Ref)
		if err != nil {
			return geom.Point{}, err
		}
		return res.Estimate, nil
	})

	// Daemons learn fixes via broadcast.
	fixCh := make(chan wire.Fix, 8)
	daemons[2].OnFix = func(f wire.Fix) { fixCh <- f }

	tag := geom.Pt(-0.7, 0.8)
	for round := uint32(1); round <= 2; round++ {
		for _, d := range daemons {
			if err := d.MeasureAndReport(0, round, tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 2; round++ {
		select {
		case fix := <-srv.Fixes():
			est := geom.Pt(fix.X, fix.Y)
			if est.Dist(tag) > 2.0 {
				t.Errorf("round %d fix %v too far from tag %v", fix.Round, est, tag)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for fix")
		}
	}
	// The anchor-side broadcast listener saw at least one fix.
	select {
	case <-fixCh:
	case <-time.After(5 * time.Second):
		t.Fatal("anchor never received fix broadcast")
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	dep, err := testbed.Paper(1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{
		Anchors:  4,
		Antennas: 4,
		Bands:    dep.Bands,
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Point{}, nil
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []*wire.Hello{
		{Version: 99, AnchorID: 0, Antennas: 4, Bands: 37},                   // bad version
		{Version: wire.ProtocolVersion, AnchorID: 9, Antennas: 4, Bands: 37}, // bad anchor
		{Version: wire.ProtocolVersion, AnchorID: 0, Antennas: 2, Bands: 37}, // bad antennas
	}
	for _, h := range cases {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.Send(conn, h); err != nil {
			t.Fatal(err)
		}
		// Server should close the connection: the next read must fail
		// promptly.
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		if _, err := wire.Receive(conn); err == nil {
			t.Errorf("server accepted bad hello %+v", h)
		}
		conn.Close()
	}
}

func TestServerConfigValidation(t *testing.T) {
	ok := func(RoundInfo, *csi.Snapshot) (geom.Point, error) { return geom.Point{}, nil }
	if _, err := New("127.0.0.1:0", Config{Anchors: 1, Antennas: 4, Bands: ble.DataChannels(), OnSnapshot: ok}); err == nil {
		t.Error("1 anchor should be rejected")
	}
	if _, err := New("127.0.0.1:0", Config{Anchors: 4, Antennas: 4, Bands: ble.DataChannels()}); err == nil {
		t.Error("missing callback should be rejected")
	}
	if _, err := New("127.0.0.1:0", Config{Anchors: 4, Antennas: 4, OnSnapshot: ok}); err == nil {
		t.Error("empty bands should be rejected")
	}
}

func TestDuplicateRowsIgnored(t *testing.T) {
	const seed = 5
	calls := 0
	var mu sync.Mutex
	srv, daemons := startTestbed(t, seed, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return geom.Pt(0, 0), nil
	})
	tag := geom.Pt(0.2, 0.2)
	// Send the same round twice from every anchor: rounds complete once.
	for rep := 0; rep < 2; rep++ {
		for _, d := range daemons {
			if err := d.MeasureAndReport(0, 3, tag); err != nil {
				t.Fatal(err)
			}
		}
	}
	select {
	case <-srv.Fixes():
	case <-time.After(5 * time.Second):
		t.Fatal("round never completed")
	}
	time.Sleep(200 * time.Millisecond) // allow any (wrong) second completion
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("OnSnapshot called %d times, want 1", calls)
	}
}

func TestAnchorDaemonValidation(t *testing.T) {
	dep, err := testbed.Paper(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anchor.New(9, dep, quietLogger()); err == nil {
		t.Error("out-of-range anchor id should fail")
	}
	d, err := anchor.New(0, dep, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MeasureAndReport(0, 1, geom.Pt(0, 0)); err == nil {
		t.Error("report before connect should fail")
	}
	if err := d.Close(); err != nil {
		t.Errorf("close unconnected daemon: %v", err)
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	srv, _ := startTestbed(t, 48, func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		return geom.Point{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}
