package locserver

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// TestReelectionMidRound drives ingest directly (no network, no daemons)
// to pin the in-flight semantics: a round that was already pending when
// the reference was re-elected completes on the OLD reference it captured
// at creation; only rounds created afterwards carry the new one.
func TestReelectionMidRound(t *testing.T) {
	const (
		anchors  = 4
		antennas = 2
		bands    = 4
	)
	var (
		mu    sync.Mutex
		infos []RoundInfo
	)
	srv, err := New("127.0.0.1:0", Config{
		Anchors:       anchors,
		Antennas:      antennas,
		Bands:         ble.DataChannels()[:bands],
		RoundDeadline: 150 * time.Millisecond,
		MinAnchors:    2,
		Logger:        quietLogger(),
		OnSnapshot: func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			mu.Lock()
			infos = append(infos, info)
			mu.Unlock()
			return geom.Pt(0, 0), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewPCG(11, 11))
	send := func(anchor, band int, round uint32) {
		tones := make([]complex128, antennas)
		for j := range tones {
			tones[j] = cmplx.Rect(0.2*(0.6+0.8*rng.Float64()), (rng.Float64()*2-1)*math.Pi)
		}
		srv.ingest(&wire.CSIRow{
			Round: round, TagID: 1, AnchorID: uint8(anchor), BandIdx: uint16(band),
			Tag: tones, Master: cmplx.Rect(0.2, rng.Float64()),
		})
	}
	// Rounds 1 and 2 are both pending before any boundary: anchors 1..3
	// report, the reference (anchor 0) is silent. Both captured Ref = 0.
	for round := uint32(1); round <= 2; round++ {
		for a := 1; a < anchors; a++ {
			for b := 0; b < bands; b++ {
				send(a, b, round)
			}
		}
	}
	// Both complete at their deadlines; round 1's boundary re-elects.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(infos)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 deadline rounds completed", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Round 3 is created after the re-election: it must carry the new ref.
	for a := 1; a < anchors; a++ {
		for b := 0; b < bands; b++ {
			send(a, b, 3)
		}
	}
	for {
		mu.Lock()
		n := len(infos)
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("round 3 never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, info := range infos[:2] {
		// In-flight rounds complete on the reference they started under —
		// and with that reference silent they can only be coarse.
		if info.Ref != 0 {
			t.Errorf("round %d completed with ref %d, want the captured 0", info.Round, info.Ref)
		}
		if !info.Coarse {
			t.Errorf("round %d with a silent reference should be coarse", info.Round)
		}
	}
	if infos[2].Round != 3 {
		t.Fatalf("third completion is round %d, want 3", infos[2].Round)
	}
	if infos[2].Ref == 0 {
		t.Error("round 3 still references the dead anchor 0")
	}
	if infos[2].Coarse {
		t.Error("round 3 should be correction-grade under the new reference")
	}
	st := srv.Stats()
	// Both pending rounds' boundaries can see a silent reference (verdicts
	// are counted between boundaries), so one or two elections are valid —
	// what matters is that the reference moved off the dead anchor.
	if st.Reelections < 1 || st.Reference == 0 {
		t.Errorf("stats = %+v, want re-election away from anchor 0", st)
	}
}

// TestFaultDrillMasterDeathAndCorruption is the acceptance drill: a real
// testbed where one anchor starts reporting NaN CSI mid-run and the master
// (initial reference) dies outright. The system must quarantine the
// corrupt anchor, re-elect the reference within two rounds of the master's
// death, keep emitting finite fixes, and hold accuracy on clean rounds.
func TestFaultDrillMasterDeathAndCorruption(t *testing.T) {
	const (
		seed        = 81
		cleanRounds = 4  // fully healthy
		faultRounds = 10 // anchor 1 corrupt from round 5
		totalRounds = 14 // master dead from round 11
		killRound   = 10
	)
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		infos = map[uint32]RoundInfo{}
	)
	srv, daemons := startTestbedWith(t, seed, func(c *Config) {
		c.RoundDeadline = 250 * time.Millisecond
		c.MinAnchors = 2
	}, func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
		mu.Lock()
		infos[info.Round] = info
		mu.Unlock()
		if info.Coarse {
			res, err := eng.LocateRSSI(snap)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		}
		res, err := eng.LocateRef(snap, info.Ref)
		if err != nil {
			return geom.Point{}, err
		}
		return res.Estimate, nil
	})

	corrupter := faultnet.NewCorrupter(faultnet.CorruptConfig{Seed: seed, NaNProb: 1})
	tag := geom.Pt(0.7, -0.9)
	fixErr := map[uint32]float64{}
	for round := uint32(1); round <= totalRounds; round++ {
		if round == faultRounds/2 {
			// Anchor 1's radio goes bad: every row it reports carries NaN.
			daemons[1].Mutate = corrupter.Apply
		}
		live := daemons
		if round > killRound {
			live = daemons[1:]
		}
		for _, d := range live {
			if err := d.MeasureAndReport(0, round, tag); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if round == killRound {
			daemons[0].Close() // the master dies after its last report
		}
		// Post-death rounds may be evicted while the reference hands over;
		// collect whatever fixes arrive.
		select {
		case fix := <-srv.Fixes():
			if math.IsNaN(fix.X) || math.IsNaN(fix.Y) || math.IsInf(fix.X, 0) || math.IsInf(fix.Y, 0) {
				t.Fatalf("round %d: non-finite fix %+v", fix.Round, fix)
			}
			fixErr[fix.Round] = geom.Pt(fix.X, fix.Y).Dist(tag)
		case <-time.After(5 * time.Second):
			if round <= killRound {
				t.Fatalf("round %d produced no fix (stats %+v)", round, srv.Stats())
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	// Re-election within two rounds of the master's death: some round in
	// (killRound, killRound+2] must have completed on a new reference.
	reelected := false
	for r := killRound + 1; r <= killRound+2; r++ {
		if info, ok := infos[uint32(r)]; ok && info.Ref != 0 {
			reelected = true
		}
	}
	if !reelected {
		t.Errorf("no completion on a re-elected reference within 2 rounds of master death (infos %+v)", infos)
	}
	st := srv.Stats()
	if st.Reelections < 1 || st.Reference == 0 {
		t.Errorf("stats = %+v, want the reference elected away from the dead master", st)
	}
	if st.Quarantines < 1 {
		t.Errorf("corrupt anchor never quarantined (stats %+v)", st)
	}
	if st.RowsRejected == 0 {
		t.Error("NaN rows were never rejected")
	}
	// Clean-round accuracy: rounds where all healthy anchors participated
	// and the corruption was already masked must stay sharp.
	var clean []float64
	for r := uint32(1); r <= killRound; r++ {
		if e, ok := fixErr[r]; ok {
			clean = append(clean, e)
		}
	}
	if len(clean) < killRound-1 {
		t.Fatalf("only %d of %d pre-death rounds produced fixes", len(clean), killRound)
	}
	if med := median(clean); med > 2.0 {
		t.Errorf("median clean-round error %.2fm, want < 2m", med)
	}
	// And the system survived: at least one post-death round fixed.
	post := 0
	for r := uint32(killRound + 1); r <= totalRounds; r++ {
		if _, ok := fixErr[r]; ok {
			post++
		}
	}
	if post == 0 {
		t.Error("no fixes at all after the master died")
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
