package locserver

import (
	"errors"
	"net"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// Unit coverage for the per-link breaker state machine, driven with a
// synthetic clock; the *Locked methods are single-goroutine here.

func TestBreakerStateMachine(t *testing.T) {
	b := breaker{cfg: BreakerConfig{Threshold: 2, Cooldown: time.Second}.withDefaults()}
	at := time.Unix(100, 0)

	ok, probe := b.allowLocked(at)
	if !ok || probe {
		t.Fatalf("closed breaker: allow=%v probe=%v", ok, probe)
	}
	if opened := b.resultLocked(false, at); opened {
		t.Fatal("opened after one failure, threshold is 2")
	}
	if opened := b.resultLocked(false, at); !opened {
		t.Fatal("did not open at the failure threshold")
	}
	// Open: sends are refused until the cooldown elapses.
	if ok, _ := b.allowLocked(at.Add(500 * time.Millisecond)); ok {
		t.Fatal("open breaker allowed a send mid-cooldown")
	}
	// Cooled down: exactly one half-open probe.
	ok, probe = b.allowLocked(at.Add(1100 * time.Millisecond))
	if !ok || !probe {
		t.Fatalf("cooled-down breaker: allow=%v probe=%v, want probe", ok, probe)
	}
	if ok, _ := b.allowLocked(at.Add(1100 * time.Millisecond)); ok {
		t.Fatal("second send allowed while a probe is in flight")
	}
	// A failed probe reopens immediately (no second strike).
	if opened := b.resultLocked(false, at.Add(1200*time.Millisecond)); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// Another cooldown, and a successful probe re-closes it.
	ok, probe = b.allowLocked(at.Add(2300 * time.Millisecond))
	if !ok || !probe {
		t.Fatalf("second probe: allow=%v probe=%v", ok, probe)
	}
	if opened := b.resultLocked(true, at.Add(2300*time.Millisecond)); opened {
		t.Fatal("successful probe reported an open transition")
	}
	if b.state != breakerClosed || b.fails != 0 {
		t.Fatalf("after healing: state=%v fails=%d", b.state, b.fails)
	}
	// One failure after healing does not trip it again.
	if opened := b.resultLocked(false, at.Add(3*time.Second)); opened {
		t.Fatal("single failure after healing opened the breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := breaker{cfg: BreakerConfig{Threshold: -1}}
	at := time.Unix(100, 0)
	for i := 0; i < 10; i++ {
		if ok, probe := b.allowLocked(at); !ok || probe {
			t.Fatalf("disabled breaker blocked a send (i=%d)", i)
		}
		if opened := b.resultLocked(false, at); opened {
			t.Fatalf("disabled breaker opened (i=%d)", i)
		}
	}
}

func TestBreakerConfigDefaults(t *testing.T) {
	c := BreakerConfig{}.withDefaults()
	if c.Threshold != 3 || c.Cooldown != 2*time.Second {
		t.Fatalf("defaults %+v", c)
	}
	c = BreakerConfig{Threshold: -1}.withDefaults()
	if c.Threshold != -1 {
		t.Fatalf("disabling threshold overwritten: %+v", c)
	}
}

// TestBreakerGatesServerSends exercises the server's send path: a link
// whose writes always fail trips its breaker, later sends are skipped
// (errBreakerOpen) and counted, and the half-open probe is attempted —
// and fails — after the cooldown.
func TestBreakerGatesServerSends(t *testing.T) {
	srv, err := New("127.0.0.1:0", Config{
		Anchors: 2, Antennas: 1, Bands: ble.DataChannels()[:2],
		Logger:  quietLogger(),
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 30 * time.Millisecond},
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(0, 0), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p1, p2 := net.Pipe()
	p2.Close() // every write on p1 now fails immediately
	cl := &client{conn: p1, id: 1, brk: breaker{cfg: srv.brkCfg}}

	for i := 0; i < 2; i++ {
		if err := srv.sendClient(cl, &wire.Heartbeat{Nonce: 1}); err == nil || errors.Is(err, errBreakerOpen) {
			t.Fatalf("send %d: err=%v, want a real write failure", i, err)
		}
	}
	if err := srv.sendClient(cl, &wire.Heartbeat{Nonce: 1}); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("send after threshold: err=%v, want errBreakerOpen", err)
	}
	st := srv.Stats()
	if st.BreakerOpens != 1 || st.BreakerSkips != 1 || st.BreakerProbes != 0 {
		t.Fatalf("after trip: opens=%d skips=%d probes=%d", st.BreakerOpens, st.BreakerSkips, st.BreakerProbes)
	}

	time.Sleep(40 * time.Millisecond)
	// Cooled down: this send is the probe; the link is still dead, so the
	// breaker reopens.
	if err := srv.sendClient(cl, &wire.Heartbeat{Nonce: 1}); err == nil || errors.Is(err, errBreakerOpen) {
		t.Fatalf("probe send: err=%v, want a real write failure", err)
	}
	st = srv.Stats()
	if st.BreakerProbes != 1 || st.BreakerOpens != 2 {
		t.Fatalf("after probe: probes=%d opens=%d", st.BreakerProbes, st.BreakerOpens)
	}
	if err := srv.sendClient(cl, &wire.Heartbeat{Nonce: 1}); !errors.Is(err, errBreakerOpen) {
		t.Fatalf("send after failed probe: err=%v, want errBreakerOpen", err)
	}
}
