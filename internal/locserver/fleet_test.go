package locserver

import (
	"context"
	"sync"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

func TestFleetRouterMapping(t *testing.T) {
	rt := newRouter(4, 3)
	cases := []struct{ global, cell, local int }{
		{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {5, 1, 2}, {11, 3, 2},
	}
	for _, tc := range cases {
		if got := rt.cellOfAnchor(tc.global); got != tc.cell {
			t.Errorf("cellOfAnchor(%d) = %d, want %d", tc.global, got, tc.cell)
		}
		if got := rt.localAnchor(tc.global); got != tc.local {
			t.Errorf("localAnchor(%d) = %d, want %d", tc.global, got, tc.local)
		}
	}
	if got := rt.cellOfAnchor(12); got != -1 {
		t.Errorf("out-of-fleet anchor mapped to cell %d", got)
	}
	if got := rt.cellOfAnchor(-1); got != -1 {
		t.Errorf("negative anchor mapped to cell %d", got)
	}
	if _, ok := rt.homeOf(9); ok {
		t.Error("unobserved tag has a home")
	}
	rt.noteTag(9, 2)
	if home, ok := rt.homeOf(9); !ok || home != 2 {
		t.Errorf("homeOf(9) = %d,%v, want 2,true", home, ok)
	}
	if rt.tagCount() != 1 {
		t.Errorf("tagCount = %d", rt.tagCount())
	}
}

// fleetRecorder collects per-cell fix deliveries from FleetConfig.OnFix.
type fleetRecorder struct {
	mu   sync.Mutex
	got  map[fixKeyT]int      // delivery count; guarded by mu
	fix  map[fixKeyT]wire.Fix // last delivered fix; guarded by mu
	fall map[fixKeyT]bool     // delivered with info.Fallback; guarded by mu
}

type fixKeyT struct {
	cell  int
	tag   uint16
	round uint32
}

func newFleetRecorder() *fleetRecorder {
	return &fleetRecorder{
		got:  make(map[fixKeyT]int),
		fix:  make(map[fixKeyT]wire.Fix),
		fall: make(map[fixKeyT]bool),
	}
}

func (r *fleetRecorder) record(cell int, info RoundInfo, fix wire.Fix) {
	r.mu.Lock()
	k := fixKeyT{cell: cell, tag: info.Tag, round: info.Round}
	r.got[k]++
	r.fix[k] = fix
	r.fall[k] = info.Fallback
	r.mu.Unlock()
}

func (r *fleetRecorder) count(k fixKeyT) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.got[k]
}

func (r *fleetRecorder) snapshot() map[fixKeyT]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[fixKeyT]int, len(r.got))
	for k, v := range r.got {
		out[k] = v
	}
	return out
}

// fleetRow fabricates one valid CSI row carrying a GLOBAL anchor ID.
func fleetRow(tag uint16, round uint32, global uint8, band uint16) *wire.CSIRow {
	return &wire.CSIRow{
		Round: round, TagID: tag, AnchorID: global, BandIdx: band,
		Tag:    []complex128{complex(float64(round), float64(band+1))},
		Master: complex(1, float64(global%3+1)),
	}
}

func testFleet(t *testing.T, cells int, rec *fleetRecorder) *Fleet {
	t.Helper()
	f, err := NewFleet(FleetConfig{
		Cells: cells,
		Cell: Config{
			Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2],
			RoundDeadline: 50 * time.Millisecond,
			FixQueueDepth: 256,
		},
		OnSnapshot: func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(float64(cell), float64(info.Tag)), nil
		},
		OnFix:  rec.record,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetRoutesRowsToCells feeds rounds through the global ingest
// facade and asserts each tag's fixes come from the cell owning its
// anchors, with global anchor IDs renumbered into cell-local space.
func TestFleetRoutesRowsToCells(t *testing.T) {
	rec := newFleetRecorder()
	f := testFleet(t, 2, rec)
	defer f.Close()

	// Tag 7 lives under cell 0's anchors (global 0..2), tag 8 under cell
	// 1's (global 3..5).
	for r := uint32(1); r <= 3; r++ {
		for a := uint8(0); a < 3; a++ {
			for b := uint16(0); b < 2; b++ {
				f.IngestRow(fleetRow(7, r, a, b))
				f.IngestRow(fleetRow(8, r, a+3, b))
			}
		}
	}
	// A row from outside the fleet is dropped, not crashed on.
	f.IngestRow(fleetRow(9, 1, 6, 0))

	for _, cs := range f.Stats().Cells {
		if !cs.Running || cs.State != "healthy" {
			t.Errorf("cell %d before drain: running=%v state=%s", cs.Cell, cs.Running, cs.State)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for r := uint32(1); r <= 3; r++ {
		k0 := fixKeyT{cell: 0, tag: 7, round: r}
		k1 := fixKeyT{cell: 1, tag: 8, round: r}
		if rec.count(k0) != 1 {
			t.Errorf("tag 7 round %d delivered %d times from cell 0", r, rec.count(k0))
		}
		if rec.count(k1) != 1 {
			t.Errorf("tag 8 round %d delivered %d times from cell 1", r, rec.count(k1))
		}
		rec.mu.Lock()
		if fx := rec.fix[k0]; fx.X != 0 || fx.Y != 7 {
			t.Errorf("tag 7 fix (%v,%v), want cell-0 stub (0,7)", fx.X, fx.Y)
		}
		if fx := rec.fix[k1]; fx.X != 1 || fx.Y != 8 {
			t.Errorf("tag 8 fix (%v,%v), want cell-1 stub (1,8)", fx.X, fx.Y)
		}
		rec.mu.Unlock()
	}
	for k := range rec.snapshot() {
		if k.tag == 9 {
			t.Errorf("out-of-fleet row produced a fix: %+v", k)
		}
	}
	fs := f.Stats()
	if fs.Agg.CellRestarts != 0 || fs.Agg.PanicsRecovered != 0 {
		t.Errorf("fault counters moved without faults: %+v", fs.Agg)
	}
	if fs.RoutedTags != 2 {
		t.Errorf("RoutedTags = %d, want 2", fs.RoutedTags)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	base := func() FleetConfig {
		return FleetConfig{
			Cells: 2,
			Cell:  Config{Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2]},
			OnSnapshot: func(int, RoundInfo, *csi.Snapshot) (geom.Point, error) {
				return geom.Pt(0, 0), nil
			},
			Logger: quietLogger(),
		}
	}
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"zero cells", func(c *FleetConfig) { c.Cells = 0 }},
		{"nil OnSnapshot", func(c *FleetConfig) { c.OnSnapshot = nil }},
		{"addr count mismatch", func(c *FleetConfig) { c.CellAddrs = []string{"127.0.0.1:0"} }},
		{"anchor ID overflow", func(c *FleetConfig) { c.Cells = 100; c.Cell.Anchors = 3 }},
		{"template OnSnapshot", func(c *FleetConfig) {
			c.Cell.OnSnapshot = func(RoundInfo, *csi.Snapshot) (geom.Point, error) { return geom.Pt(0, 0), nil }
		}},
		{"template Hook", func(c *FleetConfig) { c.Cell.Hook = func(string) {} }},
		{"template Checkpoint", func(c *FleetConfig) { c.Cell.Checkpoint = &CheckpointConfig{} }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		if f, err := NewFleet(cfg); err == nil {
			f.Close()
			t.Errorf("%s: NewFleet accepted the config", tc.name)
		}
	}
}

// TestFleetFallbackPanicContained pins the fallback plane's panic
// containment: a neighbor-cell estimator that panics on a down cell's
// round must cost exactly that one fix — counted in FallbackPanics —
// and never propagate into the goroutine calling Fleet.IngestRow.
func TestFleetFallbackPanicContained(t *testing.T) {
	rec := newFleetRecorder()
	f, err := NewFleet(FleetConfig{
		Cells: 2,
		Cell: Config{
			Anchors: 3, Antennas: 1, Bands: ble.DataChannels()[:2],
			RoundDeadline: 50 * time.Millisecond,
			FixQueueDepth: 256,
		},
		OnSnapshot: func(cell int, info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			if info.Fallback {
				panic("estimator died on a fallback round")
			}
			return geom.Pt(float64(cell), float64(info.Tag)), nil
		},
		OnFix:  rec.record,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Take cell 0 down the way the fleet sees it mid-restart: no live
	// incarnation, rows for its anchors divert to the fallback collector.
	c := f.cells[0]
	c.mu.Lock()
	srv := c.srv
	c.srv = nil
	c.running = false
	c.mu.Unlock()
	srv.Close()

	// A complete round for cell 0's anchors fills a fallback bucket; the
	// completing row triggers the panicking neighbor estimator inline.
	// This must not panic the ingest caller (the test goroutine).
	for a := uint8(0); a < 3; a++ {
		for b := uint16(0); b < 2; b++ {
			f.IngestRow(fleetRow(7, 1, a, b))
		}
	}
	fs := f.Stats()
	if fs.FallbackPanics != 1 {
		t.Errorf("FallbackPanics = %d, want 1", fs.FallbackPanics)
	}
	if fs.FallbackFixes != 0 {
		t.Errorf("FallbackFixes = %d after a panicked fallback, want 0", fs.FallbackFixes)
	}
	if n := rec.count(fixKeyT{cell: 0, tag: 7, round: 1}); n != 0 {
		t.Errorf("panicked fallback round delivered %d fixes, want 0", n)
	}

	// The surviving cell still serves normally after the contained panic.
	for a := uint8(3); a < 6; a++ {
		for b := uint16(0); b < 2; b++ {
			f.IngestRow(fleetRow(8, 2, a, b))
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := rec.count(fixKeyT{cell: 1, tag: 8, round: 2}); n != 1 {
		t.Errorf("surviving cell delivered %d fixes, want 1", n)
	}
}

// TestRetireStatsZeroesGauges pins the restart fold: a dead
// incarnation contributes its counters and high-water marks to
// cell.base, but never its point-in-time gauges — otherwise Fleet.Stats
// would report a retired server's queue depth and overload mode
// forever.
func TestRetireStatsZeroesGauges(t *testing.T) {
	final := Stats{Full: 3, QueueDepth: 7, Mode: 2, QueuePeak: 9}
	base := addCounters(Stats{Full: 1, QueuePeak: 4}, retireStats(final))
	if base.QueueDepth != 0 || base.Mode != 0 {
		t.Errorf("retired gauges leaked into base: depth=%d mode=%d", base.QueueDepth, base.Mode)
	}
	if base.QueuePeak != 9 {
		t.Errorf("QueuePeak = %d, want 9 (high-water mark survives retirement)", base.QueuePeak)
	}
	if base.Full != 4 {
		t.Errorf("Full = %d, want 4 (counters still sum)", base.Full)
	}
	// Folding a live incarnation on top reports its gauges as-is.
	live := addCounters(base, Stats{QueueDepth: 2, Mode: 1})
	if live.QueueDepth != 2 || live.Mode != 1 {
		t.Errorf("live gauges misreported: depth=%d mode=%d", live.QueueDepth, live.Mode)
	}
}

func TestFleetCloseIdempotent(t *testing.T) {
	rec := newFleetRecorder()
	f := testFleet(t, 2, rec)
	if err := f.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
}
