package locserver

import (
	"math/rand/v2"
	"time"
)

// Cell supervision (DESIGN.md §15). Each fleet cell is crash-only: a
// panic escaping a hook point or the localization callback is recovered
// at the nearest lock-free boundary, reported through OnPanic, and the
// supervisor restarts the whole cell — tear the incarnation down, wait
// out a jittered exponential backoff, rebuild it from its durable
// checkpoint — rather than trusting whatever state the panic tore
// through. Restart frequency drives a per-cell health state machine:
//
//	healthy ──DegradedRestarts in RestartWindow──▶ degraded
//	degraded ──QuarantineRestarts in RestartWindow──▶ quarantined
//	quarantined ──QuarantineCooldown elapsed, window drained──▶ …
//
// A quarantined cell still restarts (its tags deserve service), but
// only after sitting out the cooldown, and the fleet reports it so an
// operator can see which shard is flapping. States decay as restarts
// age out of the sliding window.

// SupervisorConfig tunes cell restart backoff and the health state
// machine. The zero value selects the documented defaults.
type SupervisorConfig struct {
	// BackoffInitial is the delay before the first restart of a streak
	// (default 10ms); each consecutive restart multiplies it by
	// BackoffFactor (default 2) up to BackoffMax (default 2s).
	BackoffInitial time.Duration
	BackoffMax     time.Duration
	BackoffFactor  float64
	// Jitter spreads each backoff uniformly in [1-Jitter, 1+Jitter]
	// (default 0.2, clamped to [0,1]) so cells killed together do not
	// restart in lockstep.
	Jitter float64
	// Seed feeds the deterministic jitter stream (per-cell salted).
	Seed uint64

	// RestartWindow is the sliding window restart counts are judged in
	// (default 30s); a streak also resets once an incarnation survives
	// a full window.
	RestartWindow time.Duration
	// DegradedRestarts marks the cell degraded at this many restarts
	// inside the window (default 3); QuarantineRestarts quarantines it
	// (default 6).
	DegradedRestarts   int
	QuarantineRestarts int
	// QuarantineCooldown is how long a quarantined cell sits out before
	// its restart proceeds (default 10s).
	QuarantineCooldown time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.BackoffInitial <= 0 {
		c.BackoffInitial = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BackoffMax < c.BackoffInitial {
		c.BackoffMax = c.BackoffInitial
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.Jitter < 0 {
		c.Jitter = 0.2
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = 30 * time.Second
	}
	if c.DegradedRestarts <= 0 {
		c.DegradedRestarts = 3
	}
	if c.QuarantineRestarts <= c.DegradedRestarts {
		c.QuarantineRestarts = 2 * c.DegradedRestarts
	}
	if c.QuarantineCooldown <= 0 {
		c.QuarantineCooldown = 10 * time.Second
	}
	return c
}

// cellState is a supervised cell's health position.
type cellState uint8

const (
	cellHealthy cellState = iota
	cellDegraded
	cellQuarantined
)

func (s cellState) String() string {
	switch s {
	case cellHealthy:
		return "healthy"
	case cellDegraded:
		return "degraded"
	case cellQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// supState is one cell's restart bookkeeping: the sliding restart
// window, the consecutive-restart streak that drives backoff, and the
// health state. It is owned by a cell and every mutable field is
// guarded by that cell's mu.
type supState struct {
	cfg SupervisorConfig // resolved; immutable after newSupState
	rng *rand.Rand       // jitter stream; guarded by mu

	window      []time.Time // restarts inside RestartWindow; guarded by mu
	streak      int         // consecutive restarts without a stable run; guarded by mu
	state       cellState   // guarded by mu
	lastRestart time.Time   // guarded by mu
}

func newSupState(cfg SupervisorConfig, salt uint64) *supState {
	cfg = cfg.withDefaults()
	return &supState{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xCE11^salt)),
	}
}

// pruneLocked drops window entries older than RestartWindow and resets
// the streak once the current incarnation has survived a full window.
// Caller holds the owning cell's mu.
func (st *supState) pruneLocked(now time.Time) {
	cut := 0
	for cut < len(st.window) && now.Sub(st.window[cut]) > st.cfg.RestartWindow {
		cut++
	}
	st.window = st.window[cut:]
	if st.streak > 0 && now.Sub(st.lastRestart) >= st.cfg.RestartWindow {
		st.streak = 0
	}
}

// recordRestartLocked folds one restart into the window and streak and
// returns the resulting state. Caller holds the owning cell's mu.
func (st *supState) recordRestartLocked(now time.Time) cellState {
	st.pruneLocked(now)
	st.window = append(st.window, now)
	st.streak++
	st.lastRestart = now
	st.state = st.classifyLocked()
	return st.state
}

// stateLocked returns the current state, letting it decay as restarts
// age out of the window. Quarantine holds for at least the cooldown.
// Caller holds the owning cell's mu.
func (st *supState) stateLocked(now time.Time) cellState {
	if st.state == cellQuarantined && now.Sub(st.lastRestart) < st.cfg.QuarantineCooldown {
		return cellQuarantined
	}
	st.pruneLocked(now)
	st.state = st.classifyLocked()
	return st.state
}

// classifyLocked maps the window population onto a state. Caller holds
// the owning cell's mu.
func (st *supState) classifyLocked() cellState {
	switch n := len(st.window); {
	case n >= st.cfg.QuarantineRestarts:
		return cellQuarantined
	case n >= st.cfg.DegradedRestarts:
		return cellDegraded
	default:
		return cellHealthy
	}
}

// backoffLocked returns the jittered exponential delay before the next
// restart attempt, derived from the streak recordRestartLocked just
// advanced. Caller holds the owning cell's mu.
func (st *supState) backoffLocked() time.Duration {
	d := float64(st.cfg.BackoffInitial)
	for i := 1; i < st.streak && d < float64(st.cfg.BackoffMax); i++ {
		d *= st.cfg.BackoffFactor
	}
	if d > float64(st.cfg.BackoffMax) {
		d = float64(st.cfg.BackoffMax)
	}
	d *= 1 + st.cfg.Jitter*(2*st.rng.Float64()-1)
	return time.Duration(d)
}
