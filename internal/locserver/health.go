package locserver

import (
	"fmt"
	"math/rand/v2"

	"bloc/internal/csi"
	"bloc/internal/durable"
)

// Anchor health, quarantine and reference election (the failover half of
// the data-quality plane). Every ingested row's validation verdict feeds a
// per-anchor EWMA health score; at each round boundary the tracker folds
// the round's verdicts into the scores, walks the quarantine state
// machine, and decides whether the α-correction reference (Eq. 10's
// anchor 0, relaxed to any index by core.CorrectRef) must be re-elected.
//
// The state machine is hysteretic so a flaky anchor cannot flap:
//
//	healthy ──score < EnterScore──▶ quarantined
//	quarantined ──jittered cooldown elapsed──▶ probation
//	probation ──ProbationRounds clean AND score ≥ ExitScore──▶ healthy
//	probation ──any rejected row──▶ quarantined (fresh cooldown draw)
//
// EnterScore < ExitScore is the hysteresis band: an anchor hovering
// between the two thresholds stays wherever it already is. Cooldowns are
// drawn from a seeded PCG stream (deterministic per server) with jitter,
// so a fleet of quarantined anchors does not re-probe in lockstep.
//
// Re-election is also damped: the reference only changes when the current
// one is quarantined or stopped contributing usable rows, never merely
// because another anchor's score inched ahead, and soft re-elections are
// rate-limited by a jittered cooldown of their own.

// HealthConfig tunes quarantine and reference election. The zero value
// selects the defaults noted per field.
type HealthConfig struct {
	// EWMAAlpha is the per-round smoothing factor of the health score
	// (default 0.25: four bad rounds take a pristine anchor below the
	// quarantine threshold).
	EWMAAlpha float64
	// EnterScore quarantines a healthy anchor whose score falls below it
	// (default 0.35).
	EnterScore float64
	// ExitScore is the score a probationary anchor must regain before
	// readmission (default 0.75). Must exceed EnterScore: the gap is the
	// hysteresis band.
	ExitScore float64
	// CooldownRounds is the minimum rounds an anchor stays quarantined
	// (default 6); each quarantine adds a jitter of 0..CooldownJitter
	// rounds (default 3) drawn from the seeded stream.
	CooldownRounds int
	CooldownJitter int
	// ProbationRounds is how many consecutive fully-clean rounds a
	// probationary anchor must deliver to graduate (default 3).
	ProbationRounds int
	// ReelectCooldown damps soft re-elections: after any election the
	// reference holds for at least this many rounds plus 0..CooldownJitter
	// jitter (default 4). Forced elections (reference quarantined or
	// silent) ignore it — localization cannot wait out a dead reference.
	ReelectCooldown int
	// Seed derives the jitter stream (default 1); same seed, same
	// traffic, same cooldown draws.
	Seed uint64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.25
	}
	if c.EnterScore <= 0 {
		c.EnterScore = 0.35
	}
	if c.ExitScore <= 0 {
		c.ExitScore = 0.75
	}
	if c.CooldownRounds <= 0 {
		c.CooldownRounds = 6
	}
	if c.CooldownJitter < 0 {
		c.CooldownJitter = 0
	} else if c.CooldownJitter == 0 {
		c.CooldownJitter = 3
	}
	if c.ProbationRounds <= 0 {
		c.ProbationRounds = 3
	}
	if c.ReelectCooldown <= 0 {
		c.ReelectCooldown = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// anchorState is the quarantine state machine.
type anchorState uint8

const (
	anchorHealthy anchorState = iota
	anchorQuarantined
	anchorProbation
)

func (s anchorState) String() string {
	switch s {
	case anchorHealthy:
		return "healthy"
	case anchorQuarantined:
		return "quarantined"
	case anchorProbation:
		return "probation"
	default:
		return "unknown"
	}
}

// anchorHealth is one anchor's rolling health. All fields are guarded by
// Server.mu (the tracker has no lock of its own; the server serializes).
type anchorHealth struct {
	score       float64     // EWMA of per-round verdict ratios; guarded by Server.mu
	state       anchorState // guarded by Server.mu
	cooldown    int         // rounds left in quarantine; guarded by Server.mu
	cleanRounds int         // consecutive clean probation rounds; guarded by Server.mu
	roundOK     int         // accepted rows since the last boundary; guarded by Server.mu
	roundBad    int         // rejected rows since the last boundary; guarded by Server.mu
}

// healthTransition records one state change for logging and stats.
type healthTransition struct {
	Anchor int
	From   anchorState
	To     anchorState
	Score  float64
}

// healthTracker owns the per-anchor scores and the elected reference.
// Not safe for concurrent use: every method is called with Server.mu held.
type healthTracker struct {
	cfg HealthConfig
	rng *rand.Rand // jitter stream; guarded by Server.mu

	anchors []anchorHealth // guarded by Server.mu
	ref     int            // elected reference index; guarded by Server.mu
	holdoff int            // rounds before the next soft re-election; guarded by Server.mu

	reelections  int // guarded by Server.mu
	quarantines  int // guarded by Server.mu
	readmissions int // guarded by Server.mu
}

func newHealthTracker(anchors int, cfg HealthConfig) *healthTracker {
	c := cfg.withDefaults()
	state := make([]anchorHealth, anchors)
	for i := range state {
		state[i] = anchorHealth{score: 1}
	}
	return &healthTracker{
		cfg:     c,
		rng:     rand.New(rand.NewPCG(c.Seed, 0xB10C)),
		anchors: state,
	}
}

// observeLocked records one row verdict for an anchor. Caller holds Server.mu.
func (h *healthTracker) observeLocked(anchor int, verdict csi.RowVerdict) {
	if anchor < 0 || anchor >= len(h.anchors) {
		return
	}
	if verdict.OK() {
		h.anchors[anchor].roundOK++
	} else {
		h.anchors[anchor].roundBad++
	}
}

// referenceLocked returns the current elected reference. Caller holds
// Server.mu.
func (h *healthTracker) referenceLocked() int { return h.ref }

// quarantinedSetLocked snapshots which anchors are quarantined right now,
// for a pendingRound to capture at creation. Caller holds Server.mu.
func (h *healthTracker) quarantinedSetLocked() []bool {
	q := make([]bool, len(h.anchors))
	for i := range h.anchors {
		q[i] = h.anchors[i].state == anchorQuarantined
	}
	return q
}

// scoreLocked returns one anchor's current health score. Caller holds
// Server.mu.
func (h *healthTracker) scoreLocked(anchor int) float64 { return h.anchors[anchor].score }

// stateLocked returns one anchor's quarantine state. Caller holds Server.mu.
func (h *healthTracker) stateLocked(anchor int) anchorState { return h.anchors[anchor].state }

// endRoundLocked is the round boundary: it folds the accumulated verdicts into
// the EWMA scores, advances the quarantine state machine and re-elects
// the reference when needed. It returns the state transitions that
// happened and whether the reference changed. Caller holds Server.mu.
func (h *healthTracker) endRoundLocked() (transitions []healthTransition, reelected bool) {
	a := h.cfg.EWMAAlpha
	refSilent := h.anchors[h.ref].roundOK+h.anchors[h.ref].roundBad == 0
	for i := range h.anchors {
		st := &h.anchors[i]
		// A silent anchor scores zero for the round: silence is exactly as
		// useless as corruption to the estimator, and scoring it keeps a
		// dead reference from holding office.
		roundScore := 0.0
		seen := st.roundOK + st.roundBad
		if seen > 0 {
			roundScore = float64(st.roundOK) / float64(seen)
		}
		cleanRound := seen > 0 && st.roundBad == 0
		badRows := st.roundBad > 0
		st.roundOK, st.roundBad = 0, 0
		st.score = (1-a)*st.score + a*roundScore

		from := st.state
		switch st.state {
		case anchorHealthy:
			if st.score < h.cfg.EnterScore {
				h.quarantineLocked(st)
			}
		case anchorQuarantined:
			st.cooldown--
			if st.cooldown <= 0 {
				st.state = anchorProbation
				st.cleanRounds = 0
			}
		case anchorProbation:
			switch {
			case badRows:
				// One rejected row during probation sends the anchor
				// straight back: probation exists to catch exactly the
				// radio that "recovers" for a moment and relapses.
				h.quarantineLocked(st)
			case cleanRound:
				st.cleanRounds++
				if st.cleanRounds >= h.cfg.ProbationRounds && st.score >= h.cfg.ExitScore {
					st.state = anchorHealthy
					h.readmissions++
				}
			}
		}
		if st.state != from {
			if st.state == anchorQuarantined {
				h.quarantines++
			}
			transitions = append(transitions, healthTransition{Anchor: i, From: from, To: st.state, Score: st.score})
		}
	}

	if h.holdoff > 0 {
		h.holdoff--
	}
	return transitions, h.maybeReelectLocked(refSilent)
}

// quarantineLocked moves one anchor into quarantine with a fresh jittered
// cooldown draw. Caller holds Server.mu.
func (h *healthTracker) quarantineLocked(st *anchorHealth) {
	st.state = anchorQuarantined
	st.cooldown = h.cfg.CooldownRounds + h.rng.IntN(h.cfg.CooldownJitter+1)
	st.cleanRounds = 0
}

// exportLocked fills a durable snapshot's health-plane section: per-anchor
// scores and state-machine positions, the elected reference, the
// re-election holdoff and the cumulative counters. The in-flight round
// accumulators (roundOK/roundBad) are deliberately not persisted — a
// restart restarts the round. Caller holds Server.mu.
func (h *healthTracker) exportLocked(st *durable.State) {
	st.Ref = h.ref
	st.Holdoff = h.holdoff
	st.Quarantines = h.quarantines
	st.Readmissions = h.readmissions
	st.Reelections = h.reelections
	st.Anchors = make([]durable.AnchorHealth, len(h.anchors))
	for i := range h.anchors {
		a := &h.anchors[i]
		st.Anchors[i] = durable.AnchorHealth{
			Score:       a.score,
			State:       uint8(a.state),
			Cooldown:    a.cooldown,
			CleanRounds: a.cleanRounds,
		}
	}
}

// restoreLocked replaces the tracker's state with a snapshot's. The
// snapshot has already passed durable's semantic validation (scores in
// [0,1], known state-machine positions, reference in range); the only
// check left is that it describes this deployment's anchor count. Caller
// holds Server.mu (or runs before the server's goroutines start).
func (h *healthTracker) restoreLocked(st *durable.State) error {
	if len(st.Anchors) != len(h.anchors) {
		return fmt.Errorf("locserver: snapshot has %d anchors, deployment has %d",
			len(st.Anchors), len(h.anchors))
	}
	for i, a := range st.Anchors {
		h.anchors[i] = anchorHealth{
			score:       a.Score,
			state:       anchorState(a.State),
			cooldown:    a.Cooldown,
			cleanRounds: a.CleanRounds,
		}
	}
	h.ref = st.Ref
	h.holdoff = st.Holdoff
	h.quarantines = st.Quarantines
	h.readmissions = st.Readmissions
	h.reelections = st.Reelections
	return nil
}

// maybeReelectLocked replaces the reference when it can no longer anchor
// the α correction. Forced elections — the reference is quarantined, or
// went completely silent for a whole round (a dead daemon: a healthy one
// contributes ~37 rows per round, so losing every single row to chance is
// not a thing) — bypass the re-election cooldown; soft ones (score in the
// quarantine band but not yet quarantined) respect it. Caller holds
// Server.mu.
func (h *healthTracker) maybeReelectLocked(refSilent bool) bool {
	ref := &h.anchors[h.ref]
	forced := ref.state == anchorQuarantined || refSilent
	soft := ref.state != anchorHealthy || ref.score < h.cfg.EnterScore
	if !forced && (!soft || h.holdoff > 0) {
		return false
	}
	best, bestScore := -1, -1.0
	for i := range h.anchors {
		if h.anchors[i].state != anchorHealthy || i == h.ref {
			continue
		}
		if h.anchors[i].score > bestScore {
			best, bestScore = i, h.anchors[i].score
		}
	}
	if best < 0 {
		return false // nobody healthier to elect; keep limping
	}
	h.ref = best
	h.reelections++
	h.holdoff = h.cfg.ReelectCooldown + h.rng.IntN(h.cfg.CooldownJitter+1)
	return true
}
