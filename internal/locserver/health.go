package locserver

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"bloc/internal/csi"
	"bloc/internal/durable"
)

// Anchor health, quarantine and reference election (the failover half of
// the data-quality plane). Every ingested row's validation verdict feeds a
// per-anchor EWMA health score; at each round boundary the tracker folds
// the round's verdicts into the scores, walks the quarantine state
// machine, and decides whether the α-correction reference (Eq. 10's
// anchor 0, relaxed to any index by core.CorrectRef) must be re-elected.
//
// The state machine is hysteretic so a flaky anchor cannot flap:
//
//	healthy ──score < EnterScore──▶ quarantined
//	quarantined ──jittered cooldown elapsed──▶ probation
//	probation ──ProbationRounds clean AND score ≥ ExitScore──▶ healthy
//	probation ──any rejected row──▶ quarantined (fresh cooldown draw)
//
// EnterScore < ExitScore is the hysteresis band: an anchor hovering
// between the two thresholds stays wherever it already is. Cooldowns are
// drawn from a seeded PCG stream (deterministic per server) with jitter,
// so a fleet of quarantined anchors does not re-probe in lockstep.
//
// Re-election is also damped: the reference only changes when the current
// one is quarantined or stopped contributing usable rows, never merely
// because another anchor's score inched ahead, and soft re-elections are
// rate-limited by a jittered cooldown of their own.

// HealthConfig tunes quarantine and reference election. The zero value
// selects the defaults noted per field.
type HealthConfig struct {
	// EWMAAlpha is the per-round smoothing factor of the health score
	// (default 0.25: four bad rounds take a pristine anchor below the
	// quarantine threshold).
	EWMAAlpha float64
	// EnterScore quarantines a healthy anchor whose score falls below it
	// (default 0.35).
	EnterScore float64
	// ExitScore is the score a probationary anchor must regain before
	// readmission (default 0.75). Must exceed EnterScore: the gap is the
	// hysteresis band.
	ExitScore float64
	// CooldownRounds is the minimum rounds an anchor stays quarantined
	// (default 6); each quarantine adds a jitter of 0..CooldownJitter
	// rounds (default 3) drawn from the seeded stream.
	CooldownRounds int
	CooldownJitter int
	// ProbationRounds is how many consecutive fully-clean rounds a
	// probationary anchor must deliver to graduate (default 3).
	ProbationRounds int
	// ReelectCooldown damps soft re-elections: after any election the
	// reference holds for at least this many rounds plus 0..CooldownJitter
	// jitter (default 4). Forced elections (reference quarantined or
	// silent) ignore it — localization cannot wait out a dead reference.
	ReelectCooldown int
	// Seed derives the jitter stream (default 1); same seed, same
	// traffic, same cooldown draws.
	Seed uint64

	// The straggler half of the plane (DESIGN.md §12): per-anchor
	// arrival-latency EWMAs mark slow-but-alive anchors "laggy" with the
	// same hysteresis quarantine uses for corrupt ones, and feed the
	// adaptive round deadline.

	// LatAlpha smooths the per-anchor arrival-latency EWMA (default 0.3).
	LatAlpha float64
	// LaggyEnter marks an anchor laggy when its p95 arrival latency has
	// exceeded this multiple of the fleet median p95 for LaggyRounds
	// consecutive rounds (default 3).
	LaggyEnter float64
	// LaggyExit readmits a laggy anchor whose p95 has stayed below this
	// multiple of the fleet median for LaggyRounds consecutive rounds
	// (default 1.5). Must be below LaggyEnter: the gap is the hysteresis
	// band.
	LaggyExit float64
	// LaggyRounds is the consecutive-round hysteresis on both edges of
	// the laggy transition (default 3): one slow round never exiles an
	// anchor, one fast round never readmits it.
	LaggyRounds int
	// LaggyFloor is an absolute p95 floor on both edges (default 10ms):
	// an anchor is never marked laggy while its p95 sits below it, and a
	// laggy anchor whose p95 drops below it always counts as punctual. On a
	// fast fleet the relative thresholds alone would flap on scheduler
	// noise — 3× a 0.2ms median is still noise. Negative disables the
	// floor.
	LaggyFloor time.Duration
	// DeadlineHeadroom multiplies the slowest non-laggy anchor's p95
	// latency when adapting the round deadline (default 2).
	DeadlineHeadroom float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.25
	}
	if c.EnterScore <= 0 {
		c.EnterScore = 0.35
	}
	if c.ExitScore <= 0 {
		c.ExitScore = 0.75
	}
	if c.CooldownRounds <= 0 {
		c.CooldownRounds = 6
	}
	if c.CooldownJitter < 0 {
		c.CooldownJitter = 0
	} else if c.CooldownJitter == 0 {
		c.CooldownJitter = 3
	}
	if c.ProbationRounds <= 0 {
		c.ProbationRounds = 3
	}
	if c.ReelectCooldown <= 0 {
		c.ReelectCooldown = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatAlpha <= 0 || c.LatAlpha > 1 {
		c.LatAlpha = 0.3
	}
	if c.LaggyEnter <= 1 {
		c.LaggyEnter = 3
	}
	if c.LaggyExit <= 0 || c.LaggyExit >= c.LaggyEnter {
		c.LaggyExit = 1.5
		if c.LaggyExit >= c.LaggyEnter {
			c.LaggyExit = c.LaggyEnter / 2
		}
	}
	if c.LaggyRounds <= 0 {
		c.LaggyRounds = 3
	}
	if c.LaggyFloor == 0 {
		c.LaggyFloor = 10 * time.Millisecond
	}
	if c.DeadlineHeadroom <= 1 {
		c.DeadlineHeadroom = 2
	}
	return c
}

// anchorState is the quarantine state machine.
type anchorState uint8

const (
	anchorHealthy anchorState = iota
	anchorQuarantined
	anchorProbation
)

func (s anchorState) String() string {
	switch s {
	case anchorHealthy:
		return "healthy"
	case anchorQuarantined:
		return "quarantined"
	case anchorProbation:
		return "probation"
	default:
		return "unknown"
	}
}

// anchorHealth is one anchor's rolling health. All fields are guarded by
// Server.mu (the tracker has no lock of its own; the server serializes).
type anchorHealth struct {
	score       float64     // EWMA of per-round verdict ratios; guarded by Server.mu
	state       anchorState // guarded by Server.mu
	cooldown    int         // rounds left in quarantine; guarded by Server.mu
	cleanRounds int         // consecutive clean probation rounds; guarded by Server.mu
	roundOK     int         // accepted rows since the last boundary; guarded by Server.mu
	roundBad    int         // rejected rows since the last boundary; guarded by Server.mu

	// Straggler tracking (DESIGN.md §12). Latencies are seconds from a
	// round's first row to this anchor's first row; deliberately not
	// persisted — a restarted server re-learns the live network instead
	// of trusting stale timing.
	lat      float64 // arrival-latency EWMA (s); guarded by Server.mu
	latDev   float64 // EWMA of absolute latency deviation (s); guarded by Server.mu
	latSeen  bool    // any latency observed yet; guarded by Server.mu
	laggy    bool    // excluded from quorum waits; guarded by Server.mu
	lagOver  int     // consecutive rounds over the enter threshold; guarded by Server.mu
	lagUnder int     // consecutive rounds under the exit threshold; guarded by Server.mu
}

// p95 approximates the anchor's 95th-percentile arrival latency from the
// EWMA pair (mean + 2·deviation, the usual light-tail bound).
func (a *anchorHealth) p95Locked() float64 { return a.lat + 2*a.latDev }

// healthTransition records one state change for logging and stats.
type healthTransition struct {
	Anchor int
	From   anchorState
	To     anchorState
	Score  float64
}

// lagTransition records one laggy-edge for logging and stats.
type lagTransition struct {
	Anchor int
	Laggy  bool
	P95    float64 // seconds
}

// healthTracker owns the per-anchor scores and the elected reference.
// Not safe for concurrent use: every method is called with Server.mu held.
type healthTracker struct {
	cfg HealthConfig
	rng *rand.Rand // jitter stream; guarded by Server.mu

	anchors []anchorHealth // guarded by Server.mu
	ref     int            // elected reference index; guarded by Server.mu
	holdoff int            // rounds before the next soft re-election; guarded by Server.mu

	reelections  int // guarded by Server.mu
	quarantines  int // guarded by Server.mu
	readmissions int // guarded by Server.mu
	lagMarks     int // transitions into laggy; guarded by Server.mu
	lagReadmits  int // laggy → punctual readmissions; guarded by Server.mu
}

func newHealthTracker(anchors int, cfg HealthConfig) *healthTracker {
	c := cfg.withDefaults()
	state := make([]anchorHealth, anchors)
	for i := range state {
		state[i] = anchorHealth{score: 1}
	}
	return &healthTracker{
		cfg:     c,
		rng:     rand.New(rand.NewPCG(c.Seed, 0xB10C)),
		anchors: state,
	}
}

// observeLocked records one row verdict for an anchor. Caller holds Server.mu.
func (h *healthTracker) observeLocked(anchor int, verdict csi.RowVerdict) {
	if anchor < 0 || anchor >= len(h.anchors) {
		return
	}
	if verdict.OK() {
		h.anchors[anchor].roundOK++
	} else {
		h.anchors[anchor].roundBad++
	}
}

// referenceLocked returns the current elected reference. Caller holds
// Server.mu.
func (h *healthTracker) referenceLocked() int { return h.ref }

// quarantinedSetLocked snapshots which anchors are quarantined right now,
// for a pendingRound to capture at creation. Caller holds Server.mu.
func (h *healthTracker) quarantinedSetLocked() []bool {
	q := make([]bool, len(h.anchors))
	for i := range h.anchors {
		q[i] = h.anchors[i].state == anchorQuarantined
	}
	return q
}

// observeLatencyLocked records one arrival latency: the gap between a
// round's first row (any anchor) and this anchor's first row of the same
// round. Caller holds Server.mu.
func (h *healthTracker) observeLatencyLocked(anchor int, d time.Duration) {
	if anchor < 0 || anchor >= len(h.anchors) || d < 0 {
		return
	}
	st := &h.anchors[anchor]
	x := d.Seconds()
	if !st.latSeen {
		st.lat, st.latDev, st.latSeen = x, 0, true
		return
	}
	a := h.cfg.LatAlpha
	dev := x - st.lat
	if dev < 0 {
		dev = -dev
	}
	st.lat = (1-a)*st.lat + a*x
	st.latDev = (1-a)*st.latDev + a*dev
}

// laggySetLocked snapshots which anchors are currently laggy, for a
// pendingRound to capture at creation (the straggler analogue of
// quarantinedSetLocked). Caller holds Server.mu.
func (h *healthTracker) laggySetLocked() []bool {
	l := make([]bool, len(h.anchors))
	for i := range h.anchors {
		l[i] = h.anchors[i].laggy
	}
	return l
}

// laggyCountLocked returns how many anchors are currently laggy. Caller
// holds Server.mu.
func (h *healthTracker) laggyCountLocked() int {
	n := 0
	for i := range h.anchors {
		if h.anchors[i].laggy {
			n++
		}
	}
	return n
}

// medianP95Locked is the fleet's punctuality baseline: the median p95
// arrival latency over non-laggy anchors with any history (falling back
// to every observed anchor when all are laggy). Even counts take the
// LOWER median deliberately: with half the fleet slow (two of four
// anchors behind a congested switch), the upper median would be a slow
// anchor's own p95 and no one would ever look laggy relative to it.
// Anchoring the baseline to the punctual half keeps the detector live up
// to (but excluding) a slow majority. Caller holds Server.mu.
func (h *healthTracker) medianP95Locked() (float64, bool) {
	p := make([]float64, 0, len(h.anchors))
	for i := range h.anchors {
		if h.anchors[i].latSeen && !h.anchors[i].laggy {
			p = append(p, h.anchors[i].p95Locked())
		}
	}
	if len(p) == 0 {
		for i := range h.anchors {
			if h.anchors[i].latSeen {
				p = append(p, h.anchors[i].p95Locked())
			}
		}
	}
	if len(p) == 0 {
		return 0, false
	}
	sort.Float64s(p)
	return p[(len(p)-1)/2], true
}

// adaptiveDeadlineLocked derives the next round's deadline from the live
// latency plane: DeadlineHeadroom times the slowest non-laggy anchor's
// p95 arrival latency, clamped to [max/10, max] so a burst of fast rounds
// never collapses the deadline to zero and a slow fleet never exceeds the
// configured ceiling. Caller holds Server.mu.
func (h *healthTracker) adaptiveDeadlineLocked(max time.Duration) time.Duration {
	worst, seen := 0.0, false
	for i := range h.anchors {
		if h.anchors[i].latSeen && !h.anchors[i].laggy {
			seen = true
			if p := h.anchors[i].p95Locked(); p > worst {
				worst = p
			}
		}
	}
	if !seen {
		return max
	}
	d := time.Duration(h.cfg.DeadlineHeadroom * worst * float64(time.Second))
	if floor := max / 10; d < floor {
		d = floor
	}
	if d > max {
		d = max
	}
	return d
}

// endLatencyRoundLocked advances the laggy state machine one round:
// anchors whose p95 arrival latency has stayed beyond LaggyEnter times
// the fleet median for LaggyRounds consecutive rounds are marked laggy
// (and excluded from quorum waits by the server); laggy anchors that
// stayed under LaggyExit times the median for as long are readmitted. At
// most len(anchors)-2 anchors may be laggy: the estimator's two-anchor
// floor must keep someone to wait for. Caller holds Server.mu.
func (h *healthTracker) endLatencyRoundLocked() []lagTransition {
	med, ok := h.medianP95Locked()
	if !ok || med <= 0 {
		return nil
	}
	nonLaggy := len(h.anchors) - h.laggyCountLocked()
	// Both edges respect the absolute floor: relative thresholds against
	// a sub-millisecond fleet median would otherwise mark (and trap)
	// anchors over scheduler noise.
	floor := h.cfg.LaggyFloor.Seconds()
	enterThr := h.cfg.LaggyEnter * med
	if enterThr < floor {
		enterThr = floor
	}
	exitThr := h.cfg.LaggyExit * med
	if exitThr < floor {
		exitThr = floor
	}
	var out []lagTransition
	for i := range h.anchors {
		st := &h.anchors[i]
		if !st.latSeen {
			continue
		}
		p := st.p95Locked()
		if !st.laggy {
			if p > enterThr {
				st.lagOver++
			} else {
				st.lagOver = 0
			}
			if st.lagOver >= h.cfg.LaggyRounds && nonLaggy > 2 {
				st.laggy, st.lagOver, st.lagUnder = true, 0, 0
				nonLaggy--
				h.lagMarks++
				out = append(out, lagTransition{Anchor: i, Laggy: true, P95: p})
			}
		} else {
			if p < exitThr {
				st.lagUnder++
			} else {
				st.lagUnder = 0
			}
			if st.lagUnder >= h.cfg.LaggyRounds {
				st.laggy, st.lagOver, st.lagUnder = false, 0, 0
				nonLaggy++
				h.lagReadmits++
				out = append(out, lagTransition{Anchor: i, Laggy: false, P95: p})
			}
		}
	}
	return out
}

// scoreLocked returns one anchor's current health score. Caller holds
// Server.mu.
func (h *healthTracker) scoreLocked(anchor int) float64 { return h.anchors[anchor].score }

// stateLocked returns one anchor's quarantine state. Caller holds Server.mu.
func (h *healthTracker) stateLocked(anchor int) anchorState { return h.anchors[anchor].state }

// endRoundLocked is the round boundary: it folds the accumulated verdicts into
// the EWMA scores, advances the quarantine state machine and re-elects
// the reference when needed. seen is the completing round's own presence
// set (anchors that contributed at least one row to it); nil falls back
// to judging presence by the verdict accumulators. It returns the state
// transitions that happened and whether the reference changed. Caller
// holds Server.mu.
func (h *healthTracker) endRoundLocked(seen []bool) (transitions []healthTransition, reelected bool) {
	a := h.cfg.EWMAAlpha
	present := func(i int) bool {
		if seen == nil || i >= len(seen) {
			return h.anchors[i].roundOK+h.anchors[i].roundBad > 0
		}
		return seen[i]
	}
	refSilent := !present(h.ref)
	for i := range h.anchors {
		st := &h.anchors[i]
		// An anchor absent from the round scores zero: silence is exactly
		// as useless as corruption to the estimator, and scoring it keeps
		// a dead reference from holding office.
		roundScore := 0.0
		nRows := st.roundOK + st.roundBad
		if nRows > 0 {
			roundScore = float64(st.roundOK) / float64(nRows)
		}
		cleanRound := nRows > 0 && st.roundBad == 0
		badRows := st.roundBad > 0
		st.roundOK, st.roundBad = 0, 0
		if nRows > 0 || (!present(i) && !st.laggy) {
			// Skipped case one: the anchor DID contribute to this round, but
			// its verdicts were already folded by an earlier boundary —
			// with many tag rounds in flight (an overload burst), several
			// completions share one global accumulator window, and scoring
			// the anchor silent here would quarantine the whole fleet for
			// the server's own backlog.
			// Skipped case two: a laggy anchor absent from the round.
			// Lateness is not corruption — the laggy state machine already
			// excludes it from quorum waits, and rounds now complete early
			// without it by design, so its absence is expected, not a
			// health signal. Quarantining it on top would conflate the two
			// planes (and displace a healthy reference during a burst).
			// Rows it does land are still scored; a genuinely corrupt slow
			// anchor quarantines through those.
			st.score = (1-a)*st.score + a*roundScore
		}

		from := st.state
		switch st.state {
		case anchorHealthy:
			if st.score < h.cfg.EnterScore {
				h.quarantineLocked(st)
			}
		case anchorQuarantined:
			st.cooldown--
			if st.cooldown <= 0 {
				st.state = anchorProbation
				st.cleanRounds = 0
			}
		case anchorProbation:
			switch {
			case badRows:
				// One rejected row during probation sends the anchor
				// straight back: probation exists to catch exactly the
				// radio that "recovers" for a moment and relapses.
				h.quarantineLocked(st)
			case cleanRound:
				st.cleanRounds++
				if st.cleanRounds >= h.cfg.ProbationRounds && st.score >= h.cfg.ExitScore {
					st.state = anchorHealthy
					h.readmissions++
				}
			}
		}
		if st.state != from {
			if st.state == anchorQuarantined {
				h.quarantines++
			}
			transitions = append(transitions, healthTransition{Anchor: i, From: from, To: st.state, Score: st.score})
		}
	}

	if h.holdoff > 0 {
		h.holdoff--
	}
	return transitions, h.maybeReelectLocked(refSilent)
}

// quarantineLocked moves one anchor into quarantine with a fresh jittered
// cooldown draw. Caller holds Server.mu.
func (h *healthTracker) quarantineLocked(st *anchorHealth) {
	st.state = anchorQuarantined
	st.cooldown = h.cfg.CooldownRounds + h.rng.IntN(h.cfg.CooldownJitter+1)
	st.cleanRounds = 0
}

// exportLocked fills a durable snapshot's health-plane section: per-anchor
// scores and state-machine positions, the elected reference, the
// re-election holdoff and the cumulative counters. The in-flight round
// accumulators (roundOK/roundBad) are deliberately not persisted — a
// restart restarts the round. Caller holds Server.mu.
func (h *healthTracker) exportLocked(st *durable.State) {
	st.Ref = h.ref
	st.Holdoff = h.holdoff
	st.Quarantines = h.quarantines
	st.Readmissions = h.readmissions
	st.Reelections = h.reelections
	st.Anchors = make([]durable.AnchorHealth, len(h.anchors))
	for i := range h.anchors {
		a := &h.anchors[i]
		st.Anchors[i] = durable.AnchorHealth{
			Score:       a.score,
			State:       uint8(a.state),
			Cooldown:    a.cooldown,
			CleanRounds: a.cleanRounds,
		}
	}
}

// restoreLocked replaces the tracker's state with a snapshot's. The
// snapshot has already passed durable's semantic validation (scores in
// [0,1], known state-machine positions, reference in range); the only
// check left is that it describes this deployment's anchor count. Caller
// holds Server.mu (or runs before the server's goroutines start).
func (h *healthTracker) restoreLocked(st *durable.State) error {
	if len(st.Anchors) != len(h.anchors) {
		return fmt.Errorf("locserver: snapshot has %d anchors, deployment has %d",
			len(st.Anchors), len(h.anchors))
	}
	for i, a := range st.Anchors {
		h.anchors[i] = anchorHealth{
			score:       a.Score,
			state:       anchorState(a.State),
			cooldown:    a.Cooldown,
			cleanRounds: a.CleanRounds,
		}
	}
	h.ref = st.Ref
	h.holdoff = st.Holdoff
	h.quarantines = st.Quarantines
	h.readmissions = st.Readmissions
	h.reelections = st.Reelections
	return nil
}

// maybeReelectLocked replaces the reference when it can no longer anchor
// the α correction. Forced elections — the reference is quarantined, or
// went completely silent for a whole round (a dead daemon: a healthy one
// contributes ~37 rows per round, so losing every single row to chance is
// not a thing) — bypass the re-election cooldown; soft ones (score in the
// quarantine band but not yet quarantined) respect it. Caller holds
// Server.mu.
func (h *healthTracker) maybeReelectLocked(refSilent bool) bool {
	ref := &h.anchors[h.ref]
	forced := ref.state == anchorQuarantined || refSilent
	soft := ref.state != anchorHealthy || ref.score < h.cfg.EnterScore
	if !forced && (!soft || h.holdoff > 0) {
		return false
	}
	best, bestScore := -1, -1.0
	for i := range h.anchors {
		if h.anchors[i].state != anchorHealthy || i == h.ref {
			continue
		}
		if h.anchors[i].score > bestScore {
			best, bestScore = i, h.anchors[i].score
		}
	}
	if best < 0 {
		return false // nobody healthier to elect; keep limping
	}
	h.ref = best
	h.reelections++
	h.holdoff = h.cfg.ReelectCooldown + h.rng.IntN(h.cfg.CooldownJitter+1)
	return true
}
