package locserver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bloc/internal/durable"
)

// Durable checkpointing and graceful drain (DESIGN.md §11). The server
// periodically snapshots the state that is expensive to rebuild — anchor
// health scores, the quarantine state machine, the elected reference, the
// round high-water mark, plus whatever the embedding process contributes
// through CheckpointConfig.Export (calibration rotors, per-tag Kalman
// tracks) — into a durable.Store. The snapshot is cloned under the server
// lock but serialized and fsynced outside it, so the fix path never waits
// on the disk. On startup the newest valid snapshot is restored, subject
// to a staleness TTL: state older than the TTL is discarded and the
// server cold-starts instead of trusting a stale world view.

// CheckpointConfig enables durable checkpointing.
type CheckpointConfig struct {
	// Store is where snapshots are persisted. Required.
	Store *durable.Store
	// Interval is the checkpoint cadence (default 2s).
	Interval time.Duration
	// StateTTL bounds how old a snapshot may be and still be restored
	// (default 1h). A snapshot past the TTL is discarded: calibration
	// drifts with temperature and anchors move, so stale state is worse
	// than a cold start. Negative disables the TTL.
	StateTTL time.Duration
	// Export, when set, is called at each checkpoint (outside the server
	// lock) to collect the embedding process's slice of the state:
	// calibration rotors and per-tag tracks. The returned value must not
	// alias live memory the caller keeps mutating.
	Export func() durable.External
	// Restore, when set, is called once during startup with the external
	// section of a successfully restored, TTL-fresh snapshot. Returning
	// an error rejects the external state only; the server-side health
	// state stays restored.
	Restore func(durable.External) error
}

func (c *CheckpointConfig) withDefaults() *CheckpointConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.StateTTL == 0 {
		out.StateTTL = time.Hour
	}
	return &out
}

// restoreFromStore attempts a warm start from the newest valid snapshot.
// Every failure path is a cold start, never an error: a server must come
// up with or without its history. Called from NewWithListener before any
// goroutine can touch the state; the external Restore callback runs
// outside the lock so it can take its own.
func (s *Server) restoreFromStore() {
	st, err := s.ckpt.Store.Load()
	if err != nil {
		if !errors.Is(err, durable.ErrNoSnapshot) {
			s.log.Warn("snapshot restore failed, cold start", "err", err)
		}
		return
	}
	if s.ckpt.StateTTL > 0 {
		age := s.now().Sub(time.Unix(0, st.SavedUnixNano))
		if age > s.ckpt.StateTTL {
			s.mu.Lock()
			s.stats.StaleDiscards++
			s.mu.Unlock()
			s.log.Warn("snapshot stale, cold start", "age", age, "ttl", s.ckpt.StateTTL)
			return
		}
	}
	s.mu.Lock()
	if err := s.health.restoreLocked(st); err != nil {
		s.mu.Unlock()
		s.log.Warn("snapshot rejected by health plane, cold start", "err", err)
		return
	}
	s.maxRound = st.Round
	s.stats.WarmRestores++
	s.mu.Unlock()
	if s.ckpt.Restore != nil {
		if err := s.ckpt.Restore(st.External); err != nil {
			s.log.Warn("external snapshot state rejected", "err", err)
		}
	}
	s.log.Info("warm restart from snapshot",
		"round", st.Round, "ref", st.Ref,
		"age", s.now().Sub(time.Unix(0, st.SavedUnixNano)).Round(time.Millisecond))
}

// checkpointLoop persists a snapshot every interval until the server
// closes.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	//lint:ignore clockcheck checkpoint cadence is wall-clock by design; only age math routes through the seam
	ticker := time.NewTicker(s.ckpt.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
		}
		if err := s.checkpointNow(); err != nil {
			s.log.Error("checkpoint failed", "err", err)
		}
	}
}

// checkpointNow persists one snapshot. The server state is cloned under
// the lock; encoding and the fsync'd write happen outside it, so the
// ingest/fix path is never blocked on storage.
func (s *Server) checkpointNow() error {
	var ext durable.External
	if s.ckpt.Export != nil {
		ext = s.ckpt.Export()
	}
	s.mu.Lock()
	st := s.exportStateLocked()
	s.mu.Unlock()
	st.External = ext

	err := s.ckpt.Store.Save(st)
	s.mu.Lock()
	if err != nil {
		s.stats.CheckpointErrors++
	} else {
		s.stats.Checkpoints++
	}
	s.mu.Unlock()
	return err
}

// exportStateLocked snapshots the server-owned durable state. The result
// shares no memory with live state. Caller holds s.mu.
func (s *Server) exportStateLocked() *durable.State {
	st := &durable.State{Round: s.maxRound}
	s.health.exportLocked(st)
	return st
}

// Drain gracefully winds the server down: new rounds stop being admitted
// (rows for already-pending rounds are still accepted, so in-flight
// acquisitions finish or hit their deadline), the server waits until no
// round is pending and the fix queue has been drained — queued and
// in-flight fixes are delivered, not abandoned — or ctx expires,
// persists a final checkpoint, and closes. It returns the first error
// among the final checkpoint and the close.
//
// Drain is idempotent and safe to call concurrently — a SIGTERM handler
// racing an embedder's own shutdown path must not double-drain: every
// caller waits for the in-flight work to flush, the final checkpoint is
// written exactly once (by whichever caller claims it first), and Close
// is already single-shot. A Drain that finds the server closed just
// waits for the close to finish.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return s.Close()
	}
	s.draining = true
	pending := len(s.rounds)
	s.mu.Unlock()
	s.log.Info("draining: no new rounds admitted", "pending", pending)

	//lint:ignore clockcheck drain polls real elapsed time; ctx carries the deadline
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		pending = len(s.rounds) + s.fq.size + s.fixInflight
		s.mu.Unlock()
		if pending == 0 {
			break
		}
		select {
		case <-ctx.Done():
			s.log.Warn("drain deadline reached, abandoning pending work", "pending", pending)
			pending = 0
		case <-ticker.C:
		}
		if pending == 0 {
			break
		}
	}

	var err error
	if s.ckpt != nil {
		// Exactly one final checkpoint across concurrent drains: the
		// flushed state is identical for every caller, and two writers
		// would burn a snapshot generation for nothing.
		s.mu.Lock()
		first := !s.finalCkpt
		s.finalCkpt = true
		s.mu.Unlock()
		if first {
			if cerr := s.checkpointNow(); cerr != nil {
				err = fmt.Errorf("locserver: final checkpoint: %w", cerr)
			}
		}
	}
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
