package locserver

import (
	"context"
	"sync"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/durable"
	"bloc/internal/geom"
)

// Regression coverage for idempotent, concurrency-safe shutdown: a
// SIGTERM handler's Drain racing an embedder's deferred Close (or a
// second signal's Drain) must not deadlock, double-tear-down, or write
// the final checkpoint twice.

func TestDrainCloseConcurrentIdempotent(t *testing.T) {
	store, err := durable.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{
		Anchors: 2, Antennas: 1, Bands: ble.DataChannels()[:3],
		RoundDeadline: 2 * time.Millisecond,
		Logger:        quietLogger(),
		// Interval far beyond the test horizon: the only checkpoint that
		// can happen is Drain's final one, which must be written exactly
		// once across every concurrent caller.
		Checkpoint: &CheckpointConfig{Store: store, Interval: time.Hour},
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(1, 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Keep traffic in flight while shutdown paths race.
	var feed sync.WaitGroup
	feed.Add(1)
	go func() {
		defer feed.Done()
		for r := uint32(1); r <= 40; r++ {
			for a := uint8(0); a < 2; a++ {
				for b := uint16(0); b < 3; b++ {
					srv.ingest(stressRow(5, r, a, b))
				}
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var shut sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 2; i++ {
		shut.Add(2)
		go func() {
			defer shut.Done()
			errs <- srv.Drain(ctx)
		}()
		go func() {
			defer shut.Done()
			errs <- srv.Close()
		}()
	}
	shut.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("concurrent shutdown returned %v", err)
		}
	}
	feed.Wait()

	// Late calls on a fully closed server are still clean no-ops.
	if err := srv.Close(); err != nil {
		t.Errorf("close after close: %v", err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Errorf("drain after close: %v", err)
	}

	if w := store.Stats().Writes; w > 1 {
		t.Errorf("final checkpoint written %d times, want at most once", w)
	}
}

// TestDrainCloseSequential pins the simple orders too: drain-then-close
// and close-then-drain both return nil and leave the counters sane.
func TestDrainCloseSequential(t *testing.T) {
	for _, closeFirst := range []bool{false, true} {
		srv := stressServer(t, 2, 8)
		for r := uint32(1); r <= 5; r++ {
			for a := uint8(0); a < 2; a++ {
				for b := uint16(0); b < 3; b++ {
					srv.ingest(stressRow(3, r, a, b))
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if closeFirst {
			if err := srv.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := srv.Drain(ctx); err != nil {
				t.Fatalf("drain after close: %v", err)
			}
		} else {
			if err := srv.Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("close after drain: %v", err)
			}
		}
		cancel()
	}
}
