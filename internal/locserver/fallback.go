package locserver

import (
	"sync"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/wire"
)

// fallbackCollector assembles rounds for tags whose home cell is down
// (DESIGN.md §15). While a cell restarts, its anchors' rows would
// otherwise be dropped on the floor; instead the fleet buckets them
// here, and a bucket that fills (every anchor × band row arrived)
// yields a complete snapshot a neighbor cell localizes coarsely — a
// flagged RSSI-grade fix beats silence for a tag mid-track. Incomplete
// buckets are never flushed: the down cell's own deadline machinery is
// gone, and a partial coarse fix from unvalidated rows is not worth
// guessing over.

// fbKey identifies one down cell's acquisition round.
type fbKey struct {
	cell  int
	tag   uint16
	round uint32
}

// fbBucket accumulates one round's rows.
type fbBucket struct {
	snap *csi.Snapshot
	got  map[[2]uint16]bool // (anchorID, bandIdx) already received
}

// maxFallbackBuckets bounds the collector; at the cap the buckets are
// cleared wholesale (rounds mid-assembly during a restart storm are
// lost, which only costs fallback fixes, never correctness).
const maxFallbackBuckets = 1024

type fallbackCollector struct {
	anchors  int // per-cell anchor count
	antennas int
	bands    []ble.ChannelIndex

	mu      sync.Mutex
	buckets map[fbKey]*fbBucket // guarded by mu
	// dropped counts buckets discarded before completing: cleared on a
	// cell's revival (drop) or evicted wholesale at the collector cap.
	// Surfaced as FleetStats.FallbackDropped — a climbing value during an
	// outage means fallback rounds are being assembled but thrown away,
	// i.e. the down window is costing fixes, not just accuracy.
	dropped int // guarded by mu
}

func newFallbackCollector(anchors, antennas int, bands []ble.ChannelIndex) *fallbackCollector {
	return &fallbackCollector{
		anchors:  anchors,
		antennas: antennas,
		bands:    bands,
		buckets:  make(map[fbKey]*fbBucket),
	}
}

// add merges one cell-local row for a down cell; when the row completes
// its round the snapshot is returned (and the bucket retired) for a
// coarse neighbor fix. Rows are not sanity-checked here — the coarse
// RSSI path is already the lowest-trust tier.
func (fc *fallbackCollector) add(cell int, row *wire.CSIRow) (*csi.Snapshot, bool) {
	if int(row.BandIdx) >= len(fc.bands) || len(row.Tag) != fc.antennas ||
		int(row.AnchorID) >= fc.anchors {
		return nil, false
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	k := fbKey{cell: cell, tag: row.TagID, round: row.Round}
	b := fc.buckets[k]
	if b == nil {
		if len(fc.buckets) >= maxFallbackBuckets {
			fc.dropped += len(fc.buckets)
			fc.buckets = make(map[fbKey]*fbBucket)
		}
		b = &fbBucket{
			snap: csi.NewSnapshot(fc.bands, fc.anchors, fc.antennas),
			got:  make(map[[2]uint16]bool),
		}
		fc.buckets[k] = b
	}
	key := [2]uint16{uint16(row.AnchorID), row.BandIdx}
	if b.got[key] {
		return nil, false
	}
	b.got[key] = true
	copy(b.snap.Tag[row.BandIdx][row.AnchorID], row.Tag)
	if row.AnchorID != 0 {
		b.snap.Master[row.BandIdx][row.AnchorID] = row.Master
	}
	if len(b.got) >= fc.anchors*len(fc.bands) {
		delete(fc.buckets, k)
		return b.snap, true
	}
	return nil, false
}

// drop discards every bucket belonging to a cell (called when the cell
// comes back: its own acquisition plane owns new rounds from here on,
// and a half-filled bucket would double-fix a round the revived cell
// also completes).
func (fc *fallbackCollector) drop(cell int) {
	fc.mu.Lock()
	for k := range fc.buckets {
		if k.cell == cell {
			delete(fc.buckets, k)
			fc.dropped++
		}
	}
	fc.mu.Unlock()
}

// droppedCount reports how many incomplete buckets have been discarded
// since startup.
func (fc *fallbackCollector) droppedCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.dropped
}
