package locserver

import (
	"context"
	"math"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"bloc/internal/anchor"
	"bloc/internal/ble"
	"bloc/internal/core"
	"bloc/internal/csi"
	"bloc/internal/faultnet"
	"bloc/internal/geom"
	"bloc/internal/testbed"
	"bloc/internal/wire"
)

// Tests for the overload-resilient serving plane (DESIGN.md §12): the
// bounded fair fix queue, the hysteretic serve-mode machine, shed
// accounting, deadline budgets, the straggler (laggy) state machine, the
// adaptive round deadline, timer-vs-teardown races, and the end-to-end
// overload drill.

// bareOverloadServer builds a Server with the overload plane initialized
// but no goroutines and no listener, for deterministic unit tests of the
// admission-control logic. Workers never run, so the queue holds exactly
// what the test put there.
func bareOverloadServer(queueCap int, ovl OverloadConfig) *Server {
	s := &Server{
		log:      quietLogger(),
		rounds:   make(map[roundKey]*pendingRound),
		done:     make(map[roundKey]doneRound),
		fq:       newFixQueue(queueCap),
		busyTags: make(map[uint16]bool),
		ovl:      ovl.withDefaults(queueCap),
		tagHist:  make(map[uint16]tagHistory),
		fixes:    make(chan wire.Fix, 16),
		now:      time.Now,

		tiers:        make(map[uint16]tierState),
		promoteAfter: 1,
	}
	s.fixCond = sync.NewCond(&s.mu)
	return s
}

func untrackedJob(tag uint16, round uint32) *fixJob {
	return &fixJob{rk: roundKey{tag: tag, round: round}, info: RoundInfo{Tag: tag, Round: round}}
}

// TestServeModeHysteresis walks the three-state machine across every
// watermark and checks the hysteresis bands: depths inside a band never
// change the mode, so a queue oscillating around one watermark cannot
// flap.
func TestServeModeHysteresis(t *testing.T) {
	s := bareOverloadServer(8, OverloadConfig{}) // watermarks: degrade 4/2, shed 6/3
	step := func(depth int, want serveMode) {
		t.Helper()
		s.fq.size = depth
		s.updateModeLocked()
		if s.mode != want {
			t.Fatalf("depth %d: mode %v, want %v", depth, s.mode, want)
		}
	}
	step(0, modeNormal)
	step(3, modeNormal)   // below DegradeHigh: stays
	step(4, modeDegraded) // enter degraded
	step(5, modeDegraded)
	step(3, modeDegraded) // inside the band: no flap back
	step(2, modeNormal)   // at DegradeLow: exit
	step(4, modeDegraded)
	step(6, modeShedding) // enter shedding
	step(4, modeShedding) // above ShedLow: stays shedding
	step(3, modeDegraded) // at ShedLow: drop one level
	step(2, modeNormal)
	step(7, modeShedding) // normal can jump straight to shedding
	if got := s.stats.ModeChanges; got != 7 {
		t.Errorf("ModeChanges = %d, want 7", got)
	}
}

// TestShedPriorityAccounting pins the admission policy: untracked tags
// are shed in shedding mode and at a full queue; tracked tags evict an
// untracked victim instead of being refused; every drop increments
// OverloadShed and every demotion increments OverloadDegraded.
func TestShedPriorityAccounting(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	cur := base
	s := bareOverloadServer(8, OverloadConfig{})
	s.now = func() time.Time { return cur }

	// Tag 1 earns tracked status; tag 2 has no history.
	for i := 0; i < trackedMinFixes; i++ {
		s.noteFixLocked(1)
	}
	if !s.trackedLocked(1) || s.trackedLocked(2) {
		t.Fatalf("tracked(1)=%v tracked(2)=%v, want true/false", s.trackedLocked(1), s.trackedLocked(2))
	}
	// Tracked status expires with the TTL.
	cur = base.Add(s.ovl.TrackedTTL + time.Second)
	if s.trackedLocked(1) {
		t.Error("tag 1 still tracked past TrackedTTL")
	}
	cur = base

	// Shedding mode drops untracked rounds outright and admits (demoted)
	// tracked ones.
	s.mode = modeShedding
	s.enqueueFixLocked(untrackedJob(2, 1))
	if s.stats.OverloadShed != 1 || s.fq.size != 0 {
		t.Fatalf("untracked round not shed: shed=%d size=%d", s.stats.OverloadShed, s.fq.size)
	}
	j1 := untrackedJob(1, 1)
	s.enqueueFixLocked(j1)
	if s.fq.size != 1 || !j1.info.Coarse || !j1.info.Degraded || s.stats.OverloadDegraded != 1 {
		t.Fatalf("tracked round not admitted+demoted: size=%d info=%+v degraded=%d",
			s.fq.size, j1.info, s.stats.OverloadDegraded)
	}

	// Full queue: a tracked round evicts a queued untracked victim.
	s2 := bareOverloadServer(4, OverloadConfig{})
	s2.now = func() time.Time { return cur }
	for i := 0; i < trackedMinFixes; i++ {
		s2.noteFixLocked(1)
	}
	for tag := uint16(10); tag < 14; tag++ {
		s2.fq.pushLocked(untrackedJob(tag, 1))
	}
	s2.enqueueFixLocked(untrackedJob(1, 2))
	if s2.fq.size != 4 {
		t.Fatalf("queue size %d after tracked admission, want 4 (cap)", s2.fq.size)
	}
	if _, ok := s2.fq.perTag[1]; !ok {
		t.Error("tracked tag 1 refused at a full queue")
	}
	if _, ok := s2.fq.perTag[13]; ok {
		t.Error("newest untracked victim (tag 13) not evicted")
	}
	if s2.stats.OverloadShed != 1 {
		t.Errorf("OverloadShed = %d, want 1 (the eviction)", s2.stats.OverloadShed)
	}
	// Full queue, untracked incoming: the victim is re-queued and the
	// incoming round dropped.
	s2.mode = modeDegraded // below shedding, so the full-queue branch decides
	s2.enqueueFixLocked(untrackedJob(14, 1))
	if s2.fq.size != 4 {
		t.Fatalf("queue size %d after untracked refusal, want 4", s2.fq.size)
	}
	if _, ok := s2.fq.perTag[14]; ok {
		t.Error("untracked round admitted to a full queue")
	}
	if _, ok := s2.fq.perTag[12]; !ok {
		t.Error("eviction victim not re-queued when the incoming round was untracked")
	}
	if s2.stats.OverloadShed != 2 {
		t.Errorf("OverloadShed = %d, want 2", s2.stats.OverloadShed)
	}
}

// TestFixBudgetDrops pins the deadline budget on both sides of
// localization: a job already past its budget is dropped before the
// callback ever runs, and a fix computed too slowly is dropped before
// broadcast — late is lost, never delivered stale.
func TestFixBudgetDrops(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	cur := base
	s := bareOverloadServer(8, OverloadConfig{})
	s.now = func() time.Time { return cur }
	s.cfg.FixBudget = 50 * time.Millisecond
	called := 0
	s.cfg.OnSnapshot = func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		called++
		return geom.Pt(1, 2), nil
	}
	job := func() *fixJob {
		j := untrackedJob(1, 1)
		j.start = base
		return j
	}

	// Already over budget: dropped before localization.
	cur = base.Add(60 * time.Millisecond)
	s.runFix(job())
	if called != 0 || s.stats.BudgetExceeded != 1 {
		t.Fatalf("pre-localization drop: called=%d budget=%d, want 0/1", called, s.stats.BudgetExceeded)
	}
	// Budget exhausted inside the callback: dropped before broadcast.
	cur = base
	s.cfg.OnSnapshot = func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		called++
		cur = base.Add(100 * time.Millisecond)
		return geom.Pt(1, 2), nil
	}
	s.runFix(job())
	if called != 1 || s.stats.BudgetExceeded != 2 {
		t.Fatalf("pre-broadcast drop: called=%d budget=%d, want 1/2", called, s.stats.BudgetExceeded)
	}
	select {
	case f := <-s.fixes:
		t.Fatalf("stale fix delivered: %+v", f)
	default:
	}
	// Within budget: delivered, and the tag's history advances.
	cur = base
	s.cfg.OnSnapshot = func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
		called++
		return geom.Pt(1, 2), nil
	}
	s.runFix(job())
	select {
	case f := <-s.fixes:
		if f.TagID != 1 || f.X != 1 || f.Y != 2 {
			t.Errorf("fix = %+v, want tag 1 at (1,2)", f)
		}
	default:
		t.Fatal("in-budget fix not delivered")
	}
	if h := s.tagHist[1]; h.fixes != 1 {
		t.Errorf("tag history fixes = %d, want 1", h.fixes)
	}
}

// TestFixQueueFairness pins per-tag round-robin draining: a hot tag with
// a deep FIFO cannot starve other tags, and a tag with a fix in flight is
// skipped without stalling the rest of the ring.
func TestFixQueueFairness(t *testing.T) {
	q := newFixQueue(16)
	for _, tag := range []uint16{1, 1, 1, 2, 3} {
		q.pushLocked(untrackedJob(tag, 1))
	}
	busy := map[uint16]bool{}
	var order []uint16
	for j := q.popLocked(busy); j != nil; j = q.popLocked(busy) {
		order = append(order, j.info.Tag)
	}
	want := []uint16{1, 2, 3, 1, 1}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
	if q.size != 0 {
		t.Fatalf("queue size %d after draining, want 0", q.size)
	}
	// A busy tag is skipped; the others still drain; the busy tag's jobs
	// surface once it frees.
	for _, tag := range []uint16{1, 1, 2} {
		q.pushLocked(untrackedJob(tag, 2))
	}
	busy[1] = true
	if j := q.popLocked(busy); j == nil || j.info.Tag != 2 {
		t.Fatalf("pop with tag 1 busy = %+v, want tag 2", j)
	}
	if j := q.popLocked(busy); j != nil {
		t.Fatalf("pop returned %+v with only busy tags queued, want nil", j)
	}
	delete(busy, 1)
	if j := q.popLocked(busy); j == nil || j.info.Tag != 1 {
		t.Fatalf("pop after unbusy = %+v, want tag 1", j)
	}
}

// latRound feeds one latency observation per anchor and closes the
// latency round boundary.
func latRound(h *healthTracker, lats []time.Duration) []lagTransition {
	for i, d := range lats {
		h.observeLatencyLocked(i, d)
	}
	return h.endLatencyRoundLocked()
}

// TestLaggyMarkAndReadmit drives the straggler state machine through a
// full episode: a slow anchor is marked laggy only after LaggyRounds
// consecutive slow rounds (no single-round exile), and readmitted only
// after LaggyRounds consecutive punctual rounds (no single-round
// readmission) — the same hysteresis discipline quarantine uses.
func TestLaggyMarkAndReadmit(t *testing.T) {
	ms := time.Millisecond
	h := newHealthTracker(4, HealthConfig{LatAlpha: 1, LaggyRounds: 2, Seed: 1})
	slow := []time.Duration{ms, ms, ms, 60 * ms}
	fast := []time.Duration{ms, ms, ms, ms}

	if trs := latRound(h, slow); len(trs) != 0 {
		t.Fatalf("marked laggy after one slow round: %+v", trs)
	}
	trs := latRound(h, slow)
	if len(trs) != 1 || trs[0].Anchor != 3 || !trs[0].Laggy {
		t.Fatalf("transitions after %d slow rounds = %+v, want anchor 3 laggy", h.cfg.LaggyRounds, trs)
	}
	if h.lagMarks != 1 || !h.laggySetLocked()[3] {
		t.Fatalf("lagMarks=%d laggy[3]=%v, want 1/true", h.lagMarks, h.laggySetLocked()[3])
	}
	// Recovery: the first fast round inflates the deviation EWMA (the
	// drop from 60ms is itself a deviation), so readmission takes the
	// EWMA settling plus LaggyRounds clean rounds — never one round.
	if trs := latRound(h, fast); len(trs) != 0 {
		t.Fatalf("readmitted after one fast round: %+v", trs)
	}
	if trs := latRound(h, fast); len(trs) != 0 {
		t.Fatalf("readmitted before %d clean rounds: %+v", h.cfg.LaggyRounds, trs)
	}
	trs = latRound(h, fast)
	if len(trs) != 1 || trs[0].Anchor != 3 || trs[0].Laggy {
		t.Fatalf("transitions after recovery = %+v, want anchor 3 readmitted", trs)
	}
	if h.lagReadmits != 1 || h.laggyCountLocked() != 0 {
		t.Errorf("lagReadmits=%d laggyCount=%d, want 1/0", h.lagReadmits, h.laggyCountLocked())
	}
}

// TestLaggyQuorumFloor verifies the two-anchor floor: with two of four
// anchors already laggy, a third slow anchor is never excluded — the
// estimator needs someone left to wait for.
func TestLaggyQuorumFloor(t *testing.T) {
	ms := time.Millisecond
	h := newHealthTracker(4, HealthConfig{LatAlpha: 1, LaggyRounds: 1, Seed: 1})
	latRound(h, []time.Duration{ms, ms, ms, 60 * ms})
	if !h.laggySetLocked()[3] {
		t.Fatal("anchor 3 not marked")
	}
	latRound(h, []time.Duration{ms, ms, 60 * ms, 60 * ms})
	if !h.laggySetLocked()[2] {
		t.Fatal("anchor 2 not marked")
	}
	for r := 0; r < 5; r++ {
		latRound(h, []time.Duration{ms, 60 * ms, 60 * ms, 60 * ms})
	}
	if h.laggySetLocked()[1] {
		t.Error("anchor 1 marked laggy below the two-anchor floor")
	}
	if got := h.laggyCountLocked(); got != 2 {
		t.Errorf("laggy count = %d, want 2 (floor)", got)
	}
	if h.lagMarks != 2 {
		t.Errorf("lagMarks = %d, want 2", h.lagMarks)
	}
}

// TestLaggySilenceNotQuarantined pins lateness ≠ corruption: a laggy
// anchor absent from completing rounds (they finish early without it by
// design) must not have its health score decayed toward quarantine — but
// a punctual anchor going silent still must, since that is the dead-radio
// signal the quarantine plane exists for.
func TestLaggySilenceNotQuarantined(t *testing.T) {
	ms := time.Millisecond
	h := newHealthTracker(4, HealthConfig{
		LatAlpha: 1, LaggyRounds: 1, Seed: 1,
		CooldownRounds: 4, CooldownJitter: -1,
	})
	latRound(h, []time.Duration{ms, ms, ms, 60 * ms})
	if !h.laggySetLocked()[3] {
		t.Fatal("anchor 3 not marked laggy")
	}
	// Many rounds complete without the laggy anchor: rows from the three
	// punctual anchors, the laggy one absent.
	seen := []bool{true, true, true, false}
	for r := 0; r < 20; r++ {
		for i := 0; i < 3; i++ {
			h.observeLocked(i, csi.RowOK)
		}
		h.endRoundLocked(seen)
	}
	if got := h.scoreLocked(3); got != 1 {
		t.Errorf("laggy anchor's score decayed to %.2f during excluded rounds, want 1 (untouched)", got)
	}
	if got := h.stateLocked(3); got != anchorHealthy {
		t.Errorf("laggy anchor state %v, want healthy (lateness is not corruption)", got)
	}
	if h.quarantines != 0 {
		t.Errorf("quarantines = %d, want 0", h.quarantines)
	}
	// Control: the same silence from a non-laggy anchor decays its score
	// into quarantine.
	for r := 0; r < 20 && h.stateLocked(2) != anchorQuarantined; r++ {
		for i := 0; i < 2; i++ {
			h.observeLocked(i, csi.RowOK)
		}
		h.endRoundLocked([]bool{true, true, false, false})
	}
	if got := h.stateLocked(2); got != anchorQuarantined {
		t.Errorf("punctual-but-silent anchor state %v, want quarantined", got)
	}
}

// TestAdaptiveDeadlineClamps pins the adaptive deadline's derivation and
// both clamps: headroom × worst non-laggy p95, never below max/10, never
// above the configured ceiling, and exactly the ceiling before any
// latency has been observed.
func TestAdaptiveDeadlineClamps(t *testing.T) {
	max := time.Second
	h := newHealthTracker(2, HealthConfig{LatAlpha: 1, Seed: 1})
	if got := h.adaptiveDeadlineLocked(max); got != max {
		t.Fatalf("deadline with no history = %v, want %v", got, max)
	}
	feed := func(d time.Duration) {
		// Twice: the first observation seeds the EWMA, the second zeroes
		// the deviation (alpha 1), making p95 == d exactly.
		for i := 0; i < 2; i++ {
			h.observeLatencyLocked(0, d)
			h.observeLatencyLocked(1, d)
		}
	}
	feed(50 * time.Millisecond)
	if got := h.adaptiveDeadlineLocked(max); got != 100*time.Millisecond {
		t.Errorf("deadline = %v, want 100ms (2× worst p95)", got)
	}
	feed(time.Microsecond)
	if got := h.adaptiveDeadlineLocked(max); got != max/10 {
		t.Errorf("deadline = %v, want floor %v", got, max/10)
	}
	feed(10 * time.Second)
	if got := h.adaptiveDeadlineLocked(max); got != max {
		t.Errorf("deadline = %v, want ceiling %v", got, max)
	}
	// A laggy anchor's p95 never widens the deadline.
	feed(time.Microsecond)
	h.anchors[1].lat, h.anchors[1].laggy = 10, true
	if got := h.adaptiveDeadlineLocked(max); got != max/10 {
		t.Errorf("deadline = %v with a slow laggy anchor, want floor %v", got, max/10)
	}
}

// TestAdaptiveDeadlineRequiresRoundDeadline pins the config invariant:
// adaptive deadlines scale a configured ceiling, so a zero RoundDeadline
// is a construction error, not a silent no-op.
func TestAdaptiveDeadlineRequiresRoundDeadline(t *testing.T) {
	_, err := New("127.0.0.1:0", Config{
		Anchors: 2, Antennas: 1, Bands: ble.DataChannels()[:2],
		AdaptiveDeadline: true,
		Logger:           quietLogger(),
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Point{}, nil
		},
	})
	if err == nil {
		t.Fatal("AdaptiveDeadline without RoundDeadline accepted")
	}
}

// TestRoundDeadlineTeardownRace hammers the timer-vs-teardown interface:
// rounds with millisecond deadlines are created while the server is
// concurrently Closed or Drained. Must be clean under -race — deadline
// completion is an enqueue under the same lock teardown serializes on,
// so no half-finished completion can outlive the server.
func TestRoundDeadlineTeardownRace(t *testing.T) {
	for i := 0; i < 12; i++ {
		srv, err := New("127.0.0.1:0", Config{
			Anchors: 2, Antennas: 1, Bands: ble.DataChannels()[:3],
			RoundDeadline: time.Millisecond,
			FixQueueDepth: 4,
			Logger:        quietLogger(),
			OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
				return geom.Pt(0, 0), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := uint32(1); r <= 40; r++ {
				for a := uint8(0); a < 2; a++ {
					for b := uint16(0); b < 3; b++ {
						srv.ingest(&wire.CSIRow{
							Round: r, TagID: 7, AnchorID: a, BandIdx: b,
							Tag:    []complex128{complex(float64(r), float64(b+1))},
							Master: complex(1, float64(a+1)),
						})
					}
				}
				if r%8 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
		time.Sleep(time.Duration(i%4) * 500 * time.Microsecond)
		if i%2 == 0 {
			if err := srv.Close(); err != nil {
				t.Fatalf("iteration %d: close: %v", i, err)
			}
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			if err := srv.Drain(ctx); err != nil {
				t.Fatalf("iteration %d: drain: %v", i, err)
			}
			cancel()
		}
		wg.Wait()
	}
}

// TestOverloadDrill is the acceptance scenario (ISSUE 6): a seeded 10×
// tag burst lands on a fleet whose last two anchors have turned slow.
// The server must keep ingesting (queue depth bounded at the cap), shed
// and degrade by priority with every decision counted, mark the slow
// anchors laggy, and — once the load subsides and the stragglers speed
// back up — return tracked-tag accuracy to the pre-burst baseline.
func TestOverloadDrill(t *testing.T) {
	const (
		seed     = 91
		deadline = 300 * time.Millisecond
		queueCap = 8
	)
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(dep.Anchors, core.DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("127.0.0.1:0", Config{
		Anchors:          len(dep.Anchors),
		Antennas:         dep.Anchors[0].N,
		Bands:            dep.Bands,
		RoundDeadline:    deadline,
		MinAnchors:       2,
		AdaptiveDeadline: true,
		FixWorkers:       1,
		FixQueueDepth:    queueCap,
		FixBudget:        10 * time.Second,
		Overload:         OverloadConfig{TrackedTTL: 5 * time.Minute},
		Health:           HealthConfig{LatAlpha: 0.5, Seed: seed},
		Logger:           quietLogger(),
		OnSnapshot: func(info RoundInfo, snap *csi.Snapshot) (geom.Point, error) {
			if info.Coarse {
				res, err := eng.LocateRSSI(snap)
				if err != nil {
					return geom.Point{}, err
				}
				return res.Estimate, nil
			}
			// Stand-in for the full grid search's CPU cost: without it the
			// drill's queue could drain as fast as it fills on a fast
			// machine and overload would depend on scheduling luck.
			time.Sleep(8 * time.Millisecond)
			res, err := eng.LocateRef(snap, info.Ref)
			if err != nil {
				return geom.Point{}, err
			}
			return res.Estimate, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Daemons; the last two dial through a toggleable delay injector.
	var delayMu sync.Mutex
	delays := map[int]*faultnet.DelayConn{}
	daemons := make([]*anchor.Daemon, len(dep.Anchors))
	for i := range daemons {
		depI, err := testbed.Paper(seed)
		if err != nil {
			t.Fatal(err)
		}
		d, err := anchor.New(i, depI, quietLogger())
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(daemons)-2 {
			id := i
			d.Dial = func(addr string) (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				dc := faultnet.WrapDelayConn(c, faultnet.DelayConfig{
					Seed: seed, Base: 500 * time.Microsecond,
				}, uint64(id))
				dc.SetSlow(false)
				delayMu.Lock()
				delays[id] = dc
				delayMu.Unlock()
				return dc, nil
			}
		}
		if err := d.Connect(srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
	}
	setSlow := func(on bool) {
		delayMu.Lock()
		defer delayMu.Unlock()
		for _, dc := range delays {
			dc.SetSlow(on)
		}
	}

	// The offered load schedule: 2 tags per round, 20 during the burst.
	burst := faultnet.Burst{BaseTags: 2, Factor: 10, Start: 7, Rounds: 4}
	tagPos := func(tag uint16) geom.Point {
		return geom.Pt(-1.2+0.3*float64(tag%9), -1.0+0.35*float64(tag/9))
	}

	// Fix collector.
	var fixMu sync.Mutex
	got := map[[2]uint32]geom.Point{}
	collectorDone := make(chan struct{})
	defer close(collectorDone)
	go func() {
		for {
			select {
			case f := <-srv.Fixes():
				fixMu.Lock()
				got[[2]uint32{uint32(f.TagID), f.Round}] = geom.Pt(f.X, f.Y)
				fixMu.Unlock()
			case <-collectorDone:
				return
			}
		}
	}()
	waitFix := func(tag uint16, round uint32, timeout time.Duration) (geom.Point, bool) {
		until := time.Now().Add(timeout)
		for time.Now().Before(until) {
			fixMu.Lock()
			p, ok := got[[2]uint32{uint32(tag), round}]
			fixMu.Unlock()
			if ok {
				return p, true
			}
			time.Sleep(2 * time.Millisecond)
		}
		return geom.Point{}, false
	}
	sendRound := func(round uint32, tags []uint16) {
		var wg sync.WaitGroup
		for _, d := range daemons {
			wg.Add(1)
			go func(d *anchor.Daemon) {
				defer wg.Done()
				for _, tg := range tags {
					if err := d.MeasureAndReport(tg, round, tagPos(tg)); err != nil {
						t.Errorf("round %d tag %d: %v", round, tg, err)
					}
				}
			}(d)
		}
		wg.Wait()
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}

	// Phase 1 — baseline: tags 1 and 2 earn tracked status and set the
	// accuracy bar.
	var baseErrs []float64
	for r := uint32(1); r < burst.Start; r++ {
		sendRound(r, burst.Tags(r))
		if p, ok := waitFix(1, r, 5*time.Second); ok {
			baseErrs = append(baseErrs, p.Dist(tagPos(1)))
		}
		waitFix(2, r, 2*time.Second)
	}
	if len(baseErrs) < 4 {
		t.Fatalf("baseline produced %d tag-1 fixes of %d rounds (stats %+v)",
			len(baseErrs), burst.Start-1, srv.Stats())
	}
	baseMed := median(baseErrs)

	// Phase 2 — the storm: two anchors turn slow, load goes 10×. Fast
	// daemons blast all four rounds; the slow ones trickle behind.
	setSlow(true)
	var bw sync.WaitGroup
	for _, d := range daemons {
		bw.Add(1)
		go func(d *anchor.Daemon) {
			defer bw.Done()
			for r := burst.Start; burst.Active(r); r++ {
				for _, tg := range burst.Tags(r) {
					if err := d.MeasureAndReport(tg, r, tagPos(tg)); err != nil {
						t.Errorf("burst round %d tag %d: %v", r, tg, err)
					}
				}
			}
		}(d)
	}
	bw.Wait()
	setSlow(false)

	mid := srv.Stats()
	if mid.QueuePeak > queueCap {
		t.Errorf("queue peak %d exceeded cap %d", mid.QueuePeak, queueCap)
	}
	if mid.OverloadShed == 0 {
		t.Errorf("no rounds shed under a 10× burst (stats %+v)", mid)
	}
	if mid.OverloadDegraded == 0 {
		t.Errorf("no rounds demoted to the coarse fix under overload (stats %+v)", mid)
	}
	if mid.ModeChanges < 2 {
		t.Errorf("ModeChanges = %d, want ≥ 2 (escalate and recover)", mid.ModeChanges)
	}
	if mid.LaggyMarks == 0 {
		t.Errorf("slow anchors never marked laggy (stats %+v)", mid)
	}

	// Phase 3 — recovery: normal load, punctual anchors. Wait for the
	// planes to readmit everyone, then measure five clean rounds.
	r := burst.Start + burst.Rounds - 1
	recovered := false
	for extra := 0; extra < 80; extra++ {
		r++
		sendRound(r, burst.Tags(r))
		waitFix(1, r, time.Second)
		st := srv.Stats()
		if st.LaggyAnchors == 0 && st.Readmissions >= st.Quarantines && st.Mode == 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("fleet never recovered after the burst (stats %+v)", srv.Stats())
	}
	var recErrs []float64
	var recRounds []uint32
	for i := 0; i < 5; i++ {
		r++
		sendRound(r, burst.Tags(r))
		if p, ok := waitFix(1, r, 5*time.Second); ok {
			recErrs = append(recErrs, p.Dist(tagPos(1)))
			recRounds = append(recRounds, r)
		}
	}
	if len(recErrs) < 4 {
		t.Fatalf("recovery produced %d tag-1 fixes of 5 rounds (stats %+v)", len(recErrs), srv.Stats())
	}
	recMed := median(recErrs)
	// Baseline parity must be reference-aware: the burst can legitimately
	// re-elect the reference (e.g. the master itself turns slow), and
	// single-position error is reference-dependent — at some positions one
	// reference's multipath draw is metres worse than another's, which
	// says nothing about the serving plane. The bar is therefore what the
	// identical clean pipeline produces for the same rounds under the
	// recovered reference: the daemons' forks are deterministic, so the
	// oracle recomputes exactly the snapshots the server assembled.
	ref := srv.Stats().Reference
	var cleanErrs []float64
	for _, rr := range recRounds {
		snap := dep.Fork(uint64(1)<<32 | uint64(rr)).Sounding(tagPos(1))
		res, err := eng.LocateRef(snap, ref)
		if err != nil {
			t.Fatalf("oracle round %d ref %d: %v", rr, ref, err)
		}
		cleanErrs = append(cleanErrs, res.Estimate.Dist(tagPos(1)))
	}
	cleanMed := median(cleanErrs)
	// Within 10% of the clean pipeline, with a small absolute allowance so
	// a centimeter-scale baseline cannot fail on simulation noise. When the
	// reference never moved this is the pre-burst baseline restated (same
	// pipeline, same reference), so log the pre-burst median for context.
	tol := math.Max(1.15*cleanMed, cleanMed+0.3)
	if recMed > tol {
		t.Errorf("recovered median error %.3fm vs clean-pipeline %.3fm at reference %d "+
			"(tolerance %.3fm; pre-burst baseline %.3fm; stats %+v)",
			recMed, cleanMed, ref, tol, baseMed, srv.Stats())
	}

	final := srv.Stats()
	if final.LaggyReadmits < 1 {
		t.Errorf("laggy anchors never readmitted (stats %+v)", final)
	}
	if final.EarlyCompletions < 1 {
		t.Errorf("no early completions while stragglers were excluded (stats %+v)", final)
	}
}
