package locserver

import (
	"testing"

	"bloc/internal/csi"
)

// Unit tests for the quarantine state machine and reference election,
// driving the tracker's round boundaries directly (no network, no clock).

func newTestTracker(anchors int) *healthTracker {
	return newHealthTracker(anchors, HealthConfig{
		CooldownRounds: 4,
		CooldownJitter: -1, // no jitter: deterministic cooldowns for assertions
		Seed:           1,
	})
}

// roundOf feeds one round's worth of verdicts for every anchor and closes
// the boundary: ok/bad counts per anchor index.
func roundOf(h *healthTracker, ok, bad []int) ([]healthTransition, bool) {
	for i := range h.anchors {
		for r := 0; r < ok[i]; r++ {
			h.observeLocked(i, csi.RowOK)
		}
		for r := 0; r < bad[i]; r++ {
			h.observeLocked(i, csi.RowNonFinite)
		}
	}
	seen := make([]bool, len(h.anchors))
	for i := range seen {
		seen[i] = ok[i]+bad[i] > 0
	}
	return h.endRoundLocked(seen)
}

// TestHealthQuarantineHysteresis is the no-flapping guarantee: once
// quarantined, an anchor stays quarantined for the full cooldown even if
// its data turns perfectly clean immediately, then must earn readmission
// through probation — it cannot bounce healthy→quarantined→healthy across
// consecutive rounds.
func TestHealthQuarantineHysteresis(t *testing.T) {
	h := newTestTracker(2)
	// Poison anchor 1 until it quarantines (EWMA needs a few rounds).
	rounds := 0
	for h.stateLocked(1) != anchorQuarantined {
		roundOf(h, []int{10, 0}, []int{0, 10})
		if rounds++; rounds > 10 {
			t.Fatal("anchor never quarantined")
		}
	}
	if h.quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", h.quarantines)
	}
	// Data turns clean instantly; the anchor must still sit out the whole
	// cooldown (4 rounds) in quarantine — no flapping.
	for r := 0; r < 3; r++ {
		roundOf(h, []int{10, 10}, []int{0, 0})
		if got := h.stateLocked(1); got != anchorQuarantined {
			t.Fatalf("cooldown round %d: state %v, want quarantined", r, got)
		}
	}
	roundOf(h, []int{10, 10}, []int{0, 0})
	if got := h.stateLocked(1); got != anchorProbation {
		t.Fatalf("after cooldown: state %v, want probation", got)
	}
	// Probation: 3 clean rounds AND score recovered past ExitScore.
	for h.stateLocked(1) == anchorProbation {
		roundOf(h, []int{10, 10}, []int{0, 0})
		if rounds++; rounds > 30 {
			t.Fatal("anchor never readmitted")
		}
	}
	if got := h.stateLocked(1); got != anchorHealthy {
		t.Fatalf("after probation: state %v, want healthy", got)
	}
	if h.readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", h.readmissions)
	}
	if h.quarantines != 1 {
		t.Fatalf("quarantines = %d after recovery, want still 1 (no flap)", h.quarantines)
	}
}

// TestHealthProbationRelapse: one rejected row during probation sends the
// anchor straight back to quarantine with a fresh cooldown.
func TestHealthProbationRelapse(t *testing.T) {
	h := newTestTracker(2)
	for h.stateLocked(1) != anchorQuarantined {
		roundOf(h, []int{10, 0}, []int{0, 10})
	}
	for h.stateLocked(1) != anchorProbation {
		roundOf(h, []int{10, 10}, []int{0, 0})
	}
	// Mostly clean round with a single bad row: instant requarantine.
	roundOf(h, []int{10, 9}, []int{0, 1})
	if got := h.stateLocked(1); got != anchorQuarantined {
		t.Fatalf("after probation relapse: state %v, want quarantined", got)
	}
	if h.quarantines != 2 {
		t.Fatalf("quarantines = %d, want 2", h.quarantines)
	}
	if cd := h.anchors[1].cooldown; cd != 4 {
		t.Fatalf("relapse cooldown = %d, want a fresh full draw (4)", cd)
	}
}

// TestHealthSilentReferenceForcesReelection: a reference that contributes
// zero rows in a round is replaced at that round's boundary, bypassing the
// re-election holdoff — one round, not an EWMA decay's worth.
func TestHealthSilentReferenceForcesReelection(t *testing.T) {
	h := newTestTracker(3)
	if h.referenceLocked() != 0 {
		t.Fatalf("initial reference %d, want 0", h.referenceLocked())
	}
	// Anchor 2 slightly outscores anchor 1 so the election is deterministic.
	roundOf(h, []int{10, 9, 10}, []int{0, 1, 0})
	if h.referenceLocked() != 0 {
		t.Fatal("healthy reference replaced without cause")
	}
	_, reelected := roundOf(h, []int{0, 9, 10}, []int{0, 1, 0})
	if !reelected {
		t.Fatal("silent reference not replaced at the next round boundary")
	}
	if got := h.referenceLocked(); got != 2 {
		t.Fatalf("elected %d, want highest-score healthy anchor 2", got)
	}
	if h.reelections != 1 {
		t.Fatalf("reelections = %d, want 1", h.reelections)
	}
}

// TestHealthDegradedReferenceNotThrashed: a reference whose score sags but
// stays above the quarantine threshold is never replaced, even when other
// anchors score strictly higher — re-election needs cause (quarantine,
// silence, or a sub-threshold score), not a mere ranking change.
func TestHealthDegradedReferenceNotThrashed(t *testing.T) {
	h := newTestTracker(3)
	for r := 0; r < 10; r++ {
		// Reference drops 3 of 10 rows every round: score settles near 0.7,
		// well above EnterScore but far below its rivals' 1.0.
		_, re := roundOf(h, []int{7, 10, 10}, []int{3, 0, 0})
		if re {
			t.Fatalf("round %d: healthy above-threshold reference replaced", r)
		}
	}
	if h.referenceLocked() != 0 || h.reelections != 0 {
		t.Fatalf("ref %d reelections %d, want 0 and 0", h.referenceLocked(), h.reelections)
	}
}

// TestHealthNoEligibleReplacement: when every other anchor is quarantined
// the tracker keeps the current reference rather than electing a corrupt
// one.
func TestHealthNoEligibleReplacement(t *testing.T) {
	h := newTestTracker(2)
	// Quarantine anchor 1, then silence the reference: no healthy
	// replacement exists, so the reference must not move.
	for h.stateLocked(1) != anchorQuarantined {
		roundOf(h, []int{10, 0}, []int{0, 10})
	}
	_, re := roundOf(h, []int{0, 0}, []int{0, 10})
	if re || h.referenceLocked() != 0 {
		t.Fatalf("elected a non-healthy replacement: ref %d", h.referenceLocked())
	}
}
