package locserver

import (
	"fmt"
	"net"
	"sync"
	"time"

	"bloc/internal/wire"
)

// Downtime TCP ingress (DESIGN.md §15/§16). Each cell's TCP listener is
// owned by the Fleet and outlives cell incarnations: a live cell server
// accepts through a listenerLease, and while the cell is down — its
// server closed, the supervisor backing off — the fleet itself accepts
// on the same socket and feeds the rows into the fallback collector. A
// TCP anchor daemon therefore keeps one stable address per cell across
// restarts, and its rounds during a down window become flagged coarse
// fallback fixes instead of connection-refused silence.

// revokeDeadline is the fixed past instant a revoked lease pins the
// listener deadline to; any constant in the past works, and a fixed one
// keeps revocation independent of the wall clock.
var revokeDeadline = time.Unix(1, 0)

// listenerLease hands one cell-server incarnation temporary use of the
// fleet's persistent TCP listener. Close revokes the lease instead of
// closing the socket: the deadline is pinned to the past, which
// unblocks the incarnation's Accept (and fails every later one) while
// the listener — and the anchors' dialable address — survives for the
// next incarnation. Safe because Server.Close waits for its acceptLoop
// to exit before returning, so a revoked lease is never Accepted on
// again once a new lease is issued.
type listenerLease struct {
	tl *net.TCPListener
}

// newListenerLease issues a fresh lease, clearing any prior revocation.
func newListenerLease(tl *net.TCPListener) *listenerLease {
	tl.SetDeadline(time.Time{})
	return &listenerLease{tl: tl}
}

func (l *listenerLease) Accept() (net.Conn, error) { return l.tl.Accept() }
func (l *listenerLease) Addr() net.Addr            { return l.tl.Addr() }
func (l *listenerLease) Close() error              { return l.tl.SetDeadline(revokeDeadline) }

// cellIngress is the fleet-side acceptor that serves a cell's TCP
// anchors while the cell is down. Rows it reads flow into the fallback
// collector exactly like in-process rows for a down cell do, so
// complete rounds still yield neighbor-served fallback fixes. Fixes are
// not broadcast back to the anchors — the fallback plane delivers
// through Fleet.OnFix only, matching the in-process path.
type cellIngress struct {
	f *Fleet
	c *cell

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// startIngress begins accepting on a down cell's persistent listener.
// Caller must have closed the cell's server first (its acceptLoop has
// exited; Server.Close waits for it).
func (f *Fleet) startIngress(c *cell) *cellIngress {
	ing := &cellIngress{f: f, c: c, conns: make(map[net.Conn]struct{})}
	c.fln.SetDeadline(time.Time{}) // clear the dead incarnation's revocation
	ing.wg.Add(1)
	go ing.acceptLoop()
	return ing
}

// stop revokes the listener, closes every ingress connection and waits
// for the reader goroutines. After stop the listener is quiescent and
// can be leased to the cell's next incarnation.
func (ing *cellIngress) stop() {
	ing.mu.Lock()
	ing.closed = true
	conns := make([]net.Conn, 0, len(ing.conns))
	for c := range ing.conns {
		conns = append(conns, c)
	}
	ing.mu.Unlock()
	ing.c.fln.SetDeadline(revokeDeadline)
	for _, c := range conns {
		c.Close()
	}
	ing.wg.Wait()
}

func (ing *cellIngress) acceptLoop() {
	defer ing.wg.Done()
	for {
		conn, err := ing.c.fln.Accept()
		if err != nil {
			return // revoked by stop, or the fleet closed the listener
		}
		ing.mu.Lock()
		if ing.closed {
			ing.mu.Unlock()
			conn.Close()
			return
		}
		ing.conns[conn] = struct{}{}
		ing.mu.Unlock()
		ing.wg.Add(1)
		go ing.serveConn(conn)
	}
}

// serveConn validates one anchor connection against the cell template —
// the same hello contract Server.handle enforces, including the
// spoofed-row check — and feeds its CSI rows to the fallback collector.
func (ing *cellIngress) serveConn(conn net.Conn) {
	defer ing.wg.Done()
	defer func() {
		conn.Close()
		ing.mu.Lock()
		delete(ing.conns, conn)
		ing.mu.Unlock()
	}()
	f, cellIdx := ing.f, ing.c.idx
	msg, err := wire.Receive(conn)
	if err != nil {
		return
	}
	hello, ok := msg.(*wire.Hello)
	if !ok || hello.Version != wire.ProtocolVersion {
		f.log.Warn("downtime ingress: bad hello", "cell", cellIdx, "remote", conn.RemoteAddr())
		return
	}
	if int(hello.AnchorID) >= f.cfg.Cell.Anchors || int(hello.Antennas) != f.cfg.Cell.Antennas ||
		int(hello.Bands) != len(f.cfg.Cell.Bands) {
		f.log.Warn("downtime ingress: hello does not match deployment",
			"cell", cellIdx, "hello", fmt.Sprintf("%+v", hello))
		return
	}
	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			return // EOF, framing garbage, or stop() closed the conn
		}
		switch m := msg.(type) {
		case *wire.CSIRow:
			if m.AnchorID != hello.AnchorID {
				f.log.Warn("downtime ingress: anchor id spoofed in row",
					"cell", cellIdx, "hello", hello.AnchorID, "row", m.AnchorID)
				continue
			}
			f.rt.noteTag(m.TagID, cellIdx)
			if snap, done := f.fb.add(cellIdx, m); done {
				f.deliverFallback(cellIdx, m.TagID, m.Round, snap)
			}
		case *wire.Heartbeat:
			// Anchors may echo stale probes from the dead incarnation;
			// harmless.
		default:
			f.log.Warn("downtime ingress: unexpected message type",
				"cell", cellIdx, "msg", fmt.Sprintf("%T", msg))
		}
	}
}
