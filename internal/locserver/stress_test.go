package locserver

import (
	"context"
	"sync"
	"testing"
	"time"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/wire"
)

// The schedule-perturbation stress scenarios. `make stress` re-runs them
// (together with the PR 5/6 durability and overload drills) under -race
// across a GOMAXPROCS matrix: at GOMAXPROCS=1 goroutines interleave only
// at scheduler yield points, at higher values they truly overlap, and
// the two regimes surface different orderings of the ingest / fix-worker
// / deadline-timer / teardown races. The tests themselves stay
// schedule-agnostic — they assert invariants (no deadlock, no duplicated
// fix delivery, clean teardown), never timings.

// stressServer builds an in-process server with a tiny round deadline so
// deadline timers, worker wakeups and ingest contend constantly.
func stressServer(t *testing.T, workers, queueDepth int) *Server {
	t.Helper()
	srv, err := New("127.0.0.1:0", Config{
		Anchors: 2, Antennas: 1, Bands: ble.DataChannels()[:3],
		RoundDeadline: 2 * time.Millisecond,
		FixQueueDepth: queueDepth,
		FixWorkers:    workers,
		Logger:        quietLogger(),
		OnSnapshot: func(RoundInfo, *csi.Snapshot) (geom.Point, error) {
			return geom.Pt(1, 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// stressRow fabricates one valid CSI row.
func stressRow(tag uint16, round uint32, anchorID uint8, band uint16) *wire.CSIRow {
	return &wire.CSIRow{
		Round: round, TagID: tag, AnchorID: anchorID, BandIdx: band,
		Tag:    []complex128{complex(float64(round), float64(band+1))},
		Master: complex(1, float64(anchorID+1)),
	}
}

// TestStressIngestFixMatrix floods the ingest path from several producer
// goroutines (one per tag) while a consumer drains fixes, across a
// FixWorkers sweep. Rounds may be shed or dropped under pressure, but a
// delivered fix must be delivered exactly once and must belong to a
// round a producer actually sent.
func TestStressIngestFixMatrix(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(t *testing.T) {
			const (
				tags   = 3
				rounds = 60
			)
			srv := stressServer(t, workers, 4)
			defer srv.Close()

			seenFix := make(map[[2]uint32]int)
			record := func(f wire.Fix) { seenFix[[2]uint32{uint32(f.TagID), f.Round}]++ }
			stop := make(chan struct{})
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for {
					select {
					case f := <-srv.Fixes():
						record(f)
					case <-stop:
						return
					}
				}
			}()

			var producerWG sync.WaitGroup
			for tag := uint16(1); tag <= tags; tag++ {
				producerWG.Add(1)
				go func(tag uint16) {
					defer producerWG.Done()
					for r := uint32(1); r <= rounds; r++ {
						for a := uint8(0); a < 2; a++ {
							for b := uint16(0); b < 3; b++ {
								srv.ingest(stressRow(tag, r, a, b))
							}
						}
					}
				}(tag)
			}
			producerWG.Wait()

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				t.Fatalf("drain after flood: %v", err)
			}
			close(stop)
			<-consumerDone
			// Fixes the consumer had not picked up yet are still buffered.
			for flushed := false; !flushed; {
				select {
				case f := <-srv.Fixes():
					record(f)
				default:
					flushed = true
				}
			}

			for key, n := range seenFix {
				if n != 1 {
					t.Errorf("tag %d round %d delivered %d times", key[0], key[1], n)
				}
				if key[1] < 1 || key[1] > rounds || key[0] < 1 || key[0] > tags {
					t.Errorf("fix for a round never produced: tag %d round %d", key[0], key[1])
				}
			}
			st := srv.Stats()
			if len(seenFix) == 0 {
				t.Fatal("flood produced no fixes at all")
			}
			t.Logf("workers=%d: %d fixes delivered, %d shed, %d degraded, %d budget drops",
				workers, len(seenFix), st.OverloadShed, st.OverloadDegraded, st.BudgetExceeded)
		})
	}
}

// TestStressTeardownWhileLoaded closes (even iterations) or drains (odd
// iterations) the server at staggered offsets while a producer is still
// mid-flood, for each worker count. The only assertions are liveness and
// error-free teardown: whatever the interleaving, Close/Drain must
// return and the producer must not hang on a dead server.
func TestStressTeardownWhileLoaded(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for i := 0; i < 6; i++ {
			srv := stressServer(t, workers, 4)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := uint32(1); r <= 50; r++ {
					for a := uint8(0); a < 2; a++ {
						for b := uint16(0); b < 3; b++ {
							srv.ingest(stressRow(9, r, a, b))
						}
					}
				}
			}()
			stop := make(chan struct{})
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for {
					select {
					case <-srv.Fixes():
					case <-stop:
						return
					}
				}
			}()
			time.Sleep(time.Duration(i) * 300 * time.Microsecond)
			if i%2 == 0 {
				if err := srv.Close(); err != nil {
					t.Fatalf("workers=%d iteration %d: close: %v", workers, i, err)
				}
			} else {
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				if err := srv.Drain(ctx); err != nil {
					t.Fatalf("workers=%d iteration %d: drain: %v", workers, i, err)
				}
				cancel()
			}
			wg.Wait()
			close(stop)
			<-consumerDone
		}
	}
}
