package rfsim

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
)

// ChannelFromPaths evaluates the paper's Eq. 2 at the given frequency:
// h(f) = Σ paths gain · e^{-ι 2π f length / c}.
func ChannelFromPaths(paths []Path, freqHz float64) complex128 {
	var h complex128
	k := -2 * math.Pi * freqHz / SpeedOfLight
	for _, p := range paths {
		s, c := math.Sincos(k * p.Length)
		h += complex(p.Gain*c, p.Gain*s)
	}
	return h
}

// RSSI returns the received signal strength in dB (relative to the unit
// transmit amplitude at 1 m) implied by a channel value: 20·log10 |h|.
func RSSI(h complex128) float64 {
	a := cmplx.Abs(h)
	if a <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(a)
}

// Noise models complex AWGN applied to channel estimates. The standard
// deviation is set from an SNR (dB) relative to the amplitude of a direct
// path at a reference distance, which gives an absolute noise floor:
// nearer (stronger) links enjoy higher effective SNR, as in reality.
type Noise struct {
	Sigma float64 // per-component (real/imag) standard deviation
	rng   *rand.Rand
}

// NewNoise builds a noise source with the given SNR in dB, referenced to a
// direct path at refDist meters, and a deterministic seed.
func NewNoise(snrDB, refDist float64, seed uint64) *Noise {
	refAmp := 1.0 / refDist
	sigma := refAmp * math.Pow(10, -snrDB/20) / math.Sqrt2
	return &Noise{Sigma: sigma, rng: rand.New(rand.NewPCG(seed, 0xC0FFEE))}
}

// NewNoiseSigma builds a noise source directly from a per-component
// standard deviation.
func NewNoiseSigma(sigma float64, seed uint64) *Noise {
	return &Noise{Sigma: sigma, rng: rand.New(rand.NewPCG(seed, 0xC0FFEE))}
}

// NoNoise returns a noise source that adds nothing.
func NoNoise() *Noise { return &Noise{} }

// Apply returns h plus a complex Gaussian sample.
func (n *Noise) Apply(h complex128) complex128 {
	//lint:ignore floateq Sigma == 0 is the noise-off sentinel
	if n.Sigma == 0 || n.rng == nil {
		return h
	}
	return h + complex(n.rng.NormFloat64()*n.Sigma, n.rng.NormFloat64()*n.Sigma)
}

// ApplyTo adds independent noise to every element of hs in place.
func (n *Noise) ApplyTo(hs []complex128) {
	//lint:ignore floateq Sigma == 0 is the noise-off sentinel
	if n.Sigma == 0 || n.rng == nil {
		return
	}
	for i := range hs {
		hs[i] += complex(n.rng.NormFloat64()*n.Sigma, n.rng.NormFloat64()*n.Sigma)
	}
}

// Oscillator models a device's local oscillator: every retune to a new
// frequency draws a fresh uniformly random phase offset (§5.1: "every time
// this oscillator is used to tune the frequency, it incurs a random phase
// offset"). All antennas of one anchor share the same oscillator
// (footnote 3), which is why the offset is per device, not per antenna.
type Oscillator struct {
	rng   *rand.Rand
	phase float64
}

// NewOscillator creates a deterministic oscillator.
func NewOscillator(seed uint64) *Oscillator {
	o := &Oscillator{rng: rand.New(rand.NewPCG(seed, 0x05C111A7))}
	o.Retune()
	return o
}

// Retune simulates tuning to a new channel: the phase offset is redrawn.
func (o *Oscillator) Retune() {
	o.phase = (o.rng.Float64()*2 - 1) * math.Pi
}

// Phase returns the current phase offset in radians.
func (o *Oscillator) Phase() float64 { return o.phase }

// Rotor returns e^{ιφ} for the current offset, the factor a transmit chain
// multiplies onto the signal (receive chains divide, i.e. multiply by the
// conjugate).
func (o *Oscillator) Rotor() complex128 {
	s, c := math.Sincos(o.phase)
	return complex(c, s)
}
