// Package rfsim is the RF propagation substrate of the BLoc reproduction:
// a geometric multipath simulator standing in for the paper's physical
// 5 m × 6 m VICON room (§7). It produces the exact channel model of the
// paper's Eq. 2 — a sum of attenuated, delayed copies of the signal:
//
//	h(f) = Σ_i (A_i / d_i) · e^{-ι 2π f d_i / c}
//
// with three path populations:
//
//   - the direct path, optionally attenuated by obstacles (NLOS);
//   - first- and optionally second-order specular wall reflections,
//     enumerated with the image method;
//   - scatterer paths: diffuse reflections off imperfect reflectors
//     (metal cupboards, robotic equipment, …) modeled as clusters of
//     facets so that different anchors and antennas see slightly
//     different bounce geometry — the spatial spreading BLoc's entropy
//     test exploits (§5.4).
//
// The simulator is fully deterministic given its seed.
package rfsim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"bloc/internal/geom"
)

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// PathKind classifies how a propagation path reached the receiver.
type PathKind int

// Path kinds.
const (
	PathDirect PathKind = iota
	PathWall
	PathScatter
)

// String implements fmt.Stringer.
func (k PathKind) String() string {
	switch k {
	case PathDirect:
		return "direct"
	case PathWall:
		return "wall"
	case PathScatter:
		return "scatter"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Path is one propagation path between a transmitter and a receiver.
type Path struct {
	Kind   PathKind
	Length float64 // total travel distance, meters
	Gain   float64 // amplitude gain, including 1/d spreading and reflection loss
}

// Delay returns the propagation delay of the path in seconds.
func (p Path) Delay() float64 { return p.Length / SpeedOfLight }

// Scatterer is an imperfect reflector: a cluster of facets scattered
// around Center within Radius. Each facet re-radiates with a share of the
// scatterer's gain, producing paths that are slightly spread in both delay
// and angle — a diffuse reflection.
type Scatterer struct {
	Center geom.Point
	Radius float64 // spatial spread of the facets, meters
	// Gain is the amplitude coefficient split across facets. It plays the
	// role of √RCS in the bistatic amplitude g/(d1·d2) and may exceed 1
	// for large metallic reflectors, whose reflections can rival or beat
	// an (obstructed) direct path — the regime §5.4 is designed for.
	Gain   float64
	Facets int // number of facets (≥ 1)
}

// InteriorWall is a partition inside the room: it reflects specularly on
// both faces (image method) and attenuates paths that cross it — a
// drywall or glass partition in an apartment or office floorplan.
type InteriorWall struct {
	Wall         geom.Segment
	Reflectivity float64 // specular amplitude coefficient
	Transmission float64 // amplitude factor of paths crossing it, (0, 1]
}

// Obstacle attenuates paths that cross it (e.g. a cabinet blocking LOS).
type Obstacle struct {
	Wall        geom.Segment
	Attenuation float64 // multiplicative amplitude factor in (0, 1]
	// TagHeightOnly marks desk-height clutter that obstructs links to the
	// tag (carried at object height) but not links between wall-mounted
	// anchors, which see over it. Anchor-to-anchor reference channels are
	// computed with Elevated(), which skips such obstacles.
	TagHeightOnly bool
}

// Environment is a simulated room.
type Environment struct {
	Room             geom.Rect
	WallReflectivity float64 // specular amplitude coefficient of the walls (0 disables)
	SecondOrderWalls bool    // include double-bounce wall reflections
	Scatterers       []Scatterer
	Obstacles        []Obstacle
	InteriorWalls    []InteriorWall

	seed     uint64         // facet placement seed
	facets   [][]geom.Point // resolved facet positions per scatterer
	elevated bool           // skip TagHeightOnly obstacles (anchor-height links)
}

// Elevated returns a view of the environment for anchor-height links:
// identical geometry, but obstacles marked TagHeightOnly do not attenuate.
// The view shares the underlying scatterer facets.
func (e *Environment) Elevated() *Environment {
	out := *e
	out.elevated = true
	return &out
}

// NewEnvironment builds an environment with default wall reflectivity; the
// seed drives deterministic scatterer facet placement.
func NewEnvironment(room geom.Rect, seed uint64) *Environment {
	return &Environment{
		Room:             room,
		WallReflectivity: 0.45,
		seed:             seed,
	}
}

// AddScatterer appends a scatterer and places its facets deterministically.
func (e *Environment) AddScatterer(s Scatterer) {
	if s.Facets < 1 {
		s.Facets = 1
	}
	idx := len(e.Scatterers)
	e.Scatterers = append(e.Scatterers, s)
	rng := rand.New(rand.NewPCG(e.seed, uint64(idx)+0x9E3779B9))
	pts := make([]geom.Point, s.Facets)
	for i := range pts {
		// Uniform in the disk of radius s.Radius.
		r := s.Radius * math.Sqrt(rng.Float64())
		a := rng.Float64() * 2 * math.Pi
		pts[i] = geom.Pt(s.Center.X+r*math.Cos(a), s.Center.Y+r*math.Sin(a))
	}
	e.facets = append(e.facets, pts)
}

// AddInteriorWall appends a partition wall. Transmission must be in
// (0, 1] and Reflectivity non-negative.
func (e *Environment) AddInteriorWall(w InteriorWall) error {
	if w.Transmission <= 0 || w.Transmission > 1 {
		return fmt.Errorf("rfsim: interior wall transmission %v outside (0, 1]", w.Transmission)
	}
	if w.Reflectivity < 0 {
		return fmt.Errorf("rfsim: interior wall reflectivity %v negative", w.Reflectivity)
	}
	e.InteriorWalls = append(e.InteriorWalls, w)
	return nil
}

// AddObstacle appends an obstacle. Attenuation must be in (0, 1].
func (e *Environment) AddObstacle(o Obstacle) error {
	if o.Attenuation <= 0 || o.Attenuation > 1 {
		return fmt.Errorf("rfsim: obstacle attenuation %v outside (0, 1]", o.Attenuation)
	}
	e.Obstacles = append(e.Obstacles, o)
	return nil
}

// obstacleFactor returns the product of attenuations of all obstacles the
// straight segment a→b crosses.
func (e *Environment) obstacleFactor(a, b geom.Point) float64 {
	f := 1.0
	for _, o := range e.Obstacles {
		if e.elevated && o.TagHeightOnly {
			continue
		}
		if o.Wall.Blocks(a, b) {
			f *= o.Attenuation
		}
	}
	// Interior walls attenuate crossings at every height.
	for _, w := range e.InteriorWalls {
		if w.Wall.Blocks(a, b) {
			f *= w.Transmission
		}
	}
	return f
}

// Paths enumerates every propagation path from tx to rx. The returned
// slice is freshly allocated and ordered: direct, wall reflections,
// scatterer facets.
func (e *Environment) Paths(tx, rx geom.Point) []Path {
	paths := make([]Path, 0, 1+4+len(e.Scatterers)*4)

	// Direct path.
	d := tx.Dist(rx)
	if d < 1e-6 {
		d = 1e-6
	}
	paths = append(paths, Path{
		Kind:   PathDirect,
		Length: d,
		Gain:   e.obstacleFactor(tx, rx) / d,
	})

	// Specular wall reflections via the image method.
	if e.WallReflectivity > 0 {
		walls := e.Room.Walls()
		for _, w := range walls {
			if p, ok := e.wallPath(w, tx, rx, e.WallReflectivity); ok {
				paths = append(paths, p)
			}
		}
		if e.SecondOrderWalls {
			r2 := e.WallReflectivity * e.WallReflectivity
			for i, w1 := range walls {
				for j, w2 := range walls {
					if i == j {
						continue
					}
					if p, ok := e.doubleWallPath(w1, w2, tx, rx, r2); ok {
						paths = append(paths, p)
					}
				}
			}
		}
	}

	// First-order reflections off interior partitions (both faces share
	// the same image construction).
	for _, w := range e.InteriorWalls {
		if w.Reflectivity <= 0 {
			continue
		}
		if p, ok := e.wallPath(w.Wall, tx, rx, w.Reflectivity); ok {
			paths = append(paths, p)
		}
	}

	// Scatterer facets.
	for si, s := range e.Scatterers {
		perFacet := s.Gain / float64(s.Facets)
		for _, f := range e.facets[si] {
			d1 := tx.Dist(f)
			d2 := f.Dist(rx)
			if d1 < 1e-6 || d2 < 1e-6 {
				continue
			}
			att := e.obstacleFactor(tx, f) * e.obstacleFactor(f, rx)
			paths = append(paths, Path{
				Kind:   PathScatter,
				Length: d1 + d2,
				// Bistatic spreading: amplitude falls with the product of
				// the two legs.
				Gain: att * perFacet / (d1 * d2),
			})
		}
	}
	return paths
}

// wallPath computes the single-bounce specular path off wall w, if the
// bounce point lies on the wall segment.
func (e *Environment) wallPath(w geom.Segment, tx, rx geom.Point, refl float64) (Path, bool) {
	img := w.Reflect(tx)
	bounce, ok := w.Intersect(geom.Seg(img, rx))
	if !ok {
		return Path{}, false
	}
	length := img.Dist(rx)
	if length < 1e-6 {
		return Path{}, false
	}
	att := e.obstacleFactor(tx, bounce) * e.obstacleFactor(bounce, rx)
	return Path{Kind: PathWall, Length: length, Gain: att * refl / length}, true
}

// doubleWallPath computes the double-bounce path w1 then w2.
func (e *Environment) doubleWallPath(w1, w2 geom.Segment, tx, rx geom.Point, refl float64) (Path, bool) {
	img1 := w1.Reflect(tx)
	img2 := w2.Reflect(img1)
	b2, ok := w2.Intersect(geom.Seg(img2, rx))
	if !ok {
		return Path{}, false
	}
	b1, ok := w1.Intersect(geom.Seg(img1, b2))
	if !ok {
		return Path{}, false
	}
	length := img2.Dist(rx)
	if length < 1e-6 {
		return Path{}, false
	}
	att := e.obstacleFactor(tx, b1) * e.obstacleFactor(b1, b2) * e.obstacleFactor(b2, rx)
	return Path{Kind: PathWall, Length: length, Gain: att * refl / length}, true
}
