package rfsim

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"bloc/internal/geom"
)

func testRoom() geom.Rect { return geom.NewRect(geom.Pt(-2.5, -3), geom.Pt(2.5, 3)) }

func TestDirectPathOnly(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	env.WallReflectivity = 0 // disable reflections
	tx, rx := geom.Pt(0, 0), geom.Pt(3, 4)
	paths := env.Paths(tx, rx)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	p := paths[0]
	if p.Kind != PathDirect {
		t.Errorf("kind = %v", p.Kind)
	}
	if math.Abs(p.Length-5) > 1e-12 {
		t.Errorf("length = %v, want 5", p.Length)
	}
	if math.Abs(p.Gain-0.2) > 1e-12 {
		t.Errorf("gain = %v, want 1/5", p.Gain)
	}
}

func TestFreeSpaceChannelMatchesEq1(t *testing.T) {
	// Single path: h = (A/d)·e^{-ι2πd/λ}, the paper's Eq. 1.
	env := NewEnvironment(testRoom(), 1)
	env.WallReflectivity = 0
	tx, rx := geom.Pt(0, 0), geom.Pt(2, 0)
	paths := env.Paths(tx, rx)
	f := 2.44e9
	h := ChannelFromPaths(paths, f)
	lambda := SpeedOfLight / f
	want := cmplx.Rect(0.5, -2*math.Pi*2/lambda)
	if cmplx.Abs(h-want) > 1e-9 {
		t.Errorf("h = %v, want %v", h, want)
	}
}

func TestWallReflectionsPresent(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	paths := env.Paths(geom.Pt(-1, 0), geom.Pt(1, 0))
	var wall, direct int
	for _, p := range paths {
		switch p.Kind {
		case PathWall:
			wall++
		case PathDirect:
			direct++
		}
	}
	if direct != 1 {
		t.Errorf("%d direct paths", direct)
	}
	if wall != 4 {
		t.Errorf("%d wall reflections, want 4 (one per wall for interior points)", wall)
	}
}

func TestDirectPathIsShortest(t *testing.T) {
	// The invariant BLoc's multipath rejection rests on (§5.4): the direct
	// path is strictly the shortest.
	env := NewEnvironment(testRoom(), 7)
	env.SecondOrderWalls = true
	env.AddScatterer(Scatterer{Center: geom.Pt(1.5, 2), Radius: 0.3, Gain: 0.5, Facets: 6})
	env.AddScatterer(Scatterer{Center: geom.Pt(-2, -1), Radius: 0.2, Gain: 0.4, Facets: 5})
	pairs := [][2]geom.Point{
		{geom.Pt(0, 0), geom.Pt(1, 1)},
		{geom.Pt(-2, -2.5), geom.Pt(2, 2.5)},
		{geom.Pt(0.3, -1), geom.Pt(-1.7, 2.2)},
	}
	for _, pr := range pairs {
		paths := env.Paths(pr[0], pr[1])
		direct := paths[0]
		if direct.Kind != PathDirect {
			t.Fatal("first path is not the direct path")
		}
		for _, p := range paths[1:] {
			if p.Length <= direct.Length {
				t.Errorf("%v path length %v not longer than direct %v",
					p.Kind, p.Length, direct.Length)
			}
		}
	}
}

func TestWallReflectionGeometry(t *testing.T) {
	// For tx=(0,1), rx=(2,1) and the south wall y=-3 of the test room, the
	// image of tx is (0,-7) and the path length is |(0,-7)-(2,1)| = √68.
	env := NewEnvironment(testRoom(), 1)
	env.Scatterers = nil
	paths := env.Paths(geom.Pt(0, 1), geom.Pt(2, 1))
	want := math.Sqrt(68)
	found := false
	for _, p := range paths {
		if p.Kind == PathWall && math.Abs(p.Length-want) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("no wall path of length %v found in %+v", want, paths)
	}
}

func TestSecondOrderWallsAddPaths(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	first := len(env.Paths(geom.Pt(0, 0), geom.Pt(1, 1)))
	env.SecondOrderWalls = true
	second := len(env.Paths(geom.Pt(0, 0), geom.Pt(1, 1)))
	if second <= first {
		t.Errorf("second-order enumeration added no paths: %d vs %d", second, first)
	}
}

func TestScattererFacetsSpread(t *testing.T) {
	env := NewEnvironment(testRoom(), 3)
	env.WallReflectivity = 0
	env.AddScatterer(Scatterer{Center: geom.Pt(1, 1), Radius: 0.4, Gain: 0.6, Facets: 8})
	paths := env.Paths(geom.Pt(-2, -2), geom.Pt(2, -2))
	var lengths []float64
	for _, p := range paths {
		if p.Kind == PathScatter {
			lengths = append(lengths, p.Length)
		}
	}
	if len(lengths) != 8 {
		t.Fatalf("%d scatter paths, want 8", len(lengths))
	}
	// Facets must be spread: not all the same length (diffuse reflection).
	minL, maxL := lengths[0], lengths[0]
	for _, l := range lengths {
		minL = math.Min(minL, l)
		maxL = math.Max(maxL, l)
	}
	if maxL-minL < 1e-3 {
		t.Errorf("facet paths are not spread: range %v", maxL-minL)
	}
}

func TestScattererDeterministicPlacement(t *testing.T) {
	mk := func() []Path {
		env := NewEnvironment(testRoom(), 99)
		env.WallReflectivity = 0
		env.AddScatterer(Scatterer{Center: geom.Pt(0.5, 0.5), Radius: 0.3, Gain: 0.5, Facets: 5})
		return env.Paths(geom.Pt(-1, 0), geom.Pt(1, 0))
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic path count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path %d differs between identical environments", i)
		}
	}
}

func TestObstacleAttenuatesLOS(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	env.WallReflectivity = 0
	if err := env.AddObstacle(Obstacle{
		Wall:        geom.Seg(geom.Pt(0, -1), geom.Pt(0, 1)),
		Attenuation: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	blocked := env.Paths(geom.Pt(-1, 0), geom.Pt(1, 0))[0]
	clear := env.Paths(geom.Pt(-1, 2), geom.Pt(1, 2))[0]
	if math.Abs(blocked.Gain-0.1/2) > 1e-12 {
		t.Errorf("blocked gain = %v, want 0.05", blocked.Gain)
	}
	if math.Abs(clear.Gain-1.0/2) > 1e-12 {
		t.Errorf("clear gain = %v, want 0.5", clear.Gain)
	}
}

func TestAddObstacleValidation(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	for _, a := range []float64{0, -0.5, 1.5} {
		if err := env.AddObstacle(Obstacle{Attenuation: a}); err == nil {
			t.Errorf("attenuation %v should be rejected", a)
		}
	}
}

func TestChannelLinearInPaths(t *testing.T) {
	// The multipath channel is the sum of per-path channels (Eq. 2).
	p1 := []Path{{Kind: PathDirect, Length: 3, Gain: 0.3}}
	p2 := []Path{{Kind: PathWall, Length: 7, Gain: 0.1}}
	both := append(append([]Path(nil), p1...), p2...)
	f := 2.42e9
	if cmplx.Abs(ChannelFromPaths(both, f)-(ChannelFromPaths(p1, f)+ChannelFromPaths(p2, f))) > 1e-12 {
		t.Error("channel is not additive over paths")
	}
}

func TestChannelPhaseSlopeEncodesDistance(t *testing.T) {
	// Across frequency, the phase of a single-path channel falls linearly
	// with slope −2πd/c — the basis of distance estimation (§2.2).
	d := 4.2
	paths := []Path{{Kind: PathDirect, Length: d, Gain: 1 / d}}
	f0, df := 2.404e9, 2e6
	h0 := ChannelFromPaths(paths, f0)
	h1 := ChannelFromPaths(paths, f0+df)
	dphi := cmplx.Phase(h1 * cmplx.Conj(h0))
	want := -2 * math.Pi * df * d / SpeedOfLight
	// Compare modulo 2π.
	diff := math.Mod(dphi-want, 2*math.Pi)
	if diff > math.Pi {
		diff -= 2 * math.Pi
	} else if diff < -math.Pi {
		diff += 2 * math.Pi
	}
	if math.Abs(diff) > 1e-9 {
		t.Errorf("phase slope %v, want %v", dphi, want)
	}
}

func TestRSSI(t *testing.T) {
	if got := RSSI(complex(0.1, 0)); math.Abs(got+20) > 1e-9 {
		t.Errorf("RSSI(0.1) = %v, want -20", got)
	}
	if !math.IsInf(RSSI(0), -1) {
		t.Error("RSSI(0) should be -Inf")
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(20, 3, 1) // 20 dB SNR at 3 m
	wantSigma := (1.0 / 3) * math.Pow(10, -1) / math.Sqrt2
	if math.Abs(n.Sigma-wantSigma) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", n.Sigma, wantSigma)
	}
	// Empirical std of the applied noise matches.
	const trials = 20000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		z := n.Apply(0)
		sum += real(z)
		sumSq += real(z) * real(z)
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(std-n.Sigma) > 0.05*n.Sigma {
		t.Errorf("empirical sigma %v, want %v", std, n.Sigma)
	}
	if math.Abs(mean) > 3*n.Sigma/math.Sqrt(trials)*3 {
		t.Errorf("noise mean %v not ≈ 0", mean)
	}
}

func TestNoNoiseIsIdentity(t *testing.T) {
	n := NoNoise()
	h := complex(0.3, -0.7)
	if n.Apply(h) != h {
		t.Error("NoNoise modified the channel")
	}
	hs := []complex128{1, 2i}
	n.ApplyTo(hs)
	if hs[0] != 1 || hs[1] != 2i {
		t.Error("NoNoise.ApplyTo modified the slice")
	}
}

func TestOscillatorRetuneChangesPhase(t *testing.T) {
	o := NewOscillator(5)
	phases := map[float64]bool{}
	for i := 0; i < 50; i++ {
		p := o.Phase()
		if p < -math.Pi || p > math.Pi {
			t.Fatalf("phase %v out of range", p)
		}
		phases[p] = true
		// Rotor matches phase.
		if cmplx.Abs(o.Rotor()-cmplx.Rect(1, p)) > 1e-12 {
			t.Fatal("Rotor does not match Phase")
		}
		o.Retune()
	}
	if len(phases) < 45 {
		t.Errorf("only %d distinct phases in 50 retunes", len(phases))
	}
}

func TestOscillatorDeterministic(t *testing.T) {
	a, b := NewOscillator(11), NewOscillator(11)
	for i := 0; i < 10; i++ {
		if a.Phase() != b.Phase() {
			t.Fatal("same-seed oscillators diverged")
		}
		a.Retune()
		b.Retune()
	}
	c := NewOscillator(12)
	if c.Phase() == a.Phase() {
		t.Error("different seeds produced identical first phase (suspicious)")
	}
}

func TestPathDelay(t *testing.T) {
	p := Path{Length: SpeedOfLight}
	if math.Abs(p.Delay()-1) > 1e-15 {
		t.Errorf("Delay = %v, want 1s", p.Delay())
	}
}

func TestPathKindString(t *testing.T) {
	if PathDirect.String() != "direct" || PathWall.String() != "wall" ||
		PathScatter.String() != "scatter" {
		t.Error("PathKind strings wrong")
	}
	if PathKind(9).String() != "PathKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func BenchmarkPathsRichRoom(b *testing.B) {
	env := NewEnvironment(testRoom(), 1)
	env.SecondOrderWalls = true
	for i := 0; i < 4; i++ {
		env.AddScatterer(Scatterer{
			Center: geom.Pt(float64(i)-1.5, 1), Radius: 0.3, Gain: 0.4, Facets: 5,
		})
	}
	tx, rx := geom.Pt(-2, -2), geom.Pt(2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Paths(tx, rx)
	}
}

func BenchmarkChannelFromPaths(b *testing.B) {
	env := NewEnvironment(testRoom(), 1)
	env.AddScatterer(Scatterer{Center: geom.Pt(1, 1), Radius: 0.3, Gain: 0.4, Facets: 8})
	paths := env.Paths(geom.Pt(-2, -2), geom.Pt(2, 2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChannelFromPaths(paths, 2.44e9)
	}
}

func TestInteriorWallReflectsAndAttenuates(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	env.WallReflectivity = 0
	if err := env.AddInteriorWall(InteriorWall{
		Wall:         geom.Seg(geom.Pt(0, -2), geom.Pt(0, 2)),
		Reflectivity: 0.5,
		Transmission: 0.3,
	}); err != nil {
		t.Fatal(err)
	}
	// A link crossing the partition: direct path attenuated.
	crossing := env.Paths(geom.Pt(-1, 0.5), geom.Pt(1, 0.5))
	if math.Abs(crossing[0].Gain-0.3/2) > 1e-12 {
		t.Errorf("crossing direct gain %v, want 0.15", crossing[0].Gain)
	}
	// A link on one side: reflection off the partition present, direct
	// untouched.
	sameSide := env.Paths(geom.Pt(-2, -1), geom.Pt(-2, 1))
	if math.Abs(sameSide[0].Gain-1.0/2) > 1e-12 {
		t.Errorf("same-side direct gain %v, want 0.5", sameSide[0].Gain)
	}
	foundReflection := false
	for _, p := range sameSide[1:] {
		if p.Kind == PathWall && p.Length > 2 {
			foundReflection = true
		}
	}
	if !foundReflection {
		t.Error("no reflection off the interior wall")
	}
}

func TestAddInteriorWallValidation(t *testing.T) {
	env := NewEnvironment(testRoom(), 1)
	if err := env.AddInteriorWall(InteriorWall{Transmission: 0}); err == nil {
		t.Error("zero transmission accepted")
	}
	if err := env.AddInteriorWall(InteriorWall{Transmission: 2}); err == nil {
		t.Error("transmission > 1 accepted")
	}
	if err := env.AddInteriorWall(InteriorWall{Transmission: 0.5, Reflectivity: -1}); err == nil {
		t.Error("negative reflectivity accepted")
	}
}

func TestChannelMagnitudeBoundProperty(t *testing.T) {
	// |h(f)| ≤ Σ|gain| for any frequency (triangle inequality on Eq. 2).
	f := func(lengths, gains []float64, freqRaw float64) bool {
		n := len(lengths)
		if len(gains) < n {
			n = len(gains)
		}
		if n == 0 {
			return true
		}
		paths := make([]Path, 0, n)
		var bound float64
		for i := 0; i < n; i++ {
			l := math.Abs(math.Mod(lengths[i], 100)) + 0.1
			g := math.Abs(math.Mod(gains[i], 10))
			if math.IsNaN(l) || math.IsNaN(g) {
				return true
			}
			paths = append(paths, Path{Kind: PathScatter, Length: l, Gain: g})
			bound += g
		}
		freq := 2.4e9 + math.Abs(math.Mod(freqRaw, 80e6))
		if math.IsNaN(freq) {
			return true
		}
		return cmplx.Abs(ChannelFromPaths(paths, freq)) <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelConjugateSymmetryProperty(t *testing.T) {
	// Real gains ⟹ h(-f) = conj(h(f)) — the spectrum of a real impulse
	// response.
	f := func(l1, l2, g1, g2, fr float64) bool {
		for _, v := range []float64{l1, l2, g1, g2, fr} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		paths := []Path{
			{Length: math.Abs(math.Mod(l1, 50)) + 0.1, Gain: math.Mod(g1, 5)},
			{Length: math.Abs(math.Mod(l2, 50)) + 0.1, Gain: math.Mod(g2, 5)},
		}
		freq := math.Abs(math.Mod(fr, 1e9)) + 1
		hPos := ChannelFromPaths(paths, freq)
		hNeg := ChannelFromPaths(paths, -freq)
		return cmplx.Abs(hNeg-cmplx.Conj(hPos)) < 1e-9*(1+cmplx.Abs(hPos))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
