package faultnet

import (
	"fmt"
	"sync"
)

// Cell-kill chaos injection (DESIGN.md §15). Where Conn and DelayConn
// attack the network, CellKiller attacks the process: it rides the
// locserver cell hook (Config.Hook / FleetConfig.Hooks) and panics at
// scheduled points — the Seq'th time a given cell reaches a given hook
// event — exercising the supervisor's recover/restart cycle instead of
// the transport's. The schedule is pure arithmetic over hook-event
// counters, so the same drill kills the same cell at the same ingest or
// fix on every run, and counters accumulate across cell incarnations:
// a kill at ingest #500 can land on the restarted cell's watch.

// KillSpec schedules one panic: the Seq'th occurrence (1-based) of
// Event in Cell. Event is a locserver hook event ("ingest" or "fix").
type KillSpec struct {
	Cell  int
	Event string
	Seq   uint64
}

// CellPanic is the panic value a scheduled kill raises, so recovery
// paths and tests can tell an injected kill from a genuine bug.
type CellPanic struct {
	Spec KillSpec
}

func (p CellPanic) String() string {
	return fmt.Sprintf("faultnet: scheduled cell kill (cell %d, %s #%d)",
		p.Spec.Cell, p.Spec.Event, p.Spec.Seq)
}

// ckKey indexes the per-(cell,event) occurrence counters.
type ckKey struct {
	cell  int
	event string
}

// CellKiller injects scheduled panics through cell hooks. Safe for
// concurrent use by every cell's ingest and fix goroutines.
type CellKiller struct {
	specs []KillSpec

	mu     sync.Mutex
	counts map[ckKey]uint64 // hook occurrences seen so far; guarded by mu
	fired  []KillSpec       // specs whose panic has been raised; guarded by mu
}

// NewCellKiller validates and arms a kill schedule. Each spec fires
// exactly once: occurrence counters are monotone, so the Seq'th event
// is reached exactly once even across cell restarts.
func NewCellKiller(specs ...KillSpec) (*CellKiller, error) {
	seen := make(map[KillSpec]bool, len(specs))
	for _, sp := range specs {
		if sp.Cell < 0 {
			return nil, fmt.Errorf("faultnet: kill spec with negative cell %d", sp.Cell)
		}
		if sp.Event == "" {
			return nil, fmt.Errorf("faultnet: kill spec for cell %d with empty event", sp.Cell)
		}
		if sp.Seq < 1 {
			return nil, fmt.Errorf("faultnet: kill spec (cell %d, %s) with seq %d; seqs are 1-based",
				sp.Cell, sp.Event, sp.Seq)
		}
		if seen[sp] {
			return nil, fmt.Errorf("faultnet: duplicate kill spec (cell %d, %s #%d)",
				sp.Cell, sp.Event, sp.Seq)
		}
		seen[sp] = true
	}
	return &CellKiller{
		specs:  append([]KillSpec(nil), specs...),
		counts: make(map[ckKey]uint64),
	}, nil
}

// Hook returns cell's instrumentation hook: it counts every event and
// panics with a CellPanic when a scheduled occurrence is reached. Wire
// it as FleetConfig.Hooks.
func (k *CellKiller) Hook(cell int) func(event string) {
	return func(event string) {
		k.mu.Lock()
		key := ckKey{cell: cell, event: event}
		k.counts[key]++
		n := k.counts[key]
		var hit *KillSpec
		for i := range k.specs {
			sp := &k.specs[i]
			if sp.Cell == cell && sp.Event == event && sp.Seq == n {
				k.fired = append(k.fired, *sp)
				hit = sp
				break
			}
		}
		k.mu.Unlock()
		if hit != nil {
			panic(CellPanic{Spec: *hit})
		}
	}
}

// Fired returns the specs that have panicked so far, in firing order.
func (k *CellKiller) Fired() []KillSpec {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]KillSpec(nil), k.fired...)
}

// Count returns how many times a cell has reached a hook event.
func (k *CellKiller) Count(cell int, event string) uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.counts[ckKey{cell: cell, event: event}]
}
