package faultnet

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/wire"
)

// cleanRow fabricates a plausible CSI row: fresh random phases per retune,
// magnitudes around mag with mild fading.
func cleanRow(rng *rand.Rand, n int, mag float64) *wire.CSIRow {
	tones := make([]complex128, n)
	for j := range tones {
		m := mag * (0.6 + 0.8*rng.Float64())
		tones[j] = cmplx.Rect(m, (rng.Float64()*2-1)*math.Pi)
	}
	return &wire.CSIRow{Tag: tones, Master: cmplx.Rect(mag, rng.Float64())}
}

// feed runs rows clean rows through the corrupter and validator, returning
// the first non-OK verdict (or RowOK).
func feed(t *testing.T, c *Corrupter, v *csi.RowValidator, rng *rand.Rand, rows int) csi.RowVerdict {
	t.Helper()
	for r := 0; r < rows; r++ {
		row := cleanRow(rng, 4, 0.2)
		c.Apply(row)
		if verdict := v.Check(0, row.Tag, row.Master); !verdict.OK() {
			return verdict
		}
	}
	return csi.RowOK
}

// Each injector must produce exactly the failure shape the matching
// detector catches — an injector the pipeline cannot see is testing
// nothing.

func TestCorrupterStuckToneTripsDetector(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := NewCorrupter(CorruptConfig{Seed: 7, StuckTone: true})
	v := csi.NewRowValidator(1, csi.QualityConfig{})
	if got := feed(t, c, v, rng, 20); got != csi.RowStuckTones {
		t.Fatalf("stuck-tone injector: first rejection %v, want stuck-tones", got)
	}
}

func TestCorrupterCFODriftTripsFrozenPhase(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	c := NewCorrupter(CorruptConfig{Seed: 7, CFODriftRadPerRow: 0.05})
	v := csi.NewRowValidator(1, csi.QualityConfig{})
	if got := feed(t, c, v, rng, 30); got != csi.RowFrozenPhase {
		t.Fatalf("CFO-drift injector: first rejection %v, want frozen-phase", got)
	}
}

func TestCorrupterNaNTripsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	c := NewCorrupter(CorruptConfig{Seed: 7, NaNProb: 1})
	v := csi.NewRowValidator(1, csi.QualityConfig{})
	if got := feed(t, c, v, rng, 1); got != csi.RowNonFinite {
		t.Fatalf("NaN injector: got %v, want non-finite", got)
	}
}

func TestCorrupterGarbageTripsMagGate(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	v := csi.NewRowValidator(1, csi.QualityConfig{})
	// Warm the window with clean rows first (the gate needs history).
	clean := NewCorrupter(CorruptConfig{Seed: 7})
	if got := feed(t, clean, v, rng, 64); got != csi.RowOK {
		t.Fatalf("clean warmup rejected: %v", got)
	}
	c := NewCorrupter(CorruptConfig{Seed: 7, GarbageProb: 1})
	if got := feed(t, c, v, rng, 2); got != csi.RowMagOutlier {
		t.Fatalf("garbage injector: got %v, want mag-outlier", got)
	}
}

func TestCorrupterBitFlipEventuallyRejected(t *testing.T) {
	// A single flipped bit is not always detectable (a low mantissa bit is
	// harmless), but across many rows the exponent/sign flips must land
	// often enough for the pipeline to notice something.
	rng := rand.New(rand.NewPCG(5, 5))
	c := NewCorrupter(CorruptConfig{Seed: 7, BitFlipProb: 1})
	v := csi.NewRowValidator(1, csi.QualityConfig{})
	rejected := false
	for r := 0; r < 200; r++ {
		row := cleanRow(rng, 4, 0.2)
		c.Apply(row)
		if !v.Check(0, row.Tag, row.Master).OK() {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("200 bit-flipped rows all passed the pipeline")
	}
}

func TestCorrupterDeterministic(t *testing.T) {
	run := func() []complex128 {
		rng := rand.New(rand.NewPCG(6, 6))
		c := NewCorrupter(CorruptConfig{Seed: 9, GarbageProb: 0.5, NaNProb: 0.2, BitFlipProb: 0.3})
		var out []complex128
		for r := 0; r < 50; r++ {
			row := cleanRow(rng, 4, 0.2)
			c.Apply(row)
			out = append(out, row.Tag...)
		}
		if c.Corrupted() == 0 {
			t.Fatal("no rows corrupted")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		ab, bb := [2]uint64{math.Float64bits(real(a[i])), math.Float64bits(imag(a[i]))},
			[2]uint64{math.Float64bits(real(b[i])), math.Float64bits(imag(b[i]))}
		if ab != bb {
			t.Fatalf("tone %d differs across identically seeded runs", i)
		}
	}
}
