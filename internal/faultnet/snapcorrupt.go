package faultnet

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"

	"bloc/internal/durable"
)

// Snapshot corruption: where Conn models a broken transport and Corrupter
// a broken radio, SnapCorrupter models broken storage — it damages the
// durable state plane's slot files on disk the way real disks and crashes
// do, so kill-and-restart drills can prove the restore path detects every
// shape and falls back instead of panicking or trusting garbage:
//
//   - torn writes: the file ends mid-record (a crash between write and
//     fsync, or a filesystem that reordered the append);
//   - bit flips: one random bit differs (media rot, a misdirected DMA);
//   - truncation: the file is cut to an arbitrary prefix, including the
//     bare header (lost tail pages);
//   - stale generation: the record is internally consistent — checksum
//     and all — but carries an old generation number (a restored backup,
//     a cloned VM disk), which must lose newest-wins slot selection
//     rather than roll the server back in time.
//
// All randomness comes from a PCG stream derived from the seed, so a
// drill replays identically.

// SnapCorrupter damages snapshot slot files inside one durable store
// directory. Safe for concurrent use.
type SnapCorrupter struct {
	dir string

	mu       sync.Mutex
	rng      *rand.Rand // guarded by mu
	injected int        // corruptions applied; guarded by mu
}

// NewSnapCorrupter targets the store directory dir with a seeded stream.
func NewSnapCorrupter(dir string, seed uint64) *SnapCorrupter {
	if seed == 0 {
		seed = 1
	}
	return &SnapCorrupter{
		dir: dir,
		rng: rand.New(rand.NewPCG(seed, 0x5109)),
	}
}

// Injected reports how many corruptions were applied.
func (c *SnapCorrupter) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// slotPath resolves one slot index (0 or 1) to its file path.
func (c *SnapCorrupter) slotPath(slot int) (string, error) {
	names := durable.SlotNames()
	if slot < 0 || slot >= len(names) {
		return "", fmt.Errorf("faultnet: slot %d outside [0,%d)", slot, len(names))
	}
	return filepath.Join(c.dir, names[slot]), nil
}

// TornWrite truncates a slot to a random strict prefix of at least one
// byte — the on-disk shape of a crash mid-write that beat the fsync.
func (c *SnapCorrupter) TornWrite(slot int) error {
	path, err := c.slotPath(slot)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faultnet: torn write: %w", err)
	}
	if fi.Size() < 2 {
		return fmt.Errorf("faultnet: slot %d too small to tear (%d bytes)", slot, fi.Size())
	}
	n := 1 + c.rng.Int64N(fi.Size()-1)
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("faultnet: torn write: %w", err)
	}
	c.injected++
	return nil
}

// BitFlip flips one random bit of the slot file.
func (c *SnapCorrupter) BitFlip(slot int) error {
	path, err := c.slotPath(slot)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultnet: bit flip: %w", err)
	}
	if len(b) == 0 {
		return fmt.Errorf("faultnet: slot %d empty", slot)
	}
	i := c.rng.IntN(len(b))
	b[i] ^= 1 << c.rng.IntN(8)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("faultnet: bit flip: %w", err)
	}
	c.injected++
	return nil
}

// Truncate cuts a slot file to exactly n bytes (n may be 0: a slot that
// exists but holds nothing).
func (c *SnapCorrupter) Truncate(slot int, n int64) error {
	path, err := c.slotPath(slot)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("faultnet: truncate: %w", err)
	}
	c.injected++
	return nil
}

// StaleGeneration rewrites a slot's generation number to gen, re-sealing
// the checksum so the record validates — a structurally perfect snapshot
// from the past, which newest-wins selection must pass over.
func (c *SnapCorrupter) StaleGeneration(slot int, gen uint64) error {
	path, err := c.slotPath(slot)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultnet: stale generation: %w", err)
	}
	nb, err := durable.RewriteGeneration(b, gen)
	if err != nil {
		return fmt.Errorf("faultnet: stale generation: %w", err)
	}
	if err := os.WriteFile(path, nb, 0o644); err != nil {
		return fmt.Errorf("faultnet: stale generation: %w", err)
	}
	c.injected++
	return nil
}
