package faultnet

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// delayPattern writes n frames through a fresh DelayConn over a pipe and
// returns which writes slept, plus everything the far end received.
func delayPattern(t *testing.T, cfg DelayConfig, salt uint64, n int) ([]bool, []byte) {
	t.Helper()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	recvDone := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		tmp := make([]byte, 64)
		for {
			k, err := b.Read(tmp)
			buf.Write(tmp[:k])
			if err != nil {
				recvDone <- buf.Bytes()
				return
			}
		}
	}()
	dc := WrapDelayConn(a, cfg, salt)
	pattern := make([]bool, n)
	prev := 0
	for i := 0; i < n; i++ {
		if _, err := dc.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		d := dc.Delays()
		pattern[i] = d > prev
		prev = d
	}
	a.Close()
	return pattern, <-recvDone
}

// TestDelayConnSeededDeterminism pins the injector's reproducibility: the
// same seed and salt produce the same spike schedule on every run, and a
// different salt produces a different one — a fleet sharing one seed does
// not stall in lockstep.
func TestDelayConnSeededDeterminism(t *testing.T) {
	cfg := DelayConfig{Seed: 7, SpikeProb: 0.5, Spike: time.Microsecond}
	p1, data1 := delayPattern(t, cfg, 3, 64)
	p2, data2 := delayPattern(t, cfg, 3, 64)
	p3, _ := delayPattern(t, cfg, 4, 64)
	slept := 0
	same := true
	for i := range p1 {
		if p1[i] {
			slept++
		}
		if p1[i] != p2[i] {
			t.Fatalf("write %d: same seed+salt diverged (%v vs %v)", i, p1[i], p2[i])
		}
		same = same && p1[i] == p3[i]
	}
	if slept == 0 || slept == len(p1) {
		t.Fatalf("spike schedule degenerate: %d/%d writes slept", slept, len(p1))
	}
	if same {
		t.Error("different salts produced identical spike schedules")
	}
	// Slow, never wrong: every byte arrives intact.
	if len(data1) != 64 || !bytes.Equal(data1, data2) {
		t.Errorf("payload corrupted: %d bytes", len(data1))
	}
}

// TestDelayConnToggle pins the mid-stream switch: SetSlow(false) stops
// the injected latency immediately (a straggler episode ends), and
// SetSlow(true) resumes it.
func TestDelayConnToggle(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		tmp := make([]byte, 64)
		for {
			if _, err := b.Read(tmp); err != nil {
				return
			}
		}
	}()
	dc := WrapDelayConn(a, DelayConfig{Seed: 1, Base: time.Microsecond}, 1)
	for i := 0; i < 5; i++ {
		dc.Write([]byte{0})
	}
	if got := dc.Delays(); got != 5 {
		t.Fatalf("Delays() = %d with Base set, want 5", got)
	}
	dc.SetSlow(false)
	for i := 0; i < 5; i++ {
		dc.Write([]byte{0})
	}
	if got := dc.Delays(); got != 5 {
		t.Fatalf("Delays() = %d after SetSlow(false), want 5", got)
	}
	dc.SetSlow(true)
	dc.Write([]byte{0})
	if got := dc.Delays(); got != 6 {
		t.Fatalf("Delays() = %d after SetSlow(true), want 6", got)
	}
}

// TestBurstSchedule pins the offered-load arithmetic: stable tag IDs,
// exact window edges, Factor multiplication inside the window.
func TestBurstSchedule(t *testing.T) {
	b := Burst{BaseTags: 2, Factor: 10, Start: 7, Rounds: 4}
	cases := []struct {
		round  uint32
		n      int
		active bool
	}{
		{1, 2, false}, {6, 2, false}, {7, 20, true}, {10, 20, true}, {11, 2, false},
	}
	for _, c := range cases {
		if got := b.Active(c.round); got != c.active {
			t.Errorf("Active(%d) = %v, want %v", c.round, got, c.active)
		}
		tags := b.Tags(c.round)
		if len(tags) != c.n {
			t.Errorf("Tags(%d) has %d tags, want %d", c.round, len(tags), c.n)
		}
		for i, tg := range tags {
			if tg != uint16(i+1) {
				t.Fatalf("Tags(%d)[%d] = %d, want %d (stable IDs)", c.round, i, tg, i+1)
			}
		}
	}
}
