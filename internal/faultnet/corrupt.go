package faultnet

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"sync"

	"bloc/internal/wire"
)

// CSI payload corruption: where faultnet.Conn models a broken transport,
// Corrupter models a broken radio — the frames arrive intact but the CSI
// inside them lies. Each injector reproduces one of the failure shapes the
// sanity pipeline in internal/csi detects:
//
//   - bit flips in the float encoding (DMA/ECC faults → NaN, Inf or
//     wildly wrong values);
//   - outright NaN payloads (uninitialized buffers);
//   - stuck tones: the radio replays its first row forever (a frozen
//     DMA buffer);
//   - CFO drift: the first row replayed with a slowly advancing phase —
//     magnitudes frozen, phase deterministic instead of per-retune random
//     (a synthesizer that lost its retune trigger but keeps drifting);
//   - silent garbage: plausible-looking random tones at a wildly wrong
//     power level (the "silent-garbage master" scenario — nothing in the
//     transport or framing hints that the data is junk).
//
// All decisions come from a PCG stream derived from the seed, so a drill
// replays identically.

// CorruptConfig selects which corruptions to inject. Probabilities are
// per row; zero values inject nothing.
type CorruptConfig struct {
	// Seed derives the corruption stream (default 1).
	Seed uint64
	// BitFlipProb flips one random mantissa/exponent/sign bit of one
	// random tone in the row.
	BitFlipProb float64
	// NaNProb replaces one random tone with NaN.
	NaNProb float64
	// StuckTone replays the corrupter's first observed row in place of
	// every later one.
	StuckTone bool
	// CFODriftRadPerRow, when positive, replays the first observed row
	// with its phases advanced by this many radians per subsequent row.
	CFODriftRadPerRow float64
	// GarbageProb replaces the whole row with random tones at a power
	// level GarbageGain times the original (default gain 1e6) — silently
	// wrong data with healthy framing.
	GarbageProb float64
	// GarbageGain scales garbage rows' magnitude (default 1e6).
	GarbageGain float64
}

// Corrupter mutates wire.CSIRow payloads in place. Plug it into
// anchor.Daemon.Mutate. Safe for concurrent use.
type Corrupter struct {
	cfg CorruptConfig

	mu          sync.Mutex
	rng         *rand.Rand   // guarded by mu
	first       []complex128 // first observed row (stuck/CFO replay source); guarded by mu
	firstMaster complex128   // guarded by mu
	rows        int          // rows seen; guarded by mu
	corrupted   int          // rows actually mutated; guarded by mu
}

// NewCorrupter builds a corrupter with its own seeded stream.
func NewCorrupter(cfg CorruptConfig) *Corrupter {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.GarbageGain <= 0 {
		cfg.GarbageGain = 1e6
	}
	return &Corrupter{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xC0FFEE)),
	}
}

// Corrupted reports how many rows were actually mutated.
func (c *Corrupter) Corrupted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupted
}

// Apply mutates one row according to the configuration. The row's Tag
// slice is modified in place; callers must not pass buffers shared with
// the clean measurement path.
func (c *Corrupter) Apply(row *wire.CSIRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.rows
	c.rows++
	if c.first == nil {
		c.first = append([]complex128(nil), row.Tag...)
		c.firstMaster = row.Master
	}

	touched := false
	switch {
	case c.cfg.StuckTone && idx > 0:
		// Exact replay: every row after the first repeats it bit for bit.
		copy(row.Tag, c.first)
		row.Master = c.firstMaster
		touched = true
	case c.cfg.CFODriftRadPerRow > 0 && idx > 0:
		// Frozen magnitudes, deterministically drifting phase: the inter-row
		// phase delta is constant, which is what the frozen-phase detector
		// keys on (a real retune re-randomizes it).
		rot := cmplx.Rect(1, c.cfg.CFODriftRadPerRow*float64(idx))
		for j := range row.Tag {
			row.Tag[j] = c.first[j] * rot
		}
		row.Master = c.firstMaster * rot
		touched = true
	case c.cfg.GarbageProb > 0 && c.rng.Float64() < c.cfg.GarbageProb:
		mean := 0.0
		for _, z := range row.Tag {
			mean += cmplx.Abs(z)
		}
		mean = mean/float64(len(row.Tag)) + 1e-30
		for j := range row.Tag {
			m := mean * c.cfg.GarbageGain * (0.5 + c.rng.Float64())
			row.Tag[j] = cmplx.Rect(m, (c.rng.Float64()*2-1)*math.Pi)
		}
		touched = true
	}
	if c.cfg.NaNProb > 0 && c.rng.Float64() < c.cfg.NaNProb {
		row.Tag[c.rng.IntN(len(row.Tag))] = complex(math.NaN(), math.NaN())
		touched = true
	}
	if c.cfg.BitFlipProb > 0 && c.rng.Float64() < c.cfg.BitFlipProb {
		j := c.rng.IntN(len(row.Tag))
		re := math.Float64bits(real(row.Tag[j]))
		im := imag(row.Tag[j])
		bit := uint(c.rng.IntN(64))
		row.Tag[j] = complex(math.Float64frombits(re^(1<<bit)), im)
		touched = true
	}
	if touched {
		c.corrupted++
	}
}
