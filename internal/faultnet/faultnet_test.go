package faultnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bloc/internal/wire"
)

// pipePair returns a wrapped client conn talking to a raw server conn.
func pipePair(t *testing.T, cfg Config, salt uint64) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.c.Close() })
	return WrapConn(client, cfg, salt), a.c
}

func TestTransparentWhenZeroConfig(t *testing.T) {
	c, server := pipePair(t, Config{}, 1)
	msg := []byte("hello world")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
}

func TestDropRateIsDeterministic(t *testing.T) {
	count := func() (drops int) {
		c, server := pipePair(t, Config{Seed: 7, DropProb: 0.05}, 3)
		go io.Copy(io.Discard, server)
		for i := 0; i < 1000; i++ {
			if _, err := c.Write([]byte("frame")); err != nil {
				t.Fatal(err)
			}
		}
		return c.Drops()
	}
	d1, d2 := count(), count()
	if d1 != d2 {
		t.Errorf("same seed produced different drop counts: %d vs %d", d1, d2)
	}
	// ~5% of 1000 with generous slack.
	if d1 < 20 || d1 > 100 {
		t.Errorf("drop count %d implausible for p=0.05", d1)
	}
}

func TestSplitWritesReassemble(t *testing.T) {
	c, server := pipePair(t, Config{Seed: 9, SplitProb: 1}, 5)
	var got []byte
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, _ := io.ReadAll(server)
		mu.Lock()
		got = b
		mu.Unlock()
	}()
	// Frames written through a splitting conn must still parse on the
	// other side: the stream content is unchanged, only segmentation.
	var want bytes.Buffer
	for i := 0; i < 20; i++ {
		hb := &wire.Heartbeat{Nonce: uint32(i)}
		if err := wire.Send(c, hb); err != nil {
			t.Fatal(err)
		}
		wire.Send(&want, hb)
	}
	c.Close()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("split stream corrupted: %d bytes vs %d", len(got), want.Len())
	}
}

func TestResetBreaksConnPermanently(t *testing.T) {
	c, server := pipePair(t, Config{Seed: 11, ResetProb: 1}, 6)
	go io.Copy(io.Discard, server)
	if _, err := c.Write([]byte("doomed frame")); err != ErrInjectedReset {
		t.Fatalf("first write err = %v, want injected reset", err)
	}
	if _, err := c.Write([]byte("after")); err != ErrInjectedReset {
		t.Fatalf("post-reset write err = %v", err)
	}
}

func TestForceReset(t *testing.T) {
	c, server := pipePair(t, Config{}, 8)
	c.ForceReset()
	if _, err := c.Write([]byte("x")); err != ErrInjectedReset {
		t.Errorf("write after ForceReset = %v", err)
	}
	// The peer sees the close.
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Error("peer read should fail after ForceReset")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(raw, Config{Seed: 13, DropProb: 1})
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if _, ok := conn.(*Conn); !ok {
			t.Errorf("accepted conn is %T, want *faultnet.Conn", conn)
		}
		// All writes dropped: peer must read nothing until close.
		conn.Write([]byte("vanishes"))
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	<-done
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := client.Read(make([]byte, 16))
	if n != 0 {
		t.Errorf("read %d bytes through a 100%% drop conn", n)
	}
}

func TestDelayInjection(t *testing.T) {
	c, server := pipePair(t, Config{Seed: 17, DelayProb: 1, MaxDelay: 30 * time.Millisecond}, 9)
	go io.Copy(io.Discard, server)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := c.Write([]byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	// 20 writes × U[0,30) ms ≈ 300 ms expected; require some visible
	// slowdown without being timing-flaky.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("20 delayed writes took only %v", elapsed)
	}
}
