package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"math/rand/v2"
)

// Overload and gray-failure injection (DESIGN.md §12). Where faultnet's
// Config models *loss* (dropped frames, resets), DelayConfig models
// *slowness*: an anchor that is alive, correct, and late — the gray
// failure that quorum waits and static deadlines handle worst. Delays
// are drawn from a seeded PCG stream per connection, so a drill that
// marks an anchor laggy does so at the same round on every run.

// DelayConfig shapes the injected write latency.
type DelayConfig struct {
	// Seed derives the delay stream (with the wrap salt), keeping spike
	// timing reproducible.
	Seed uint64
	// Base is added to every write while the injector is enabled — a
	// congested backhaul or an overloaded host.
	Base time.Duration
	// Jitter adds uniform [0, Jitter) on top of Base per write.
	Jitter time.Duration
	// SpikeProb is the per-write probability of an additional Spike
	// sleep — a GC pause or a Wi-Fi retrain, the tail that makes p95
	// tracking necessary.
	SpikeProb float64
	Spike     time.Duration
}

// DelayConn wraps a net.Conn with deterministic write latency. Unlike
// Conn it delivers every byte — slow, never wrong. The injection can be
// toggled mid-stream, so a drill can turn a healthy anchor into a
// straggler at a chosen moment and heal it later.
type DelayConn struct {
	net.Conn

	mu      sync.Mutex
	rng     *rand.Rand // guarded by mu
	cfg     DelayConfig
	enabled bool // guarded by mu
	delays  int  // writes that slept; guarded by mu
}

// Validate rejects shapes that cannot describe latency: negative
// durations and probabilities outside [0,1].
func (c DelayConfig) Validate() error {
	if c.Base < 0 || c.Jitter < 0 || c.Spike < 0 {
		return fmt.Errorf("faultnet: negative delay durations (base %v, jitter %v, spike %v)",
			c.Base, c.Jitter, c.Spike)
	}
	if c.SpikeProb < 0 || c.SpikeProb > 1 {
		return fmt.Errorf("faultnet: spike probability %v outside [0,1]", c.SpikeProb)
	}
	return nil
}

// sanitized clamps an invalid shape to the nearest valid one, so a
// DelayConn constructed without checking Validate still behaves (a
// negative sleep would silently disable the injection mid-schedule).
func (c DelayConfig) sanitized() DelayConfig {
	if c.Base < 0 {
		c.Base = 0
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Spike < 0 {
		c.Spike = 0
	}
	if c.SpikeProb < 0 {
		c.SpikeProb = 0
	}
	if c.SpikeProb > 1 {
		c.SpikeProb = 1
	}
	return c
}

// WrapDelayConn wraps c; salt individualizes the stream (use the anchor
// ID). The injector starts enabled. The config is sanitized (see
// DelayConfig.Validate for strict checking).
func WrapDelayConn(c net.Conn, cfg DelayConfig, salt uint64) *DelayConn {
	return &DelayConn{
		Conn:    c,
		cfg:     cfg.sanitized(),
		rng:     rand.New(rand.NewPCG(cfg.Seed^0x51_0DE1A7, salt)),
		enabled: true,
	}
}

// SetSlow enables or disables the injected latency; drills use it to
// start and end a straggler episode.
func (c *DelayConn) SetSlow(on bool) {
	c.mu.Lock()
	c.enabled = on
	c.mu.Unlock()
}

// Delays returns how many writes slept so far.
func (c *DelayConn) Delays() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delays
}

// Write sleeps the configured delay, then forwards the whole buffer.
func (c *DelayConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	var d time.Duration
	if c.enabled {
		d = c.cfg.Base
		if c.cfg.Jitter > 0 {
			d += time.Duration(c.rng.Int64N(int64(c.cfg.Jitter)))
		}
		if c.cfg.SpikeProb > 0 && c.rng.Float64() < c.cfg.SpikeProb {
			d += c.cfg.Spike
		}
		if d > 0 {
			c.delays++
		}
	}
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Burst describes offered tag load per acquisition round: BaseTags tags
// normally, BaseTags·Factor during the burst window. Tag IDs are stable
// across rounds (tag 1 exists in every round, so a drill can follow one
// tracked tag through the whole episode) and the schedule is pure
// arithmetic — the same round always offers the same tags.
type Burst struct {
	BaseTags int    // tags offered outside the burst (IDs 1..BaseTags)
	Factor   int    // burst multiplier (IDs 1..BaseTags·Factor while active)
	Start    uint32 // first burst round
	Rounds   uint32 // burst length; the window is [Start, Start+Rounds)
}

// maxBurstTags bounds any round's offered load: tag IDs are uint16 and
// 0 is reserved, so no schedule can offer more than the ID space.
const maxBurstTags = 0xFFFF

// NewBurst validates and returns a schedule; prefer it over a literal
// so malformed drills fail at construction, not mid-episode.
func NewBurst(baseTags, factor int, start, rounds uint32) (Burst, error) {
	b := Burst{BaseTags: baseTags, Factor: factor, Start: start, Rounds: rounds}
	if err := b.Validate(); err != nil {
		return Burst{}, err
	}
	return b, nil
}

// Validate rejects schedules that cannot describe offered load:
// non-positive rates, and peaks that overflow the uint16 tag ID space
// (which also bounds the per-round slice Tags allocates).
func (b Burst) Validate() error {
	if b.BaseTags <= 0 {
		return fmt.Errorf("faultnet: burst base tags %d; want > 0", b.BaseTags)
	}
	if b.Factor < 1 {
		return fmt.Errorf("faultnet: burst factor %d; want >= 1", b.Factor)
	}
	if peak := b.BaseTags * b.Factor; peak > maxBurstTags {
		return fmt.Errorf("faultnet: burst peak %d tags exceeds the %d-tag ID space", peak, maxBurstTags)
	}
	return nil
}

// Active reports whether round falls in the burst window.
func (b Burst) Active(round uint32) bool {
	return round >= b.Start && round < b.Start+b.Rounds
}

// offered returns the tag count for a round, clamped to the valid range
// even for schedules that skipped Validate.
func (b Burst) offered(round uint32) int {
	n := b.BaseTags
	if b.Active(round) {
		n = b.BaseTags * b.Factor
	}
	if n < 0 {
		return 0
	}
	if n > maxBurstTags {
		return maxBurstTags
	}
	return n
}

// Tags returns the tag IDs offered in the given round, lowest first.
func (b Burst) Tags(round uint32) []uint16 {
	return b.TagsAppend(nil, round)
}

// TagsAppend appends the round's tag IDs to dst and returns it; a drill
// iterating thousands of rounds reuses one buffer instead of allocating
// a slice per round.
func (b Burst) TagsAppend(dst []uint16, round uint32) []uint16 {
	n := b.offered(round)
	for i := 0; i < n; i++ {
		dst = append(dst, uint16(i+1))
	}
	return dst
}
