package faultnet

import (
	"os"
	"path/filepath"
	"testing"

	"bloc/internal/durable"
)

func TestSnapCorrupterValidation(t *testing.T) {
	dir := t.TempDir()
	c := NewSnapCorrupter(dir, 7)
	if err := c.TornWrite(2); err == nil {
		t.Error("slot index 2 accepted")
	}
	if err := c.BitFlip(-1); err == nil {
		t.Error("slot index -1 accepted")
	}
	if err := c.TornWrite(0); err == nil {
		t.Error("torn write on a missing slot accepted")
	}
	if err := c.StaleGeneration(0, 1); err == nil {
		t.Error("stale generation on a missing slot accepted")
	}
	if c.Injected() != 0 {
		t.Errorf("Injected = %d after only failures", c.Injected())
	}
}

func TestSnapCorrupterInjectsDetectably(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := &durable.State{Anchors: []durable.AnchorHealth{{Score: 1}, {Score: 1}}}
	if err := store.Save(st); err != nil { // generation 1 -> slot 1
		t.Fatal(err)
	}
	if err := store.Save(st); err != nil { // generation 2 -> slot 0
		t.Fatal(err)
	}

	c := NewSnapCorrupter(dir, 7)
	if err := c.BitFlip(0); err != nil {
		t.Fatal(err)
	}
	if err := c.TornWrite(1); err != nil {
		t.Fatal(err)
	}
	if c.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", c.Injected())
	}
	// Both slots damaged: a fresh store must refuse them rather than
	// serve garbage.
	store2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Load(); err == nil {
		t.Fatal("corrupted slots loaded without error")
	}
	if got := store2.Stats().Corruptions; got < 2 {
		t.Fatalf("Corruptions = %d, want >= 2", got)
	}
}

func TestSnapCorrupterStaleGenerationStaysValid(t *testing.T) {
	dir := t.TempDir()
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := &durable.State{Round: 1, Anchors: []durable.AnchorHealth{{Score: 1}}}
	if err := store.Save(st); err != nil {
		t.Fatal(err)
	}
	st.Round = 2
	if err := store.Save(st); err != nil {
		t.Fatal(err)
	}
	c := NewSnapCorrupter(dir, 7)
	if err := c.StaleGeneration(0, 0); err != nil { // newest gen (2) lives in slot 0
		t.Fatal(err)
	}
	// The rewritten slot still validates on its own...
	b, err := os.ReadFile(filepath.Join(dir, durable.SlotNames()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := durable.DecodeSnapshot(b); err != nil {
		t.Fatalf("stale-generation slot no longer decodes: %v", err)
	}
	// ...but newest-wins selection serves the other slot, cleanly.
	store2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 {
		t.Fatalf("served round %d, want 1 (the genuinely newest record)", got.Round)
	}
	if store2.Stats().Corruptions != 0 {
		t.Fatalf("Corruptions = %d for structurally valid slots", store2.Stats().Corruptions)
	}
}
