// Package faultnet wraps net.Conn and net.Listener with seeded,
// deterministic fault injection: silent write drops, delivery delays,
// split (partial) writes and mid-stream connection resets. It exists so
// the acquisition plane's soak tests can subject a full server+anchors
// testbed to the loss and churn real BLE deployments see, while staying
// reproducible — every fault decision is drawn from a PCG stream derived
// from the configured seed, never from the global RNG or the clock.
//
// The wire protocol writes exactly one frame per Write call
// (wire.WriteFrame), so DropProb models whole-frame loss: a dropped Write
// reports success and delivers nothing, exactly like a lost UDP datagram
// or a BLE frame that failed its CRC. Resets are partial writes followed
// by a hard close — the receiver sees a truncated stream and a read
// error, which is how TCP surfaces a peer dying mid-frame.
package faultnet

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned by writes after an injected reset.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Config sets the fault probabilities. All probabilities are per Write
// call; zero values inject nothing, so Config{} is a transparent wrapper.
type Config struct {
	// Seed derives every conn's fault stream. Two runs with the same
	// seed, config and traffic order make identical drop decisions.
	Seed uint64
	// DropProb silently discards a whole Write (reports success).
	DropProb float64
	// DelayProb sleeps a uniform [0, MaxDelay) before the write,
	// modelling scheduling jitter and queueing.
	DelayProb float64
	MaxDelay  time.Duration
	// SplitProb delivers a Write in two separate underlying writes,
	// exercising frame reassembly on the receiver.
	SplitProb float64
	// ResetProb writes a random prefix of the buffer, then closes the
	// connection and fails this and every later write with
	// ErrInjectedReset — a mid-stream reset that leaves the peer with a
	// truncated frame.
	ResetProb float64
}

// Conn wraps a net.Conn with fault injection on the write path. Reads
// pass through untouched: byte-level read faults would only desynchronize
// framing in ways the write-side faults already cover.
type Conn struct {
	net.Conn

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	cfg    Config
	broken bool // guarded by mu

	// Drops counts silently discarded writes (for test assertions).
	// guarded by mu
	drops int
}

// WrapConn wraps c with fault injection; salt individualizes the fault
// stream (use a per-connection counter or anchor id).
func WrapConn(c net.Conn, cfg Config, salt uint64) *Conn {
	return &Conn{
		Conn: c,
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(cfg.Seed^0xFA017, salt)),
	}
}

// Write applies the configured faults to one write.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	roll := c.rng.Float64()
	drop := roll < c.cfg.DropProb
	roll = c.rng.Float64()
	delay := time.Duration(0)
	if roll < c.cfg.DelayProb && c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int64N(int64(c.cfg.MaxDelay)))
	}
	split := c.rng.Float64() < c.cfg.SplitProb
	splitAt := 0
	if split && len(p) > 1 {
		splitAt = 1 + c.rng.IntN(len(p)-1)
	}
	reset := c.rng.Float64() < c.cfg.ResetProb
	var resetAt int
	if reset {
		c.broken = true
		if len(p) > 0 {
			resetAt = c.rng.IntN(len(p))
		}
	}
	if drop {
		c.drops++
	}
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(p), nil // silent frame loss
	}
	if reset {
		c.Conn.Write(p[:resetAt]) // best effort truncated delivery
		c.Conn.Close()
		return resetAt, ErrInjectedReset
	}
	if splitAt > 0 {
		n, err := c.Conn.Write(p[:splitAt])
		if err != nil {
			return n, err
		}
		m, err := c.Conn.Write(p[splitAt:])
		return n + m, err
	}
	return c.Conn.Write(p)
}

// ForceReset closes the underlying connection and fails all later writes,
// independent of probabilities — the hook soak tests use to force churn
// at a chosen moment.
func (c *Conn) ForceReset() {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	c.Conn.Close()
}

// Drops returns how many writes were silently discarded so far.
func (c *Conn) Drops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drops
}

// Listener wraps every accepted connection with fault injection. Each
// conn gets its own deterministic stream (seeded by an accept counter).
type Listener struct {
	net.Listener
	cfg Config

	mu sync.Mutex
	n  uint64 // accept counter; guarded by mu
}

// Wrap returns a fault-injecting listener.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	salt := l.n
	l.mu.Unlock()
	return WrapConn(conn, l.cfg, salt), nil
}
