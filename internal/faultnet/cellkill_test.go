package faultnet

import (
	"strings"
	"testing"
	"time"
)

func TestCellKillerFiresAtScheduledOccurrence(t *testing.T) {
	k, err := NewCellKiller(KillSpec{Cell: 1, Event: "ingest", Seq: 3})
	if err != nil {
		t.Fatalf("NewCellKiller: %v", err)
	}
	h0 := k.Hook(0)
	h1 := k.Hook(1)

	// Other cells never fire, whatever their counts.
	for i := 0; i < 10; i++ {
		h0("ingest")
	}
	// The scheduled cell survives occurrences 1 and 2...
	h1("ingest")
	h1("fix") // different event: its counter is independent
	h1("ingest")
	if got := len(k.Fired()); got != 0 {
		t.Fatalf("fired before the scheduled occurrence: %v", k.Fired())
	}
	// ...and panics exactly at the 3rd ingest.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("scheduled occurrence did not panic")
			}
			cp, ok := r.(CellPanic)
			if !ok {
				t.Fatalf("panic value %T, want CellPanic", r)
			}
			if cp.Spec != (KillSpec{Cell: 1, Event: "ingest", Seq: 3}) {
				t.Fatalf("panic spec %+v", cp.Spec)
			}
			if !strings.Contains(cp.String(), "cell 1") {
				t.Fatalf("CellPanic string %q", cp.String())
			}
		}()
		h1("ingest")
	}()

	if fired := k.Fired(); len(fired) != 1 || fired[0].Seq != 3 {
		t.Fatalf("Fired() = %v, want the one scheduled spec", fired)
	}
	// The counter keeps advancing past the kill (a restarted cell's hook
	// shares it), but the spec never fires twice.
	for i := 0; i < 5; i++ {
		h1("ingest")
	}
	if got := k.Count(1, "ingest"); got != 8 {
		t.Fatalf("Count(1, ingest) = %d, want 8", got)
	}
	if got := len(k.Fired()); got != 1 {
		t.Fatalf("spec fired %d times, want exactly once", got)
	}
}

func TestCellKillerRejectsInvalidSpecs(t *testing.T) {
	cases := []struct {
		name  string
		specs []KillSpec
	}{
		{"negative cell", []KillSpec{{Cell: -1, Event: "ingest", Seq: 1}}},
		{"empty event", []KillSpec{{Cell: 0, Event: "", Seq: 1}}},
		{"zero seq", []KillSpec{{Cell: 0, Event: "fix", Seq: 0}}},
		{"duplicate", []KillSpec{
			{Cell: 0, Event: "fix", Seq: 2},
			{Cell: 0, Event: "fix", Seq: 2},
		}},
	}
	for _, tc := range cases {
		if _, err := NewCellKiller(tc.specs...); err == nil {
			t.Errorf("%s: NewCellKiller accepted %v", tc.name, tc.specs)
		}
	}
	if _, err := NewCellKiller(
		KillSpec{Cell: 0, Event: "fix", Seq: 2},
		KillSpec{Cell: 0, Event: "ingest", Seq: 2},
		KillSpec{Cell: 3, Event: "fix", Seq: 2},
	); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestBurstValidation(t *testing.T) {
	if _, err := NewBurst(0, 10, 1, 2); err == nil {
		t.Error("zero base tags accepted")
	}
	if _, err := NewBurst(2, 0, 1, 2); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewBurst(2, -3, 1, 2); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := NewBurst(40_000, 2, 1, 2); err == nil {
		t.Error("peak beyond the uint16 ID space accepted")
	}
	b, err := NewBurst(2, 10, 7, 4)
	if err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if got := len(b.Tags(6)); got != 2 {
		t.Fatalf("pre-burst round offered %d tags, want 2", got)
	}
	if got := len(b.Tags(8)); got != 20 {
		t.Fatalf("burst round offered %d tags, want 20", got)
	}
}

func TestBurstTagsAppendReusesBuffer(t *testing.T) {
	b := Burst{BaseTags: 3, Factor: 4, Start: 5, Rounds: 1}
	buf := make([]uint16, 0, 16)
	got := b.TagsAppend(buf[:0], 5)
	if len(got) != 12 {
		t.Fatalf("burst round appended %d tags, want 12", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatalf("TagsAppend reallocated despite sufficient capacity")
	}
	for i, id := range got {
		if id != uint16(i+1) {
			t.Fatalf("tag[%d] = %d, want %d", i, id, i+1)
		}
	}
	// A malformed literal that skipped Validate still cannot allocate
	// unboundedly or panic.
	bad := Burst{BaseTags: -5, Factor: 1000}
	if got := bad.Tags(0); len(got) != 0 {
		t.Fatalf("negative schedule offered %d tags", len(got))
	}
	huge := Burst{BaseTags: 60_000, Factor: 100, Start: 0, Rounds: 1}
	if got := len(huge.Tags(0)); got != maxBurstTags {
		t.Fatalf("oversized schedule offered %d tags, want clamp to %d", got, maxBurstTags)
	}
}

func TestDelayConfigValidation(t *testing.T) {
	if err := (DelayConfig{Base: time.Millisecond, Jitter: time.Millisecond, SpikeProb: 0.5, Spike: time.Millisecond}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]DelayConfig{
		"negative base":   {Base: -time.Millisecond},
		"negative jitter": {Jitter: -time.Millisecond},
		"negative spike":  {Spike: -time.Millisecond},
		"prob below 0":    {SpikeProb: -0.1},
		"prob above 1":    {SpikeProb: 1.1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// sanitized clamps rather than disabling the injector.
	s := DelayConfig{Base: -time.Second, SpikeProb: 2}.sanitized()
	if s.Base != 0 || s.SpikeProb != 1 {
		t.Fatalf("sanitized = %+v", s)
	}
}
