// Package vicon simulates the paper's ground-truth source (§7): a VICON
// infrared motion-capture system tracking markers on the tag with
// millimeter-level accuracy. The oracle observes the simulator's true tag
// position through a small Gaussian jitter and is used only to score
// localization errors — never inside the pipeline, exactly as in the
// paper.
package vicon

import (
	"math/rand/v2"

	"bloc/internal/geom"
)

// DefaultJitterM is the 1-σ marker jitter of a calibrated VICON rig
// (≈ 1 mm, the "mm-level accuracy" of §7).
const DefaultJitterM = 0.001

// Oracle observes true positions with marker jitter.
type Oracle struct {
	Sigma float64
	rng   *rand.Rand
}

// New creates a deterministic oracle with the given jitter.
func New(sigma float64, seed uint64) *Oracle {
	return &Oracle{Sigma: sigma, rng: rand.New(rand.NewPCG(seed, 0x71C0))}
}

// Observe returns the measured ground-truth position for a true position.
func (o *Oracle) Observe(truth geom.Point) geom.Point {
	if o.Sigma <= 0 {
		return truth
	}
	return geom.Pt(
		truth.X+o.rng.NormFloat64()*o.Sigma,
		truth.Y+o.rng.NormFloat64()*o.Sigma,
	)
}
