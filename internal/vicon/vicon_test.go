package vicon

import (
	"math"
	"testing"

	"bloc/internal/geom"
)

func TestObserveJitterStatistics(t *testing.T) {
	o := New(0.001, 1)
	truth := geom.Pt(1.5, -2.25)
	var sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		obs := o.Observe(truth)
		dx, dy := obs.X-truth.X, obs.Y-truth.Y
		sumSq += dx*dx + dy*dy
	}
	// E[dx²+dy²] = 2σ².
	rms := math.Sqrt(sumSq / n)
	want := 0.001 * math.Sqrt2
	if math.Abs(rms-want) > 0.1*want {
		t.Errorf("observation RMS %v, want ≈ %v", rms, want)
	}
}

func TestObserveZeroSigmaIsExact(t *testing.T) {
	o := New(0, 1)
	p := geom.Pt(0.25, 0.75)
	if o.Observe(p) != p {
		t.Error("zero-jitter oracle should return truth")
	}
}

func TestObserveDeterministic(t *testing.T) {
	a, b := New(0.001, 42), New(0.001, 42)
	for i := 0; i < 10; i++ {
		if a.Observe(geom.Pt(1, 1)) != b.Observe(geom.Pt(1, 1)) {
			t.Fatal("same-seed oracles diverged")
		}
	}
}

func TestDefaultJitterIsMillimeterScale(t *testing.T) {
	if DefaultJitterM != 0.001 {
		t.Errorf("DefaultJitterM = %v, want 1 mm (§7: mm-level accuracy)", DefaultJitterM)
	}
}
