// Package dsp is the signal-processing toolbox for the BLoc reproduction:
// FFTs, phase manipulation, Gaussian pulse shaping for GFSK, descriptive
// statistics, and the 1-D/2-D peak and entropy machinery the localization
// core builds on.
//
// Everything is implemented on []complex128 / []float64 with no external
// dependencies. The routines favor clarity and numerical robustness over
// micro-optimization except where the localization hot loop requires
// otherwise (see package core).
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. For power-of-two lengths
// an iterative radix-2 Cooley-Tukey transform is used; other lengths fall
// back to a direct O(n²) DFT, which is fine for the short sequences used
// here (40 BLE bands, small windows). The input is not modified.
func FFT(x []complex128) []complex128 {
	return transform(x, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/n so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	out := transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func transform(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	copy(out, x)
	if n <= 1 {
		return out
	}
	if n&(n-1) == 0 {
		radix2(out, inverse)
		return out
	}
	return dft(x, inverse)
}

// radix2 performs an in-place iterative radix-2 FFT. len(x) must be a power
// of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	logN := bits.TrailingZeros(uint(n))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := x[start+k]
				odd := x[start+k+half] * w
				x[start+k] = even + odd
				x[start+k+half] = even - odd
				w *= wBase
			}
		}
	}
}

// dft is the direct O(n²) transform for arbitrary lengths.
func dft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	out := make([]complex128, n)
	step := sign * 2 * math.Pi / float64(n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			acc += x[t] * cmplx.Exp(complex(0, step*float64(k*t)))
		}
		out[k] = acc
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// ZeroPad returns x extended with zeros to length n. It panics if
// n < len(x).
func ZeroPad(x []complex128, n int) []complex128 {
	if n < len(x) {
		panic(fmt.Sprintf("dsp: ZeroPad target %d < input length %d", n, len(x)))
	}
	out := make([]complex128, n)
	copy(out, x)
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1), computed directly. Used for pulse shaping where
// the sequences are short.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		//lint:ignore floateq sparse convolution skips exactly-zero taps
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}
