package dsp

import (
	"sync"
	"sync/atomic"
)

// GridPool recycles equally-sized Grids so steady-state hot paths (the
// per-fix likelihood pipeline) allocate nothing. Get and Put are safe for
// concurrent use; the Hits/Misses counters feed the engine's Stats.
type GridPool struct {
	W, H int
	// Zero controls whether Get clears recycled grids. Pools whose
	// consumers overwrite every cell they later read (e.g. the polar
	// grids, which are span-filled and span-read) can skip the memclr.
	Zero bool

	hits   atomic.Uint64
	misses atomic.Uint64
	pool   sync.Pool
}

// NewGridPool returns a pool of W×H grids. zero selects whether recycled
// grids are cleared before reuse.
func NewGridPool(w, h int, zero bool) *GridPool {
	return &GridPool{W: w, H: h, Zero: zero}
}

// Get returns a W×H grid, recycled when possible.
func (p *GridPool) Get() *Grid {
	if g, ok := p.pool.Get().(*Grid); ok {
		p.hits.Add(1)
		if p.Zero {
			clear(g.Data)
		}
		return g
	}
	p.misses.Add(1)
	return NewGrid(p.W, p.H)
}

// Put returns a grid to the pool. Grids of foreign dimensions are dropped
// rather than poisoning the pool.
func (p *GridPool) Put(g *Grid) {
	if g == nil || g.W != p.W || g.H != p.H {
		return
	}
	p.pool.Put(g)
}

// Counters returns the cumulative pool hits and misses.
func (p *GridPool) Counters() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}
