package dsp

import (
	"math"
	"testing"
)

func TestGaussianPulseNormalization(t *testing.T) {
	for _, bt := range []float64{0.3, 0.5, 1.0} {
		taps := GaussianPulse(bt, 8, 2)
		var sum float64
		for _, v := range taps {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("BT=%v: taps sum to %v, want 1", bt, sum)
		}
	}
}

func TestGaussianPulseSymmetry(t *testing.T) {
	taps := GaussianPulse(0.5, 8, 3)
	n := len(taps)
	if n != 2*3*8+1 {
		t.Fatalf("len = %d, want %d", n, 2*3*8+1)
	}
	for i := 0; i < n/2; i++ {
		if math.Abs(taps[i]-taps[n-1-i]) > 1e-15 {
			t.Fatalf("asymmetric at %d: %v vs %v", i, taps[i], taps[n-1-i])
		}
	}
	// Peak is at the center and taps decay monotonically away from it.
	mid := n / 2
	for i := 0; i < mid; i++ {
		if taps[i] > taps[i+1] {
			t.Fatalf("not monotonically increasing toward center at %d", i)
		}
	}
}

func TestGaussianPulseWiderBTIsNarrower(t *testing.T) {
	// Higher BT = wider filter bandwidth = narrower impulse response:
	// the center tap of BT=1.0 must exceed that of BT=0.3.
	lo := GaussianPulse(0.3, 8, 3)
	hi := GaussianPulse(1.0, 8, 3)
	if hi[len(hi)/2] <= lo[len(lo)/2] {
		t.Errorf("BT=1.0 center %v should exceed BT=0.3 center %v",
			hi[len(hi)/2], lo[len(lo)/2])
	}
}

func TestGaussianPulsePanics(t *testing.T) {
	cases := []struct {
		bt        float64
		sps, span int
	}{
		{0, 8, 2}, {-1, 8, 2}, {0.5, 0, 2}, {0.5, 8, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GaussianPulse(%v,%d,%d) should panic", c.bt, c.sps, c.span)
				}
			}()
			GaussianPulse(c.bt, c.sps, c.span)
		}()
	}
}

func TestUpsampleNRZ(t *testing.T) {
	out := UpsampleNRZ([]byte{1, 0, 1}, 2)
	want := []float64{1, 1, -1, -1, 1, 1}
	if len(out) != len(want) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestShapeBitsLongRunsSettle(t *testing.T) {
	// The core insight of BLoc §4 (Fig. 4b): long runs of equal bits drive
	// the filtered waveform to the full ±1 level, i.e. the instantaneous
	// frequency settles at f0/f1 and the channel can be measured.
	const sps = 8
	bits := []byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	w := ShapeBits(bits, 0.5, sps, 3)
	if len(w) != len(bits)*sps {
		t.Fatalf("len = %d, want %d", len(w), len(bits)*sps)
	}
	// Middle of the zero-run: settled at -1.
	midZero := w[2*sps+sps/2]
	if math.Abs(midZero+1) > 0.01 {
		t.Errorf("middle of 0-run = %v, want ≈ -1", midZero)
	}
	// Middle of the one-run: settled at +1.
	midOne := w[7*sps+sps/2]
	if math.Abs(midOne-1) > 0.01 {
		t.Errorf("middle of 1-run = %v, want ≈ +1", midOne)
	}
	// The transition region is smooth: no sample overshoots ±1.
	for i, v := range w {
		if math.Abs(v) > 1+1e-9 {
			t.Errorf("overshoot at %d: %v", i, v)
		}
	}
}

func TestShapeBitsAlternatingNeverSettles(t *testing.T) {
	// Fig. 4a: alternating bits through the Gaussian filter never reach the
	// full ±1 level, which is exactly why vanilla BLE traffic cannot be
	// used for channel sounding.
	const sps = 8
	bits := []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	w := ShapeBits(bits, 0.5, sps, 3)
	// Look only at the interior bits (edge extension stabilizes the ends).
	maxAbs := 0.0
	for i := 2 * sps; i < 8*sps; i++ {
		if a := math.Abs(w[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0.95 {
		t.Errorf("alternating bits reached %v, expected to stay below full deviation", maxAbs)
	}
	if maxAbs < 0.2 {
		t.Errorf("alternating bits at %v: filter killed the signal entirely", maxAbs)
	}
}

func TestShapeBitsEmpty(t *testing.T) {
	if got := ShapeBits(nil, 0.5, 8, 2); got != nil {
		t.Errorf("ShapeBits(nil) = %v, want nil", got)
	}
}

func TestShapeBitsConstantInput(t *testing.T) {
	// All-ones input must produce a flat +1 waveform (no edge transients,
	// thanks to edge extension).
	w := ShapeBits([]byte{1, 1, 1, 1}, 0.5, 8, 3)
	for i, v := range w {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("constant input deviates at %d: %v", i, v)
		}
	}
}
