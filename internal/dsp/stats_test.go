package dsp

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("empty/single-element stats should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	even := []float64{1, 2, 3, 4}
	if m := Median(even); m != 2.5 {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	if p := Percentile(even, 0); p != 1 {
		t.Errorf("P0 = %v, want 1", p)
	}
	if p := Percentile(even, 100); p != 4 {
		t.Errorf("P100 = %v, want 4", p)
	}
	if p := Percentile([]float64{10}, 50); p != 10 {
		t.Errorf("single P50 = %v", p)
	}
	// Input must not be modified.
	orig := []float64{5, 1, 3}
	Percentile(orig, 50)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile modified its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentileMonotone(t *testing.T) {
	// Property: percentiles are monotone in p and bounded by min/max.
	r := rand.New(rand.NewPCG(8, 2))
	xs := make([]float64, 57)
	for i := range xs {
		xs[i] = r.NormFloat64() * 10
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev-1e-12 {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		if v < sorted[0]-1e-12 || v > sorted[len(sorted)-1]+1e-12 {
			t.Fatalf("percentile %v out of range at p=%v", v, p)
		}
		prev = v
	}
}

func TestRMS(t *testing.T) {
	if r := RMS([]float64{3, 4, 0, 0}); math.Abs(r-2.5) > 1e-12 {
		t.Errorf("RMS = %v, want 2.5", r)
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) should be 0")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	xs := []float64{3, 1, 2}
	cdf := EmpiricalCDF(xs)
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	wantVals := []float64{1, 2, 3}
	wantFracs := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range cdf {
		if cdf[i].Value != wantVals[i] || math.Abs(cdf[i].Fraction-wantFracs[i]) > 1e-12 {
			t.Errorf("cdf[%d] = %+v", i, cdf[i])
		}
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct{ v, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range tests {
		if got := CDFAt(xs, tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if CDFAt(nil, 1) != 0 {
		t.Error("CDFAt on empty should be 0")
	}
}

func TestEntropy(t *testing.T) {
	// Uniform distribution over n outcomes has entropy log(n).
	if h := Entropy([]float64{1, 1, 1, 1}); math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %v, want log 4", h)
	}
	// A single spike has zero entropy.
	if h := Entropy([]float64{0, 5, 0}); h != 0 {
		t.Errorf("spike entropy = %v, want 0", h)
	}
	// Scaling the weights must not change the entropy.
	a := []float64{0.2, 0.3, 0.5}
	b := []float64{2, 3, 5}
	if math.Abs(Entropy(a)-Entropy(b)) > 1e-12 {
		t.Error("entropy not scale-invariant")
	}
	if Entropy(nil) != 0 || Entropy([]float64{0, 0}) != 0 {
		t.Error("degenerate entropy should be 0")
	}
}

func TestNegentropy(t *testing.T) {
	// Flat → 0; spike → log(n) over the positive support.
	if h := Negentropy([]float64{1, 1, 1, 1}); math.Abs(h) > 1e-12 {
		t.Errorf("flat negentropy = %v, want 0", h)
	}
	// One dominant value among equals: strictly positive.
	h := Negentropy([]float64{10, 1, 1, 1})
	if h <= 0 {
		t.Errorf("peaky negentropy = %v, want > 0", h)
	}
	// Peakier distributions have strictly higher negentropy — this is the
	// ordering BLoc's Eq. 18 depends on (direct path peaky, multipath flat).
	mild := Negentropy([]float64{2, 1, 1, 1})
	sharp := Negentropy([]float64{100, 1, 1, 1})
	if sharp <= mild {
		t.Errorf("negentropy ordering violated: sharp %v <= mild %v", sharp, mild)
	}
	if Negentropy(nil) != 0 || Negentropy([]float64{3}) != 0 {
		t.Error("degenerate negentropy should be 0")
	}
}

func TestNegentropyNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		w := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				w = append(w, math.Abs(math.Mod(x, 1e6)))
			}
		}
		return Negentropy(w) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax([]float64{1, 5, 3, 5}); i != 1 {
		t.Errorf("ArgMax = %d, want 1 (first max)", i)
	}
	if i := ArgMax(nil); i != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", i)
	}
}
