package dsp

import (
	"fmt"
	"math"
)

// GaussianPulse returns the impulse response of the Gaussian pulse-shaping
// filter used by GFSK, sampled at sps samples per symbol and truncated to
// span symbol periods on each side (total length 2·span·sps + 1). bt is the
// bandwidth-time product (BLE uses BT = 0.5). The taps are normalized so
// they sum to 1, which preserves the NRZ levels of long constant runs —
// exactly the property BLoc's channel sounding relies on (§4, Fig. 4b).
func GaussianPulse(bt float64, sps, span int) []float64 {
	if bt <= 0 || sps < 1 || span < 1 {
		panic(fmt.Sprintf("dsp: invalid GaussianPulse(bt=%v, sps=%d, span=%d)", bt, sps, span))
	}
	// Standard GMSK Gaussian filter: h(t) ∝ exp(-t²/(2σ²)) with
	// σ = sqrt(ln 2)/(2π·BT) in units of the symbol period.
	sigma := math.Sqrt(math.Ln2) / (2 * math.Pi * bt)
	n := 2*span*sps + 1
	taps := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		t := (float64(i) - float64(n-1)/2) / float64(sps) // in symbol periods
		taps[i] = math.Exp(-t * t / (2 * sigma * sigma))
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// UpsampleNRZ converts bits to a ±1 NRZ waveform at sps samples per symbol
// (bit 1 → +1, bit 0 → −1).
func UpsampleNRZ(bits []byte, sps int) []float64 {
	out := make([]float64, len(bits)*sps)
	for i, b := range bits {
		v := -1.0
		if b != 0 {
			v = 1.0
		}
		for s := 0; s < sps; s++ {
			out[i*sps+s] = v
		}
	}
	return out
}

// ShapeBits Gaussian-filters the NRZ representation of bits and returns the
// smoothed frequency-deviation waveform (the "filtered bits" of Fig. 4),
// trimmed to len(bits)·sps samples aligned with the input. The filter state
// before the first and after the last bit is extended with the edge values
// so that leading/trailing bits are not distorted by zero padding.
func ShapeBits(bits []byte, bt float64, sps, span int) []float64 {
	if len(bits) == 0 {
		return nil
	}
	taps := GaussianPulse(bt, sps, span)
	nrz := UpsampleNRZ(bits, sps)
	// Extend edges to avoid transients at packet boundaries.
	pad := len(taps) / 2
	ext := make([]float64, len(nrz)+2*pad)
	for i := 0; i < pad; i++ {
		ext[i] = nrz[0]
	}
	copy(ext[pad:], nrz)
	for i := len(nrz) + pad; i < len(ext); i++ {
		ext[i] = nrz[len(nrz)-1]
	}
	full := Convolve(ext, taps)
	// Full convolution of length len(ext)+len(taps)-1; the aligned segment
	// starts at 2*pad (pad from extension + pad from filter delay).
	out := make([]float64, len(nrz))
	copy(out, full[2*pad:2*pad+len(nrz)])
	return out
}
