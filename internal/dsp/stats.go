package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs, or 0 when fewer
// than two samples are present.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (the 50th percentile). It does not modify
// xs. It panics on an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks, matching the convention used for the
// paper's "median" and "90th percentile" error numbers. It does not modify
// xs and panics on an empty slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("dsp: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("dsp: Percentile %v out of [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMS returns the root mean square of xs, or 0 for an empty slice.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// EmpiricalCDF returns the empirical cumulative distribution of xs as a
// sorted list of points, with Fraction = (index+1)/n. It does not modify xs.
func EmpiricalCDF(xs []float64) []CDFPoint {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return out
}

// CDFAt returns the empirical CDF of xs evaluated at v: the fraction of
// samples ≤ v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Entropy returns the Shannon entropy (nats) of the distribution obtained
// by normalizing the non-negative weights w. Zero weights contribute
// nothing; if all weights are zero the entropy is 0.
func Entropy(w []float64) float64 {
	var sum float64
	for _, x := range w {
		if x > 0 {
			sum += x
		}
	}
	//lint:ignore floateq exact-zero mass guard before normalization
	if sum == 0 {
		return 0
	}
	var h float64
	for _, x := range w {
		if x > 0 {
			p := x / sum
			h -= p * math.Log(p)
		}
	}
	return h
}

// Negentropy returns log(n) − Entropy(w) where n is the number of strictly
// positive weights: 0 for a perfectly flat distribution, log(n) for a
// single spike. This is the "peakiness" H used in BLoc's multipath score
// (Eq. 18): the paper's sign convention has direct (peaky) paths at high H
// and diffuse reflections at low H.
func Negentropy(w []float64) float64 {
	n := 0
	for _, x := range w {
		if x > 0 {
			n++
		}
	}
	if n <= 1 {
		if n == 0 {
			return 0
		}
		return 0 // single sample: flat by definition
	}
	return math.Log(float64(n)) - Entropy(w)
}

// ArgMax returns the index of the maximum value in xs, or -1 for an empty
// slice. Ties resolve to the first maximum.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
