package dsp

import (
	"fmt"
	"math"
)

// Grid is a dense row-major 2-D array of float64, used for likelihood maps.
// Cell (ix, iy) is stored at Data[iy*W + ix]. Coordinate semantics (meters
// per cell, origin) are the caller's concern.
type Grid struct {
	W, H int
	Data []float64
}

// NewGrid allocates a zeroed W×H grid. It panics on non-positive
// dimensions.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("dsp: NewGrid(%d, %d) with non-positive dimension", w, h))
	}
	return &Grid{W: w, H: h, Data: make([]float64, w*h)}
}

// At returns the value at (ix, iy). No bounds checking beyond the slice's.
func (g *Grid) At(ix, iy int) float64 { return g.Data[iy*g.W+ix] }

// Set stores v at (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.Data[iy*g.W+ix] = v }

// Add accumulates v into (ix, iy).
func (g *Grid) Add(ix, iy int, v float64) { g.Data[iy*g.W+ix] += v }

// In reports whether (ix, iy) is inside the grid.
func (g *Grid) In(ix, iy int) bool {
	return ix >= 0 && ix < g.W && iy >= 0 && iy < g.H
}

// Max returns the maximum value and its cell. For an all-equal grid the
// first cell wins.
func (g *Grid) Max() (v float64, ix, iy int) {
	idx := ArgMax(g.Data)
	return g.Data[idx], idx % g.W, idx / g.W
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.W, g.H)
	copy(out.Data, g.Data)
	return out
}

// AddGrid accumulates other into g cell-wise. The grids must have identical
// dimensions.
func (g *Grid) AddGrid(other *Grid) {
	if g.W != other.W || g.H != other.H {
		panic(fmt.Sprintf("dsp: AddGrid dimension mismatch %dx%d vs %dx%d",
			g.W, g.H, other.W, other.H))
	}
	for i, v := range other.Data {
		g.Data[i] += v
	}
}

// Normalize scales the grid so its maximum is 1. An all-zero grid is left
// unchanged.
func (g *Grid) Normalize() {
	m, _, _ := g.Max()
	if m <= 0 {
		return
	}
	inv := 1 / m
	for i := range g.Data {
		g.Data[i] *= inv
	}
}

// Peak is a local maximum of a grid.
type Peak struct {
	IX, IY int     // cell indices
	Value  float64 // grid value at the peak
}

// FindPeaks returns the local maxima of the grid whose value is at least
// minFrac times the global maximum, sorted by decreasing value. A cell is a
// local maximum if it is strictly greater than or equal to all of its
// 8-neighbors and strictly greater than at least one (plateau interiors are
// skipped; the first plateau cell encountered in scan order that dominates
// its neighborhood is kept). minSep is the minimum Chebyshev distance in
// cells between reported peaks: of two close peaks the larger survives.
func (g *Grid) FindPeaks(minFrac float64, minSep int) []Peak {
	return g.FindPeaksInto(nil, minFrac, minSep)
}

// FindPeaksInto is FindPeaks appending into dst (which may be nil or a
// recycled buffer), so steady-state callers can keep peak extraction
// allocation-free. The returned slice aliases dst's backing array.
func (g *Grid) FindPeaksInto(dst []Peak, minFrac float64, minSep int) []Peak {
	gmax, _, _ := g.Max()
	return g.FindPeaksRectInto(dst, minFrac, minSep, gmax, 0, 0, g.W, g.H)
}

// FindPeaksRectInto is FindPeaksInto with the candidate scan restricted
// to the half-open cell rect [x0,x1)×[y0,y1) and the acceptance
// threshold anchored to the supplied global maximum gmax instead of a
// full-grid scan. Neighborhood tests still read the whole grid, so a
// peak on the rect edge is judged against its true neighbors. Callers
// that know every above-threshold cell lies inside the rect (e.g. a
// surface painted only inside it) get FindPeaksInto semantics at a
// fraction of the scan cost.
func (g *Grid) FindPeaksRectInto(dst []Peak, minFrac float64, minSep int, gmax float64, x0, y0, x1, y1 int) []Peak {
	candidates := dst[:0]
	if gmax <= 0 {
		return candidates
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > g.W {
		x1 = g.W
	}
	if y1 > g.H {
		y1 = g.H
	}
	thresh := gmax * minFrac
	for iy := y0; iy < y1; iy++ {
		for ix := x0; ix < x1; ix++ {
			v := g.At(ix, iy)
			if v < thresh {
				continue
			}
			isMax := true
			strictlyAbove := false
			for dy := -1; dy <= 1 && isMax; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := ix+dx, iy+dy
					if !g.In(nx, ny) {
						continue
					}
					nv := g.At(nx, ny)
					if nv > v {
						isMax = false
						break
					}
					if nv < v {
						strictlyAbove = true
					}
				}
			}
			if isMax && (strictlyAbove || isolated(g, ix, iy)) {
				candidates = append(candidates, Peak{IX: ix, IY: iy, Value: v})
			}
		}
	}
	// Sort by decreasing value (insertion sort: candidate lists are small).
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0 && candidates[j].Value > candidates[j-1].Value; j-- {
			candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
		}
	}
	if minSep <= 0 {
		return candidates
	}
	// Suppress in place: the kept peaks form a stable prefix of the
	// value-sorted candidates, so compaction preserves the semantics of
	// building a separate output list.
	n := 0
	for _, c := range candidates {
		keep := true
		for _, k := range candidates[:n] {
			dx, dy := c.IX-k.IX, c.IY-k.IY
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx < minSep && dy < minSep {
				keep = false
				break
			}
		}
		if keep {
			candidates[n] = c
			n++
		}
	}
	return candidates[:n]
}

// isolated reports whether the cell has no in-grid neighbors (1×1 grid or
// similar degenerate cases), in which case it counts as a peak.
func isolated(g *Grid, ix, iy int) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if g.In(ix+dx, iy+dy) {
				return false
			}
		}
	}
	return true
}

// NeighborhoodValues collects the grid values inside a circular window of
// the given diameter (in window samples) centered on (ix, iy), sampling
// every stride-th cell: sample (dx, dy) with dx, dy ∈ [-d/2, d/2] lies at
// cell (ix + dx·stride, iy + dy·stride) and is kept when inside the
// inscribed circle and the grid. The paper uses a circular 7×7 window for
// its entropy computation (§7) at an unstated grid resolution; the stride
// scales the window's physical footprint independently of this grid's
// cell size.
func (g *Grid) NeighborhoodValues(ix, iy, diameter, stride int) []float64 {
	return g.NeighborhoodValuesInto(nil, ix, iy, diameter, stride)
}

// NeighborhoodValuesInto is NeighborhoodValues appending into dst (which
// may be nil or a recycled buffer), so steady-state callers can keep the
// peak-scoring loop allocation-free.
func (g *Grid) NeighborhoodValuesInto(dst []float64, ix, iy, diameter, stride int) []float64 {
	if diameter < 1 || stride < 1 {
		return nil
	}
	r := float64(diameter) / 2
	ri := diameter / 2
	out := dst[:0]
	if cap(out) == 0 {
		out = make([]float64, 0, diameter*diameter)
	}
	for dy := -ri; dy <= ri; dy++ {
		for dx := -ri; dx <= ri; dx++ {
			if float64(dx*dx+dy*dy) > r*r {
				continue
			}
			nx, ny := ix+dx*stride, iy+dy*stride
			if g.In(nx, ny) {
				out = append(out, g.At(nx, ny))
			}
		}
	}
	return out
}

// PeakNegentropy returns the negentropy ("peakiness" H of Eq. 18) of the
// likelihood distribution in the circular neighborhood of the given cell.
// The entropy is computed on the window's contrast (values minus the
// window minimum): a smooth likelihood surface always carries a large
// common pedestal under every peak, and entropy of the raw values would
// be near-uniform regardless of shape. Contrast removes the pedestal so
// sharp direct-path peaks score visibly above the diffuse blobs that
// imperfect reflectors produce (§5.4).
func (g *Grid) PeakNegentropy(ix, iy, diameter, stride int) float64 {
	return g.PeakNegentropyScratch(ix, iy, diameter, stride, nil)
}

// PeakNegentropyScratch is PeakNegentropy with a caller-supplied scratch
// buffer (may be nil); the contrast is formed in place over the collected
// window values, so a recycled scratch makes the call allocation-free.
func (g *Grid) PeakNegentropyScratch(ix, iy, diameter, stride int, scratch []float64) float64 {
	vals := g.NeighborhoodValuesInto(scratch, ix, iy, diameter, stride)
	if len(vals) == 0 {
		return 0
	}
	minV := vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
	}
	contrast := vals
	var sum float64
	for i, v := range vals {
		contrast[i] = v - minV
		sum += contrast[i]
	}
	//lint:ignore floateq a perfectly flat window sums to exactly zero
	if sum == 0 {
		return 0 // perfectly flat window: no peak at all
	}
	// log(window size) − entropy: a single spike (entropy 0) scores the
	// window's maximum peakiness, a near-uniform contrast scores ≈ 0.
	return math.Log(float64(len(vals))) - Entropy(contrast)
}

// Bilinear samples the grid at fractional coordinates (x, y) in cell units
// using bilinear interpolation, clamping to the grid edges.
func (g *Grid) Bilinear(x, y float64) float64 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x > float64(g.W-1) {
		x = float64(g.W - 1)
	}
	if y > float64(g.H-1) {
		y = float64(g.H - 1)
	}
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 > g.W-1 {
		x1 = g.W - 1
	}
	if y1 > g.H-1 {
		y1 = g.H - 1
	}
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := g.At(x0, y0)
	v10 := g.At(x1, y0)
	v01 := g.At(x0, y1)
	v11 := g.At(x1, y1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}
