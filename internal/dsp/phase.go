package dsp

import (
	"math"
	"math/cmplx"
)

// Phase returns the argument of z in (-π, π].
func Phase(z complex128) float64 { return cmplx.Phase(z) }

// Unwrap returns a copy of phases (radians) with 2π discontinuities
// removed: whenever consecutive samples jump by more than π the subsequent
// samples are shifted by the appropriate multiple of 2π. This mirrors
// MATLAB/NumPy unwrap and is used to inspect phase-vs-frequency linearity
// (Fig. 8b).
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	offset := 0.0
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		out[i] = phases[i] + offset
	}
	return out
}

// CircularMean returns the mean direction of the given angles (radians),
// i.e. the argument of the sum of unit phasors. It is the correct way to
// average phases that may straddle the ±π wrap. The second return value is
// the resultant length in [0, 1]: 1 means all angles agree, 0 means they
// cancel completely (mean direction meaningless).
func CircularMean(angles []float64) (mean, resultant float64) {
	if len(angles) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, a := range angles {
		s, c := math.Sincos(a)
		sx += c
		sy += s
	}
	n := float64(len(angles))
	r := math.Hypot(sx, sy) / n
	return math.Atan2(sy, sx), r
}

// MeanAmplitudePhase combines a set of complex channel samples into a single
// value by averaging amplitude and phase separately, as BLoc does when
// merging the f0 and f1 measurements of one BLE band into one per-band CSI
// value (§5: "averaging the channel amplitude and channel phase separately
// and combining them into a single channel value"). Phase averaging is
// circular.
func MeanAmplitudePhase(samples []complex128) complex128 {
	if len(samples) == 0 {
		return 0
	}
	var ampSum float64
	phases := make([]float64, len(samples))
	for i, s := range samples {
		ampSum += cmplx.Abs(s)
		phases[i] = cmplx.Phase(s)
	}
	amp := ampSum / float64(len(samples))
	mean, _ := CircularMean(phases)
	return cmplx.Rect(amp, mean)
}

// LinearFit fits y = a + b·x by least squares and returns the intercept a,
// slope b, and the coefficient of determination R². With fewer than two
// points it returns zeros. R² is reported as 1 when the data is perfectly
// constant (zero variance).
func LinearFit(x, y []float64) (a, b, r2 float64) {
	n := len(x)
	if n != len(y) {
		panic("dsp: LinearFit length mismatch")
	}
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	//lint:ignore floateq sxx is exactly zero only for a constant abscissa
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	//lint:ignore floateq syy is exactly zero only for a constant ordinate
	if syy == 0 {
		return a, b, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return a, b, r2
}
