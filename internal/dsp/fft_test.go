package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func complexApprox(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if !complexApprox(v, 1, 1e-12) {
			t.Errorf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestFFTDC(t *testing.T) {
	// FFT of a constant is an impulse at bin 0 of height n.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	X := FFT(x)
	if !complexApprox(X[0], complex(2*float64(n), 0), 1e-9) {
		t.Errorf("X[0] = %v, want %v", X[0], 2*n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(X[k]) > 1e-9 {
			t.Errorf("X[%d] = %v, want 0", k, X[k])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin m concentrates all energy in bin m.
	n, m := 32, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(m*i)/float64(n)))
	}
	X := FFT(x)
	for k := range X {
		want := 0.0
		if k == m {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(X[k])-want) > 1e-9 {
			t.Errorf("|X[%d]| = %v, want %v", k, cmplx.Abs(X[k]), want)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	// The radix-2 path must agree with the direct DFT.
	r := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{1, 2, 4, 8, 64, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		fast := FFT(x)
		slow := dft(x, false)
		for k := range fast {
			if !complexApprox(fast[k], slow[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: radix2 %v != dft %v", n, k, fast[k], slow[k])
			}
		}
	}
}

func TestFFTNonPowerOfTwo(t *testing.T) {
	// Non-power-of-two lengths (like BLE's 37/40 bands) use the DFT path
	// and must still satisfy Parseval's theorem.
	r := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{3, 37, 40} {
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := FFT(x)
		var freqEnergy float64
		for _, v := range X {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
			t.Errorf("n=%d: Parseval violated: %v vs %v", n, timeEnergy, freqEnergy)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 4))
	for _, n := range []int{1, 2, 7, 16, 37, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if !complexApprox(x[i], y[i], 1e-9) {
				t.Fatalf("n=%d: IFFT(FFT(x))[%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	n := 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(r.NormFloat64(), r.NormFloat64())
		b[i] = complex(r.NormFloat64(), r.NormFloat64())
		sum[i] = 2*a[i] + 3i*b[i]
	}
	A, B, S := FFT(a), FFT(b), FFT(sum)
	for k := 0; k < n; k++ {
		if !complexApprox(S[k], 2*A[k]+3i*B[k], 1e-8) {
			t.Fatalf("linearity violated at bin %d", k)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2i, 3, 4i, 5, 6i, 7, 8i}
	orig := make([]complex128, len(x))
	copy(orig, x)
	FFT(x)
	IFFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {37, 64}, {64, 64}, {65, 128},
	}
	for _, tc := range tests {
		if got := NextPow2(tc.in); got != tc.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestZeroPad(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := ZeroPad(x, 6)
	if len(y) != 6 {
		t.Fatalf("len = %d", len(y))
	}
	for i := 0; i < 3; i++ {
		if y[i] != x[i] {
			t.Errorf("y[%d] = %v", i, y[i])
		}
	}
	for i := 3; i < 6; i++ {
		if y[i] != 0 {
			t.Errorf("y[%d] = %v, want 0", i, y[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ZeroPad shrink should panic")
		}
	}()
	ZeroPad(x, 2)
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty convolution should be nil")
	}
	// Convolution with a unit impulse is the identity.
	a := []float64{3, -1, 4, 1, -5}
	id := Convolve(a, []float64{1})
	for i := range a {
		if id[i] != a[i] {
			t.Fatalf("identity convolution differs at %d", i)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	r := rand.New(rand.NewPCG(1, 1))
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
