package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestUnwrap(t *testing.T) {
	// A linear phase ramp that wraps at ±π must unwrap to a straight line.
	n := 50
	slope := 0.9 // radians per step; wraps several times over 50 steps
	wrapped := make([]float64, n)
	for i := range wrapped {
		raw := slope * float64(i)
		wrapped[i] = math.Atan2(math.Sin(raw), math.Cos(raw))
	}
	un := Unwrap(wrapped)
	for i := range un {
		want := slope * float64(i)
		if math.Abs(un[i]-want) > 1e-9 {
			t.Fatalf("Unwrap[%d] = %v, want %v", i, un[i], want)
		}
	}
}

func TestUnwrapEmptyAndSingle(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Error("Unwrap(nil) should be empty")
	}
	if got := Unwrap([]float64{1.5}); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("Unwrap single = %v", got)
	}
}

func TestUnwrapPreservesDifferencesMod2Pi(t *testing.T) {
	// Property: unwrapped[i] ≡ wrapped[i] (mod 2π).
	r := rand.New(rand.NewPCG(2, 8))
	phases := make([]float64, 100)
	for i := range phases {
		phases[i] = (r.Float64() - 0.5) * 2 * math.Pi
	}
	un := Unwrap(phases)
	for i := range phases {
		k := (un[i] - phases[i]) / (2 * math.Pi)
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("sample %d shifted by non-multiple of 2π: %v", i, un[i]-phases[i])
		}
	}
	// And consecutive differences are at most π in magnitude.
	for i := 1; i < len(un); i++ {
		if math.Abs(un[i]-un[i-1]) > math.Pi+1e-9 {
			t.Fatalf("jump at %d: %v", i, un[i]-un[i-1])
		}
	}
}

func TestCircularMean(t *testing.T) {
	// Angles straddling the wrap: mean of +179° and -179° is 180°, not 0°.
	a := []float64{math.Pi - 0.01, -math.Pi + 0.01}
	mean, r := CircularMean(a)
	if math.Abs(math.Abs(mean)-math.Pi) > 1e-9 {
		t.Errorf("mean = %v, want ±π", mean)
	}
	if r < 0.99 {
		t.Errorf("resultant = %v, want ≈1", r)
	}
	// Opposite angles cancel.
	_, r2 := CircularMean([]float64{0, math.Pi})
	if r2 > 1e-9 {
		t.Errorf("opposite angles resultant = %v, want 0", r2)
	}
	// Empty input.
	m0, r0 := CircularMean(nil)
	if m0 != 0 || r0 != 0 {
		t.Error("empty CircularMean should be (0, 0)")
	}
}

func TestCircularMeanMatchesArithmeticWhenNoWrap(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 1))
	for trial := 0; trial < 50; trial++ {
		center := (r.Float64() - 0.5) * 2 // well inside (-π, π)
		angles := make([]float64, 20)
		for i := range angles {
			angles[i] = center + (r.Float64()-0.5)*0.2
		}
		mean, res := CircularMean(angles)
		arith := Mean(angles)
		if math.Abs(mean-arith) > 1e-3 {
			t.Fatalf("circular %v vs arithmetic %v", mean, arith)
		}
		if res < 0.99 {
			t.Fatalf("tight cluster should have resultant ≈ 1, got %v", res)
		}
	}
}

func TestMeanAmplitudePhase(t *testing.T) {
	// Two samples with equal phase: amplitude averages, phase preserved.
	s := []complex128{cmplx.Rect(2, 0.5), cmplx.Rect(4, 0.5)}
	got := MeanAmplitudePhase(s)
	if math.Abs(cmplx.Abs(got)-3) > 1e-9 {
		t.Errorf("amplitude = %v, want 3", cmplx.Abs(got))
	}
	if math.Abs(cmplx.Phase(got)-0.5) > 1e-9 {
		t.Errorf("phase = %v, want 0.5", cmplx.Phase(got))
	}
	// Phases straddling the wrap must average circularly.
	s2 := []complex128{cmplx.Rect(1, math.Pi-0.1), cmplx.Rect(1, -math.Pi+0.1)}
	got2 := MeanAmplitudePhase(s2)
	if math.Abs(math.Abs(cmplx.Phase(got2))-math.Pi) > 1e-9 {
		t.Errorf("wrapped phase mean = %v, want ±π", cmplx.Phase(got2))
	}
	if MeanAmplitudePhase(nil) != 0 {
		t.Error("empty MeanAmplitudePhase should be 0")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (1, 2)", a, b)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("r2 = %v, want 1", r2)
	}
}

func TestLinearFitNoise(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 5 - 0.25*x[i] + r.NormFloat64()*0.5
	}
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-5) > 0.3 || math.Abs(b+0.25) > 0.01 {
		t.Errorf("noisy fit = (%v, %v), want ≈(5, -0.25)", a, b)
	}
	if r2 < 0.95 {
		t.Errorf("r2 = %v, want > 0.95", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// Constant y: slope 0, r2 = 1 (perfectly explained).
	a, b, r2 := LinearFit([]float64{0, 1, 2}, []float64{7, 7, 7})
	if a != 7 || b != 0 || r2 != 1 {
		t.Errorf("constant fit = (%v, %v, %v)", a, b, r2)
	}
	// Constant x: no slope recoverable.
	_, b2, _ := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3})
	if b2 != 0 {
		t.Errorf("vertical fit slope = %v, want 0", b2)
	}
	// Fewer than 2 points.
	if a, b, r2 := LinearFit([]float64{1}, []float64{2}); a != 0 || b != 0 || r2 != 0 {
		t.Error("single-point fit should be zeros")
	}
}

func TestPhaseProperty(t *testing.T) {
	// Phase of a rect-constructed value round-trips.
	f := func(mag, ang float64) bool {
		if math.IsNaN(mag) || math.IsInf(mag, 0) || math.IsNaN(ang) || math.IsInf(ang, 0) {
			return true
		}
		mag = math.Abs(math.Mod(mag, 1e3)) + 0.1
		ang = math.Mod(ang, math.Pi*0.999)
		z := cmplx.Rect(mag, ang)
		return math.Abs(Phase(z)-ang) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
