package dsp

import (
	"math"
	"testing"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Data) != 12 {
		t.Fatalf("bad grid: %+v", g)
	}
	g.Set(2, 1, 5)
	if g.At(2, 1) != 5 {
		t.Error("Set/At roundtrip failed")
	}
	g.Add(2, 1, 2)
	if g.At(2, 1) != 7 {
		t.Error("Add failed")
	}
	if !g.In(0, 0) || !g.In(3, 2) || g.In(4, 0) || g.In(0, 3) || g.In(-1, 0) {
		t.Error("In wrong")
	}
	v, ix, iy := g.Max()
	if v != 7 || ix != 2 || iy != 1 {
		t.Errorf("Max = (%v, %d, %d)", v, ix, iy)
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v) should panic", dims)
				}
			}()
			NewGrid(dims[0], dims[1])
		}()
	}
}

func TestGridCloneAndAddGrid(t *testing.T) {
	a := NewGrid(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	b := a.Clone()
	b.Set(0, 0, 10)
	if a.At(0, 0) != 1 {
		t.Error("Clone is not deep")
	}
	a.AddGrid(b)
	if a.At(0, 0) != 11 || a.At(1, 1) != 4 {
		t.Errorf("AddGrid wrong: %v, %v", a.At(0, 0), a.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("AddGrid dimension mismatch should panic")
		}
	}()
	a.AddGrid(NewGrid(3, 3))
}

func TestGridNormalize(t *testing.T) {
	g := NewGrid(2, 2)
	g.Set(0, 0, 2)
	g.Set(1, 0, 4)
	g.Normalize()
	if g.At(1, 0) != 1 || g.At(0, 0) != 0.5 {
		t.Errorf("Normalize wrong: %v %v", g.At(0, 0), g.At(1, 0))
	}
	z := NewGrid(2, 2)
	z.Normalize() // must not panic or produce NaN
	if z.At(0, 0) != 0 {
		t.Error("zero grid changed by Normalize")
	}
}

func TestFindPeaksSimple(t *testing.T) {
	g := NewGrid(10, 10)
	g.Set(2, 2, 10)
	g.Set(7, 7, 8)
	g.Set(7, 8, 3) // shoulder of the second peak
	peaks := g.FindPeaks(0.1, 0)
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks, want 2: %+v", len(peaks), peaks)
	}
	if peaks[0].IX != 2 || peaks[0].IY != 2 || peaks[0].Value != 10 {
		t.Errorf("first peak = %+v", peaks[0])
	}
	if peaks[1].IX != 7 || peaks[1].IY != 7 {
		t.Errorf("second peak = %+v", peaks[1])
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	g := NewGrid(10, 10)
	g.Set(2, 2, 10)
	g.Set(7, 7, 0.5) // below 10% of max
	peaks := g.FindPeaks(0.1, 0)
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks, want 1 (threshold should drop the small one)", len(peaks))
	}
}

func TestFindPeaksMinSep(t *testing.T) {
	g := NewGrid(20, 20)
	g.Set(5, 5, 10)
	g.Set(6, 6, 9) // within separation of the bigger peak... but adjacent
	g.Set(15, 15, 8)
	peaks := g.FindPeaks(0.1, 3)
	// (6,6) is adjacent to (5,5) so (5,5) dominates it as a neighbor; even
	// if it survived local-max detection, minSep must drop it.
	for _, p := range peaks {
		if p.IX == 6 && p.IY == 6 {
			t.Errorf("peak at (6,6) should have been suppressed")
		}
	}
	found := map[[2]int]bool{}
	for _, p := range peaks {
		found[[2]int{p.IX, p.IY}] = true
	}
	if !found[[2]int{5, 5}] || !found[[2]int{15, 15}] {
		t.Errorf("expected peaks at (5,5) and (15,15): %+v", peaks)
	}
}

func TestFindPeaksEmptyGrid(t *testing.T) {
	g := NewGrid(5, 5)
	if peaks := g.FindPeaks(0.1, 0); peaks != nil {
		t.Errorf("zero grid should have no peaks, got %+v", peaks)
	}
}

func TestFindPeaksSortedByValue(t *testing.T) {
	g := NewGrid(30, 30)
	g.Set(3, 3, 5)
	g.Set(10, 10, 9)
	g.Set(20, 20, 7)
	peaks := g.FindPeaks(0.01, 0)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i].Value > peaks[i-1].Value {
			t.Errorf("peaks not sorted: %+v", peaks)
		}
	}
}

func TestNeighborhoodValuesCircular(t *testing.T) {
	g := NewGrid(20, 20)
	for i := range g.Data {
		g.Data[i] = 1
	}
	// A 7x7 circular window has fewer cells than the full 49 square
	// (corners excluded) but more than the inscribed 5x5.
	vals := g.NeighborhoodValues(10, 10, 7, 1)
	if len(vals) >= 49 || len(vals) <= 25 {
		t.Errorf("circular 7x7 window has %d cells, expected between 26 and 48", len(vals))
	}
	// Window at a corner is clipped.
	corner := g.NeighborhoodValues(0, 0, 7, 1)
	if len(corner) >= len(vals) {
		t.Errorf("corner window (%d) should be smaller than center window (%d)",
			len(corner), len(vals))
	}
	if g.NeighborhoodValues(5, 5, 0, 1) != nil {
		t.Error("zero-diameter window should be nil")
	}
}

func TestPeakNegentropyOrdersPeakVsFlat(t *testing.T) {
	// The discriminator at the heart of §5.4: a peaky neighborhood must
	// have higher H than a diffuse one.
	g := NewGrid(30, 30)
	// Diffuse blob around (7, 7).
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			g.Set(7+dx, 7+dy, 5)
		}
	}
	// Sharp peak at (20, 20).
	g.Set(20, 20, 35)
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			if dx != 0 || dy != 0 {
				g.Set(20+dx, 20+dy, 0.5)
			}
		}
	}
	flat := g.PeakNegentropy(7, 7, 7, 1)
	sharp := g.PeakNegentropy(20, 20, 7, 1)
	if sharp <= flat {
		t.Errorf("sharp H (%v) should exceed flat H (%v)", sharp, flat)
	}
}

func TestBilinear(t *testing.T) {
	g := NewGrid(3, 3)
	g.Set(0, 0, 0)
	g.Set(1, 0, 2)
	g.Set(0, 1, 4)
	g.Set(1, 1, 6)
	// Exact cell centers.
	if v := g.Bilinear(1, 0); v != 2 {
		t.Errorf("Bilinear(1,0) = %v, want 2", v)
	}
	// Midpoint of the four cells: average.
	if v := g.Bilinear(0.5, 0.5); math.Abs(v-3) > 1e-12 {
		t.Errorf("Bilinear(0.5,0.5) = %v, want 3", v)
	}
	// Clamping beyond the edges.
	if v := g.Bilinear(-5, -5); v != g.At(0, 0) {
		t.Errorf("clamped Bilinear = %v", v)
	}
	if v := g.Bilinear(99, 99); v != g.At(2, 2) {
		t.Errorf("clamped Bilinear = %v", v)
	}
}

func BenchmarkFindPeaks(b *testing.B) {
	g := NewGrid(120, 100)
	for i := range g.Data {
		g.Data[i] = math.Sin(float64(i)*0.01) + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindPeaks(0.3, 3)
	}
}
