package dsp

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func TestJacobiSymmetricKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3 with eigenvectors
	// (1,-1)/√2 and (1,1)/√2.
	eig, v, err := JacobiSymmetric([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-12 || math.Abs(eig[1]-3) > 1e-12 {
		t.Fatalf("eig = %v, want [1 3]", eig)
	}
	// Column 0 ∝ (1,-1).
	if math.Abs(v[0][0]+v[1][0]) > 1e-9 {
		t.Errorf("eigvec 0 = (%v, %v), want ∝ (1,-1)", v[0][0], v[1][0])
	}
	// Column 1 ∝ (1,1).
	if math.Abs(v[0][1]-v[1][1]) > 1e-9 {
		t.Errorf("eigvec 1 = (%v, %v), want ∝ (1,1)", v[0][1], v[1][1])
	}
}

func TestJacobiSymmetricReconstruction(t *testing.T) {
	// A = V Λ Vᵀ must reconstruct the input, and V must be orthonormal.
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(7)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				a[i][j], a[j][i] = x, x
			}
		}
		eig, v, err := JacobiSymmetric(a)
		if err != nil {
			t.Fatal(err)
		}
		// Ascending order.
		for k := 1; k < n; k++ {
			if eig[k] < eig[k-1]-1e-12 {
				t.Fatalf("eigenvalues not ascending: %v", eig)
			}
		}
		// Orthonormal columns.
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += v[i][p] * v[i][q]
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("trial %d: VᵀV[%d][%d] = %v", trial, p, q, dot)
				}
			}
		}
		// Reconstruction.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += v[i][k] * eig[k] * v[j][k]
				}
				if math.Abs(sum-a[i][j]) > 1e-8 {
					t.Fatalf("trial %d: reconstruction (%d,%d): %v != %v",
						trial, i, j, sum, a[i][j])
				}
			}
		}
	}
}

func TestJacobiSymmetricErrors(t *testing.T) {
	if _, _, err := JacobiSymmetric(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, _, err := JacobiSymmetric([][]float64{{1, 2}}); err == nil {
		t.Error("non-square should fail")
	}
	if _, _, err := JacobiSymmetric([][]float64{{1, 2}, {3, 1}}); err == nil {
		t.Error("asymmetric should fail")
	}
	// Zero matrix: all zero eigenvalues, identity eigenvectors.
	eig, v, err := JacobiSymmetric([][]float64{{0, 0}, {0, 0}})
	if err != nil || eig[0] != 0 || eig[1] != 0 || v[0][0] != 1 {
		t.Errorf("zero matrix: %v %v %v", eig, v, err)
	}
}

func TestHermitianEigenKnown(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 1 and 3.
	a := [][]complex128{{2, 1i}, {-1i, 2}}
	eig, err := HermitianEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-9 || math.Abs(eig[1]-3) > 1e-9 {
		t.Errorf("eig = %v, want [1 3]", eig)
	}
	if _, err := HermitianEigen([][]complex128{{1, 2}, {3, 1}}); err == nil {
		t.Error("non-Hermitian should fail")
	}
}

func TestHermitianNoiseProjector(t *testing.T) {
	// Construct R = σ_s² s sᴴ + σ_n² I with a known signal vector s: the
	// 1-dim signal subspace is span(s), the noise projector must satisfy
	// P s ≈ 0 and P w = w for any w ⊥ s.
	n := 4
	s := []complex128{1, cmplx.Rect(1, 0.7), cmplx.Rect(1, 1.4), cmplx.Rect(1, 2.1)}
	r := make([][]complex128, n)
	for i := range r {
		r[i] = make([]complex128, n)
		for j := range r[i] {
			r[i][j] = 5 * s[i] * cmplx.Conj(s[j])
			if i == j {
				r[i][j] += 0.1
			}
		}
	}
	P, err := HermitianNoiseProjector(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P is Hermitian and idempotent.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cmplx.Abs(P[i][j]-cmplx.Conj(P[j][i])) > 1e-8 {
				t.Fatalf("projector not Hermitian at (%d,%d)", i, j)
			}
			var pp complex128
			for k := 0; k < n; k++ {
				pp += P[i][k] * P[k][j]
			}
			if cmplx.Abs(pp-P[i][j]) > 1e-7 {
				t.Fatalf("projector not idempotent at (%d,%d): %v vs %v", i, j, pp, P[i][j])
			}
		}
	}
	// P annihilates the signal vector.
	var psNorm float64
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += P[i][j] * s[j]
		}
		psNorm += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	if math.Sqrt(psNorm) > 1e-7 {
		t.Errorf("‖P·s‖ = %v, want ≈ 0", math.Sqrt(psNorm))
	}
	// Trace(P) = noise dimension = n − 1.
	var tr complex128
	for i := 0; i < n; i++ {
		tr += P[i][i]
	}
	if math.Abs(real(tr)-float64(n-1)) > 1e-7 || math.Abs(imag(tr)) > 1e-9 {
		t.Errorf("trace(P) = %v, want %d", tr, n-1)
	}
}

func TestHermitianNoiseProjectorValidation(t *testing.T) {
	a := [][]complex128{{1, 0}, {0, 1}}
	if _, err := HermitianNoiseProjector(a, -1); err == nil {
		t.Error("negative signal dims should fail")
	}
	if _, err := HermitianNoiseProjector(a, 3); err == nil {
		t.Error("signal dims > n should fail")
	}
	// signalDims = n → zero projector; signalDims = 0 → identity.
	P0, err := HermitianNoiseProjector(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(P0[0][0]) > 1e-9 {
		t.Error("full signal space should give zero projector")
	}
	PI, err := HermitianNoiseProjector(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(PI[0][0]-1) > 1e-9 || cmplx.Abs(PI[0][1]) > 1e-9 {
		t.Error("zero signal space should give identity projector")
	}
}
