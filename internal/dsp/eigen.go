package dsp

import (
	"fmt"
	"math"
)

// Eigensystem machinery for MUSIC-style super-resolution (the class of
// algorithm behind ArrayTrack/SpotFi, §9.3): a cyclic Jacobi solver for
// real symmetric matrices and a complex Hermitian noise-subspace
// projector built on the standard real embedding
//
//	A = B + iC  (Hermitian)  ↦  M = [[B, −C], [C, B]]  (symmetric),
//
// whose spectrum duplicates A's and whose eigenspaces are closed under
// the complex structure, so the projector onto any eigenspace of A can be
// read off the corresponding real projector.

// JacobiSymmetric diagonalizes a real symmetric matrix with cyclic Jacobi
// rotations, returning the eigenvalues (ascending) and the matching
// orthonormal eigenvectors as columns of V (V[i][k] is component i of
// eigenvector k). The input is not modified. It returns an error for
// empty, non-square or non-symmetric input.
func JacobiSymmetric(a [][]float64) (eig []float64, v [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("dsp: empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("dsp: matrix is not square")
		}
	}
	var maxAbs float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(a[i][j] - a[j][i]); d > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("dsp: matrix is not symmetric at (%d,%d)", i, j)
			}
			maxAbs = math.Max(maxAbs, math.Abs(a[i][j]))
		}
	}
	// Working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v = make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	//lint:ignore floateq an exactly zero matrix short-circuits to zero eigenvalues
	if maxAbs == 0 {
		eig = make([]float64, n)
		return eig, v, nil
	}
	tol := 1e-14 * maxAbs
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += m[p][q] * m[p][q]
			}
		}
		if math.Sqrt(off) < tol {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < tol/float64(n) {
					continue
				}
				// Rotation angle zeroing m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	eig = make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m[i][i]
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && eig[idx[j]] < eig[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedEig := make([]float64, n)
	sortedV := make([][]float64, n)
	for i := range sortedV {
		sortedV[i] = make([]float64, n)
	}
	for k, src := range idx {
		sortedEig[k] = eig[src]
		for i := 0; i < n; i++ {
			sortedV[i][k] = v[i][src]
		}
	}
	return sortedEig, sortedV, nil
}

// HermitianEigen returns the eigenvalues (ascending) of a complex
// Hermitian matrix via the real embedding; each eigenvalue of A appears
// once (the embedding's duplicates are collapsed pairwise).
func HermitianEigen(a [][]complex128) ([]float64, error) {
	m, err := embedHermitian(a)
	if err != nil {
		return nil, err
	}
	eig, _, err := JacobiSymmetric(m)
	if err != nil {
		return nil, err
	}
	// Eigenvalues come in duplicated pairs; take every second one.
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = (eig[2*i] + eig[2*i+1]) / 2
	}
	return out, nil
}

// HermitianNoiseProjector returns the projector onto the noise subspace
// of a Hermitian covariance matrix: the span of the n − signalDims
// eigenvectors with the smallest eigenvalues. This is the E_n·E_nᴴ of
// MUSIC. signalDims must be in [0, n].
func HermitianNoiseProjector(a [][]complex128, signalDims int) ([][]complex128, error) {
	n := len(a)
	if signalDims < 0 || signalDims > n {
		return nil, fmt.Errorf("dsp: signal dimension %d outside [0,%d]", signalDims, n)
	}
	m, err := embedHermitian(a)
	if err != nil {
		return nil, err
	}
	eig, v, err := JacobiSymmetric(m)
	if err != nil {
		return nil, err
	}
	_ = eig
	// The 2n real eigenvectors are sorted ascending; the noise subspace
	// of A (dimension n − signalDims) corresponds to the first
	// 2(n − signalDims) real eigenvectors. Their real projector P_real
	// has the complex structure [[P1, −P2], [P2, P1]], so the complex
	// projector is P1 + iP2 — and summing vvᵀ over the real basis yields
	// exactly 2·P_real's blocks halved... Concretely:
	//   P_complex[k][l] = P_real[k][l] + i·P_real[n+k][l].
	noiseDim := 2 * (n - signalDims)
	P := make([][]float64, 2*n)
	for i := range P {
		P[i] = make([]float64, 2*n)
	}
	for e := 0; e < noiseDim; e++ {
		for i := 0; i < 2*n; i++ {
			vi := v[i][e]
			//lint:ignore floateq skip eigenvector components that are exactly zero
			if vi == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				P[i][j] += vi * v[j][e]
			}
		}
	}
	out := make([][]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = make([]complex128, n)
		for l := 0; l < n; l++ {
			out[k][l] = complex(P[k][l], P[n+k][l])
		}
	}
	return out, nil
}

// embedHermitian builds the real symmetric embedding [[B, −C], [C, B]] of
// a Hermitian A = B + iC, validating Hermitian symmetry.
func embedHermitian(a [][]complex128) ([][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("dsp: empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("dsp: matrix is not square")
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := a[i][j] - complex(real(a[j][i]), -imag(a[j][i]))
			if math.Hypot(real(d), imag(d)) > 1e-9*(1+math.Hypot(real(a[i][j]), imag(a[i][j]))) {
				return nil, fmt.Errorf("dsp: matrix is not Hermitian at (%d,%d)", i, j)
			}
		}
	}
	m := make([][]float64, 2*n)
	for i := range m {
		m[i] = make([]float64, 2*n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b, c := real(a[i][j]), imag(a[i][j])
			m[i][j] = b
			m[i][n+j] = -c
			m[n+i][j] = c
			m[n+i][n+j] = b
		}
	}
	return m, nil
}
