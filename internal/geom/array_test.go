package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewArrayCentering(t *testing.T) {
	a := NewArray(Pt(2.5, 0), Vec(1, 0), 4, 0.0625)
	c := a.Center()
	if !approx(c.X, 2.5, eps) || !approx(c.Y, 0, eps) {
		t.Errorf("Center = %v, want (2.5, 0)", c)
	}
	// Elements are evenly spaced along the axis.
	for j := 0; j < a.N-1; j++ {
		d := a.Antenna(j).Dist(a.Antenna(j + 1))
		if !approx(d, 0.0625, eps) {
			t.Errorf("spacing between %d and %d = %v", j, j+1, d)
		}
	}
}

func TestArrayBroadside(t *testing.T) {
	// Array along +X has broadside +Y.
	a := NewArray(Pt(0, 0), Vec(1, 0), 4, 0.06)
	b := a.Broadside()
	if !approx(b.X, 0, eps) || !approx(b.Y, 1, eps) {
		t.Errorf("Broadside = %v, want <0,1>", b)
	}
}

func TestArrayAngleTo(t *testing.T) {
	a := NewArray(Pt(0, 0), Vec(1, 0), 4, 0.06)
	tests := []struct {
		p    Point
		want float64 // radians from broadside
	}{
		{Pt(0, 10), 0},              // straight ahead
		{Pt(10, 10), math.Pi / 4},   // 45° toward +axis
		{Pt(-10, 10), -math.Pi / 4}, // 45° toward -axis
		{Pt(10, 0), math.Pi / 2},    // endfire
		{Pt(0, -10), math.Pi},       // behind (wrapped)
		{Pt(10, 10*math.Sqrt(3)), math.Pi / 6},
	}
	for _, tc := range tests {
		got := a.AngleTo(tc.p)
		if !approx(math.Abs(got), math.Abs(tc.want), 1e-9) {
			t.Errorf("AngleTo(%v) = %v rad, want %v", tc.p, got, tc.want)
		}
		if tc.want != 0 && tc.want != math.Pi && math.Signbit(got) != math.Signbit(tc.want) {
			t.Errorf("AngleTo(%v) sign = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestArrayExtraPathFarField(t *testing.T) {
	// In the far field, ExtraPath(p, j) → j · spacing · sin(θ).
	const l = 0.0625
	a := NewArray(Pt(0, 0), Vec(1, 0), 4, l)
	r := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 100; i++ {
		theta := (r.Float64() - 0.5) * math.Pi * 0.9 // avoid exact endfire
		dist := 500.0 + r.Float64()*500              // very far field
		p := a.Center().Add(a.Broadside().Scale(dist * math.Cos(theta))).
			Add(a.Axis.Scale(dist * math.Sin(theta)))
		for j := 1; j < a.N; j++ {
			got := a.ExtraPath(p, j)
			want := -float64(j) * l * math.Sin(theta)
			if math.Abs(got-want) > 1e-4 {
				t.Fatalf("far-field ExtraPath(j=%d, θ=%.2f) = %v, want %v",
					j, theta, got, want)
			}
		}
	}
}

func TestArrayAntennaPanics(t *testing.T) {
	a := NewArray(Pt(0, 0), Vec(1, 0), 4, 0.06)
	for _, j := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Antenna(%d) should panic", j)
				}
			}()
			a.Antenna(j)
		}()
	}
}

func TestArrayWithN(t *testing.T) {
	a := NewArray(Pt(0, 0), Vec(0, 1), 4, 0.06)
	b := a.WithN(3)
	if b.N != 3 {
		t.Fatalf("WithN(3).N = %d", b.N)
	}
	// Remaining elements keep their positions.
	for j := 0; j < 3; j++ {
		if a.Antenna(j) != b.Antenna(j) {
			t.Errorf("antenna %d moved after WithN", j)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WithN(0) should panic")
			}
		}()
		a.WithN(0)
	}()
}

func TestArrayAntennasMatchesAntenna(t *testing.T) {
	a := NewArray(Pt(1, 2), Vec(3, 4), 5, 0.1)
	pts := a.Antennas()
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	for j, p := range pts {
		if p != a.Antenna(j) {
			t.Errorf("Antennas()[%d] = %v != Antenna(%d) = %v", j, p, j, a.Antenna(j))
		}
	}
}
