package geom

import (
	"fmt"
	"math"
)

// Array is a uniform linear antenna array: N antenna elements spaced
// Spacing meters apart along Axis, the first element (index 0) at Origin.
//
// The broadside direction — the array normal, from which angles of arrival
// are measured (Fig. 2 of the paper) — is Axis rotated +90°, so an array
// laid out left-to-right along a south wall has broadside pointing north
// into the room.
type Array struct {
	Origin  Point   // position of antenna 0
	Axis    Vector  // unit vector from antenna j to antenna j+1
	N       int     // number of antenna elements
	Spacing float64 // inter-element spacing, meters
}

// NewArray constructs an Array centered at center, with n elements spaced l
// meters apart along axis (normalized internally). Antenna 0 sits at the
// "negative axis" end so the element positions are symmetric around center.
func NewArray(center Point, axis Vector, n int, l float64) Array {
	u := axis.Unit()
	half := float64(n-1) / 2 * l
	return Array{
		Origin:  center.Add(u.Scale(-half)),
		Axis:    u,
		N:       n,
		Spacing: l,
	}
}

// Broadside returns the unit normal of the array: the direction of θ = 0.
func (a Array) Broadside() Vector { return a.Axis.Perp() }

// Antenna returns the position of element j. It panics if j is out of
// range.
func (a Array) Antenna(j int) Point {
	if j < 0 || j >= a.N {
		panic(fmt.Sprintf("geom: antenna index %d out of range [0,%d)", j, a.N))
	}
	return a.Origin.Add(a.Axis.Scale(float64(j) * a.Spacing))
}

// Antennas returns the positions of all N elements.
func (a Array) Antennas() []Point {
	out := make([]Point, a.N)
	for j := 0; j < a.N; j++ {
		out[j] = a.Antenna(j)
	}
	return out
}

// Center returns the geometric center of the array.
func (a Array) Center() Point {
	return a.Origin.Add(a.Axis.Scale(float64(a.N-1) / 2 * a.Spacing))
}

// AngleTo returns the angle of arrival of a signal from p, measured from
// the array broadside: θ ∈ [-π/2, π/2] when p is in front of the array,
// |θ| > π/2 when it is behind. Positive θ is toward +Axis.
func (a Array) AngleTo(p Point) float64 {
	u := p.Sub(a.Center()).Unit()
	return math.Atan2(u.Dot(a.Axis), u.Dot(a.Broadside()))
}

// ExtraPath returns the exact additional distance from p to element j
// compared to element 0: |p − antenna_j| − |p − antenna_0|. In the far
// field this approaches −j·Spacing·sin(θ): with positive θ toward +Axis,
// higher-indexed elements sit closer to the target, so their path shrinks.
func (a Array) ExtraPath(p Point, j int) float64 {
	return p.Dist(a.Antenna(j)) - p.Dist(a.Antenna(0))
}

// WithN returns a copy of the array truncated to the first n elements.
// It panics if n is not in [1, N].
func (a Array) WithN(n int) Array {
	if n < 1 || n > a.N {
		panic(fmt.Sprintf("geom: cannot truncate %d-element array to %d", a.N, n))
	}
	b := a
	b.N = n
	return b
}
