package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// clampFinite maps arbitrary quick.Check inputs (which include ±Inf, NaN and
// 1e308-scale values) into a numerically sane range for geometry properties.
func clampFinite(x, lim float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, lim)
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -3), Pt(0, 3), 6},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !approx(got, tc.want, eps) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.DistSq(tc.q); !approx(got, tc.want*tc.want, eps) {
			t.Errorf("DistSq(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestPointLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, -4)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	mid := p.Lerp(q, 0.5)
	if !approx(mid.X, 5, eps) || !approx(mid.Y, -2, eps) {
		t.Errorf("Lerp(0.5) = %v, want (5,-2)", mid)
	}
}

func TestVectorOps(t *testing.T) {
	v, w := Vec(3, 4), Vec(-1, 2)
	if got := v.Add(w); got != Vec(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != Vec(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); !approx(got, 5, eps) {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := v.Cross(w); !approx(got, 10, eps) {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := v.Norm(); !approx(got, 5, eps) {
		t.Errorf("Norm = %v, want 5", got)
	}
	u := v.Unit()
	if !approx(u.Norm(), 1, eps) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	if z := Vec(0, 0).Unit(); z != Vec(0, 0) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestVectorPerpAndRotate(t *testing.T) {
	v := Vec(1, 0)
	if got := v.Perp(); !approx(got.X, 0, eps) || !approx(got.Y, 1, eps) {
		t.Errorf("Perp = %v, want <0,1>", got)
	}
	r := v.Rotate(math.Pi / 2)
	if !approx(r.X, 0, eps) || !approx(r.Y, 1, eps) {
		t.Errorf("Rotate(90°) = %v, want <0,1>", r)
	}
	// Perp is always orthogonal and rotation preserves norms.
	f := func(x, y, ang float64) bool {
		x = clampFinite(x, 1e6)
		y = clampFinite(y, 1e6)
		ang = clampFinite(ang, 1e3)
		v := Vec(x, y)
		if math.Abs(v.Dot(v.Perp())) > 1e-6*(1+v.NormSq()) {
			return false
		}
		return approx(v.Rotate(ang).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorAngle(t *testing.T) {
	tests := []struct {
		v    Vector
		want float64
	}{
		{Vec(1, 0), 0},
		{Vec(0, 1), math.Pi / 2},
		{Vec(-1, 0), math.Pi},
		{Vec(0, -1), -math.Pi / 2},
	}
	for _, tc := range tests {
		if got := tc.v.Angle(); !approx(got, tc.want, eps) {
			t.Errorf("Angle(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestSegmentReflect(t *testing.T) {
	// Mirror across the X axis.
	wall := Seg(Pt(0, 0), Pt(10, 0))
	img := wall.Reflect(Pt(3, 2))
	if !approx(img.X, 3, eps) || !approx(img.Y, -2, eps) {
		t.Errorf("Reflect = %v, want (3,-2)", img)
	}
	// Reflecting twice is the identity.
	f := func(ax, ay, bx, by, px, py float64) bool {
		w := Seg(Pt(ax, ay), Pt(bx, by))
		if w.Length() < 1e-6 {
			return true
		}
		p := Pt(px, py)
		q := w.Reflect(w.Reflect(p))
		scale := 1 + math.Abs(px) + math.Abs(py) + math.Abs(ax) + math.Abs(ay)
		return approx(q.X, p.X, 1e-6*scale) && approx(q.Y, p.Y, 1e-6*scale)
	}
	for i := 0; i < 200; i++ {
		r := rand.New(rand.NewPCG(uint64(i), 7))
		if !f(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5,
			r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5) {
			t.Fatalf("double reflection not identity at iteration %d", i)
		}
	}
}

func TestReflectPreservesPathLength(t *testing.T) {
	// Image-method invariant: for a source s, wall w and receiver r, the
	// broken path s→bounce→r has the same length as image(s)→r when the
	// bounce point is the intersection of image(s)→r with the wall line.
	wall := Seg(Pt(0, 3), Pt(6, 3))
	src := Pt(1, 1)
	dst := Pt(5, 1)
	img := wall.Reflect(src)
	bounce, ok := wall.Intersect(Seg(img, dst))
	if !ok {
		t.Fatal("expected bounce point on wall")
	}
	broken := src.Dist(bounce) + bounce.Dist(dst)
	direct := img.Dist(dst)
	if !approx(broken, direct, 1e-9) {
		t.Errorf("broken path %.9f != image path %.9f", broken, direct)
	}
	// Angle of incidence equals angle of reflection.
	n := wall.Normal()
	in := bounce.Sub(src).Unit()
	out := dst.Sub(bounce).Unit()
	if !approx(math.Abs(in.Dot(n)), math.Abs(out.Dot(n)), 1e-9) {
		t.Errorf("incidence %v != reflection %v", in.Dot(n), out.Dot(n))
	}
}

func TestSegmentIntersect(t *testing.T) {
	tests := []struct {
		name  string
		s, u  Segment
		want  Point
		wantK bool
	}{
		{"crossing", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), Pt(1, 1), true},
		{"parallel", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), Point{}, false},
		{"disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 1), Pt(3, 1)), Point{}, false},
		{"touching", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), Pt(1, 1), true},
		{"collinear overlap", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(6, 0)), Pt(3, 0), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), Point{}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, ok := tc.s.Intersect(tc.u)
			if ok != tc.wantK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantK)
			}
			if ok && (!approx(p.X, tc.want.X, eps) || !approx(p.Y, tc.want.Y, eps)) {
				t.Errorf("point = %v, want %v", p, tc.want)
			}
		})
	}
}

func TestSegmentBlocks(t *testing.T) {
	wall := Seg(Pt(2, -1), Pt(2, 1))
	if !wall.Blocks(Pt(0, 0), Pt(4, 0)) {
		t.Error("wall should block the path")
	}
	if wall.Blocks(Pt(0, 0), Pt(1, 0)) {
		t.Error("path stops short of the wall")
	}
	// A path starting exactly on the wall is not "blocked" by it.
	if wall.Blocks(Pt(2, 0), Pt(4, 0)) {
		t.Error("grazing start point should not count as blocked")
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(5, 6), Pt(0, 0)) // corners in any order
	if r.Min != Pt(0, 0) || r.Max != Pt(5, 6) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if !approx(r.Width(), 5, eps) || !approx(r.Height(), 6, eps) {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if c := r.Center(); !approx(c.X, 2.5, eps) || !approx(c.Y, 3, eps) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Pt(2, 2)) || r.Contains(Pt(-1, 2)) || r.Contains(Pt(2, 7)) {
		t.Error("Contains wrong")
	}
	if got := r.Clamp(Pt(-3, 9)); got != Pt(0, 6) {
		t.Errorf("Clamp = %v, want (0,6)", got)
	}
	in := r.Inset(1)
	if in.Min != Pt(1, 1) || in.Max != Pt(4, 5) {
		t.Errorf("Inset = %+v", in)
	}
	// Over-inset collapses to center, not an inverted rect.
	deg := r.Inset(100)
	if deg.Min.X > deg.Max.X || deg.Min.Y > deg.Max.Y {
		t.Errorf("degenerate inset inverted: %+v", deg)
	}
}

func TestRectWalls(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(5, 6))
	walls := r.Walls()
	total := 0.0
	for _, w := range walls {
		total += w.Length()
	}
	if !approx(total, 2*(5+6), eps) {
		t.Errorf("perimeter = %v, want 22", total)
	}
	// Every wall midpoint must be on the boundary.
	for i, w := range walls {
		m := w.Midpoint()
		onX := approx(m.X, 0, eps) || approx(m.X, 5, eps)
		onY := approx(m.Y, 0, eps) || approx(m.Y, 6, eps)
		if !onX && !onY {
			t.Errorf("wall %d midpoint %v not on boundary", i, m)
		}
	}
}

func TestWrapAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, tc := range tests {
		if got := WrapAngle(tc.in); !approx(got, tc.want, eps) {
			t.Errorf("WrapAngle(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Property: result is always in (-π, π] and differs by a multiple of 2π.
	f := func(a float64) bool {
		a = math.Mod(a, 1e6) // keep finite precision reasonable
		w := WrapAngle(a)
		if w <= -math.Pi-eps || w > math.Pi+eps {
			return false
		}
		k := (a - w) / (2 * math.Pi)
		return approx(k, math.Round(k), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegRad(t *testing.T) {
	if !approx(Deg(math.Pi), 180, eps) || !approx(Rad(90), math.Pi/2, eps) {
		t.Error("Deg/Rad conversion wrong")
	}
	f := func(x float64) bool {
		x = clampFinite(x, 1e9)
		return approx(Rad(Deg(x)), x, 1e-9*(1+math.Abs(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if s := Pt(1.5, -2).String(); s != "(1.500, -2.000)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := Vec(0.25, 3).String(); s != "<0.250, 3.000>" {
		t.Errorf("Vector.String = %q", s)
	}
}
