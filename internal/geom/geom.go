// Package geom provides the 2-D geometric primitives used throughout the
// BLoc reproduction: points, vectors, line segments, rectangular rooms and
// the image-method reflection helpers that the multipath simulator builds on.
//
// All coordinates are in meters. Angles are in radians and, where an angle
// of arrival is involved, follow the paper's antenna-array convention: the
// angle is measured from the array's broadside (normal) direction, so that a
// target straight in front of the array is at θ = 0 and the valid range is
// (-π/2, +π/2).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p, i.e. p - q.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Vector is a displacement in the 2-D plane, in meters.
type Vector struct {
	X, Y float64
}

// Vec is shorthand for Vector{x, y}.
func Vec(x, y float64) Vector { return Vector{X: x, Y: y} }

// Add returns v + w.
func (v Vector) Add(w Vector) Vector { return Vector{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector { return Vector{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.X * s, v.Y * s} }

// Dot returns the dot product v · w.
func (v Vector) Dot(w Vector) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v × w.
func (v Vector) Cross(w Vector) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vector) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vector) Unit() Vector {
	n := v.Norm()
	//lint:ignore floateq degenerate zero-norm vector guard is exact
	if n == 0 {
		return v
	}
	return Vector{v.X / n, v.Y / n}
}

// Perp returns v rotated +90 degrees (counter-clockwise).
func (v Vector) Perp() Vector { return Vector{-v.Y, v.X} }

// Angle returns the angle of v measured counter-clockwise from the +X axis,
// in (-π, π].
func (v Vector) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counter-clockwise by the given angle (radians).
func (v Vector) Rotate(angle float64) Vector {
	s, c := math.Sincos(angle)
	return Vector{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// String implements fmt.Stringer.
func (v Vector) String() string { return fmt.Sprintf("<%.3f, %.3f>", v.X, v.Y) }

// Segment is a finite line segment between two points.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment's length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// Direction returns the unit vector from A to B.
func (s Segment) Direction() Vector { return s.B.Sub(s.A).Unit() }

// Normal returns the unit normal of the segment (Direction rotated +90°).
func (s Segment) Normal() Vector { return s.Direction().Perp() }

// Reflect mirrors point p across the infinite line through the segment.
// This is the "image" of p used by the image method of multipath
// enumeration: the reflected ray from p off this wall to some receiver r has
// the same total length as the straight line from Reflect(p) to r.
func (s Segment) Reflect(p Point) Point {
	d := s.B.Sub(s.A)
	den := d.NormSq()
	//lint:ignore floateq degenerate zero-length wall guard is exact
	if den == 0 {
		// Degenerate wall: mirror across the single point.
		return Point{2*s.A.X - p.X, 2*s.A.Y - p.Y}
	}
	ap := p.Sub(s.A)
	t := ap.Dot(d) / den
	foot := s.A.Add(d.Scale(t))
	return Point{2*foot.X - p.X, 2*foot.Y - p.Y}
}

// Intersect reports whether segment s intersects segment t, and if so the
// intersection point. Collinear overlaps report the midpoint of the shared
// region with ok = true.
func (s Segment) Intersect(t Segment) (p Point, ok bool) {
	r := s.B.Sub(s.A)
	q := t.B.Sub(t.A)
	den := r.Cross(q)
	diff := t.A.Sub(s.A)
	//lint:ignore floateq parallel-segment cross product is compared exactly
	if den == 0 {
		//lint:ignore floateq collinearity cross product is compared exactly
		if diff.Cross(r) != 0 {
			return Point{}, false // parallel, non-intersecting
		}
		// Collinear: project t onto s and check overlap.
		rr := r.NormSq()
		//lint:ignore floateq degenerate zero-length segment guard is exact
		if rr == 0 {
			if s.A == t.A || s.A == t.B {
				return s.A, true
			}
			return Point{}, false
		}
		t0 := diff.Dot(r) / rr
		t1 := t0 + q.Dot(r)/rr
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		lo, hi = math.Max(lo, 0), math.Min(hi, 1)
		if lo > hi {
			return Point{}, false
		}
		mid := (lo + hi) / 2
		return s.A.Add(r.Scale(mid)), true
	}
	u := diff.Cross(q) / den
	v := diff.Cross(r) / den
	if u < 0 || u > 1 || v < 0 || v > 1 {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// Blocks reports whether the segment blocks the straight path from a to b,
// excluding grazing contact at the path's endpoints.
func (s Segment) Blocks(a, b Point) bool {
	p, ok := s.Intersect(Segment{a, b})
	if !ok {
		return false
	}
	const eps = 1e-9
	return p.Dist(a) > eps && p.Dist(b) > eps
}

// Rect is an axis-aligned rectangle, used to describe rooms.
type Rect struct {
	Min, Max Point
}

// NewRect returns the axis-aligned rectangle spanning the two corner points
// in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the rectangle's extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Inset returns r shrunk by m on every side. If the inset would be empty the
// degenerate centered rectangle is returned.
func (r Rect) Inset(m float64) Rect {
	out := Rect{
		Min: Point{r.Min.X + m, r.Min.Y + m},
		Max: Point{r.Max.X - m, r.Max.Y - m},
	}
	if out.Min.X > out.Max.X {
		c := (r.Min.X + r.Max.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := (r.Min.Y + r.Max.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// Walls returns the four boundary segments of the rectangle in the order
// south, east, north, west (counter-clockwise starting from the bottom
// edge).
func (r Rect) Walls() [4]Segment {
	bl := r.Min
	br := Point{r.Max.X, r.Min.Y}
	tr := r.Max
	tl := Point{r.Min.X, r.Max.Y}
	return [4]Segment{
		{bl, br}, // south
		{br, tr}, // east
		{tr, tl}, // north
		{tl, bl}, // west
	}
}

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
