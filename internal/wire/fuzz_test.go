package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"testing"
)

// frame renders one framed message for the fuzz seed corpus.
func frame(t MsgType, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, t, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReceive feeds byte streams to the frame reader. The seed corpus
// covers every frame type the protocol defines — Hello, CSIRow, Fix and
// the PR 1 Heartbeat — plus multi-frame streams, an unknown type, a
// truncated payload and an oversized length prefix. Beyond
// never-panicking, any message that decodes must survive a
// re-encode/re-decode round trip unchanged.
func FuzzReceive(f *testing.F) {
	hello := frame(TypeHello, (&Hello{Version: ProtocolVersion, AnchorID: 3, Antennas: 4, Bands: 37}).Marshal())
	row := frame(TypeCSIRow, (&CSIRow{
		Round: 7, TagID: 2, AnchorID: 1, BandIdx: 36,
		Tag:    []complex128{1 + 2i, -3.5i, 0.25},
		Master: complex(0.5, -0.5),
	}).Marshal())
	fix := frame(TypeFix, (&Fix{Round: 9, TagID: 2, X: 1.5, Y: -2.25}).Marshal())
	heartbeat := frame(TypeHeartbeat, (&Heartbeat{Nonce: 0xDEADBEEF}).Marshal())

	f.Add(hello)
	f.Add(row)
	f.Add(fix)
	f.Add(heartbeat)
	// A whole session in one stream: hello, rows, fix, heartbeat echo.
	f.Add(bytes.Join([][]byte{hello, row, row, fix, heartbeat}, nil))
	// Unknown message type with a plausible payload.
	f.Add(frame(MsgType(250), []byte{1, 2, 3}))
	// Truncated payload: header promises more bytes than follow.
	f.Add(row[:len(row)-5])
	// Oversized length prefix must be rejected before allocation.
	oversized := binary.LittleEndian.AppendUint32(nil, MaxFrameSize+1)
	f.Add(append(oversized, byte(TypeCSIRow)))
	// Empty stream and a lone zero-length frame header.
	f.Add([]byte{})
	f.Add(frame(TypeHeartbeat, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			msg, err := Receive(r)
			if err != nil {
				return // any error is acceptable; panics and hangs are not
			}
			// Round trip at the byte level (NaN payloads make value
			// comparison lie): encode, decode, re-encode — the two
			// encodings must be identical.
			var first bytes.Buffer
			if err := Send(&first, msg); err != nil {
				t.Fatalf("decoded %T but re-encode failed: %v", msg, err)
			}
			again, err := Receive(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("re-decode of %T failed: %v", msg, err)
			}
			var second bytes.Buffer
			if err := Send(&second, again); err != nil {
				t.Fatalf("re-encode of %T failed: %v", again, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("round trip changed encoding:\nfirst:  %x\nsecond: %x", first.Bytes(), second.Bytes())
			}
		}
	})
}

// TestReceiveNeverPanicsOnGarbage feeds random byte streams to the frame
// reader: a hostile or corrupted peer must only ever produce errors, never
// panics or huge allocations.
func TestReceiveNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF022, 1))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		r := bytes.NewReader(buf)
		for {
			_, err := Receive(r)
			if err != nil {
				break // any error (including EOF) is acceptable
			}
		}
	}
}

// TestUnmarshalersNeverPanic throws random payloads at every unmarshaler.
func TestUnmarshalersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF0, 2))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(96)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		// Errors are fine; panics are not.
		UnmarshalHello(buf)
		UnmarshalCSIRow(buf)
		UnmarshalFix(buf)
		UnmarshalHeartbeat(buf)
	}
}

// TestReceiveTruncatedStreams verifies every prefix of a valid stream
// fails cleanly rather than hanging or panicking.
func TestReceiveTruncatedStreams(t *testing.T) {
	var full bytes.Buffer
	Send(&full, &Hello{Version: 1, AnchorID: 2, Antennas: 4, Bands: 37})
	Send(&full, &CSIRow{Round: 1, AnchorID: 2, BandIdx: 3, Tag: []complex128{1i}, Master: 2})
	data := full.Bytes()
	frame1End := 5 + 5 // hello: 5-byte header + 5-byte payload
	for cut := 0; cut < len(data); cut++ {
		r := bytes.NewReader(data[:cut])
		var err error
		for err == nil {
			_, err = Receive(r)
		}
		// Bare io.EOF means "clean end at a frame boundary": only valid
		// at cut 0 or exactly between the two frames.
		if err == io.EOF && cut != 0 && cut != frame1End {
			t.Fatalf("cut %d: bare EOF inside a frame", cut)
		}
	}
}
