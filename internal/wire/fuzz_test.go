package wire

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
)

// TestReceiveNeverPanicsOnGarbage feeds random byte streams to the frame
// reader: a hostile or corrupted peer must only ever produce errors, never
// panics or huge allocations.
func TestReceiveNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF022, 1))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		r := bytes.NewReader(buf)
		for {
			_, err := Receive(r)
			if err != nil {
				break // any error (including EOF) is acceptable
			}
		}
	}
}

// TestUnmarshalersNeverPanic throws random payloads at every unmarshaler.
func TestUnmarshalersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF0, 2))
	for trial := 0; trial < 2000; trial++ {
		n := rng.IntN(96)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.UintN(256))
		}
		// Errors are fine; panics are not.
		UnmarshalHello(buf)
		UnmarshalCSIRow(buf)
		UnmarshalFix(buf)
		UnmarshalHeartbeat(buf)
	}
}

// TestReceiveTruncatedStreams verifies every prefix of a valid stream
// fails cleanly rather than hanging or panicking.
func TestReceiveTruncatedStreams(t *testing.T) {
	var full bytes.Buffer
	Send(&full, &Hello{Version: 1, AnchorID: 2, Antennas: 4, Bands: 37})
	Send(&full, &CSIRow{Round: 1, AnchorID: 2, BandIdx: 3, Tag: []complex128{1i}, Master: 2})
	data := full.Bytes()
	frame1End := 5 + 5 // hello: 5-byte header + 5-byte payload
	for cut := 0; cut < len(data); cut++ {
		r := bytes.NewReader(data[:cut])
		var err error
		for err == nil {
			_, err = Receive(r)
		}
		// Bare io.EOF means "clean end at a frame boundary": only valid
		// at cut 0 or exactly between the two frames.
		if err == io.EOF && cut != 0 && cut != frame1End {
			t.Fatalf("cut %d: bare EOF inside a frame", cut)
		}
	}
}
