package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{Version: 1, AnchorID: 3, Antennas: 4, Bands: 37}
	got, err := UnmarshalHello(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Errorf("got %+v, want %+v", got, h)
	}
	if _, err := UnmarshalHello([]byte{1, 2}); err == nil {
		t.Error("short hello should fail")
	}
}

func TestCSIRowRoundTrip(t *testing.T) {
	f := func(round uint32, anchor uint8, band uint16, re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		if n > 16 {
			n = 16
		}
		row := &CSIRow{Round: round, AnchorID: anchor, BandIdx: band, Master: complex(1.5, -2.5)}
		for i := 0; i < n; i++ {
			row.Tag = append(row.Tag, complex(re[i], im[i]))
		}
		got, err := UnmarshalCSIRow(row.Marshal())
		if err != nil {
			return false
		}
		if got.Round != row.Round || got.AnchorID != row.AnchorID ||
			got.BandIdx != row.BandIdx || got.Master != row.Master {
			return false
		}
		if len(got.Tag) != len(row.Tag) {
			return false
		}
		for i := range row.Tag {
			// NaN != NaN, so compare bit patterns via printing is overkill;
			// quick never generates NaN from float64 args? It can. Accept
			// NaN mismatches by comparing bits.
			if got.Tag[i] != row.Tag[i] &&
				!(got.Tag[i] != got.Tag[i] && row.Tag[i] != row.Tag[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSIRowUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalCSIRow([]byte{1, 2, 3}); err == nil {
		t.Error("short row should fail")
	}
	// Claimed antenna count not matching payload length.
	row := &CSIRow{Round: 1, AnchorID: 0, BandIdx: 0, Tag: []complex128{1}, Master: 1}
	b := row.Marshal()
	b[9] = 5 // claim 5 antennas (count byte follows round+tag+anchor+band)
	if _, err := UnmarshalCSIRow(b); err == nil {
		t.Error("antenna count mismatch should fail")
	}
}

func TestFixRoundTrip(t *testing.T) {
	fx := &Fix{Round: 9, TagID: 3, X: -1.25, Y: 2.75}
	got, err := UnmarshalFix(fx.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *fx {
		t.Errorf("got %+v", got)
	}
	if _, err := UnmarshalFix(make([]byte, 19)); err == nil {
		t.Error("short fix should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeCSIRow, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeCSIRow || string(payload) != "payload" {
		t.Errorf("frame = %v %q", typ, payload)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TypeHello, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversized write should fail")
	}
	// Forge a frame claiming a huge payload; the reader must refuse
	// before allocating.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<30)
	hdr[4] = byte(TypeHello)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized read error = %v", err)
	}
}

func TestFrameEOF(t *testing.T) {
	// Clean EOF at a frame boundary surfaces io.EOF (for shutdown).
	_, _, err := ReadFrame(bytes.NewReader(nil))
	if err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
	// Truncated payload is an error.
	var buf bytes.Buffer
	WriteFrame(&buf, TypeHello, []byte{1, 2, 3, 4, 5})
	truncated := buf.Bytes()[:7]
	if _, _, err := ReadFrame(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated payload should fail")
	}
}

func TestSendReceiveDispatch(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{
		&Hello{Version: ProtocolVersion, AnchorID: 1, Antennas: 4, Bands: 37},
		&CSIRow{Round: 2, AnchorID: 1, BandIdx: 5, Tag: []complex128{1 + 2i, 3 - 4i}, Master: 5i},
		&Fix{Round: 2, X: 0.5, Y: -0.5},
		&Heartbeat{Nonce: 0xC0FFEE},
	}
	for _, m := range msgs {
		if err := Send(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := Receive(&buf)
		if err != nil {
			t.Fatal(err)
		}
		switch want := msgs[i].(type) {
		case *Hello:
			if *got.(*Hello) != *want {
				t.Errorf("hello mismatch")
			}
		case *CSIRow:
			g := got.(*CSIRow)
			if g.Round != want.Round || g.Tag[1] != want.Tag[1] || g.Master != want.Master {
				t.Errorf("csi-row mismatch")
			}
		case *Fix:
			if *got.(*Fix) != *want {
				t.Errorf("fix mismatch")
			}
		case *Heartbeat:
			if *got.(*Heartbeat) != *want {
				t.Errorf("heartbeat mismatch")
			}
		}
	}
	if err := Send(&buf, "nonsense"); err == nil {
		t.Error("unknown message type should fail to send")
	}
	// Unknown type on the wire.
	WriteFrame(&buf, MsgType(77), nil)
	if _, err := Receive(&buf); err == nil {
		t.Error("unknown wire type should fail to receive")
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeHello.String() != "hello" || TypeCSIRow.String() != "csi-row" ||
		TypeFix.String() != "fix" || TypeHeartbeat.String() != "heartbeat" ||
		MsgType(9).String() != "MsgType(9)" {
		t.Error("MsgType strings wrong")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	hb := &Heartbeat{Nonce: 42}
	got, err := UnmarshalHeartbeat(hb.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *hb {
		t.Errorf("got %+v, want %+v", got, hb)
	}
	if _, err := UnmarshalHeartbeat([]byte{1, 2}); err == nil {
		t.Error("short heartbeat should fail")
	}
}

// TestWriteFrameSingleWrite pins the one-Write-per-frame property the
// faultnet wrappers depend on: dropping a Write must drop exactly one
// whole frame, never a header/payload half.
func TestWriteFrameSingleWrite(t *testing.T) {
	cw := &countingWriter{}
	if err := WriteFrame(cw, TypeCSIRow, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if cw.calls != 1 {
		t.Errorf("WriteFrame issued %d writes, want 1", cw.calls)
	}
	if cw.n != 5+3 {
		t.Errorf("WriteFrame wrote %d bytes, want 8", cw.n)
	}
}

type countingWriter struct {
	calls, n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.calls++
	c.n += len(p)
	return len(p), nil
}
