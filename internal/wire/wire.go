// Package wire is the binary TCP protocol between BLoc anchors and the
// central localization server (§3: "all the anchor points communicate to
// a central server to estimate the location of the tag").
//
// Every message is a length-prefixed frame:
//
//	uint32  payload length (little-endian, excluding the 5-byte header)
//	uint8   message type
//	[]byte  payload
//
// Payload fields are little-endian; complex128 values travel as two
// float64 (real, imag). The protocol is versioned via the Hello message
// and framed reads enforce a maximum frame size, so a misbehaving peer
// cannot make the server allocate unbounded memory.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ProtocolVersion is the current wire version, carried in Hello.
const ProtocolVersion = 1

// MaxFrameSize bounds a frame payload. The largest legitimate frame is a
// CSIRow with a few dozen complex values, far below this.
const MaxFrameSize = 1 << 16

// MsgType identifies a frame's payload.
type MsgType uint8

// Message types.
const (
	TypeHello     MsgType = 1 // anchor → server: identification
	TypeCSIRow    MsgType = 2 // anchor → server: one band's measurements
	TypeFix       MsgType = 3 // server → anchor: completed location estimate
	TypeHeartbeat MsgType = 4 // server → anchor ping; anchor echoes it back
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeCSIRow:
		return "csi-row"
	case TypeFix:
		return "fix"
	case TypeHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Hello identifies an anchor to the server.
type Hello struct {
	Version  uint8
	AnchorID uint8 // 0 is the master
	Antennas uint8
	Bands    uint16 // number of bands the anchor will report per round
}

// CSIRow carries one anchor's measurements for one band of one
// acquisition round of one tag: the tag→anchor channels on every antenna
// and the overheard master→anchor channel (meaningless for the master
// itself, sent as 1). TagID distinguishes concurrently tracked tags —
// each tag holds its own connection to the master and its rounds
// aggregate independently.
type CSIRow struct {
	Round    uint32
	TagID    uint16
	AnchorID uint8
	BandIdx  uint16 // index into the agreed band list
	Tag      []complex128
	Master   complex128
}

// Fix is the server's completed location estimate for a tag's round.
type Fix struct {
	Round uint32
	TagID uint16
	X, Y  float64
}

// Heartbeat is a liveness probe. The server sends one periodically to
// every connected anchor; the anchor echoes it back unchanged, so both
// sides learn the link is alive without waiting for a write to fail.
type Heartbeat struct {
	Nonce uint32
}

// WriteFrame writes one framed message. Header and payload go out in a
// single Write call, so a frame is an atomic unit at the transport layer
// (one frame per Write is also what the fault-injection wrappers in
// internal/faultnet rely on to model whole-frame loss).
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: payload %d exceeds max frame size", len(payload))
	}
	buf := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = byte(t)
	copy(buf[5:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds max", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return MsgType(hdr[4]), payload, nil
}

// appendComplex appends a complex128 as two little-endian float64.
func appendComplex(b []byte, z complex128) []byte {
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(real(z)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(imag(z)))
	return b
}

// readComplex reads a complex128 from b, returning the remainder.
func readComplex(b []byte) (complex128, []byte, error) {
	if len(b) < 16 {
		return 0, nil, fmt.Errorf("wire: truncated complex value")
	}
	re := math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
	im := math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	return complex(re, im), b[16:], nil
}

// Marshal encodes the Hello payload.
func (h *Hello) Marshal() []byte {
	b := make([]byte, 0, 5)
	b = append(b, h.Version, h.AnchorID, h.Antennas)
	b = binary.LittleEndian.AppendUint16(b, h.Bands)
	return b
}

// UnmarshalHello decodes a Hello payload.
func UnmarshalHello(b []byte) (*Hello, error) {
	if len(b) != 5 {
		return nil, fmt.Errorf("wire: hello payload %d bytes, want 5", len(b))
	}
	return &Hello{
		Version:  b[0],
		AnchorID: b[1],
		Antennas: b[2],
		Bands:    binary.LittleEndian.Uint16(b[3:5]),
	}, nil
}

// Marshal encodes the CSIRow payload.
func (c *CSIRow) Marshal() []byte {
	b := make([]byte, 0, 4+2+1+2+1+16*(len(c.Tag)+1))
	b = binary.LittleEndian.AppendUint32(b, c.Round)
	b = binary.LittleEndian.AppendUint16(b, c.TagID)
	b = append(b, c.AnchorID)
	b = binary.LittleEndian.AppendUint16(b, c.BandIdx)
	b = append(b, byte(len(c.Tag)))
	for _, z := range c.Tag {
		b = appendComplex(b, z)
	}
	b = appendComplex(b, c.Master)
	return b
}

// UnmarshalCSIRow decodes a CSIRow payload.
func UnmarshalCSIRow(b []byte) (*CSIRow, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("wire: csi-row payload too short")
	}
	c := &CSIRow{
		Round:    binary.LittleEndian.Uint32(b[:4]),
		TagID:    binary.LittleEndian.Uint16(b[4:6]),
		AnchorID: b[6],
		BandIdx:  binary.LittleEndian.Uint16(b[7:9]),
	}
	n := int(b[9])
	rest := b[10:]
	if len(rest) != 16*(n+1) {
		return nil, fmt.Errorf("wire: csi-row has %d bytes for %d antennas", len(rest), n)
	}
	c.Tag = make([]complex128, n)
	var err error
	for j := 0; j < n; j++ {
		c.Tag[j], rest, err = readComplex(rest)
		if err != nil {
			return nil, err
		}
	}
	c.Master, _, err = readComplex(rest)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Marshal encodes the Fix payload.
func (f *Fix) Marshal() []byte {
	b := make([]byte, 0, 22)
	b = binary.LittleEndian.AppendUint32(b, f.Round)
	b = binary.LittleEndian.AppendUint16(b, f.TagID)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Y))
	return b
}

// UnmarshalFix decodes a Fix payload.
func UnmarshalFix(b []byte) (*Fix, error) {
	if len(b) != 22 {
		return nil, fmt.Errorf("wire: fix payload %d bytes, want 22", len(b))
	}
	return &Fix{
		Round: binary.LittleEndian.Uint32(b[:4]),
		TagID: binary.LittleEndian.Uint16(b[4:6]),
		X:     math.Float64frombits(binary.LittleEndian.Uint64(b[6:14])),
		Y:     math.Float64frombits(binary.LittleEndian.Uint64(b[14:22])),
	}, nil
}

// Marshal encodes the Heartbeat payload.
func (h *Heartbeat) Marshal() []byte {
	return binary.LittleEndian.AppendUint32(make([]byte, 0, 4), h.Nonce)
}

// UnmarshalHeartbeat decodes a Heartbeat payload.
func UnmarshalHeartbeat(b []byte) (*Heartbeat, error) {
	if len(b) != 4 {
		return nil, fmt.Errorf("wire: heartbeat payload %d bytes, want 4", len(b))
	}
	return &Heartbeat{Nonce: binary.LittleEndian.Uint32(b)}, nil
}

// Send marshals and writes a message in one call.
func Send(w io.Writer, msg any) error {
	switch m := msg.(type) {
	case *Hello:
		return WriteFrame(w, TypeHello, m.Marshal())
	case *CSIRow:
		return WriteFrame(w, TypeCSIRow, m.Marshal())
	case *Fix:
		return WriteFrame(w, TypeFix, m.Marshal())
	case *Heartbeat:
		return WriteFrame(w, TypeHeartbeat, m.Marshal())
	default:
		return fmt.Errorf("wire: cannot send %T", msg)
	}
}

// Receive reads and decodes the next message.
func Receive(r io.Reader) (any, error) {
	t, payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	switch t {
	case TypeHello:
		return UnmarshalHello(payload)
	case TypeCSIRow:
		return UnmarshalCSIRow(payload)
	case TypeFix:
		return UnmarshalFix(payload)
	case TypeHeartbeat:
		return UnmarshalHeartbeat(payload)
	default:
		return nil, fmt.Errorf("wire: unknown message type %v", t)
	}
}
