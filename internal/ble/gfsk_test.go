package ble

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
)

func TestModulateConstantEnvelope(t *testing.T) {
	// GFSK is constant-envelope: every IQ sample has unit magnitude.
	m := NewModulator(8)
	iq := m.Modulate([]byte{0, 1, 1, 0, 1, 0, 0, 1})
	for i, z := range iq {
		if math.Abs(cmplx.Abs(z)-1) > 1e-12 {
			t.Fatalf("sample %d magnitude %v != 1", i, cmplx.Abs(z))
		}
	}
	if len(iq) != 8*8 {
		t.Fatalf("len = %d, want 64", len(iq))
	}
}

func TestModulateSettledRunsHitNominalDeviation(t *testing.T) {
	// The §4 insight: long runs settle the instantaneous frequency at the
	// full ±deviation. Check the discriminator reads ±1 mid-run.
	m := NewModulator(8)
	bits := append(bytes.Repeat([]byte{0}, 10), bytes.Repeat([]byte{1}, 10)...)
	iq := m.Modulate(bits)
	track := m.FrequencyTrack(iq)
	// Middle of the 0-run.
	if v := track[5*8]; math.Abs(v+1) > 0.02 {
		t.Errorf("0-run deviation = %v, want ≈ -1", v)
	}
	// Middle of the 1-run.
	if v := track[15*8]; math.Abs(v-1) > 0.02 {
		t.Errorf("1-run deviation = %v, want ≈ +1", v)
	}
}

func TestDemodulateRoundTrip(t *testing.T) {
	m := NewModulator(8)
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 20; trial++ {
		bits := make([]byte, 64)
		for i := range bits {
			bits[i] = byte(r.IntN(2))
		}
		got := m.Demodulate(m.Modulate(bits))
		if !bytes.Equal(got, bits) {
			t.Fatalf("trial %d: demodulated bits differ\n got %v\nwant %v", trial, got, bits)
		}
	}
}

func TestDemodulateWithNoise(t *testing.T) {
	// 20 dB SNR: essentially error-free for GFSK with 8x oversampling.
	m := NewModulator(8)
	r := rand.New(rand.NewPCG(8, 8))
	bits := make([]byte, 256)
	for i := range bits {
		bits[i] = byte(r.IntN(2))
	}
	iq := m.Modulate(bits)
	sigma := math.Pow(10, -20.0/20) / math.Sqrt2
	for i := range iq {
		iq[i] += complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	got := m.Demodulate(iq)
	errors := 0
	for i := range bits {
		if got[i] != bits[i] {
			errors++
		}
	}
	if errors > 2 {
		t.Errorf("%d bit errors at 20 dB SNR, want ≤ 2", errors)
	}
}

func TestDemodulateRotationInvariant(t *testing.T) {
	// A static channel rotation/attenuation must not affect demodulation —
	// this is what lets anchors decode packets while measuring CSI.
	m := NewModulator(8)
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0}
	iq := m.Modulate(bits)
	h := cmplx.Rect(0.05, 2.1) // weak, rotated channel
	for i := range iq {
		iq[i] *= h
	}
	if !bytes.Equal(m.Demodulate(iq), bits) {
		t.Error("demodulation is not invariant to a static complex channel")
	}
}

func TestFrequencyTrackEmpty(t *testing.T) {
	m := NewModulator(8)
	if got := m.FrequencyTrack(nil); got != nil {
		t.Errorf("FrequencyTrack(nil) = %v", got)
	}
}

func TestModulatePanicsOnBadSPS(t *testing.T) {
	m := &Modulator{SPS: 1, BT: 0.5, ModIndex: 0.5, Span: 3}
	defer func() {
		if recover() == nil {
			t.Error("SPS=1 should panic")
		}
	}()
	m.Modulate([]byte{1})
}

func TestModulatePhaseContinuity(t *testing.T) {
	// CPM property: consecutive samples never jump more than the maximum
	// per-sample phase increment (π·h/SPS at full deviation).
	m := NewModulator(8)
	bits := []byte{1, 0, 1, 1, 0, 0, 0, 1, 1, 1}
	iq := m.Modulate(bits)
	maxStep := math.Pi*m.ModIndex/float64(m.SPS) + 1e-9
	for i := 1; i < len(iq); i++ {
		d := iq[i] * complex(real(iq[i-1]), -imag(iq[i-1]))
		if math.Abs(cmplx.Phase(d)) > maxStep {
			t.Fatalf("phase jump %v at sample %d exceeds %v", cmplx.Phase(d), i, maxStep)
		}
	}
}

func TestEndToEndPacketOverPHY(t *testing.T) {
	// Full stack: packet → air bits → GFSK → demod → bits → ParseAir.
	pkt := &Packet{
		Access:  0x50123456,
		Channel: 17,
		PDU:     &DataPDU{LLID: LLIDStart, Payload: []byte("CSI sounding")},
	}
	airBits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModulator(8)
	rxBits := m.Demodulate(m.Modulate(airBits))
	rxBytes, err := BitsToBytes(rxBits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAir(17, rxBytes)
	if err != nil {
		t.Fatalf("ParseAir after PHY round trip: %v", err)
	}
	if string(got.PDU.Payload) != "CSI sounding" {
		t.Errorf("payload = %q", got.PDU.Payload)
	}
}

func BenchmarkModulate(b *testing.B) {
	m := NewModulator(8)
	bits := make([]byte, 1024)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Modulate(bits)
	}
}

func TestModulatorSampleRate(t *testing.T) {
	if NewModulator(8).SampleRate() != 8e6 {
		t.Error("SampleRate wrong")
	}
}
