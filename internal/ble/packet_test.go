package ble

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCRC24KnownVector(t *testing.T) {
	// CRC of the empty PDU is the seed run through zero bits: unchanged.
	if got := CRC24(CRCInit, nil); got != CRCInit {
		t.Errorf("CRC24(empty) = %#x, want seed %#x", got, CRCInit)
	}
	// CRC must depend on every input bit.
	a := CRC24(CRCInit, []byte{0x01, 0x02, 0x03})
	b := CRC24(CRCInit, []byte{0x01, 0x02, 0x02})
	if a == b {
		t.Error("CRC collision on 1-bit difference")
	}
}

func TestAppendCheckCRCRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := r.IntN(64)
		pdu := make([]byte, n)
		for i := range pdu {
			pdu[i] = byte(r.UintN(256))
		}
		framed := AppendCRC(append([]byte(nil), pdu...))
		if len(framed) != n+3 {
			t.Fatalf("framed length %d, want %d", len(framed), n+3)
		}
		if !CheckCRC(framed) {
			t.Fatalf("CheckCRC failed on valid frame (trial %d)", trial)
		}
		// Any single-bit corruption must be detected (CRC-24 guarantees
		// this for bursts up to 24 bits).
		if len(framed) > 0 {
			pos := r.IntN(len(framed) * 8)
			framed[pos/8] ^= 1 << (pos % 8)
			if CheckCRC(framed) {
				t.Fatalf("single-bit corruption at %d undetected", pos)
			}
		}
	}
	if CheckCRC([]byte{1, 2}) {
		t.Error("short frame should fail CRC")
	}
}

func TestWhitenSelfInverse(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, ch := range []ChannelIndex{0, 11, 36, 37, 39} {
		data := make([]byte, 40)
		for i := range data {
			data[i] = byte(r.UintN(256))
		}
		twice := Whiten(ch, Whiten(ch, data))
		if !bytes.Equal(twice, data) {
			t.Fatalf("channel %d: whitening not self-inverse", ch)
		}
	}
}

func TestWhitenChannelDependent(t *testing.T) {
	data := make([]byte, 16) // zeros expose the raw keystream
	streams := map[string]ChannelIndex{}
	for _, ch := range AllChannels() {
		k := string(Whiten(ch, data))
		if prev, dup := streams[k]; dup {
			t.Fatalf("channels %d and %d share a whitening keystream", prev, ch)
		}
		streams[k] = ch
	}
}

func TestWhitenNontrivial(t *testing.T) {
	// The keystream must not be all zeros (would defeat whitening).
	k := Whiten(0, make([]byte, 8))
	allZero := true
	for _, b := range k {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("whitening keystream is all zeros")
	}
}

func TestWhitenPeriod127(t *testing.T) {
	// A maximal-length 7-bit LFSR has period 127 bits; verify the
	// keystream repeats with exactly that period.
	k := Whiten(5, make([]byte, 127)) // 1016 bits > 127·8
	bits := BytesToBits(k)
	for i := 0; i+127 < len(bits); i++ {
		if bits[i] != bits[i+127] {
			t.Fatalf("keystream not 127-periodic at bit %d", i)
		}
	}
	// And it is NOT periodic with any smaller divisor-ish period like 63.
	differs := false
	for i := 0; i+63 < 127; i++ {
		if bits[i] != bits[i+63] {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("keystream appears 63-periodic; LFSR is not maximal length")
	}
}

func TestDataPDUMarshalRoundTrip(t *testing.T) {
	f := func(llid byte, nesn, sn, md bool, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		p := &DataPDU{LLID: LLID(llid & 0x3), NESN: nesn, SN: sn, MD: md, Payload: payload}
		raw, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := UnmarshalDataPDU(raw)
		if err != nil {
			return false
		}
		return q.LLID == p.LLID && q.NESN == p.NESN && q.SN == p.SN &&
			q.MD == p.MD && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataPDUErrors(t *testing.T) {
	big := &DataPDU{LLID: LLIDStart, Payload: make([]byte, 256)}
	if _, err := big.Marshal(); err != ErrPayloadTooLong {
		t.Errorf("Marshal oversized = %v, want ErrPayloadTooLong", err)
	}
	if _, err := UnmarshalDataPDU([]byte{1}); err == nil {
		t.Error("short PDU should fail")
	}
	if _, err := UnmarshalDataPDU([]byte{1, 5, 0, 0}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPreamble(t *testing.T) {
	if AdvAccessAddress.Preamble() != 0xAA {
		// 0x8E89BED6 has LSB 0 → preamble 0xAA.
		t.Errorf("adv preamble = %#x, want 0xAA", AdvAccessAddress.Preamble())
	}
	if AccessAddress(0x12345671).Preamble() != 0x55 {
		t.Error("odd AA should give 0x55 preamble")
	}
}

func TestPacketAirRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 25; trial++ {
		ch := ChannelIndex(r.IntN(NumDataChannels))
		payload := make([]byte, r.IntN(60))
		for i := range payload {
			payload[i] = byte(r.UintN(256))
		}
		pkt := &Packet{
			Access:  AccessAddress(r.Uint32()),
			Channel: ch,
			PDU:     &DataPDU{LLID: LLIDStart, SN: trial%2 == 0, Payload: payload},
		}
		air, err := pkt.AirBytes()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseAir(ch, air)
		if err != nil {
			t.Fatalf("ParseAir: %v", err)
		}
		if got.Access != pkt.Access {
			t.Fatalf("access address %#x != %#x", got.Access, pkt.Access)
		}
		if !bytes.Equal(got.PDU.Payload, payload) || got.PDU.SN != pkt.PDU.SN {
			t.Fatal("PDU mismatch after air round trip")
		}
	}
}

func TestParseAirDetectsWrongChannel(t *testing.T) {
	// De-whitening with the wrong channel garbles the CRC.
	pkt := &Packet{
		Access:  0x71764129,
		Channel: 4,
		PDU:     &DataPDU{LLID: LLIDStart, Payload: []byte("hello bloc")},
	}
	air, err := pkt.AirBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAir(9, air); err == nil {
		t.Error("parsing on the wrong channel should fail CRC")
	}
}

func TestParseAirErrors(t *testing.T) {
	if _, err := ParseAir(0, []byte{1, 2, 3}); err == nil {
		t.Error("short frame should fail")
	}
	// Corrupt the preamble.
	pkt := &Packet{Access: 0x71764128, Channel: 0, PDU: &DataPDU{LLID: LLIDStart}}
	air, _ := pkt.AirBytes()
	air[0] ^= 0xFF
	if _, err := ParseAir(0, air); err == nil {
		t.Error("bad preamble should fail")
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != len(data)*8 {
			return false
		}
		back, err := BitsToBytes(bits)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := BitsToBytes(make([]byte, 7)); err == nil {
		t.Error("non-multiple-of-8 bit count should fail")
	}
	// LSB-first order.
	bits := BytesToBits([]byte{0x01})
	if bits[0] != 1 || bits[7] != 0 {
		t.Error("bit order is not LSB-first")
	}
}
