package ble

import (
	"fmt"
	"math/rand/v2"
)

// Connection is the link-layer connection state machine driving one
// master↔slave BLE connection: it owns the hop sequence, sequence
// numbers, event counter and supervision timeout — the machinery whose
// frequency hopping BLoc turns into an 80 MHz virtual aperture (§2.1,
// §5.1).
type Connection struct {
	Access AccessAddress
	params LLData
	hop    *HopSequence

	event     uint16 // connection event counter
	sn, nesn  bool   // sequence numbers (master's view)
	missed    int    // consecutive events without a received PDU
	maxMissed int    // supervision limit in events
	closed    bool
}

// Establish creates a connection from the CONNECT_IND parameters. The
// first data-channel event uses the channel selected by the hop algorithm
// from channel 0, matching channel-selection algorithm #1's unmapped
// start.
func Establish(ind *ConnectInd) (*Connection, error) {
	if err := ind.LLData.Validate(); err != nil {
		return nil, err
	}
	hop, err := NewHopSequence(0, int(ind.LLData.Hop))
	if err != nil {
		return nil, err
	}
	if err := hop.SetChannelMap(ind.LLData.UsedChannels()); err != nil {
		return nil, err
	}
	// Supervision timeout (10 ms units) divided by the connection
	// interval (1.25 ms units) gives the event budget.
	intervalMs := float64(ind.LLData.Interval) * 1.25
	timeoutMs := float64(ind.LLData.Timeout) * 10
	maxMissed := int(timeoutMs / intervalMs)
	if maxMissed < 1 {
		maxMissed = 1
	}
	return &Connection{
		Access:    ind.LLData.AccessAddress,
		params:    ind.LLData,
		hop:       hop,
		maxMissed: maxMissed,
	}, nil
}

// Params returns the connection parameters.
func (c *Connection) Params() LLData { return c.params }

// Event returns the current connection event counter.
func (c *Connection) Event() uint16 { return c.event }

// Channel returns the data channel of the current connection event.
func (c *Connection) Channel() ChannelIndex { return c.hop.Current() }

// Alive reports whether the supervision timeout has not yet fired.
func (c *Connection) Alive() bool { return !c.closed }

// NextEvent advances to the next connection event, hopping channels. It
// returns the new event's channel. Calling it on a dead connection is an
// error.
func (c *Connection) NextEvent() (ChannelIndex, error) {
	if c.closed {
		return 0, fmt.Errorf("ble: connection closed (supervision timeout)")
	}
	c.event++
	return c.hop.Next(), nil
}

// PacketReceived records a successfully received PDU in this event,
// resetting the supervision counter and acknowledging sequence numbers
// (simplified: every received PDU is treated as new data).
func (c *Connection) PacketReceived() {
	c.missed = 0
	c.nesn = !c.nesn
}

// EventMissed records a connection event with no (valid) PDU received;
// enough consecutive misses close the connection.
func (c *Connection) EventMissed() {
	c.missed++
	if c.missed >= c.maxMissed {
		c.closed = true
	}
}

// NextPDU stamps a data PDU with the connection's current sequence
// numbers and flips SN for the next transmission.
func (c *Connection) NextPDU(llid LLID, payload []byte) *DataPDU {
	pdu := &DataPDU{LLID: llid, SN: c.sn, NESN: c.nesn, Payload: payload}
	c.sn = !c.sn
	return pdu
}

// SoundingCycle returns the channels of one full hop cycle (37 events
// with a full channel map) starting at the current event — the
// acquisition schedule of one BLoc measurement round. The connection
// advances by a full cycle.
func (c *Connection) SoundingCycle() ([]ChannelIndex, error) {
	if c.closed {
		return nil, fmt.Errorf("ble: connection closed")
	}
	n := len(c.params.UsedChannels())
	out := make([]ChannelIndex, 0, n)
	out = append(out, c.Channel())
	for i := 1; i < n; i++ {
		ch, err := c.NextEvent()
		if err != nil {
			return nil, err
		}
		out = append(out, ch)
	}
	if _, err := c.NextEvent(); err != nil { // park on the next fresh event
		return nil, err
	}
	return out, nil
}

// NewAccessAddress generates a pseudo-random access address obeying the
// specification's basic constraints (not the advertising AA, no 6+ equal
// consecutive bits, at least two bit transitions in the top 6 bits).
func NewAccessAddress(rng *rand.Rand) AccessAddress {
	for {
		aa := AccessAddress(rng.Uint32())
		if aa == AdvAccessAddress || aa == 0 || aa == 0xFFFFFFFF {
			continue
		}
		if maxRun(uint32(aa)) >= 6 {
			continue
		}
		if transitions(uint32(aa)>>26) < 2 {
			continue
		}
		return aa
	}
}

// maxRun returns the longest run of equal consecutive bits in x.
func maxRun(x uint32) int {
	best, run := 1, 1
	prev := x & 1
	for i := 1; i < 32; i++ {
		b := (x >> i) & 1
		if b == prev {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
			prev = b
		}
	}
	return best
}

// transitions counts bit transitions in the low 6 bits of x.
func transitions(x uint32) int {
	n := 0
	for i := 0; i < 5; i++ {
		if (x>>i)&1 != (x>>(i+1))&1 {
			n++
		}
	}
	return n
}

// DefaultConnectInd builds a CONNECT_IND with sensible defaults for a
// BLoc deployment: all channels enabled, the given hop increment, 7.5 ms
// interval (the fastest allowed — the paper's "BLE hops through all
// channels 40 times every second" regime) and a 4 s supervision timeout.
func DefaultConnectInd(initiator, advertiser DeviceAddress, hop int, rng *rand.Rand) (*ConnectInd, error) {
	if hop < 5 || hop > 16 {
		return nil, fmt.Errorf("ble: hop %d outside [5,16]", hop)
	}
	return &ConnectInd{
		Initiator:  initiator,
		Advertiser: advertiser,
		LLData: LLData{
			AccessAddress: NewAccessAddress(rng),
			CRCInit:       uint32(rng.Uint32()) & 0xFFFFFF,
			WinSize:       1,
			WinOffset:     0,
			Interval:      6, // 7.5 ms
			Latency:       0,
			Timeout:       400, // 4 s
			ChannelMap:    AllChannelsMap(),
			Hop:           byte(hop),
			SCA:           1,
		},
	}, nil
}
