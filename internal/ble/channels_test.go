package ble

import (
	"math"
	"testing"
)

func TestChannelCenterFreqs(t *testing.T) {
	// Spot-check the Core Specification channel map.
	tests := []struct {
		ch   ChannelIndex
		want float64
	}{
		{0, 2404e6},
		{10, 2424e6},
		{11, 2428e6},
		{36, 2478e6},
		{Adv37, 2402e6},
		{Adv38, 2426e6},
		{Adv39, 2480e6},
	}
	for _, tc := range tests {
		if got := tc.ch.CenterFreq(); got != tc.want {
			t.Errorf("CenterFreq(%d) = %v, want %v", tc.ch, got, tc.want)
		}
	}
}

func TestChannelFreqsUniqueAndInBand(t *testing.T) {
	seen := map[float64]ChannelIndex{}
	for _, c := range AllChannels() {
		f := c.CenterFreq()
		if prev, dup := seen[f]; dup {
			t.Errorf("channels %d and %d share frequency %v", prev, c, f)
		}
		seen[f] = c
		if f < 2402e6 || f > 2480e6 {
			t.Errorf("channel %d frequency %v outside the ISM band", c, f)
		}
	}
	if len(seen) != NumChannels {
		t.Errorf("%d distinct frequencies, want %d", len(seen), NumChannels)
	}
	// The stitched span (§5.1) is 80 MHz from lowest to highest channel,
	// as BandSpanHz documents. Channel spacing between data channels:
	// every adjacent pair of the sorted data channels differs by 2 or 4
	// MHz (4 where an advertising channel is skipped).
	span := Adv39.CenterFreq() - Adv37.CenterFreq() + ChannelWidthHz
	if math.Abs(span-BandSpanHz) > 1 {
		t.Errorf("span = %v, want %v", span, BandSpanHz)
	}
}

func TestChannelValidity(t *testing.T) {
	if !ChannelIndex(0).Valid() || !ChannelIndex(39).Valid() {
		t.Error("valid channels reported invalid")
	}
	if ChannelIndex(-1).Valid() || ChannelIndex(40).Valid() {
		t.Error("invalid channels reported valid")
	}
	if ChannelIndex(36).IsAdvertising() || !Adv38.IsAdvertising() {
		t.Error("IsAdvertising wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("CenterFreq on invalid channel should panic")
		}
	}()
	ChannelIndex(40).CenterFreq()
}

func TestDataChannels(t *testing.T) {
	dc := DataChannels()
	if len(dc) != 37 {
		t.Fatalf("len = %d, want 37", len(dc))
	}
	for i, c := range dc {
		if int(c) != i {
			t.Errorf("DataChannels[%d] = %d", i, c)
		}
		if c.IsAdvertising() {
			t.Errorf("data channel %d flagged as advertising", c)
		}
	}
}

func TestChannelForFreq(t *testing.T) {
	for _, c := range DataChannels() {
		if got := ChannelForFreq(c.CenterFreq()); got != c {
			t.Errorf("ChannelForFreq(%v) = %d, want %d", c.CenterFreq(), got, c)
		}
		// Slightly off-center still maps back.
		if got := ChannelForFreq(c.CenterFreq() + 0.4e6); got != c {
			t.Errorf("ChannelForFreq(+0.4MHz) = %d, want %d", got, c)
		}
	}
}

func TestChannelString(t *testing.T) {
	if s := ChannelIndex(0).String(); s != "ch0(data, 2404 MHz)" {
		t.Errorf("String = %q", s)
	}
	if s := Adv39.String(); s != "ch39(adv, 2480 MHz)" {
		t.Errorf("String = %q", s)
	}
	if s := ChannelIndex(77).String(); s != "ch77(invalid)" {
		t.Errorf("String = %q", s)
	}
}
