package ble

import (
	"encoding/binary"
	"fmt"
)

// Advertising-channel PDUs and the connection-establishment handshake of
// §2.1: a tag advertises on the three advertising bands; a master answers
// with CONNECT_IND carrying the connection parameters (access address,
// CRC init, channel map, hop increment) that drive the data-channel
// hopping BLoc exploits. (Core Spec Vol 6 Part B §2.3.)

// AdvPDUType is the 4-bit advertising PDU type.
type AdvPDUType byte

// Advertising PDU types (subset used here).
const (
	PDUAdvInd     AdvPDUType = 0x0 // connectable undirected advertising
	PDUAdvNonconn AdvPDUType = 0x2 // non-connectable advertising
	PDUScanReq    AdvPDUType = 0x3
	PDUScanRsp    AdvPDUType = 0x4
	PDUConnectInd AdvPDUType = 0x5 // connection request (a.k.a. CONNECT_REQ)
)

// DeviceAddress is a 48-bit Bluetooth device address.
type DeviceAddress [6]byte

// String renders the address in the conventional colon form.
func (a DeviceAddress) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		a[5], a[4], a[3], a[2], a[1], a[0])
}

// AdvInd is a connectable undirected advertisement.
type AdvInd struct {
	Advertiser DeviceAddress
	Data       []byte // AD structures; opaque here
}

// Marshal serializes the advertising PDU (header + payload).
func (a *AdvInd) Marshal() ([]byte, error) {
	if len(a.Data) > 31 {
		return nil, fmt.Errorf("ble: advertising data %d bytes exceeds 31", len(a.Data))
	}
	payload := make([]byte, 0, 6+len(a.Data))
	payload = append(payload, a.Advertiser[:]...)
	payload = append(payload, a.Data...)
	return marshalAdvPDU(PDUAdvInd, payload), nil
}

// ConnectInd is the connection request: the LLData block carries every
// parameter of the data-channel connection.
type ConnectInd struct {
	Initiator  DeviceAddress
	Advertiser DeviceAddress
	LLData     LLData
}

// LLData is the connection parameter block of CONNECT_IND.
type LLData struct {
	AccessAddress AccessAddress
	CRCInit       uint32 // 24-bit
	WinSize       byte   // transmit window size, 1.25 ms units
	WinOffset     uint16 // transmit window offset, 1.25 ms units
	Interval      uint16 // connection interval, 1.25 ms units (7.5 ms – 4 s)
	Latency       uint16 // slave latency, events
	Timeout       uint16 // supervision timeout, 10 ms units
	ChannelMap    [5]byte
	Hop           byte // hop increment, 5–16
	SCA           byte // sleep clock accuracy, 0–7
}

// Validate checks the specification's parameter ranges.
func (d *LLData) Validate() error {
	if d.Hop < 5 || d.Hop > 16 {
		return fmt.Errorf("ble: hop %d outside [5,16]", d.Hop)
	}
	if d.Interval < 6 || d.Interval > 3200 {
		return fmt.Errorf("ble: interval %d outside [6,3200] (7.5 ms – 4 s)", d.Interval)
	}
	if d.SCA > 7 {
		return fmt.Errorf("ble: SCA %d outside [0,7]", d.SCA)
	}
	if d.CRCInit > 0xFFFFFF {
		return fmt.Errorf("ble: CRC init %#x exceeds 24 bits", d.CRCInit)
	}
	used := d.UsedChannels()
	if len(used) < 2 {
		return fmt.Errorf("ble: channel map enables %d channels, need ≥ 2", len(used))
	}
	return nil
}

// UsedChannels returns the data channels enabled in the channel map.
func (d *LLData) UsedChannels() []ChannelIndex {
	var out []ChannelIndex
	for ch := 0; ch < NumDataChannels; ch++ {
		if d.ChannelMap[ch/8]&(1<<(ch%8)) != 0 {
			out = append(out, ChannelIndex(ch))
		}
	}
	return out
}

// AllChannelsMap returns a channel map with all 37 data channels enabled.
func AllChannelsMap() [5]byte {
	var m [5]byte
	for ch := 0; ch < NumDataChannels; ch++ {
		m[ch/8] |= 1 << (ch % 8)
	}
	return m
}

// Marshal serializes CONNECT_IND.
func (c *ConnectInd) Marshal() ([]byte, error) {
	if err := c.LLData.Validate(); err != nil {
		return nil, err
	}
	payload := make([]byte, 0, 6+6+22)
	payload = append(payload, c.Initiator[:]...)
	payload = append(payload, c.Advertiser[:]...)
	var aa [4]byte
	binary.LittleEndian.PutUint32(aa[:], uint32(c.LLData.AccessAddress))
	payload = append(payload, aa[:]...)
	payload = append(payload, byte(c.LLData.CRCInit), byte(c.LLData.CRCInit>>8), byte(c.LLData.CRCInit>>16))
	payload = append(payload, c.LLData.WinSize)
	payload = binary.LittleEndian.AppendUint16(payload, c.LLData.WinOffset)
	payload = binary.LittleEndian.AppendUint16(payload, c.LLData.Interval)
	payload = binary.LittleEndian.AppendUint16(payload, c.LLData.Latency)
	payload = binary.LittleEndian.AppendUint16(payload, c.LLData.Timeout)
	payload = append(payload, c.LLData.ChannelMap[:]...)
	payload = append(payload, c.LLData.Hop&0x1F|c.LLData.SCA<<5)
	return marshalAdvPDU(PDUConnectInd, payload), nil
}

// marshalAdvPDU frames an advertising PDU: 2-byte header (type, length)
// then payload.
func marshalAdvPDU(t AdvPDUType, payload []byte) []byte {
	out := make([]byte, 0, 2+len(payload))
	out = append(out, byte(t)&0xF)
	out = append(out, byte(len(payload)))
	return append(out, payload...)
}

// ParseAdvPDU decodes an advertising-channel PDU into one of the typed
// structures (AdvInd or ConnectInd; other types return the raw payload).
func ParseAdvPDU(b []byte) (any, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("ble: advertising PDU too short")
	}
	t := AdvPDUType(b[0] & 0xF)
	n := int(b[1])
	if len(b) != 2+n {
		return nil, fmt.Errorf("ble: advertising PDU length %d does not match payload %d", n, len(b)-2)
	}
	payload := b[2:]
	switch t {
	case PDUAdvInd:
		if len(payload) < 6 {
			return nil, fmt.Errorf("ble: ADV_IND payload too short")
		}
		adv := &AdvInd{Data: append([]byte(nil), payload[6:]...)}
		copy(adv.Advertiser[:], payload[:6])
		return adv, nil
	case PDUConnectInd:
		if len(payload) != 34 {
			return nil, fmt.Errorf("ble: CONNECT_IND payload %d bytes, want 34", len(payload))
		}
		c := &ConnectInd{}
		copy(c.Initiator[:], payload[:6])
		copy(c.Advertiser[:], payload[6:12])
		c.LLData.AccessAddress = AccessAddress(binary.LittleEndian.Uint32(payload[12:16]))
		c.LLData.CRCInit = uint32(payload[16]) | uint32(payload[17])<<8 | uint32(payload[18])<<16
		c.LLData.WinSize = payload[19]
		c.LLData.WinOffset = binary.LittleEndian.Uint16(payload[20:22])
		c.LLData.Interval = binary.LittleEndian.Uint16(payload[22:24])
		c.LLData.Latency = binary.LittleEndian.Uint16(payload[24:26])
		c.LLData.Timeout = binary.LittleEndian.Uint16(payload[26:28])
		copy(c.LLData.ChannelMap[:], payload[28:33])
		c.LLData.Hop = payload[33] & 0x1F
		c.LLData.SCA = payload[33] >> 5
		if err := c.LLData.Validate(); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return append([]byte(nil), payload...), nil
	}
}
