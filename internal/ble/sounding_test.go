package ble

import (
	"math"
	"testing"
)

func TestSoundingPDUAirPattern(t *testing.T) {
	// The defining property: after whitening, the payload region on air is
	// exactly runBits zeros followed by runBits ones.
	for _, ch := range []ChannelIndex{0, 13, 36} {
		pdu, layout, err := SoundingPDU(ch, DefaultRunBits)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := pdu.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		framed := AppendCRC(raw)
		air := Whiten(ch, framed)
		bits := BytesToBits(air)
		for i := 0; i < layout.ZeroRunLen; i++ {
			if bits[layout.ZeroRunStart+i] != 0 {
				t.Fatalf("ch %d: air bit %d of zero-run is %d", ch, i, bits[layout.ZeroRunStart+i])
			}
		}
		for i := 0; i < layout.OneRunLen; i++ {
			if bits[layout.OneRunStart+i] != 1 {
				t.Fatalf("ch %d: air bit %d of one-run is %d", ch, i, bits[layout.OneRunStart+i])
			}
		}
	}
}

func TestSoundingPDUIsValidPacket(t *testing.T) {
	// Sounding packets must remain standard, parseable BLE packets.
	pdu, _, err := SoundingPDU(7, DefaultRunBits)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{Access: 0x8E89BED6 ^ 0x1010, Channel: 7, PDU: pdu}
	air, err := pkt.AirBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAir(7, air)
	if err != nil {
		t.Fatalf("sounding packet failed to parse: %v", err)
	}
	if len(got.PDU.Payload) != 2*DefaultRunBits/8 {
		t.Errorf("payload length %d", len(got.PDU.Payload))
	}
}

func TestSoundingPacketLayoutOffsets(t *testing.T) {
	pkt, layout, err := SoundingPacket(0x12345678, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	airBits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	// Verify the absolute offsets point at the settled runs.
	for i := 0; i < layout.ZeroRunLen; i++ {
		if airBits[layout.ZeroRunStart+i] != 0 {
			t.Fatalf("absolute zero-run offset wrong at %d", i)
		}
	}
	for i := 0; i < layout.OneRunLen; i++ {
		if airBits[layout.OneRunStart+i] != 1 {
			t.Fatalf("absolute one-run offset wrong at %d", i)
		}
	}
}

func TestSoundingModulatedTonesSettle(t *testing.T) {
	// End to end (§4, Fig. 4b): the modulated sounding packet must hold a
	// stable tone at −deviation during the zero run and +deviation during
	// the one run, with generous margins for filter settling.
	const sps = 8
	pkt, layout, err := SoundingPacket(0x3141592F, 21, DefaultRunBits)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := pkt.AirBits()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModulator(sps)
	iq := m.Modulate(bits)
	track := m.FrequencyTrack(iq)

	check := func(runStart, runLen int, want float64) {
		s, e := StableRegion(runStart, runLen, 4)
		for bit := s; bit < e; bit++ {
			for sub := 0; sub < sps; sub++ {
				v := track[bit*sps+sub]
				if math.Abs(v-want) > 0.02 {
					t.Fatalf("bit %d sample %d: deviation %v, want %v", bit, sub, v, want)
				}
			}
		}
	}
	check(layout.ZeroRunStart, layout.ZeroRunLen, -1)
	check(layout.OneRunStart, layout.OneRunLen, +1)
}

func TestSoundingErrors(t *testing.T) {
	if _, _, err := SoundingPDU(0, 0); err == nil {
		t.Error("zero runBits should fail")
	}
	if _, _, err := SoundingPDU(0, 12); err == nil {
		t.Error("non-multiple-of-8 runBits should fail")
	}
	if _, _, err := SoundingPDU(0, 8*200); err == nil {
		t.Error("oversized runs should fail")
	}
	if _, _, err := SoundingPDU(41, 40); err == nil {
		t.Error("invalid channel should fail")
	}
}

func TestStableRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("margin consuming the whole run should panic")
		}
	}()
	StableRegion(0, 10, 5)
}
