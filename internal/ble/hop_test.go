package ble

import "testing"

func TestHopSequenceVisitsAllChannels(t *testing.T) {
	// §2.1: since 37 is prime, any hop increment visits all data channels
	// before repeating. This is the property BLoc's band stitching relies
	// on, so test it for every legal increment and several start channels.
	for hop := 5; hop <= 16; hop++ {
		for _, start := range []ChannelIndex{0, 7, 36} {
			h, err := NewHopSequence(start, hop)
			if err != nil {
				t.Fatalf("NewHopSequence(%d, %d): %v", start, hop, err)
			}
			seen := map[ChannelIndex]bool{}
			for _, c := range h.Cycle(NumDataChannels) {
				if seen[c] {
					t.Fatalf("hop=%d start=%d: channel %d repeated before full cycle", hop, start, c)
				}
				seen[c] = true
			}
			if len(seen) != NumDataChannels {
				t.Fatalf("hop=%d: visited %d channels, want 37", hop, len(seen))
			}
			// The 38th event returns to the start.
			if h.Next() != start {
				t.Fatalf("hop=%d: cycle did not wrap to start", hop)
			}
		}
	}
}

func TestHopSequenceFormula(t *testing.T) {
	// f_next = (f_cur + f_hop) mod 37, the paper's exact example: start at
	// 10 with hop 3 is illegal (hop < 5), so verify with hop 5 and the
	// formula directly.
	h, err := NewHopSequence(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c := h.Next(); c != 15 {
		t.Errorf("Next = %d, want 15", c)
	}
	// Wraparound.
	h2, _ := NewHopSequence(35, 5)
	if c := h2.Next(); c != (35+5)%37 {
		t.Errorf("Next = %d, want %d", c, (35+5)%37)
	}
}

func TestHopSequenceRejectsBadParams(t *testing.T) {
	if _, err := NewHopSequence(0, 4); err == nil {
		t.Error("hop 4 should be rejected")
	}
	if _, err := NewHopSequence(0, 17); err == nil {
		t.Error("hop 17 should be rejected")
	}
	if _, err := NewHopSequence(37, 5); err == nil {
		t.Error("advertising channel as start should be rejected")
	}
	if _, err := NewHopSequence(-1, 5); err == nil {
		t.Error("negative start should be rejected")
	}
}

func TestHopSequenceChannelMapRemapping(t *testing.T) {
	h, err := NewHopSequence(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Blacklist everything except channels 3 and 20 (e.g. Wi-Fi
	// interference, §8.6 context).
	if err := h.SetChannelMap([]ChannelIndex{3, 20}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c := h.Next()
		if c != 3 && c != 20 {
			t.Fatalf("event %d used blacklisted channel %d", i, c)
		}
	}
}

func TestHopSequenceChannelMapValidation(t *testing.T) {
	h, _ := NewHopSequence(0, 7)
	if err := h.SetChannelMap([]ChannelIndex{5}); err == nil {
		t.Error("single-channel map should be rejected")
	}
	if err := h.SetChannelMap([]ChannelIndex{5, 38}); err == nil {
		t.Error("advertising channel in map should be rejected")
	}
	if err := h.SetChannelMap([]ChannelIndex{1, 1, 2}); err != nil {
		t.Errorf("duplicate channels should be tolerated: %v", err)
	}
}

func TestHopSequenceSubsampledMapStillCyclesUniformly(t *testing.T) {
	// §8.6: with every other channel blacklisted, the sequence must still
	// spread over all remaining channels.
	h, _ := NewHopSequence(0, 11)
	var usable []ChannelIndex
	for c := ChannelIndex(0); c < NumDataChannels; c += 2 {
		usable = append(usable, c)
	}
	if err := h.SetChannelMap(usable); err != nil {
		t.Fatal(err)
	}
	counts := map[ChannelIndex]int{}
	for i := 0; i < 37*10; i++ {
		counts[h.Next()]++
	}
	if len(counts) != len(usable) {
		t.Fatalf("visited %d channels, want %d", len(counts), len(usable))
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("channel %d never used", c)
		}
	}
}

func TestHopIncrementAccessor(t *testing.T) {
	h, err := NewHopSequence(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h.HopIncrement() != 9 {
		t.Errorf("HopIncrement = %d", h.HopIncrement())
	}
}
