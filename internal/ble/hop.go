package ble

import "fmt"

// HopSequence implements BLE's channel-selection algorithm #1 over the 37
// data channels: after every connection event the unmapped channel advances
// by the hop increment, modulo 37 (§2.1 of the paper;
// f_next = (f_cur + f_hop) mod 37). Because 37 is prime, any hop increment
// in [5, 16] visits every data channel exactly once per 37 events — the
// property BLoc exploits to stitch an 80 MHz virtual band.
//
// Channel remapping for blacklisted ("used ↦ unused") channels is supported
// through the channel map: if the selected channel is marked unused it is
// remapped onto the used-channel list by index modulo the number of used
// channels, as in the Core Specification.
type HopSequence struct {
	hop     int
	current int // unmapped channel, 0..36
	used    [NumDataChannels]bool
	numUsed int
}

// NewHopSequence creates a hop sequence starting at channel first with the
// given hop increment. The Core Specification restricts hopIncrement to
// [5, 16]; values outside that range return an error, as does an invalid
// starting channel.
func NewHopSequence(first ChannelIndex, hopIncrement int) (*HopSequence, error) {
	if hopIncrement < 5 || hopIncrement > 16 {
		return nil, fmt.Errorf("ble: hop increment %d outside [5, 16]", hopIncrement)
	}
	if first < 0 || int(first) >= NumDataChannels {
		return nil, fmt.Errorf("ble: starting channel %d is not a data channel", first)
	}
	h := &HopSequence{hop: hopIncrement, current: int(first)}
	for i := range h.used {
		h.used[i] = true
	}
	h.numUsed = NumDataChannels
	return h, nil
}

// HopIncrement returns the connection's hop increment.
func (h *HopSequence) HopIncrement() int { return h.hop }

// SetChannelMap marks which data channels are used. At least two channels
// must remain used (the specification requires ≥ 2). Unknown indices and
// advertising channels in the list are rejected.
func (h *HopSequence) SetChannelMap(usedChannels []ChannelIndex) error {
	var used [NumDataChannels]bool
	n := 0
	for _, c := range usedChannels {
		if c < 0 || int(c) >= NumDataChannels {
			return fmt.Errorf("ble: channel %d is not a data channel", c)
		}
		if !used[c] {
			used[c] = true
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("ble: channel map needs at least 2 used channels, got %d", n)
	}
	h.used = used
	h.numUsed = n
	return nil
}

// Current returns the channel for the current connection event, after
// remapping.
func (h *HopSequence) Current() ChannelIndex {
	if h.used[h.current] {
		return ChannelIndex(h.current)
	}
	// Remap: index into the used-channel list by unmapped % numUsed.
	idx := h.current % h.numUsed
	for c := 0; c < NumDataChannels; c++ {
		if h.used[c] {
			if idx == 0 {
				return ChannelIndex(c)
			}
			idx--
		}
	}
	panic("ble: unreachable: no used channel found")
}

// Next advances to the next connection event and returns its (remapped)
// channel.
func (h *HopSequence) Next() ChannelIndex {
	h.current = (h.current + h.hop) % NumDataChannels
	return h.Current()
}

// Cycle returns the channels of the next n connection events, starting with
// the current one, advancing the sequence n−1 times. Cycle(37) with a full
// channel map therefore returns a permutation of all data channels.
func (h *HopSequence) Cycle(n int) []ChannelIndex {
	out := make([]ChannelIndex, 0, n)
	if n <= 0 {
		return out
	}
	out = append(out, h.Current())
	for i := 1; i < n; i++ {
		out = append(out, h.Next())
	}
	return out
}
