package ble

// Data whitening as specified for the BLE link layer (Core Spec Vol 6,
// Part B, §3.2): a 7-bit LFSR with polynomial x⁷ + x⁴ + 1. Position 0 is
// initialized to 1 and positions 1–6 hold the channel index, MSB in
// position 1. The output bit is taken from position 6 and XORed onto the
// PDU and CRC bits, LSB of each byte first. Whitening is an XOR with a
// data-independent keystream and is therefore its own inverse: the same
// function both whitens and de-whitens.

// Whiten XORs the BLE whitening sequence for the given channel onto data,
// returning a new slice. Applying it twice returns the original data.
func Whiten(channel ChannelIndex, data []byte) []byte {
	// reg[0] .. reg[6] are LFSR positions 0..6.
	var reg [7]byte
	reg[0] = 1
	for i := 0; i < 6; i++ {
		// Position 1 holds the channel index MSB (bit 5), position 6 the LSB.
		reg[1+i] = byte(channel>>(5-i)) & 1
	}
	out := make([]byte, len(data))
	for i, b := range data {
		var ob byte
		for bit := 0; bit < 8; bit++ {
			w := reg[6]
			ob |= (((b >> bit) & 1) ^ w) << bit
			// Shift: p0 ← p6, p4 ← p3 ⊕ p6, pi ← p(i−1) otherwise.
			fb := reg[6]
			copy(reg[1:], reg[:6])
			reg[0] = fb
			reg[4] ^= fb
		}
		out[i] = ob
	}
	return out
}
