package ble

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Link-layer packet framing (Core Spec Vol 6 Part B §2): every air packet
// is preamble ‖ access address ‖ PDU ‖ CRC, where PDU+CRC are whitened with
// the channel-dependent sequence and all bytes go on air LSB-first.

// AccessAddress identifies a link-layer connection (or the fixed
// advertising value 0x8E89BED6).
type AccessAddress uint32

// AdvAccessAddress is the fixed access address of all advertising PDUs.
const AdvAccessAddress AccessAddress = 0x8E89BED6

// Preamble returns the preamble byte for this access address: alternating
// bits starting with the complement of the access address LSB, so the
// preamble/AA boundary keeps alternating (0xAA if the AA LSB is 0,
// 0x55 if it is 1).
func (a AccessAddress) Preamble() byte {
	if a&1 == 0 {
		return 0xAA
	}
	return 0x55
}

// LLID is the 2-bit logical link identifier in the data PDU header.
type LLID byte

// Data PDU LLID values.
const (
	LLIDContinuation LLID = 0x1 // continuation fragment / empty PDU
	LLIDStart        LLID = 0x2 // start of L2CAP message or complete message
	LLIDControl      LLID = 0x3 // LL control PDU
)

// DataPDU is a link-layer data channel PDU: a 2-byte header followed by a
// payload of at most 255 bytes (4.2+ data length extension; legacy is 27,
// enforced by the caller if needed).
type DataPDU struct {
	LLID    LLID
	NESN    bool // next expected sequence number
	SN      bool // sequence number
	MD      bool // more data
	Payload []byte
}

// MaxPayload is the maximum data PDU payload length with the LE data
// length extension.
const MaxPayload = 255

// ErrPayloadTooLong is returned when a PDU payload exceeds MaxPayload.
var ErrPayloadTooLong = errors.New("ble: payload exceeds 255 bytes")

// Marshal serializes the PDU header and payload (without CRC/whitening).
func (p *DataPDU) Marshal() ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return nil, ErrPayloadTooLong
	}
	h := byte(p.LLID) & 0x3
	if p.NESN {
		h |= 1 << 2
	}
	if p.SN {
		h |= 1 << 3
	}
	if p.MD {
		h |= 1 << 4
	}
	out := make([]byte, 2+len(p.Payload))
	out[0] = h
	out[1] = byte(len(p.Payload))
	copy(out[2:], p.Payload)
	return out, nil
}

// UnmarshalDataPDU parses a data PDU (header + payload, no CRC).
func UnmarshalDataPDU(b []byte) (*DataPDU, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("ble: PDU too short (%d bytes)", len(b))
	}
	n := int(b[1])
	if len(b) != 2+n {
		return nil, fmt.Errorf("ble: PDU length field %d does not match %d payload bytes", n, len(b)-2)
	}
	return &DataPDU{
		LLID:    LLID(b[0] & 0x3),
		NESN:    b[0]&(1<<2) != 0,
		SN:      b[0]&(1<<3) != 0,
		MD:      b[0]&(1<<4) != 0,
		Payload: append([]byte(nil), b[2:]...),
	}, nil
}

// Packet is a fully framed link-layer packet ready for the PHY.
type Packet struct {
	Access  AccessAddress
	Channel ChannelIndex
	PDU     *DataPDU
}

// AirBytes returns the on-air byte sequence: preamble, access address
// (little-endian), whitened PDU+CRC.
func (p *Packet) AirBytes() ([]byte, error) {
	pdu, err := p.PDU.Marshal()
	if err != nil {
		return nil, err
	}
	framed := AppendCRC(pdu)
	whitened := Whiten(p.Channel, framed)
	out := make([]byte, 0, 1+4+len(whitened))
	out = append(out, p.Access.Preamble())
	var aa [4]byte
	binary.LittleEndian.PutUint32(aa[:], uint32(p.Access))
	out = append(out, aa[:]...)
	out = append(out, whitened...)
	return out, nil
}

// AirBits returns the on-air bit sequence (LSB of each byte first), the
// exact symbol stream handed to the GFSK modulator.
func (p *Packet) AirBits() ([]byte, error) {
	bytes, err := p.AirBytes()
	if err != nil {
		return nil, err
	}
	return BytesToBits(bytes), nil
}

// ParseAir decodes an on-air byte sequence captured on the given channel
// back into a packet, verifying the CRC.
func ParseAir(channel ChannelIndex, air []byte) (*Packet, error) {
	if len(air) < 1+4+2+3 {
		return nil, fmt.Errorf("ble: air frame too short (%d bytes)", len(air))
	}
	aa := AccessAddress(binary.LittleEndian.Uint32(air[1:5]))
	if air[0] != aa.Preamble() {
		return nil, fmt.Errorf("ble: preamble %#x does not match access address %#x", air[0], uint32(aa))
	}
	dewhitened := Whiten(channel, air[5:])
	if !CheckCRC(dewhitened) {
		return nil, errors.New("ble: CRC check failed")
	}
	pdu, err := UnmarshalDataPDU(dewhitened[:len(dewhitened)-3])
	if err != nil {
		return nil, err
	}
	return &Packet{Access: aa, Channel: channel, PDU: pdu}, nil
}

// BytesToBits expands bytes into bits, LSB of each byte first (BLE air
// order). Each output element is 0 or 1.
func BytesToBits(bs []byte) []byte {
	out := make([]byte, 0, len(bs)*8)
	for _, b := range bs {
		for bit := 0; bit < 8; bit++ {
			out = append(out, (b>>bit)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (LSB-first per byte) back into bytes. The bit
// count must be a multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("ble: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out, nil
}
