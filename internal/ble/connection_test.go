package ble

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func testAddr(b byte) DeviceAddress {
	return DeviceAddress{b, b + 1, b + 2, b + 3, b + 4, b + 5}
}

func TestAdvIndRoundTrip(t *testing.T) {
	adv := &AdvInd{Advertiser: testAddr(0x10), Data: []byte{0x02, 0x01, 0x06}}
	raw, err := adv.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	parsed, ok := got.(*AdvInd)
	if !ok {
		t.Fatalf("parsed %T", got)
	}
	if parsed.Advertiser != adv.Advertiser || !bytes.Equal(parsed.Data, adv.Data) {
		t.Errorf("round trip mismatch: %+v", parsed)
	}
}

func TestAdvIndDataLimit(t *testing.T) {
	adv := &AdvInd{Advertiser: testAddr(1), Data: make([]byte, 32)}
	if _, err := adv.Marshal(); err == nil {
		t.Error("32-byte advertising data should be rejected")
	}
}

func TestConnectIndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	ind, err := DefaultConnectInd(testAddr(0xA0), testAddr(0xB0), 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ind.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	parsed, ok := got.(*ConnectInd)
	if !ok {
		t.Fatalf("parsed %T", got)
	}
	if parsed.LLData != ind.LLData {
		t.Errorf("LLData mismatch:\n got %+v\nwant %+v", parsed.LLData, ind.LLData)
	}
	if parsed.Initiator != ind.Initiator || parsed.Advertiser != ind.Advertiser {
		t.Error("addresses mismatch")
	}
}

func TestLLDataValidation(t *testing.T) {
	base := LLData{
		AccessAddress: 0x12345678, CRCInit: 0x555555, Interval: 6,
		Timeout: 100, ChannelMap: AllChannelsMap(), Hop: 7,
	}
	bad := base
	bad.Hop = 4
	if err := bad.Validate(); err == nil {
		t.Error("hop 4 should fail")
	}
	bad = base
	bad.Interval = 5
	if err := bad.Validate(); err == nil {
		t.Error("interval 5 should fail")
	}
	bad = base
	bad.SCA = 8
	if err := bad.Validate(); err == nil {
		t.Error("SCA 8 should fail")
	}
	bad = base
	bad.ChannelMap = [5]byte{0x01} // one channel
	if err := bad.Validate(); err == nil {
		t.Error("single-channel map should fail")
	}
	bad = base
	bad.CRCInit = 0x1000000
	if err := bad.Validate(); err == nil {
		t.Error("25-bit CRC init should fail")
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid LLData rejected: %v", err)
	}
}

func TestChannelMapRoundTrip(t *testing.T) {
	m := AllChannelsMap()
	d := LLData{ChannelMap: m}
	used := d.UsedChannels()
	if len(used) != NumDataChannels {
		t.Fatalf("all-channels map enables %d", len(used))
	}
	// Bits above channel 36 must be unset.
	if m[4]&0xE0 != 0 {
		t.Error("channel map sets bits beyond channel 36")
	}
}

func TestEstablishAndHop(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	ind, err := DefaultConnectInd(testAddr(1), testAddr(2), 11, rng)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	if !conn.Alive() {
		t.Fatal("fresh connection not alive")
	}
	// A sounding cycle visits all 37 channels exactly once.
	cycle, err := conn.SoundingCycle()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ChannelIndex]bool{}
	for _, ch := range cycle {
		if seen[ch] {
			t.Fatalf("channel %d repeated in cycle", ch)
		}
		seen[ch] = true
	}
	if len(seen) != NumDataChannels {
		t.Fatalf("cycle visited %d channels", len(seen))
	}
	// The event counter advanced a full cycle.
	if conn.Event() != uint16(NumDataChannels) {
		t.Errorf("event = %d, want %d", conn.Event(), NumDataChannels)
	}
}

func TestSupervisionTimeout(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	ind, err := DefaultConnectInd(testAddr(1), testAddr(2), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 100 ms timeout at 7.5 ms intervals → 13 missed events kill it.
	ind.LLData.Timeout = 10
	conn, err := Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		conn.EventMissed()
		if !conn.Alive() {
			t.Fatalf("connection died after %d misses", i+1)
		}
	}
	// A received packet resets the counter.
	conn.PacketReceived()
	for i := 0; i < 12; i++ {
		conn.EventMissed()
	}
	if !conn.Alive() {
		t.Fatal("reset did not take effect")
	}
	conn.EventMissed()
	if conn.Alive() {
		t.Fatal("connection survived past supervision timeout")
	}
	if _, err := conn.NextEvent(); err == nil {
		t.Error("NextEvent on dead connection should fail")
	}
	if _, err := conn.SoundingCycle(); err == nil {
		t.Error("SoundingCycle on dead connection should fail")
	}
}

func TestNextPDUSequenceNumbers(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	ind, _ := DefaultConnectInd(testAddr(1), testAddr(2), 5, rng)
	conn, err := Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	p1 := conn.NextPDU(LLIDStart, []byte("a"))
	p2 := conn.NextPDU(LLIDContinuation, []byte("b"))
	if p1.SN == p2.SN {
		t.Error("SN did not alternate")
	}
}

func TestNewAccessAddressConstraints(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 200; i++ {
		aa := NewAccessAddress(rng)
		if aa == AdvAccessAddress {
			t.Fatal("generated the advertising access address")
		}
		if maxRun(uint32(aa)) >= 6 {
			t.Fatalf("AA %#x has a %d-bit run", uint32(aa), maxRun(uint32(aa)))
		}
		if transitions(uint32(aa)>>26) < 2 {
			t.Fatalf("AA %#x has too few transitions in the top bits", uint32(aa))
		}
	}
}

func TestMaxRunAndTransitions(t *testing.T) {
	if maxRun(0x0000003F) != 26 { // 6 ones then 26 zeros
		t.Errorf("maxRun(0x3F) = %d", maxRun(0x3F))
	}
	if maxRun(0xAAAAAAAA) != 1 {
		t.Errorf("maxRun(alternating) = %d", maxRun(0xAAAAAAAA))
	}
	if transitions(0b101010) != 5 {
		t.Errorf("transitions = %d", transitions(0b101010))
	}
	if transitions(0) != 0 {
		t.Errorf("transitions(0) = %d", transitions(0))
	}
}

func TestParseAdvPDUErrors(t *testing.T) {
	if _, err := ParseAdvPDU([]byte{1}); err == nil {
		t.Error("short PDU should fail")
	}
	if _, err := ParseAdvPDU([]byte{0x0, 9, 1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ParseAdvPDU([]byte{0x0, 2, 1, 2}); err == nil {
		t.Error("ADV_IND shorter than an address should fail")
	}
	if _, err := ParseAdvPDU([]byte{0x5, 3, 1, 2, 3}); err == nil {
		t.Error("short CONNECT_IND should fail")
	}
	// Unknown type returns the raw payload.
	got, err := ParseAdvPDU([]byte{0x8, 2, 0xDE, 0xAD})
	if err != nil {
		t.Fatal(err)
	}
	if raw, ok := got.([]byte); !ok || !bytes.Equal(raw, []byte{0xDE, 0xAD}) {
		t.Errorf("unknown type parse = %v", got)
	}
}

func TestConnectionParamsAccessor(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	ind, _ := DefaultConnectInd(testAddr(1), testAddr(2), 8, rng)
	conn, err := Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Params().Hop != 8 {
		t.Errorf("Params().Hop = %d", conn.Params().Hop)
	}
}

func TestDeviceAddressString(t *testing.T) {
	a := DeviceAddress{0x01, 0x02, 0x03, 0x04, 0x05, 0x06}
	if a.String() != "06:05:04:03:02:01" {
		t.Errorf("address = %q", a.String())
	}
}
