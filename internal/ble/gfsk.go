package ble

import (
	"fmt"
	"math"

	"bloc/internal/dsp"
)

// GFSK implements the LE 1M PHY modulator and demodulator: NRZ bits are
// Gaussian-filtered (BT = 0.5) and frequency-modulated with modulation
// index 0.5, so bit 0 sits FreqDeviationHz below the channel center and
// bit 1 the same amount above (§2.1, Fig. 1b of the paper).

// Modulator converts bit streams into complex baseband IQ samples.
type Modulator struct {
	SPS      int     // samples per symbol (≥ 2)
	BT       float64 // Gaussian filter bandwidth-time product
	ModIndex float64 // modulation index h (0.5 for BLE)
	Span     int     // Gaussian filter span in symbols per side
}

// NewModulator returns a modulator with BLE's PHY parameters at the given
// oversampling rate.
func NewModulator(sps int) *Modulator {
	return &Modulator{SPS: sps, BT: GaussianBT, ModIndex: 0.5, Span: 3}
}

// SampleRate returns the baseband sample rate in Hz.
func (m *Modulator) SampleRate() float64 { return SymbolRateHz * float64(m.SPS) }

// Modulate converts bits (0/1 values) to unit-amplitude complex baseband
// samples, len(bits)·SPS long. The instantaneous frequency is
// (h/2)·SymbolRate·s(t) where s(t) is the Gaussian-filtered NRZ waveform,
// i.e. ±FreqDeviationHz once a run of equal bits settles.
func (m *Modulator) Modulate(bits []byte) []complex128 {
	if m.SPS < 2 {
		panic(fmt.Sprintf("ble: modulator SPS %d < 2", m.SPS))
	}
	shaped := dsp.ShapeBits(bits, m.BT, m.SPS, m.Span)
	out := make([]complex128, len(shaped))
	phase := 0.0
	// Phase increment per sample for a settled run: 2π·(h/2)·(1/SPS).
	k := math.Pi * m.ModIndex / float64(m.SPS)
	for i, s := range shaped {
		phase += k * s
		sin, cos := math.Sincos(phase)
		out[i] = complex(cos, sin)
	}
	return out
}

// FrequencyTrack returns the instantaneous frequency estimate of the IQ
// samples in units of the frequency deviation: +1 means the signal sits at
// the bit-1 tone, −1 at the bit-0 tone. It is the quadrature discriminator
// arg(x[n]·conj(x[n−1])) normalized by the settled per-sample phase step.
func (m *Modulator) FrequencyTrack(iq []complex128) []float64 {
	if len(iq) == 0 {
		return nil
	}
	k := math.Pi * m.ModIndex / float64(m.SPS)
	out := make([]float64, len(iq))
	for i := 1; i < len(iq); i++ {
		d := iq[i] * conj(iq[i-1])
		out[i] = math.Atan2(imag(d), real(d)) / k
	}
	out[0] = out[min(1, len(out)-1)]
	return out
}

// Demodulate recovers bits from complex baseband samples produced by
// Modulate (possibly scaled/rotated/noisy). Bits are decided by the sign of
// the discriminator output averaged over the central half of each symbol.
func (m *Modulator) Demodulate(iq []complex128) []byte {
	track := m.FrequencyTrack(iq)
	n := len(iq) / m.SPS
	bits := make([]byte, n)
	lo := m.SPS / 4
	hi := m.SPS - m.SPS/4
	if hi <= lo {
		hi = lo + 1
	}
	for i := 0; i < n; i++ {
		var sum float64
		for s := lo; s < hi; s++ {
			sum += track[i*m.SPS+s]
		}
		if sum > 0 {
			bits[i] = 1
		}
	}
	return bits
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
