package ble

import (
	"math"
	"math/rand/v2"
	"testing"
)

// ber measures the bit error rate of the GFSK modem at a given per-sample
// SNR (dB) over n bits.
func ber(t *testing.T, snrDB float64, n int, seed uint64) float64 {
	t.Helper()
	m := NewModulator(8)
	rng := rand.New(rand.NewPCG(seed, 99))
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.IntN(2))
	}
	iq := m.Modulate(bits)
	sigma := math.Pow(10, -snrDB/20) / math.Sqrt2
	for i := range iq {
		iq[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	got := m.Demodulate(iq)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	return float64(errs) / float64(n)
}

// TestBERWaterfall characterizes the demodulator: essentially error-free
// at high SNR, degrading monotonically as noise grows — the waterfall
// every FSK receiver exhibits.
func TestBERWaterfall(t *testing.T) {
	const n = 4000
	high := ber(t, 20, n, 1)
	mid := ber(t, 8, n, 1)
	low := ber(t, 0, n, 1)
	t.Logf("BER: 20 dB %.4f | 8 dB %.4f | 0 dB %.4f", high, mid, low)
	if high > 0.001 {
		t.Errorf("BER at 20 dB = %v, want ≈ 0", high)
	}
	if low <= mid || mid < high {
		t.Errorf("BER not monotone in noise: %v, %v, %v", high, mid, low)
	}
	if low < 0.005 {
		t.Errorf("BER at 0 dB = %v suspiciously low — noise not applied?", low)
	}
}

// TestPacketLossDetectedByCRC sends whole packets through a noisy PHY and
// verifies corrupted packets are rejected by the CRC rather than accepted
// with wrong payloads.
func TestPacketLossDetectedByCRC(t *testing.T) {
	m := NewModulator(8)
	rng := rand.New(rand.NewPCG(7, 7))
	accepted, wrongPayload := 0, 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		payload := make([]byte, 20)
		for i := range payload {
			payload[i] = byte(rng.UintN(256))
		}
		pkt := &Packet{
			Access:  0x2A5C7E31,
			Channel: ChannelIndex(trial % NumDataChannels),
			PDU:     &DataPDU{LLID: LLIDStart, Payload: payload},
		}
		bits, err := pkt.AirBits()
		if err != nil {
			t.Fatal(err)
		}
		iq := m.Modulate(bits)
		// 12 dB: marginal SNR — some packets survive cleanly, others take
		// bit errors the CRC must catch.
		sigma := math.Pow(10, -12.0/20) / math.Sqrt2
		for i := range iq {
			iq[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
		rxBits := m.Demodulate(iq)
		rxBytes, err := BitsToBytes(rxBits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseAir(pkt.Channel, rxBytes)
		if err != nil {
			continue // rejected: fine
		}
		accepted++
		if string(got.PDU.Payload) != string(payload) {
			wrongPayload++
		}
	}
	t.Logf("%d/%d packets accepted at 12 dB", accepted, trials)
	if wrongPayload > 0 {
		t.Errorf("%d corrupted packets passed the CRC", wrongPayload)
	}
	if accepted == 0 {
		t.Error("no packets decoded at 12 dB — receiver too fragile")
	}
	if accepted == trials {
		t.Error("every packet survived 12 dB — noise not biting, test vacuous")
	}
}
