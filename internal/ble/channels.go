// Package ble implements the Bluetooth Low Energy protocol substrate the
// BLoc reproduction runs on: the 40-band channel map of the 2.4 GHz ISM
// spectrum, adaptive frequency hopping, link-layer packet framing (preamble,
// access address, PDU, CRC-24, data whitening) and the GFSK PHY (Gaussian
// filter BT = 0.5, modulation index 0.5) — everything §2.1 and §4 of the
// paper depend on, implemented from the Bluetooth Core Specification
// (v4.2 PHY/Link Layer).
package ble

import "fmt"

// PHY constants from the Bluetooth Core Specification (LE 1M PHY) and the
// paper's §2.1.
const (
	// NumChannels is the total number of BLE RF bands.
	NumChannels = 40
	// NumDataChannels is the number of non-advertising bands the
	// connection hops over. Its primality guarantees every hop increment
	// visits all bands (§2.1).
	NumDataChannels = 37
	// ChannelWidthHz is the width of one BLE band.
	ChannelWidthHz = 2e6
	// BandStartHz is the bottom of the BLE spectrum (channel 37 sits at
	// 2402 MHz, the lowest center frequency).
	BandStartHz = 2.402e9
	// BandSpanHz is the total spectrum BLoc stitches together (§5.1).
	BandSpanHz = 80e6
	// SymbolRateHz is the LE 1M PHY symbol rate: 1 Msym/s.
	SymbolRateHz = 1e6
	// FreqDeviationHz is the nominal GFSK frequency deviation: modulation
	// index 0.5 at 1 Msym/s puts f1 − f0 = 500 kHz, i.e. ±250 kHz around
	// the channel center. (The paper's footnote 2 quotes the two data
	// tones as 1 MHz apart, the maximum deviation BLE allows; we keep the
	// nominal 250 kHz and expose the value as a constant either way.)
	FreqDeviationHz = 250e3
	// GaussianBT is the bandwidth-time product of the LE pulse filter.
	GaussianBT = 0.5
)

// ChannelIndex identifies a BLE RF band. Data channels are 0–36;
// advertising channels are 37, 38 and 39.
type ChannelIndex int

// Advertising channel indices.
const (
	Adv37 ChannelIndex = 37 // 2402 MHz
	Adv38 ChannelIndex = 38 // 2426 MHz
	Adv39 ChannelIndex = 39 // 2480 MHz
)

// Valid reports whether c names one of the 40 BLE channels.
func (c ChannelIndex) Valid() bool { return c >= 0 && c < NumChannels }

// IsAdvertising reports whether c is one of the three advertising bands.
func (c ChannelIndex) IsAdvertising() bool { return c >= 37 && c <= 39 }

// CenterFreq returns the RF center frequency of the channel in Hz, per the
// Core Specification channel map: advertising channels 37/38/39 sit at
// 2402/2426/2480 MHz; data channels 0–10 at 2404–2424 MHz and 11–36 at
// 2428–2478 MHz (skipping the advertising slots). It panics on an invalid
// index.
func (c ChannelIndex) CenterFreq() float64 {
	switch {
	case c >= 0 && c <= 10:
		return 2404e6 + float64(c)*2e6
	case c >= 11 && c <= 36:
		return 2428e6 + float64(c-11)*2e6
	case c == Adv37:
		return 2402e6
	case c == Adv38:
		return 2426e6
	case c == Adv39:
		return 2480e6
	default:
		panic(fmt.Sprintf("ble: invalid channel index %d", int(c)))
	}
}

// String implements fmt.Stringer.
func (c ChannelIndex) String() string {
	kind := "data"
	if c.IsAdvertising() {
		kind = "adv"
	}
	if !c.Valid() {
		return fmt.Sprintf("ch%d(invalid)", int(c))
	}
	return fmt.Sprintf("ch%d(%s, %.0f MHz)", int(c), kind, c.CenterFreq()/1e6)
}

// DataChannels returns the 37 data channel indices in ascending order.
func DataChannels() []ChannelIndex {
	out := make([]ChannelIndex, NumDataChannels)
	for i := range out {
		out[i] = ChannelIndex(i)
	}
	return out
}

// AllChannels returns all 40 channel indices in ascending order.
func AllChannels() []ChannelIndex {
	out := make([]ChannelIndex, NumChannels)
	for i := range out {
		out[i] = ChannelIndex(i)
	}
	return out
}

// ChannelForFreq returns the channel whose center frequency is closest to
// freqHz among data channels.
func ChannelForFreq(freqHz float64) ChannelIndex {
	best := ChannelIndex(0)
	bestDiff := -1.0
	for _, c := range DataChannels() {
		d := freqHz - c.CenterFreq()
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			best, bestDiff = c, d
		}
	}
	return best
}
