package ble

import (
	"math"
	"math/cmplx"
	"testing"
)

func cteChannels(phases ...float64) []complex128 {
	out := make([]complex128, len(phases))
	for i, p := range phases {
		out[i] = cmplx.Rect(0.3, p)
	}
	return out
}

func TestCTEConfigValidation(t *testing.T) {
	bad := []CTEConfig{
		{LengthUs: 12, SlotUs: 2, Antennas: 4},  // too short / not ×8
		{LengthUs: 168, SlotUs: 2, Antennas: 4}, // too long
		{LengthUs: 160, SlotUs: 3, Antennas: 4}, // bad slot
		{LengthUs: 160, SlotUs: 2, Antennas: 1}, // one antenna
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultCTEConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCTERoundTripRecoverRelativePhases(t *testing.T) {
	cfg := DefaultCTEConfig(4)
	h := cteChannels(0.4, 1.1, -0.9, 2.3)
	rotor := cmplx.Rect(1, -2.0) // LO offset, common to all antennas
	samples, err := SimulateCTE(cfg, h, rotor, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, tone, err := EstimateCTE(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tone-FreqDeviationHz) > 100 {
		t.Errorf("tone estimate %v, want %v", tone, FreqDeviationHz)
	}
	// Relative phases recovered (antenna 0 normalized to 0).
	for j := 1; j < 4; j++ {
		want := cmplx.Phase(h[j] * cmplx.Conj(h[0]))
		got := cmplx.Phase(est[j])
		if math.Abs(math.Atan2(math.Sin(got-want), math.Cos(got-want))) > 1e-6 {
			t.Errorf("antenna %d: phase %v, want %v", j, got, want)
		}
		if math.Abs(cmplx.Abs(est[j])-0.3) > 1e-9 {
			t.Errorf("antenna %d: magnitude %v", j, cmplx.Abs(est[j]))
		}
	}
}

func TestCTEHandlesCFO(t *testing.T) {
	// A ±30 kHz crystal offset rotates the tone; the estimator must track
	// it or the per-antenna phases smear.
	cfg := DefaultCTEConfig(4)
	h := cteChannels(0, 0.8, 1.6, -1.2)
	for _, cfo := range []float64{-30e3, -7e3, 12e3, 30e3} {
		samples, err := SimulateCTE(cfg, h, 1, cfo)
		if err != nil {
			t.Fatal(err)
		}
		est, tone, err := EstimateCTE(cfg, samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tone-(FreqDeviationHz+cfo)) > 200 {
			t.Errorf("cfo %v: tone estimate %v", cfo, tone)
		}
		for j := 1; j < 4; j++ {
			want := cmplx.Phase(h[j] * cmplx.Conj(h[0]))
			got := cmplx.Phase(est[j])
			if math.Abs(math.Atan2(math.Sin(got-want), math.Cos(got-want))) > 1e-3 {
				t.Errorf("cfo %v antenna %d: phase %v, want %v", cfo, j, got, want)
			}
		}
	}
}

func TestCTESampleScheduleCoversArray(t *testing.T) {
	cfg := DefaultCTEConfig(4)
	samples, err := SimulateCTE(cfg, cteChannels(0, 0, 0, 0), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range samples {
		counts[s.Antenna]++
	}
	// 160 µs − 12 µs = 148 µs of slots at 2×2 µs per (switch, sample)
	// pair = 37 sample slots + 8 reference samples.
	if counts[0] < 8 {
		t.Errorf("antenna 0 sampled %d times, want ≥ 8 (reference)", counts[0])
	}
	for j := 1; j < 4; j++ {
		if counts[j] < 8 {
			t.Errorf("antenna %d sampled %d times", j, counts[j])
		}
	}
	// Samples are time-ordered.
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeUs <= samples[i-1].TimeUs {
			t.Fatalf("sample %d not time-ordered", i)
		}
	}
}

func TestCTEErrors(t *testing.T) {
	cfg := DefaultCTEConfig(4)
	if _, err := SimulateCTE(cfg, cteChannels(0, 0), 1, 0); err == nil {
		t.Error("too few channels accepted")
	}
	if _, _, err := EstimateCTE(cfg, nil); err == nil {
		t.Error("empty capture accepted")
	}
	// Corrupt reference antenna assignment.
	samples, _ := SimulateCTE(cfg, cteChannels(0, 0, 0, 0), 1, 0)
	samples[3].Antenna = 2
	if _, _, err := EstimateCTE(cfg, samples); err == nil {
		t.Error("corrupted reference period accepted")
	}
}

func BenchmarkCTEEstimate(b *testing.B) {
	cfg := DefaultCTEConfig(4)
	samples, err := SimulateCTE(cfg, cteChannels(0.1, 0.9, -1.3, 2.2), 1, 11e3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EstimateCTE(cfg, samples); err != nil {
			b.Fatal(err)
		}
	}
}
