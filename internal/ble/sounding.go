package ble

import "fmt"

// Channel-sounding packets (§4 of the paper): data PDUs whose payload puts
// long runs of 0-bits followed by long runs of 1-bits on the air, so the
// GFSK frequency settles at f0 and then f1 long enough to measure the
// complex channel at each tone (Fig. 4b).
//
// Since the link layer whitens the PDU with a channel-dependent keystream,
// a naive 0x00…0xFF payload would not produce runs on air. SoundingPDU
// therefore pre-compensates: it XORs the desired air pattern with the
// whitening keystream so that after standard whitening the transmitted
// bits are exactly the desired runs. The packet remains a perfectly valid
// BLE data PDU — receivers that de-whiten see an opaque payload, while the
// PHY sees stable tones.

// SoundingLayout describes where the settled tone runs sit inside an
// on-air sounding packet, in bit offsets relative to the first PDU bit
// (after the access address).
type SoundingLayout struct {
	ZeroRunStart int // first air-bit index of the 0-run (within PDU bits)
	ZeroRunLen   int // length of the 0-run in bits
	OneRunStart  int // first air-bit index of the 1-run
	OneRunLen    int // length of the 1-run in bits
}

// DefaultRunBits is the per-tone run length used by BLoc's sounding
// packets. The paper (§6) needs only ≈8 µs per tone (8 bits at 1 Msym/s);
// we use 40 bits (5 bytes) per tone, still a tiny fraction of a connection
// event, to give the Gaussian filter generous settling margin.
const DefaultRunBits = 40

// SoundingPDU builds a data PDU for the given channel whose on-air payload
// bits are runBits zeros followed by runBits ones (after whitening).
// runBits must be a positive multiple of 8.
func SoundingPDU(channel ChannelIndex, runBits int) (*DataPDU, SoundingLayout, error) {
	if runBits <= 0 || runBits%8 != 0 {
		return nil, SoundingLayout{}, fmt.Errorf("ble: runBits %d must be a positive multiple of 8", runBits)
	}
	if !channel.Valid() {
		return nil, SoundingLayout{}, fmt.Errorf("ble: invalid channel %d", channel)
	}
	runBytes := runBits / 8
	payloadLen := 2 * runBytes
	if payloadLen > MaxPayload {
		return nil, SoundingLayout{}, fmt.Errorf("ble: sounding payload %d exceeds max %d", payloadLen, MaxPayload)
	}
	// Desired on-air payload: runBytes of 0x00 then runBytes of 0xFF.
	desired := make([]byte, payloadLen)
	for i := runBytes; i < payloadLen; i++ {
		desired[i] = 0xFF
	}
	// Whitening keystream over the PDU: whiten a zero buffer of the full
	// PDU length (header + payload) and slice out the payload region.
	keystream := Whiten(channel, make([]byte, 2+payloadLen))
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = desired[i] ^ keystream[2+i]
	}
	pdu := &DataPDU{LLID: LLIDStart, Payload: payload}
	layout := SoundingLayout{
		ZeroRunStart: 2 * 8, // runs start right after the 2-byte header
		ZeroRunLen:   runBits,
		OneRunStart:  2*8 + runBits,
		OneRunLen:    runBits,
	}
	return pdu, layout, nil
}

// SoundingPacket wraps SoundingPDU into a full link-layer packet and
// returns the layout adjusted to absolute air-bit offsets (including
// preamble and access address).
func SoundingPacket(access AccessAddress, channel ChannelIndex, runBits int) (*Packet, SoundingLayout, error) {
	pdu, layout, err := SoundingPDU(channel, runBits)
	if err != nil {
		return nil, SoundingLayout{}, err
	}
	const headerBits = (1 + 4) * 8 // preamble + access address
	layout.ZeroRunStart += headerBits
	layout.OneRunStart += headerBits
	return &Packet{Access: access, Channel: channel, PDU: pdu}, layout, nil
}

// StableRegion returns the [start, end) air-bit range within a run that is
// safely settled: margin bits are trimmed from both ends to let the
// Gaussian filter converge. It panics if the margin leaves nothing.
func StableRegion(runStart, runLen, margin int) (start, end int) {
	start = runStart + margin
	end = runStart + runLen - margin
	if end <= start {
		panic(fmt.Sprintf("ble: margin %d too large for run of %d bits", margin, runLen))
	}
	return start, end
}
