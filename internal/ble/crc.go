package ble

// CRC-24 as specified for the BLE link layer: polynomial
// x²⁴ + x¹⁰ + x⁹ + x⁶ + x⁴ + x³ + x + 1, seeded with 0x555555 for data
// channel PDUs, processed LSB-first over the PDU bytes.

// CRCInit is the link-layer CRC seed used on data (and advertising)
// channels before any CRCInit exchange.
const CRCInit uint32 = 0x555555

// crcPoly is the feedback tap mask for the LSB-first LFSR formulation of
// the BLE CRC-24 polynomial.
const crcPoly uint32 = 0x00065B

// CRC24 computes the BLE link-layer CRC over pdu with the given 24-bit
// seed, returning the 24-bit CRC value. Bits of each byte are consumed
// LSB-first, matching the link layer's over-the-air bit order.
func CRC24(seed uint32, pdu []byte) uint32 {
	crc := seed & 0xFFFFFF
	for _, b := range pdu {
		for bit := 0; bit < 8; bit++ {
			in := uint32(b>>bit) & 1
			fb := ((crc >> 23) & 1) ^ in
			crc = (crc << 1) & 0xFFFFFF
			if fb != 0 {
				crc ^= crcPoly
			}
		}
	}
	return crc
}

// AppendCRC returns pdu with its 3-byte CRC appended, least-significant
// CRC bit transmitted first (i.e. the low byte of the reflected CRC goes
// first on air). The CRC register's MSB is the first bit sent, so the
// 24-bit value is bit-reversed into wire order.
func AppendCRC(pdu []byte) []byte {
	crc := CRC24(CRCInit, pdu)
	rev := reverse24(crc)
	return append(pdu, byte(rev), byte(rev>>8), byte(rev>>16))
}

// CheckCRC verifies a PDU+CRC byte sequence produced by AppendCRC.
func CheckCRC(frame []byte) bool {
	if len(frame) < 3 {
		return false
	}
	pdu := frame[:len(frame)-3]
	want := frame[len(frame)-3:]
	crc := reverse24(CRC24(CRCInit, pdu))
	return want[0] == byte(crc) && want[1] == byte(crc>>8) && want[2] == byte(crc>>16)
}

// reverse24 reverses the low 24 bits of x.
func reverse24(x uint32) uint32 {
	var out uint32
	for i := 0; i < 24; i++ {
		out = (out << 1) | ((x >> i) & 1)
	}
	return out
}
