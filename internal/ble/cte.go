package ble

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Constant Tone Extension (CTE) — the direction-finding feature Bluetooth
// 5.1 standardized after this paper was published. A packet is extended
// with an unwhitened run of 1-bits, producing a pure tone at f_c +
// FreqDeviationHz; the receiver switches a single RF chain across its
// antenna array on a fixed schedule and samples IQ, recovering the
// per-antenna phase for angle-of-arrival estimation.
//
// This implementation follows the Core Spec v5.1 AoA timing: a 4 µs guard,
// an 8 µs reference period sampled on antenna 0, then alternating 2 µs
// switch and sample slots cycling through the array. It exists here as a
// comparison point: CTE gives BLE a *clean* angle measurement, but no
// distance dimension — exactly the limitation BLoc's band stitching was
// designed to escape.

// CTEConfig describes a CTE acquisition.
type CTEConfig struct {
	// LengthUs is the tone duration in µs (16–160, multiple of 8).
	LengthUs int
	// SlotUs is the switch/sample slot length (1 or 2 µs).
	SlotUs int
	// Antennas is the switched-array size; IQ is modeled at one sample
	// per µs (the spec samples 1 µs windows).
	Antennas int
}

// DefaultCTEConfig returns the common 160 µs, 2 µs-slot configuration.
func DefaultCTEConfig(antennas int) CTEConfig {
	return CTEConfig{LengthUs: 160, SlotUs: 2, Antennas: antennas}
}

// Validate checks spec ranges.
func (c CTEConfig) Validate() error {
	if c.LengthUs < 16 || c.LengthUs > 160 || c.LengthUs%8 != 0 {
		return fmt.Errorf("ble: CTE length %d µs outside 16–160 in steps of 8", c.LengthUs)
	}
	if c.SlotUs != 1 && c.SlotUs != 2 {
		return fmt.Errorf("ble: CTE slot %d µs must be 1 or 2", c.SlotUs)
	}
	if c.Antennas < 2 {
		return fmt.Errorf("ble: CTE needs ≥ 2 antennas, got %d", c.Antennas)
	}
	return nil
}

// cteTiming constants (µs).
const (
	cteGuardUs = 4
	cteRefUs   = 8
)

// CTESample is one IQ sample with its antenna assignment.
type CTESample struct {
	Antenna int
	TimeUs  float64
	IQ      complex128
}

// SimulateCTE produces the sample sequence an antenna-switching receiver
// captures: the transmitter emits a tone at FreqDeviationHz + cfoHz above
// the channel center; h[j] is the (flat) channel to antenna j including
// any static rotations; every sample also carries the common LO rotor.
// One IQ sample is taken per µs of the reference period and one per
// sample slot thereafter.
func SimulateCTE(cfg CTEConfig, h []complex128, rotor complex128, cfoHz float64) ([]CTESample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(h) < cfg.Antennas {
		return nil, fmt.Errorf("ble: %d channels for %d antennas", len(h), cfg.Antennas)
	}
	tone := FreqDeviationHz + cfoHz
	sample := func(ant int, tUs float64) CTESample {
		phase := 2 * math.Pi * tone * tUs * 1e-6
		s, c := math.Sincos(phase)
		return CTESample{
			Antenna: ant,
			TimeUs:  tUs,
			IQ:      h[ant] * rotor * complex(c, s),
		}
	}
	var out []CTESample
	// Reference period: one sample per µs on antenna 0.
	for u := 0; u < cteRefUs; u++ {
		out = append(out, sample(0, float64(cteGuardUs+u)))
	}
	// Switch/sample slots: sample in the second half of each sample slot.
	slotStart := float64(cteGuardUs + cteRefUs)
	slots := (cfg.LengthUs - cteGuardUs - cteRefUs) / (2 * cfg.SlotUs)
	ant := 1 % cfg.Antennas
	for s := 0; s < slots; s++ {
		// Each pair is (switch slot, sample slot).
		tSample := slotStart + float64(2*s*cfg.SlotUs) + float64(cfg.SlotUs) + float64(cfg.SlotUs)/2
		out = append(out, sample(ant, tSample))
		ant = (ant + 1) % cfg.Antennas
	}
	return out, nil
}

// EstimateCTE recovers the per-antenna relative channel phases from a CTE
// capture: the carrier frequency offset is estimated from the reference
// period, every sample is derotated by the reconstructed tone phase, and
// the derotated samples are averaged per antenna. The result is
// normalized so antenna 0 has phase 0 — exactly the quantity an AoA
// spectrum consumes. It also returns the estimated tone frequency (Hz).
func EstimateCTE(cfg CTEConfig, samples []CTESample) ([]complex128, float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if len(samples) < cteRefUs+cfg.Antennas {
		return nil, 0, fmt.Errorf("ble: %d CTE samples too few", len(samples))
	}
	// CFO from the reference period: consecutive 1 µs samples on the same
	// antenna rotate by 2π·f_tone·1µs.
	var acc complex128
	for i := 1; i < cteRefUs; i++ {
		if samples[i].Antenna != 0 || samples[i-1].Antenna != 0 {
			return nil, 0, fmt.Errorf("ble: reference period not on antenna 0")
		}
		acc += samples[i].IQ * cmplx.Conj(samples[i-1].IQ)
	}
	stepPhase := cmplx.Phase(acc)
	// Resolve the 1 MHz ambiguity toward the nominal +250 kHz tone: the
	// phase step per µs is 2π·f·1e-6, unambiguous within ±500 kHz.
	toneHz := stepPhase / (2 * math.Pi * 1e-6)

	sums := make([]complex128, cfg.Antennas)
	counts := make([]int, cfg.Antennas)
	for _, s := range samples {
		if s.Antenna < 0 || s.Antenna >= cfg.Antennas {
			return nil, 0, fmt.Errorf("ble: sample on unknown antenna %d", s.Antenna)
		}
		rot := cmplx.Rect(1, -2*math.Pi*toneHz*s.TimeUs*1e-6)
		sums[s.Antenna] += s.IQ * rot
		counts[s.Antenna]++
	}
	out := make([]complex128, cfg.Antennas)
	for j := range out {
		if counts[j] == 0 {
			return nil, 0, fmt.Errorf("ble: antenna %d never sampled", j)
		}
		out[j] = sums[j] / complex(float64(counts[j]), 0)
	}
	// Normalize to antenna 0.
	ref := out[0]
	//lint:ignore floateq an exactly zero reference channel is the failure sentinel
	if cmplx.Abs(ref) == 0 {
		return nil, 0, fmt.Errorf("ble: zero reference channel")
	}
	refPhase := cmplx.Rect(1, -cmplx.Phase(ref))
	for j := range out {
		out[j] *= refPhase
	}
	return out, toneHz, nil
}
